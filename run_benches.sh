#!/bin/sh
# Regenerates every paper figure; fig08 (the 180-config sweep) runs last.
set -u
cd "$(dirname "$0")"
others=""
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *fig08*) ;; *) others="$others $b";; esac
done
for b in $others build/bench/fig08_config_sweep; do
  echo
  echo "##### $b #####"
  "$b"
done
