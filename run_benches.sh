#!/bin/sh
# Regenerates every paper figure; fig08 (the 180-config sweep) runs last.
#
# Sweep-heavy binaries (fig03/04/05/08/10/11) fan their scenario grids out
# across JOBS worker threads (default: all cores). Results are
# bit-identical to a serial run for the fixed seeds baked into the
# binaries, so JOBS only changes wall-clock time, never the tables.
set -u
cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"
others=""
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *fig08*) ;; *) others="$others $b";; esac
done
for b in $others build/bench/fig08_config_sweep; do
  echo
  echo "##### $b #####"
  case "$b" in
    *fig03*|*fig04*|*fig05*|*fig08*|*fig10*|*fig11*) "$b" --jobs="$JOBS";;
    *) "$b";;
  esac
done
