#!/bin/sh
# Regenerates every paper figure; fig08 (the 180-config sweep) runs last.
#
# Sweep-heavy binaries (fig03/04/05/08/10/11, fig_parkinglot) fan their
# scenario grids out
# across JOBS worker threads (default: all cores). Results are
# bit-identical to a serial run for the fixed seeds baked into the
# binaries, so JOBS only changes wall-clock time, never the tables.
#
# Supervised-sweep knobs (see EXPERIMENTS.md "Interrupting and resuming
# sweeps"):
#   RETRIES=N        retry failed sweep points N times (fresh sub-seeds)
#   RUN_TIMEOUT=SEC  per-attempt wall-clock watchdog
#   CHECKPOINT_DIR=D journal each sweep to D/<bench>.jsonl and resume from
#                    it, so an interrupted ./run_benches.sh picks up where
#                    it left off when re-run with the same CHECKPOINT_DIR
#   TELEMETRY_DIR=D  export per-MI flow telemetry (JSONL/CSV, see
#                    EXPERIMENTS.md "Inspecting a run") for every sweep
#                    point into D; TELEMETRY_EVERY=N subsamples to every
#                    N-th MI (default 1) to bound output size
#   BENCH_JSON=F     write the simulator-core macro benchmark
#                    (bench_simcore: events/sec, allocs/event, peak RSS)
#                    to F; without it the JSON only goes to stdout, so the
#                    committed BENCH_simcore.json baseline is never
#                    clobbered by accident
# A bench whose sweep has failed points exits nonzero (repro bundles land
# in ./repro); this script keeps going and reports the failures at the end.
set -u
cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"
RETRIES="${RETRIES:-}"
RUN_TIMEOUT="${RUN_TIMEOUT:-}"
CHECKPOINT_DIR="${CHECKPOINT_DIR:-}"
TELEMETRY_DIR="${TELEMETRY_DIR:-}"
TELEMETRY_EVERY="${TELEMETRY_EVERY:-}"
BENCH_JSON="${BENCH_JSON:-}"
[ -n "$CHECKPOINT_DIR" ] && mkdir -p "$CHECKPOINT_DIR"
[ -n "$TELEMETRY_DIR" ] && mkdir -p "$TELEMETRY_DIR"

failed=""
others=""
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  case "$b" in *fig08*) ;; *) others="$others $b";; esac
done
for b in $others build/bench/fig08_config_sweep; do
  echo
  echo "##### $b #####"
  case "$b" in
    *fig03*|*fig04*|*fig05*|*fig08*|*fig10*|*fig11*|*fig_parkinglot*)
      sweep_flags="--jobs=$JOBS"
      [ -n "$RETRIES" ] && sweep_flags="$sweep_flags --retries=$RETRIES"
      [ -n "$RUN_TIMEOUT" ] && \
        sweep_flags="$sweep_flags --run-timeout=$RUN_TIMEOUT"
      [ -n "$CHECKPOINT_DIR" ] && \
        sweep_flags="$sweep_flags --resume=$CHECKPOINT_DIR/$(basename "$b").jsonl"
      [ -n "$TELEMETRY_DIR" ] && \
        sweep_flags="$sweep_flags --telemetry=$TELEMETRY_DIR"
      [ -n "$TELEMETRY_EVERY" ] && \
        sweep_flags="$sweep_flags --telemetry-every=$TELEMETRY_EVERY"
      # shellcheck disable=SC2086
      "$b" $sweep_flags
      rc=$?
      ;;
    *bench_simcore*)
      if [ -n "$BENCH_JSON" ]; then
        "$b" --out="$BENCH_JSON"
      else
        "$b"
      fi
      rc=$?
      ;;
    *)
      "$b"
      rc=$?
      ;;
  esac
  if [ "$rc" -eq 130 ]; then
    echo "interrupted; re-run with the same CHECKPOINT_DIR to resume" >&2
    exit 130
  fi
  [ "$rc" -ne 0 ] && failed="$failed $b(rc=$rc)"
done

if [ -n "$failed" ]; then
  echo
  echo "FAILED benches:$failed" >&2
  exit 3
fi
