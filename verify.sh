#!/bin/sh
# Full verification: the regular build + test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests (the
# parallel experiment runner, the run supervisor, and the sender pipeline
# they execute), then an ASan+UBSan build running the fault-injection /
# robustness tests plus the supervisor crash/hang self-test (throwing and
# deliberately hanging workers driven through the watchdog/retry path),
# then telemetry schema validation, the perf gate, and finally the
# adversarial corpus replay + a smoke run of the scenario search driver.
set -eu

cd "$(dirname "$0")"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== tier 2: ThreadSanitizer (-DPROTEUS_SANITIZE=thread) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j --target parallel_runner_test supervisor_test pcc_sender_test stats_test telemetry_test topology_test
./build-tsan/tests/parallel_runner_test
./build-tsan/tests/supervisor_test
./build-tsan/tests/pcc_sender_test
# Parking-lot runs under the parallel runner: per-worker topology graphs
# must share nothing (serial/parallel byte-identity is asserted inside).
./build-tsan/tests/topology_test --gtest_filter='ParkingLotDeterminism.*'
# Samples.ConcurrentConstReadersAreRaceFree pins the const-percentile
# data race; telemetry_test exercises the exporter/profiler under TSan.
./build-tsan/tests/stats_test
./build-tsan/tests/telemetry_test

echo "== tier 3: ASan+UBSan (-DPROTEUS_SANITIZE=address,undefined) =="
cmake --preset asan >/dev/null
cmake --build build-asan -j --target robustness_test cli_test supervisor_test topology_test
./build-asan/tests/robustness_test --gtest_filter='FaultTimeline.*:BlackoutEveryProtocol*:FailureInjection.*'
./build-asan/tests/cli_test
# Full topology suite under ASan+UBSan: the routing demux and ACK-path
# fault hooks juggle raw sink pointers across edge/flow lifetimes.
./build-asan/tests/topology_test
# Crash/hang self-test: throwing tasks, cooperative livelocks, watchdog
# timeouts, interrupts, and kill-and-resume, all under ASan+UBSan.
./build-asan/tests/supervisor_test

echo "== tier 4: telemetry export + JSONL schema validation =="
# A short telemetried run must produce JSONL that the validator accepts
# line-by-line (parseable flat JSON carrying every required schema key).
TELDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR"' EXIT
./build/tools/proteus_sim --flows=proteus-p,proteus-s@2 --duration=8 \
  --warmup=2 --telemetry="$TELDIR" --telemetry-every=2 --profile >/dev/null
ls "$TELDIR"/*.jsonl >/dev/null 2>&1 || {
  echo "tier 4: no telemetry JSONL written to $TELDIR" >&2; exit 1;
}
./build/tools/telemetry_validate "$TELDIR"/*.jsonl

echo "== tier 5: simulator perf gate (bench_simcore vs BENCH_simcore.json) =="
# Event-engine micro benches first (fast; catches gross hot-loop
# regressions with per-op numbers), then the macro bench compared against
# the committed baseline: >10% events/sec loss or any steady-state
# allocation growth fails the build.
./build/bench/micro_bench \
  --benchmark_filter='BM_EventQueuePushPop|BM_SimulatedSecond/' \
  --benchmark_min_time=0.2
# 100 simulated seconds keeps the measured wall window well above timer
# resolution; reps are best-of to shrug off container scheduling noise.
./build/bench/bench_simcore --duration=100 --reps=3 --out="$TELDIR/bench.json"
./build/tools/bench_compare BENCH_simcore.json "$TELDIR/bench.json"

echo "== tier 6: adversarial corpus replay + smoke search =="
# Every committed worst case must replay to its recorded score (within
# the entry's tolerance) and invariant outcome; a drift means protocol
# behavior changed on a scenario specifically discovered to be hard.
./build/tools/corpus_replay corpus/adversarial
# Seconds-scale smoke search against the analytic planted-bug objective:
# the driver must find a candidate strictly worse than the pristine
# baseline (exit 4 if not), proving the mutate/select/score loop works.
./build/tools/proteus_search --objective=planted:7 --budget=48 --seed=3 \
  --jobs=4 --assert-improves >/dev/null

echo "verify: OK"
