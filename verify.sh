#!/bin/sh
# Full verification: the regular build + test suite, then a
# ThreadSanitizer build running the concurrency-sensitive tests (the
# parallel experiment runner, the run supervisor, and the sender pipeline
# they execute), then an ASan+UBSan build running the fault-injection /
# robustness tests plus the supervisor crash/hang self-test (throwing and
# deliberately hanging workers driven through the watchdog/retry path),
# then telemetry schema validation, the perf gate, the adversarial corpus
# replay + a smoke run of the scenario search driver, and finally the live
# UDP loopback tier: the hardened wire parser fuzzed and the real-time
# driver run end-to-end (chaos, SIGINT, telemetry) under ASan+UBSan.
set -eu

cd "$(dirname "$0")"

echo "== tier 1: build + full test suite =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== tier 2: ThreadSanitizer (-DPROTEUS_SANITIZE=thread) =="
cmake --preset tsan >/dev/null
cmake --build build-tsan -j --target parallel_runner_test supervisor_test pcc_sender_test stats_test telemetry_test topology_test rt_chaos_test shard_test
./build-tsan/tests/parallel_runner_test
./build-tsan/tests/supervisor_test
./build-tsan/tests/pcc_sender_test
# Window-barrier engine under TSan: the cross-part handoff channels and
# the two-phase barrier are the only cross-thread edges; the shard/churn
# determinism suite must run clean with 2- and 4-thread configs.
./build-tsan/tests/shard_test
# Chaos-shim determinism across threads: the n-th verdict must be a pure
# function of (seed, n) — no shared RNG stream, no wall-clock coupling.
./build-tsan/tests/rt_chaos_test
# Parking-lot runs under the parallel runner: per-worker topology graphs
# must share nothing (serial/parallel byte-identity is asserted inside).
./build-tsan/tests/topology_test --gtest_filter='ParkingLotDeterminism.*'
# Samples.ConcurrentConstReadersAreRaceFree pins the const-percentile
# data race; telemetry_test exercises the exporter/profiler under TSan.
./build-tsan/tests/stats_test
./build-tsan/tests/telemetry_test

echo "== tier 3: ASan+UBSan (-DPROTEUS_SANITIZE=address,undefined) =="
cmake --preset asan >/dev/null
cmake --build build-asan -j --target robustness_test cli_test supervisor_test topology_test
./build-asan/tests/robustness_test --gtest_filter='FaultTimeline.*:BlackoutEveryProtocol*:FailureInjection.*'
./build-asan/tests/cli_test
# Full topology suite under ASan+UBSan: the routing demux and ACK-path
# fault hooks juggle raw sink pointers across edge/flow lifetimes.
./build-asan/tests/topology_test
# Crash/hang self-test: throwing tasks, cooperative livelocks, watchdog
# timeouts, interrupts, and kill-and-resume, all under ASan+UBSan.
./build-asan/tests/supervisor_test

echo "== tier 4: telemetry export + JSONL schema validation =="
# A short telemetried run must produce JSONL that the validator accepts
# line-by-line (parseable flat JSON carrying every required schema key).
TELDIR="$(mktemp -d)"
trap 'rm -rf "$TELDIR"' EXIT
./build/tools/proteus_sim --flows=proteus-p,proteus-s@2 --duration=8 \
  --warmup=2 --telemetry="$TELDIR" --telemetry-every=2 --profile >/dev/null
ls "$TELDIR"/*.jsonl >/dev/null 2>&1 || {
  echo "tier 4: no telemetry JSONL written to $TELDIR" >&2; exit 1;
}
./build/tools/telemetry_validate "$TELDIR"/*.jsonl

echo "== tier 5: simulator perf gate (bench_simcore vs BENCH_simcore.json) =="
# Event-engine micro benches first (fast; catches gross hot-loop
# regressions with per-op numbers), then the macro bench compared against
# the committed baseline: >10% events/sec loss or any steady-state
# allocation growth fails the build.
./build/bench/micro_bench \
  --benchmark_filter='BM_EventQueuePushPop|BM_SimulatedSecond/' \
  --benchmark_min_time=0.2
# 100 simulated seconds keeps the measured wall window well above timer
# resolution; reps are best-of to shrug off container scheduling noise.
./build/bench/bench_simcore --duration=100 --reps=3 --out="$TELDIR/bench.json"
./build/tools/bench_compare BENCH_simcore.json "$TELDIR/bench.json"
# Sharded-execution gate: a reduced CDN-edge churn run (the committed
# baseline uses the full 100k-flow configuration; the shards1 throughput
# key is the hardware-independent one, so only it is compared). The
# bench itself exits nonzero if the three shard counts diverge by a
# single event, and enforces the >=1.5x shards=4 speedup when the
# machine has >=4 hardware threads and the run used 4 workers. The
# compare also gates peak_rss_per_flow_bytes: >10% per-flow memory
# growth fails (RSS is noise-free, so it keeps the tight tolerance
# while wall-clock gets 25% for container scheduling noise).
./build/bench/bench_shards --flows=10000 --arms=8 --duration=1 \
  --out="$TELDIR/bench_shards.json"
./build/tools/bench_compare BENCH_shards.json "$TELDIR/bench_shards.json" \
  --keys=events_per_sec_shards1 --tolerance=0.25 --rss-tolerance=0.10

echo "== tier 6: adversarial corpus replay + smoke search =="
# Every committed worst case must replay to its recorded score (within
# the entry's tolerance) and invariant outcome; a drift means protocol
# behavior changed on a scenario specifically discovered to be hard.
./build/tools/corpus_replay corpus/adversarial
# Seconds-scale smoke search against the analytic planted-bug objective:
# the driver must find a candidate strictly worse than the pristine
# baseline (exit 4 if not), proving the mutate/select/score loop works.
./build/tools/proteus_search --objective=planted:7 --budget=48 --seed=3 \
  --jobs=4 --assert-improves >/dev/null

echo "== tier 7: live UDP loopback under ASan+UBSan =="
# Static pin first: every wall-clock deadline in the live driver must be
# steady_clock-derived. A system_clock deadline jumps with NTP steps and
# breaks RTO/heartbeat/watchdog math; grep keeps it out at review time.
if grep -rn "chrono::system_clock" src/ tools/; then
  echo "tier 7: system_clock found in rt/harness wall-clock paths" >&2
  exit 1
fi
# Hardened wire parser + live end-to-end suite under ASan+UBSan: frame
# fuzzing must never reach UB, and the loopback transfers (chaos drops,
# handshake retries, survival park/probe, interrupt path, sim-vs-live
# calibration) must pass with sanitizers watching both threads.
cmake --build build-asan -j --target rt_wire_test rt_io_test rt_live_test proteus_live
./build-asan/tests/rt_wire_test
./build-asan/tests/rt_io_test
./build-asan/tests/rt_live_test
# CLI end-to-end: a chaos-laden loopback transfer must complete, write
# schema-valid telemetry, and a mid-transfer SIGINT must exit 130 with
# the JSONL flushed.
LIVEDIR="$TELDIR/live"
./build-asan/tools/proteus_live --cc=proteus-s --bytes=500000 \
  --chaos=rate=30,delay=2ms,drop=0.2,seed=7 --telemetry="$LIVEDIR" \
  --label=tier7 >/dev/null
./build/tools/telemetry_validate "$LIVEDIR"/*.jsonl
./build-asan/tools/proteus_live --cc=proteus-s --bytes=0 --duration=30 \
  --telemetry="$LIVEDIR" --label=tier7-sigint >/dev/null &
LIVE_PID=$!
sleep 2
kill -INT "$LIVE_PID"
set +e
wait "$LIVE_PID"
LIVE_RC=$?
set -e
if [ "$LIVE_RC" -ne 130 ]; then
  echo "tier 7: SIGINT run exited $LIVE_RC, expected 130" >&2
  exit 1
fi
./build/tools/telemetry_validate "$LIVEDIR"/*tier7-sigint*.jsonl

echo "verify: OK"
