// Proteus-H end to end: a 4K stream and three 1080p streams share a
// 100 Mbps link. Each client runs BOLA and drives the cross-layer
// threshold policy (sufficient-rate, buffer-limit, and emergency rules),
// so a flow only competes while its own video actually needs bandwidth.
#include <cstdio>
#include <memory>
#include <vector>

#include "app/bola.h"
#include "app/video.h"
#include "harness/scenario.h"

using namespace proteus;

namespace {

struct StreamingSession {
  std::unique_ptr<HybridThresholdPolicy> policy;
  std::unique_ptr<VideoClient> client;
  const char* label;
};

StreamingSession make_session(Scenario& scenario, bool is_4k,
                              const std::string& protocol,
                              const char* label) {
  VideoClientConfig vc;
  vc.video = is_4k ? make_4k_video(60) : make_1080p_video(60);
  vc.id = scenario.allocate_flow_id();

  StreamingSession s;
  s.label = label;
  auto abr = std::make_unique<BolaAdaptation>(
      vc.video.bitrates_mbps,
      vc.buffer_capacity_sec / vc.video.chunk_duration_sec);

  if (protocol == "proteus-h") {
    auto state = std::make_shared<HybridThresholdState>();
    s.policy = std::make_unique<HybridThresholdPolicy>(state);
    s.client = std::make_unique<VideoClient>(
        &scenario.sim(), &scenario.dumbbell(), vc,
        make_protocol("proteus-h", scenario.flow_seed(vc.id), state,
                      &scenario.config().tuning),
        std::move(abr), s.policy.get());
  } else {
    s.client = std::make_unique<VideoClient>(
        &scenario.sim(), &scenario.dumbbell(), vc,
        make_protocol(protocol, scenario.flow_seed(vc.id), nullptr,
                      &scenario.config().tuning),
        std::move(abr));
  }
  return s;
}

void run_experiment(const std::string& protocol) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 90.0;  // contended: aggregate top-rung demand
                              // (~77 Mbps) plus probing overhead
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 900'000;
  cfg.seed = 71;
  Scenario scenario(cfg);

  std::vector<StreamingSession> sessions;
  sessions.push_back(make_session(scenario, true, protocol, "4K"));
  for (int i = 0; i < 3; ++i) {
    sessions.push_back(make_session(scenario, false, protocol, "1080p"));
  }

  scenario.run_until(from_sec(185));

  std::printf("--- all flows on %s ---\n", protocol.c_str());
  for (const StreamingSession& s : sessions) {
    const VideoMetrics m = s.client->metrics();
    std::printf("  %-6s bitrate %5.1f Mbps, rebuffering %4.1f%%\n", s.label,
                m.average_chunk_bitrate_mbps, m.rebuffer_ratio * 100.0);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("One 4K + three 1080p BOLA streams on a 90 Mbps link.\n\n");
  run_experiment("proteus-p");
  run_experiment("proteus-h");
  std::printf(
      "Proteus-H lets the 1080p flows yield once their ladders are "
      "satisfied,\nfreeing headroom for the 4K stream without hurting "
      "anyone's playback.\n");
  return 0;
}
