// IoT sensor aggregation for offline analytics (one of the paper's
// motivating workloads): a fleet of sensors periodically uploads batches
// through a shared gateway uplink that also carries interactive web
// traffic. Scavenger transport keeps the telemetry from disturbing the
// interactive flows while still draining the queue of batches.
#include <cstdio>
#include <string>

#include "app/shortflow.h"
#include "app/web.h"
#include "harness/scenario.h"

using namespace proteus;

namespace {

void run_gateway(const std::string& telemetry_protocol) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 20.0;  // site uplink
  cfg.rtt_ms = 40.0;
  cfg.buffer_bytes = 250'000;
  cfg.seed = 12;
  Scenario scenario(cfg);

  // Telemetry: batches of 0.5-2 MB arriving every ~4 s on average.
  ShortFlowGenerator::Config tcfg;
  tcfg.arrival_rate_per_sec = 0.25;
  tcfg.min_bytes = 500'000;
  tcfg.max_bytes = 2'000'000;
  tcfg.stop_time = from_sec(240);
  tcfg.first_flow_id = 1000;
  ShortFlowGenerator telemetry(
      &scenario.sim(), &scenario.dumbbell(), tcfg,
      [&](uint64_t seed) { return make_protocol(telemetry_protocol, seed); });

  // Interactive traffic: operators loading dashboards.
  WebWorkload::Config wcfg;
  wcfg.page_arrival_rate_per_sec = 0.2;
  wcfg.stop_time = from_sec(240);
  wcfg.first_flow_id = 50'000;
  WebWorkload web(&scenario.sim(), &scenario.dumbbell(), wcfg,
                  [](uint64_t seed) { return make_protocol("cubic", seed); });

  scenario.run_until(from_sec(300));

  const Samples plt = web.page_load_times_sec();
  const Samples batches = telemetry.completion_times_sec();
  std::printf("--- telemetry over %s ---\n", telemetry_protocol.c_str());
  std::printf("  dashboard loads : median %5.2f s, p90 %5.2f s (%lld pages)\n",
              plt.median(), plt.percentile(90),
              static_cast<long long>(plt.count()));
  std::printf("  telemetry batch : median %5.2f s to upload, %lld/%lld "
              "delivered\n\n",
              batches.median(),
              static_cast<long long>(telemetry.flows_completed()),
              static_cast<long long>(telemetry.flows_started()));
}

}  // namespace

int main() {
  std::printf("20 Mbps site uplink: sensor batches + operator dashboards.\n\n");
  run_gateway("cubic");
  run_gateway("proteus-s");
  std::printf(
      "With Proteus-S telemetry, dashboards stay fast; the batches take "
      "longer\n— which nobody watching an offline analytics pipeline will "
      "ever notice.\n");
  return 0;
}
