// Quickstart: run one Proteus-P flow and one Proteus-S scavenger on an
// emulated 50 Mbps bottleneck and watch the scavenger yield.
//
// Build:  cmake -B build -G Ninja && cmake --build build
// Run:    ./build/examples/quickstart
#include <cstdio>

#include "harness/scenario.h"

using namespace proteus;

int main() {
  // 1. Describe the bottleneck (the emulated network path).
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;  // 2 bandwidth-delay products
  cfg.seed = 1;

  // 2. Build the scenario and add flows by protocol name.
  Scenario scenario(cfg);
  Flow& primary = scenario.add_flow("proteus-p", /*start=*/0);
  Flow& scavenger = scenario.add_flow("proteus-s", /*start=*/from_sec(10));

  // 3. Run and report per-10-second throughput.
  std::printf("time   primary   scavenger   (Mbps)\n");
  for (int t = 10; t <= 60; t += 10) {
    scenario.run_until(from_sec(t));
    std::printf("%3ds   %7.1f   %9.1f\n", t,
                primary.mean_throughput_mbps(from_sec(t - 10), from_sec(t)),
                scavenger.mean_throughput_mbps(from_sec(t - 10),
                                               from_sec(t)));
  }

  std::printf(
      "\nThe scavenger detects the primary's probing through RTT "
      "deviation\nand keeps its rate minimal; the primary is barely "
      "affected.\n");
  return 0;
}
