// The paper's "flexibility" goal in action: one flow, one codebase, three
// service modes — switched at runtime with a single API call
// (PccSender::set_utility), no new connection, no separate protocol stack.
//
// A software update starts as a scavenger behind a video call, turns
// primary when a deadline approaches, and becomes a scavenger again once
// its urgent part is done.
#include <cstdio>
#include <memory>

#include "core/pcc_sender.h"
#include "harness/scenario.h"

using namespace proteus;

int main() {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;
  cfg.seed = 3;
  Scenario scenario(cfg);

  // A long-lived primary flow: a video call's media stream over COPA.
  Flow& call = scenario.add_flow("copa", 0);

  // The software update: a Proteus flow whose mode we will change.
  auto cc = make_proteus_s(11);
  PccSender* update_cc = cc.get();
  Flow& update = scenario.add_flow_with_cc(std::move(cc), from_sec(5));

  auto report = [&](const char* phase, int from, int to) {
    std::printf("%-28s call %5.1f Mbps | update %5.1f Mbps\n", phase,
                call.mean_throughput_mbps(from_sec(from), from_sec(to)),
                update.mean_throughput_mbps(from_sec(from), from_sec(to)));
  };

  // Phase 1: scavenger mode — yield to the call.
  scenario.run_until(from_sec(60));
  report("scavenger (proteus-s):", 30, 60);

  // Phase 2: deadline pressure — switch to primary with one call.
  update_cc->set_utility(std::make_shared<ProteusPrimaryUtility>());
  scenario.run_until(from_sec(120));
  report("switched to primary:", 90, 120);

  // Phase 3: urgent chunk delivered — back off again.
  update_cc->set_utility(std::make_shared<ProteusScavengerUtility>());
  scenario.run_until(from_sec(180));
  report("back to scavenger:", 150, 180);

  std::printf(
      "\nSame connection, same rate controller — only the utility "
      "function changed.\n");
  return 0;
}
