// Scenario from the paper's introduction: Alice streams video while Bob's
// machine synchronizes a large cloud-storage folder in the background on
// the same home link. With a CUBIC backup the video starves; with a
// Proteus-S backup it doesn't — and the backup still finishes using the
// leftover capacity.
#include <cstdio>
#include <memory>
#include <string>

#include "app/bola.h"
#include "app/video.h"
#include "harness/scenario.h"

using namespace proteus;

namespace {

void run_home_link(const std::string& backup_protocol) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 18.0;  // DSL-ish home downlink: the 1080p ladder's
                              // top rung (10.5 Mbps) does not fit next to a
                              // fair-share backup
  cfg.rtt_ms = 25.0;
  cfg.buffer_bytes = 200'000;
  cfg.seed = 7;
  Scenario scenario(cfg);

  // Bob's backup: a 150 MB folder sync.
  FlowConfig backup_cfg;
  backup_cfg.id = scenario.allocate_flow_id();
  backup_cfg.unlimited = false;
  backup_cfg.total_bytes = 80'000'000;
  Flow backup(&scenario.sim(), &scenario.dumbbell(), backup_cfg,
              make_protocol(backup_protocol,
                            scenario.flow_seed(backup_cfg.id)));

  // Alice's video: adaptive 1080p over CUBIC (a stock player).
  VideoClientConfig vc;
  vc.video = make_1080p_video(40);  // 2 minutes
  vc.id = scenario.allocate_flow_id();
  vc.start_time = from_sec(5);
  VideoClient video(&scenario.sim(), &scenario.dumbbell(), vc,
                    make_protocol("cubic", scenario.flow_seed(vc.id)),
                    std::make_unique<BolaAdaptation>(
                        vc.video.bitrates_mbps,
                        vc.buffer_capacity_sec / vc.video.chunk_duration_sec));

  scenario.run_until(from_sec(140));

  const VideoMetrics vm = video.metrics();
  std::printf("--- backup over %s ---\n", backup_protocol.c_str());
  std::printf("  video bitrate    : %5.2f Mbps (ladder top: %.1f)\n",
              vm.average_chunk_bitrate_mbps, vc.video.bitrates_mbps.back());
  std::printf("  video rebuffering: %5.1f%%\n", vm.rebuffer_ratio * 100.0);
  if (backup.completed()) {
    std::printf("  backup finished  : %5.1f s\n",
                to_sec(backup.completion_time()));
  } else {
    std::printf("  backup progress  : %5.1f%% (still running — that's the "
                "point: Bob is asleep)\n",
                100.0 * static_cast<double>(
                            backup.sender().stats().bytes_delivered) /
                    static_cast<double>(backup_cfg.total_bytes));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Home link: 18 Mbps shared by Alice's video and Bob's "
              "cloud-storage backup.\n\n");
  run_home_link("cubic");
  run_home_link("ledbat");
  run_home_link("proteus-s");
  std::printf("Proteus-S gives Alice nearly the whole link while the "
              "backup scavenges the rest.\n");
  return 0;
}
