// Flow/MI telemetry: structured capture of the controller's per-MI
// internal decisions (the paper's §4–§6 signals: utility terms, raw vs.
// filtered gradient/deviation, DeviationFloor value, TrendingTolerance
// verdicts, Proteus-H mode + threshold, survival state), a lightweight
// per-flow metrics registry, and JSONL/CSV exporters.
//
// Design constraints:
//  * Zero overhead when off. A controller holds a TelemetryRecorder* that
//    defaults to null; the hot path pays one pointer test per completed
//    MI. Nothing in this header is touched per packet.
//  * O(1) memory for long runs. Records land in a fixed-capacity ring;
//    eviction drops the oldest MI, never the newest.
//  * Pure observation. Recording never touches the simulation RNG or the
//    controller state, so a run with telemetry on is bit-identical to the
//    same run with telemetry off (pinned by tests/telemetry_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace proteus {

class Samples;

// CLI-facing knobs (--telemetry=<dir>, --telemetry-every=<n>).
struct TelemetryConfig {
  std::string dir;    // output directory; empty = telemetry disabled
  int every = 1;      // record every n-th completed MI (subsampling)
  int capacity = 4096;  // per-flow MI ring capacity

  bool enabled() const { return !dir.empty(); }
};

// One completed monitor interval as the sender saw it: inputs, filter
// verdicts, utility decomposition, and the control decisions taken.
struct MiRecord {
  double t_sec = 0.0;  // simulated time the MI's sending phase ended
  uint64_t mi_id = 0;

  // Rates (Mbps).
  double target_rate_mbps = 0.0;
  double send_rate_mbps = 0.0;
  double throughput_mbps = 0.0;

  // Utility and its terms. The penalties are what each term subtracts
  // from the utility (>= 0 for the Proteus utilities), so
  // utility = throughput_term - gradient_penalty - loss_penalty
  //           - deviation_penalty.
  double utility = 0.0;
  double utility_throughput_term = 0.0;
  double utility_gradient_penalty = 0.0;
  double utility_loss_penalty = 0.0;
  double utility_deviation_penalty = 0.0;

  // Latency signals, raw (straight from the MI regression) vs. filtered
  // (what the utility actually saw after the noise-tolerance gates).
  double rtt_gradient_raw = 0.0;
  double rtt_gradient = 0.0;
  double rtt_dev_raw_sec = 0.0;
  double rtt_dev_sec = 0.0;
  double deviation_floor_sec = 0.0;  // DeviationFloor's ambient minimum

  // TrendingTolerance significance verdicts (G1/G2 gates). When
  // trending_evaluated is false the trackers were still warming up and
  // both verdicts default to significant.
  bool trending_evaluated = false;
  bool gradient_significant = true;
  bool deviation_significant = true;
  bool mi_tolerated = false;  // per-MI regression-error tolerance fired

  // Rate-controller state after absorbing this MI.
  std::string rc_state;       // "starting" | "probing" | "moving"
  double base_rate_mbps = 0.0;

  // Mode: the utility name for plain utilities; "primary"/"scavenger"
  // for Proteus-H (decided by the switching threshold).
  std::string mode;
  double hybrid_threshold_mbps = 0.0;  // 0 when not hybrid

  // Survival / emergency-brake state.
  bool in_survival = false;
  uint64_t survival_entries = 0;
  bool braked = false;

  // Loss / RTT statistics of the MI.
  double loss_rate = 0.0;
  double avg_rtt_sec = 0.0;
  int64_t rtt_samples = 0;
  int64_t packets_sent = 0;
  int64_t packets_acked = 0;
  int64_t packets_lost = 0;
  double duration_sec = 0.0;
};

// Fixed-capacity ring of MiRecords plus the every-n subsampling counter.
class TelemetryRecorder {
 public:
  explicit TelemetryRecorder(int capacity = 4096, int every = 1);

  // Subsampling gate: returns true when the caller should build and push
  // a record for the MI it is about to report. Call exactly once per
  // completed MI so `seen()` counts MIs, not records.
  bool should_record();

  void push(MiRecord record);

  // Records currently retained (<= capacity), oldest first at index 0.
  size_t size() const { return ring_.size(); }
  size_t capacity() const { return capacity_; }
  const MiRecord& at(size_t i) const;
  // Copy of the retained records in chronological order.
  std::vector<MiRecord> snapshot() const;

  uint64_t seen() const { return seen_; }          // should_record() calls
  uint64_t recorded() const { return recorded_; }  // total pushes
  uint64_t evicted() const { return recorded_ - ring_.size(); }

 private:
  size_t capacity_;
  int every_;
  uint64_t seen_ = 0;
  uint64_t recorded_ = 0;
  size_t start_ = 0;  // ring: index of the oldest retained record
  std::vector<MiRecord> ring_;
};

// Insertion-ordered counters/gauges/histogram summaries, snapshotted per
// flow at export time. Values are doubles throughout; `kind` keeps the
// CSV self-describing.
class MetricsRegistry {
 public:
  struct Entry {
    std::string name;
    char kind;  // 'c' counter, 'g' gauge, 'h' histogram summary
    double value;
  };

  void counter(const std::string& name, int64_t value);
  void gauge(const std::string& name, double value);
  // Expands to <name>.count/.mean/.p50/.p95/.p99/.max entries.
  void histogram(const std::string& name, const Samples& samples);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  std::vector<Entry> entries_;
};

// ---- Exporters ---------------------------------------------------------

// One MI record as a single-line JSON object (the JSONL schema documented
// in EXPERIMENTS.md "Inspecting a run"; validated by tools/
// telemetry_validate). `flow_label` lands in the "flow" key.
std::string mi_record_to_json(const std::string& flow_label,
                              const MiRecord& r);

// The keys every JSONL record must carry (shared with the validator).
const std::vector<std::string>& mi_record_required_keys();

// JSONL: one mi_record_to_json line per retained record.
bool write_mi_records_jsonl(const std::string& path,
                            const std::string& flow_label,
                            const TelemetryRecorder& recorder);

// CSV: same fields, one header plus one row per retained record.
bool write_mi_records_csv(const std::string& path,
                          const TelemetryRecorder& recorder);

// CSV with kind,name,value rows.
bool write_metrics_csv(const std::string& path, const MetricsRegistry& reg);

// Filesystem-safe version of a run/flow label ([A-Za-z0-9._-] only).
std::string sanitize_path_component(const std::string& s);

}  // namespace proteus
