#include "telemetry/telemetry.h"

#include <cstdio>
#include <fstream>
#include <utility>

#include "stats/percentile.h"

namespace proteus {

namespace {

// Shortest round-trippable formatting that still reads as a plain number.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  // JSON has no nan/inf literals; clamp to null-safe 0 rather than emit
  // an unparseable token (finite-utility invariants make this unreachable
  // in practice, but the exporter must not produce invalid JSON).
  std::string s(buf);
  if (s.find("nan") != std::string::npos ||
      s.find("inf") != std::string::npos) {
    return "0";
  }
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* bool_str(bool b) { return b ? "true" : "false"; }

}  // namespace

TelemetryRecorder::TelemetryRecorder(int capacity, int every)
    : capacity_(capacity < 1 ? 1 : static_cast<size_t>(capacity)),
      every_(every < 1 ? 1 : every) {}

bool TelemetryRecorder::should_record() {
  const bool hit = (seen_ % static_cast<uint64_t>(every_)) == 0;
  ++seen_;
  return hit;
}

void TelemetryRecorder::push(MiRecord record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    // Overwrite the oldest slot and advance the ring start.
    ring_[start_] = std::move(record);
    start_ = (start_ + 1) % capacity_;
  }
  ++recorded_;
}

const MiRecord& TelemetryRecorder::at(size_t i) const {
  return ring_[(start_ + i) % ring_.size()];
}

std::vector<MiRecord> TelemetryRecorder::snapshot() const {
  std::vector<MiRecord> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) out.push_back(at(i));
  return out;
}

void MetricsRegistry::counter(const std::string& name, int64_t value) {
  entries_.push_back({name, 'c', static_cast<double>(value)});
}

void MetricsRegistry::gauge(const std::string& name, double value) {
  entries_.push_back({name, 'g', value});
}

void MetricsRegistry::histogram(const std::string& name,
                                const Samples& samples) {
  entries_.push_back(
      {name + ".count", 'h', static_cast<double>(samples.count())});
  entries_.push_back({name + ".mean", 'h', samples.mean()});
  entries_.push_back({name + ".p50", 'h', samples.percentile(50.0)});
  entries_.push_back({name + ".p95", 'h', samples.percentile(95.0)});
  entries_.push_back({name + ".p99", 'h', samples.percentile(99.0)});
  entries_.push_back({name + ".max", 'h', samples.max()});
}

const std::vector<std::string>& mi_record_required_keys() {
  static const std::vector<std::string> kKeys = {
      "flow",
      "t_sec",
      "mi_id",
      "target_rate_mbps",
      "send_rate_mbps",
      "throughput_mbps",
      "utility",
      "utility_throughput_term",
      "utility_gradient_penalty",
      "utility_loss_penalty",
      "utility_deviation_penalty",
      "rtt_gradient_raw",
      "rtt_gradient",
      "rtt_dev_raw_sec",
      "rtt_dev_sec",
      "deviation_floor_sec",
      "trending_evaluated",
      "gradient_significant",
      "deviation_significant",
      "mi_tolerated",
      "rc_state",
      "base_rate_mbps",
      "mode",
      "hybrid_threshold_mbps",
      "in_survival",
      "survival_entries",
      "braked",
      "loss_rate",
      "avg_rtt_sec",
      "rtt_samples",
      "packets_sent",
      "packets_acked",
      "packets_lost",
      "duration_sec",
  };
  return kKeys;
}

std::string mi_record_to_json(const std::string& flow_label,
                              const MiRecord& r) {
  std::string s = "{";
  auto num = [&s](const char* key, double v, bool first = false) {
    if (!first) s += ",";
    s += "\"";
    s += key;
    s += "\":";
    s += fmt_double(v);
  };
  auto integer = [&s](const char* key, uint64_t v) {
    s += ",\"";
    s += key;
    s += "\":";
    s += std::to_string(v);
  };
  auto boolean = [&s](const char* key, bool v) {
    s += ",\"";
    s += key;
    s += "\":";
    s += bool_str(v);
  };
  auto str = [&s](const char* key, const std::string& v) {
    s += ",\"";
    s += key;
    s += "\":\"";
    s += json_escape(v);
    s += "\"";
  };

  s += "\"flow\":\"" + json_escape(flow_label) + "\"";
  num("t_sec", r.t_sec);
  integer("mi_id", r.mi_id);
  num("target_rate_mbps", r.target_rate_mbps);
  num("send_rate_mbps", r.send_rate_mbps);
  num("throughput_mbps", r.throughput_mbps);
  num("utility", r.utility);
  num("utility_throughput_term", r.utility_throughput_term);
  num("utility_gradient_penalty", r.utility_gradient_penalty);
  num("utility_loss_penalty", r.utility_loss_penalty);
  num("utility_deviation_penalty", r.utility_deviation_penalty);
  num("rtt_gradient_raw", r.rtt_gradient_raw);
  num("rtt_gradient", r.rtt_gradient);
  num("rtt_dev_raw_sec", r.rtt_dev_raw_sec);
  num("rtt_dev_sec", r.rtt_dev_sec);
  num("deviation_floor_sec", r.deviation_floor_sec);
  boolean("trending_evaluated", r.trending_evaluated);
  boolean("gradient_significant", r.gradient_significant);
  boolean("deviation_significant", r.deviation_significant);
  boolean("mi_tolerated", r.mi_tolerated);
  str("rc_state", r.rc_state);
  num("base_rate_mbps", r.base_rate_mbps);
  str("mode", r.mode);
  num("hybrid_threshold_mbps", r.hybrid_threshold_mbps);
  boolean("in_survival", r.in_survival);
  integer("survival_entries", r.survival_entries);
  boolean("braked", r.braked);
  num("loss_rate", r.loss_rate);
  num("avg_rtt_sec", r.avg_rtt_sec);
  integer("rtt_samples", static_cast<uint64_t>(r.rtt_samples));
  integer("packets_sent", static_cast<uint64_t>(r.packets_sent));
  integer("packets_acked", static_cast<uint64_t>(r.packets_acked));
  integer("packets_lost", static_cast<uint64_t>(r.packets_lost));
  num("duration_sec", r.duration_sec);
  s += "}";
  return s;
}

bool write_mi_records_jsonl(const std::string& path,
                            const std::string& flow_label,
                            const TelemetryRecorder& recorder) {
  std::ofstream out(path);
  if (!out) return false;
  for (size_t i = 0; i < recorder.size(); ++i) {
    out << mi_record_to_json(flow_label, recorder.at(i)) << "\n";
  }
  out.flush();  // surface ENOSPC here, not in the silent destructor
  return static_cast<bool>(out);
}

bool write_mi_records_csv(const std::string& path,
                          const TelemetryRecorder& recorder) {
  std::ofstream out(path);
  if (!out) return false;
  out << "t_sec,mi_id,target_rate_mbps,send_rate_mbps,throughput_mbps,"
         "utility,utility_throughput_term,utility_gradient_penalty,"
         "utility_loss_penalty,utility_deviation_penalty,"
         "rtt_gradient_raw,rtt_gradient,rtt_dev_raw_sec,rtt_dev_sec,"
         "deviation_floor_sec,trending_evaluated,gradient_significant,"
         "deviation_significant,mi_tolerated,rc_state,base_rate_mbps,"
         "mode,hybrid_threshold_mbps,in_survival,survival_entries,braked,"
         "loss_rate,avg_rtt_sec,rtt_samples,packets_sent,packets_acked,"
         "packets_lost,duration_sec\n";
  for (size_t i = 0; i < recorder.size(); ++i) {
    const MiRecord& r = recorder.at(i);
    out << fmt_double(r.t_sec) << "," << r.mi_id << ","
        << fmt_double(r.target_rate_mbps) << ","
        << fmt_double(r.send_rate_mbps) << ","
        << fmt_double(r.throughput_mbps) << "," << fmt_double(r.utility)
        << "," << fmt_double(r.utility_throughput_term) << ","
        << fmt_double(r.utility_gradient_penalty) << ","
        << fmt_double(r.utility_loss_penalty) << ","
        << fmt_double(r.utility_deviation_penalty) << ","
        << fmt_double(r.rtt_gradient_raw) << "," << fmt_double(r.rtt_gradient)
        << "," << fmt_double(r.rtt_dev_raw_sec) << ","
        << fmt_double(r.rtt_dev_sec) << ","
        << fmt_double(r.deviation_floor_sec) << ","
        << (r.trending_evaluated ? 1 : 0) << ","
        << (r.gradient_significant ? 1 : 0) << ","
        << (r.deviation_significant ? 1 : 0) << ","
        << (r.mi_tolerated ? 1 : 0) << "," << r.rc_state << ","
        << fmt_double(r.base_rate_mbps) << "," << r.mode << ","
        << fmt_double(r.hybrid_threshold_mbps) << ","
        << (r.in_survival ? 1 : 0) << "," << r.survival_entries << ","
        << (r.braked ? 1 : 0) << "," << fmt_double(r.loss_rate) << ","
        << fmt_double(r.avg_rtt_sec) << "," << r.rtt_samples << ","
        << r.packets_sent << "," << r.packets_acked << "," << r.packets_lost
        << "," << fmt_double(r.duration_sec) << "\n";
  }
  out.flush();  // surface ENOSPC here, not in the silent destructor
  return static_cast<bool>(out);
}

bool write_metrics_csv(const std::string& path, const MetricsRegistry& reg) {
  std::ofstream out(path);
  if (!out) return false;
  out << "kind,name,value\n";
  for (const auto& e : reg.entries()) {
    out << e.kind << "," << e.name << "," << fmt_double(e.value) << "\n";
  }
  out.flush();  // surface ENOSPC here, not in the silent destructor
  return static_cast<bool>(out);
}

std::string sanitize_path_component(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "flow";
  return out;
}

}  // namespace proteus
