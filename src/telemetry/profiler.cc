#include "telemetry/profiler.h"

#include <cstdio>

namespace proteus {

std::atomic<Profiler*> Profiler::current_{nullptr};

const char* profile_phase_name(ProfilePhase p) {
  switch (p) {
    case ProfilePhase::kOnAck: return "on_ack";
    case ProfilePhase::kSealMi: return "seal_mi";
    case ProfilePhase::kRateControl: return "rate_control";
    case ProfilePhase::kEventQueue: return "event_queue";
    case ProfilePhase::kShardExec: return "shard_exec";
    case ProfilePhase::kShardBarrier: return "shard_barrier";
    case ProfilePhase::kShardDrain: return "shard_drain";
    case ProfilePhase::kChurnArrival: return "churn_arrival";
    case ProfilePhase::kChurnTeardown: return "churn_teardown";
    case ProfilePhase::kCount: break;
  }
  return "?";
}

void Profiler::reset() {
  for (auto& c : cells_) {
    c.calls.store(0, std::memory_order_relaxed);
    c.total_ns.store(0, std::memory_order_relaxed);
  }
}

std::string Profiler::summary_table() const {
  std::string out;
  out += "phase           calls        total_ms     ns/call\n";
  for (int i = 0; i < static_cast<int>(ProfilePhase::kCount); ++i) {
    const auto p = static_cast<ProfilePhase>(i);
    const PhaseStats s = stats(p);
    const double total_ms = static_cast<double>(s.total_ns) / 1e6;
    const double per_call =
        s.calls > 0
            ? static_cast<double>(s.total_ns) / static_cast<double>(s.calls)
            : 0.0;
    char line[160];
    std::snprintf(line, sizeof(line), "%-14s %10llu %14.3f %11.1f\n",
                  profile_phase_name(p),
                  static_cast<unsigned long long>(s.calls), total_ms,
                  per_call);
    out += line;
  }
  return out;
}

Profiler* Profiler::install(Profiler* p) {
  return current_.exchange(p, std::memory_order_relaxed);
}

}  // namespace proteus
