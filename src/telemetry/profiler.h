// Opt-in phase profiler: nanosecond timers aggregated per pipeline phase
// (ACK processing, MI sealing, rate control, event dispatch).
//
// Off by default; `Profiler::install` arms a global atomic pointer and
// PROTEUS_PROFILE_SCOPE then times its enclosing block. When disarmed, a
// scope costs one relaxed atomic load and a branch — below the noise
// floor of the hot paths it instruments (pinned by bench/micro_bench).
//
// Wall-clock time is only read here, never by the simulation itself, so
// profiling cannot perturb simulated results.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace proteus {

enum class ProfilePhase : int {
  kOnAck = 0,      // transport: Sender::on_packet ACK handling
  kSealMi,         // core: MI sealing + noise control + utility
  kRateControl,    // core: gradient controller decision
  kEventQueue,     // sim: event dispatch (inclusive of handlers)
  kShardExec,      // sim: one part's slice of a shard window (inclusive)
  kShardBarrier,   // sim: waiting at a window barrier (threaded only)
  kShardDrain,     // sim: sorting + scheduling cross-part handoffs
  kChurnArrival,   // harness: spawning one churned flow
  kChurnTeardown,  // harness: retiring one completed/abandoned flow
  kCount,
};

const char* profile_phase_name(ProfilePhase p);

class Profiler {
 public:
  struct PhaseStats {
    uint64_t calls = 0;
    uint64_t total_ns = 0;
  };

  void record(ProfilePhase p, uint64_t ns) {
    auto& c = cells_[static_cast<int>(p)];
    c.calls.fetch_add(1, std::memory_order_relaxed);
    c.total_ns.fetch_add(ns, std::memory_order_relaxed);
  }

  PhaseStats stats(ProfilePhase p) const {
    const auto& c = cells_[static_cast<int>(p)];
    return {c.calls.load(std::memory_order_relaxed),
            c.total_ns.load(std::memory_order_relaxed)};
  }

  void reset();

  // Human-readable summary table (phase, calls, total ms, ns/call).
  std::string summary_table() const;

  // Global arm/disarm. `install` returns the previous profiler (usually
  // null) so tests can restore it.
  static Profiler* install(Profiler* p);
  static Profiler* current() {
    return current_.load(std::memory_order_relaxed);
  }

 private:
  struct Cell {
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> total_ns{0};
  };
  Cell cells_[static_cast<int>(ProfilePhase::kCount)];

  static std::atomic<Profiler*> current_;
};

// RAII timer: samples the global profiler once at construction; if armed,
// records elapsed wall nanoseconds into the phase on destruction.
class ProfileScope {
 public:
  explicit ProfileScope(ProfilePhase phase)
      : profiler_(Profiler::current()), phase_(phase) {
    if (profiler_ != nullptr) {
      start_ = std::chrono::steady_clock::now();
    }
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start_)
                          .count();
      profiler_->record(phase_, static_cast<uint64_t>(ns));
    }
  }

  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
  ProfilePhase phase_;
  std::chrono::steady_clock::time_point start_;
};

#define PROTEUS_PROFILE_CONCAT2(a, b) a##b
#define PROTEUS_PROFILE_CONCAT(a, b) PROTEUS_PROFILE_CONCAT2(a, b)
#define PROTEUS_PROFILE_SCOPE(phase)                     \
  ::proteus::ProfileScope PROTEUS_PROFILE_CONCAT(        \
      proteus_profile_scope_, __LINE__)(phase)

}  // namespace proteus
