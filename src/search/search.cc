#include "search/search.h"

#include <algorithm>
#include <stdexcept>

#include "harness/fault_spec.h"

namespace proteus {

namespace {

uint64_t mix64(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Child-mutation seed: a pure function of (search seed, generation,
// child index) — the root of the --jobs determinism contract.
uint64_t child_seed(uint64_t seed, int generation, int child) {
  uint64_t z = seed + 0x9e3779b97f4a7c15ULL *
                          (static_cast<uint64_t>(generation) * 4096 + 1 +
                           static_cast<uint64_t>(child));
  return mix64(z);
}

CliOptions options_for(const ScenarioGenome& g) {
  const CliParseResult r = parse_cli(genome_to_args(g));
  if (!r.ok) {
    // mutate/repair emitted something outside the CLI grammar — a search
    // bug, not a property of the candidate.
    throw std::logic_error("genome does not round-trip through parse_cli: " +
                           r.error + " [" + genome_cli_line(g) + "]");
  }
  return r.options;
}

// Evaluates a batch of candidates, preserving order. Simulation-backed
// objectives go through the supervised harness; analytic ones (planted)
// score directly.
std::vector<Finding> evaluate_batch(const std::vector<ScenarioGenome>& batch,
                                    const Objective& objective,
                                    const SearchConfig& cfg,
                                    bool* interrupted) {
  std::vector<Finding> out;
  out.reserve(batch.size());
  if (!objective.needs_run()) {
    for (const ScenarioGenome& g : batch) {
      Finding f;
      f.genome = g;
      f.cli = genome_cli_line(g);
      f.score = objective.score(g, EvalSummary{});
      out.push_back(std::move(f));
    }
    return out;
  }

  std::vector<SupervisedTask<EvalSummary>> tasks;
  tasks.reserve(batch.size());
  for (const ScenarioGenome& g : batch) {
    const CliOptions opt = options_for(g);
    RunInfo info = run_info(objective.name(), opt.scenario);
    info.cli = genome_cli_line(g);
    tasks.push_back({[opt](RunContext& ctx) {
                       return evaluate_options(opt, &ctx);
                     },
                     std::move(info)});
  }
  SupervisorConfig scfg;
  scfg.jobs = cfg.jobs;
  scfg.retries = 0;  // a retried sub-seed would depend on scheduling
  scfg.run_timeout_sec = cfg.run_timeout_sec;
  scfg.bundle_dir = cfg.bundle_dir;
  scfg.sweep_name = "proteus_search";
  SupervisedSweep<EvalSummary> sweep =
      run_supervised(std::move(tasks), scfg, eval_summary_codec());
  if (sweep.interrupted) *interrupted = true;

  for (size_t i = 0; i < batch.size(); ++i) {
    Finding f;
    f.genome = batch[i];
    f.cli = genome_cli_line(batch[i]);
    f.status = sweep.statuses[i].status;
    switch (f.status) {
      case RunStatus::kOk:
        f.score = objective.score(batch[i], sweep.results[i]);
        break;
      case RunStatus::kInvariantViolation:
        // A genome that breaks the simulator outranks everything.
        f.score = kInvariantScore;
        break;
      default:  // error/timeout/skipped: park at the bottom of the pool
        f.score = -1e30;
        break;
    }
    out.push_back(std::move(f));
  }
  return out;
}

// Indices of `pool` sorted best-first: score descending, insertion order
// ascending on ties (stable, so equal scores keep discovery order).
std::vector<size_t> ranked(const std::vector<Finding>& pool) {
  std::vector<size_t> idx(pool.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&pool](size_t a, size_t b) {
    return pool[a].score > pool[b].score;
  });
  return idx;
}

}  // namespace

SearchResult run_search(const SearchConfig& cfg, FILE* log) {
  const std::unique_ptr<Objective> objective = make_objective(cfg.objective);
  const GenomeConstraints constraints = objective->constraints();
  const int budget = std::max(1, cfg.budget);
  const int mu = std::max(1, cfg.mu);
  const int lambda = std::max(1, cfg.lambda);

  ScenarioGenome baseline = objective->baseline();
  baseline.duration_sec = cfg.duration_sec;
  baseline.warmup_sec = cfg.warmup_sec;
  baseline = repair_genome(std::move(baseline), constraints);

  SearchResult result;
  std::vector<Finding> pool;

  // Generation 0: the pristine baseline plus a randomized initial
  // population (child 0 is the baseline; randoms use child indices >= 1
  // so their seeds never collide with generation-1 children).
  std::vector<ScenarioGenome> batch{baseline};
  const int init = std::min(lambda, budget - 1);
  for (int j = 1; j <= init; ++j) {
    Rng rng(child_seed(cfg.seed, 0, j));
    batch.push_back(random_genome(baseline, constraints, rng));
  }
  int generation = 0;
  while (true) {
    std::vector<Finding> findings =
        evaluate_batch(batch, *objective, cfg, &result.interrupted);
    if (generation == 0) result.baseline_score = findings.front().score;
    result.evaluations += static_cast<int>(findings.size());
    for (Finding& f : findings) pool.push_back(std::move(f));
    result.generations = generation + 1;

    const std::vector<size_t> order = ranked(pool);
    result.trajectory.push_back(pool[order.front()].score);
    if (log != nullptr) {
      std::fprintf(log, "gen %d evals %d best %s\n", generation,
                   result.evaluations,
                   format_double_shortest(pool[order.front()].score).c_str());
    }
    if (result.interrupted || result.evaluations >= budget) break;

    // Next generation: lambda children of the top-mu survivors.
    ++generation;
    const int children =
        std::min(lambda, budget - result.evaluations);
    batch.clear();
    for (int j = 0; j < children; ++j) {
      const Finding& parent =
          pool[order[static_cast<size_t>(j) % std::min<size_t>(mu, order.size())]];
      Rng rng(child_seed(cfg.seed, generation, j));
      batch.push_back(mutate_genome(parent.genome, constraints, rng));
    }
  }

  // Top-k findings, deduped by CLI line (mutation can rediscover the
  // same candidate through different paths).
  const std::vector<size_t> order = ranked(pool);
  std::vector<std::string> seen;
  for (const size_t i : order) {
    if (static_cast<int>(result.top.size()) >= std::max(1, cfg.top_k)) break;
    if (std::find(seen.begin(), seen.end(), pool[i].cli) != seen.end()) {
      continue;
    }
    seen.push_back(pool[i].cli);
    result.top.push_back(pool[i]);
  }
  return result;
}

}  // namespace proteus
