#include "search/objective.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace proteus {

double available_fraction(const std::vector<FaultSpec>& faults, int link,
                          TimeNs from, TimeNs to) {
  if (to <= from) return 1.0;
  std::vector<const FaultSpec*> events;
  std::vector<TimeNs> bounds{from, to};
  for (const FaultSpec& f : faults) {
    if (f.link != link) continue;
    if (f.type != FaultType::kBlackout && f.type != FaultType::kCapacity) {
      continue;
    }
    events.push_back(&f);
    if (f.start > from && f.start < to) bounds.push_back(f.start);
    if (f.end() > from && f.end() < to) bounds.push_back(f.end());
  }
  if (events.empty()) return 1.0;
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());

  // Activity is constant on each segment between boundaries; windows are
  // half-open [start, end), so the segment's left edge classifies it.
  double weighted = 0.0;
  for (size_t i = 0; i + 1 < bounds.size(); ++i) {
    const TimeNs a = bounds[i];
    const TimeNs b = bounds[i + 1];
    double mult = 1.0;
    for (const FaultSpec* f : events) {
      if (!f->active(a)) continue;
      if (f->type == FaultType::kBlackout) {
        mult = 0.0;
        break;
      }
      mult *= std::max(0.0, f->value);
    }
    weighted += mult * static_cast<double>(b - a);
  }
  return weighted / static_cast<double>(to - from);
}

namespace {

uint64_t splitmix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double unit_double(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

const std::vector<std::string>& default_cross_pool() {
  static const std::vector<std::string> kPool = {
      "cubic", "bbr", "copa", "proteus-p", "ledbat", "vivace"};
  return kPool;
}

// ---- scavenger-utility -------------------------------------------------
//
// Flow 0 is a Proteus-S scavenger. Its entitlement is the capacity the
// schedule left available minus whatever the cross traffic actually
// took; the score is the (normalized) part of that entitlement it failed
// to claim. Dumbbell-only so every flow shares the one bottleneck and
// the entitlement arithmetic is exact.
class ScavengerUtilityObjective final : public Objective {
 public:
  std::string name() const override { return "scavenger-utility"; }
  ScenarioGenome baseline() const override {
    ScenarioGenome g;
    g.flows = {{"proteus-s", 0.0}, {"cubic", 0.0}};
    return g;
  }
  GenomeConstraints constraints() const override {
    GenomeConstraints c;
    c.protected_flows = 1;
    c.allowed_kinds = {TopologyKind::kDumbbell};
    c.cross_protocols = default_cross_pool();
    return c;
  }
  double score(const ScenarioGenome&, const EvalSummary& s) const override {
    if (s.flows.empty() || s.capacity_mbps <= 0.0) return 0.0;
    double cross = 0.0;
    for (size_t i = 1; i < s.flows.size(); ++i) cross += s.flows[i].mbps;
    const double leftover = s.available_mbps - cross;
    return (leftover - s.flows[0].mbps) / s.capacity_mbps;
  }
};

// ---- fairness ----------------------------------------------------------
//
// Flows 0 and 1 (cubic vs proteus-p) are protected; the score is their
// throughput imbalance |a-b|/(a+b) in [0, 1]. Dumbbell-only so the pair
// actually shares a bottleneck.
class FairnessObjective final : public Objective {
 public:
  std::string name() const override { return "fairness"; }
  ScenarioGenome baseline() const override {
    ScenarioGenome g;
    g.flows = {{"cubic", 0.0}, {"proteus-p", 0.0}};
    return g;
  }
  GenomeConstraints constraints() const override {
    GenomeConstraints c;
    c.protected_flows = 2;
    c.allowed_kinds = {TopologyKind::kDumbbell};
    c.cross_protocols = default_cross_pool();
    c.max_flows = 4;
    return c;
  }
  double score(const ScenarioGenome&, const EvalSummary& s) const override {
    if (s.flows.size() < 2) return 0.0;
    const double a = s.flows[0].mbps;
    const double b = s.flows[1].mbps;
    return std::fabs(a - b) / (a + b + 1e-9);
  }
};

// ---- recovery ----------------------------------------------------------
//
// Flow 0 is a Proteus-P primary and the genome always carries at least
// one finite blackout. The score is the sender's tracked post-blackout
// recovery time; a never-completed recovery scores the time left between
// the last blackout's end and the end of the run (so late blackouts earn
// nothing and genuinely-stuck senders earn the most). Multi-hop shapes
// are in play: faults may target any hop on the primary path.
class RecoveryObjective final : public Objective {
 public:
  std::string name() const override { return "recovery"; }
  ScenarioGenome baseline() const override {
    ScenarioGenome g;
    g.flows = {{"proteus-p", 0.0}};
    g.faults = {{FaultType::kBlackout, from_sec(6), from_sec(1)}};
    return g;
  }
  GenomeConstraints constraints() const override {
    GenomeConstraints c;
    c.protected_flows = 1;
    c.allowed_kinds = {TopologyKind::kDumbbell, TopologyKind::kParkingLot,
                       TopologyKind::kFanIn, TopologyKind::kStar};
    c.cross_protocols = default_cross_pool();
    c.require_blackout = true;
    c.max_flows = 4;
    return c;
  }
  double score(const ScenarioGenome& g, const EvalSummary& s) const override {
    if (s.flows.empty()) return 0.0;
    const double r = s.flows[0].recovery_sec;
    if (r >= 0.0) return std::min(r, g.duration_sec);
    TimeNs last_end = 0;
    for (const FaultSpec& f : g.faults) {
      if (f.type != FaultType::kBlackout) continue;
      const TimeNs end = f.end() == kTimeInfinite ? from_sec(g.duration_sec)
                                                  : f.end();
      last_end = std::max(last_end, std::min(end, from_sec(g.duration_sec)));
    }
    return std::max(0.0, g.duration_sec - to_sec(last_end));
  }
};

// ---- planted[:k] -------------------------------------------------------
//
// Analytic smoke objective: a splitmix64-derived "bug region" in genome
// space (a target bandwidth/RTT and a target blackout start). The
// pristine baseline scores poorly by construction — it has no faults —
// so any functioning driver must discover a strictly better genome.
// Scoring never runs the simulator; verify.sh uses this for its
// seconds-scale smoke search.
class PlantedObjective final : public Objective {
 public:
  explicit PlantedObjective(uint64_t k) : key_(k) {
    uint64_t state = k * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;
    target_bw_ = 2.0 * std::pow(200.0, unit_double(splitmix64(state)));
    target_rtt_ = 2.0 * std::pow(200.0, unit_double(splitmix64(state)));
    target_frac_ = 0.1 + 0.7 * unit_double(splitmix64(state));
  }
  std::string name() const override {
    return "planted:" + std::to_string(key_);
  }
  bool needs_run() const override { return false; }
  ScenarioGenome baseline() const override {
    ScenarioGenome g;
    g.flows = {{"cubic", 0.0}};
    return g;
  }
  GenomeConstraints constraints() const override {
    GenomeConstraints c;
    c.protected_flows = 1;
    c.allowed_kinds = {TopologyKind::kDumbbell, TopologyKind::kParkingLot,
                       TopologyKind::kFanIn, TopologyKind::kStar};
    c.cross_protocols = default_cross_pool();
    return c;
  }
  double score(const ScenarioGenome& g, const EvalSummary&) const override {
    double s = -std::fabs(std::log(g.bandwidth_mbps / target_bw_)) -
               std::fabs(std::log(g.rtt_ms / target_rtt_));
    const double target_t = target_frac_ * g.duration_sec;
    double blackout_term = -1.0;  // no blackout at all: flat penalty
    for (const FaultSpec& f : g.faults) {
      if (f.type != FaultType::kBlackout) continue;
      const double dist =
          std::fabs(to_sec(f.start) - target_t) / std::max(1.0, g.duration_sec);
      blackout_term = std::max(blackout_term, 2.0 - 4.0 * dist);
    }
    return s + blackout_term;
  }

 private:
  uint64_t key_;
  double target_bw_ = 0.0;
  double target_rtt_ = 0.0;
  double target_frac_ = 0.0;
};

}  // namespace

std::unique_ptr<Objective> make_objective(const std::string& name) {
  if (name == "scavenger-utility") {
    return std::make_unique<ScavengerUtilityObjective>();
  }
  if (name == "fairness") return std::make_unique<FairnessObjective>();
  if (name == "recovery") return std::make_unique<RecoveryObjective>();
  if (name == "planted" || name.rfind("planted:", 0) == 0) {
    uint64_t k = 0;
    if (name.size() > 8) {
      try {
        k = std::stoull(name.substr(8));
      } catch (const std::exception&) {
        throw std::invalid_argument("bad planted objective key: " + name);
      }
    }
    return std::make_unique<PlantedObjective>(k);
  }
  throw std::invalid_argument("unknown objective: " + name +
                              " (want scavenger-utility|fairness|recovery|"
                              "planted[:k])");
}

const std::vector<std::string>& objective_names() {
  static const std::vector<std::string> kNames = {
      "scavenger-utility", "fairness", "recovery", "planted"};
  return kNames;
}

}  // namespace proteus
