#include "search/evaluate.h"

#include "core/pcc_sender.h"

namespace proteus {

EvalSummary evaluate_options(const CliOptions& opt, RunContext* ctx) {
  ScenarioConfig cfg = opt.scenario;
  if (ctx != nullptr) cfg.seed = ctx->attempt_seed(opt.scenario.seed);
  Scenario scenario(cfg);
  std::vector<Flow*> flows;
  flows.reserve(opt.flows.size());
  for (const CliFlowSpec& spec : opt.flows) {
    flows.push_back(&scenario.add_flow(spec.protocol, from_sec(spec.start_sec)));
  }
  supervised_run_until(scenario, from_sec(opt.duration_sec), ctx);
  check_invariants_or_throw(scenario);

  const TimeNs w0 = from_sec(opt.warmup_sec);
  const TimeNs w1 = from_sec(opt.duration_sec);
  EvalSummary s;
  s.capacity_mbps = cfg.bandwidth_mbps;
  s.available_mbps =
      cfg.bandwidth_mbps * available_fraction(cfg.faults, 0, w0, w1);
  for (const Flow* f : flows) {
    FlowOutcome o;
    o.mbps = f->mean_throughput_mbps(w0, w1);
    if (f->rtt_samples().count() > 0) {
      o.rtt_p50_ms = f->rtt_samples().median();
      o.rtt_p95_ms = f->rtt_samples().percentile(95);
    }
    const auto& st = f->sender().stats();
    if (st.packets_sent > 0) {
      o.loss_pct = 100.0 * static_cast<double>(st.packets_lost) /
                   static_cast<double>(st.packets_sent);
    }
    if (const auto* pcc = dynamic_cast<const PccSender*>(&f->sender().cc())) {
      if (pcc->last_recovery_time() != kTimeInfinite) {
        o.recovery_sec = to_sec(pcc->last_recovery_time());
      }
    }
    s.flows.push_back(o);
  }
  return s;
}

ResultCodec<EvalSummary> eval_summary_codec() {
  return codec_from<EvalSummary>(
      [](const EvalSummary& s) {
        std::vector<double> v{s.capacity_mbps, s.available_mbps,
                              static_cast<double>(s.flows.size())};
        for (const FlowOutcome& f : s.flows) {
          v.push_back(f.mbps);
          v.push_back(f.rtt_p50_ms);
          v.push_back(f.rtt_p95_ms);
          v.push_back(f.loss_pct);
          v.push_back(f.recovery_sec);
        }
        return v;
      },
      [](const std::vector<double>& v) {
        EvalSummary s;
        if (v.size() < 3) return s;
        s.capacity_mbps = v[0];
        s.available_mbps = v[1];
        const size_t n = static_cast<size_t>(v[2]);
        for (size_t i = 0; i < n && 3 + 5 * i + 4 < v.size(); ++i) {
          FlowOutcome f;
          f.mbps = v[3 + 5 * i];
          f.rtt_p50_ms = v[3 + 5 * i + 1];
          f.rtt_p95_ms = v[3 + 5 * i + 2];
          f.loss_pct = v[3 + 5 * i + 3];
          f.recovery_sec = v[3 + 5 * i + 4];
          s.flows.push_back(f);
        }
        return s;
      });
}

}  // namespace proteus
