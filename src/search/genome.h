// ScenarioGenome: a fully serializable candidate scenario for the
// adversarial search driver (search.h).
//
// A genome carries every dimension the search mutates — bottleneck
// bandwidth/RTT/buffer/loss, topology shape + arms, the cross-traffic
// mix, and a FaultTimeline spec (including per-link `link<i>:` targets)
// — plus the run window and simulation seed. Its canonical serialized
// form IS a `proteus_sim` command line: genome_to_args() emits argv-style
// flags that parse_cli() maps back onto the identical genome, so every
// discovered worst case is replayable verbatim by the stock simulator
// CLI with zero translation layers. The search evaluates candidates
// *through* that round trip, which is what makes the emitted spec exact
// by construction rather than by convention.
#pragma once

#include <string>
#include <vector>

#include "harness/cli.h"

namespace proteus {

struct FlowGene {
  std::string protocol;
  double start_sec = 0.0;
};

struct ScenarioGenome {
  double bandwidth_mbps = 50.0;
  double rtt_ms = 30.0;
  int64_t buffer_bytes = 375'000;
  double random_loss = 0.0;
  TopologyParams topology;
  // flows[0] (and any objective-protected prefix) is the subject under
  // attack; the tail is the mutable cross-traffic mix.
  std::vector<FlowGene> flows;
  std::vector<FaultSpec> faults;
  double duration_sec = 12.0;
  double warmup_sec = 4.0;
  uint64_t seed = 1;
};

// Canonical argv-style serialization (flag order and number formatting
// are deterministic; faults are emitted sorted by (start, link, type)).
// parse_cli() on the result reproduces the genome exactly, and
// genome_to_args(genome_from_options(...)) is byte-stable.
std::vector<std::string> genome_to_args(const ScenarioGenome& g);

// One replayable line: "proteus_sim" + the args, space-joined.
std::string genome_cli_line(const ScenarioGenome& g);

// Inverse of genome_to_args, via parse_cli's CliOptions.
ScenarioGenome genome_from_options(const CliOptions& opt);

// Bottleneck-link count of the genome's topology shape (dumbbell 1,
// parking-lot `arms`, fan-in/star `arms`+1); used to clamp fault
// targets so every mutated spec stays constructible.
int genome_link_count(const ScenarioGenome& g);

}  // namespace proteus
