#include "search/genome.h"

#include <algorithm>
#include <stdexcept>

#include "harness/fault_spec.h"

namespace proteus {

namespace {

// The CLI grammar names (parse_topology_flag), not the display names.
const char* topology_cli_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDumbbell: return "dumbbell";
    case TopologyKind::kParkingLot: return "parkinglot";
    case TopologyKind::kFanIn: return "fanin";
    case TopologyKind::kStar: return "star";
    case TopologyKind::kCdnEdge: return "cdn";
  }
  return "dumbbell";
}

std::string fmt(double v) { return format_double_shortest(v); }

}  // namespace

std::vector<std::string> genome_to_args(const ScenarioGenome& g) {
  std::vector<std::string> args;
  args.push_back("--bw=" + fmt(g.bandwidth_mbps));
  args.push_back("--rtt=" + fmt(g.rtt_ms));
  args.push_back("--buffer=" + std::to_string(g.buffer_bytes));
  if (g.random_loss > 0.0) args.push_back("--loss=" + fmt(g.random_loss));
  args.push_back("--duration=" + fmt(g.duration_sec));
  args.push_back("--warmup=" + fmt(g.warmup_sec));
  args.push_back("--seed=" + std::to_string(g.seed));
  if (g.topology.kind != TopologyKind::kDumbbell) {
    std::string topo = std::string("--topology=") +
                       topology_cli_name(g.topology.kind) +
                       ":arms=" + std::to_string(g.topology.arms);
    if (g.topology.edge_bandwidth_mbps > 0.0) {
      topo += ":edge-bw=" + fmt(g.topology.edge_bandwidth_mbps);
    }
    if (g.topology.rtt_spread != 1.0) {
      topo += ":spread=" + fmt(g.topology.rtt_spread);
    }
    args.push_back(topo);
  }
  if (!g.faults.empty()) {
    std::vector<FaultSpec> sorted = g.faults;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const FaultSpec& a, const FaultSpec& b) {
                       if (a.start != b.start) return a.start < b.start;
                       if (a.link != b.link) return a.link < b.link;
                       return static_cast<int>(a.type) <
                              static_cast<int>(b.type);
                     });
    args.push_back("--faults=" + format_faults(sorted));
  }
  std::string flows = "--flows=";
  for (size_t i = 0; i < g.flows.size(); ++i) {
    if (i) flows += ",";
    flows += g.flows[i].protocol;
    if (g.flows[i].start_sec > 0.0) flows += "@" + fmt(g.flows[i].start_sec);
  }
  args.push_back(flows);
  return args;
}

std::string genome_cli_line(const ScenarioGenome& g) {
  std::string line = "proteus_sim";
  for (const std::string& a : genome_to_args(g)) line += " " + a;
  return line;
}

ScenarioGenome genome_from_options(const CliOptions& opt) {
  ScenarioGenome g;
  g.bandwidth_mbps = opt.scenario.bandwidth_mbps;
  g.rtt_ms = opt.scenario.rtt_ms;
  g.buffer_bytes = opt.scenario.buffer_bytes;
  g.random_loss = opt.scenario.random_loss;
  g.topology = opt.scenario.topology;
  g.faults = opt.scenario.faults;
  g.duration_sec = opt.duration_sec;
  g.warmup_sec = opt.warmup_sec;
  g.seed = opt.scenario.seed;
  for (const CliFlowSpec& f : opt.flows) {
    g.flows.push_back({f.protocol, f.start_sec});
  }
  return g;
}

int genome_link_count(const ScenarioGenome& g) {
  const int arms = std::max(2, g.topology.arms);
  switch (g.topology.kind) {
    case TopologyKind::kDumbbell: return 1;
    case TopologyKind::kParkingLot: return arms;
    case TopologyKind::kFanIn: return arms + 1;
    case TopologyKind::kStar: return arms + 1;
    case TopologyKind::kCdnEdge: return arms + 1;  // core + one leaf per arm
  }
  return 1;
}

}  // namespace proteus
