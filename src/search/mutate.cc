#include "search/mutate.h"

#include <algorithm>
#include <cmath>

namespace proteus {

namespace {

// Grammar-wide parameter bounds. Wider than any experiment preset so the
// search can probe extremes, but inside what the simulator models
// sensibly (and what a run of a few seconds can exercise).
constexpr double kMinBw = 1.0, kMaxBw = 400.0;       // Mbps
constexpr double kMinRtt = 2.0, kMaxRtt = 400.0;     // ms
constexpr int64_t kMinBuffer = 8'000, kMaxBuffer = 4'000'000;  // bytes
constexpr double kMaxLoss = 0.05;
constexpr int kMinArms = 2, kMaxArms = 8;

// The fault grammar formats sub-second times in milliseconds, so the
// mutator only ever emits ms-quantized times; that keeps
// genome -> CLI -> genome byte-exact.
TimeNs quant_ms(TimeNs t) {
  const TimeNs half = t >= 0 ? kNsPerMs / 2 : -kNsPerMs / 2;
  return ((t + half) / kNsPerMs) * kNsPerMs;
}

TimeNs rand_time(Rng& rng, double lo_sec, double hi_sec) {
  const int64_t lo = std::llround(lo_sec * 1e3);
  const int64_t hi = std::llround(hi_sec * 1e3);
  return rng.uniform_int(lo, std::max(lo, hi)) * kNsPerMs;
}

double log_perturb(Rng& rng, double v, double spread) {
  return v * std::exp(rng.uniform(-spread, spread));
}

int mutable_flow(const ScenarioGenome& g, const GenomeConstraints& c,
                 Rng& rng) {
  const int n = static_cast<int>(g.flows.size());
  if (n <= c.protected_flows) return -1;
  return static_cast<int>(rng.uniform_int(c.protected_flows, n - 1));
}

FaultSpec random_fault(const ScenarioGenome& g, Rng& rng) {
  static const FaultType kTypes[] = {
      FaultType::kBlackout,  FaultType::kCapacity, FaultType::kRouteChange,
      FaultType::kReorder,   FaultType::kDuplicate, FaultType::kAckLoss,
      FaultType::kAckBurst};
  FaultSpec f;
  f.type = kTypes[rng.uniform_int(0, 6)];
  f.start = rand_time(rng, 0.5, std::max(1.0, g.duration_sec - 1.0));
  f.duration = rand_time(rng, 0.2, 3.0);
  switch (f.type) {
    case FaultType::kCapacity:
      f.value = rng.uniform(0.05, 0.9);
      break;
    case FaultType::kRouteChange:
      f.delay = rand_time(rng, -0.02, 0.15);
      if (f.delay == 0) f.delay = kNsPerMs;
      break;
    case FaultType::kReorder:
      f.value = rng.uniform(0.01, 0.5);
      f.delay = rand_time(rng, 0.001, 0.05);
      break;
    case FaultType::kDuplicate:
    case FaultType::kAckLoss:
      f.value = rng.uniform(0.01, 0.5);
      break;
    case FaultType::kBlackout:
    case FaultType::kAckBurst:
      break;
  }
  const int links = genome_link_count(g);
  if (links > 1 && rng.bernoulli(0.5)) {
    f.link = static_cast<int>(rng.uniform_int(0, links - 1));
  }
  return f;
}

// One mutation operator, selected by index. Operators that find nothing
// to act on (e.g. "remove a fault" on a fault-free genome) are no-ops;
// the draw still consumed deterministic RNG state, which is all the
// search needs.
void apply_op(ScenarioGenome& g, const GenomeConstraints& c, Rng& rng) {
  switch (rng.uniform_int(0, 16)) {
    case 0:
      g.bandwidth_mbps = log_perturb(rng, g.bandwidth_mbps, 0.7);
      break;
    case 1:
      g.rtt_ms = log_perturb(rng, g.rtt_ms, 0.7);
      break;
    case 2:
      g.buffer_bytes = static_cast<int64_t>(
          log_perturb(rng, static_cast<double>(g.buffer_bytes), 0.8));
      break;
    case 3:
      g.random_loss = rng.bernoulli(0.4) ? 0.0 : rng.uniform(0.0, kMaxLoss);
      break;
    case 4:
      g.seed = rng.uniform_int(1, 1'000'000);
      break;
    case 5:  // add fault
      if (static_cast<int>(g.faults.size()) < c.max_faults) {
        g.faults.push_back(random_fault(g, rng));
      }
      break;
    case 6:  // remove fault (repair re-inserts a blackout if required)
      if (!g.faults.empty()) {
        g.faults.erase(g.faults.begin() +
                       rng.uniform_int(0, g.faults.size() - 1));
      }
      break;
    case 7:  // shift a fault window
      if (!g.faults.empty()) {
        FaultSpec& f = g.faults[rng.uniform_int(0, g.faults.size() - 1)];
        f.start += rand_time(rng, -2.0, 2.0);
      }
      break;
    case 8:  // stretch/shrink a fault window
      if (!g.faults.empty()) {
        FaultSpec& f = g.faults[rng.uniform_int(0, g.faults.size() - 1)];
        if (f.duration > 0) {
          f.duration = quant_ms(static_cast<TimeNs>(
              static_cast<double>(f.duration) *
              std::exp(rng.uniform(-0.7, 0.7))));
        }
      }
      break;
    case 9:  // split one window into two with a gap between the halves
      if (!g.faults.empty() &&
          static_cast<int>(g.faults.size()) < c.max_faults) {
        FaultSpec& f = g.faults[rng.uniform_int(0, g.faults.size() - 1)];
        if (f.duration >= 600 * kNsPerMs) {
          FaultSpec second = f;
          const TimeNs half = quant_ms(f.duration * 2 / 5);
          second.start = f.start + f.duration - half;
          second.duration = half;
          f.duration = half;
          g.faults.push_back(second);
        }
      }
      break;
    case 10:  // perturb a fault's value/delay
      if (!g.faults.empty()) {
        FaultSpec& f = g.faults[rng.uniform_int(0, g.faults.size() - 1)];
        switch (f.type) {
          case FaultType::kCapacity:
            f.value = log_perturb(rng, std::max(f.value, 0.05), 0.5);
            break;
          case FaultType::kRouteChange:
            f.delay += rand_time(rng, -0.02, 0.05);
            break;
          case FaultType::kReorder:
            f.value = log_perturb(rng, f.value, 0.5);
            f.delay = quant_ms(static_cast<TimeNs>(
                log_perturb(rng, static_cast<double>(f.delay), 0.5)));
            break;
          case FaultType::kDuplicate:
          case FaultType::kAckLoss:
            f.value = log_perturb(rng, f.value, 0.5);
            break;
          case FaultType::kBlackout:
          case FaultType::kAckBurst:
            break;
        }
      }
      break;
    case 11:  // retarget a fault at another bottleneck hop
      if (!g.faults.empty() && genome_link_count(g) > 1) {
        FaultSpec& f = g.faults[rng.uniform_int(0, g.faults.size() - 1)];
        f.link = static_cast<int>(
            rng.uniform_int(0, genome_link_count(g) - 1));
      }
      break;
    case 12:  // add a cross-traffic flow
      if (static_cast<int>(g.flows.size()) < c.max_flows &&
          !c.cross_protocols.empty()) {
        FlowGene fg;
        fg.protocol =
            c.cross_protocols[rng.uniform_int(0, c.cross_protocols.size() - 1)];
        fg.start_sec = static_cast<double>(rng.uniform_int(
                           0, std::llround(g.duration_sec * 0.75 * 10))) /
                       10.0;
        g.flows.push_back(fg);
      }
      break;
    case 13: {  // remove a cross-traffic flow
      const int i = mutable_flow(g, c, rng);
      if (i >= 0) g.flows.erase(g.flows.begin() + i);
      break;
    }
    case 14: {  // swap a cross flow's protocol
      const int i = mutable_flow(g, c, rng);
      if (i >= 0 && !c.cross_protocols.empty()) {
        g.flows[i].protocol =
            c.cross_protocols[rng.uniform_int(0, c.cross_protocols.size() - 1)];
      }
      break;
    }
    case 15: {  // shift a cross flow's start (tenth-of-a-second grid)
      const int i = mutable_flow(g, c, rng);
      if (i >= 0) {
        g.flows[i].start_sec +=
            static_cast<double>(rng.uniform_int(-20, 20)) / 10.0;
      }
      break;
    }
    case 16:  // switch topology shape / arm count
      if (!c.allowed_kinds.empty()) {
        g.topology.kind =
            c.allowed_kinds[rng.uniform_int(0, c.allowed_kinds.size() - 1)];
        g.topology.arms =
            static_cast<int>(rng.uniform_int(kMinArms, kMaxArms));
      }
      break;
  }
}

}  // namespace

ScenarioGenome repair_genome(ScenarioGenome g, const GenomeConstraints& c) {
  g.bandwidth_mbps = std::clamp(g.bandwidth_mbps, kMinBw, kMaxBw);
  g.rtt_ms = std::clamp(g.rtt_ms, kMinRtt, kMaxRtt);
  g.buffer_bytes = std::clamp(g.buffer_bytes, kMinBuffer, kMaxBuffer);
  g.random_loss = std::clamp(g.random_loss, 0.0, kMaxLoss);
  if (g.seed == 0) g.seed = 1;

  if (!c.allowed_kinds.empty() &&
      std::find(c.allowed_kinds.begin(), c.allowed_kinds.end(),
                g.topology.kind) == c.allowed_kinds.end()) {
    g.topology.kind = c.allowed_kinds.front();
  }
  g.topology.arms = std::clamp(g.topology.arms, kMinArms, kMaxArms);

  if (static_cast<int>(g.flows.size()) > c.max_flows) {
    g.flows.resize(c.max_flows);
  }
  for (FlowGene& f : g.flows) {
    // One decimal place: survives the shortest-double CLI round trip and
    // keeps start times human-readable in corpus entries.
    f.start_sec = std::clamp(f.start_sec, 0.0, g.duration_sec - 1.0);
    f.start_sec = static_cast<double>(std::llround(f.start_sec * 10)) / 10.0;
  }

  if (static_cast<int>(g.faults.size()) > c.max_faults) {
    g.faults.resize(c.max_faults);
  }
  const int links = genome_link_count(g);
  const TimeNs run_end = from_sec(g.duration_sec);
  for (FaultSpec& f : g.faults) {
    f.link = std::clamp(f.link, 0, links - 1);
    f.start = quant_ms(std::clamp<TimeNs>(f.start, 0, run_end - from_ms(200)));
    if (f.duration != 0 || f.type == FaultType::kAckBurst) {
      f.duration = quant_ms(std::clamp<TimeNs>(
          f.duration, from_ms(100),
          std::max<TimeNs>(from_ms(100), run_end - f.start)));
    }
    switch (f.type) {
      case FaultType::kCapacity:
        f.value = std::clamp(f.value, 0.01, 0.95);
        f.delay = 0;
        break;
      case FaultType::kRouteChange:
        f.delay = quant_ms(std::clamp<TimeNs>(f.delay, -from_ms(50),
                                              from_ms(200)));
        if (f.delay == 0) f.delay = kNsPerMs;
        f.value = 0.0;
        break;
      case FaultType::kReorder:
        f.value = std::clamp(f.value, 0.005, 1.0);
        f.delay = quant_ms(std::clamp<TimeNs>(f.delay, kNsPerMs, from_ms(100)));
        break;
      case FaultType::kDuplicate:
      case FaultType::kAckLoss:
        f.value = std::clamp(f.value, 0.005, 1.0);
        f.delay = 0;
        break;
      case FaultType::kBlackout:
      case FaultType::kAckBurst:
        f.value = 0.0;
        f.delay = 0;
        break;
    }
  }

  if (c.require_blackout) {
    bool has = false;
    for (const FaultSpec& f : g.faults) {
      if (f.type == FaultType::kBlackout && f.duration > 0) has = true;
    }
    if (!has) {
      FaultSpec f;
      f.type = FaultType::kBlackout;
      f.start = quant_ms(from_sec(g.duration_sec * 0.5));
      f.duration = from_ms(500);
      if (static_cast<int>(g.faults.size()) >= c.max_faults) {
        g.faults.pop_back();
      }
      g.faults.push_back(f);
    }
  }
  return g;
}

ScenarioGenome mutate_genome(const ScenarioGenome& parent,
                             const GenomeConstraints& c, Rng& rng) {
  ScenarioGenome g = parent;
  const int ops = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < ops; ++i) apply_op(g, c, rng);
  return repair_genome(std::move(g), c);
}

ScenarioGenome random_genome(const ScenarioGenome& baseline,
                             const GenomeConstraints& c, Rng& rng) {
  ScenarioGenome g = baseline;
  const int ops = static_cast<int>(rng.uniform_int(5, 9));
  for (int i = 0; i < ops; ++i) apply_op(g, c, rng);
  return repair_genome(std::move(g), c);
}

}  // namespace proteus
