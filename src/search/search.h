// (mu+lambda) adversarial scenario search.
//
// The driver maintains a population of ScenarioGenomes, evaluates each
// candidate by running it through the supervised harness (watchdogs,
// invariant checks, --jobs parallelism), scores runs with a pluggable
// Objective (higher = worse case), and evolves the top mu survivors via
// grammar-aware mutations into lambda children per generation.
//
// Determinism contract: for a fixed (objective, budget, seed, mu,
// lambda, duration, warmup), the result — best genome, top-k list, and
// the whole score trajectory — is bit-identical regardless of --jobs.
// Every child's mutation RNG is a pure function of (search seed,
// generation, child index), candidates carry their own simulation
// seeds, retries are off, and the wall-clock watchdog defaults to off
// (it is the one knob that can break run-for-run determinism; enabling
// it trades that away for hang protection).
#pragma once

#include <cstdio>

#include "search/evaluate.h"
#include "search/mutate.h"

namespace proteus {

struct SearchConfig {
  std::string objective = "scavenger-utility";
  int budget = 200;  // total candidate evaluations, baseline included
  uint64_t seed = 1;
  int jobs = 1;
  int mu = 6;       // survivors per generation
  int lambda = 12;  // children per generation
  double duration_sec = 12.0;  // run window applied to every candidate
  double warmup_sec = 4.0;
  int top_k = 5;                 // findings kept in SearchResult::top
  double run_timeout_sec = 0.0;  // per-candidate wall watchdog (0 = off)
  std::string bundle_dir;        // repro bundles for failed runs ("" = off)
  double tolerance = 0.02;       // recorded into emitted corpus entries
};

struct Finding {
  double score = 0.0;
  RunStatus status = RunStatus::kOk;
  ScenarioGenome genome;
  std::string cli;  // genome_cli_line(genome): replay verbatim
};

struct SearchResult {
  std::vector<Finding> top;        // best first, deduped by CLI line
  std::vector<double> trajectory;  // best-so-far after each generation
  double baseline_score = 0.0;     // generation 0's pristine candidate
  int evaluations = 0;
  int generations = 0;
  bool interrupted = false;  // SIGINT/SIGTERM wound the search down early

  // True when the search found a candidate strictly worse (higher
  // score) than the objective's pristine baseline.
  bool improved() const {
    return !top.empty() && top.front().score > baseline_score;
  }
};

// Runs the search. Progress lines (one per generation) go to `log` when
// non-null; they never mention --jobs, so captured output is part of the
// determinism contract. Throws std::invalid_argument for an unknown
// objective name.
SearchResult run_search(const SearchConfig& cfg, FILE* log);

}  // namespace proteus
