// Grammar-aware genome mutation for the adversarial search driver.
//
// Mutations operate on the same dimensions the `proteus_sim` CLI can
// express — link parameters, topology shape, cross-traffic mix, fault
// windows — and every produced genome is repaired back inside the
// grammar (and the objective's GenomeConstraints) before it is
// returned, so a mutant always serializes to a parseable, replayable
// command line. All randomness draws from the caller's Rng; the search
// driver seeds one per (generation, child) so mutation is a pure
// function of the search seed regardless of --jobs.
#pragma once

#include "search/objective.h"
#include "stats/rng.h"

namespace proteus {

// Clamps every field of `g` into the grammar's and the constraints'
// valid ranges: bandwidth/RTT/buffer/loss bounds, topology kind in
// c.allowed_kinds with arms in [2, 8], fault windows inside the run
// with millisecond-quantized times (the fault grammar's exact
// resolution), per-type value/delay ranges, fault targets within the
// topology's link count, flow/fault counts within c.max_*, and a
// finite blackout inserted when c.require_blackout finds none.
ScenarioGenome repair_genome(ScenarioGenome g, const GenomeConstraints& c);

// One search step: applies 1-3 randomly chosen mutation operators
// (perturb link params log-scale, shift/stretch/split fault windows,
// add/remove/perturb/retarget faults, add/remove/swap/shift cross
// flows, switch topology shape, reseed) to a copy of `parent`, then
// repairs it. Flows [0, c.protected_flows) are never touched.
ScenarioGenome mutate_genome(const ScenarioGenome& parent,
                             const GenomeConstraints& c, Rng& rng);

// Initial-population sampling: a heavily mutated (several stacked
// operators) descendant of `baseline`, repaired.
ScenarioGenome random_genome(const ScenarioGenome& baseline,
                             const GenomeConstraints& c, Rng& rng);

}  // namespace proteus
