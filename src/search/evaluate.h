// Candidate evaluation: build the scenario a genome's CLI args describe,
// run it (under the caller's RunContext watchdogs when supplied), and
// summarize the statistics the objectives consume.
//
// Both the search driver and the corpus replay tool evaluate through
// this one path, so a corpus entry's recorded score is reproduced by the
// exact machinery that produced it.
#pragma once

#include "harness/supervisor.h"
#include "search/objective.h"

namespace proteus {

// Runs the scenario described by `opt` to opt.duration_sec and returns
// the summary. When `ctx` is non-null the run is seeded with
// ctx->attempt_seed (attempt 0 = the genome's own seed), polled for
// watchdogs/interrupts, and invariant-checked via
// check_invariants_or_throw — i.e. the standard supervised contract.
EvalSummary evaluate_options(const CliOptions& opt, RunContext* ctx);

// Supervisor payload codec (checkpoint hex-float round trip is exact).
ResultCodec<EvalSummary> eval_summary_codec();

}  // namespace proteus
