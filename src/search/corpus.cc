#include "search/corpus.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "harness/fault_spec.h"

namespace proteus {

namespace {

// Scores travel as hex-floats (exact round trip); the formatter also
// leaves a human-readable decimal in a comment.
std::string hex_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

std::string trim(const std::string& s) {
  size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string format_corpus_entry(const CorpusEntry& e) {
  std::string out = "# proteus adversarial corpus entry\n";
  out += "# score ~ " + format_double_shortest(e.score) + "\n";
  out += "objective: " + e.objective + "\n";
  out += "score: " + hex_double(e.score) + "\n";
  out += "status: " + e.status + "\n";
  out += "tolerance: " + hex_double(e.tolerance) + "\n";
  out += "search-seed: " + std::to_string(e.search_seed) + "\n";
  out += "cli: " + e.cli + "\n";
  return out;
}

bool parse_corpus_entry(const std::string& text, CorpusEntry& out,
                        std::string& error) {
  out = CorpusEntry{};
  bool have_objective = false, have_score = false, have_cli = false;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = trim(text.substr(pos, nl - pos));
    pos = nl + 1;
    if (line.empty() || line[0] == '#') continue;
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      error = "corpus entry line is not 'key: value': " + line;
      return false;
    }
    const std::string key = trim(line.substr(0, colon));
    const std::string value = trim(line.substr(colon + 1));
    if (key == "objective") {
      out.objective = value;
      have_objective = true;
    } else if (key == "score") {
      out.score = std::strtod(value.c_str(), nullptr);
      have_score = true;
    } else if (key == "status") {
      out.status = value;
    } else if (key == "tolerance") {
      out.tolerance = std::strtod(value.c_str(), nullptr);
    } else if (key == "search-seed") {
      out.search_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "cli") {
      out.cli = value;
      have_cli = true;
    } else {
      error = "unknown corpus entry key: " + key;
      return false;
    }
  }
  if (!have_objective || !have_score || !have_cli) {
    error = "corpus entry missing objective/score/cli";
    return false;
  }
  return true;
}

CorpusEntry corpus_entry_from_finding(const std::string& objective,
                                      uint64_t search_seed, double tolerance,
                                      const Finding& f) {
  CorpusEntry e;
  e.objective = objective;
  e.score = f.score;
  e.status = run_status_name(f.status);
  e.tolerance = tolerance;
  e.search_seed = search_seed;
  e.cli = f.cli;
  return e;
}

std::string write_corpus_entry(const std::string& dir, const CorpusEntry& e,
                               std::string& error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    error = "cannot create " + dir + ": " + ec.message();
    return "";
  }
  // Objective names may carry a ':' (planted:7) — not filename-friendly.
  std::string tag = e.objective;
  std::replace(tag.begin(), tag.end(), ':', '-');
  char hash[20];
  std::snprintf(hash, sizeof hash, "%08llx",
                static_cast<unsigned long long>(fnv1a64(e.cli) & 0xffffffffULL));
  const std::string path = dir + "/" + tag + "-s" +
                           std::to_string(e.search_seed) + "-" + hash + ".adv";
  std::ofstream f(path, std::ios::trunc);
  if (!f) {
    error = "cannot write " + path;
    return "";
  }
  f << format_corpus_entry(e);
  f.close();
  if (!f) {
    error = "write failed: " + path;
    return "";
  }
  return path;
}

std::vector<std::string> list_corpus_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".adv") continue;
    files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

ReplayOutcome replay_corpus_entry(const CorpusEntry& e) {
  ReplayOutcome out;

  // The CLI line is "proteus_sim --flag ..." — split on spaces, drop the
  // program token.
  std::vector<std::string> args;
  size_t pos = 0;
  while (pos < e.cli.size()) {
    size_t sp = e.cli.find(' ', pos);
    if (sp == std::string::npos) sp = e.cli.size();
    if (sp > pos) args.push_back(e.cli.substr(pos, sp - pos));
    pos = sp + 1;
  }
  if (!args.empty() && args.front().compare(0, 2, "--") != 0) {
    args.erase(args.begin());
  }
  const CliParseResult parsed = parse_cli(args);
  if (!parsed.ok) {
    out.replayed_status = "error";
    out.message = "corpus CLI does not parse: " + parsed.error;
    return out;
  }

  std::unique_ptr<Objective> objective;
  try {
    objective = make_objective(e.objective);
  } catch (const std::exception& ex) {
    out.replayed_status = "error";
    out.message = ex.what();
    return out;
  }

  const ScenarioGenome genome = genome_from_options(parsed.options);
  if (!objective->needs_run()) {
    out.replayed_score = objective->score(genome, EvalSummary{});
    out.replayed_status = "ok";
  } else {
    try {
      RunContext ctx(0, 0.0, 0.0, 50);
      const EvalSummary summary = evaluate_options(parsed.options, &ctx);
      out.replayed_score = objective->score(genome, summary);
      out.replayed_status = "ok";
    } catch (const InvariantViolationError&) {
      out.replayed_score = kInvariantScore;
      out.replayed_status = run_status_name(RunStatus::kInvariantViolation);
    } catch (const std::exception& ex) {
      out.replayed_status = "error";
      out.message = ex.what();
      return out;
    }
  }

  if (out.replayed_status != e.status) {
    out.message = "status changed: recorded " + e.status + ", replayed " +
                  out.replayed_status;
    return out;
  }
  const double tol = e.tolerance * std::max(1.0, std::fabs(e.score));
  if (std::fabs(out.replayed_score - e.score) > tol) {
    out.message = "score drifted: recorded " + format_double_shortest(e.score) +
                  ", replayed " + format_double_shortest(out.replayed_score) +
                  " (tolerance " + format_double_shortest(tol) + ")";
    return out;
  }
  out.ok = true;
  return out;
}

}  // namespace proteus
