// Adversarial corpus: discovered worst cases persisted as replayable
// `.adv` entries under corpus/adversarial/.
//
// An entry is a tiny key/value text file carrying the objective, the
// recorded score + run status, a comparison tolerance, the search seed
// that found it, and — the payload — the exact one-line `proteus_sim`
// command that reproduces the scenario. tools/corpus_replay re-runs
// every entry through the same evaluation path the search used and
// asserts the recorded score and invariant outcome still hold; verify.sh
// runs that as its regression tier, so a committed worst case acts as a
// pinned behavioral test.
#pragma once

#include <string>
#include <vector>

#include "search/search.h"

namespace proteus {

struct CorpusEntry {
  std::string objective;
  double score = 0.0;
  std::string status = "ok";  // run_status_name() of the recorded run
  double tolerance = 0.02;    // relative score tolerance for replay
  uint64_t search_seed = 0;   // seed of the search that found it
  std::string cli;            // "proteus_sim --bw=... --flows=..." line
};

// Canonical text form: "key: value" lines in fixed order, trailing
// newline; '#' lines and blank lines are ignored on parse.
// parse(format(e)) == e exactly (score travels as hex-float).
std::string format_corpus_entry(const CorpusEntry& e);
bool parse_corpus_entry(const std::string& text, CorpusEntry& out,
                        std::string& error);

// Builds an entry from a search finding.
CorpusEntry corpus_entry_from_finding(const std::string& objective,
                                      uint64_t search_seed, double tolerance,
                                      const Finding& f);

// Writes `e` to <dir>/<objective>-s<seed>-<hash>.adv (deterministic
// name: same entry -> same file, so re-running a search is idempotent).
// Returns the path, or "" with `error` set on I/O failure.
std::string write_corpus_entry(const std::string& dir, const CorpusEntry& e,
                               std::string& error);

// Lists the .adv files directly under `dir`, sorted by name.
std::vector<std::string> list_corpus_files(const std::string& dir);

// Re-evaluates the entry's CLI line through the search's evaluation
// path and compares against the recorded score/status.
struct ReplayOutcome {
  bool ok = false;
  double replayed_score = 0.0;
  std::string replayed_status;
  std::string message;  // mismatch/error description when !ok
};
ReplayOutcome replay_corpus_entry(const CorpusEntry& e);

}  // namespace proteus
