// Pluggable search objectives: how "bad" is a candidate scenario for the
// protocol under test?
//
// Every objective maps a (genome, run summary) pair to a scalar score
// where HIGHER = WORSE CASE = better find; the driver (search.h)
// maximizes it. Scores are computed from the same flow/link statistics
// the figures and telemetry exports already use, so a corpus entry's
// recorded score replays exactly from its CLI line.
//
//   scavenger-utility  minimize the scavenger's achieved share of the
//                      capacity nobody else used (Proteus-S should
//                      scavenge leftover bandwidth even under noise)
//   fairness           maximize throughput imbalance between two
//                      protected flows sharing the bottleneck
//   recovery           maximize post-blackout recovery time of a
//                      Proteus-P primary (survival-mode machinery)
//   planted[:k]        analytic smoke objective with a seeded "planted
//                      bug" region in genome space; needs no simulation
//                      and guarantees the driver has something to find
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "search/genome.h"

namespace proteus {

struct FlowOutcome {
  double mbps = 0.0;        // goodput over [warmup, duration)
  double rtt_p50_ms = 0.0;
  double rtt_p95_ms = 0.0;
  double loss_pct = 0.0;
  double recovery_sec = -1.0;  // last completed post-fault recovery;
                               // -1 = none completed / not a PCC sender
};

struct EvalSummary {
  double capacity_mbps = 0.0;
  // Fault-adjusted achievable rate on the primary link over the
  // measurement window: capacity x available_fraction() of its
  // blackout/capacity events.
  double available_mbps = 0.0;
  std::vector<FlowOutcome> flows;  // in genome flow order
};

// Mutation limits an objective imposes on genomes (mutate.h enforces).
struct GenomeConstraints {
  // Leading flows whose protocol/start the mutator must not touch (the
  // subject(s) of the objective).
  int protected_flows = 1;
  std::vector<TopologyKind> allowed_kinds = {TopologyKind::kDumbbell};
  // Protocol pool for added/swapped cross-traffic flows.
  std::vector<std::string> cross_protocols;
  bool require_blackout = false;  // recovery: keep >= 1 finite blackout
  int max_flows = 5;
  int max_faults = 6;
};

class Objective {
 public:
  virtual ~Objective() = default;
  virtual std::string name() const = 0;
  // False for analytic objectives (planted): score() ignores the summary
  // and the driver skips the simulator entirely.
  virtual bool needs_run() const { return true; }
  // The pristine starting genome; its score is the search baseline that
  // discovered worst cases must beat.
  virtual ScenarioGenome baseline() const = 0;
  virtual GenomeConstraints constraints() const = 0;
  virtual double score(const ScenarioGenome& g,
                       const EvalSummary& s) const = 0;
};

// Factory for the registered objectives; "planted" takes an optional
// ":<k>" suffix seeding the planted-bug location. Throws
// std::invalid_argument for unknown names.
std::unique_ptr<Objective> make_objective(const std::string& name);
const std::vector<std::string>& objective_names();

// Fraction of [from, to) during which link `link`'s scheduled faults
// leave capacity available: 0 inside blackout windows, the product of
// active capacity multipliers elsewhere, time-averaged.
double available_fraction(const std::vector<FaultSpec>& faults, int link,
                          TimeNs from, TimeNs to);

// Score assigned to a run that violated a simulation invariant: a
// genome that breaks the simulator outranks every behavioral finding.
inline constexpr double kInvariantScore = 1e6;

}  // namespace proteus
