#include "cc/cubic.h"

#include <algorithm>
#include <cmath>

namespace proteus {

CubicSender::CubicSender(Config cfg) : cfg_(cfg) {
  cwnd_bytes_ = cfg_.initial_cwnd_packets * cfg_.mss;
}

void CubicSender::on_start(TimeNs /*now*/) {}

bool CubicSender::reset_for_reuse(uint64_t /*seed*/) {
  // CUBIC is seedless and heapless: restoring the constructor's state is
  // the whole job.
  cwnd_bytes_ = cfg_.initial_cwnd_packets * cfg_.mss;
  ssthresh_bytes_ = kNoCwndLimit;
  epoch_started_ = false;
  epoch_start_ = 0;
  w_max_packets_ = 0.0;
  k_sec_ = 0.0;
  last_decrease_time_ = kTimeLongAgo;
  srtt_ = from_ms(100);
  w_est_packets_ = 0.0;
  acked_bytes_accum_ = 0;
  return true;
}

double CubicSender::cubic_window_packets(double t_sec) const {
  const double dt = t_sec - k_sec_;
  return cfg_.c * dt * dt * dt + w_max_packets_;
}

void CubicSender::on_ack(const AckInfo& info) {
  srtt_ = (7 * srtt_ + info.rtt) / 8;

  if (in_slow_start()) {
    cwnd_bytes_ += info.bytes;
    return;
  }

  if (!epoch_started_) {
    epoch_started_ = true;
    epoch_start_ = info.ack_time;
    const double cwnd_pkts =
        static_cast<double>(cwnd_bytes_) / static_cast<double>(cfg_.mss);
    if (w_max_packets_ < cwnd_pkts) {
      // No prior loss reference: treat the current window as the plateau.
      w_max_packets_ = cwnd_pkts;
      k_sec_ = 0.0;
    } else {
      k_sec_ = std::cbrt(w_max_packets_ * (1.0 - cfg_.beta) / cfg_.c);
    }
    w_est_packets_ = cwnd_pkts;
    acked_bytes_accum_ = 0;
  }

  const double t_sec = to_sec(info.ack_time - epoch_start_);
  double target_pkts = cubic_window_packets(t_sec);

  if (cfg_.tcp_friendliness) {
    // Reno-equivalent growth: 3*(1-beta)/(1+beta) packets per RTT.
    acked_bytes_accum_ += info.bytes;
    const double alpha = 3.0 * (1.0 - cfg_.beta) / (1.0 + cfg_.beta);
    const double cwnd_pkts =
        static_cast<double>(cwnd_bytes_) / static_cast<double>(cfg_.mss);
    w_est_packets_ += alpha * static_cast<double>(info.bytes) /
                      (static_cast<double>(cfg_.mss) * cwnd_pkts);
    target_pkts = std::max(target_pkts, w_est_packets_);
  }

  const double cwnd_pkts =
      static_cast<double>(cwnd_bytes_) / static_cast<double>(cfg_.mss);
  if (target_pkts > cwnd_pkts) {
    // Standard CUBIC pacing of growth: (target - cwnd)/cwnd per ACK.
    const double inc_pkts = (target_pkts - cwnd_pkts) / cwnd_pkts;
    cwnd_bytes_ += static_cast<int64_t>(
        inc_pkts * static_cast<double>(info.bytes));
  } else {
    // At or above target: grow very slowly (1 pkt per 100 RTT equivalent).
    cwnd_bytes_ += info.bytes / 100;
  }
}

void CubicSender::enter_loss_epoch(TimeNs now) {
  const double cwnd_pkts =
      static_cast<double>(cwnd_bytes_) / static_cast<double>(cfg_.mss);
  // Fast convergence: release bandwidth faster when the plateau shrinks.
  if (cwnd_pkts < w_max_packets_) {
    w_max_packets_ = cwnd_pkts * (1.0 + cfg_.beta) / 2.0;
  } else {
    w_max_packets_ = cwnd_pkts;
  }
  cwnd_bytes_ = std::max(
      static_cast<int64_t>(static_cast<double>(cwnd_bytes_) * cfg_.beta),
      cfg_.min_cwnd_packets * cfg_.mss);
  ssthresh_bytes_ = cwnd_bytes_;
  epoch_started_ = false;
  last_decrease_time_ = now;
}

void CubicSender::on_loss(const LossInfo& info) {
  // One decrease per loss episode (~1 RTT).
  if (info.detected_time - last_decrease_time_ < srtt_) return;
  enter_loss_epoch(info.detected_time);
}

}  // namespace proteus
