// COPA (Arun & Balakrishnan, NSDI 2018) — delay-based primary protocol.
//
// Targets rate 1/(delta * d_q) where d_q is the standing queueing delay
// (standing RTT minus windowed min RTT), adjusting cwnd toward the target
// with a velocity parameter that doubles on consistent movement. Mode
// switching: when the queue never drains (a buffer-filling competitor is
// present) COPA turns "competitive" and adapts 1/delta by AIMD, restoring
// rough TCP-fairness.
#pragma once

#include <cstdint>
#include <deque>
#include <string>

#include "transport/cc_interface.h"

namespace proteus {

class CopaSender final : public CongestionController {
 public:
  struct Config {
    double default_delta = 0.5;
    int64_t mss = kMtuBytes;
    int64_t initial_cwnd_packets = 10;
    int64_t min_cwnd_packets = 2;
    TimeNs min_rtt_window = from_sec(10);
    double velocity_cap = 64.0;
    bool enable_competitive_mode = true;
    // Queue considered "nearly empty" below this fraction of the recent
    // max queueing delay.
    double empty_queue_fraction = 0.1;
  };

  CopaSender() : CopaSender(Config{}) {}
  explicit CopaSender(Config cfg);

  void on_start(TimeNs now) override;
  void on_ack(const AckInfo& info) override;
  void on_loss(const LossInfo& info) override;
  Bandwidth pacing_rate() const override;
  int64_t cwnd_bytes() const override { return cwnd_bytes_; }
  std::string name() const override { return "copa"; }

  bool competitive() const { return competitive_; }
  double delta() const;

 private:
  TimeNs windowed_min_rtt() const;
  TimeNs standing_rtt() const;
  void update_velocity(TimeNs now);
  void update_mode(TimeNs now);

  Config cfg_;
  int64_t cwnd_bytes_ = 0;
  TimeNs srtt_ = 0;

  // Monotonic min-queues of (time, rtt): fronts are the windowed minima.
  std::deque<std::pair<TimeNs, TimeNs>> rtt_window_;       // min_rtt_window
  std::deque<std::pair<TimeNs, TimeNs>> standing_window_;  // srtt/2

  // Velocity state.
  double velocity_ = 1.0;
  TimeNs last_velocity_update_ = 0;
  int64_t cwnd_at_last_update_ = 0;
  int last_direction_ = 0;

  // Competitive-mode state.
  bool competitive_ = false;
  double k_ = 2.0;  // delta = 1/k in competitive mode
  std::deque<std::pair<TimeNs, TimeNs>> queue_delay_window_;  // ~5 srtt
  TimeNs last_mode_check_ = 0;
  TimeNs last_loss_reaction_ = kTimeLongAgo;
};

}  // namespace proteus
