// TCP CUBIC (Ha, Rhee, Xu 2008; RFC 8312) — window-based, loss-driven.
//
// The reference loss-based primary protocol in the paper's evaluation, and
// the transport under the DASH/web application benchmarks. ACK-clocked
// (no pacing): the window governs, the bottleneck spaces the ACKs.
#pragma once

#include <cstdint>
#include <string>

#include "transport/cc_interface.h"

namespace proteus {

class CubicSender final : public CongestionController {
 public:
  struct Config {
    double beta = 0.7;          // multiplicative decrease factor
    double c = 0.4;             // cubic scaling constant (MSS^3/sec^3)
    int64_t mss = kMtuBytes;
    int64_t initial_cwnd_packets = 10;
    int64_t min_cwnd_packets = 2;
    bool tcp_friendliness = true;
  };

  CubicSender() : CubicSender(Config{}) {}
  explicit CubicSender(Config cfg);

  void on_start(TimeNs now) override;
  bool reset_for_reuse(uint64_t seed) override;
  void on_ack(const AckInfo& info) override;
  void on_loss(const LossInfo& info) override;
  Bandwidth pacing_rate() const override { return Bandwidth{0.0}; }
  int64_t cwnd_bytes() const override { return cwnd_bytes_; }
  std::string name() const override { return "cubic"; }

  bool in_slow_start() const { return cwnd_bytes_ < ssthresh_bytes_; }

 private:
  void enter_loss_epoch(TimeNs now);
  double cubic_window_packets(double t_sec) const;

  Config cfg_;
  int64_t cwnd_bytes_ = 0;
  int64_t ssthresh_bytes_ = kNoCwndLimit;

  // Cubic epoch state (packet units, as in the paper's formulation).
  bool epoch_started_ = false;
  TimeNs epoch_start_ = 0;
  double w_max_packets_ = 0.0;
  double k_sec_ = 0.0;
  TimeNs last_decrease_time_ = kTimeLongAgo;
  TimeNs srtt_ = from_ms(100);

  // TCP-friendly (Reno-tracking) estimate.
  double w_est_packets_ = 0.0;
  int64_t acked_bytes_accum_ = 0;
};

}  // namespace proteus
