#include "cc/copa.h"

#include <algorithm>
#include <cmath>

namespace proteus {

CopaSender::CopaSender(Config cfg) : cfg_(cfg) {
  cwnd_bytes_ = cfg_.initial_cwnd_packets * cfg_.mss;
  cwnd_at_last_update_ = cwnd_bytes_;
}

void CopaSender::on_start(TimeNs /*now*/) {}

double CopaSender::delta() const {
  return competitive_ ? 1.0 / std::max(k_, 1.0) : cfg_.default_delta;
}

TimeNs CopaSender::windowed_min_rtt() const {
  return rtt_window_.empty() ? kTimeInfinite : rtt_window_.front().second;
}

TimeNs CopaSender::standing_rtt() const {
  return standing_window_.empty() ? kTimeInfinite
                                  : standing_window_.front().second;
}

void CopaSender::update_velocity(TimeNs now) {
  if (srtt_ == 0) return;
  if (now - last_velocity_update_ < srtt_) return;
  const int direction = cwnd_bytes_ > cwnd_at_last_update_   ? 1
                        : cwnd_bytes_ < cwnd_at_last_update_ ? -1
                                                             : 0;
  if (direction != 0 && direction == last_direction_) {
    velocity_ = std::min(velocity_ * 2.0, cfg_.velocity_cap);
  } else {
    velocity_ = 1.0;
  }
  last_direction_ = direction;
  cwnd_at_last_update_ = cwnd_bytes_;
  last_velocity_update_ = now;
}

void CopaSender::update_mode(TimeNs now) {
  if (!cfg_.enable_competitive_mode || srtt_ == 0) return;
  // Mode detection is a per-RTT-scale decision; no need to scan per ack.
  if (now - last_mode_check_ < srtt_ / 4) return;
  last_mode_check_ = now;
  // Keep ~5 srtt of queueing-delay history.
  while (!queue_delay_window_.empty() &&
         now - queue_delay_window_.front().first > 5 * srtt_) {
    queue_delay_window_.pop_front();
  }
  if (queue_delay_window_.size() < 8) return;
  TimeNs dq_min = kTimeInfinite, dq_max = 0;
  for (const auto& [t, dq] : queue_delay_window_) {
    dq_min = std::min(dq_min, dq);
    dq_max = std::max(dq_max, dq);
  }
  const bool queue_drains =
      static_cast<double>(dq_min) <=
      cfg_.empty_queue_fraction * static_cast<double>(dq_max);
  if (queue_drains || dq_max == 0) {
    if (competitive_) {
      competitive_ = false;
    }
  } else if (!competitive_) {
    competitive_ = true;
    k_ = 2.0;
  }
}

void CopaSender::on_ack(const AckInfo& info) {
  const TimeNs now = info.ack_time;
  srtt_ = srtt_ == 0 ? info.rtt : (7 * srtt_ + info.rtt) / 8;

  while (!rtt_window_.empty() && rtt_window_.back().second >= info.rtt) {
    rtt_window_.pop_back();
  }
  rtt_window_.emplace_back(now, info.rtt);
  while (now - rtt_window_.front().first > cfg_.min_rtt_window) {
    rtt_window_.pop_front();
  }
  while (!standing_window_.empty() &&
         standing_window_.back().second >= info.rtt) {
    standing_window_.pop_back();
  }
  standing_window_.emplace_back(now, info.rtt);
  while (now - standing_window_.front().first >
         std::max(srtt_ / 2, kNsPerMs)) {
    standing_window_.pop_front();
  }

  const TimeNs min_rtt = windowed_min_rtt();
  const TimeNs standing = standing_rtt();
  const TimeNs dq = std::max<TimeNs>(0, standing - min_rtt);
  queue_delay_window_.emplace_back(now, dq);
  update_mode(now);
  update_velocity(now);

  const double mss = static_cast<double>(cfg_.mss);
  const double cwnd_pkts = static_cast<double>(cwnd_bytes_) / mss;
  const double d = delta();

  // Target rate in packets/sec; infinite when the queue is empty.
  double target_rate;
  if (dq <= 0) {
    target_rate = 1e18;
  } else {
    target_rate = 1.0 / (d * to_sec(dq));
  }
  const double current_rate =
      standing > 0 ? cwnd_pkts / to_sec(standing) : 0.0;

  const double step = velocity_ * static_cast<double>(info.bytes) /
                      (d * cwnd_pkts);
  if (current_rate <= target_rate) {
    cwnd_bytes_ += static_cast<int64_t>(step);
  } else {
    cwnd_bytes_ -= static_cast<int64_t>(step);
  }
  cwnd_bytes_ = std::max(cwnd_bytes_, cfg_.min_cwnd_packets * cfg_.mss);

  // Competitive mode: additive increase of k (1/delta) per RTT's worth of
  // acked data.
  if (competitive_) {
    k_ += static_cast<double>(info.bytes) /
          std::max(cwnd_pkts * mss, mss);
    k_ = std::min(k_, 200.0);
  }
}

void CopaSender::on_loss(const LossInfo& info) {
  if (!competitive_) return;  // default mode: delay handles congestion
  if (info.detected_time - last_loss_reaction_ < srtt_) return;
  last_loss_reaction_ = info.detected_time;
  k_ = std::max(k_ / 2.0, 1.0);
}

Bandwidth CopaSender::pacing_rate() const {
  if (srtt_ == 0) return Bandwidth{0.0};  // unpaced until first RTT
  // Pace at 2x the window rate to smooth bursts (as in the COPA paper).
  return Bandwidth::from_bps(2.0 * static_cast<double>(cwnd_bytes_) * 8.0 /
                             to_sec(srtt_));
}

}  // namespace proteus
