// LEDBAT (RFC 6817) — the existing scavenger baseline.
//
// One-way-delay target controller: it measures queuing delay as the
// difference between the current one-way delay and a base-delay history
// (per-minute minima), and steers cwnd so the flow adds exactly TARGET of
// extra queueing. The paper evaluates the 100 ms IETF target and the 25 ms
// early-draft target (Appendix B); both are one constructor argument here.
//
// Two well-known pathologies reproduce naturally: the latecomer advantage
// (a newcomer measures base delay over an already-inflated buffer) and
// fragility to random loss (it halves like TCP).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "transport/cc_interface.h"

namespace proteus {

class LedbatSender final : public CongestionController {
 public:
  struct Config {
    TimeNs target = from_ms(100);  // 25 ms for the early-draft variant
    double gain = 1.0;
    int64_t mss = kMtuBytes;
    int64_t initial_cwnd_packets = 2;
    int64_t min_cwnd_packets = 2;
    int base_history_minutes = 10;  // RFC: BASE_HISTORY = 10
    int current_filter_samples = 4; // min over the last few OWD samples
    double max_ramp_packets_per_rtt = 1.0;  // ALLOWED_INCREASE-ish cap
  };

  LedbatSender() : LedbatSender(Config{}) {}
  explicit LedbatSender(Config cfg);

  void on_start(TimeNs now) override;
  void on_ack(const AckInfo& info) override;
  void on_loss(const LossInfo& info) override;
  Bandwidth pacing_rate() const override { return Bandwidth{0.0}; }
  int64_t cwnd_bytes() const override { return cwnd_bytes_; }
  std::string name() const override;

  TimeNs base_delay() const;
  TimeNs queuing_delay() const { return last_queuing_delay_; }

 private:
  void update_base_delay(TimeNs owd, TimeNs now);
  TimeNs filtered_current_delay() const;

  Config cfg_;
  int64_t cwnd_bytes_ = 0;
  // RFC 6817 / libutp slow start: exponential growth until the queuing
  // delay approaches the target or a loss occurs.
  bool slow_start_ = true;

  // Base-delay history: minimum OWD per minute bucket, newest last.
  std::deque<TimeNs> base_history_;
  TimeNs current_minute_start_ = 0;

  // Current-delay filter: last few OWD samples.
  std::deque<TimeNs> current_samples_;

  TimeNs last_queuing_delay_ = 0;
  TimeNs srtt_ = from_ms(100);
  TimeNs last_decrease_time_ = kTimeLongAgo;
};

}  // namespace proteus
