#include "cc/ledbat.h"

#include <algorithm>

namespace proteus {

namespace {
constexpr TimeNs kMinuteNs = 60 * kNsPerSec;
}

LedbatSender::LedbatSender(Config cfg) : cfg_(cfg) {
  cwnd_bytes_ = cfg_.initial_cwnd_packets * cfg_.mss;
}

std::string LedbatSender::name() const {
  return cfg_.target == from_ms(25) ? "ledbat-25" : "ledbat";
}

void LedbatSender::on_start(TimeNs now) { current_minute_start_ = now; }

TimeNs LedbatSender::base_delay() const {
  if (base_history_.empty()) return 0;
  TimeNs best = kTimeInfinite;
  for (TimeNs v : base_history_) best = std::min(best, v);
  return best;
}

void LedbatSender::update_base_delay(TimeNs owd, TimeNs now) {
  if (base_history_.empty()) {
    base_history_.push_back(owd);
    current_minute_start_ = now;
    return;
  }
  if (now - current_minute_start_ >= kMinuteNs) {
    // Start a new minute bucket (RFC 6817 section 3.4.2).
    base_history_.push_back(owd);
    current_minute_start_ = now;
    while (static_cast<int>(base_history_.size()) >
           cfg_.base_history_minutes) {
      base_history_.pop_front();
    }
  } else {
    base_history_.back() = std::min(base_history_.back(), owd);
  }
}

TimeNs LedbatSender::filtered_current_delay() const {
  TimeNs best = kTimeInfinite;
  for (TimeNs v : current_samples_) best = std::min(best, v);
  return best;
}

void LedbatSender::on_ack(const AckInfo& info) {
  srtt_ = (7 * srtt_ + info.rtt) / 8;

  update_base_delay(info.one_way_delay, info.ack_time);
  current_samples_.push_back(info.one_way_delay);
  while (static_cast<int>(current_samples_.size()) >
         cfg_.current_filter_samples) {
    current_samples_.pop_front();
  }

  const TimeNs queuing = filtered_current_delay() - base_delay();
  last_queuing_delay_ = queuing;
  const double off_target =
      static_cast<double>(cfg_.target - queuing) /
      static_cast<double>(cfg_.target);

  if (slow_start_) {
    if (queuing >= cfg_.target / 2) {
      slow_start_ = false;  // delay signal reached: go linear
    } else {
      cwnd_bytes_ += info.bytes;
      return;
    }
  }

  const double cwnd = static_cast<double>(cwnd_bytes_);
  double delta = cfg_.gain * off_target * static_cast<double>(info.bytes) *
                 static_cast<double>(cfg_.mss) / cwnd;
  // Cap the per-ack ramp (RFC's ALLOWED_INCREASE guard).
  const double max_delta = cfg_.max_ramp_packets_per_rtt *
                           static_cast<double>(cfg_.mss) *
                           static_cast<double>(info.bytes) / cwnd;
  delta = std::min(delta, max_delta);
  cwnd_bytes_ += static_cast<int64_t>(delta);
  cwnd_bytes_ = std::max(cwnd_bytes_, cfg_.min_cwnd_packets * cfg_.mss);
}

void LedbatSender::on_loss(const LossInfo& info) {
  // At most one halving per RTT (RFC 6817 section 3.4.1).
  if (info.detected_time - last_decrease_time_ < srtt_) return;
  last_decrease_time_ = info.detected_time;
  slow_start_ = false;
  cwnd_bytes_ = std::max(cwnd_bytes_ / 2, cfg_.min_cwnd_packets * cfg_.mss);
}

}  // namespace proteus
