#include "cc/bbr.h"

#include <algorithm>
#include <cmath>

namespace proteus {

namespace {
constexpr double kProbeBwGains[] = {1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
constexpr int kProbeBwPhases = 8;
constexpr double kDrainGain = 1.0 / 2.885;
}  // namespace

BbrSender::BbrSender(Config cfg) : cfg_(cfg) {
  pacing_gain_ = cfg_.startup_gain;
  set_window_slots_hint(256);
  // Capacity-only: the monotonic max-queue rarely exceeds a few dozen
  // candidates, but letting it grow on demand means a pooled flow can
  // still allocate mid-run the first time it sees a long decreasing
  // bandwidth series. 2 KB up front keeps the steady state heap-silent.
  bw_samples_.reserve(128);
}

void BbrSender::set_window_slots_hint(int slots) {
  // Capacity-only: the ring grows on demand in store_snapshot() exactly as
  // before, so a small hint can never change behavior — only the resident
  // footprint of short flows (a churned CDN flow never nears 256 in
  // flight). Ignored once packets are tracked: a mid-flow shrink would
  // drop live snapshots.
  if (snapshots_tracking_) return;
  size_t cap = 8;
  while (cap < static_cast<size_t>(std::max(slots, 1))) cap *= 2;
  // Recycled flows re-apply the same hint every incarnation; skip the
  // reallocation when the ring is already the requested size (its slots
  // were wiped by reset_for_reuse).
  if (cap == snapshots_.size()) return;
  std::vector<SnapshotSlot>(cap).swap(snapshots_);
  snapshot_mask_ = snapshots_.size() - 1;
}

bool BbrSender::reset_for_reuse(uint64_t /*seed*/) {
  // BBR is seedless; wipe state in place, keeping the snapshot ring and
  // bandwidth-sample storage at their ratcheted capacities.
  mode_ = Mode::kStartup;
  pacing_gain_ = cfg_.startup_gain;
  delivered_bytes_ = 0;
  delivered_time_ = 0;
  std::fill(snapshots_.begin(), snapshots_.end(), SnapshotSlot{});
  snapshots_tracking_ = false;
  bw_samples_.clear();
  round_count_ = 0;
  next_round_delivered_ = 0;
  min_rtt_ = kTimeInfinite;
  min_rtt_timestamp_ = 0;
  probe_rtt_done_ = 0;
  probe_rtt_min_ = kTimeInfinite;
  full_bw_ = 0.0;
  full_bw_rounds_ = 0;
  full_bw_reached_ = false;
  last_round_checked_ = -1;
  cycle_index_ = 0;
  cycle_start_ = 0;
  bytes_in_flight_ = 0;
  rtt_tracker_.reset();
  last_rtt_tracker_update_ = 0;
  return true;
}

const BbrSender::SendSnapshot* BbrSender::find_snapshot(uint64_t seq) const {
  const SnapshotSlot& slot = snapshots_[seq & snapshot_mask_];
  return (slot.active && slot.seq == seq) ? &slot.snap : nullptr;
}

void BbrSender::erase_snapshot(uint64_t seq) {
  SnapshotSlot& slot = snapshots_[seq & snapshot_mask_];
  if (slot.active && slot.seq == seq) slot.active = false;
}

void BbrSender::store_snapshot(uint64_t seq, const SendSnapshot& snap) {
  snapshots_tracking_ = true;
  SnapshotSlot* slot = &snapshots_[seq & snapshot_mask_];
  while (slot->active && slot->seq != seq) {
    // The in-flight window outgrew the ring: double it and re-place the
    // survivors under the new mask, then retry.
    std::vector<SnapshotSlot> grown(snapshots_.size() * 2);
    const size_t mask = grown.size() - 1;
    for (const SnapshotSlot& s : snapshots_) {
      if (s.active) grown[s.seq & mask] = s;
    }
    snapshots_ = std::move(grown);
    snapshot_mask_ = mask;
    slot = &snapshots_[seq & snapshot_mask_];
  }
  slot->snap = snap;
  slot->seq = seq;
  slot->active = true;
}

void BbrSender::on_start(TimeNs now) {
  delivered_time_ = now;
  min_rtt_timestamp_ = now;
}

Bandwidth BbrSender::max_bandwidth() const {
  return Bandwidth::from_bps(bw_samples_.empty() ? 0.0
                                                 : bw_samples_.front().second);
}

double BbrSender::bdp_bytes() const {
  const Bandwidth bw = max_bandwidth();
  if (!bw.positive() || min_rtt_ == kTimeInfinite) {
    return static_cast<double>(cfg_.initial_cwnd_packets * cfg_.mss);
  }
  return bw.bdp_bytes(min_rtt_);
}

Bandwidth BbrSender::pacing_rate() const {
  const Bandwidth bw = max_bandwidth();
  if (!bw.positive()) {
    // No samples yet: pace the initial window over the (unknown) RTT guess.
    const double bytes = static_cast<double>(cfg_.initial_cwnd_packets *
                                             cfg_.mss);
    return Bandwidth::from_bps(pacing_gain_ * bytes * 8.0 / 0.1);
  }
  if (mode_ == Mode::kProbeRtt) {
    // Minimal probing rate: 4 packets per min RTT.
    const double bytes = static_cast<double>(cfg_.min_cwnd_packets *
                                             cfg_.mss);
    const double rtt_sec =
        min_rtt_ == kTimeInfinite ? 0.1 : to_sec(std::max<TimeNs>(min_rtt_, kNsPerMs));
    return Bandwidth::from_bps(bytes * 8.0 / rtt_sec);
  }
  return Bandwidth::from_bps(pacing_gain_ * bw.bps);
}

int64_t BbrSender::cwnd_bytes() const {
  if (mode_ == Mode::kProbeRtt) return cfg_.min_cwnd_packets * cfg_.mss;
  const double cwnd = cfg_.cwnd_gain * bdp_bytes();
  return std::max(static_cast<int64_t>(cwnd),
                  cfg_.min_cwnd_packets * cfg_.mss);
}

void BbrSender::on_packet_sent(const SentPacketInfo& info) {
  store_snapshot(info.seq,
                 SendSnapshot{delivered_bytes_, delivered_time_,
                              info.sent_time});
  bytes_in_flight_ = info.bytes_in_flight;
}

void BbrSender::update_round(const AckInfo& info) {
  const SendSnapshot* snap = find_snapshot(info.seq);
  if (snap == nullptr) return;
  if (snap->delivered >= next_round_delivered_) {
    ++round_count_;
    next_round_delivered_ = delivered_bytes_;
  }
}

void BbrSender::update_bandwidth(const AckInfo& info) {
  const SendSnapshot* found = find_snapshot(info.seq);
  if (found == nullptr) return;
  const SendSnapshot snap = *found;
  erase_snapshot(info.seq);

  const TimeNs interval = info.ack_time - snap.delivered_time;
  if (interval <= 0) return;
  const double bw = static_cast<double>(delivered_bytes_ - snap.delivered) *
                    8.0 / to_sec(interval);
  // Monotonic max-queue: drop dominated candidates, then expire old rounds.
  while (!bw_samples_.empty() && bw_samples_.back().second <= bw) {
    bw_samples_.pop_back();
  }
  bw_samples_.push_back({round_count_, bw});
  while (!bw_samples_.empty() &&
         bw_samples_.front().first < round_count_ - cfg_.bw_window_rounds) {
    bw_samples_.pop_front();
  }
}

void BbrSender::update_min_rtt(const AckInfo& info) {
  if (mode_ == Mode::kProbeRtt) {
    probe_rtt_min_ = std::min(probe_rtt_min_, info.rtt);
  }
  if (info.rtt <= min_rtt_) {
    min_rtt_ = info.rtt;
    min_rtt_timestamp_ = info.ack_time;
  }
}

void BbrSender::check_full_bandwidth() {
  if (full_bw_reached_ || round_count_ == last_round_checked_) return;
  last_round_checked_ = round_count_;
  const double bw = max_bandwidth().bps;
  if (bw >= full_bw_ * 1.25) {
    full_bw_ = bw;
    full_bw_rounds_ = 0;
    return;
  }
  if (++full_bw_rounds_ >= 3) full_bw_reached_ = true;
}

void BbrSender::enter_probe_rtt(TimeNs now, TimeNs duration) {
  mode_ = Mode::kProbeRtt;
  probe_rtt_done_ = now + duration;
  probe_rtt_min_ = kTimeInfinite;
}

void BbrSender::advance_mode(const AckInfo& info) {
  const TimeNs now = info.ack_time;

  // BBR-S: high smoothed RTT deviation signals competition; stop and probe
  // for the clean-channel RTT (paper section 7.1).
  if (cfg_.scavenger && mode_ != Mode::kProbeRtt &&
      rtt_tracker_.count() >= 4 &&  // past the estimator's warm-up
      rtt_tracker_.deviation() >
          static_cast<double>(cfg_.rtt_dev_threshold)) {
    enter_probe_rtt(now, cfg_.forced_probe_duration);
    return;
  }

  switch (mode_) {
    case Mode::kStartup:
      check_full_bandwidth();
      if (full_bw_reached_) {
        mode_ = Mode::kDrain;
        pacing_gain_ = kDrainGain;
      }
      break;
    case Mode::kDrain:
      if (static_cast<double>(bytes_in_flight_) <= bdp_bytes()) {
        mode_ = Mode::kProbeBw;
        cycle_index_ = 2;  // start in a cruise phase
        cycle_start_ = now;
        pacing_gain_ = kProbeBwGains[cycle_index_];
      }
      break;
    case Mode::kProbeBw: {
      const TimeNs phase_len =
          min_rtt_ == kTimeInfinite ? from_ms(100) : min_rtt_;
      bool advance = now - cycle_start_ > phase_len;
      // Leave the 0.75 phase only once the queue we built has drained.
      if (advance && kProbeBwGains[cycle_index_] < 1.0 &&
          static_cast<double>(bytes_in_flight_) > bdp_bytes()) {
        advance = false;
      }
      if (advance) {
        cycle_index_ = (cycle_index_ + 1) % kProbeBwPhases;
        cycle_start_ = now;
        pacing_gain_ = kProbeBwGains[cycle_index_];
      }
      // Stale min RTT: schedule a PROBE_RTT.
      if (now - min_rtt_timestamp_ > cfg_.min_rtt_window) {
        enter_probe_rtt(now, cfg_.probe_rtt_duration);
      }
      break;
    }
    case Mode::kProbeRtt:
      if (now >= probe_rtt_done_) {
        if (probe_rtt_min_ != kTimeInfinite) {
          min_rtt_ = probe_rtt_min_;
        }
        min_rtt_timestamp_ = now;
        if (full_bw_reached_) {
          mode_ = Mode::kProbeBw;
          cycle_index_ = 2;
          cycle_start_ = now;
          pacing_gain_ = kProbeBwGains[cycle_index_];
        } else {
          mode_ = Mode::kStartup;
          pacing_gain_ = cfg_.startup_gain;
        }
      }
      break;
  }
}

void BbrSender::on_ack(const AckInfo& info) {
  delivered_bytes_ += info.bytes;
  delivered_time_ = info.ack_time;
  bytes_in_flight_ = info.bytes_in_flight;
  // Sample the deviation tracker once per RTT, not per ACK: consecutive
  // ACKs carry nearly identical RTTs, so per-ACK deltas would hide the
  // RTT-scale swings BBR-S keys on.
  const TimeNs spacing =
      min_rtt_ == kTimeInfinite ? from_ms(25) : min_rtt_;
  if (info.ack_time - last_rtt_tracker_update_ >= spacing) {
    last_rtt_tracker_update_ = info.ack_time;
    rtt_tracker_.add(static_cast<double>(info.rtt));
  }

  update_round(info);
  update_bandwidth(info);
  update_min_rtt(info);
  advance_mode(info);
}

void BbrSender::on_loss(const LossInfo& info) {
  // BBR v1 does not react to individual losses; just track inflight and
  // drop the stale snapshot.
  bytes_in_flight_ = info.bytes_in_flight;
  erase_snapshot(info.seq);
}

}  // namespace proteus
