// BBR v1 (Cardwell et al. 2016) — model-based primary protocol.
//
// Maintains a windowed-max delivery-rate estimate and a windowed-min RTT,
// paces at gain * max_bw and caps inflight at cwnd_gain * BDP, cycling
// through STARTUP / DRAIN / PROBE_BW / PROBE_RTT.
//
// The `scavenger` flag implements the paper's BBR-S (section 7.1): when
// the smoothed RTT deviation exceeds rtt_dev_threshold the sender is
// forced into PROBE_RTT for at least forced_probe_duration, which
// effectively stops transmission while competition is present.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/ring_buffer.h"

#include "stats/ewma.h"
#include "transport/cc_interface.h"

namespace proteus {

class BbrSender final : public CongestionController {
 public:
  struct Config {
    int64_t mss = kMtuBytes;
    int64_t initial_cwnd_packets = 10;
    int64_t min_cwnd_packets = 4;
    double startup_gain = 2.885;
    double cwnd_gain = 2.0;
    int bw_window_rounds = 10;
    TimeNs min_rtt_window = from_sec(10);
    TimeNs probe_rtt_duration = from_ms(200);

    // BBR-S (paper section 7.1). The paper's kernel prototype uses a
    // 20 ms deviation threshold against live-Internet RTT scales; 8 ms is
    // the calibrated equivalent for this simulator's noise model
    // (DESIGN.md, "Calibration").
    bool scavenger = false;
    TimeNs rtt_dev_threshold = from_ms(8);
    TimeNs forced_probe_duration = from_ms(40);
  };

  BbrSender() : BbrSender(Config{}) {}
  explicit BbrSender(Config cfg);

  void set_window_slots_hint(int slots) override;
  bool reset_for_reuse(uint64_t seed) override;
  void on_start(TimeNs now) override;
  void on_packet_sent(const SentPacketInfo& info) override;
  void on_ack(const AckInfo& info) override;
  void on_loss(const LossInfo& info) override;
  Bandwidth pacing_rate() const override;
  int64_t cwnd_bytes() const override;
  std::string name() const override {
    return cfg_.scavenger ? "bbr-s" : "bbr";
  }

  enum class Mode { kStartup, kDrain, kProbeBw, kProbeRtt };
  Mode mode() const { return mode_; }
  Bandwidth max_bandwidth() const;
  TimeNs min_rtt() const { return min_rtt_; }

 private:
  struct SendSnapshot {
    int64_t delivered;
    TimeNs delivered_time;
    TimeNs sent_time;
  };
  // Per-sent-packet snapshot storage, seq-indexed into a power-of-two
  // ring: sender seqs are monotone and the in-flight window is narrow,
  // so `seq & mask` collides only when the window outgrows the ring
  // (then it doubles). Replaces an unordered_map whose node allocation
  // per sent packet dominated the steady-state allocation count.
  struct SnapshotSlot {
    SendSnapshot snap{};
    uint64_t seq = 0;
    bool active = false;
  };

  const SendSnapshot* find_snapshot(uint64_t seq) const;
  void erase_snapshot(uint64_t seq);
  void store_snapshot(uint64_t seq, const SendSnapshot& snap);

  void update_bandwidth(const AckInfo& info);
  void update_round(const AckInfo& info);
  void update_min_rtt(const AckInfo& info);
  void check_full_bandwidth();
  void advance_mode(const AckInfo& info);
  void enter_probe_rtt(TimeNs now, TimeNs duration);
  double bdp_bytes() const;

  Config cfg_;
  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = 2.885;

  // Delivery-rate sampling.
  int64_t delivered_bytes_ = 0;
  TimeNs delivered_time_ = 0;
  std::vector<SnapshotSlot> snapshots_;
  size_t snapshot_mask_ = 0;
  bool snapshots_tracking_ = false;  // locks out late ring re-sizing

  // Windowed max-bandwidth filter: monotonically decreasing (round, bps)
  // candidates; front is the current max, back absorbs dominated samples.
  RingBuffer<std::pair<int64_t, double>> bw_samples_;
  int64_t round_count_ = 0;
  int64_t next_round_delivered_ = 0;

  // Min-RTT tracking.
  TimeNs min_rtt_ = kTimeInfinite;
  TimeNs min_rtt_timestamp_ = 0;
  TimeNs probe_rtt_done_ = 0;
  TimeNs probe_rtt_min_ = kTimeInfinite;

  // STARTUP full-pipe detection.
  double full_bw_ = 0.0;
  int full_bw_rounds_ = 0;
  bool full_bw_reached_ = false;
  int64_t last_round_checked_ = -1;

  // PROBE_BW gain cycling.
  int cycle_index_ = 0;
  TimeNs cycle_start_ = 0;

  int64_t bytes_in_flight_ = 0;

  // BBR-S RTT-deviation tracking (kernel-style srtt/mdev), sampled once
  // per RTT.
  MeanDeviationTracker rtt_tracker_;
  TimeNs last_rtt_tracker_update_ = 0;
};

}  // namespace proteus
