// Least-squares linear regression with residual error, as used for the
// per-MI RTT-gradient estimate and its regression-error tolerance
// (paper sections 4.1 and 5).
#pragma once

#include <cstdint>
#include <vector>

namespace proteus {

struct RegressionResult {
  double slope = 0.0;       // dy/dx
  double intercept = 0.0;   // value at x = 0
  double residual_rms = 0.0;  // sqrt(mean squared residual)
  int64_t n = 0;
  bool valid = false;       // false when n < 2 or x has no spread
};

// Fits y = intercept + slope * x over paired samples.
RegressionResult linear_regression(const std::vector<double>& x,
                                   const std::vector<double>& y);

}  // namespace proteus
