#include "stats/histogram.h"

#include <algorithm>
#include <stdexcept>

namespace proteus {

Histogram::Histogram(double lo, double hi, int bins) : lo_(lo), hi_(hi) {
  if (bins <= 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need bins > 0 and hi > lo");
  }
  counts_.assign(static_cast<size_t>(bins), 0);
  width_ = (hi_ - lo_) / static_cast<double>(bins);
}

void Histogram::add(double v) {
  int idx = static_cast<int>((v - lo_) / width_);
  idx = std::clamp(idx, 0, bins() - 1);
  ++counts_[static_cast<size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(int i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bin_center(int i) const {
  return bin_lo(i) + width_ / 2.0;
}

std::vector<double> Histogram::pdf() const {
  std::vector<double> out(counts_.size(), 0.0);
  if (total_ == 0) return out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    out[i] = static_cast<double>(counts_[i]) / static_cast<double>(total_);
  }
  return out;
}

std::vector<double> Histogram::cdf() const {
  std::vector<double> out = pdf();
  for (size_t i = 1; i < out.size(); ++i) out[i] += out[i - 1];
  return out;
}

}  // namespace proteus
