#include "stats/percentile.h"

#include <algorithm>
#include <cmath>

#include "stats/welford.h"

namespace proteus {

void Samples::add_all(const std::vector<double>& vs) {
  values_.insert(values_.end(), vs.begin(), vs.end());
  invalidate_cache();
}

const std::vector<double>& Samples::sorted_locked(
    std::lock_guard<std::mutex>& /*lock*/) const {
  if (!cache_valid_) {
    sorted_cache_ = values_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }
  return sorted_cache_;
}

double Samples::min() const {
  if (values_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return sorted_locked(lock).front();
}

double Samples::max() const {
  if (values_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  return sorted_locked(lock).back();
}

double Samples::mean() const {
  Welford w;
  for (double v : values_) w.add(v);
  return w.mean();
}

double Samples::stddev() const {
  Welford w;
  for (double v : values_) w.add(v);
  return w.stddev();
}

double Samples::percentile(double p) const {
  if (values_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const std::vector<double>& sorted = sorted_locked(lock);
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  auto lo = static_cast<size_t>(std::floor(rank));
  auto hi = static_cast<size_t>(std::ceil(rank));
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double Samples::cdf_at(double x) const {
  if (values_.empty()) return 0.0;
  std::lock_guard<std::mutex> lock(cache_mutex_);
  const std::vector<double>& sorted = sorted_locked(lock);
  auto it = std::upper_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

double confusion_probability(const Samples& congested, const Samples& idle) {
  const auto& a = congested.raw();
  const auto& b = idle.raw();
  if (a.empty() || b.empty()) return 0.0;
  std::vector<double> sb = b;
  std::sort(sb.begin(), sb.end());
  // For each congested sample x, count idle samples strictly greater than x
  // (confusion) plus half-weight ties.
  double confused = 0.0;
  for (double x : a) {
    auto lower = std::lower_bound(sb.begin(), sb.end(), x);
    auto upper = std::upper_bound(sb.begin(), sb.end(), x);
    double greater = static_cast<double>(sb.end() - upper);
    double ties = static_cast<double>(upper - lower);
    confused += greater + 0.5 * ties;
  }
  return confused /
         (static_cast<double>(a.size()) * static_cast<double>(sb.size()));
}

}  // namespace proteus
