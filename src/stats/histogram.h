// Fixed-width binning for probability density summaries (paper Fig 2).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace proteus {

class Histogram {
 public:
  // Bins [lo, hi) split into `bins` equal-width buckets; samples outside the
  // range are clamped into the first/last bucket.
  Histogram(double lo, double hi, int bins);

  void add(double v);

  int bins() const { return static_cast<int>(counts_.size()); }
  int64_t total() const { return total_; }
  double bin_lo(int i) const;
  double bin_center(int i) const;
  int64_t count(int i) const { return counts_[static_cast<size_t>(i)]; }

  // Fraction of samples per bin (sums to 1 when total > 0).
  std::vector<double> pdf() const;
  // Cumulative fraction up to and including each bin.
  std::vector<double> cdf() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace proteus
