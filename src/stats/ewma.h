// Exponentially weighted moving averages and mean-deviation tracking.
//
// MeanDeviationTracker mirrors the Linux kernel's smoothed-RTT bookkeeping
// (srtt/mdev): an EWMA of the value plus an EWMA of the absolute deviation
// from that average. Proteus's trending-tolerance filter (paper section 5)
// keeps one of these per trending metric.
#pragma once

#include <cmath>
#include <cstdint>

namespace proteus {

// Plain EWMA: avg <- (1 - alpha) * avg + alpha * sample.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double sample) {
    if (!initialized_) {
      value_ = sample;
      initialized_ = true;
    } else {
      value_ += alpha_ * (sample - value_);
    }
    ++count_;
  }

  bool initialized() const { return initialized_; }
  double value() const { return value_; }
  int64_t count() const { return count_; }
  void reset() { initialized_ = false; value_ = 0.0; count_ = 0; }

 private:
  double alpha_;
  bool initialized_ = false;
  double value_ = 0.0;
  int64_t count_ = 0;
};

// EWMA of a metric plus EWMA of its absolute deviation, in the style of the
// kernel's srtt (gain 1/8) and mdev (gain 1/4) estimators.
class MeanDeviationTracker {
 public:
  MeanDeviationTracker(double avg_gain = 1.0 / 8.0, double dev_gain = 1.0 / 4.0)
      : avg_gain_(avg_gain), dev_gain_(dev_gain) {}

  void add(double sample) {
    if (!initialized_) {
      avg_ = sample;
      dev_ = std::abs(sample) / 2.0;
      initialized_ = true;
    } else {
      double err = sample - avg_;
      avg_ += avg_gain_ * err;
      dev_ += dev_gain_ * (std::abs(err) - dev_);
    }
    ++count_;
  }

  bool initialized() const { return initialized_; }
  double average() const { return avg_; }
  double deviation() const { return dev_; }
  int64_t count() const { return count_; }
  void reset() { initialized_ = false; avg_ = dev_ = 0.0; count_ = 0; }

 private:
  double avg_gain_;
  double dev_gain_;
  bool initialized_ = false;
  double avg_ = 0.0;
  double dev_ = 0.0;
  int64_t count_ = 0;
};

}  // namespace proteus
