// Deterministic pseudo-random number generation for simulation.
//
// Every stochastic component in the repository draws from an Rng that is
// seeded explicitly, so a whole experiment is reproducible from a single
// seed. Rng::fork() derives independent child streams, letting components
// (links, workloads, flows) own private generators without correlated draws.
#pragma once

#include <cstdint>
#include <random>

namespace proteus {

// A seeded random source. Thin wrapper over std::mt19937_64 exposing the
// distributions the simulator and workload generators need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Derives an independent child generator. Distinct salts give distinct,
  // decorrelated streams; the parent's state advances so repeated forks with
  // the same salt also differ.
  Rng fork(uint64_t salt);

  // Re-seeds in place: the stream becomes exactly what Rng(seed) would
  // produce (every distribution method constructs its std:: distribution
  // per call, so no distribution state survives). Lets pooled objects
  // restart their streams without reconstructing the 2.5 KB engine.
  void reseed(uint64_t seed) { engine_.seed(seed); }

  // Uniform double in [0, 1).
  double uniform();
  // Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive).
  int64_t uniform_int(int64_t lo, int64_t hi);
  // True with probability p (p clamped to [0, 1]).
  bool bernoulli(double p);
  // Exponential with the given mean (> 0).
  double exponential(double mean);
  // Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  // Pareto with scale xm > 0 and shape alpha > 0 (heavy-tailed delays).
  double pareto(double xm, double alpha);
  // Poisson-distributed count with the given mean (>= 0).
  int64_t poisson(double mean);

  // Access to the raw engine for std:: algorithms (e.g. std::shuffle).
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace proteus
