#include "stats/regression.h"

#include <cmath>

namespace proteus {

RegressionResult linear_regression(const std::vector<double>& x,
                                   const std::vector<double>& y) {
  RegressionResult r;
  if (x.size() != y.size() || x.size() < 2) return r;
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double dx = x[i] - mx;
    sxx += dx * dx;
    sxy += dx * (y[i] - my);
  }
  if (sxx <= 0.0) return r;
  r.slope = sxy / sxx;
  r.intercept = my - r.slope * mx;
  double ss_res = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    const double e = y[i] - (r.intercept + r.slope * x[i]);
    ss_res += e * e;
  }
  r.residual_rms = std::sqrt(ss_res / n);
  r.n = static_cast<int64_t>(x.size());
  r.valid = true;
  return r;
}

}  // namespace proteus
