// Numerically stable running mean/variance (Welford's algorithm).
#pragma once

#include <cmath>
#include <cstdint>

namespace proteus {

class Welford {
 public:
  void add(double sample) {
    ++n_;
    double delta = sample - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (sample - mean_);
  }

  int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  // Population variance (divide by n), matching the paper's sigma(RTT).
  double variance() const {
    return n_ > 0 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  // Sample variance (divide by n-1) for inference use.
  double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }

  void reset() { n_ = 0; mean_ = 0.0; m2_ = 0.0; }

 private:
  int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace proteus
