// Sample collection with exact percentile queries.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

namespace proteus {

// Accumulates raw samples and answers order-statistic queries. Percentiles
// use linear interpolation between closest ranks (the common "type 7"
// definition used by numpy).
//
// Thread-safety: concurrent const readers are safe. Order-statistic
// queries sort lazily into a separate cache guarded by a mutex;
// `values_` itself is never mutated by a const method (it used to be
// sorted in place under `mutable`, which raced two concurrent readers —
// e.g. the telemetry exporter and the summary table percentiling the
// same flow). Writers (add/clear) still require external synchronization
// against any other access, as before.
class Samples {
 public:
  Samples() = default;
  // Copies transfer the samples; the sort cache is rebuilt on demand.
  Samples(const Samples& other) : values_(other.values_) {}
  Samples& operator=(const Samples& other) {
    if (this != &other) {
      values_ = other.values_;
      invalidate_cache();
    }
    return *this;
  }
  Samples(Samples&& other) noexcept : values_(std::move(other.values_)) {}
  Samples& operator=(Samples&& other) noexcept {
    if (this != &other) {
      values_ = std::move(other.values_);
      invalidate_cache();
    }
    return *this;
  }

  void add(double v) {
    values_.push_back(v);
    invalidate_cache();
  }
  void add_all(const std::vector<double>& vs);

  int64_t count() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;  // population stddev
  // p in [0, 100]. Returns 0 for an empty set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // Insertion order (const queries no longer reorder it).
  const std::vector<double>& raw() const { return values_; }
  void clear() {
    values_.clear();
    invalidate_cache();
  }

  // Empirical CDF value: fraction of samples <= x.
  double cdf_at(double x) const;

 private:
  void invalidate_cache() {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_valid_ = false;
  }
  // Returns the sorted cache; `lock` must hold cache_mutex_.
  const std::vector<double>& sorted_locked(
      std::lock_guard<std::mutex>& lock) const;

  std::vector<double> values_;

  mutable std::mutex cache_mutex_;
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_valid_ = false;
};

// Probability that a uniformly random sample drawn from `congested` is
// smaller than an independent uniformly random sample from `idle`.
// This is the paper's "confusion probability" (section 4.2): a good
// competition signal should almost never look smaller under congestion
// than in the idle baseline. Ties count as half.
double confusion_probability(const Samples& congested, const Samples& idle);

}  // namespace proteus
