// Sample collection with exact percentile queries.
#pragma once

#include <cstdint>
#include <vector>

namespace proteus {

// Accumulates raw samples and answers order-statistic queries. Percentiles
// use linear interpolation between closest ranks (the common "type 7"
// definition used by numpy).
class Samples {
 public:
  void add(double v) { values_.push_back(v); sorted_ = false; }
  void add_all(const std::vector<double>& vs);

  int64_t count() const { return static_cast<int64_t>(values_.size()); }
  bool empty() const { return values_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;  // population stddev
  // p in [0, 100]. Returns 0 for an empty set.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  const std::vector<double>& raw() const { return values_; }
  void clear() { values_.clear(); sorted_ = false; }

  // Empirical CDF value: fraction of samples <= x.
  double cdf_at(double x) const;

 private:
  void ensure_sorted() const;

  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

// Probability that a uniformly random sample drawn from `congested` is
// smaller than an independent uniformly random sample from `idle`.
// This is the paper's "confusion probability" (section 4.2): a good
// competition signal should almost never look smaller under congestion
// than in the idle baseline. Ties count as half.
double confusion_probability(const Samples& congested, const Samples& idle);

}  // namespace proteus
