// Jain's fairness index over per-flow allocations (paper Figs 5, 17).
#pragma once

#include <vector>

namespace proteus {

// (sum x)^2 / (n * sum x^2); 1.0 when all equal, 1/n when one flow hogs
// everything. Returns 0 for an empty input or all-zero allocations.
inline double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  double s = 0.0, s2 = 0.0;
  for (double v : x) {
    s += v;
    s2 += v * v;
  }
  if (s2 <= 0.0) return 0.0;
  return s * s / (static_cast<double>(x.size()) * s2);
}

}  // namespace proteus
