#include "stats/rng.h"

#include <algorithm>
#include <cmath>

namespace proteus {

Rng Rng::fork(uint64_t salt) {
  // SplitMix64-style scramble of (fresh draw, salt) for decorrelated children.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL + salt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t Rng::uniform_int(int64_t lo, int64_t hi) {
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

bool Rng::bernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return std::bernoulli_distribution(p)(engine_);
}

double Rng::exponential(double mean) {
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  double u = uniform();
  // Inverse-CDF sampling; guard against u == 0.
  u = std::max(u, 1e-12);
  return xm / std::pow(u, 1.0 / alpha);
}

int64_t Rng::poisson(double mean) {
  if (mean <= 0.0) return 0;
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

}  // namespace proteus
