#include "core/pcc_sender.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace proteus {

PccSender::PccSender(std::shared_ptr<UtilityFunction> utility, Config cfg,
                     std::string display_name)
    : current_rate_mbps_(cfg.rate_control.initial_rate_mbps),
      cfg_(cfg),
      utility_(std::move(utility)),
      controller_(cfg.rate_control, cfg.seed ^ 0x9c),
      ack_filter_(cfg.noise),
      trending_(cfg.noise),
      deviation_floor_(cfg.noise),
      rng_(cfg.seed ^ 0x3f),
      display_name_(std::move(display_name)) {}

bool PccSender::reset_for_reuse(uint64_t seed) {
  // Reproduce PccSender(utility_, {cfg_ with .seed = seed}, display_name_)
  // exactly, including both RNG streams, while keeping ratcheted storage
  // (MI ring, seq_owner_ ring, trending history rings). The utility object
  // is stateless given its params and is shared across incarnations.
  cfg_.seed = seed;
  controller_.reset(seed ^ 0x9c);
  ack_filter_ = AckIntervalFilter(cfg_.noise);  // heapless; plain assignment
  trending_.reset();
  deviation_floor_.reset();
  rng_.reseed(seed ^ 0x3f);

  mis_.clear();
  next_mi_id_ = 1;
  current_rate_mbps_ = cfg_.rate_control.initial_rate_mbps;
  seq_owner_.clear();
  seq_base_ = 0;
  seq_tracking_started_ = false;
  srtt_ms_.reset();

  last_metrics_ = MiMetrics{};
  last_utility_ = 0.0;
  mis_completed_ = 0;
  mis_abandoned_watchdog_ = 0;
  mis_abandoned_useless_ = 0;
  last_brake_mi_ = 0;
  prev_mi_target_rate_ = 0.0;
  telemetry_ = nullptr;

  in_survival_ = false;
  last_ack_at_ = 0;
  last_send_at_ = 0;
  wait_started_ = 0;
  survival_next_check_ = kTimeInfinite;
  survival_backoff_ = 0;
  pre_fault_rate_mbps_ = 0.0;
  recovery_started_ = 0;
  last_recovery_ns_ = kTimeInfinite;
  recovery_pending_ = false;
  survival_entries_ = 0;
  brakes_engaged_ = 0;
  return true;
}

void PccSender::set_utility(std::shared_ptr<UtilityFunction> utility) {
  utility_ = std::move(utility);
  // The new objective may sit far from the current operating point (e.g.
  // scavenger -> primary at min rate): restart the exponential ramp.
  controller_.restart_from_current_rate();
}

TimeNs PccSender::mi_duration(double rate_mbps) {
  TimeNs dur = srtt_ms_.initialized()
                   ? from_ms(srtt_ms_.value())
                   : from_ms(50);
  // Stretch so the MI carries enough packets to regress over.
  const Bandwidth rate = Bandwidth::from_mbps(std::max(rate_mbps, 1e-3));
  const TimeNs packets_floor =
      rate.tx_time(kMtuBytes) * cfg_.min_packets_per_mi;
  dur = std::max({dur, packets_floor, cfg_.min_mi_duration});
  dur = std::min(dur, cfg_.max_mi_duration);
  // 0-10% jitter de-synchronizes competing PCC senders.
  return static_cast<TimeNs>(static_cast<double>(dur) *
                             (1.0 + 0.1 * rng_.uniform()));
}

void PccSender::start_new_mi(TimeNs now) {
  const GradientRateController::MiPlan plan = controller_.plan_next_mi();
  current_rate_mbps_ = plan.rate_mbps;
  mis_.push_back(PendingMi{
      MonitorInterval(next_mi_id_++, plan.rate_mbps, now,
                      mi_duration(plan.rate_mbps)),
      plan.tag});
}

void PccSender::on_start(TimeNs now) {
  last_ack_at_ = now;
  last_send_at_ = now;
  start_new_mi(now);
}

void PccSender::rotate_if_due(TimeNs now) {
  if (mis_.empty()) {
    start_new_mi(now);
    return;
  }
  MonitorInterval& cur = mis_.back().mi;
  if (now >= cur.end()) {
    cur.seal();
    drain_completed_mis();
    start_new_mi(now);
  }
}

void PccSender::on_packet_sent(const SentPacketInfo& info) {
  if (last_send_at_ <= last_ack_at_) wait_started_ = info.sent_time;
  last_send_at_ = info.sent_time;
  rotate_if_due(info.sent_time);
  PendingMi& cur = mis_.back();
  cur.mi.on_packet_sent(info.seq, info.bytes, info.sent_time);
  track_seq(info.seq, cur.mi.id());
}

void PccSender::track_seq(uint64_t seq, uint64_t mi_id) {
  if (!seq_tracking_started_) {
    seq_base_ = seq;
    seq_tracking_started_ = true;
  }
  if (seq < seq_base_) return;  // stale seq space (never happens in-sim)
  const uint64_t offset = seq - seq_base_;
  // Seqs are allocated densely per flow; pad any gap with 0, which no MI
  // ever has as an id.
  while (seq_owner_.size() < offset) seq_owner_.push_back(0);
  if (offset < seq_owner_.size()) {
    seq_owner_.at(offset) = mi_id;
  } else {
    seq_owner_.push_back(mi_id);
  }
}

PccSender::PendingMi* PccSender::find_mi(uint64_t seq) {
  if (!seq_tracking_started_ || seq < seq_base_ || mis_.empty()) {
    return nullptr;
  }
  const uint64_t offset = seq - seq_base_;
  if (offset >= seq_owner_.size()) return nullptr;
  const uint64_t id = seq_owner_.at(offset);
  const uint64_t front_id = mis_.front().mi.id();
  if (id < front_id || id > mis_.back().mi.id()) return nullptr;
  PendingMi& p = mis_.at(static_cast<size_t>(id - front_id));
  return p.mi.contains_seq(seq) ? &p : nullptr;
}

void PccSender::on_ack(const AckInfo& info) {
  last_ack_at_ = info.ack_time;
  if (in_survival_) {
    // The link is back (this ACK proves it): leave survival and resume
    // from half the pre-fault rate — gradient steps up from the floor
    // would take tens of seconds. The STARTING restart doubles back to
    // the old operating point within a few MIs, or reverts immediately
    // if the post-fault path can't sustain it.
    in_survival_ = false;
    survival_next_check_ = kTimeInfinite;
    recovery_pending_ = true;
    recovery_started_ = info.ack_time;
    controller_.clamp_rate(pre_fault_rate_mbps_ / 2.0);
    controller_.restart_from_current_rate();
  }
  const bool accepted =
      ack_filter_.accept(info.rtt, info.ack_time, info.prev_ack_time);
  // Only accepted samples reach the smoothed RTT: a rejected spike must
  // not stretch mi_duration() after the filter already ruled it noise.
  if (accepted) srtt_ms_.add(to_ms(info.rtt));
  if (PendingMi* p = find_mi(info.seq)) {
    p->mi.on_ack(info.seq, info.bytes, info.sent_time, info.rtt, accepted);
  }
  drain_completed_mis();
  if (recovery_pending_ &&
      controller_.base_rate_mbps() >= 0.8 * pre_fault_rate_mbps_) {
    last_recovery_ns_ = info.ack_time - recovery_started_;
    recovery_pending_ = false;
  }
}

void PccSender::on_loss(const LossInfo& info) {
  if (PendingMi* p = find_mi(info.seq)) {
    p->mi.on_loss(info.seq);
  }
  drain_completed_mis();
}

void PccSender::on_timer(TimeNs now) {
  abandon_starved_mis(now);
  maybe_enter_survival(now);
  rotate_if_due(now);
}

TimeNs PccSender::next_timer() const {
  TimeNs t = mis_.empty() ? kTimeInfinite : mis_.back().mi.end();
  if (cfg_.survival_mode) {
    if (in_survival_) {
      t = std::min(t, survival_next_check_);
    } else if (last_send_at_ > last_ack_at_) {
      // Wake when the ACK drought would cross the starvation threshold.
      t = std::min(t, std::max(last_ack_at_, wait_started_) +
                          starvation_timeout());
    }
  }
  return t;
}

TimeNs PccSender::starvation_timeout() const {
  // Before any RTT estimate exists (startup), be very patient: the first
  // ACK legitimately takes a while and a false trip would stall the ramp.
  if (!srtt_ms_.initialized()) return 4 * cfg_.ack_starvation_timeout;
  return std::max(cfg_.ack_starvation_timeout, 4 * from_ms(srtt_ms_.value()));
}

void PccSender::maybe_enter_survival(TimeNs now) {
  if (!cfg_.survival_mode) return;
  const double floor = cfg_.rate_control.min_rate_mbps;
  if (in_survival_) {
    if (now >= survival_next_check_) {
      // Still dark. Re-assert the floor (interim MI plans may have nudged
      // the pacing rate) and back the next re-probe off exponentially.
      controller_.yield_to(floor);
      current_rate_mbps_ = floor;
      survival_backoff_ =
          std::min(2 * survival_backoff_, cfg_.survival_backoff_max);
      survival_next_check_ = now + survival_backoff_;
    }
    return;
  }
  // Only data actually awaiting ACKs can starve; an app-limited or stopped
  // flow (last send already acknowledged) never trips the watchdog.
  if (last_send_at_ <= last_ack_at_) return;
  if (now - std::max(last_ack_at_, wait_started_) < starvation_timeout()) {
    return;
  }
  in_survival_ = true;
  ++survival_entries_;
  pre_fault_rate_mbps_ = controller_.base_rate_mbps();
  controller_.yield_to(floor);
  current_rate_mbps_ = floor;
  survival_backoff_ = starvation_timeout();
  survival_next_check_ = now + survival_backoff_;
}

void PccSender::abandon_starved_mis(TimeNs now) {
  // A sealed head MI whose stragglers never resolve (blackout ate the ACKs
  // and the RTO sweep hasn't swept yet) blocks every younger MI. Past the
  // starvation timeout, give up on it so the pipeline keeps moving.
  bool abandoned = false;
  while (mis_.size() > 1 && mis_.front().mi.sealed() &&
         !mis_.front().mi.complete() &&
         now > mis_.front().mi.end() + starvation_timeout()) {
    controller_.on_mi_abandoned(mis_.front().tag);
    retire_front_mi();
    abandoned = true;
    ++mis_abandoned_watchdog_;
  }
  if (abandoned) drain_completed_mis();
}

Bandwidth PccSender::pacing_rate() const {
  return Bandwidth::from_mbps(current_rate_mbps_);
}

void PccSender::drain_completed_mis() {
  PROTEUS_PROFILE_SCOPE(ProfilePhase::kSealMi);
  // Close MIs strictly in creation order so the controller sees an ordered
  // utility stream. A sealed-but-unresolved head blocks younger MIs.
  while (mis_.size() > 1 || (!mis_.empty() && mis_.front().mi.sealed())) {
    PendingMi& front = mis_.front();
    if (!front.mi.sealed() || !front.mi.complete()) break;
    const MiMetrics raw = front.mi.compute();
    MiMetrics m = raw;
    if (m.useful) {
      NoiseDecision decision;
      apply_noise_control(cfg_.noise, m,
                          cfg_.noise.trending ? &trending_ : nullptr,
                          &deviation_floor_,
                          telemetry_ != nullptr ? &decision : nullptr);
      const double u = utility_->eval(m);
      last_metrics_ = m;
      last_utility_ = u;
      ++mis_completed_;
      // Emergency brake: only when the *deviation* term alone outweighs
      // the throughput term (competition onset for a scavenger). Ordinary
      // gradient transients during probing must not trigger it, or solo
      // utilization collapses.
      // The brake is only for vacating from a HIGH rate; flows already
      // near the floor use the normal gradient dynamics (a rate-blind
      // brake makes scavenger-vs-scavenger winner-take-all, and parks
      // flows at the minimum on spiky wireless paths).
      const bool rate_is_high =
          controller_.base_rate_mbps() >
          16.0 * cfg_.rate_control.min_rate_mbps;
      bool braked = false;
      bool qualifies = false;
      // Deviation measured while our own rate was stepping up is
      // plausibly self-induced (slow-start overshoot); the brake is for
      // competition arriving while we cruise at a steady rate.
      const bool rate_was_steady =
          m.target_rate_mbps <= prev_mi_target_rate_ * 1.05;
      prev_mi_target_rate_ = m.target_rate_mbps;
      if (cfg_.emergency_brake && rate_is_high && rate_was_steady &&
          u < 0.0 && m.rtt_dev_sec > 0.0) {
        MiMetrics no_dev = m;
        no_dev.rtt_dev_sec = 0.0;
        const double dev_penalty = utility_->eval(no_dev) - u;
        const double throughput_term =
            std::pow(std::max(m.send_rate_mbps, 0.0), 0.9);
        qualifies = dev_penalty > 2.0 * throughput_term;
      }
      // With the trending gate screening channel bursts, one qualifying
      // MI is competition enough; the id check rate-limits the brake to
      // once per two MIs so a burst of qualifying MIs cannot cascade the
      // rate to the floor (behavior pinned by PccSender.BrakeCooldown*).
      {
        PROTEUS_PROFILE_SCOPE(ProfilePhase::kRateControl);
        if (qualifies && front.mi.id() >= last_brake_mi_ + 2) {
          last_brake_mi_ = front.mi.id();
          controller_.yield_to(controller_.base_rate_mbps() / 2.0);
          braked = true;
          ++brakes_engaged_;
        }
        if (!braked) controller_.on_mi_complete(front.tag, u);
      }
      // Record after the controller absorbed the MI, so rc_state and
      // base_rate reflect the decision this MI produced.
      if (telemetry_ != nullptr && telemetry_->should_record()) {
        record_mi_telemetry(front.mi, m, u, braked, decision);
      }
    } else {
      controller_.on_mi_abandoned(front.tag);
      ++mis_abandoned_useless_;
    }
    retire_front_mi();
  }
}

void PccSender::record_mi_telemetry(const MonitorInterval& mi,
                                    const MiMetrics& m, double utility,
                                    bool braked,
                                    const NoiseDecision& decision) {
  MiRecord r;
  r.t_sec = to_sec(mi.end());
  r.mi_id = mi.id();
  r.target_rate_mbps = m.target_rate_mbps;
  r.send_rate_mbps = m.send_rate_mbps;
  r.throughput_mbps = m.throughput_mbps;
  r.utility = utility;

  // Decompose the utility by re-evaluating with one term zeroed at a
  // time: the penalty a term contributes is eval(without it) - eval(all).
  // Exact for the additive Proteus/Vivace forms, and a faithful
  // first-order attribution for any other utility. The re-evals are pure
  // (const, no RNG), so recording cannot perturb the run.
  MiMetrics z = m;
  z.rtt_gradient = 0.0;
  r.utility_gradient_penalty = utility_->eval(z) - utility;
  z = m;
  z.loss_rate = 0.0;
  r.utility_loss_penalty = utility_->eval(z) - utility;
  z = m;
  z.rtt_dev_sec = 0.0;
  r.utility_deviation_penalty = utility_->eval(z) - utility;
  r.utility_throughput_term = utility + r.utility_gradient_penalty +
                              r.utility_loss_penalty +
                              r.utility_deviation_penalty;

  r.rtt_gradient_raw = m.rtt_gradient_raw;
  r.rtt_gradient = m.rtt_gradient;
  r.rtt_dev_raw_sec = m.rtt_dev_raw_sec;
  r.rtt_dev_sec = m.rtt_dev_sec;
  r.deviation_floor_sec = decision.deviation_floor_sec;
  r.trending_evaluated = decision.trending_evaluated;
  r.gradient_significant = decision.gradient_significant;
  r.deviation_significant = decision.deviation_significant;
  r.mi_tolerated = decision.mi_tolerated;

  r.rc_state = GradientRateController::state_name(controller_.state());
  r.base_rate_mbps = controller_.base_rate_mbps();

  if (const auto* hybrid =
          dynamic_cast<const ProteusHybridUtility*>(utility_.get())) {
    const double thr = hybrid->threshold().threshold_mbps();
    r.mode = m.send_rate_mbps < thr ? "primary" : "scavenger";
    r.hybrid_threshold_mbps = thr;
  } else {
    r.mode = utility_->name();
  }

  r.in_survival = in_survival_;
  r.survival_entries = survival_entries_;
  r.braked = braked;
  r.loss_rate = m.loss_rate;
  r.avg_rtt_sec = m.avg_rtt_sec;
  r.rtt_samples = m.rtt_samples;
  r.packets_sent = m.packets_sent;
  r.packets_acked = m.packets_acked;
  r.packets_lost = m.packets_lost;
  r.duration_sec = to_sec(m.duration);
  telemetry_->push(std::move(r));
}

void PccSender::snapshot_metrics(MetricsRegistry* registry) const {
  registry->counter("mis_completed", static_cast<int64_t>(mis_completed_));
  registry->counter("mis_abandoned_watchdog",
                    static_cast<int64_t>(mis_abandoned_watchdog_));
  registry->counter("mis_abandoned_useless",
                    static_cast<int64_t>(mis_abandoned_useless_));
  registry->counter("ack_filter_accepted",
                    static_cast<int64_t>(ack_filter_.accepted()));
  registry->counter("ack_filter_rejected_spike",
                    static_cast<int64_t>(ack_filter_.rejected_spike()));
  registry->counter("ack_filter_rejected_burst",
                    static_cast<int64_t>(ack_filter_.rejected_burst()));
  registry->counter("survival_entries",
                    static_cast<int64_t>(survival_entries_));
  registry->counter("brakes_engaged", static_cast<int64_t>(brakes_engaged_));
  registry->gauge("base_rate_mbps", controller_.base_rate_mbps());
  registry->gauge("last_utility", last_utility_);
}

void PccSender::retire_front_mi() {
  mis_.pop_front();
  // Retire the drained MI's seq_owner_ entries (plus any gap padding).
  const uint64_t live_id = mis_.empty() ? next_mi_id_ : mis_.front().mi.id();
  while (!seq_owner_.empty() && seq_owner_.front() < live_id) {
    seq_owner_.pop_front();
    ++seq_base_;
  }
}

PccSender::Config default_proteus_config(uint64_t seed) {
  PccSender::Config cfg;
  cfg.seed = seed;
  cfg.rate_control.probe_pairs = 3;  // majority rule
  cfg.noise.ack_filter = true;
  cfg.noise.mi_regression_tolerance = true;
  cfg.noise.trending = true;
  return cfg;
}

PccSender::Config default_vivace_config(uint64_t seed) {
  PccSender::Config cfg;
  cfg.seed = seed;
  cfg.rate_control.probe_pairs = 2;  // unanimous vote
  cfg.noise.ack_filter = false;
  cfg.noise.ack_spike_rejection = false;
  cfg.noise.mi_regression_tolerance = false;
  cfg.noise.trending = false;
  cfg.noise.deviation_filter = DeviationFilterMode::kOff;
  cfg.noise.fixed_gradient_tolerance = 0.01;
  return cfg;
}

std::unique_ptr<PccSender> make_proteus_p(uint64_t seed,
                                          UtilityParams params) {
  return std::make_unique<PccSender>(
      std::make_shared<ProteusPrimaryUtility>(params),
      default_proteus_config(seed), "proteus-p");
}

std::unique_ptr<PccSender> make_proteus_s(uint64_t seed,
                                          UtilityParams params) {
  return std::make_unique<PccSender>(
      std::make_shared<ProteusScavengerUtility>(params),
      default_proteus_config(seed), "proteus-s");
}

std::unique_ptr<PccSender> make_proteus_h(
    std::shared_ptr<HybridThresholdState> threshold, uint64_t seed,
    UtilityParams params) {
  return std::make_unique<PccSender>(
      std::make_shared<ProteusHybridUtility>(std::move(threshold), params),
      default_proteus_config(seed), "proteus-h");
}

std::unique_ptr<PccSender> make_vivace(uint64_t seed, UtilityParams params) {
  return std::make_unique<PccSender>(std::make_shared<VivaceUtility>(params),
                                     default_vivace_config(seed), "vivace");
}

}  // namespace proteus
