// PccSender: the Proteus congestion controller (and, with the right
// configuration, PCC Vivace). Assembles monitor intervals, runs the noise
// filters, evaluates the selected utility function, and drives the
// gradient rate controller. The utility can be swapped at runtime — the
// paper's "flexibility" goal — via set_utility(), a plain API call.
#pragma once

#include <memory>
#include <string>

#include "core/monitor_interval.h"
#include "core/noise_filter.h"
#include "core/rate_control.h"
#include "core/utility.h"
#include "sim/ring_buffer.h"
#include "stats/ewma.h"
#include "transport/cc_interface.h"

namespace proteus {

class PccSender final : public CongestionController {
 public:
  struct Config {
    RateControlConfig rate_control;
    NoiseControlConfig noise;
    uint64_t seed = 1;

    // Emergency brake: when an MI's utility is strongly negative while a
    // deviation/latency penalty is active, halve the rate instead of
    // stepping down gradually. Lets the scavenger vacate the link within
    // a couple of MIs when a primary bursts in (at most once per 2 MIs).
    bool emergency_brake = true;

    TimeNs min_mi_duration = from_ms(5);
    TimeNs max_mi_duration = from_ms(1500);
    // An MI should carry at least this many packets to be statistically
    // meaningful; at low rates the MI stretches to fit them.
    int min_packets_per_mi = 10;

    // Survival mode: when data is in flight but no ACK has arrived for
    // several RTTs (link blackout, total ACK loss), park at the floor rate
    // instead of blindly pacing into a dark link, and re-probe with
    // exponential backoff. The first ACK after the fault exits survival
    // and restarts the exponential ramp from the floor.
    bool survival_mode = true;
    TimeNs ack_starvation_timeout = from_ms(250);  // scaled by srtt, see cc
    TimeNs survival_backoff_max = from_sec(2);
  };

  PccSender(std::shared_ptr<UtilityFunction> utility, Config cfg,
            std::string display_name);

  // Runtime utility re-selection (primary <-> scavenger <-> hybrid).
  void set_utility(std::shared_ptr<UtilityFunction> utility);
  const UtilityFunction& utility() const { return *utility_; }

  // CongestionController interface.
  bool reset_for_reuse(uint64_t seed) override;
  void on_start(TimeNs now) override;
  void on_packet_sent(const SentPacketInfo& info) override;
  void on_ack(const AckInfo& info) override;
  void on_loss(const LossInfo& info) override;
  void on_timer(TimeNs now) override;
  TimeNs next_timer() const override;
  Bandwidth pacing_rate() const override;
  int64_t cwnd_bytes() const override { return kNoCwndLimit; }
  std::string name() const override { return display_name_; }

  // Telemetry: record one MiRecord per completed useful MI (subject to
  // the recorder's every-n subsampling) and dump lifetime counters into
  // a MetricsRegistry at export time. Observation only — attaching a
  // recorder never changes a control decision.
  void set_telemetry(TelemetryRecorder* recorder) override {
    telemetry_ = recorder;
  }
  void snapshot_metrics(MetricsRegistry* registry) const override;

  // Introspection for tests and traces.
  GradientRateController::State control_state() const {
    return controller_.state();
  }
  const Config& config() const { return cfg_; }
  const MiMetrics& last_mi_metrics() const { return last_metrics_; }
  double last_utility() const { return last_utility_; }
  uint64_t mis_completed() const { return mis_completed_; }
  uint64_t mis_abandoned_watchdog() const { return mis_abandoned_watchdog_; }
  const AckIntervalFilter& ack_filter() const { return ack_filter_; }
  bool in_survival() const { return in_survival_; }
  uint64_t survival_entries() const { return survival_entries_; }
  uint64_t brakes_engaged() const { return brakes_engaged_; }
  double pre_fault_rate_mbps() const { return pre_fault_rate_mbps_; }
  // Time from the first post-fault ACK until the base rate climbed back to
  // 80% of the pre-fault rate; kTimeInfinite until a recovery completes.
  TimeNs last_recovery_time() const { return last_recovery_ns_; }

 private:
  struct PendingMi {
    MonitorInterval mi;
    uint64_t tag;
  };

  void start_new_mi(TimeNs now);
  void rotate_if_due(TimeNs now);
  void drain_completed_mis();
  // Builds and pushes one telemetry record for a just-closed MI. Only
  // called when telemetry_ is attached and the subsampler fires.
  void record_mi_telemetry(const MonitorInterval& mi, const MiMetrics& m,
                           double utility, bool braked,
                           const NoiseDecision& decision);
  // Pops the front MI and retires its seq_owner_ entries.
  void retire_front_mi();
  // Abandons sealed head MIs whose ACKs are overdue (fault in progress) so
  // the pipeline never deadlocks behind an MI that can't complete.
  void abandon_starved_mis(TimeNs now);
  // ACK-starvation watchdog; enters/extends survival mode.
  void maybe_enter_survival(TimeNs now);
  TimeNs starvation_timeout() const;
  TimeNs mi_duration(double rate_mbps);

  // O(1) seq -> pending-MI lookup (see seq_owner_ below). Returns null for
  // seqs no pending MI tracks.
  PendingMi* find_mi(uint64_t seq);
  void track_seq(uint64_t seq, uint64_t mi_id);

  // Member order is deliberate (same rationale as Sender): with thousands
  // of concurrent flows the object is cold in cache when a pacer tick or
  // ACK lands, and the per-tick reads — pacing_rate(), next_timer(),
  // on_packet_sent()'s rotate/track path — should pull the leading lines
  // only. Cold per-MI machinery (controller, filters, telemetry, config)
  // sits behind the hot block.

  // --- Hot: read on every sent packet / pacer tick ---------------------
  double current_rate_mbps_;           // pacing_rate()
  RingBuffer<PendingMi> mis_;          // creation order; front closes first
  uint64_t next_mi_id_ = 1;
  // Per-ACK/per-loss MI resolution index. seq_owner_[seq - seq_base_] is
  // the id of the MI that sent `seq`; MI ids are consecutive and mis_ is
  // ordered, so the owning PendingMi is mis_[id - front_id]. Entries roll
  // off the front as their MIs drain, keeping the deque sized to the
  // in-flight window. Replaces a linear contains_seq() scan over every
  // pending MI on the two hottest callbacks in the sender.
  RingBuffer<uint64_t> seq_owner_;
  uint64_t seq_base_ = 0;
  bool seq_tracking_started_ = false;
  // Survival-watchdog clocks: read by next_timer() and on_packet_sent()
  // every tick even when survival mode never engages.
  bool in_survival_ = false;
  TimeNs last_ack_at_ = 0;
  TimeNs last_send_at_ = 0;
  // When the current stretch of unacked data began. The drought clock runs
  // from max(last_ack_at_, wait_started_), so a flow resuming after a long
  // app-limited idle is not instantly judged starved against a stale ACK.
  TimeNs wait_started_ = 0;
  TimeNs survival_next_check_ = kTimeInfinite;
  Ewma srtt_ms_{1.0 / 8.0};

  // --- Cold: per-MI close path and configuration -----------------------
  Config cfg_;
  std::shared_ptr<UtilityFunction> utility_;
  GradientRateController controller_;
  AckIntervalFilter ack_filter_;
  TrendingTolerance trending_;
  DeviationFloor deviation_floor_;
  Rng rng_;
  std::string display_name_;

  MiMetrics last_metrics_;
  double last_utility_ = 0.0;
  uint64_t mis_completed_ = 0;
  uint64_t mis_abandoned_watchdog_ = 0;
  uint64_t mis_abandoned_useless_ = 0;
  uint64_t last_brake_mi_ = 0;
  double prev_mi_target_rate_ = 0.0;
  TelemetryRecorder* telemetry_ = nullptr;

  // Survival-mode state touched only while a fault is in progress.
  TimeNs survival_backoff_ = 0;
  double pre_fault_rate_mbps_ = 0.0;
  TimeNs recovery_started_ = 0;
  TimeNs last_recovery_ns_ = kTimeInfinite;
  bool recovery_pending_ = false;
  uint64_t survival_entries_ = 0;
  uint64_t brakes_engaged_ = 0;
};

// ---- Convenience factories ------------------------------------------

PccSender::Config default_proteus_config(uint64_t seed);
PccSender::Config default_vivace_config(uint64_t seed);

std::unique_ptr<PccSender> make_proteus_p(uint64_t seed,
                                          UtilityParams params = {});
std::unique_ptr<PccSender> make_proteus_s(uint64_t seed,
                                          UtilityParams params = {});
std::unique_ptr<PccSender> make_proteus_h(
    std::shared_ptr<HybridThresholdState> threshold, uint64_t seed,
    UtilityParams params = {});
std::unique_ptr<PccSender> make_vivace(uint64_t seed,
                                       UtilityParams params = {});

}  // namespace proteus
