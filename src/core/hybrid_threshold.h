// Cross-layer switching-threshold policy for Proteus-H (paper section 4.4).
//
// For adaptive video the threshold is the largest value satisfying:
//  (1) sufficient-rate rule:  thr <= G * bitrate_max        (G = 1.5)
//  (2) buffer-limit rule:     thr <= bitrate_cur / (2 - f)  when f < 2,
//      where f is the (fractional) number of chunks of free buffer space,
//      checked on each chunk request;
//  (3) emergency rule: thr = infinity while rebuffering.
#pragma once

#include <memory>

#include "core/utility.h"

namespace proteus {

class HybridThresholdPolicy {
 public:
  struct Config {
    double sufficient_rate_margin = 1.5;  // G
    double emergency_threshold_mbps = 1e9;
  };

  explicit HybridThresholdPolicy(std::shared_ptr<HybridThresholdState> state)
      : HybridThresholdPolicy(std::move(state), Config{}) {}
  HybridThresholdPolicy(std::shared_ptr<HybridThresholdState> state,
                        Config cfg);

  // Called when the client requests a chunk. Rates in Mbps; `free_chunks`
  // is the free playback-buffer space measured in chunk durations.
  void on_chunk_request(double max_bitrate_mbps, double current_bitrate_mbps,
                        double free_chunks);

  void on_rebuffer_start();
  void on_rebuffer_end();

  double current_threshold_mbps() const { return state_->threshold_mbps(); }
  bool rebuffering() const { return rebuffering_; }

 private:
  void recompute();

  std::shared_ptr<HybridThresholdState> state_;
  Config cfg_;
  bool rebuffering_ = false;
  double max_bitrate_mbps_ = 0.0;
  double current_bitrate_mbps_ = 0.0;
  double free_chunks_ = 1e9;
};

// Deadline-driven threshold policy (paper section 2.3: "when a software
// update has a deadline requirement, it may want to yield dynamically,
// only after reaching a certain throughput"). The flow behaves as a
// primary up to the rate needed to finish by the deadline and scavenges
// beyond it; as the deadline nears (or progress lags), the threshold —
// and hence the flow's entitlement — rises automatically.
class DeadlineThresholdPolicy {
 public:
  struct Config {
    double margin = 1.5;  // safety factor (same spirit as the video G)
    double min_threshold_mbps = 0.1;
  };

  DeadlineThresholdPolicy(std::shared_ptr<HybridThresholdState> state,
                          int64_t total_bytes, TimeNs deadline)
      : DeadlineThresholdPolicy(std::move(state), total_bytes, deadline,
                                Config{}) {}
  DeadlineThresholdPolicy(std::shared_ptr<HybridThresholdState> state,
                          int64_t total_bytes, TimeNs deadline, Config cfg);

  // Feed transfer progress; recomputes the switching threshold.
  void on_progress(int64_t bytes_delivered, TimeNs now);

  // Rate needed to finish the remaining bytes by the deadline (Mbps);
  // infinite once the deadline has passed with bytes outstanding.
  double required_rate_mbps(int64_t bytes_delivered, TimeNs now) const;

 private:
  std::shared_ptr<HybridThresholdState> state_;
  int64_t total_bytes_;
  TimeNs deadline_;
  Config cfg_;
};

}  // namespace proteus
