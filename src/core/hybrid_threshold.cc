#include "core/hybrid_threshold.h"

#include <algorithm>
#include <utility>

namespace proteus {

HybridThresholdPolicy::HybridThresholdPolicy(
    std::shared_ptr<HybridThresholdState> state, Config cfg)
    : state_(std::move(state)), cfg_(cfg) {}

void HybridThresholdPolicy::on_chunk_request(double max_bitrate_mbps,
                                             double current_bitrate_mbps,
                                             double free_chunks) {
  max_bitrate_mbps_ = max_bitrate_mbps;
  current_bitrate_mbps_ = current_bitrate_mbps;
  free_chunks_ = free_chunks;
  recompute();
}

void HybridThresholdPolicy::on_rebuffer_start() {
  rebuffering_ = true;
  recompute();
}

void HybridThresholdPolicy::on_rebuffer_end() {
  rebuffering_ = false;
  recompute();
}

DeadlineThresholdPolicy::DeadlineThresholdPolicy(
    std::shared_ptr<HybridThresholdState> state, int64_t total_bytes,
    TimeNs deadline, Config cfg)
    : state_(std::move(state)),
      total_bytes_(total_bytes),
      deadline_(deadline),
      cfg_(cfg) {
  state_->set_threshold_mbps(cfg_.min_threshold_mbps);
}

double DeadlineThresholdPolicy::required_rate_mbps(int64_t bytes_delivered,
                                                   TimeNs now) const {
  const int64_t remaining = total_bytes_ - bytes_delivered;
  if (remaining <= 0) return 0.0;
  if (now >= deadline_) return 1e9;
  return static_cast<double>(remaining) * 8.0 / 1e6 /
         to_sec(deadline_ - now);
}

void DeadlineThresholdPolicy::on_progress(int64_t bytes_delivered,
                                          TimeNs now) {
  const double required = required_rate_mbps(bytes_delivered, now);
  state_->set_threshold_mbps(
      std::max(cfg_.min_threshold_mbps, cfg_.margin * required));
}

void HybridThresholdPolicy::recompute() {
  if (rebuffering_) {
    state_->set_threshold_mbps(cfg_.emergency_threshold_mbps);
    return;
  }
  double thr = cfg_.sufficient_rate_margin * max_bitrate_mbps_;
  if (free_chunks_ < 2.0) {
    const double denom = std::max(2.0 - free_chunks_, 1e-6);
    thr = std::min(thr, current_bitrate_mbps_ / denom);
  }
  state_->set_threshold_mbps(std::max(thr, 0.0));
}

}  // namespace proteus
