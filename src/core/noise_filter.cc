#include "core/noise_filter.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "stats/regression.h"
#include "stats/welford.h"

namespace proteus {

bool AckIntervalFilter::accept(TimeNs rtt, TimeNs ack_time,
                               TimeNs prev_ack_time) {
  if (!cfg_.ack_filter) {
    ++accepted_;
    return true;
  }

  // Interval bookkeeping runs on every ACK *arrival*, accepted or not. A
  // spike-rejected ACK still arrived: skipping its interval (as this used
  // to, by returning from the spike branch first) made the next accepted
  // ACK's interval span the rejected gap, so a genuine burst gap could be
  // compared against a stale pre-gap interval and slip past the ratio
  // gate (regression-pinned by AckIntervalFilter.SpikeRejection*).
  const TimeNs interval = prev_ack_time > 0 ? ack_time - prev_ack_time : 0;
  bool triggered = false;
  if (interval > 0 && last_interval_ > 0) {
    const double a = static_cast<double>(interval);
    const double b = static_cast<double>(last_interval_);
    const double ratio = a > b ? a / b : b / a;
    triggered = ratio > cfg_.ack_interval_ratio;
  }
  if (interval > 0) last_interval_ = interval;
  if (triggered) suppressing_ = true;

  // Spike rejection: heavy-tailed one-off delays must not reach the
  // per-MI statistics at all.
  if (cfg_.ack_spike_rejection && rtt_tracker_.count() >= 8) {
    const double gate =
        rtt_tracker_.average() +
        std::max(cfg_.spike_gate * rtt_tracker_.deviation(),
                 static_cast<double>(cfg_.spike_gate_floor));
    // A spike is a short-lived outlier; a *run* of high samples is real
    // congestion and must reach the MI statistics.
    if (static_cast<double>(rtt) > gate && reject_streak_ < 4) {
      ++reject_streak_;
      // Winsorize: feed the capped value so a persistent RTT shift raises
      // the gate within a few samples instead of blinding us.
      rtt_tracker_.add(gate);
      ++rejected_spike_;
      return false;
    }
  }
  reject_streak_ = 0;
  rtt_tracker_.add(static_cast<double>(rtt));

  if (suppressing_) {
    // Resume once an RTT below the exponentially weighted moving average
    // shows the burst has drained.
    if (rtt_avg_.initialized() &&
        static_cast<double>(rtt) < rtt_avg_.value()) {
      suppressing_ = false;
    } else {
      ++rejected_burst_;
      return false;
    }
  }
  rtt_avg_.add(static_cast<double>(rtt));
  ++accepted_;
  return true;
}

TrendingTolerance::Decision TrendingTolerance::update(double mi_avg_rtt_sec,
                                                      double mi_dev_sec) {
  Decision d;
  avg_rtts_.push_back(mi_avg_rtt_sec);
  devs_.push_back(mi_dev_sec);
  const auto k = static_cast<size_t>(cfg_.history_mis);
  while (avg_rtts_.size() > k) avg_rtts_.pop_front();
  while (devs_.size() > k) devs_.pop_front();

  if (avg_rtts_.size() < k) {
    // Warm-up: not enough history to call anything noise.
    return d;
  }

  // trending_gradient: slope of a linear regression of stored MI average
  // RTTs against their index (sec per MI).
  xs_.resize(avg_rtts_.size());
  ys_.resize(avg_rtts_.size());
  for (size_t i = 0; i < xs_.size(); ++i) {
    xs_[i] = static_cast<double>(i + 1);
    ys_[i] = avg_rtts_.at(i);
  }
  const RegressionResult reg = linear_regression(xs_, ys_);
  d.trending_gradient = reg.valid ? reg.slope : 0.0;

  // trending_deviation: standard deviation of the stored MI deviations.
  Welford w;
  for (size_t i = 0; i < devs_.size(); ++i) w.add(devs_.at(i));
  d.trending_deviation = w.stddev();

  // Compare each new trending sample against its own moving average; a
  // sample several deviations out is statistically unlikely to be noise.
  const bool grad_ready = grad_tracker_.count() >= cfg_.history_mis;
  const bool dev_ready = dev_tracker_.count() >= cfg_.history_mis;
  if (grad_ready) {
    d.gradient_significant =
        std::abs(d.trending_gradient - grad_tracker_.average()) >=
        cfg_.g1 * grad_tracker_.deviation() + cfg_.trending_gradient_floor;
  }
  if (dev_ready) {
    d.deviation_significant =
        (d.trending_deviation - dev_tracker_.average()) >=
        cfg_.g2 * dev_tracker_.deviation() + cfg_.trending_deviation_floor;
  }
  // The moving averages are a model of *non-congestion* noise, so they only
  // learn from samples classified as noise (plus warm-up). Feeding them
  // competition-induced samples would raise the baseline until a steadily
  // competing scavenger stopped yielding.
  if (!grad_ready || !d.gradient_significant) {
    grad_tracker_.add(d.trending_gradient);
  }
  if (!dev_ready || !d.deviation_significant) {
    dev_tracker_.add(d.trending_deviation);
  }
  return d;
}

double DeviationFloor::filter(double raw_dev_sec) {
  // Expire MIs that have rolled outside the window *before* reading the
  // floor, so the window spans exactly `deviation_floor_window` MIs
  // (current one included once absorbed below). Evicting after the read
  // — as this used to — let the oldest MI influence one extra floor.
  while (!min_window_.empty() &&
         min_window_.front().first <=
             index_ - static_cast<int64_t>(cfg_.deviation_floor_window)) {
    min_window_.pop_front();
  }
  const double floor = current_floor();
  // Absorb the sample (monotonic min-deque keyed by MI index).
  while (!min_window_.empty() && min_window_.back().second >= raw_dev_sec) {
    min_window_.pop_back();
  }
  min_window_.push_back({index_, raw_dev_sec});
  ++index_;

  if (index_ <= 1) return 0.0;  // no history yet: nothing is competition
  return std::max(0.0, raw_dev_sec - cfg_.deviation_floor_margin * floor);
}

double DeviationFloor::current_floor() const {
  return min_window_.empty() ? 0.0 : min_window_.front().second;
}

void apply_noise_control(const NoiseControlConfig& cfg, MiMetrics& m,
                         TrendingTolerance* trend, DeviationFloor* floor,
                         NoiseDecision* decision) {
  m.rtt_gradient = m.rtt_gradient_raw;
  m.rtt_dev_sec = m.rtt_dev_raw_sec;

  // Vivace-style fixed tolerance (mutually exclusive with the adaptive
  // mechanisms in practice, but composable for ablations).
  if (cfg.fixed_gradient_tolerance > 0.0 &&
      std::abs(m.rtt_gradient_raw) < cfg.fixed_gradient_tolerance) {
    m.rtt_gradient = 0.0;
  }

  // Per-MI: a gradient smaller than the regression's own residual error is
  // indistinguishable from noise. In the paper-literal trending-gate mode
  // this also suppresses the deviation; in floor-subtract mode the
  // deviation has its own dedicated filter below.
  const bool mi_tolerated =
      cfg.mi_regression_tolerance &&
      std::abs(m.rtt_gradient_raw) < m.regression_error;
  if (mi_tolerated) {
    m.rtt_gradient = 0.0;
    if (cfg.deviation_filter == DeviationFilterMode::kTrendingGate) {
      m.rtt_dev_sec = 0.0;
    }
  }
  if (decision != nullptr) decision->mi_tolerated = mi_tolerated;

  TrendingTolerance::Decision trend_decision;
  if (cfg.trending && trend != nullptr && m.rtt_samples >= 2) {
    if (decision != nullptr) decision->trending_evaluated = true;
    trend_decision = trend->update(m.avg_rtt_sec, m.rtt_dev_raw_sec);
    if (trend_decision.gradient_significant) {
      // A persistent trend cannot be ignored, even if the per-MI check
      // tolerated it (paper: avoids late reaction to slow inflation).
      m.rtt_gradient = m.rtt_gradient_raw;
    } else {
      m.rtt_gradient = 0.0;
    }
  }

  switch (cfg.deviation_filter) {
    case DeviationFilterMode::kOff:
      m.rtt_dev_sec = m.rtt_dev_raw_sec;
      break;
    case DeviationFilterMode::kTrendingGate:
      if (cfg.trending && trend != nullptr && m.rtt_samples >= 2) {
        if (trend_decision.gradient_significant ||
            trend_decision.deviation_significant) {
          m.rtt_dev_sec = m.rtt_dev_raw_sec;
        } else {
          m.rtt_dev_sec = 0.0;
        }
      }
      break;
    case DeviationFilterMode::kFloorSubtract:
      if (floor != nullptr) {
        m.rtt_dev_sec = floor->filter(m.rtt_dev_raw_sec);
      }
      break;
  }

  if (decision != nullptr) {
    decision->gradient_significant = trend_decision.gradient_significant;
    decision->deviation_significant = trend_decision.deviation_significant;
    decision->deviation_floor_sec =
        floor != nullptr ? floor->current_floor() : 0.0;
  }
}

}  // namespace proteus
