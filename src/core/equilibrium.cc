#include "core/equilibrium.h"

#include <algorithm>
#include <cmath>

namespace proteus {

namespace {

double congestion_term(const EquilibriumModel& m, double total) {
  return std::max(0.0, (total - m.capacity_mbps) / m.capacity_mbps);
}

// One-dimensional maximization of the sender's utility in its own rate,
// holding the others' total fixed. The utilities are strictly concave in
// x, so golden-section search suffices.
template <typename U>
double best_response(U utility, double others_total, double capacity) {
  double lo = 0.0;
  double hi = std::max(capacity * 2.0, capacity - others_total + capacity);
  constexpr double kPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = utility(x1), f2 = utility(x2);
  for (int i = 0; i < 200; ++i) {
    if (f1 < f2) {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = utility(x2);
    } else {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = utility(x1);
    }
  }
  return (a + b) / 2.0;
}

}  // namespace

double model_primary_utility(const EquilibriumModel& m, double x,
                             double total) {
  return std::pow(std::max(x, 0.0), m.params.t) -
         m.params.b * x * congestion_term(m, total);
}

double model_scavenger_utility(const EquilibriumModel& m, double x,
                               double total) {
  return std::pow(std::max(x, 0.0), m.params.t) -
         (m.params.b + m.params.d * m.deviation_factor) * x *
             congestion_term(m, total);
}

EquilibriumResult solve_equilibrium(const EquilibriumModel& m, int n_primary,
                                    int n_scavenger, double tol,
                                    int max_iterations) {
  EquilibriumResult r;
  const int n = n_primary + n_scavenger;
  if (n == 0) {
    r.converged = true;
    return r;
  }
  // Start from an equal split of capacity.
  const double x0 = m.capacity_mbps / static_cast<double>(n);
  r.primary_rates.assign(static_cast<size_t>(n_primary), x0);
  r.scavenger_rates.assign(static_cast<size_t>(n_scavenger), x0);

  for (int it = 0; it < max_iterations; ++it) {
    double max_change = 0.0;
    auto total = [&] {
      double s = 0.0;
      for (double v : r.primary_rates) s += v;
      for (double v : r.scavenger_rates) s += v;
      return s;
    };
    for (double& x : r.primary_rates) {
      const double others = total() - x;
      const double nx = best_response(
          [&](double y) { return model_primary_utility(m, y, others + y); },
          others, m.capacity_mbps);
      // Damping stabilizes the simultaneous best-response dynamics.
      const double updated = x + 0.5 * (nx - x);
      max_change = std::max(max_change, std::abs(updated - x));
      x = updated;
    }
    for (double& x : r.scavenger_rates) {
      const double others = total() - x;
      const double nx = best_response(
          [&](double y) { return model_scavenger_utility(m, y, others + y); },
          others, m.capacity_mbps);
      const double updated = x + 0.5 * (nx - x);
      max_change = std::max(max_change, std::abs(updated - x));
      x = updated;
    }
    r.iterations = it + 1;
    if (max_change < tol) {
      r.converged = true;
      break;
    }
  }
  r.total_rate = 0.0;
  for (double v : r.primary_rates) r.total_rate += v;
  for (double v : r.scavenger_rates) r.total_rate += v;
  return r;
}

}  // namespace proteus
