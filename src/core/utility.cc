#include "core/utility.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace proteus {

namespace {
// x^t for non-negative x (rates are never negative).
double pow_rate(double x, double t) { return std::pow(std::max(x, 0.0), t); }
// Utilities must stay defined under adversarial metrics (zero-sample MIs,
// fault-injected garbage): a single NaN input would propagate into the
// gradient and wedge the rate controller permanently.
double finite_or_zero(double x) { return std::isfinite(x) ? x : 0.0; }
}  // namespace

double AllegroUtility::eval(const MiMetrics& m) const {
  const double x = finite_or_zero(m.send_rate_mbps);
  const double L = finite_or_zero(m.loss_rate);
  // Reverse sigmoid: ~1 below 5% loss, ~0 above it.
  const double sig = 1.0 / (1.0 + std::exp(alpha_ * (L - 0.05)));
  return x * (1.0 - L) * sig - x * L;
}

double VivaceUtility::eval(const MiMetrics& m) const {
  const double x = finite_or_zero(m.send_rate_mbps);
  return pow_rate(x, p_.t) - p_.b * x * finite_or_zero(m.rtt_gradient) -
         p_.c * x * finite_or_zero(m.loss_rate);
}

double ProteusPrimaryUtility::eval(const MiMetrics& m) const {
  const double x = finite_or_zero(m.send_rate_mbps);
  return pow_rate(x, p_.t) -
         p_.b * x * std::max(0.0, finite_or_zero(m.rtt_gradient)) -
         p_.c * x * finite_or_zero(m.loss_rate);
}

double ProteusScavengerUtility::eval(const MiMetrics& m) const {
  const double x = finite_or_zero(m.send_rate_mbps);
  return pow_rate(x, p_.t) -
         p_.b * x * std::max(0.0, finite_or_zero(m.rtt_gradient)) -
         p_.c * x * finite_or_zero(m.loss_rate) -
         p_.d * x * finite_or_zero(m.rtt_dev_sec);
}

ProteusHybridUtility::ProteusHybridUtility(
    std::shared_ptr<HybridThresholdState> threshold, UtilityParams p)
    : threshold_(std::move(threshold)), primary_(p), scavenger_(p) {}

double ProteusHybridUtility::eval(const MiMetrics& m) const {
  if (m.send_rate_mbps < threshold_->threshold_mbps()) {
    return primary_.eval(m);
  }
  return scavenger_.eval(m);
}

}  // namespace proteus
