// Per-monitor-interval performance summary fed into utility functions.
#pragma once

#include <cstdint>

#include "sim/units.h"

namespace proteus {

struct MiMetrics {
  // Rates in Mbps (the unit the paper's utility coefficients assume).
  double target_rate_mbps = 0.0;  // rate the controller asked for
  double send_rate_mbps = 0.0;    // bytes actually sent / duration
  double throughput_mbps = 0.0;   // bytes acked / duration

  double loss_rate = 0.0;  // lost packets / sent packets

  // Latency statistics over the MI's accepted RTT samples.
  double avg_rtt_sec = 0.0;
  double rtt_gradient = 0.0;      // after noise filtering (s/s)
  double rtt_gradient_raw = 0.0;  // straight from regression
  double rtt_dev_sec = 0.0;       // after noise filtering
  double rtt_dev_raw_sec = 0.0;   // sigma(RTT) straight from samples
  double regression_error = 0.0;  // residual RMS / MI duration (s/s)

  int64_t packets_sent = 0;
  int64_t packets_acked = 0;
  int64_t packets_lost = 0;
  int64_t rtt_samples = 0;  // samples surviving the per-ACK filter
  TimeNs duration = 0;

  // True when the MI carried enough traffic to be meaningful.
  bool useful = false;
};

}  // namespace proteus
