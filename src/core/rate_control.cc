#include "core/rate_control.h"

#include <algorithm>
#include <cmath>

namespace proteus {

GradientRateController::GradientRateController(RateControlConfig cfg,
                                               uint64_t seed)
    : cfg_(cfg), rng_(seed), base_rate_(cfg.initial_rate_mbps) {
  boundary_ = cfg_.boundary_init;
  base_rate_ = clamp(base_rate_);
  plans_.reserve(16);
}

bool GradientRateController::take_plan(uint64_t tag, PlanInfo* out) {
  for (size_t i = 0; i < plans_.size(); ++i) {
    if (plans_[i].first == tag) {
      *out = plans_[i].second;
      plans_[i] = plans_.back();
      plans_.pop_back();
      return true;
    }
  }
  return false;
}

void GradientRateController::reset(uint64_t seed) {
  rng_.reseed(seed);
  state_ = State::kStarting;
  base_rate_ = clamp(cfg_.initial_rate_mbps);
  next_tag_ = 1;
  plans_.clear();
  start_has_prev_ = false;
  start_prev_rate_ = 0.0;
  start_prev_utility_ = 0.0;
  probe_round_ = 0;
  trials_.clear();
  trials_issued_ = 0;
  direction_ = 0;
  amplifier_ = 1.0;
  boundary_ = cfg_.boundary_init;
  move_has_prev_ = false;
  move_prev_rate_ = 0.0;
  move_prev_utility_ = 0.0;
}

double GradientRateController::clamp(double r) const {
  return std::clamp(r, cfg_.min_rate_mbps, cfg_.max_rate_mbps);
}

const char* GradientRateController::state_name(State s) {
  switch (s) {
    case State::kStarting: return "starting";
    case State::kProbing: return "probing";
    case State::kMoving: return "moving";
  }
  return "?";
}

void GradientRateController::clamp_rate(double rate_mbps) {
  base_rate_ = clamp(rate_mbps);
}

GradientRateController::MiPlan GradientRateController::plan_next_mi() {
  const uint64_t tag = next_tag_++;
  PlanInfo info;
  switch (state_) {
    case State::kStarting:
      info = PlanInfo{Role::kStarting, base_rate_};
      break;
    case State::kProbing:
      if (trials_issued_ < static_cast<int>(trials_.size())) {
        const Trial& t = trials_[static_cast<size_t>(trials_issued_)];
        info = PlanInfo{Role::kProbe, t.rate, probe_round_, trials_issued_};
        ++trials_issued_;
      } else {
        // All trials issued; hold the base rate until results arrive.
        info = PlanInfo{Role::kFiller, base_rate_};
      }
      break;
    case State::kMoving:
      info = PlanInfo{Role::kMoving, base_rate_};
      break;
  }
  plans_.emplace_back(tag, info);
  return MiPlan{info.rate, tag};
}

void GradientRateController::enter_probing() {
  state_ = State::kProbing;
  ++probe_round_;
  trials_.clear();
  trials_issued_ = 0;
  const double hi = clamp(base_rate_ * (1.0 + cfg_.probe_step));
  const double lo = clamp(base_rate_ * (1.0 - cfg_.probe_step));
  for (int p = 0; p < cfg_.probe_pairs; ++p) {
    const bool high_first = rng_.bernoulli(0.5);
    trials_.push_back(Trial{high_first, high_first ? hi : lo, std::nullopt});
    trials_.push_back(Trial{!high_first, high_first ? lo : hi, std::nullopt});
  }
}

void GradientRateController::process_probe_round() {
  int votes = 0;
  double gradient_sum = 0.0;
  double utility_sum = 0.0;
  const double hi = base_rate_ * (1.0 + cfg_.probe_step);
  const double lo = base_rate_ * (1.0 - cfg_.probe_step);
  const double dr = std::max(hi - lo, 1e-9);
  for (int p = 0; p < cfg_.probe_pairs; ++p) {
    double u_hi = 0.0, u_lo = 0.0;
    for (int j = 0; j < 2; ++j) {
      const Trial& t = trials_[static_cast<size_t>(2 * p + j)];
      if (t.is_high) {
        u_hi = *t.utility;
      } else {
        u_lo = *t.utility;
      }
      utility_sum += *t.utility;
    }
    votes += u_hi > u_lo ? 1 : -1;
    gradient_sum += (u_hi - u_lo) / dr;
  }

  const bool unanimous_needed = cfg_.probe_pairs <= 2;
  const bool decided =
      unanimous_needed ? std::abs(votes) == cfg_.probe_pairs : votes != 0;
  if (!decided) {
    // Inconsistent indications: probe again around the same rate.
    enter_probing();
    return;
  }
  const int dir = votes > 0 ? 1 : -1;
  const double avg_gradient =
      gradient_sum / static_cast<double>(cfg_.probe_pairs);
  const double avg_utility =
      utility_sum / static_cast<double>(2 * cfg_.probe_pairs);
  enter_moving(dir, avg_gradient, avg_utility);
}

void GradientRateController::enter_moving(int direction, double gradient_hint,
                                          double base_utility) {
  state_ = State::kMoving;
  direction_ = direction;
  amplifier_ = 1.0;
  boundary_ = cfg_.boundary_init;
  move_has_prev_ = true;
  move_prev_rate_ = base_rate_;
  move_prev_utility_ = base_utility;

  const double delta =
      std::clamp(cfg_.step_scale * std::abs(gradient_hint),
                 0.5 * cfg_.probe_step * base_rate_, boundary_ * base_rate_);
  base_rate_ = clamp(base_rate_ + static_cast<double>(direction_) * delta);
}

void GradientRateController::restart_from_current_rate() {
  plans_.clear();
  trials_.clear();
  trials_issued_ = 0;
  ++probe_round_;  // invalidate any in-flight probe completions
  state_ = State::kStarting;
  start_has_prev_ = false;
  start_prev_rate_ = base_rate_;
  start_prev_utility_ = 0.0;
  move_has_prev_ = false;
  amplifier_ = 1.0;
  boundary_ = cfg_.boundary_init;
}

void GradientRateController::yield_to(double rate_mbps) {
  base_rate_ = clamp(rate_mbps);
  plans_.clear();
  move_has_prev_ = false;
  amplifier_ = 1.0;
  enter_probing();
}

void GradientRateController::on_mi_abandoned(uint64_t tag) {
  PlanInfo info;
  if (!take_plan(tag, &info)) return;
  if (state_ == State::kProbing && info.role == Role::kProbe &&
      info.probe_round == probe_round_) {
    enter_probing();  // fresh round; stale trials are ignored by round id
  }
}

void GradientRateController::on_mi_complete(uint64_t tag, double utility) {
  PlanInfo info;
  if (!take_plan(tag, &info)) return;

  switch (state_) {
    case State::kStarting: {
      if (info.role != Role::kStarting) return;  // stale
      if (!start_has_prev_ || utility >= start_prev_utility_) {
        start_has_prev_ = true;
        start_prev_rate_ = info.rate;
        start_prev_utility_ = utility;
        base_rate_ = clamp(std::max(base_rate_, info.rate) * 2.0);
      } else {
        // Utility regressed: revert to the last good rate and probe.
        base_rate_ = clamp(start_prev_rate_);
        enter_probing();
      }
      return;
    }
    case State::kProbing: {
      if (info.role != Role::kProbe || info.probe_round != probe_round_) {
        return;  // filler or stale trial from an earlier round
      }
      trials_[static_cast<size_t>(info.trial_index)].utility = utility;
      const bool all_done =
          std::all_of(trials_.begin(), trials_.end(),
                      [](const Trial& t) { return t.utility.has_value(); });
      if (all_done) process_probe_round();
      return;
    }
    case State::kMoving: {
      if (info.role != Role::kMoving) return;  // stale probe/starting MI
      if (utility < move_prev_utility_) {
        // Worse than the previous step: revert and re-examine.
        base_rate_ = clamp(move_prev_rate_);
        move_has_prev_ = false;
        enter_probing();
        return;
      }
      double gradient;
      const double dr = info.rate - move_prev_rate_;
      if (std::abs(dr) > 1e-9) {
        gradient = (utility - move_prev_utility_) / dr;
      } else {
        gradient = 0.0;
      }
      move_prev_rate_ = info.rate;
      move_prev_utility_ = utility;

      amplifier_ = std::min(amplifier_ * 2.0, cfg_.amplifier_max);
      boundary_ = std::min(boundary_ + cfg_.boundary_step, cfg_.boundary_max);
      const double delta = std::clamp(
          cfg_.step_scale * amplifier_ * std::abs(gradient),
          0.5 * cfg_.probe_step * base_rate_, boundary_ * base_rate_);
      base_rate_ = clamp(base_rate_ + static_cast<double>(direction_) * delta);
      return;
    }
  }
}

}  // namespace proteus
