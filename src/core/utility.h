// Utility function library (paper section 4).
//
// The PCC framework decouples "what is good" (a utility function over MI
// metrics) from "how to chase it" (the gradient rate controller). Proteus
// ships a library of utilities — primary, scavenger, hybrid — and lets the
// application select or re-select one at runtime, even mid-flow.
#pragma once

#include <memory>
#include <string>

#include "core/metrics.h"

namespace proteus {

// Default coefficients from the paper (rate in Mbps, latency in seconds).
struct UtilityParams {
  double t = 0.9;     // throughput exponent (0 < t < 1 for concavity)
  double b = 900.0;   // RTT-gradient penalty coefficient
  double c = 11.35;   // loss penalty coefficient (~5% random loss tolerance)
  // RTT-deviation penalty coefficient (scavenger). The paper uses 1500
  // against real-Internet deviation scales; 2000 is the calibrated
  // equivalent for this simulator's pacing-jitter noise model (DESIGN.md,
  // "Calibration"). The ablation bench sweeps this.
  double d = 2000.0;
};

class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;
  // Utility of the MI; `m.send_rate_mbps` is the x_i of the formulas.
  virtual double eval(const MiMetrics& m) const = 0;
  virtual std::string name() const = 0;
};

// PCC Allegro (Dong et al., NSDI 2015): the first PCC utility —
// loss-based, latency-blind: u = x·(1−L)·sigmoid(alpha·(L−0.05)) − x·L.
// Kept as a historical baseline; it fills buffers like loss-based TCP
// (the bufferbloat the paper's related-work section calls out).
class AllegroUtility final : public UtilityFunction {
 public:
  explicit AllegroUtility(double alpha = 100.0) : alpha_(alpha) {}
  double eval(const MiMetrics& m) const override;
  std::string name() const override { return "allegro"; }

 private:
  double alpha_;
};

// PCC Vivace: u = x^t − b·x·(dRTT/dt) − c·x·L, signed gradient (a draining
// queue is rewarded). Kept as the baseline primary protocol.
class VivaceUtility : public UtilityFunction {
 public:
  explicit VivaceUtility(UtilityParams p = {}) : p_(p) {}
  double eval(const MiMetrics& m) const override;
  std::string name() const override { return "vivace"; }

 protected:
  UtilityParams p_;
};

// Proteus-P: Vivace with negative RTT gradient ignored
// (u_P(x) = x^t − b·x·max(0, dRTT/dt) − c·x·L), eq. (1).
class ProteusPrimaryUtility final : public VivaceUtility {
 public:
  explicit ProteusPrimaryUtility(UtilityParams p = {}) : VivaceUtility(p) {}
  double eval(const MiMetrics& m) const override;
  std::string name() const override { return "proteus-p"; }
};

// Proteus-S: u_S(x) = u_P(x) − d·x·sigma(RTT), eq. (2). RTT deviation is a
// sensitive, typically-unused-by-primaries signal of flow competition.
class ProteusScavengerUtility final : public VivaceUtility {
 public:
  explicit ProteusScavengerUtility(UtilityParams p = {}) : VivaceUtility(p) {}
  double eval(const MiMetrics& m) const override;
  std::string name() const override { return "proteus-s"; }
};

// Shared mutable threshold for Proteus-H, settable by the application's
// cross-layer policy (see hybrid_threshold.h) while the flow runs.
class HybridThresholdState {
 public:
  double threshold_mbps() const { return threshold_mbps_; }
  void set_threshold_mbps(double v) { threshold_mbps_ = v; }

 private:
  double threshold_mbps_ = 1e9;  // effectively "always primary" until set
};

// Proteus-H: piecewise utility, eq. (3) — primary below the threshold,
// scavenger at or above it. The mode switch is implicit: the controller
// just compares utilities of different rates.
class ProteusHybridUtility final : public UtilityFunction {
 public:
  ProteusHybridUtility(std::shared_ptr<HybridThresholdState> threshold,
                       UtilityParams p = {});
  double eval(const MiMetrics& m) const override;
  std::string name() const override { return "proteus-h"; }

  const HybridThresholdState& threshold() const { return *threshold_; }

 private:
  std::shared_ptr<HybridThresholdState> threshold_;
  ProteusPrimaryUtility primary_;
  ProteusScavengerUtility scavenger_;
};

}  // namespace proteus
