// Latency-noise tolerance mechanisms (paper section 5).
//
// Three of the four mechanisms live here:
//  * Per-ACK RTT sample filtering keyed on the ratio of consecutive ACK
//    intervals (AckIntervalFilter).
//  * Per-MI regression-error tolerance (applied in apply_noise_control).
//  * MI-history trending tolerance with significance gates G1/G2
//    (TrendingTolerance).
// The fourth — the majority rule in probing — lives in the rate controller.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "sim/ring_buffer.h"
#include "sim/units.h"
#include "stats/ewma.h"

namespace proteus {

// How the RTT-deviation signal is cleaned of non-congestion noise.
enum class DeviationFilterMode {
  kOff,           // raw deviation straight into the utility
  kTrendingGate,  // paper-literal binary gate (G2 sigmas from baseline)
  kFloorSubtract, // subtract a rolling-min ambient floor (default; see
                  // DESIGN.md "noise tolerance" for why)
};

struct NoiseControlConfig {
  // Vivace's fixed gradient-tolerance threshold (s/s): gradients with a
  // smaller magnitude are ignored. 0 disables. Proteus replaces this with
  // the adaptive mechanisms below.
  double fixed_gradient_tolerance = 0.0;

  // Per-ACK filter.
  bool ack_filter = true;
  double ack_interval_ratio = 50.0;
  // Spike rejection: an RTT more than `spike_gate` deviations above the
  // smoothed average is a MAC-scheduling artifact, not congestion; drop
  // the sample (winsorized into the tracker so persistent level shifts
  // still pass after a few samples).
  // Off by default: on clean links with real queueing the rejection gate
  // interacts badly with the deviation statistics; enable on known-spiky
  // wireless paths (see bench/ablation_design).
  bool ack_spike_rejection = false;
  double spike_gate = 4.0;
  // Absolute floor on the rejection gate: sub-millisecond excursions are
  // queueing signal, not MAC spikes, and must always pass.
  TimeNs spike_gate_floor = from_ms(3);

  // Per-MI regression-error tolerance.
  bool mi_regression_tolerance = true;

  // Trending tolerance.
  bool trending = true;
  int history_mis = 6;  // k
  double g1 = 2.0;      // gradient significance gate
  double g2 = 4.0;      // deviation significance gate
  // Absolute significance floors. On a very clean link the trackers'
  // deviations collapse toward zero and numeric wiggles would read as
  // "several sigmas out"; a sample must also clear these magnitudes to
  // count as competition. Units: sec/MI (gradient), sec (deviation).
  double trending_gradient_floor = 3e-5;
  double trending_deviation_floor = 3e-5;

  // Deviation cleaning (see DeviationFilterMode).
  DeviationFilterMode deviation_filter = DeviationFilterMode::kFloorSubtract;
  int deviation_floor_window = 96;     // MIs of history for the ambient min
  double deviation_floor_margin = 1.0; // subtract margin * floor
};

// Rolling-minimum ambient deviation floor: the quietest recent MI defines
// "channel + self noise"; only the excess above it reads as competition.
// Monotonic min-deque over a fixed-length MI window.
class DeviationFloor {
 public:
  explicit DeviationFloor(const NoiseControlConfig& cfg) : cfg_(cfg) {}

  // Returns the filtered deviation for this MI and absorbs the sample
  // into the history.
  double filter(double raw_dev_sec);
  double current_floor() const;

  // Pooled-flow support: forget all history, keep storage.
  void reset() {
    index_ = 0;
    min_window_.clear();
  }

 private:
  NoiseControlConfig cfg_;
  int64_t index_ = 0;
  RingBuffer<std::pair<int64_t, double>> min_window_;  // (index, dev)
};

// Filters abnormal RTT samples caused by bursty ACK reception (irregular
// MAC scheduling). When the ratio between two consecutive ACK intervals
// exceeds the threshold, samples are ignored until an RTT below the moving
// RTT average is observed.
class AckIntervalFilter {
 public:
  explicit AckIntervalFilter(const NoiseControlConfig& cfg) : cfg_(cfg) {}

  // Returns true when the RTT sample should be used.
  bool accept(TimeNs rtt, TimeNs ack_time, TimeNs prev_ack_time);

  bool suppressing() const { return suppressing_; }

  // Lifetime tallies for the telemetry metrics registry.
  uint64_t accepted() const { return accepted_; }
  uint64_t rejected_spike() const { return rejected_spike_; }
  uint64_t rejected_burst() const { return rejected_burst_; }

 private:
  NoiseControlConfig cfg_;
  TimeNs last_interval_ = 0;
  bool suppressing_ = false;
  Ewma rtt_avg_{1.0 / 8.0};
  MeanDeviationTracker rtt_tracker_;
  int reject_streak_ = 0;
  uint64_t accepted_ = 0;
  uint64_t rejected_spike_ = 0;
  uint64_t rejected_burst_ = 0;
};

// Tracks the last k MIs' average RTT and RTT deviation and decides whether
// the current MI's gradient/deviation are statistically distinguishable
// from ambient noise.
class TrendingTolerance {
 public:
  explicit TrendingTolerance(const NoiseControlConfig& cfg) : cfg_(cfg) {}

  struct Decision {
    bool gradient_significant = true;
    bool deviation_significant = true;
    double trending_gradient = 0.0;
    double trending_deviation = 0.0;
  };

  // Feed one closed MI's raw latency summary; returns significance gates.
  Decision update(double mi_avg_rtt_sec, double mi_dev_sec);

  // Pooled-flow support: forget all history, keep storage (including the
  // regression scratch).
  void reset() {
    avg_rtts_.clear();
    devs_.clear();
    grad_tracker_.reset();
    dev_tracker_.reset();
  }

 private:
  NoiseControlConfig cfg_;
  RingBuffer<double> avg_rtts_;
  RingBuffer<double> devs_;
  // Regression scratch, reused across updates so a sealed MI costs no
  // allocation at steady state (capacity ratchets to history_mis).
  std::vector<double> xs_;
  std::vector<double> ys_;
  MeanDeviationTracker grad_tracker_;
  MeanDeviationTracker dev_tracker_;
};

// What the noise-control pass decided for one MI, exposed for telemetry.
// Mirrors the verdicts that shaped the filtered gradient/deviation.
struct NoiseDecision {
  bool mi_tolerated = false;       // per-MI regression tolerance fired
  bool trending_evaluated = false; // trending gates actually ran
  bool gradient_significant = true;
  bool deviation_significant = true;
  double deviation_floor_sec = 0.0;  // floor after absorbing this MI
};

// Applies the per-MI regression tolerance, the trending gates, and the
// deviation filter to a raw MiMetrics, producing the filtered
// gradient/deviation the utility sees. `trend` and `floor` may be null
// when the corresponding mechanism is disabled; `decision` (optional)
// receives the verdicts for telemetry.
void apply_noise_control(const NoiseControlConfig& cfg, MiMetrics& m,
                         TrendingTolerance* trend, DeviationFloor* floor,
                         NoiseDecision* decision = nullptr);

}  // namespace proteus
