// Monitor interval (MI) accounting for the PCC family.
//
// A sender transmits at one target rate for the MI's duration; the MI
// closes once every packet sent inside it has been acknowledged or declared
// lost, at which point its MiMetrics (throughput, loss, RTT regression
// gradient, RTT deviation) are computed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/metrics.h"
#include "sim/units.h"

namespace proteus {

class MonitorInterval {
 public:
  MonitorInterval(uint64_t id, double target_rate_mbps, TimeNs start,
                  TimeNs duration);
  // Empty placeholder (id 0, which no live MI ever has) so MIs can sit in
  // recycled ring-buffer slots.
  MonitorInterval() : MonitorInterval(0, 0.0, 0, 0) {}

  uint64_t id() const { return id_; }
  TimeNs start() const { return start_; }
  TimeNs end() const { return start_ + duration_; }
  double target_rate_mbps() const { return target_rate_mbps_; }

  // True if a packet sent at `t` belongs to this MI.
  bool contains_time(TimeNs t) const { return t >= start_ && t < end(); }
  bool contains_seq(uint64_t seq) const {
    return has_packets_ && seq >= first_seq_ && seq <= last_seq_;
  }

  void on_packet_sent(uint64_t seq, int64_t bytes, TimeNs sent_time);
  // `rtt_accepted` is false when the per-ACK noise filter rejected the
  // sample; the ack still counts toward throughput.
  void on_ack(uint64_t seq, int64_t bytes, TimeNs sent_time, TimeNs rtt,
              bool rtt_accepted);
  void on_loss(uint64_t seq);

  // Sending phase over (sender moved to the next MI).
  void seal() { sealed_ = true; }
  bool sealed() const { return sealed_; }
  // All sent packets resolved and the sending phase is over.
  bool complete() const {
    return sealed_ && resolved_packets_ == sent_packets_;
  }
  int64_t packets_sent() const { return sent_packets_; }

  // Computes the raw metrics. Precondition: complete().
  MiMetrics compute() const;

 private:
  uint64_t id_;
  double target_rate_mbps_;
  TimeNs start_;
  TimeNs duration_;
  bool sealed_ = false;

  bool has_packets_ = false;
  uint64_t first_seq_ = 0;
  uint64_t last_seq_ = 0;

  int64_t sent_packets_ = 0;
  int64_t resolved_packets_ = 0;
  int64_t acked_packets_ = 0;
  int64_t lost_packets_ = 0;
  int64_t sent_bytes_ = 0;
  int64_t acked_bytes_ = 0;

  // Accepted RTT samples paired with send times, for the regression.
  std::vector<double> sample_send_time_sec_;
  std::vector<double> sample_rtt_sec_;
};

}  // namespace proteus
