// Numeric equilibrium solver for the Appendix A game model.
//
// Models n Proteus-P and m Proteus-S senders on one bottleneck of capacity
// C (Mbps) with the simplified utilities (loss terms omitted, S >= C):
//   u_P(x_i) = x_i^t − b·x_i·(S−C)/C
//   u_S(x_i) = x_i^t − (b + d·A)·x_i·(S−C)/C
// where S is the total rate and A folds the MTU/sample-count factor of the
// RTT-deviation expression. Best-response iteration on this strictly
// socially concave game converges to its unique equilibrium, which the
// tests compare against the theorems (fairness in homogeneous populations,
// scavengers yielding in mixed ones).
#pragma once

#include <vector>

#include "core/utility.h"

namespace proteus {

struct EquilibriumModel {
  double capacity_mbps = 50.0;
  UtilityParams params;
  // A: constant factor multiplying d in the scavenger's deviation penalty
  // (paper Appendix A.1). With an RTT-long MI the sample count is roughly
  // linear in rate, making A approximately rate-independent.
  double deviation_factor = 1.0e-3;
};

struct EquilibriumResult {
  std::vector<double> primary_rates;    // Mbps
  std::vector<double> scavenger_rates;  // Mbps
  double total_rate = 0.0;
  int iterations = 0;
  bool converged = false;
};

// Model utility of a single sender given its own rate and everyone's total.
double model_primary_utility(const EquilibriumModel& m, double x,
                             double total);
double model_scavenger_utility(const EquilibriumModel& m, double x,
                               double total);

// Best-response dynamics to within `tol` Mbps per sender.
EquilibriumResult solve_equilibrium(const EquilibriumModel& m, int n_primary,
                                    int n_scavenger, double tol = 1e-4,
                                    int max_iterations = 20'000);

}  // namespace proteus
