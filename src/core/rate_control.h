// Gradient-ascent rate control (PCC Vivace's controller, extended with
// Proteus's majority rule — paper section 5, "Control Algorithm").
//
// State machine:
//  STARTING — double the rate each MI while utility keeps improving; on the
//    first regression revert to the previous rate and start probing.
//  PROBING — run `probe_pairs` randomized (r·(1+eps), r·(1−eps)) trials.
//    Vivace uses 2 pairs and moves only when both agree; Proteus uses 3
//    pairs and moves on the majority vote, which both ramps faster and
//    avoids false direction flips in noisy networks.
//  MOVING — step the rate along the decided direction proportionally to the
//    measured utility gradient, with a confidence amplifier for consecutive
//    consistent steps and a dynamic relative-change boundary; on a utility
//    drop revert to the previous rate and re-enter PROBING.
//
// MIs pipeline (several are in flight before the first completes); the
// controller tags each planned MI and matches completions by tag.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "stats/rng.h"

namespace proteus {

struct RateControlConfig {
  double initial_rate_mbps = 2.0;
  double min_rate_mbps = 0.2;
  double max_rate_mbps = 20'000.0;

  double probe_step = 0.05;  // epsilon: probe at r*(1 +/- eps)
  int probe_pairs = 3;       // Proteus majority rule; Vivace uses 2

  // MOVING step: delta = clamp(step_scale * amplifier * |gradient|,
  //                            0.5*eps*rate, boundary*rate)
  double step_scale = 0.5;       // Mbps^2 per utility unit
  double amplifier_max = 32.0;   // confidence amplifier cap (doubles)
  double boundary_init = 0.05;   // omega_0
  double boundary_step = 0.05;   // omega growth per consistent step
  double boundary_max = 0.25;
};

class GradientRateController {
 public:
  GradientRateController(RateControlConfig cfg, uint64_t seed);

  // Pooled-flow support: restores the exact state of a fresh
  // GradientRateController(cfg_, seed), reusing the trial vector's and
  // plan map's storage.
  void reset(uint64_t seed);

  struct MiPlan {
    double rate_mbps;
    uint64_t tag;
  };

  // Rate (and tag) for the MI about to start.
  MiPlan plan_next_mi();
  // Feed a completed MI's utility back. Completions must arrive in the
  // order the MIs were planned (the PCC sender guarantees this).
  void on_mi_complete(uint64_t tag, double utility);
  // The MI carried no meaningful traffic (app-limited flow); its plan is
  // discarded without a utility verdict. An abandoned probe trial restarts
  // the probing round so the vote never stalls.
  void on_mi_abandoned(uint64_t tag);

  double base_rate_mbps() const { return base_rate_; }

  enum class State { kStarting, kProbing, kMoving };
  State state() const { return state_; }
  // "starting" | "probing" | "moving" (telemetry/trace label).
  static const char* state_name(State s);

  // Scavenger-style emergency brake: multiplicative decrease outside the
  // normal decision loop (used on severe utility collapse).
  void clamp_rate(double rate_mbps);

  // Re-enters the STARTING ramp from the current rate, discarding pending
  // plans. Used when the utility function is swapped mid-flow: the new
  // objective's good operating point may be far from the old one, and the
  // exponential ramp finds it quickly in either direction (a utility drop
  // reverts immediately).
  void restart_from_current_rate();

  // Emergency yield: jump straight to `rate_mbps` and re-probe there.
  // Used by the scavenger when competition onset makes utility strongly
  // negative — gradient steps bounded by the change boundary would take
  // many MIs to vacate the link.
  void yield_to(double rate_mbps);

 private:
  enum class Role { kStarting, kProbe, kFiller, kMoving };
  struct PlanInfo {
    Role role;
    double rate;
    int probe_round = 0;
    int trial_index = 0;  // within the round
  };

  void enter_probing();
  void process_probe_round();
  void enter_moving(int direction, double gradient_hint, double base_utility);
  double clamp(double r) const;
  // Removes the plan tagged `tag` into *out; false if unknown (stale).
  bool take_plan(uint64_t tag, PlanInfo* out);

  RateControlConfig cfg_;
  Rng rng_;
  State state_ = State::kStarting;
  double base_rate_;

  uint64_t next_tag_ = 1;
  // Pending plans keyed by tag. A flat vector beats a hash map here: only
  // a handful of MIs are ever in flight per flow, nothing observes
  // iteration order, and the map cost one node allocation per planned MI —
  // a measurable slice of the churn-gate profile across thousands of
  // concurrently probing flows.
  std::vector<std::pair<uint64_t, PlanInfo>> plans_;

  // STARTING bookkeeping.
  bool start_has_prev_ = false;
  double start_prev_rate_ = 0.0;
  double start_prev_utility_ = 0.0;

  // PROBING bookkeeping.
  int probe_round_ = 0;
  struct Trial {
    bool is_high;
    double rate;
    std::optional<double> utility;
  };
  std::vector<Trial> trials_;
  int trials_issued_ = 0;

  // MOVING bookkeeping.
  int direction_ = 0;
  double amplifier_ = 1.0;
  double boundary_ = 0.05;
  bool move_has_prev_ = false;
  double move_prev_rate_ = 0.0;
  double move_prev_utility_ = 0.0;
};

}  // namespace proteus
