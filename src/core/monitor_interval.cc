#include "core/monitor_interval.h"

#include <algorithm>
#include <cmath>

#include "stats/regression.h"
#include "stats/welford.h"

namespace proteus {

namespace {
// A degenerate MI (every packet lost, a division against a zero count)
// must still yield defined metrics; a NaN here would poison the utility
// and through it every subsequent rate decision.
double finite_or_zero(double x) { return std::isfinite(x) ? x : 0.0; }
}  // namespace

MonitorInterval::MonitorInterval(uint64_t id, double target_rate_mbps,
                                 TimeNs start, TimeNs duration)
    : id_(id),
      target_rate_mbps_(target_rate_mbps),
      start_(start),
      duration_(duration) {
  // Pre-size the sample vectors for the packet count the target rate
  // implies, so the per-ACK hot path never reallocates mid-MI.
  const double expected = target_rate_mbps * 1e6 / 8.0 * to_sec(duration) /
                          static_cast<double>(kMtuBytes);
  const auto capacity =
      static_cast<size_t>(std::clamp(expected, 8.0, 65536.0));
  sample_send_time_sec_.reserve(capacity);
  sample_rtt_sec_.reserve(capacity);
}

void MonitorInterval::on_packet_sent(uint64_t seq, int64_t bytes,
                                     TimeNs /*sent_time*/) {
  if (!has_packets_) {
    first_seq_ = seq;
    has_packets_ = true;
  }
  last_seq_ = seq;
  ++sent_packets_;
  sent_bytes_ += bytes;
}

void MonitorInterval::on_ack(uint64_t /*seq*/, int64_t bytes, TimeNs sent_time,
                             TimeNs rtt, bool rtt_accepted) {
  ++resolved_packets_;
  ++acked_packets_;
  acked_bytes_ += bytes;
  if (rtt_accepted) {
    sample_send_time_sec_.push_back(to_sec(sent_time - start_));
    sample_rtt_sec_.push_back(to_sec(rtt));
  }
}

void MonitorInterval::on_loss(uint64_t /*seq*/) {
  ++resolved_packets_;
  ++lost_packets_;
}

MiMetrics MonitorInterval::compute() const {
  MiMetrics m;
  m.target_rate_mbps = target_rate_mbps_;
  m.duration = duration_;
  m.packets_sent = sent_packets_;
  m.packets_acked = acked_packets_;
  m.packets_lost = lost_packets_;
  m.rtt_samples = static_cast<int64_t>(sample_rtt_sec_.size());

  const double dur_sec = to_sec(duration_);
  if (dur_sec > 0.0) {
    m.send_rate_mbps = static_cast<double>(sent_bytes_) * 8.0 / 1e6 / dur_sec;
    m.throughput_mbps = static_cast<double>(acked_bytes_) * 8.0 / 1e6 / dur_sec;
  }
  if (sent_packets_ > 0) {
    m.loss_rate = static_cast<double>(lost_packets_) /
                  static_cast<double>(sent_packets_);
  }

  // Zero-sample MI (blackout ate every ACK, or the filter rejected all
  // RTTs): leave avg/dev/gradient at their zero defaults rather than
  // running statistics over an empty set.
  if (!sample_rtt_sec_.empty()) {
    Welford rtts;
    for (double r : sample_rtt_sec_) rtts.add(r);
    m.avg_rtt_sec = rtts.mean();
    m.rtt_dev_raw_sec = rtts.stddev();
    m.rtt_dev_sec = m.rtt_dev_raw_sec;

    const RegressionResult reg =
        linear_regression(sample_send_time_sec_, sample_rtt_sec_);
    if (reg.valid) {
      m.rtt_gradient_raw = reg.slope;
      m.rtt_gradient = reg.slope;
      m.regression_error = dur_sec > 0.0 ? reg.residual_rms / dur_sec : 0.0;
    }
  }

  m.send_rate_mbps = finite_or_zero(m.send_rate_mbps);
  m.throughput_mbps = finite_or_zero(m.throughput_mbps);
  m.loss_rate = finite_or_zero(m.loss_rate);
  m.avg_rtt_sec = finite_or_zero(m.avg_rtt_sec);
  m.rtt_gradient = finite_or_zero(m.rtt_gradient);
  m.rtt_gradient_raw = finite_or_zero(m.rtt_gradient_raw);
  m.rtt_dev_sec = finite_or_zero(m.rtt_dev_sec);
  m.rtt_dev_raw_sec = finite_or_zero(m.rtt_dev_raw_sec);
  m.regression_error = finite_or_zero(m.regression_error);

  // An MI needs a handful of delivered packets before its statistics mean
  // anything; below that the controller holds its rate.
  m.useful = sent_packets_ >= 2 && acked_packets_ >= 1;
  return m;
}

}  // namespace proteus
