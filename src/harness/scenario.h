// Scenario: one emulated network plus the flows under test. The
// C++ equivalent of a Pantheon/Emulab experiment definition.
//
// The network defaults to the historical single-bottleneck Dumbbell; a
// ScenarioConfig::topology selects one of the registered multi-bottleneck
// shapes (TopologyKind: parking-lot, fan-in, CDN-edge star) built on the
// general Topology graph. Flows added to a multi-path topology are
// assigned paths round-robin in add order: flow 0 gets path 0 (the
// long/primary path), later flows cycle through the cross/leaf paths.
#pragma once

#include <algorithm>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/utility.h"
#include "harness/factory.h"
#include "sim/dumbbell.h"
#include "sim/shard.h"
#include "transport/flow.h"

namespace proteus {

// Deterministic flow-id source. Fresh ids advance base, base+stride,
// base+2*stride, ...; release() returns an id to a free pool and
// allocate() always hands the smallest freed id back out before minting a
// fresh one. Recycling is therefore a pure function of the
// allocate/release call sequence — the golden-digest pins in the churn
// tests rely on ids (and the flow seeds derived from them) never
// depending on container iteration order or timing.
class IdAllocator {
 public:
  IdAllocator(FlowId base, FlowId stride) : next_(base), stride_(stride) {}

  FlowId allocate() {
    if (!free_.empty()) {
      std::pop_heap(free_.begin(), free_.end(), std::greater<>{});
      const FlowId id = free_.back();
      free_.pop_back();
      return id;
    }
    const FlowId id = next_;
    next_ += stride_;
    return id;
  }

  void release(FlowId id) {
    free_.push_back(id);
    std::push_heap(free_.begin(), free_.end(), std::greater<>{});
  }

  // The next fresh id that would be minted: an exclusive upper bound on
  // every id ever handed out (recycled or not).
  FlowId high_water() const { return next_; }
  size_t free_count() const { return free_.size(); }

 private:
  FlowId next_;
  FlowId stride_;
  std::vector<FlowId> free_;  // min-heap via std::greater
};

// How a scenario's topology partitions for sharded execution
// (sim/shard.h). Derived from the topology alone — never from the
// requested thread count — so the event streams are identical for every
// --shards value.
struct PartitionPlan {
  int parts = 1;
  TimeNs window = 0;  // conservative barrier window; 0 when parts == 1
  std::string reason;
};

struct ScenarioConfig {
  double bandwidth_mbps = 50.0;
  double rtt_ms = 30.0;
  int64_t buffer_bytes = 375'000;
  double random_loss = 0.0;
  uint64_t seed = 1;
  // Event-engine selection (sim/event_queue.h). Both engines produce
  // bit-identical runs; kBinaryHeap is kept as the reference for the
  // cross-engine golden suite and for perf comparisons.
  EventEngine engine = EventEngine::kTimerWheel;

  // Network shape (sim/topology.h). kDumbbell reproduces the historical
  // single-bottleneck scenario bit-for-bit; the other kinds build
  // multi-bottleneck graphs with bandwidth_mbps/rtt_ms as the core
  // budget. Faults, wifi noise, and the markov rate process attach to
  // the primary link (link 0) in every shape.
  TopologyParams topology;

  // Wireless-path impairments (paper's live-WiFi substitution).
  bool wifi_noise = false;
  WifiNoise::Config wifi;
  bool markov_rate = false;
  MarkovRateProcess::Config markov;
  bool ack_aggregation = false;
  AckAggregatorConfig ack_agg;

  // Sharded execution (sim/shard.h): worker-thread count for the
  // window-barrier engine. This never changes WHAT is simulated —
  // partitioning is a property of the topology alone (kCdnEdge builds
  // arms+1 parts; every other kind is single-part), so trace/telemetry
  // digests are byte-identical for every value. 0 = one thread.
  int shards = 0;
  // Expected peak concurrent-flow count. Pre-sizes the dense flow-demux
  // tables (Topology::reserve_flows) so a churn ramp never pays
  // mid-window relocations. 0 = grow on demand.
  FlowId planned_flows = 0;

  // Scripted adversarial events (sim/fault_timeline.h); empty = none.
  std::vector<FaultSpec> faults;
  // Let noisy/fault-delayed packets invert delivery order (Link FIFO
  // clamp off). Fault-injected reordering works either way.
  bool allow_reordering = false;

  // Sender burstiness (see Sender::set_max_burst_packets) and Proteus
  // tuning applied to every flow added by name.
  int max_burst_packets = 1;
  double pacing_jitter = 0.4;
  ProtocolTuning tuning;

  double bdp_bytes() const {
    return bandwidth_mbps * 1e6 / 8.0 * rtt_ms / 1e3;
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);
  ~Scenario();

  // The driving clock: part 0's simulator for kCdnEdge, the single
  // simulator otherwise. Scheduling ad-hoc work here is safe — part 0 is
  // always executed by worker thread 0.
  Simulator& sim();
  // The dumbbell instance; only valid for TopologyKind::kDumbbell (the
  // default). Shape-agnostic code should use topology()/bottleneck().
  Dumbbell& dumbbell() { return *dumbbell_; }
  const Dumbbell& dumbbell() const { return *dumbbell_; }
  // The underlying graph, whatever the configured kind. For kCdnEdge
  // (one graph per arm) this is arm 0's graph; use link_stats() for the
  // whole fabric and bottleneck() for the shared core.
  Topology& topology();
  const Topology& topology() const;
  // The primary link: the dumbbell bottleneck, the first parking-lot
  // hop, the fan-in core, the star core, the shared CDN-edge core.
  Link& bottleneck();
  const Link& bottleneck() const {
    return const_cast<Scenario*>(this)->bottleneck();
  }
  Network& network() { return *network_; }
  const ScenarioConfig& config() const { return cfg_; }

  // ---- Sharded execution (sim/shard.h) --------------------------------
  // kCdnEdge partitions into arms+1 parts (part 0 = shared core, part
  // 1+a = arm a's leaf subgraph); every other kind is a single part.
  PartitionPlan partition_plan() const;
  // Total events executed across all parts.
  uint64_t events_processed() const;
  // Window-barrier loop counters (windows executed / fast-forwarded);
  // zeros for single-part topologies. See ShardSet::WindowStats.
  ShardSet::WindowStats shard_window_stats() const;
  // Per-link counters for the whole fabric: the shared core plus every
  // arm link for kCdnEdge, topology().link_stats() otherwise.
  std::vector<std::pair<std::string, LinkStats>> link_stats() const;
  // kCdnEdge: number of arm parts; 0 for single-part topologies.
  int arm_count() const;
  // The simulator/network a flow homed on `arm` lives on. For
  // single-part topologies both ignore `arm` and return the scenario's
  // own. Only the thread executing that arm's part may touch them while
  // a sharded run_until is in flight.
  Simulator& arm_sim(int arm);
  Network& arm_network(int arm);
  // The arm's underlying graph (demux tables, per-hop links). For
  // single-part topologies this is topology() regardless of `arm`.
  Topology& arm_topology(int arm);

  // Adds a bulk flow of the named protocol. Flows get sequential ids and
  // per-flow seeds derived from the scenario seed, and (on multi-path
  // topologies) paths round-robin in add order.
  Flow& add_flow(const std::string& protocol, TimeNs start,
                 TimeNs stop = kTimeInfinite);
  Flow& add_flow_with_cc(std::unique_ptr<CongestionController> cc,
                         TimeNs start, TimeNs stop = kTimeInfinite);

  const std::vector<std::unique_ptr<Flow>>& flows() const { return flows_; }

  // Advances the scenario to simulated time `t`. Single-part topologies
  // run the plain serial event loop; kCdnEdge runs the window-barrier
  // engine on max(1, config().shards) worker threads.
  void run_until(TimeNs t);

  double capacity_mbps() const { return cfg_.bandwidth_mbps; }
  TimeNs base_rtt() const { return from_ms(cfg_.rtt_ms); }
  // The single flow-id source: every path into flow creation draws from
  // here exactly once, so ids and flow_seed(id) derivations can never
  // desynchronize however add_flow/add_flow_with_cc/allocate_flow_id
  // calls are mixed. kCdnEdge homes ids per arm (arm a mints 1+a,
  // 1+a+arms, ...), so an id alone determines its arm — routing off the
  // shared core needs no cross-part table.
  FlowId allocate_flow_id();
  FlowId allocate_flow_id_on(int arm);
  // Returns a finished flow's id for deterministic recycling (see
  // IdAllocator). Call only after the flow is detached.
  void release_flow_id(FlowId id);
  uint64_t flow_seed(FlowId id) const {
    return cfg_.seed * 0x9e3779b9ULL + id;
  }

  // Builds a flow owned by the caller (churn drivers): the flow lives on
  // `arm`'s simulator/network for kCdnEdge (must match fc.id's arm), the
  // scenario's own otherwise. fc.id must come from allocate_flow_id[_on].
  std::unique_ptr<Flow> create_flow(int arm, const std::string& protocol,
                                    FlowConfig fc);

  // Re-arms a retired flow as flow fc.id, byte-identical to
  // create_flow(arm, <same protocol>, fc) — same flow_seed(fc.id) CC
  // derivation, same pacing knobs. The caller guarantees `flow` came from
  // create_flow on the same arm with the same protocol. Returns false
  // (flow left retired) when the protocol can't reset in place; destroy
  // the flow and call create_flow instead.
  bool recycle_flow(Flow& flow, FlowConfig fc);

 private:
  struct CdnState;  // sharded CDN-edge fabric (scenario.cc)

  // Builds and registers the flow for an id already drawn from
  // allocate_flow_id(); never mints ids itself.
  Flow& attach_flow(FlowId id, std::unique_ptr<CongestionController> cc,
                    TimeNs start, TimeNs stop);
  void build_cdn();

  ScenarioConfig cfg_;
  Simulator sim_;
  std::unique_ptr<Dumbbell> dumbbell_;  // kDumbbell only
  std::unique_ptr<Topology> topo_;      // other single-part kinds
  std::unique_ptr<CdnState> cdn_;       // kCdnEdge only
  Network* network_ = nullptr;          // single-part fabric in use
  // Declared after the fabrics: flows detach from them in ~Scenario.
  std::vector<std::unique_ptr<Flow>> flows_;
  IdAllocator ids_{1, 1};   // single-part id source (cdn: per-arm, in cdn_)
  int flows_attached_ = 0;  // round-robin path/arm assignment cursor
};

}  // namespace proteus
