// Scenario: one emulated bottleneck plus the flows under test. The
// C++ equivalent of a Pantheon/Emulab experiment definition.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/utility.h"
#include "harness/factory.h"
#include "sim/dumbbell.h"
#include "transport/flow.h"

namespace proteus {

struct ScenarioConfig {
  double bandwidth_mbps = 50.0;
  double rtt_ms = 30.0;
  int64_t buffer_bytes = 375'000;
  double random_loss = 0.0;
  uint64_t seed = 1;
  // Event-engine selection (sim/event_queue.h). Both engines produce
  // bit-identical runs; kBinaryHeap is kept as the reference for the
  // cross-engine golden suite and for perf comparisons.
  EventEngine engine = EventEngine::kTimerWheel;

  // Wireless-path impairments (paper's live-WiFi substitution).
  bool wifi_noise = false;
  WifiNoise::Config wifi;
  bool markov_rate = false;
  MarkovRateProcess::Config markov;
  bool ack_aggregation = false;
  AckAggregatorConfig ack_agg;

  // Scripted adversarial events (sim/fault_timeline.h); empty = none.
  std::vector<FaultSpec> faults;
  // Let noisy/fault-delayed packets invert delivery order (Link FIFO
  // clamp off). Fault-injected reordering works either way.
  bool allow_reordering = false;

  // Sender burstiness (see Sender::set_max_burst_packets) and Proteus
  // tuning applied to every flow added by name.
  int max_burst_packets = 1;
  double pacing_jitter = 0.4;
  ProtocolTuning tuning;

  double bdp_bytes() const {
    return bandwidth_mbps * 1e6 / 8.0 * rtt_ms / 1e3;
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);

  Simulator& sim() { return sim_; }
  Dumbbell& dumbbell() { return *dumbbell_; }
  const Dumbbell& dumbbell() const { return *dumbbell_; }
  const ScenarioConfig& config() const { return cfg_; }

  // Adds a bulk flow of the named protocol. Flows get sequential ids and
  // per-flow seeds derived from the scenario seed.
  Flow& add_flow(const std::string& protocol, TimeNs start,
                 TimeNs stop = kTimeInfinite);
  Flow& add_flow_with_cc(std::unique_ptr<CongestionController> cc,
                         TimeNs start, TimeNs stop = kTimeInfinite);

  const std::vector<std::unique_ptr<Flow>>& flows() const { return flows_; }

  void run_until(TimeNs t) { sim_.run_until(t); }

  double capacity_mbps() const { return cfg_.bandwidth_mbps; }
  TimeNs base_rtt() const { return from_ms(cfg_.rtt_ms); }
  FlowId allocate_flow_id() { return next_id_++; }
  uint64_t flow_seed(FlowId id) const {
    return cfg_.seed * 0x9e3779b9ULL + id;
  }

 private:
  ScenarioConfig cfg_;
  Simulator sim_;
  std::unique_ptr<Dumbbell> dumbbell_;
  std::vector<std::unique_ptr<Flow>> flows_;
  FlowId next_id_ = 1;
};

}  // namespace proteus
