// Scenario: one emulated network plus the flows under test. The
// C++ equivalent of a Pantheon/Emulab experiment definition.
//
// The network defaults to the historical single-bottleneck Dumbbell; a
// ScenarioConfig::topology selects one of the registered multi-bottleneck
// shapes (TopologyKind: parking-lot, fan-in, CDN-edge star) built on the
// general Topology graph. Flows added to a multi-path topology are
// assigned paths round-robin in add order: flow 0 gets path 0 (the
// long/primary path), later flows cycle through the cross/leaf paths.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/utility.h"
#include "harness/factory.h"
#include "sim/dumbbell.h"
#include "transport/flow.h"

namespace proteus {

struct ScenarioConfig {
  double bandwidth_mbps = 50.0;
  double rtt_ms = 30.0;
  int64_t buffer_bytes = 375'000;
  double random_loss = 0.0;
  uint64_t seed = 1;
  // Event-engine selection (sim/event_queue.h). Both engines produce
  // bit-identical runs; kBinaryHeap is kept as the reference for the
  // cross-engine golden suite and for perf comparisons.
  EventEngine engine = EventEngine::kTimerWheel;

  // Network shape (sim/topology.h). kDumbbell reproduces the historical
  // single-bottleneck scenario bit-for-bit; the other kinds build
  // multi-bottleneck graphs with bandwidth_mbps/rtt_ms as the core
  // budget. Faults, wifi noise, and the markov rate process attach to
  // the primary link (link 0) in every shape.
  TopologyParams topology;

  // Wireless-path impairments (paper's live-WiFi substitution).
  bool wifi_noise = false;
  WifiNoise::Config wifi;
  bool markov_rate = false;
  MarkovRateProcess::Config markov;
  bool ack_aggregation = false;
  AckAggregatorConfig ack_agg;

  // Scripted adversarial events (sim/fault_timeline.h); empty = none.
  std::vector<FaultSpec> faults;
  // Let noisy/fault-delayed packets invert delivery order (Link FIFO
  // clamp off). Fault-injected reordering works either way.
  bool allow_reordering = false;

  // Sender burstiness (see Sender::set_max_burst_packets) and Proteus
  // tuning applied to every flow added by name.
  int max_burst_packets = 1;
  double pacing_jitter = 0.4;
  ProtocolTuning tuning;

  double bdp_bytes() const {
    return bandwidth_mbps * 1e6 / 8.0 * rtt_ms / 1e3;
  }
};

class Scenario {
 public:
  explicit Scenario(ScenarioConfig cfg);

  Simulator& sim() { return sim_; }
  // The dumbbell instance; only valid for TopologyKind::kDumbbell (the
  // default). Shape-agnostic code should use topology()/bottleneck().
  Dumbbell& dumbbell() { return *dumbbell_; }
  const Dumbbell& dumbbell() const { return *dumbbell_; }
  // The underlying graph, whatever the configured kind.
  Topology& topology() {
    return dumbbell_ != nullptr ? dumbbell_->topology() : *topo_;
  }
  const Topology& topology() const {
    return dumbbell_ != nullptr ? dumbbell_->topology() : *topo_;
  }
  // The primary link (link 0): the dumbbell bottleneck, the first
  // parking-lot hop, the fan-in core, the star core.
  Link& bottleneck() { return topology().link(0); }
  const Link& bottleneck() const { return topology().link(0); }
  Network& network() { return *network_; }
  const ScenarioConfig& config() const { return cfg_; }

  // Adds a bulk flow of the named protocol. Flows get sequential ids and
  // per-flow seeds derived from the scenario seed, and (on multi-path
  // topologies) paths round-robin in add order.
  Flow& add_flow(const std::string& protocol, TimeNs start,
                 TimeNs stop = kTimeInfinite);
  Flow& add_flow_with_cc(std::unique_ptr<CongestionController> cc,
                         TimeNs start, TimeNs stop = kTimeInfinite);

  const std::vector<std::unique_ptr<Flow>>& flows() const { return flows_; }

  void run_until(TimeNs t) { sim_.run_until(t); }

  double capacity_mbps() const { return cfg_.bandwidth_mbps; }
  TimeNs base_rtt() const { return from_ms(cfg_.rtt_ms); }
  // The single flow-id source: every path into flow creation draws from
  // here exactly once, so ids and flow_seed(id) derivations can never
  // desynchronize however add_flow/add_flow_with_cc/allocate_flow_id
  // calls are mixed.
  FlowId allocate_flow_id() { return next_id_++; }
  uint64_t flow_seed(FlowId id) const {
    return cfg_.seed * 0x9e3779b9ULL + id;
  }

 private:
  // Builds and registers the flow for an id already drawn from
  // allocate_flow_id(); never touches next_id_ itself.
  Flow& attach_flow(FlowId id, std::unique_ptr<CongestionController> cc,
                    TimeNs start, TimeNs stop);

  ScenarioConfig cfg_;
  Simulator sim_;
  std::unique_ptr<Dumbbell> dumbbell_;  // kDumbbell only
  std::unique_ptr<Topology> topo_;      // every other kind
  Network* network_ = nullptr;          // whichever of the two is live
  std::vector<std::unique_ptr<Flow>> flows_;
  FlowId next_id_ = 1;
  int flows_attached_ = 0;  // round-robin path assignment cursor
};

}  // namespace proteus
