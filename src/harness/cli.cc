#include "harness/cli.h"

#include <charconv>
#include <stdexcept>

#include "harness/factory.h"
#include "harness/fault_spec.h"

namespace proteus {

namespace {

bool parse_double(const std::string& s, double& out) {
  try {
    size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_int64(const std::string& s, int64_t& out) {
  const char* begin = s.data();
  const char* end = begin + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, out);
  return ec == std::errc() && ptr == end;
}

bool parse_flows(const std::string& spec, std::vector<CliFlowSpec>& out,
                 std::string& error) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;

    CliFlowSpec flow;
    const size_t at = item.find('@');
    flow.protocol = item.substr(0, at);
    if (at != std::string::npos) {
      if (!parse_double(item.substr(at + 1), flow.start_sec) ||
          flow.start_sec < 0) {
        error = "bad start time in flow spec: " + item;
        return false;
      }
    }
    // Validate the protocol name eagerly for a friendly error.
    try {
      make_protocol(flow.protocol, 1);
    } catch (const std::invalid_argument&) {
      error = "unknown protocol: " + flow.protocol;
      return false;
    }
    out.push_back(flow);
  }
  if (out.empty()) {
    error = "no flows given";
    return false;
  }
  return true;
}

}  // namespace

bool parse_supervisor_flag(const std::string& arg, SupervisorConfig& cfg,
                           std::string& error) {
  const size_t eq = arg.find('=');
  const std::string key = arg.substr(0, eq);
  const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);

  if (key == "--retries") {
    int64_t n = 0;
    if (value.empty() || !parse_int64(value, n) || n < 0 || n > 100) {
      error = "bad --retries: " + value;
      return false;
    }
    cfg.retries = static_cast<int>(n);
    return true;
  }
  if (key == "--run-timeout" || key == "--sim-timeout") {
    double sec = 0.0;
    if (value.empty() || !parse_double(value, sec) || sec < 0) {
      error = "bad " + key + ": " + value;
      return false;
    }
    (key == "--run-timeout" ? cfg.run_timeout_sec : cfg.sim_timeout_sec) = sec;
    return true;
  }
  if (key == "--checkpoint" || key == "--resume") {
    if (value.empty()) {
      error = key + " needs a journal path";
      return false;
    }
    cfg.checkpoint_path = value;
    cfg.resume = key == "--resume";
    return true;
  }
  if (key == "--bundle-dir") {
    if (value.empty()) {
      error = "--bundle-dir needs a directory";
      return false;
    }
    cfg.bundle_dir = value;
    return true;
  }
  return false;  // not a supervisor flag; error stays empty
}

bool parse_telemetry_flag(const std::string& arg, TelemetryConfig& cfg,
                          std::string& error) {
  const size_t eq = arg.find('=');
  const std::string key = arg.substr(0, eq);
  const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);

  if (key == "--telemetry") {
    if (value.empty()) {
      error = "--telemetry needs a directory";
      return false;
    }
    cfg.dir = value;
    return true;
  }
  if (key == "--telemetry-every") {
    int64_t n = 0;
    if (value.empty() || !parse_int64(value, n) || n < 1 || n > 1'000'000) {
      error = "bad --telemetry-every: " + value;
      return false;
    }
    cfg.every = static_cast<int>(n);
    return true;
  }
  return false;  // not a telemetry flag; error stays empty
}

bool parse_topology_flag(const std::string& arg, TopologyParams& params,
                         std::string& error) {
  constexpr const char kPrefix[] = "--topology=";
  if (arg.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const std::string spec = arg.substr(sizeof(kPrefix) - 1);

  // Leading token is the kind; optional :key=value options follow.
  size_t pos = spec.find(':');
  const std::string kind = spec.substr(0, pos);
  if (kind == "dumbbell") {
    params.kind = TopologyKind::kDumbbell;
  } else if (kind == "parkinglot") {
    params.kind = TopologyKind::kParkingLot;
  } else if (kind == "fanin") {
    params.kind = TopologyKind::kFanIn;
  } else if (kind == "star") {
    params.kind = TopologyKind::kStar;
  } else if (kind == "cdn") {
    params.kind = TopologyKind::kCdnEdge;
  } else {
    error =
        "bad --topology kind (want dumbbell|parkinglot|fanin|star|cdn): " +
        kind;
    return false;
  }

  while (pos != std::string::npos) {
    const size_t start = pos + 1;
    pos = spec.find(':', start);
    const std::string item = spec.substr(
        start, pos == std::string::npos ? std::string::npos : pos - start);
    const size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : item.substr(eq + 1);
    if (key == "arms") {
      int64_t n = 0;
      if (value.empty() || !parse_int64(value, n) || n < 2 || n > 64) {
        error = "bad --topology arms (want 2..64): " + value;
        return false;
      }
      params.arms = static_cast<int>(n);
    } else if (key == "edge-bw") {
      double mbps = 0.0;
      if (value.empty() || !parse_double(value, mbps) || mbps <= 0) {
        error = "bad --topology edge-bw: " + value;
        return false;
      }
      params.edge_bandwidth_mbps = mbps;
    } else if (key == "spread") {
      double s = 0.0;
      if (value.empty() || !parse_double(value, s) || s < 0) {
        error = "bad --topology spread: " + value;
        return false;
      }
      params.rtt_spread = s;
    } else {
      error = "bad --topology option (want arms=|edge-bw=|spread=): " + item;
      return false;
    }
  }
  return true;
}

bool parse_shards_flag(const std::string& arg, int& shards,
                       std::string& error) {
  constexpr const char kPrefix[] = "--shards";
  if (arg.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const size_t eq = arg.find('=');
  if (arg.substr(0, eq) != kPrefix) return false;  // e.g. --shardsfoo
  const std::string value = eq == std::string::npos ? "" : arg.substr(eq + 1);
  int64_t n = 0;
  if (value.empty() || !parse_int64(value, n) || n < 1 || n > 256) {
    error = "bad --shards (want 1..256): " + value;
    return false;
  }
  shards = static_cast<int>(n);
  return true;
}

bool parse_churn_flag(const std::string& arg,
                      std::optional<ChurnConfig>& churn, std::string& error) {
  constexpr const char kPrefix[] = "--churn=";
  if (arg.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const std::string spec = arg.substr(sizeof(kPrefix) - 1);

  ChurnConfig cfg;
  bool have_rate = false;
  size_t pos = 0;
  while (pos != std::string::npos && pos < spec.size()) {
    size_t next = spec.find(',', pos);
    const std::string item = spec.substr(
        pos, next == std::string::npos ? std::string::npos : next - pos);
    pos = next == std::string::npos ? next : next + 1;
    const size_t eq = item.find('=');
    const std::string key = item.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : item.substr(eq + 1);
    if (key == "rate") {
      if (value.empty() || !parse_double(value, cfg.arrivals_per_sec) ||
          cfg.arrivals_per_sec <= 0) {
        error = "bad --churn rate: " + value;
        return false;
      }
      have_rate = true;
    } else if (key == "size") {
      if (value.empty() || !parse_double(value, cfg.mean_size_kb) ||
          cfg.mean_size_kb <= 0) {
        error = "bad --churn size (mean KB): " + value;
        return false;
      }
    } else if (key == "max") {
      if (value.empty() || !parse_int64(value, cfg.max_concurrent) ||
          cfg.max_concurrent < 1) {
        error = "bad --churn max: " + value;
        return false;
      }
    } else if (key == "mix") {
      // w:v:b:s weights (web, video, bulk, scavenger).
      double w[4];
      size_t p = 0;
      bool ok = true;
      for (int i = 0; i < 4 && ok; ++i) {
        const size_t colon = value.find(':', p);
        const bool last = i == 3;
        if ((colon == std::string::npos) != last) {
          ok = false;
          break;
        }
        const std::string tok = value.substr(
            p, colon == std::string::npos ? std::string::npos : colon - p);
        ok = parse_double(tok, w[i]) && w[i] >= 0;
        p = colon + 1;
      }
      if (!ok || w[0] + w[1] + w[2] + w[3] <= 0) {
        error = "bad --churn mix (want w:v:b:s weights): " + value;
        return false;
      }
      cfg.mix_web = w[0];
      cfg.mix_video = w[1];
      cfg.mix_bulk = w[2];
      cfg.mix_scavenger = w[3];
    } else {
      error = "bad --churn option (want rate=|size=|max=|mix=): " + item;
      return false;
    }
  }
  if (!have_rate) {
    error = "--churn needs rate=<arrivals per second>";
    return false;
  }
  churn = cfg;
  return true;
}

bool parse_jobs_flag(const std::string& arg, int& jobs, std::string& error) {
  constexpr const char kPrefix[] = "--jobs";
  if (arg.compare(0, sizeof(kPrefix) - 1, kPrefix) != 0) return false;
  const size_t eq = arg.find('=');
  if (arg.substr(0, eq) != kPrefix) return false;  // e.g. --jobsfoo
  const std::string value =
      eq == std::string::npos ? "" : arg.substr(eq + 1);
  int64_t n = 0;
  if (value.empty() || !parse_int64(value, n) || n <= 0 || n > 4096) {
    error = "bad --jobs: " + value;
    return false;
  }
  jobs = static_cast<int>(n);
  return true;
}

std::string cli_usage() {
  return "usage: proteus_sim [--bw=Mbps] [--rtt=ms] [--buffer=bytes] "
         "[--loss=frac] [--duration=sec] [--warmup=sec] [--seed=n] "
         "[--jobs=n] [--wifi] [--trace=file.csv] [--rtt-trace=file.csv] "
         "[--link-stats=file.csv] [--faults=spec] "
         "[--topology=kind[:arms=n][:edge-bw=Mbps][:spread=x]] [--shards=n] "
         "[--churn=rate=r[,size=kb][,max=n][,mix=w:v:b:s]] [--retries=n] "
         "[--run-timeout=sec] [--sim-timeout=sec] [--checkpoint=journal] "
         "[--resume=journal] [--bundle-dir=dir] [--telemetry=dir] "
         "[--telemetry-every=n] [--profile] [--engine=wheel|heap] "
         "--flows=proto[@start][,proto[@start]...]";
}

CliParseResult parse_cli(const std::vector<std::string>& args) {
  CliParseResult r;
  CliOptions& opt = r.options;
  bool have_flows = false;

  for (const std::string& arg : args) {
    const size_t eq = arg.find('=');
    const std::string key = arg.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? "" : arg.substr(eq + 1);

    auto need_value = [&](const char* what) {
      if (value.empty()) {
        r.error = std::string(what) + " needs a value";
        return false;
      }
      return true;
    };

    if (key == "--bw") {
      if (!need_value("--bw") ||
          !parse_double(value, opt.scenario.bandwidth_mbps) ||
          opt.scenario.bandwidth_mbps <= 0) {
        if (r.error.empty()) r.error = "bad --bw: " + value;
        return r;
      }
    } else if (key == "--rtt") {
      if (!need_value("--rtt") ||
          !parse_double(value, opt.scenario.rtt_ms) ||
          opt.scenario.rtt_ms <= 0) {
        if (r.error.empty()) r.error = "bad --rtt: " + value;
        return r;
      }
    } else if (key == "--buffer") {
      if (!need_value("--buffer") ||
          !parse_int64(value, opt.scenario.buffer_bytes) ||
          opt.scenario.buffer_bytes <= 0) {
        if (r.error.empty()) r.error = "bad --buffer: " + value;
        return r;
      }
    } else if (key == "--loss") {
      if (!need_value("--loss") ||
          !parse_double(value, opt.scenario.random_loss) ||
          opt.scenario.random_loss < 0 || opt.scenario.random_loss >= 1) {
        if (r.error.empty()) r.error = "bad --loss: " + value;
        return r;
      }
    } else if (key == "--duration") {
      if (!need_value("--duration") ||
          !parse_double(value, opt.duration_sec) || opt.duration_sec <= 0) {
        if (r.error.empty()) r.error = "bad --duration: " + value;
        return r;
      }
    } else if (key == "--warmup") {
      if (!need_value("--warmup") || !parse_double(value, opt.warmup_sec) ||
          opt.warmup_sec < 0) {
        if (r.error.empty()) r.error = "bad --warmup: " + value;
        return r;
      }
    } else if (key == "--seed") {
      int64_t seed = 0;
      if (!need_value("--seed") || !parse_int64(value, seed) || seed < 0) {
        if (r.error.empty()) r.error = "bad --seed: " + value;
        return r;
      }
      opt.scenario.seed = static_cast<uint64_t>(seed);
    } else if (key == "--flows") {
      if (!need_value("--flows") ||
          !parse_flows(value, opt.flows, r.error)) {
        if (r.error.empty()) r.error = "bad --flows: " + value;
        return r;
      }
      have_flows = true;
    } else if (key == "--jobs") {
      if (!parse_jobs_flag(arg, opt.jobs, r.error)) {
        if (r.error.empty()) r.error = "bad --jobs: " + value;
        return r;
      }
    } else if (key == "--retries" || key == "--run-timeout" ||
               key == "--sim-timeout" || key == "--checkpoint" ||
               key == "--resume" || key == "--bundle-dir") {
      if (!parse_supervisor_flag(arg, opt.supervisor, r.error)) {
        if (r.error.empty()) r.error = "bad " + key + ": " + value;
        return r;
      }
    } else if (key == "--telemetry" || key == "--telemetry-every") {
      if (!parse_telemetry_flag(arg, opt.supervisor.telemetry, r.error)) {
        if (r.error.empty()) r.error = "bad " + key + ": " + value;
        return r;
      }
    } else if (key == "--engine") {
      if (!need_value("--engine")) return r;
      if (value == "wheel") {
        opt.scenario.engine = EventEngine::kTimerWheel;
      } else if (value == "heap") {
        opt.scenario.engine = EventEngine::kBinaryHeap;
      } else {
        r.error = "bad --engine (want wheel|heap): " + value;
        return r;
      }
    } else if (key == "--profile") {
      opt.profile = true;
    } else if (key == "--wifi") {
      opt.wifi = true;
    } else if (key == "--trace") {
      if (!need_value("--trace")) return r;
      opt.trace_path = value;
    } else if (key == "--rtt-trace") {
      if (!need_value("--rtt-trace")) return r;
      opt.rtt_trace_path = value;
    } else if (key == "--link-stats") {
      if (!need_value("--link-stats")) return r;
      opt.link_stats_path = value;
    } else if (key == "--topology") {
      if (!parse_topology_flag(arg, opt.scenario.topology, r.error)) {
        if (r.error.empty()) r.error = "bad --topology: " + value;
        return r;
      }
    } else if (key == "--shards") {
      if (!parse_shards_flag(arg, opt.scenario.shards, r.error)) {
        if (r.error.empty()) r.error = "bad --shards: " + value;
        return r;
      }
    } else if (key == "--churn") {
      if (!parse_churn_flag(arg, opt.churn, r.error)) {
        if (r.error.empty()) r.error = "bad --churn: " + value;
        return r;
      }
    } else if (key == "--faults") {
      if (!need_value("--faults")) return r;
      FaultParseResult faults = parse_faults(value);
      if (!faults.ok) {
        r.error = faults.error + " (" + fault_spec_usage() + ")";
        return r;
      }
      opt.scenario.faults = faults.faults;
    } else {
      r.error = "unknown flag: " + key;
      return r;
    }
  }

  if (!have_flows && !opt.churn.has_value()) {
    r.error = "missing --flows (or --churn)";
    return r;
  }
  if (opt.warmup_sec >= opt.duration_sec) {
    r.error = "--warmup must be below --duration";
    return r;
  }
  if (opt.wifi) {
    opt.scenario.wifi_noise = true;
    opt.scenario.ack_aggregation = true;
    opt.scenario.markov_rate = true;
  }
  opt.supervisor.jobs = opt.jobs;
  r.ok = true;
  return r;
}

}  // namespace proteus
