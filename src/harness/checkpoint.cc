#include "harness/checkpoint.h"

#include <cstdlib>
#include <cstring>

#include "rt/io_retry.h"

namespace proteus {

namespace {

// Minimal JSON string escaping for the fields we write (error messages can
// contain quotes/newlines from exception text).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Extracts the value of `"key":"..."` starting after the colon. Returns
// false on any malformation (treated as a truncated line by the caller).
bool find_string_field(const std::string& line, const char* key,
                       std::string& out) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  out.clear();
  size_t i = start + needle.size();
  while (i < line.size()) {
    const char c = line[i];
    if (c == '"') return true;
    if (c == '\\') {
      if (i + 1 >= line.size()) return false;
      const char e = line[i + 1];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 5 >= line.size()) return false;
          const long v = std::strtol(line.substr(i + 2, 4).c_str(), nullptr, 16);
          out += static_cast<char>(v);
          i += 4;
          break;
        }
        default: return false;
      }
      i += 2;
    } else {
      out += c;
      ++i;
    }
  }
  return false;  // ran off the end: truncated line
}

bool find_int_field(const std::string& line, const char* key, int64_t& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const size_t start = line.find(needle);
  if (start == std::string::npos) return false;
  const char* begin = line.c_str() + start + needle.size();
  char* end = nullptr;
  out = std::strtoll(begin, &end, 10);
  return end != begin;
}

bool parse_entry_line(const std::string& line, CheckpointEntry& e) {
  int64_t attempts = 0;
  if (!find_int_field(line, "point", e.point) ||
      !find_string_field(line, "status", e.status) ||
      !find_int_field(line, "attempts", attempts) ||
      !find_string_field(line, "payload", e.payload) ||
      !find_string_field(line, "error", e.error)) {
    return false;
  }
  e.attempts = static_cast<int>(attempts);
  return e.point >= 0 && !e.status.empty();
}

}  // namespace

bool CheckpointJournal::open(const std::string& path,
                             const CheckpointHeader& header,
                             bool keep_existing) {
  close();
  // A journal left by kill -9 can end in a torn line with no newline;
  // appending straight after it would corrupt the next entry too.
  bool needs_newline = false;
  if (keep_existing) {
    if (std::FILE* rf = std::fopen(path.c_str(), "rb")) {
      if (std::fseek(rf, -1, SEEK_END) == 0) {
        const int last = std::fgetc(rf);
        needs_newline = last != EOF && last != '\n';
      }
      std::fclose(rf);
    }
  }
  const std::lock_guard<std::mutex> lock(mu_);
  f_ = std::fopen(path.c_str(), keep_existing ? "ab" : "wb");
  if (!f_) return false;
  healthy_ = true;
  std::string prefix;
  if (needs_newline) prefix = "\n";
  // Header only when starting a fresh journal (empty file). Checked: a
  // journal whose header never reached the disk is unresumable, so a
  // full disk must fail open() rather than produce a silently-empty file.
  if (std::ftell(f_) == 0) {
    prefix += "{\"sweep\":\"" + json_escape(header.sweep) +
              "\",\"points\":" + std::to_string(header.points) + "}\n";
  }
  if (!prefix.empty() && !checked_fwrite(f_, prefix.data(), prefix.size())) {
    std::fclose(f_);
    f_ = nullptr;
    return false;
  }
  return true;
}

void CheckpointJournal::append(const CheckpointEntry& entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!f_) return;
  std::string line = "{\"point\":" + std::to_string(entry.point) +
                     ",\"status\":\"" + json_escape(entry.status) +
                     "\",\"attempts\":" + std::to_string(entry.attempts) +
                     ",\"payload\":\"" + json_escape(entry.payload) +
                     "\",\"error\":\"" + json_escape(entry.error) + "\"}\n";
  if (!checked_fwrite(f_, line.data(), line.size())) healthy_ = false;
}

void CheckpointJournal::flush() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (f_ && std::fflush(f_) != 0) healthy_ = false;
}

bool CheckpointJournal::healthy() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return healthy_;
}

void CheckpointJournal::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (f_) {
    if (std::fflush(f_) != 0) healthy_ = false;
    if (std::fclose(f_) != 0) healthy_ = false;
    f_ = nullptr;
  }
}

CheckpointLoadResult load_checkpoint(const std::string& path) {
  CheckpointLoadResult r;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return r;

  std::string line;
  bool first = true;
  char buf[4096];
  std::string pending;
  while (std::fgets(buf, sizeof buf, f)) {
    pending += buf;
    if (pending.empty() || pending.back() != '\n') continue;  // long line
    line.swap(pending);
    pending.clear();
    if (first) {
      first = false;
      int64_t points = 0;
      if (find_string_field(line, "sweep", r.header.sweep) &&
          find_int_field(line, "points", points)) {
        r.header.points = points;
        r.found = true;
        continue;
      }
      break;  // not a journal; ignore the file entirely
    }
    CheckpointEntry e;
    if (parse_entry_line(line, e)) r.entries.push_back(std::move(e));
    // else: truncated/garbled line (crash mid-write) — skip it.
  }
  std::fclose(f);
  return r;
}

std::string encode_doubles(const std::vector<double>& values) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out += ' ';
    std::snprintf(buf, sizeof buf, "%a", values[i]);
    out += buf;
  }
  return out;
}

std::vector<double> decode_doubles(const std::string& payload) {
  std::vector<double> out;
  const char* p = payload.c_str();
  while (*p) {
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) break;
    out.push_back(v);
    p = end;
    while (*p == ' ') ++p;
  }
  return out;
}

}  // namespace proteus
