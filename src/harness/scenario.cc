#include "harness/scenario.h"

#include <utility>

namespace proteus {

Scenario::Scenario(ScenarioConfig cfg) : cfg_(cfg), sim_(cfg.seed, cfg.engine) {
  DumbbellConfig dc;
  dc.bottleneck.rate = Bandwidth::from_mbps(cfg_.bandwidth_mbps);
  dc.bottleneck.prop_delay = from_ms(cfg_.rtt_ms / 2.0);
  dc.bottleneck.buffer_bytes = cfg_.buffer_bytes;
  dc.bottleneck.random_loss = cfg_.random_loss;
  dc.bottleneck.allow_reordering = cfg_.allow_reordering;
  dc.reverse_delay = from_ms(cfg_.rtt_ms / 2.0);
  dc.faults = cfg_.faults;
  dc.seed = cfg_.seed;
  if (cfg_.ack_aggregation) {
    dc.ack_aggregation = cfg_.ack_agg;
    dc.ack_aggregation.enabled = true;
  }
  dumbbell_ = std::make_unique<Dumbbell>(&sim_, dc);
  if (cfg_.wifi_noise) {
    dumbbell_->bottleneck().set_latency_noise(
        std::make_unique<WifiNoise>(cfg_.wifi));
  }
  if (cfg_.markov_rate) {
    dumbbell_->bottleneck().set_rate_process(
        std::make_unique<MarkovRateProcess>(cfg_.markov));
  }
}

Flow& Scenario::add_flow(const std::string& protocol, TimeNs start,
                         TimeNs stop) {
  const FlowId id = next_id_;
  return add_flow_with_cc(
      make_protocol(protocol, flow_seed(id), nullptr, &cfg_.tuning), start,
      stop);
}

Flow& Scenario::add_flow_with_cc(std::unique_ptr<CongestionController> cc,
                                 TimeNs start, TimeNs stop) {
  FlowConfig fc;
  fc.id = next_id_++;
  fc.start_time = start;
  fc.stop_time = stop;
  fc.unlimited = true;
  flows_.push_back(
      std::make_unique<Flow>(&sim_, dumbbell_.get(), fc, std::move(cc)));
  flows_.back()->sender().set_max_burst_packets(cfg_.max_burst_packets);
  flows_.back()->sender().set_pacing_jitter(cfg_.pacing_jitter);
  return *flows_.back();
}

}  // namespace proteus
