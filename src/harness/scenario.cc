#include "harness/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/shard.h"

namespace proteus {

namespace {

// Per-link noise seeds: link 0 keeps the historical dumbbell derivation,
// later links step by the golden-ratio increment.
uint64_t link_seed(const ScenarioConfig& cfg, int index) {
  return (cfg.seed ^ 0x71) + 0x9e3779b9ULL * static_cast<uint64_t>(index);
}

LinkConfig base_link(const ScenarioConfig& cfg) {
  LinkConfig lc;
  lc.rate = Bandwidth::from_mbps(cfg.bandwidth_mbps);
  lc.prop_delay = from_ms(cfg.rtt_ms / 2.0);
  lc.buffer_bytes = cfg.buffer_bytes;
  lc.random_loss = cfg.random_loss;
  lc.allow_reordering = cfg.allow_reordering;
  return lc;
}

// Builds one of the registered multi-bottleneck shapes. Link 0 is always
// the primary link: forward faults, wifi noise, and the markov rate
// process attach there; reverse (ackloss/ackburst) faults attach to every
// delay edge and mirror their drop counts into link 0's stats.
std::unique_ptr<Topology> build_topology(Simulator* sim,
                                         const ScenarioConfig& cfg) {
  auto topo = std::make_unique<Topology>(sim);
  const TopologyParams& tp = cfg.topology;
  const int arms = std::max(2, tp.arms);
  const double edge_mbps = tp.edge_bandwidth_mbps > 0.0
                               ? tp.edge_bandwidth_mbps
                               : cfg.bandwidth_mbps * 2.0;
  const TimeNs fwd_budget = from_ms(cfg.rtt_ms / 2.0);
  std::vector<Topology::EdgeId> delay_edges;
  std::vector<Topology::NodeId> source_nodes;

  switch (tp.kind) {
    case TopologyKind::kDumbbell:
      break;  // handled by the Dumbbell class itself; never reaches here

    case TopologyKind::kCdnEdge:
      // Built by Scenario::build_cdn (one graph per shard part).
      throw std::logic_error("kCdnEdge never reaches build_topology");

    case TopologyKind::kParkingLot: {
      // Chain of `arms` bottleneck hops over nodes 0..arms. Path 0 runs
      // end to end; path 1+i crosses only hop i. Each hop gets an equal
      // share of the one-way delay budget, so a crossing flow's base RTT
      // is the long flow's divided by the hop count.
      const TimeNs hop_prop = fwd_budget / arms;
      LinkConfig hop = base_link(cfg);
      hop.prop_delay = hop_prop;
      std::vector<Topology::EdgeId> hops;
      for (int i = 0; i < arms; ++i) {
        hops.push_back(topo->add_link(i, i + 1, hop, link_seed(cfg, i),
                                      "hop" + std::to_string(i)));
      }
      const Topology::EdgeId ack_long =
          topo->add_delay_edge(arms, 0, fwd_budget, "ack-long");
      delay_edges.push_back(ack_long);
      topo->add_path({hops, {ack_long}});
      source_nodes.push_back(0);
      for (int i = 0; i < arms; ++i) {
        const Topology::EdgeId ack = topo->add_delay_edge(
            i + 1, i, hop_prop, "ack-cross" + std::to_string(i));
        delay_edges.push_back(ack);
        topo->add_path({{hops[i]}, {ack}});
        source_nodes.push_back(i);
      }
      break;
    }

    case TopologyKind::kFanIn: {
      // `arms` access links over nodes 0..arms-1 converge on node `arms`,
      // then share one core link to node arms+1. The core carries the
      // configured bandwidth; access links run faster (default 2x) so the
      // core is the contended resource.
      const Topology::NodeId junction = arms;
      const Topology::NodeId sink = arms + 1;
      LinkConfig core = base_link(cfg);
      core.prop_delay = fwd_budget / 2;
      const Topology::EdgeId core_id =
          topo->add_link(junction, sink, core, link_seed(cfg, 0), "core");
      LinkConfig access = base_link(cfg);
      access.rate = Bandwidth::from_mbps(edge_mbps);
      access.prop_delay = fwd_budget / 2;
      for (int i = 0; i < arms; ++i) {
        const Topology::EdgeId edge = topo->add_link(
            i, junction, access, link_seed(cfg, 1 + i),
            "edge" + std::to_string(i));
        const Topology::EdgeId ack = topo->add_delay_edge(
            sink, i, fwd_budget, "ack" + std::to_string(i));
        delay_edges.push_back(ack);
        topo->add_path({{edge, core_id}, {ack}});
        source_nodes.push_back(i);
      }
      break;
    }

    case TopologyKind::kStar: {
      // CDN-edge star: one origin (node 0) feeds a hub (node 1) over a
      // fast core, and `arms` leaf links reach clients with progressively
      // longer RTTs — leaf i's one-way delay scales by
      // 1 + rtt_spread * i / (arms - 1). Leaves carry the configured
      // bandwidth, so each is its own bottleneck; the shared core
      // (default 2x) is where faults and noise attach.
      LinkConfig core = base_link(cfg);
      core.rate = Bandwidth::from_mbps(edge_mbps);
      core.prop_delay = fwd_budget / 2;
      topo->add_link(0, 1, core, link_seed(cfg, 0), "core");
      Topology::Route core_route;  // filled per leaf below
      for (int i = 0; i < arms; ++i) {
        const double scale =
            1.0 + tp.rtt_spread * i / std::max(1, arms - 1);
        LinkConfig leaf = base_link(cfg);
        leaf.prop_delay =
            static_cast<TimeNs>(static_cast<double>(fwd_budget / 2) * scale);
        const Topology::NodeId client = 2 + i;
        const Topology::EdgeId leaf_id = topo->add_link(
            1, client, leaf, link_seed(cfg, 1 + i),
            "leaf" + std::to_string(i));
        const TimeNs back =
            static_cast<TimeNs>(static_cast<double>(fwd_budget) * scale);
        const Topology::EdgeId ack =
            topo->add_delay_edge(client, 0, back, "ack" + std::to_string(i));
        delay_edges.push_back(ack);
        topo->add_path({{0, leaf_id}, {ack}});
        source_nodes.push_back(0);
      }
      break;
    }
  }

  if (!cfg.faults.empty()) {
    // Events are grouped by their target link (`link<i>:` grammar
    // prefix; untargeted events are link 0). The link-0 group keeps the
    // historical contract: one timeline, one RNG stream, forward events
    // on the primary link and reverse (ackloss/ackburst) events on every
    // ACK path. Each targeted group gets its own timeline on its link,
    // with reverse events riding the same-indexed ACK edge when one
    // exists.
    std::vector<FaultSpec> primary;
    std::vector<std::pair<int, std::vector<FaultSpec>>> targeted;
    for (const FaultSpec& f : cfg.faults) {
      if (f.link == 0) {
        primary.push_back(f);
        continue;
      }
      if (f.link >= topo->link_count()) {
        throw std::runtime_error(
            "fault targets link " + std::to_string(f.link) + " but the " +
            topology_kind_name(tp.kind) + " topology has " +
            std::to_string(topo->link_count()) + " links");
      }
      auto it = std::find_if(targeted.begin(), targeted.end(),
                             [&](const auto& g) { return g.first == f.link; });
      if (it == targeted.end()) {
        targeted.push_back({f.link, {f}});
      } else {
        it->second.push_back(f);
      }
    }
    if (!primary.empty()) {
      FaultTimeline* faults =
          topo->add_fault_timeline(primary, cfg.seed ^ 0xfa);
      topo->set_link_faults(topo->link_edge(0), faults);
      for (Topology::EdgeId e : delay_edges) {
        topo->set_ack_faults(e, faults, &topo->link(0));
        topo->set_burst_release_spacing(e, cfg.ack_agg.release_spacing);
      }
    }
    for (auto& [link, events] : targeted) {
      FaultTimeline* faults = topo->add_fault_timeline(
          events,
          (cfg.seed ^ 0xfa) + 0x9e3779b9ULL * static_cast<uint64_t>(link));
      topo->set_link_faults(topo->link_edge(link), faults);
      if (static_cast<size_t>(link) < delay_edges.size()) {
        topo->set_ack_faults(delay_edges[link], faults, &topo->link(link));
        topo->set_burst_release_spacing(delay_edges[link],
                                        cfg.ack_agg.release_spacing);
      }
    }
  }
  if (cfg.ack_aggregation) {
    AckAggregatorConfig agg = cfg.ack_agg;
    agg.enabled = true;
    std::vector<Topology::NodeId> seen;
    for (Topology::NodeId n : source_nodes) {
      if (std::find(seen.begin(), seen.end(), n) != seen.end()) continue;
      seen.push_back(n);
      topo->set_ack_aggregator(
          n, agg, (cfg.seed ^ 0xac) + 0x9e3779b9ULL * static_cast<uint64_t>(n));
    }
  }
  return topo;
}

}  // namespace

// The sharded CDN-edge fabric (TopologyKind::kCdnEdge). Part 0 owns the
// shared core link; part 1+a owns arm a's leaf subgraph (its own
// Topology, flow tables, links, and RNG streams). The only cross-part
// traffic is data packets entering and leaving the core, both carried by
// ShardSet::post with at least the barrier window of delay in hand:
//
//   arm -> core: the access-link propagation (rtt/8) is modeled as the
//                post delay itself — no queueing on access links.
//   core -> arm: the core's delivery hook fires at service time with the
//                post-propagation arrival (rtt/8 later), so the core's
//                full propagation delay is the lookahead.
//
// ACKs never cross parts: each arm's reverse delay edge runs from its
// client straight back to its senders, all inside the arm's own part.
// Every mutable structure is therefore owned by exactly one part, which
// is what makes the N-thread run race-free and byte-identical to the
// 1-thread run by construction.
struct Scenario::CdnState {
  struct Arm;
  int arms = 0;
  TimeNs window = 0;        // barrier window = min cross-part delay
  TimeNs access_delay = 0;  // arm source -> core ingress
  std::unique_ptr<ShardSet> shards;
  std::unique_ptr<Link> core;  // shared core, lives on part 0
  std::vector<std::unique_ptr<FaultTimeline>> core_faults;  // owned here
  std::vector<std::unique_ptr<Arm>> arm;
};

struct Scenario::CdnState::Arm final : Network {
  Arm(CdnState* st, int index, FlowId stride)
      : state(st),
        part(1 + index),
        ids(static_cast<FlowId>(1 + index), stride) {
    uplink.arm = this;
  }

  // Network seen by flows homed on this arm: data packets enter the
  // shared core via a cross-part post; ACKs ride the arm-local reverse
  // delay edge; attach/detach hit this arm's own flow tables.
  PacketSink* forward_ingress(FlowId) override { return &uplink; }
  void send_reverse(const Packet& ack) override { topo->send_reverse(ack); }
  void attach_flow(FlowId id, PacketSink* receiver_side,
                   PacketSink* sender_ack_side) override {
    topo->attach_flow(id, receiver_side, sender_ack_side);
  }
  void detach_flow(FlowId id) override { topo->detach_flow(id); }

  struct Uplink final : PacketSink {
    void on_packet(const Packet& pkt) override {
      CdnState* st = arm->state;
      st->shards->post(
          arm->part, /*dst=*/0,
          st->shards->part(arm->part).now() + st->access_delay,
          [core = st->core.get(), pkt] { core->on_packet(pkt); });
    }
    Arm* arm = nullptr;
  } uplink;

  CdnState* state;
  int part;
  IdAllocator ids;  // mints 1+index, 1+index+arms, ... (arm from id alone)
  std::unique_ptr<Topology> topo;  // leaf link + ack edge on this part
  Topology::EdgeId ack_edge = -1;
};

void Scenario::build_cdn() {
  const TopologyParams& tp = cfg_.topology;
  const int arms = std::max(2, tp.arms);
  if (cfg_.wifi_noise || cfg_.markov_rate) {
    throw std::runtime_error(
        "cdn topology does not support wifi noise or the markov rate "
        "process: both attach a shared stochastic process to the core, "
        "whose draws would depend on cross-part execution order");
  }
  if (cfg_.ack_aggregation) {
    throw std::runtime_error(
        "cdn topology does not support ack aggregation yet (ACK paths "
        "are arm-local; use star for aggregator experiments)");
  }
  const double edge_mbps = tp.edge_bandwidth_mbps > 0.0
                               ? tp.edge_bandwidth_mbps
                               : cfg_.bandwidth_mbps * 2.0;
  const TimeNs fwd = from_ms(cfg_.rtt_ms / 2.0);
  const TimeNs window = fwd / 4;
  if (window <= 0) {
    throw std::runtime_error(
        "cdn topology needs rtt_ms >= a few ns to derive a positive "
        "barrier window (rtt/8)");
  }

  cdn_ = std::make_unique<CdnState>();
  cdn_->arms = arms;
  cdn_->window = window;
  cdn_->access_delay = fwd / 4;
  cdn_->shards = std::make_unique<ShardSet>(arms + 1, window, cfg_.seed,
                                            cfg_.engine);

  // Shared core on part 0: the contended resource (2x the leaf rate by
  // default, like the star core) and the target of "link 0" faults.
  LinkConfig core = base_link(cfg_);
  core.rate = Bandwidth::from_mbps(edge_mbps);
  core.prop_delay = fwd / 4;
  cdn_->core = std::make_unique<Link>(&cdn_->shards->part(0), core,
                                      link_seed(cfg_, 0));

  for (int a = 0; a < arms; ++a) {
    auto arm = std::make_unique<CdnState::Arm>(cdn_.get(), a,
                                               static_cast<FlowId>(arms));
    arm->topo = std::make_unique<Topology>(&cdn_->shards->part(1 + a));
    // Heterogeneous client RTTs, same spread law as the star: leaf a's
    // one-way delay scales by 1 + rtt_spread * a / (arms - 1).
    const double scale = 1.0 + tp.rtt_spread * a / std::max(1, arms - 1);
    LinkConfig leaf = base_link(cfg_);
    leaf.prop_delay =
        static_cast<TimeNs>(static_cast<double>(fwd / 2) * scale);
    const Topology::EdgeId leaf_id =
        arm->topo->add_link(0, 1, leaf, link_seed(cfg_, 1 + a),
                            "leaf" + std::to_string(a));
    // Reverse delay covers the whole return trip (client -> sender), so
    // arm a's base RTT is (rtt/2) * (1 + scale): rtt for arm 0, up to
    // rtt * (1 + spread/2) for the farthest arm.
    const TimeNs back =
        fwd / 2 + static_cast<TimeNs>(static_cast<double>(fwd / 2) * scale);
    arm->ack_edge =
        arm->topo->add_delay_edge(1, 0, back, "ack" + std::to_string(a));
    arm->topo->add_path({{leaf_id}, {arm->ack_edge}});
    if (cfg_.planned_flows > 0) {
      // Ids interleave across arms, so each arm's dense demux table must
      // span the global id range, not planned/arms.
      arm->topo->reserve_flows(cfg_.planned_flows +
                               static_cast<FlowId>(arms) + 1);
    }
    cdn_->arm.push_back(std::move(arm));
  }

  // Core egress: re-home each served packet onto its flow's arm. The
  // hook fires at service time with the post-propagation arrival, so the
  // core's full propagation delay is in hand when the packet crosses.
  CdnState* st = cdn_.get();
  cdn_->core->set_delivery_scheduler([st](TimeNs arrival, const Packet& pkt) {
    const int a = static_cast<int>((pkt.flow_id - 1) % st->arms);
    Link* leaf = &st->arm[a]->topo->link(0);
    st->shards->post(/*src=*/0, 1 + a, arrival,
                     [leaf, pkt] { leaf->on_packet(pkt); });
  });

  if (cfg_.faults.empty()) return;
  // Link indexing: 0 = the shared core, 1+a = arm a's leaf link. Core
  // faults keep the historical link-0 seed; each targeted leaf group
  // gets its own timeline owned by (and sampled only from) its arm.
  std::vector<FaultSpec> primary;
  std::vector<std::pair<int, std::vector<FaultSpec>>> targeted;
  for (const FaultSpec& f : cfg_.faults) {
    if (f.link == 0) {
      primary.push_back(f);
      continue;
    }
    if (f.link > arms) {
      throw std::runtime_error(
          "fault targets link " + std::to_string(f.link) +
          " but the cdn topology has links 0 (core) .. " +
          std::to_string(arms) + " (leaves)");
    }
    auto it = std::find_if(targeted.begin(), targeted.end(),
                           [&](const auto& g) { return g.first == f.link; });
    if (it == targeted.end()) {
      targeted.push_back({f.link, {f}});
    } else {
      it->second.push_back(f);
    }
  }
  if (!primary.empty()) {
    for (const FaultSpec& f : primary) {
      const bool service_side =
          f.type == FaultType::kBlackout || f.type == FaultType::kCapacity ||
          f.type == FaultType::kReorder || f.type == FaultType::kDuplicate;
      if (!service_side) {
        throw std::runtime_error(
            "cdn core (link 0) only takes service-side faults "
            "(blackout/capacity/reorder/duplicate): ACK faults live on "
            "arm-local reverse paths (target a leaf link instead) and "
            "route changes would shrink the barrier lookahead");
      }
    }
    cdn_->core_faults.push_back(
        std::make_unique<FaultTimeline>(primary, cfg_.seed ^ 0xfa));
    cdn_->core->set_fault_timeline(cdn_->core_faults.back().get());
  }
  for (auto& [link, events] : targeted) {
    CdnState::Arm& arm = *cdn_->arm[link - 1];
    FaultTimeline* faults = arm.topo->add_fault_timeline(
        events,
        (cfg_.seed ^ 0xfa) + 0x9e3779b9ULL * static_cast<uint64_t>(link));
    arm.topo->set_link_faults(arm.topo->link_edge(0), faults);
    arm.topo->set_ack_faults(arm.ack_edge, faults, &arm.topo->link(0));
    arm.topo->set_burst_release_spacing(arm.ack_edge,
                                        cfg_.ack_agg.release_spacing);
  }
}

Scenario::~Scenario() = default;

Scenario::Scenario(ScenarioConfig cfg) : cfg_(cfg), sim_(cfg.seed, cfg.engine) {
  if (cfg_.topology.kind == TopologyKind::kCdnEdge) {
    build_cdn();  // multi-part fabric; validates wifi/markov/agg itself
    return;
  }
  if (cfg_.topology.kind == TopologyKind::kDumbbell) {
    for (const FaultSpec& f : cfg_.faults) {
      if (f.link != 0) {
        throw std::runtime_error("fault targets link " +
                                 std::to_string(f.link) +
                                 " but the dumbbell has a single link");
      }
    }
    DumbbellConfig dc;
    dc.bottleneck = base_link(cfg_);
    dc.reverse_delay = from_ms(cfg_.rtt_ms / 2.0);
    dc.faults = cfg_.faults;
    dc.seed = cfg_.seed;
    if (cfg_.ack_aggregation) {
      dc.ack_aggregation = cfg_.ack_agg;
      dc.ack_aggregation.enabled = true;
    }
    dumbbell_ = std::make_unique<Dumbbell>(&sim_, dc);
    network_ = dumbbell_.get();
  } else {
    topo_ = build_topology(&sim_, cfg_);
    network_ = topo_.get();
  }
  if (cfg_.wifi_noise) {
    bottleneck().set_latency_noise(std::make_unique<WifiNoise>(cfg_.wifi));
  }
  if (cfg_.markov_rate) {
    bottleneck().set_rate_process(
        std::make_unique<MarkovRateProcess>(cfg_.markov));
  }
  if (cfg_.planned_flows > 0) {
    topology().reserve_flows(cfg_.planned_flows + 1);  // ids start at 1
  }
}

Simulator& Scenario::sim() {
  return cdn_ != nullptr ? cdn_->shards->part(0) : sim_;
}

Topology& Scenario::topology() {
  if (cdn_ != nullptr) return *cdn_->arm[0]->topo;
  return dumbbell_ != nullptr ? dumbbell_->topology() : *topo_;
}

const Topology& Scenario::topology() const {
  return const_cast<Scenario*>(this)->topology();
}

Link& Scenario::bottleneck() {
  return cdn_ != nullptr ? *cdn_->core : topology().link(0);
}

void Scenario::run_until(TimeNs t) {
  if (cdn_ != nullptr) {
    cdn_->shards->run_until(t, std::max(1, cfg_.shards));
  } else {
    sim_.run_until(t);
  }
}

uint64_t Scenario::events_processed() const {
  return cdn_ != nullptr ? cdn_->shards->events_processed()
                         : sim_.events_processed();
}

PartitionPlan Scenario::partition_plan() const {
  if (cdn_ != nullptr) {
    return {cdn_->arms + 1, cdn_->window,
            "cdn-edge: part 0 = shared core, parts 1.." +
                std::to_string(cdn_->arms) +
                " = arm subgraphs; window = min cross-part delay "
                "(access = core propagation = rtt/8)"};
  }
  return {1, 0,
          std::string(topology_kind_name(cfg_.topology.kind)) +
              " is single-part: the whole graph shares one event queue, "
              "so --shards only picks the thread count and one part "
              "needs one thread"};
}

ShardSet::WindowStats Scenario::shard_window_stats() const {
  return cdn_ != nullptr ? cdn_->shards->window_stats()
                         : ShardSet::WindowStats{};
}

std::vector<std::pair<std::string, LinkStats>> Scenario::link_stats() const {
  if (cdn_ == nullptr) return topology().link_stats();
  std::vector<std::pair<std::string, LinkStats>> rows;
  rows.emplace_back("core", cdn_->core->stats());
  for (const auto& arm : cdn_->arm) {
    for (auto& row : arm->topo->link_stats()) rows.push_back(std::move(row));
  }
  return rows;
}

int Scenario::arm_count() const { return cdn_ != nullptr ? cdn_->arms : 0; }

Simulator& Scenario::arm_sim(int arm) {
  return cdn_ != nullptr ? cdn_->shards->part(1 + arm) : sim_;
}

Network& Scenario::arm_network(int arm) {
  return cdn_ != nullptr ? static_cast<Network&>(*cdn_->arm[arm]) : *network_;
}

Topology& Scenario::arm_topology(int arm) {
  return cdn_ != nullptr ? *cdn_->arm[arm]->topo : topology();
}

FlowId Scenario::allocate_flow_id() {
  if (cdn_ != nullptr) {
    throw std::logic_error(
        "cdn topology homes flow ids per arm; use allocate_flow_id_on()");
  }
  return ids_.allocate();
}

FlowId Scenario::allocate_flow_id_on(int arm) {
  if (cdn_ == nullptr) return ids_.allocate();
  return cdn_->arm[arm]->ids.allocate();
}

void Scenario::release_flow_id(FlowId id) {
  if (cdn_ == nullptr) {
    ids_.release(id);
    return;
  }
  cdn_->arm[static_cast<int>((id - 1) % cdn_->arms)]->ids.release(id);
}

Flow& Scenario::add_flow(const std::string& protocol, TimeNs start,
                         TimeNs stop) {
  const int arm = cdn_ != nullptr ? flows_attached_ % cdn_->arms : 0;
  const FlowId id = allocate_flow_id_on(arm);
  return attach_flow(
      id, make_protocol(protocol, flow_seed(id), nullptr, &cfg_.tuning), start,
      stop);
}

Flow& Scenario::add_flow_with_cc(std::unique_ptr<CongestionController> cc,
                                 TimeNs start, TimeNs stop) {
  const int arm = cdn_ != nullptr ? flows_attached_ % cdn_->arms : 0;
  return attach_flow(allocate_flow_id_on(arm), std::move(cc), start, stop);
}

Flow& Scenario::attach_flow(FlowId id, std::unique_ptr<CongestionController> cc,
                            TimeNs start, TimeNs stop) {
  FlowConfig fc;
  fc.id = id;
  fc.start_time = start;
  fc.stop_time = stop;
  fc.unlimited = true;
  if (cdn_ != nullptr) {
    // The id names its home arm (ids interleave 1+a, 1+a+arms, ...).
    const int arm = static_cast<int>((id - 1) % cdn_->arms);
    ++flows_attached_;
    flows_.push_back(std::make_unique<Flow>(&cdn_->shards->part(1 + arm),
                                            cdn_->arm[arm].get(), fc,
                                            std::move(cc)));
  } else {
    if (topo_ != nullptr && topo_->path_count() > 1) {
      topo_->set_flow_path(id, flows_attached_ % topo_->path_count());
    }
    ++flows_attached_;
    flows_.push_back(
        std::make_unique<Flow>(&sim_, network_, fc, std::move(cc)));
  }
  flows_.back()->sender().set_max_burst_packets(cfg_.max_burst_packets);
  flows_.back()->sender().set_pacing_jitter(cfg_.pacing_jitter);
  return *flows_.back();
}

std::unique_ptr<Flow> Scenario::create_flow(int arm,
                                            const std::string& protocol,
                                            FlowConfig fc) {
  auto cc = make_protocol(protocol, flow_seed(fc.id), nullptr, &cfg_.tuning);
  Simulator* sim = cdn_ != nullptr ? &cdn_->shards->part(1 + arm) : &sim_;
  Network* net = cdn_ != nullptr
                     ? static_cast<Network*>(cdn_->arm[arm].get())
                     : network_;
  auto flow = std::make_unique<Flow>(sim, net, fc, std::move(cc));
  flow->sender().set_max_burst_packets(cfg_.max_burst_packets);
  flow->sender().set_pacing_jitter(cfg_.pacing_jitter);
  return flow;
}

bool Scenario::recycle_flow(Flow& flow, FlowConfig fc) {
  if (!flow.recycle(fc, flow_seed(fc.id))) return false;
  // Re-apply the scenario pacing knobs exactly as create_flow does after
  // construction (reset preserved them, but keep the two paths parallel).
  flow.sender().set_max_burst_packets(cfg_.max_burst_packets);
  flow.sender().set_pacing_jitter(cfg_.pacing_jitter);
  return true;
}

}  // namespace proteus
