#include "harness/scenario.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace proteus {

namespace {

// Per-link noise seeds: link 0 keeps the historical dumbbell derivation,
// later links step by the golden-ratio increment.
uint64_t link_seed(const ScenarioConfig& cfg, int index) {
  return (cfg.seed ^ 0x71) + 0x9e3779b9ULL * static_cast<uint64_t>(index);
}

LinkConfig base_link(const ScenarioConfig& cfg) {
  LinkConfig lc;
  lc.rate = Bandwidth::from_mbps(cfg.bandwidth_mbps);
  lc.prop_delay = from_ms(cfg.rtt_ms / 2.0);
  lc.buffer_bytes = cfg.buffer_bytes;
  lc.random_loss = cfg.random_loss;
  lc.allow_reordering = cfg.allow_reordering;
  return lc;
}

// Builds one of the registered multi-bottleneck shapes. Link 0 is always
// the primary link: forward faults, wifi noise, and the markov rate
// process attach there; reverse (ackloss/ackburst) faults attach to every
// delay edge and mirror their drop counts into link 0's stats.
std::unique_ptr<Topology> build_topology(Simulator* sim,
                                         const ScenarioConfig& cfg) {
  auto topo = std::make_unique<Topology>(sim);
  const TopologyParams& tp = cfg.topology;
  const int arms = std::max(2, tp.arms);
  const double edge_mbps = tp.edge_bandwidth_mbps > 0.0
                               ? tp.edge_bandwidth_mbps
                               : cfg.bandwidth_mbps * 2.0;
  const TimeNs fwd_budget = from_ms(cfg.rtt_ms / 2.0);
  std::vector<Topology::EdgeId> delay_edges;
  std::vector<Topology::NodeId> source_nodes;

  switch (tp.kind) {
    case TopologyKind::kDumbbell:
      break;  // handled by the Dumbbell class itself; never reaches here

    case TopologyKind::kParkingLot: {
      // Chain of `arms` bottleneck hops over nodes 0..arms. Path 0 runs
      // end to end; path 1+i crosses only hop i. Each hop gets an equal
      // share of the one-way delay budget, so a crossing flow's base RTT
      // is the long flow's divided by the hop count.
      const TimeNs hop_prop = fwd_budget / arms;
      LinkConfig hop = base_link(cfg);
      hop.prop_delay = hop_prop;
      std::vector<Topology::EdgeId> hops;
      for (int i = 0; i < arms; ++i) {
        hops.push_back(topo->add_link(i, i + 1, hop, link_seed(cfg, i),
                                      "hop" + std::to_string(i)));
      }
      const Topology::EdgeId ack_long =
          topo->add_delay_edge(arms, 0, fwd_budget, "ack-long");
      delay_edges.push_back(ack_long);
      topo->add_path({hops, {ack_long}});
      source_nodes.push_back(0);
      for (int i = 0; i < arms; ++i) {
        const Topology::EdgeId ack = topo->add_delay_edge(
            i + 1, i, hop_prop, "ack-cross" + std::to_string(i));
        delay_edges.push_back(ack);
        topo->add_path({{hops[i]}, {ack}});
        source_nodes.push_back(i);
      }
      break;
    }

    case TopologyKind::kFanIn: {
      // `arms` access links over nodes 0..arms-1 converge on node `arms`,
      // then share one core link to node arms+1. The core carries the
      // configured bandwidth; access links run faster (default 2x) so the
      // core is the contended resource.
      const Topology::NodeId junction = arms;
      const Topology::NodeId sink = arms + 1;
      LinkConfig core = base_link(cfg);
      core.prop_delay = fwd_budget / 2;
      const Topology::EdgeId core_id =
          topo->add_link(junction, sink, core, link_seed(cfg, 0), "core");
      LinkConfig access = base_link(cfg);
      access.rate = Bandwidth::from_mbps(edge_mbps);
      access.prop_delay = fwd_budget / 2;
      for (int i = 0; i < arms; ++i) {
        const Topology::EdgeId edge = topo->add_link(
            i, junction, access, link_seed(cfg, 1 + i),
            "edge" + std::to_string(i));
        const Topology::EdgeId ack = topo->add_delay_edge(
            sink, i, fwd_budget, "ack" + std::to_string(i));
        delay_edges.push_back(ack);
        topo->add_path({{edge, core_id}, {ack}});
        source_nodes.push_back(i);
      }
      break;
    }

    case TopologyKind::kStar: {
      // CDN-edge star: one origin (node 0) feeds a hub (node 1) over a
      // fast core, and `arms` leaf links reach clients with progressively
      // longer RTTs — leaf i's one-way delay scales by
      // 1 + rtt_spread * i / (arms - 1). Leaves carry the configured
      // bandwidth, so each is its own bottleneck; the shared core
      // (default 2x) is where faults and noise attach.
      LinkConfig core = base_link(cfg);
      core.rate = Bandwidth::from_mbps(edge_mbps);
      core.prop_delay = fwd_budget / 2;
      topo->add_link(0, 1, core, link_seed(cfg, 0), "core");
      Topology::Route core_route;  // filled per leaf below
      for (int i = 0; i < arms; ++i) {
        const double scale =
            1.0 + tp.rtt_spread * i / std::max(1, arms - 1);
        LinkConfig leaf = base_link(cfg);
        leaf.prop_delay =
            static_cast<TimeNs>(static_cast<double>(fwd_budget / 2) * scale);
        const Topology::NodeId client = 2 + i;
        const Topology::EdgeId leaf_id = topo->add_link(
            1, client, leaf, link_seed(cfg, 1 + i),
            "leaf" + std::to_string(i));
        const TimeNs back =
            static_cast<TimeNs>(static_cast<double>(fwd_budget) * scale);
        const Topology::EdgeId ack =
            topo->add_delay_edge(client, 0, back, "ack" + std::to_string(i));
        delay_edges.push_back(ack);
        topo->add_path({{0, leaf_id}, {ack}});
        source_nodes.push_back(0);
      }
      break;
    }
  }

  if (!cfg.faults.empty()) {
    // Events are grouped by their target link (`link<i>:` grammar
    // prefix; untargeted events are link 0). The link-0 group keeps the
    // historical contract: one timeline, one RNG stream, forward events
    // on the primary link and reverse (ackloss/ackburst) events on every
    // ACK path. Each targeted group gets its own timeline on its link,
    // with reverse events riding the same-indexed ACK edge when one
    // exists.
    std::vector<FaultSpec> primary;
    std::vector<std::pair<int, std::vector<FaultSpec>>> targeted;
    for (const FaultSpec& f : cfg.faults) {
      if (f.link == 0) {
        primary.push_back(f);
        continue;
      }
      if (f.link >= topo->link_count()) {
        throw std::runtime_error(
            "fault targets link " + std::to_string(f.link) + " but the " +
            topology_kind_name(tp.kind) + " topology has " +
            std::to_string(topo->link_count()) + " links");
      }
      auto it = std::find_if(targeted.begin(), targeted.end(),
                             [&](const auto& g) { return g.first == f.link; });
      if (it == targeted.end()) {
        targeted.push_back({f.link, {f}});
      } else {
        it->second.push_back(f);
      }
    }
    if (!primary.empty()) {
      FaultTimeline* faults =
          topo->add_fault_timeline(primary, cfg.seed ^ 0xfa);
      topo->set_link_faults(topo->link_edge(0), faults);
      for (Topology::EdgeId e : delay_edges) {
        topo->set_ack_faults(e, faults, &topo->link(0));
        topo->set_burst_release_spacing(e, cfg.ack_agg.release_spacing);
      }
    }
    for (auto& [link, events] : targeted) {
      FaultTimeline* faults = topo->add_fault_timeline(
          events,
          (cfg.seed ^ 0xfa) + 0x9e3779b9ULL * static_cast<uint64_t>(link));
      topo->set_link_faults(topo->link_edge(link), faults);
      if (static_cast<size_t>(link) < delay_edges.size()) {
        topo->set_ack_faults(delay_edges[link], faults, &topo->link(link));
        topo->set_burst_release_spacing(delay_edges[link],
                                        cfg.ack_agg.release_spacing);
      }
    }
  }
  if (cfg.ack_aggregation) {
    AckAggregatorConfig agg = cfg.ack_agg;
    agg.enabled = true;
    std::vector<Topology::NodeId> seen;
    for (Topology::NodeId n : source_nodes) {
      if (std::find(seen.begin(), seen.end(), n) != seen.end()) continue;
      seen.push_back(n);
      topo->set_ack_aggregator(
          n, agg, (cfg.seed ^ 0xac) + 0x9e3779b9ULL * static_cast<uint64_t>(n));
    }
  }
  return topo;
}

}  // namespace

Scenario::Scenario(ScenarioConfig cfg) : cfg_(cfg), sim_(cfg.seed, cfg.engine) {
  if (cfg_.topology.kind == TopologyKind::kDumbbell) {
    for (const FaultSpec& f : cfg_.faults) {
      if (f.link != 0) {
        throw std::runtime_error("fault targets link " +
                                 std::to_string(f.link) +
                                 " but the dumbbell has a single link");
      }
    }
    DumbbellConfig dc;
    dc.bottleneck = base_link(cfg_);
    dc.reverse_delay = from_ms(cfg_.rtt_ms / 2.0);
    dc.faults = cfg_.faults;
    dc.seed = cfg_.seed;
    if (cfg_.ack_aggregation) {
      dc.ack_aggregation = cfg_.ack_agg;
      dc.ack_aggregation.enabled = true;
    }
    dumbbell_ = std::make_unique<Dumbbell>(&sim_, dc);
    network_ = dumbbell_.get();
  } else {
    topo_ = build_topology(&sim_, cfg_);
    network_ = topo_.get();
  }
  if (cfg_.wifi_noise) {
    bottleneck().set_latency_noise(std::make_unique<WifiNoise>(cfg_.wifi));
  }
  if (cfg_.markov_rate) {
    bottleneck().set_rate_process(
        std::make_unique<MarkovRateProcess>(cfg_.markov));
  }
}

Flow& Scenario::add_flow(const std::string& protocol, TimeNs start,
                         TimeNs stop) {
  const FlowId id = allocate_flow_id();
  return attach_flow(
      id, make_protocol(protocol, flow_seed(id), nullptr, &cfg_.tuning), start,
      stop);
}

Flow& Scenario::add_flow_with_cc(std::unique_ptr<CongestionController> cc,
                                 TimeNs start, TimeNs stop) {
  return attach_flow(allocate_flow_id(), std::move(cc), start, stop);
}

Flow& Scenario::attach_flow(FlowId id, std::unique_ptr<CongestionController> cc,
                            TimeNs start, TimeNs stop) {
  if (topo_ != nullptr && topo_->path_count() > 1) {
    topo_->set_flow_path(id, flows_attached_ % topo_->path_count());
  }
  ++flows_attached_;
  FlowConfig fc;
  fc.id = id;
  fc.start_time = start;
  fc.stop_time = stop;
  fc.unlimited = true;
  flows_.push_back(std::make_unique<Flow>(&sim_, network_, fc, std::move(cc)));
  flows_.back()->sender().set_max_burst_packets(cfg_.max_burst_packets);
  flows_.back()->sender().set_pacing_jitter(cfg_.pacing_jitter);
  return *flows_.back();
}

}  // namespace proteus
