// Always-on invariant checker for fault-injection runs.
//
// After (or during) a scenario, check_invariants() audits the properties
// that must survive *any* fault schedule: packet/byte conservation at
// every sender and at the bottleneck, finite utilities and MI metrics,
// and pacing rates inside the controller's clamp bounds. A violation
// means the simulation itself broke — not that a protocol performed
// badly — so the robustness suite asserts report.ok() after every run.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.h"

namespace proteus {

struct InvariantReport {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  // Newline-joined violation list ("all invariants hold" when empty).
  std::string to_string() const;
};

InvariantReport check_invariants(const Scenario& scenario);

}  // namespace proteus
