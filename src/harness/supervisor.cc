#include "harness/supervisor.h"

#include <sys/stat.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <limits>
#include <thread>
#include <unordered_map>

#include "harness/fault_spec.h"
#include "harness/invariants.h"

namespace proteus {

// ---- Statuses ----------------------------------------------------------

const char* run_status_name(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kError: return "error";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kInvariantViolation: return "invariant";
    case RunStatus::kSkipped: return "skipped";
  }
  return "error";
}

RunStatus run_status_from_name(const std::string& name) {
  if (name == "ok") return RunStatus::kOk;
  if (name == "timeout") return RunStatus::kTimeout;
  if (name == "invariant") return RunStatus::kInvariantViolation;
  if (name == "skipped") return RunStatus::kSkipped;
  return RunStatus::kError;
}

void check_invariants_or_throw(const Scenario& scenario) {
  const InvariantReport report = check_invariants(scenario);
  if (!report.ok()) throw InvariantViolationError(report.to_string());
}

// ---- Interrupt handling ------------------------------------------------

namespace {

volatile std::sig_atomic_t g_interrupt = 0;

extern "C" void supervisor_signal_handler(int) {
  if (g_interrupt) std::_Exit(130);  // second signal: force-exit
  g_interrupt = 1;
}

}  // namespace

void install_interrupt_handler() {
  struct sigaction sa{};
  sa.sa_handler = supervisor_signal_handler;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

bool interrupt_requested() { return g_interrupt != 0; }
void request_interrupt() { g_interrupt = 1; }
void clear_interrupt() { g_interrupt = 0; }

// ---- RunContext --------------------------------------------------------

namespace {

int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// splitmix64 finalizer: decorrelates retry seeds from the base seed and
// from each other while staying a pure function of (base, attempt).
uint64_t mix_attempt_seed(uint64_t base, int attempt) {
  uint64_t z = base + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(attempt);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

RunContext::RunContext(int attempt, double wall_timeout_sec,
                       double sim_timeout_sec, int trace_capacity)
    : attempt_(attempt),
      wall_deadline_ns_(wall_timeout_sec > 0.0
                            ? steady_now_ns() +
                                  static_cast<int64_t>(wall_timeout_sec * 1e9)
                            : std::numeric_limits<int64_t>::max()),
      sim_deadline_(sim_timeout_sec > 0.0 ? from_sec(sim_timeout_sec)
                                          : kTimeInfinite),
      trace_capacity_(trace_capacity > 0 ? static_cast<size_t>(trace_capacity)
                                         : 1) {}

uint64_t RunContext::attempt_seed(uint64_t base) const {
  return attempt_ == 0 ? base : mix_attempt_seed(base, attempt_);
}

void RunContext::poll(TimeNs sim_now) {
  if (interrupt_requested()) throw InterruptedError("interrupt requested");
  if (steady_now_ns() > wall_deadline_ns_) {
    throw RunTimeoutError("wall-clock watchdog fired (attempt " +
                          std::to_string(attempt_ + 1) + ", sim t=" +
                          std::to_string(to_sec(sim_now)) + "s)");
  }
  if (sim_now > sim_deadline_) {
    throw RunTimeoutError("simulated-time watchdog fired at t=" +
                          std::to_string(to_sec(sim_now)) + "s (attempt " +
                          std::to_string(attempt_ + 1) + ")");
  }
}

bool RunContext::cancelled() const {
  return interrupt_requested() || steady_now_ns() > wall_deadline_ns_;
}

void RunContext::trace(std::string event) {
  if (trace_.size() < trace_capacity_) {
    trace_.push_back(std::move(event));
  } else {
    trace_[trace_start_] = std::move(event);
    trace_start_ = (trace_start_ + 1) % trace_capacity_;
  }
}

void RunContext::add_telemetry_tail(std::string line) {
  // Shared budget across every flow of the attempt, newest kept: the tail
  // exists to show the MIs leading into a failure, not the whole run.
  constexpr size_t kTailCapacity = 64;
  if (telemetry_tail_.size() >= kTailCapacity) {
    telemetry_tail_.erase(telemetry_tail_.begin());
  }
  telemetry_tail_.push_back(std::move(line));
}

void supervised_run_until(Scenario& scenario, TimeNs until, RunContext* ctx) {
  if (!ctx) {
    scenario.run_until(until);
    return;
  }
  constexpr TimeNs kChunk = from_ms(250);
  TimeNs next_trace = 0;
  TimeNs now = scenario.sim().now();
  ctx->poll(now);
  while (now < until) {
    const TimeNs target = std::min(until, now + kChunk);
    scenario.run_until(target);
    now = std::max(scenario.sim().now(), target);
    if (now >= next_trace) {
      ctx->trace("sim advanced to t=" + std::to_string(to_sec(now)) + "s");
      next_trace = now + kNsPerSec;
    }
    ctx->poll(now);
  }
}

// ---- Descriptions ------------------------------------------------------

std::string describe_scenario(const ScenarioConfig& cfg) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "bw=%gMbps rtt=%gms buffer=%lldB loss=%g seed=%llu wifi=%d "
                "reordering=%d",
                cfg.bandwidth_mbps, cfg.rtt_ms,
                static_cast<long long>(cfg.buffer_bytes), cfg.random_loss,
                static_cast<unsigned long long>(cfg.seed),
                cfg.wifi_noise ? 1 : 0, cfg.allow_reordering ? 1 : 0);
  return buf;
}

RunInfo run_info(std::string name, const ScenarioConfig& cfg) {
  RunInfo info;
  info.name = std::move(name);
  info.seed = cfg.seed;
  info.scenario = describe_scenario(cfg);
  info.faults = format_faults(cfg.faults);
  return info;
}

// ---- Manifest / exit code ----------------------------------------------

std::string failure_manifest(const std::vector<PointStatus>& statuses) {
  size_t failed = 0, skipped = 0;
  for (const PointStatus& s : statuses) {
    if (s.status == RunStatus::kSkipped) ++skipped;
    else if (s.status != RunStatus::kOk) ++failed;
  }
  if (failed == 0 && skipped == 0) return "";

  std::string out;
  if (failed > 0) {
    out += std::to_string(failed) + " of " + std::to_string(statuses.size()) +
           " sweep points failed:\n";
    for (const PointStatus& s : statuses) {
      if (s.status == RunStatus::kOk || s.status == RunStatus::kSkipped) {
        continue;
      }
      out += "  point " + std::to_string(s.index);
      if (!s.name.empty()) out += " (" + s.name + ")";
      out += ": " + std::string(run_status_name(s.status)) + " after " +
             std::to_string(s.attempts) + " attempt(s)";
      if (!s.error.empty()) out += ": " + s.error;
      if (!s.bundle_path.empty()) out += " [repro: " + s.bundle_path + "]";
      out += "\n";
    }
  }
  if (skipped > 0) {
    out += std::to_string(skipped) +
           " point(s) skipped (interrupted before completion)\n";
  }
  return out;
}

int supervised_exit_code(const std::vector<PointStatus>& statuses,
                         bool interrupted) {
  if (interrupted) return 130;
  for (const PointStatus& s : statuses) {
    if (s.status != RunStatus::kOk && s.status != RunStatus::kSkipped) {
      return 3;
    }
  }
  return 0;
}

// ---- Engine ------------------------------------------------------------

namespace detail {

namespace {

std::string sanitize_for_path(const std::string& s) {
  std::string out;
  for (const char c : s) {
    out += (std::isalnum(static_cast<unsigned char>(c)) || c == '-' ||
            c == '_' || c == '.')
               ? c
               : '-';
  }
  return out.empty() ? "sweep" : out;
}

// Writes the self-contained repro bundle for a finally-failed point.
// Returns the bundle path, or "" when writing was not possible.
std::string write_repro_bundle(const SupervisorConfig& cfg,
                               const ErasedTask& task, const PointStatus& st,
                               const std::vector<std::string>& trace,
                               const std::vector<std::string>& telemetry) {
  if (cfg.bundle_dir.empty()) return "";
  ::mkdir(cfg.bundle_dir.c_str(), 0777);  // EEXIST is fine
  const std::string path = cfg.bundle_dir + "/" +
                           sanitize_for_path(cfg.sweep_name) + "-point" +
                           std::to_string(st.index) + ".repro";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return "";
  std::fprintf(f, "# proteus repro bundle\n");
  std::fprintf(f, "point: %lld\n", static_cast<long long>(st.index));
  std::fprintf(f, "name: %s\n", task.info.name.c_str());
  std::fprintf(f, "status: %s\n", run_status_name(st.status));
  std::fprintf(f, "attempts: %d\n", st.attempts);
  std::fprintf(f, "error: %s\n", st.error.c_str());
  std::fprintf(f, "seed: %llu\n",
               static_cast<unsigned long long>(task.info.seed));
  std::fprintf(f, "attempt_seeds:");
  for (int a = 0; a < st.attempts; ++a) {
    const RunContext ctx(a, 0.0, 0.0, 1);
    std::fprintf(f, " %llu",
                 static_cast<unsigned long long>(
                     ctx.attempt_seed(task.info.seed)));
  }
  std::fprintf(f, "\n");
  std::fprintf(f, "scenario: %s\n", task.info.scenario.c_str());
  std::fprintf(f, "faults: %s\n",
               task.info.faults.empty() ? "(none)" : task.info.faults.c_str());
  std::fprintf(f, "cli: %s\n",
               task.info.cli.empty() ? "(not provided)" : task.info.cli.c_str());
  std::fprintf(f, "trace (last %zu events of the final attempt):\n",
               trace.size());
  for (const std::string& ev : trace) std::fprintf(f, "  %s\n", ev.c_str());
  if (!telemetry.empty()) {
    std::fprintf(f, "telemetry (last %zu MI records of the final attempt):\n",
                 telemetry.size());
    for (const std::string& line : telemetry) {
      std::fprintf(f, "  %s\n", line.c_str());
    }
  }
  std::fclose(f);
  return path;
}

// Exponential backoff between attempts, polling the interrupt flag so
// Ctrl-C is not delayed by a sleeping worker.
void backoff_sleep(const SupervisorConfig& cfg, int failed_attempt) {
  double delay = cfg.backoff_base_sec;
  for (int i = 0; i < failed_attempt; ++i) delay *= 2.0;
  if (delay > cfg.backoff_max_sec) delay = cfg.backoff_max_sec;
  const int64_t deadline =
      steady_now_ns() + static_cast<int64_t>(delay * 1e9);
  while (steady_now_ns() < deadline && !interrupt_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void write_results_csv(const SupervisorConfig& cfg,
                       const std::vector<PointStatus>& statuses,
                       const std::vector<std::string>& payloads) {
  if (cfg.csv_path.empty()) return;
  std::FILE* f = std::fopen(cfg.csv_path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "supervisor: could not write %s\n",
                 cfg.csv_path.c_str());
    return;
  }
  std::fprintf(f, "point,status,attempts,result\n");
  for (size_t i = 0; i < statuses.size(); ++i) {
    const PointStatus& s = statuses[i];
    if (s.status == RunStatus::kSkipped) continue;  // unfinished: no row
    std::fprintf(f, "%lld,%s,%d,%s\n", static_cast<long long>(s.index),
                 run_status_name(s.status), s.attempts,
                 s.status == RunStatus::kOk ? payloads[i].c_str() : "");
  }
  std::fclose(f);
}

}  // namespace

ErasedSweep run_supervised_erased(std::vector<ErasedTask> tasks,
                                  const SupervisorConfig& cfg) {
  ErasedSweep sweep;
  sweep.payloads.resize(tasks.size());
  sweep.statuses.resize(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    sweep.statuses[i].index = static_cast<int64_t>(i);
    sweep.statuses[i].name = tasks[i].info.name;
  }

  // Resume: satisfy points the journal records as ok. Failed entries are
  // re-run — "finished" means a usable result, and a flaky failure may
  // pass on a fresh attempt.
  std::unordered_map<int64_t, const CheckpointEntry*> done;
  CheckpointLoadResult loaded;
  if (cfg.resume && !cfg.checkpoint_path.empty()) {
    loaded = load_checkpoint(cfg.checkpoint_path);
    if (loaded.found) {
      if (loaded.header.sweep != cfg.sweep_name ||
          loaded.header.points != static_cast<int64_t>(tasks.size())) {
        throw std::runtime_error(
            "checkpoint journal " + cfg.checkpoint_path + " is for sweep '" +
            loaded.header.sweep + "' with " +
            std::to_string(loaded.header.points) + " points, not '" +
            cfg.sweep_name + "' with " + std::to_string(tasks.size()) +
            " — refusing to resume");
      }
      for (const CheckpointEntry& e : loaded.entries) {
        if (e.status == "ok" && e.point >= 0 &&
            e.point < static_cast<int64_t>(tasks.size())) {
          done[e.point] = &e;
        }
      }
    }
  }

  CheckpointJournal journal;
  if (!cfg.checkpoint_path.empty()) {
    CheckpointHeader header{cfg.sweep_name,
                            static_cast<int64_t>(tasks.size())};
    if (!journal.open(cfg.checkpoint_path, header, /*keep_existing=*/cfg.resume)) {
      std::fprintf(stderr, "supervisor: could not open journal %s\n",
                   cfg.checkpoint_path.c_str());
    }
  }

  std::vector<std::function<int()>> workers;
  workers.reserve(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (const auto it = done.find(static_cast<int64_t>(i)); it != done.end()) {
      PointStatus& st = sweep.statuses[i];
      st.status = RunStatus::kOk;
      st.attempts = it->second->attempts;
      st.from_checkpoint = true;
      sweep.payloads[i] = it->second->payload;
      continue;
    }
    workers.push_back([i, &tasks, &sweep, &cfg, &journal]() -> int {
      const ErasedTask& task = tasks[i];
      PointStatus& st = sweep.statuses[i];
      std::vector<std::string> last_trace;
      std::vector<std::string> last_telemetry;
      for (int attempt = 0; attempt <= cfg.retries; ++attempt) {
        if (interrupt_requested()) {
          st.status = RunStatus::kSkipped;
          return 0;
        }
        RunContext ctx(attempt, cfg.run_timeout_sec, cfg.sim_timeout_sec,
                       cfg.bundle_trace_events);
        if (cfg.telemetry.enabled()) {
          ctx.set_telemetry(&cfg.telemetry,
                            sanitize_for_path(cfg.sweep_name) + "-point" +
                                std::to_string(i));
        }
        ++st.attempts;
        try {
          sweep.payloads[i] = task.run(ctx);
          st.status = RunStatus::kOk;
          st.error.clear();
          journal.append({st.index, "ok", st.attempts, sweep.payloads[i], ""});
          return 0;
        } catch (const InterruptedError&) {
          st.status = RunStatus::kSkipped;
          return 0;  // unfinished: resume re-runs it
        } catch (const RunTimeoutError& e) {
          st.status = RunStatus::kTimeout;
          st.error = e.what();
        } catch (const InvariantViolationError& e) {
          st.status = RunStatus::kInvariantViolation;
          st.error = e.what();
        } catch (const std::exception& e) {
          st.status = RunStatus::kError;
          st.error = e.what();
        } catch (...) {
          st.status = RunStatus::kError;
          st.error = "unknown exception";
        }
        last_trace = ctx.trace_events();
        last_telemetry = ctx.telemetry_tail();
        if (attempt < cfg.retries) backoff_sleep(cfg, attempt);
      }
      // Final failure: journal it and emit the repro bundle.
      st.bundle_path =
          write_repro_bundle(cfg, task, st, last_trace, last_telemetry);
      journal.append({st.index, run_status_name(st.status), st.attempts, "",
                      st.error});
      return 0;
    });
  }

  // The settled runner is the worker boundary: even an exception escaping
  // the per-attempt handling above (e.g. from journal I/O) degrades that
  // one point instead of aborting the pool.
  const std::vector<TaskOutcome<int>> outcomes =
      run_parallel_settled(std::move(workers), cfg.jobs);
  size_t w = 0;
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (sweep.statuses[i].from_checkpoint) continue;
    const TaskOutcome<int>& outcome = outcomes[w++];
    if (!outcome.ok() && sweep.statuses[i].status == RunStatus::kOk) {
      PointStatus& st = sweep.statuses[i];
      st.status = RunStatus::kError;
      try {
        std::rethrow_exception(outcome.error);
      } catch (const std::exception& e) {
        st.error = std::string("supervisor wrapper failed: ") + e.what();
      } catch (...) {
        st.error = "supervisor wrapper failed";
      }
    }
  }

  sweep.interrupted = interrupt_requested();
  journal.flush();
  if (journal.is_open() && !journal.healthy()) {
    std::fprintf(stderr,
                 "supervisor: journal %s lost writes (disk full?); "
                 "it is not safe to --resume from\n",
                 cfg.checkpoint_path.c_str());
  }
  write_results_csv(cfg, sweep.statuses, sweep.payloads);
  return sweep;
}

}  // namespace detail

}  // namespace proteus
