// Checkpoint journal for supervised sweeps (harness/supervisor.h).
//
// A sweep writes one JSONL line per *finished* point (success or final
// failure), flushed to disk immediately, so a crash or kill -9 can lose at
// most the line being written — never a completed point. `--resume=`
// reloads the journal, skips every point recorded as ok, and re-runs the
// rest; because results round-trip through the hex-float payload codec
// below, a resumed sweep reproduces the uninterrupted output
// byte-for-byte (pinned by tests/supervisor_test.cc).
//
// Line format (all fields always present, `point` is the sweep index):
//
//   {"point":12,"status":"ok","attempts":1,"payload":"0x1.8p+2 0x1p+0","error":""}
//
// The loader is deliberately tolerant: a truncated or malformed trailing
// line (the kill -9 case) is skipped, not fatal.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

namespace proteus {

struct CheckpointEntry {
  int64_t point = -1;
  std::string status;   // run_status_name() string, e.g. "ok", "timeout"
  int attempts = 0;
  std::string payload;  // codec-encoded result; empty for failures
  std::string error;    // failure message; empty for ok
};

// Identifies the sweep a journal belongs to; written as the first line and
// checked on resume so a journal from a different sweep (or a different
// grid size) cannot silently corrupt results.
struct CheckpointHeader {
  std::string sweep;
  int64_t points = 0;
};

// Append-mode journal writer. Thread-safe; every append is flushed.
class CheckpointJournal {
 public:
  CheckpointJournal() = default;
  ~CheckpointJournal() { close(); }
  CheckpointJournal(const CheckpointJournal&) = delete;
  CheckpointJournal& operator=(const CheckpointJournal&) = delete;

  // Opens `path` for appending (truncates first unless `keep_existing`).
  // Writes the header line when the file is empty. Returns false (and
  // stays closed) if the file cannot be opened.
  bool open(const std::string& path, const CheckpointHeader& header,
            bool keep_existing);
  bool is_open() const { return f_ != nullptr; }

  void append(const CheckpointEntry& entry);
  void flush();
  void close();

  // False once any append failed to reach the disk (short write/ENOSPC —
  // every append is flush-checked, not fire-and-forget). A sweep finishes
  // either way; the driver warns that the journal is not resumable.
  bool healthy() const;

 private:
  mutable std::mutex mu_;
  std::FILE* f_ = nullptr;
  bool healthy_ = true;
};

struct CheckpointLoadResult {
  bool found = false;  // file existed and had a readable header
  CheckpointHeader header;
  std::vector<CheckpointEntry> entries;
};

// Loads a journal, skipping unparsable (truncated) lines. A missing file
// yields found == false, which resume treats as "nothing done yet".
CheckpointLoadResult load_checkpoint(const std::string& path);

// ---- Result payload codec ---------------------------------------------
//
// Doubles are serialized as C hex floats ("%a"), which round-trip exactly
// — the foundation of the byte-identical resume guarantee.

std::string encode_doubles(const std::vector<double>& values);
std::vector<double> decode_doubles(const std::string& payload);

}  // namespace proteus
