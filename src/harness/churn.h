// ChurnDriver: seeded Poisson flow arrival/departure churn over a
// Scenario — the "CDN edge under load" workload generator.
//
// Each arm of a kCdnEdge scenario runs its own independent arrival
// process on its own simulator and RNG stream, so churn scales across
// shard parts with zero cross-part coordination and the spawn/complete
// sequence on every arm is a pure function of (seed, arm) — byte
// identical for every --shards value. On single-part topologies the
// driver degrades to one process on the scenario's simulator.
//
// Arrivals draw (gap, class, size) from the arm's RNG on EVERY arrival,
// including arrivals rejected by the max_concurrent cap — capping load
// must not desynchronize the RNG stream between runs that shed
// different amounts of work (e.g. different cap settings under the same
// seed share every accepted flow's size).
//
// Flow ids come from Scenario::allocate_flow_id_on and are released
// back on completion, so long churn runs recycle a bounded id range and
// stay on the dense flow-demux tables (sim/topology.h).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "harness/scenario.h"
#include "sim/life_tag.h"
#include "stats/rng.h"

namespace proteus {

struct ChurnConfig {
  // Aggregate arrival rate across the whole scenario; split evenly
  // across arms (each arm's process runs at rate / arm_count).
  double arrivals_per_sec = 1000.0;
  // Mean flow size for the web class; other classes scale it (video 8x,
  // bulk 32x, scavenger 16x). Sizes are exponential, floored at one MTU.
  double mean_size_kb = 256.0;
  // Aggregate live-flow cap; arrivals past it are counted as skipped
  // (their RNG draws still happen). Split evenly across arms.
  int64_t max_concurrent = 10'000;
  // Workload mix weights (normalized internally):
  // web -> cubic, video -> bbr, bulk -> proteus-p, scavenger -> proteus-s.
  double mix_web = 0.4;
  double mix_video = 0.3;
  double mix_bulk = 0.2;
  double mix_scavenger = 0.1;
  TimeNs start = 0;
  TimeNs stop = kTimeInfinite;  // no arrivals at or after this time
  // Sender slot-ring hint for churn flows (storage only; see Sender).
  int window_slots = 16;
};

struct ChurnStats {
  int64_t spawned = 0;
  int64_t completed = 0;
  int64_t skipped = 0;  // arrivals rejected by max_concurrent
  int64_t concurrent = 0;
  int64_t peak_concurrent = 0;
};

class ChurnDriver {
 public:
  // The driver must be destroyed before `scenario` (it owns Flows bound
  // to the scenario's simulators and networks).
  ChurnDriver(Scenario& scenario, ChurnConfig cfg);
  ~ChurnDriver();

  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;

  // Aggregated across arms. Safe to call whenever no sharded run_until
  // is in flight (between run_until chunks or after the run).
  ChurnStats stats() const;

 private:
  struct ArmProc {
    int arm = 0;
    Simulator* sim = nullptr;
    Rng rng;
    double mean_gap_ns = 0.0;
    int64_t cap = 0;
    std::unordered_map<FlowId, std::unique_ptr<Flow>> live;
    ChurnStats stats;
    // Guards this arm's scheduled callbacks after dtor. Per-arm (not one
    // driver-wide tag) because LifeTag's refcount is non-atomic: every
    // Ref of this tag is only ever copied/dropped on the thread that
    // owns this arm's shard part, so sharded runs stay race-free without
    // paying for atomics on the serial hot path.
    LifeTag alive;
    ArmProc(int a, Simulator* s, uint64_t seed) : arm(a), sim(s), rng(seed) {}
  };

  void schedule_next(int arm);
  void arrive(int arm);
  void remove(int arm, FlowId id);

  Scenario* scenario_;
  ChurnConfig cfg_;
  double norm_web_, norm_video_, norm_bulk_;  // cumulative mix thresholds
  std::vector<std::unique_ptr<ArmProc>> arms_;
};

}  // namespace proteus
