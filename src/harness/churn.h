// ChurnDriver: seeded Poisson flow arrival/departure churn over a
// Scenario — the "CDN edge under load" workload generator.
//
// Each arm of a kCdnEdge scenario runs its own independent arrival
// process on its own simulator and RNG stream, so churn scales across
// shard parts with zero cross-part coordination and the spawn/complete
// sequence on every arm is a pure function of (seed, arm) — byte
// identical for every --shards value. On single-part topologies the
// driver degrades to one process on the scenario's simulator.
//
// Arrivals draw (gap, class, size) from the arm's RNG on EVERY arrival,
// including arrivals rejected by the max_concurrent cap — capping load
// must not desynchronize the RNG stream between runs that shed
// different amounts of work (e.g. different cap settings under the same
// seed share every accepted flow's size).
//
// Flow ids come from Scenario::allocate_flow_id_on and are released
// back on completion, so long churn runs recycle a bounded id range and
// stay on the dense flow-demux tables (sim/topology.h).
//
// Pooled flow arenas: a completed flow is not destroyed — it is retired
// into a per-(arm, class) freelist and the next arrival of that class
// recycles it in place (Scenario::recycle_flow), byte-identical to a
// fresh construction. At a steady concurrency cap the churn path
// therefore performs zero heap allocation per arrival/teardown for
// protocols whose controllers support in-place reset (see
// CongestionController::reset_for_reuse); others fall back to
// destroy + construct transparently.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "harness/scenario.h"
#include "sim/life_tag.h"
#include "stats/rng.h"

namespace proteus {

struct ChurnConfig {
  // Aggregate arrival rate across the whole scenario; split evenly
  // across arms (each arm's process runs at rate / arm_count).
  double arrivals_per_sec = 1000.0;
  // Mean flow size for the web class; other classes scale it (video 8x,
  // bulk 32x, scavenger 16x). Sizes are exponential, floored at one MTU.
  double mean_size_kb = 256.0;
  // Aggregate live-flow cap; arrivals past it are counted as skipped
  // (their RNG draws still happen). Split evenly across arms.
  int64_t max_concurrent = 10'000;
  // Workload mix weights (normalized internally):
  // web -> cubic, video -> bbr, bulk -> proteus-p, scavenger -> proteus-s.
  double mix_web = 0.4;
  double mix_video = 0.3;
  double mix_bulk = 0.2;
  double mix_scavenger = 0.1;
  TimeNs start = 0;
  TimeNs stop = kTimeInfinite;  // no arrivals at or after this time
  // Sender slot-ring hint for churn flows (storage only; see Sender).
  int window_slots = 16;
  // Pre-construct this many retired flows per (arm, class) into the
  // arenas at driver construction, so the recycle path never misses
  // (a miss constructs a flow mid-run the first time a class's live
  // count reaches a new high-water). Sized at cap / arm_count it makes
  // steady-state churn strictly allocation-free. The prewarm flows'
  // expired start events add a handful of no-op pops to the run, so the
  // default (0) keeps existing event streams byte-identical.
  int prewarm_per_class = 0;
};

struct ChurnStats {
  int64_t spawned = 0;
  int64_t completed = 0;
  int64_t skipped = 0;  // arrivals rejected by max_concurrent
  int64_t concurrent = 0;
  int64_t peak_concurrent = 0;
  // Arrivals served by re-arming a pooled flow instead of constructing
  // one (subset of spawned).
  int64_t recycled = 0;
};

class ChurnDriver {
 public:
  // The driver must be destroyed before `scenario` (it owns Flows bound
  // to the scenario's simulators and networks).
  ChurnDriver(Scenario& scenario, ChurnConfig cfg);
  ~ChurnDriver();

  ChurnDriver(const ChurnDriver&) = delete;
  ChurnDriver& operator=(const ChurnDriver&) = delete;

  // Aggregated across arms. Safe to call whenever no sharded run_until
  // is in flight (between run_until chunks or after the run).
  ChurnStats stats() const;

 private:
  static constexpr int kClasses = 4;

  // Per-live-slot completion context. The sender's on_all_delivered
  // std::function captures a single SlotCtx* — 8 bytes, inside libstdc++'s
  // 16-byte small-object buffer — so installing the completion hook never
  // heap-allocates. Contexts live in a vector<unique_ptr> so their
  // addresses survive live-table growth. An id maps to a fixed slot
  // (ids are homed per arm with stride arm_count), so a context's id is
  // set once and stays valid across every incarnation of its slot.
  struct SlotCtx {
    ChurnDriver* driver;
    int32_t arm;
    FlowId id;
  };

  // SoA live table, indexed by slot = (id - 1 - arm) / arm_count. The
  // IdAllocator recycles the smallest free id first, so slots stay dense
  // in [0, cap) and the table replaces the unordered_map's node chase
  // with one vector index on both hot paths.
  struct LiveEntry {
    std::unique_ptr<Flow> flow;
    int8_t cls = -1;  // < 0 when the slot is free
  };

  struct ArmProc {
    int arm = 0;
    Simulator* sim = nullptr;
    Rng rng;
    double mean_gap_ns = 0.0;
    int64_t cap = 0;
    std::vector<LiveEntry> live;                  // slot-indexed
    std::vector<std::unique_ptr<SlotCtx>> ctxs;   // slot-indexed, stable
    std::vector<std::unique_ptr<Flow>> pool[kClasses];  // retired flows
    int64_t live_count = 0;
    ChurnStats stats;
    // Guards this arm's scheduled callbacks after dtor. Per-arm (not one
    // driver-wide tag) because LifeTag's refcount is non-atomic: every
    // Ref of this tag is only ever copied/dropped on the thread that
    // owns this arm's shard part, so sharded runs stay race-free without
    // paying for atomics on the serial hot path.
    LifeTag alive;
    ArmProc(int a, Simulator* s, uint64_t seed) : arm(a), sim(s), rng(seed) {}
  };

  int slot_of(FlowId id, int arm) const {
    return static_cast<int>((id - 1 - static_cast<FlowId>(arm)) /
                            static_cast<FlowId>(arms_.size()));
  }

  void schedule_next(int arm);
  void arrive(int arm);
  void on_flow_complete(SlotCtx& ctx);
  void remove(int arm, FlowId id);

  Scenario* scenario_;
  ChurnConfig cfg_;
  double norm_web_, norm_video_, norm_bulk_;  // cumulative mix thresholds
  std::vector<std::unique_ptr<ArmProc>> arms_;
};

}  // namespace proteus
