// Command-line parsing for the `proteus_sim` driver (tools/).
//
// Grammar (all flags optional):
//   --bw=<Mbps> --rtt=<ms> --buffer=<bytes> --loss=<fraction>
//   --duration=<sec> --warmup=<sec> --seed=<n>
//   --flows=<proto[@start_sec][,proto[@start_sec]...]>
//   --wifi                 (wireless noise + ACK aggregation)
//   --trace=<path.csv>     (per-second per-flow throughput CSV)
//   --rtt-trace=<path.csv> (per-ack RTT CSV)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/scenario.h"

namespace proteus {

struct CliFlowSpec {
  std::string protocol;
  double start_sec = 0.0;
};

struct CliOptions {
  ScenarioConfig scenario;
  double duration_sec = 60.0;
  double warmup_sec = 20.0;
  std::vector<CliFlowSpec> flows;
  std::string trace_path;      // empty = no trace
  std::string rtt_trace_path;  // empty = no trace
  bool wifi = false;
};

struct CliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  CliOptions options;
};

// Parses argv-style arguments (excluding argv[0]).
CliParseResult parse_cli(const std::vector<std::string>& args);

// One-line usage string for --help / errors.
std::string cli_usage();

}  // namespace proteus
