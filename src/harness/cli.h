// Command-line parsing for the `proteus_sim` driver (tools/).
//
// Grammar (all flags optional):
//   --bw=<Mbps> --rtt=<ms> --buffer=<bytes> --loss=<fraction>
//   --duration=<sec> --warmup=<sec> --seed=<n>
//   --flows=<proto[@start_sec][,proto[@start_sec]...]>
//   --wifi                 (wireless noise + ACK aggregation)
//   --jobs=<n>             (worker threads for sweep parallelism)
//   --trace=<path.csv>     (per-second per-flow throughput CSV)
//   --rtt-trace=<path.csv> (per-ack RTT CSV)
//   --link-stats=<path.csv> (bottleneck counters incl. fault counters)
//   --faults=<spec>        (fault schedule; see harness/fault_spec.h)
//   --topology=<kind>[:arms=N][:edge-bw=Mbps][:spread=X]
//                          (network shape: dumbbell|parkinglot|fanin|star|cdn)
//   --shards=<n>           (worker threads for the sharded cdn topology;
//                           digests are identical for every value)
//   --churn=rate=<per-sec>[,size=<KB>][,max=<n>][,mix=<w:v:b:s>]
//                          (Poisson flow arrival/departure churn)
//   --retries=<n>          (supervisor: extra attempts for a failed run)
//   --run-timeout=<sec>    (supervisor: wall-clock watchdog per attempt)
//   --sim-timeout=<sec>    (supervisor: simulated-time watchdog per attempt)
//   --checkpoint=<journal> (supervisor: write a fresh JSONL point journal)
//   --resume=<journal>     (supervisor: load journal, skip finished points)
//   --bundle-dir=<dir>     (supervisor: repro bundles for failed runs)
//   --telemetry=<dir>      (per-MI flow telemetry JSONL/CSV exports)
//   --telemetry-every=<n>  (record every n-th MI; default 1)
//   --profile              (phase profiler summary after the run)
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/churn.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"

namespace proteus {

struct CliFlowSpec {
  std::string protocol;
  double start_sec = 0.0;
};

struct CliOptions {
  ScenarioConfig scenario;
  double duration_sec = 60.0;
  double warmup_sec = 20.0;
  std::vector<CliFlowSpec> flows;
  std::string trace_path;       // empty = no trace
  std::string rtt_trace_path;   // empty = no trace
  std::string link_stats_path;  // empty = no link-stats CSV
  bool wifi = false;
  // Worker threads for parallel sweeps (run_parallel). 0 means "use
  // default_job_count()", i.e. every hardware thread.
  int jobs = 0;
  // Opt-in phase profiler (--profile): ns timers per pipeline phase,
  // printed as a summary table after the run.
  bool profile = false;
  // Watchdog / retry / checkpoint settings (harness/supervisor.h). The
  // jobs field above is authoritative; supervisor.jobs mirrors it.
  // supervisor.telemetry carries the --telemetry/--telemetry-every flags.
  SupervisorConfig supervisor;
  // Poisson arrival/departure churn (--churn=...); nullopt = none.
  std::optional<ChurnConfig> churn;
};

struct CliParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  CliOptions options;
};

// Parses argv-style arguments (excluding argv[0]).
CliParseResult parse_cli(const std::vector<std::string>& args);

// Recognizes a `--jobs=N` argument. Returns true (and sets `jobs`) when
// `arg` is a well-formed jobs flag; returns false with `error` set when it
// is a malformed jobs flag, and false with `error` empty when `arg` is
// some other argument entirely. Shared by parse_cli and the bench
// binaries, which accept only this flag.
bool parse_jobs_flag(const std::string& arg, int& jobs, std::string& error);

// Recognizes the shared supervisor flags (--retries=, --run-timeout=,
// --sim-timeout=, --checkpoint=, --resume=, --bundle-dir=). Same contract
// as parse_jobs_flag: true when `arg` is a well-formed supervisor flag,
// false with `error` set when malformed, false with `error` empty when it
// is some other argument. Shared by parse_cli and the bench binaries.
bool parse_supervisor_flag(const std::string& arg, SupervisorConfig& cfg,
                           std::string& error);

// Recognizes the telemetry flags (--telemetry=<dir>, --telemetry-every=<n>).
// Same contract as parse_jobs_flag. Shared by parse_cli and the bench
// binaries.
bool parse_telemetry_flag(const std::string& arg, TelemetryConfig& cfg,
                          std::string& error);

// Recognizes a `--topology=<kind>[:arms=N][:edge-bw=Mbps][:spread=X]`
// argument selecting one of the registered shapes (sim/topology.h):
// dumbbell (default), parkinglot, fanin, star. Same contract as
// parse_jobs_flag. Shared by parse_cli and the bench binaries.
bool parse_topology_flag(const std::string& arg, TopologyParams& params,
                         std::string& error);

// Recognizes a `--shards=N` argument (worker threads for the sharded
// window-barrier engine; kCdnEdge only changes speed, never results).
// Same contract as parse_jobs_flag. Shared with the bench binaries.
bool parse_shards_flag(const std::string& arg, int& shards,
                       std::string& error);

// Recognizes a `--churn=rate=R[,size=KB][,max=N][,mix=w:v:b:s]`
// argument. Same contract as parse_jobs_flag.
bool parse_churn_flag(const std::string& arg,
                      std::optional<ChurnConfig>& churn, std::string& error);

// One-line usage string for --help / errors.
std::string cli_usage();

}  // namespace proteus
