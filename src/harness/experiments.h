// Reusable experiment routines shared by the bench binaries and the
// integration tests. Each mirrors a measurement methodology from the
// paper's evaluation (section 6).
#pragma once

#include <string>
#include <vector>

#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"

namespace proteus {

// Every routine below takes an optional supervisor RunContext. When one
// is passed, the simulation advances under the watchdogs (wall-clock and
// simulated-time), cooperates with SIGINT/SIGTERM, and the simulation
// invariants are checked at the end of the run — a violation throws
// InvariantViolationError, which the supervisor turns into a per-point
// failure status. A null context runs unsupervised, exactly as before.

// ---- Single-flow performance (Figs 3, 4, 9, 15, 16, 21) --------------

struct SingleFlowResult {
  double throughput_mbps = 0.0;
  double utilization = 0.0;          // throughput / capacity
  double p95_rtt_ms = 0.0;
  double inflation_ratio_95 = 0.0;   // (p95 RTT - base) / (buffer / bw)
};

SingleFlowResult run_single_flow(const std::string& protocol,
                                 const ScenarioConfig& cfg,
                                 TimeNs duration = from_sec(100),
                                 TimeNs warmup = from_sec(20),
                                 RunContext* ctx = nullptr);

// Checkpoint-payload adapters (harness/supervisor.h codec_from).
std::vector<double> to_doubles(const SingleFlowResult& r);
SingleFlowResult single_flow_from_doubles(const std::vector<double>& v);

// ---- Scavenger vs primary (Figs 6, 7, 8, 10, 19, 20, 22) -------------

struct PairResult {
  double primary_alone_mbps = 0.0;
  double primary_with_mbps = 0.0;
  double scavenger_mbps = 0.0;
  double primary_ratio = 0.0;  // with-scavenger / alone
  double utilization = 0.0;    // joint throughput / capacity
  double primary_alone_p95_rtt_ms = 0.0;
  double primary_with_p95_rtt_ms = 0.0;
  double rtt_ratio = 0.0;  // with / alone (Fig 7)
};

// Runs the primary alone, then primary + scavenger (scavenger joins
// `scavenger_delay` after the primary), measuring over the steady window.
PairResult run_pair(const std::string& primary, const std::string& scavenger,
                    const ScenarioConfig& cfg,
                    TimeNs duration = from_sec(120),
                    TimeNs warmup = from_sec(30),
                    TimeNs scavenger_delay = from_sec(5),
                    RunContext* ctx = nullptr);

std::vector<double> to_doubles(const PairResult& r);
PairResult pair_from_doubles(const std::vector<double>& v);

// ---- Homogeneous multi-flow fairness (Figs 5, 17, 18) ----------------

struct FairnessResult {
  double jain = 0.0;
  std::vector<double> flow_mbps;
};

// Paper methodology: n flows on a 20n Mbps / 30 ms / 300n KB bottleneck,
// each started 20 s after the previous, measured for 200 s after the last
// start.
FairnessResult run_multiflow_fairness(const std::string& protocol, int n,
                                      uint64_t seed = 1,
                                      RunContext* ctx = nullptr);

std::vector<double> to_doubles(const FairnessResult& r);
FairnessResult fairness_from_doubles(const std::vector<double>& v);

// Per-flow Mbps time series (1-second bins) for throughput-vs-time plots
// (Figs 14, 18). Flow i starts at i * stagger.
std::vector<std::vector<double>> run_time_series(
    const std::vector<std::string>& protocols, const ScenarioConfig& cfg,
    TimeNs stagger, TimeNs duration);

// ---- Parallel sweeps --------------------------------------------------
//
// The routines above are independent given distinct ScenarioConfigs, so
// sweeps over them parallelize trivially: build one closure per data
// point and hand the vector to run_parallel() (harness/parallel_runner.h,
// re-exported here). Results come back in submission order and are
// bit-identical to a serial loop for fixed seeds; see
// tests/parallel_runner_test.cc for the pinned guarantee.
//
// For long or hostile sweeps, prefer run_supervised()
// (harness/supervisor.h, re-exported here): same determinism on the happy
// path, plus watchdog timeouts, retries with backoff, checkpoint/resume,
// and repro bundles for points that finally fail.

}  // namespace proteus
