// Run supervisor: watchdogs, retries, checkpoint/resume, and repro
// bundles for sweep execution.
//
// run_parallel() (parallel_runner.h) gives a sweep raw throughput but no
// fault tolerance: one hanging or crashing point used to take the whole
// bench with it. run_supervised() wraps every sweep point with
//
//   * a wall-clock and a simulated-time watchdog (cooperative: tasks poll
//     their RunContext, and supervised_run_until() polls for any task
//     built on Scenario),
//   * bounded retries with exponential backoff, each retry on a fresh
//     deterministic RNG sub-stream (RunContext::attempt_seed),
//   * exception capture at the worker boundary — a failed point becomes a
//     per-point status, never a terminated pool,
//   * a JSONL checkpoint journal (harness/checkpoint.h) so an interrupted
//     or killed sweep resumes with --resume=<journal>, skipping finished
//     points and reproducing the uninterrupted CSV byte-for-byte,
//   * a self-contained repro bundle on final failure: exact CLI line,
//     seed(s), scenario + fault spec, and the last N trace events.
//
// The first attempt of every point runs with the caller's exact seed, so
// a supervised sweep with no failures is bit-identical to the
// unsupervised run_parallel() sweep it replaces.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "harness/checkpoint.h"
#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "telemetry/telemetry.h"

namespace proteus {

// ---- Statuses and errors ----------------------------------------------

enum class RunStatus {
  kOk,
  kError,               // task threw (anything but the watchdog/invariants)
  kTimeout,             // wall-clock or simulated-time watchdog fired
  kInvariantViolation,  // check_invariants_or_throw() tripped
  kSkipped,             // never ran (interrupt arrived first)
};

const char* run_status_name(RunStatus status);          // "ok", "timeout", ...
RunStatus run_status_from_name(const std::string& name);  // inverse

// Thrown by RunContext::poll when a watchdog budget is exhausted.
struct RunTimeoutError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Thrown by RunContext::poll when the process-wide interrupt flag is set
// (SIGINT/SIGTERM). The supervisor marks the point skipped, not failed.
struct InterruptedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Thrown by check_invariants_or_throw on a violated simulation invariant.
struct InvariantViolationError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// Runs check_invariants(scenario) and throws InvariantViolationError with
// the report text on failure, so a broken simulation surfaces as a
// per-run failure status instead of a process-level abort.
void check_invariants_or_throw(const Scenario& scenario);

// ---- Interrupt handling -----------------------------------------------

// Installs SIGINT/SIGTERM handlers that set the process-wide interrupt
// flag (a second signal force-exits). Workers notice at their next poll,
// the journal is already flushed per line, and the caller writes any
// partial CSV before exiting — Ctrl-C never loses completed points.
void install_interrupt_handler();
bool interrupt_requested();
// Programmatic equivalents of the signal, for tests.
void request_interrupt();
void clear_interrupt();

// ---- Per-attempt context ----------------------------------------------

// Handed to each task attempt. Single-threaded: owned by the worker
// running the attempt.
class RunContext {
 public:
  // timeout args <= 0 disable that watchdog.
  RunContext(int attempt, double wall_timeout_sec, double sim_timeout_sec,
             int trace_capacity);

  int attempt() const { return attempt_; }

  // Deterministic per-attempt seed: `base` itself on the first attempt
  // (bit-identical to an unsupervised run), an independent mixed
  // sub-stream on every retry.
  uint64_t attempt_seed(uint64_t base) const;

  // Cooperative watchdog/cancellation poll. Throws RunTimeoutError when
  // the wall-clock or simulated-time budget is exhausted and
  // InterruptedError when the process-wide interrupt flag is set. Pass
  // the current simulated time when available (0 otherwise).
  void poll(TimeNs sim_now = 0);

  // True when poll() would throw for wall-clock/interrupt reasons; lets
  // loops wind down without exceptions.
  bool cancelled() const;

  // Appends an event to the bounded trace ring kept for repro bundles.
  void trace(std::string event);
  const std::vector<std::string>& trace_events() const { return trace_; }

  // Telemetry attach point. The supervisor (or a driver like proteus_sim)
  // sets the config + run label before the attempt executes; each
  // FlowTelemetrySession reads them to name its export files and, at
  // teardown, pushes its last JSONL records here so a finally-failed
  // point carries its telemetry tail into the .repro bundle.
  void set_telemetry(const TelemetryConfig* cfg, std::string run_label) {
    telemetry_ = cfg;
    run_label_ = std::move(run_label);
  }
  const TelemetryConfig* telemetry() const { return telemetry_; }
  const std::string& run_label() const { return run_label_; }
  void add_telemetry_tail(std::string line);
  const std::vector<std::string>& telemetry_tail() const {
    return telemetry_tail_;
  }

  TimeNs sim_deadline() const { return sim_deadline_; }

 private:
  int attempt_;
  int64_t wall_deadline_ns_;  // steady-clock ns since epoch; max = none
  TimeNs sim_deadline_;       // kTimeInfinite = none
  size_t trace_capacity_;
  size_t trace_start_ = 0;  // ring: logical first element within trace_
  std::vector<std::string> trace_;
  const TelemetryConfig* telemetry_ = nullptr;
  std::string run_label_;
  std::vector<std::string> telemetry_tail_;  // bounded, newest kept
};

// Advances `scenario` to simulated time `until` in chunks, polling the
// context between chunks so the watchdogs and interrupts fire promptly.
// Also records coarse progress events in the context's trace ring. A null
// context degenerates to scenario.run_until(until).
void supervised_run_until(Scenario& scenario, TimeNs until, RunContext* ctx);

// ---- Sweep description -------------------------------------------------

struct SupervisorConfig {
  int jobs = 0;                   // run_parallel worker count (0 = default)
  int retries = 0;                // extra attempts after the first failure
  double run_timeout_sec = 0.0;   // wall-clock watchdog per attempt (0 = off)
  double sim_timeout_sec = 0.0;   // simulated-time watchdog per attempt (0 = off)
  double backoff_base_sec = 0.1;  // first retry delay; doubles per retry
  double backoff_max_sec = 5.0;
  std::string sweep_name;         // journal identity; checked on resume
  std::string checkpoint_path;    // JSONL journal ("" = no journal)
  bool resume = false;            // load the journal first, skip ok points
  std::string csv_path;           // results CSV ("" = none)
  std::string bundle_dir;         // repro bundles on final failure ("" = off)
  int bundle_trace_events = 50;   // trace-ring capacity per attempt
  TelemetryConfig telemetry;      // per-MI flow telemetry (off by default)
};

// Repro-bundle metadata describing one sweep point.
struct RunInfo {
  std::string name;      // human label, e.g. "buffer=1500 proto=cubic"
  std::string cli;       // exact command line that re-runs this point
  uint64_t seed = 0;     // base seed (attempt 0)
  std::string scenario;  // describe_scenario(cfg)
  std::string faults;    // format_faults(cfg.faults)
};

// One-line summary of a ScenarioConfig for bundles and manifests.
std::string describe_scenario(const ScenarioConfig& cfg);

// Builds a RunInfo from a scenario config (seed/scenario/faults filled).
RunInfo run_info(std::string name, const ScenarioConfig& cfg);

template <typename T>
struct SupervisedTask {
  std::function<T(RunContext&)> run;
  RunInfo info;
};

// ---- Results -----------------------------------------------------------

struct PointStatus {
  int64_t index = 0;
  std::string name;  // RunInfo::name of the point
  RunStatus status = RunStatus::kSkipped;
  int attempts = 0;
  bool from_checkpoint = false;  // satisfied by the resume journal
  std::string error;             // failure message (final attempt)
  std::string bundle_path;       // repro bundle, when one was written
};

// Human-readable failure manifest ("" when nothing failed or was skipped).
std::string failure_manifest(const std::vector<PointStatus>& statuses);
// 0 = all ok; 130 = interrupted; 3 = at least one point failed.
int supervised_exit_code(const std::vector<PointStatus>& statuses,
                         bool interrupted);

template <typename T>
struct SupervisedSweep {
  std::vector<T> results;  // default-constructed for failed/skipped points
  std::vector<PointStatus> statuses;
  bool interrupted = false;

  size_t failures() const {
    size_t n = 0;
    for (const PointStatus& s : statuses) {
      if (s.status != RunStatus::kOk && s.status != RunStatus::kSkipped) ++n;
    }
    return n;
  }
  bool ok() const { return failures() == 0 && !interrupted; }
  std::string manifest() const { return failure_manifest(statuses); }
  int exit_code() const { return supervised_exit_code(statuses, interrupted); }
};

// Encodes a result to the checkpoint payload string and back. decode is
// only called on payloads produced by encode (possibly in a previous
// process, via the journal).
template <typename T>
struct ResultCodec {
  std::function<std::string(const T&)> encode;
  std::function<T(const std::string&)> decode;
};

inline ResultCodec<double> scalar_codec() {
  return {[](const double& v) { return encode_doubles({v}); },
          [](const std::string& s) {
            const std::vector<double> v = decode_doubles(s);
            return v.empty() ? 0.0 : v[0];
          }};
}

inline ResultCodec<std::vector<double>> vector_codec() {
  return {[](const std::vector<double>& v) { return encode_doubles(v); },
          [](const std::string& s) { return decode_doubles(s); }};
}

// Codec for any T convertible to/from a flat vector<double>.
template <typename T>
ResultCodec<T> codec_from(std::function<std::vector<double>(const T&)> to,
                          std::function<T(const std::vector<double>&)> from) {
  return {[to = std::move(to)](const T& v) { return encode_doubles(to(v)); },
          [from = std::move(from)](const std::string& s) {
            return from(decode_doubles(s));
          }};
}

// ---- Engine ------------------------------------------------------------

namespace detail {

struct ErasedTask {
  std::function<std::string(RunContext&)> run;  // returns encoded payload
  RunInfo info;
};

struct ErasedSweep {
  std::vector<std::string> payloads;
  std::vector<PointStatus> statuses;
  bool interrupted = false;
};

// The type-erased core; see supervisor.cc. Throws std::runtime_error on a
// resume-journal identity mismatch (wrong sweep name / point count).
ErasedSweep run_supervised_erased(std::vector<ErasedTask> tasks,
                                  const SupervisorConfig& cfg);

}  // namespace detail

// Runs the sweep under supervision. Results decode from payloads — both
// fresh and journal-resumed points go through the same encode/decode
// round trip, which is what makes resumed output bit-identical.
template <typename T>
SupervisedSweep<T> run_supervised(std::vector<SupervisedTask<T>> tasks,
                                  const SupervisorConfig& cfg,
                                  const ResultCodec<T>& codec) {
  std::vector<detail::ErasedTask> erased;
  erased.reserve(tasks.size());
  for (SupervisedTask<T>& t : tasks) {
    erased.push_back({[fn = std::move(t.run),
                       enc = codec.encode](RunContext& ctx) { return enc(fn(ctx)); },
                      std::move(t.info)});
  }
  detail::ErasedSweep base =
      detail::run_supervised_erased(std::move(erased), cfg);

  SupervisedSweep<T> out;
  out.statuses = std::move(base.statuses);
  out.interrupted = base.interrupted;
  out.results.resize(base.payloads.size());
  for (size_t i = 0; i < base.payloads.size(); ++i) {
    if (out.statuses[i].status == RunStatus::kOk) {
      out.results[i] = codec.decode(base.payloads[i]);
    }
  }
  return out;
}

}  // namespace proteus
