#include "harness/wifi_paths.h"

namespace proteus {

std::vector<WifiPath> wifi_path_set() {
  std::vector<WifiPath> paths;
  // Per-location wireless harshness. Location 0/1: residential apartments
  // (moderate noise); 2/3: busy restaurants (harsher MAC contention).
  struct LocationProfile {
    double jitter_ms;
    double spike_prob;
    double spike_scale_ms;
    double agg_interval_ms;  // mean gap between MAC block events
    double agg_duration_ms;
    double uplink_mbps;
  };
  // Calibrated to the paper's observation of real WiFi: "typical RTT
  // deviation up to 5 ms, occasional spikes tens of ms higher".
  const LocationProfile locations[4] = {
      {0.8, 0.002, 6.0, 400.0, 5.0, 40.0},
      {1.2, 0.004, 8.0, 300.0, 6.0, 30.0},
      {2.0, 0.008, 10.0, 200.0, 8.0, 22.0},
      {3.0, 0.012, 12.0, 150.0, 10.0, 16.0},
  };
  // Region base RTTs (ms): nearby to intercontinental, mirroring the AWS
  // region spread used in the paper.
  const double region_rtt_ms[16] = {18,  28,  38,  48,  60,  72,  85,  95,
                                    110, 125, 140, 160, 180, 205, 230, 260};

  for (int loc = 0; loc < 4; ++loc) {
    for (int region = 0; region < 16; ++region) {
      const LocationProfile& p = locations[loc];
      WifiPath path;
      path.location = loc;
      path.region = region;

      ScenarioConfig& cfg = path.scenario;
      cfg.bandwidth_mbps = p.uplink_mbps;
      cfg.rtt_ms = region_rtt_ms[region];
      // Home/venue router buffers: a few hundred ms at the uplink rate.
      cfg.buffer_bytes = static_cast<int64_t>(
          p.uplink_mbps * 1e6 / 8.0 * 0.25);  // 250 ms of buffering
            // Real WiFi MACs hide most frame loss behind link-layer
      // retransmission; the end-to-end artifact is the delay spike, not a
      // drop.
      cfg.random_loss = 0.0;

      cfg.wifi_noise = true;
      cfg.wifi.jitter_stddev = from_ms(p.jitter_ms);
      cfg.wifi.spike_probability = p.spike_prob;
      cfg.wifi.spike_scale = from_ms(p.spike_scale_ms);

      cfg.markov_rate = true;
      cfg.markov.multipliers = {1.0, 0.9, 0.75};
      cfg.markov.mean_dwell = from_ms(500.0);

      cfg.ack_aggregation = true;
      cfg.ack_agg.mean_block_interval = from_ms(p.agg_interval_ms);
      cfg.ack_agg.mean_block_duration = from_ms(p.agg_duration_ms);

      cfg.seed = 0xf1f1ULL * 131 + static_cast<uint64_t>(loc * 16 + region);
      paths.push_back(path);
    }
  }
  return paths;
}

}  // namespace proteus
