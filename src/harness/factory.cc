#include "harness/factory.h"

#include <stdexcept>

#include "cc/bbr.h"
#include "cc/copa.h"
#include "cc/cubic.h"
#include "cc/ledbat.h"

namespace proteus {

std::unique_ptr<CongestionController> make_protocol(
    const std::string& name, uint64_t seed,
    std::shared_ptr<HybridThresholdState> threshold,
    const ProtocolTuning* tuning) {
  const ProtocolTuning defaults;
  if (tuning == nullptr) tuning = &defaults;
  auto proteus_config = [&](uint64_t s) {
    PccSender::Config cfg = default_proteus_config(s);
    cfg.noise = tuning->noise;
    return cfg;
  };
  if (name == "cubic") return std::make_unique<CubicSender>();
  if (name == "bbr") return std::make_unique<BbrSender>();
  if (name == "bbr-s") {
    BbrSender::Config cfg;
    cfg.scavenger = true;
    return std::make_unique<BbrSender>(cfg);
  }
  if (name == "copa") return std::make_unique<CopaSender>();
  if (name == "ledbat") return std::make_unique<LedbatSender>();
  if (name == "ledbat-25") {
    LedbatSender::Config cfg;
    cfg.target = from_ms(25);
    return std::make_unique<LedbatSender>(cfg);
  }
  if (name == "vivace") return make_vivace(seed);
  if (name == "allegro") {
    // Allegro predates Vivace's noise machinery: plain 2-pair probing.
    PccSender::Config cfg = default_vivace_config(seed);
    cfg.noise.fixed_gradient_tolerance = 0.0;  // latency-blind anyway
    return std::make_unique<PccSender>(std::make_shared<AllegroUtility>(),
                                       cfg, "allegro");
  }
  if (name == "proteus-p") {
    return std::make_unique<PccSender>(
        std::make_shared<ProteusPrimaryUtility>(tuning->utility),
        proteus_config(seed), "proteus-p");
  }
  if (name == "proteus-s") {
    return std::make_unique<PccSender>(
        std::make_shared<ProteusScavengerUtility>(tuning->utility),
        proteus_config(seed), "proteus-s");
  }
  if (name == "proteus-h") {
    if (threshold == nullptr) {
      threshold = std::make_shared<HybridThresholdState>();
    }
    return std::make_unique<PccSender>(
        std::make_shared<ProteusHybridUtility>(std::move(threshold),
                                               tuning->utility),
        proteus_config(seed), "proteus-h");
  }
  throw std::invalid_argument("unknown protocol: " + name);
}

const std::vector<std::string>& all_protocol_names() {
  static const std::vector<std::string> kNames = {
      "proteus-s", "ledbat", "cubic", "bbr", "proteus-p", "copa", "vivace"};
  return kNames;
}

const std::vector<std::string>& primary_protocol_names() {
  static const std::vector<std::string> kNames = {"bbr", "cubic", "copa",
                                                  "proteus-p", "vivace"};
  return kNames;
}

bool is_scavenger_protocol(const std::string& name) {
  return name == "proteus-s" || name == "ledbat" || name == "ledbat-25" ||
         name == "bbr-s";
}

}  // namespace proteus
