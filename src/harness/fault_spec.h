// String grammar for building FaultTimeline schedules from the command
// line (`--faults=...`) and from tests.
//
// Grammar: comma-separated events, each
//
//   ['link' <i> ':'] <type> '@' <start> [':' <arg>]*
//
// The optional `link<i>:` prefix targets the event at bottleneck link
// <i> of a multi-hop topology (indices follow Topology::link order, see
// --topology=); untargeted events apply to link 0, the primary link.
//
// where <start> and every time-valued argument are numbers with an
// optional `s` (default) or `ms` suffix, and each <arg> is either a bare
// time (the event's duration) or `key=value`:
//
//   blackout@5:2            link dark for [5s, 7s)
//   blackout@5              link dark from 5s to the end of the run
//   capacity@10:x=0.25:20   capacity scaled by 0.25 for [10s, 30s)
//   route@10:delta=40ms     one-way prop delay +40ms from 10s on
//   reorder@10:p=0.05:delta=25ms:5
//                           5% of packets held back up to 25ms, [10s, 15s)
//   duplicate@10:p=0.01     1% of packets delivered twice, from 10s on
//   ackloss@10:p=0.3:5      30% of ACKs dropped, [10s, 15s)
//   ackburst@10:500ms       ACKs held for 500ms, released back-to-back
//   link2:blackout@5:2      hop 2 (not the primary link) dark for [5s, 7s)
//
// Keys: p = probability (reorder/duplicate/ackloss), x = capacity
// multiplier, delta = time delta (route shift / max reorder hold-back).
#pragma once

#include <string>
#include <vector>

#include "sim/fault_timeline.h"

namespace proteus {

struct FaultParseResult {
  bool ok = false;
  std::string error;  // set when !ok
  std::vector<FaultSpec> faults;
};

// Parses a full --faults= value. Empty input yields ok with no faults.
FaultParseResult parse_faults(const std::string& spec);

// Formats specs back into the grammar above, so a schedule can be
// embedded in repro bundles and re-run verbatim:
// parse_faults(format_faults(f)) round-trips (pinned by cli_test).
// Empty input formats to "".
std::string format_faults(const std::vector<FaultSpec>& faults);

// One-line grammar reminder for --help / errors.
std::string fault_spec_usage();

// Shortest decimal string that strtod() parses back to exactly `v`
// (probes increasing %g precision). Shared by the fault formatter and
// the search genome's CLI emitter, both of which need byte-stable,
// exactly-replayable numbers.
std::string format_double_shortest(double v);

}  // namespace proteus
