// CSV export of experiment time series, for plotting outside the repo.
#pragma once

#include <string>
#include <vector>

#include "harness/scenario.h"

namespace proteus {

// Per-second per-flow throughput: columns t_sec, flow_<id>_mbps...
// Returns false (and writes nothing) if the path cannot be opened.
bool write_throughput_csv(const std::string& path,
                          const std::vector<const Flow*>& flows,
                          TimeNs duration);

// Per-ack RTT samples of one flow: columns sample_idx, rtt_ms.
bool write_rtt_csv(const std::string& path, const Flow& flow);

// Bottleneck counters (one row), including the fault-injection counters:
// blackout_drops, reordered, duplicated, ack_drops.
bool write_link_stats_csv(const std::string& path, const LinkStats& stats);

// Per-hop counters of a multi-link topology: same columns plus a leading
// `link` name column, one row per queued link in add order (the shape
// Topology::link_stats() returns).
bool write_link_stats_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, LinkStats>>& rows);

}  // namespace proteus
