#include "harness/parallel_runner.h"

namespace proteus {

int default_job_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace proteus
