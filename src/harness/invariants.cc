#include "harness/invariants.h"

#include <cmath>
#include <sstream>

#include "core/pcc_sender.h"

namespace proteus {

namespace {

void check_finite(std::vector<std::string>& out, const std::string& who,
                  const char* what, double v) {
  if (!std::isfinite(v)) {
    std::ostringstream os;
    os << who << ": " << what << " is not finite (" << v << ")";
    out.push_back(os.str());
  }
}

void check_flow(std::vector<std::string>& out, const Flow& flow) {
  const Sender& s = flow.sender();
  const SenderStats& st = s.stats();
  std::ostringstream who;
  who << s.cc().name() << "#" << flow.config().id;
  const std::string name = who.str();

  // Packet/byte conservation: every sent packet is acked, declared lost,
  // or still awaiting resolution — under any fault schedule.
  if (st.packets_sent !=
      st.packets_acked + st.packets_lost + s.packets_in_flight()) {
    std::ostringstream os;
    os << name << ": packet conservation broken: sent=" << st.packets_sent
       << " acked=" << st.packets_acked << " lost=" << st.packets_lost
       << " in_flight=" << s.packets_in_flight();
    out.push_back(os.str());
  }
  if (st.bytes_sent != st.bytes_delivered + st.bytes_lost +
                           s.bytes_in_flight()) {
    std::ostringstream os;
    os << name << ": byte conservation broken: sent=" << st.bytes_sent
       << " delivered=" << st.bytes_delivered << " lost=" << st.bytes_lost
       << " in_flight=" << s.bytes_in_flight();
    out.push_back(os.str());
  }

  const double pacing = s.cc().pacing_rate().mbps();
  check_finite(out, name, "pacing rate", pacing);
  if (pacing < 0.0) {
    out.push_back(name + ": pacing rate is negative");
  }

  // PCC-specific: the utility and every MI metric must stay defined, and
  // the pacing rate must respect the controller's clamp bounds.
  const auto* pcc = dynamic_cast<const PccSender*>(&s.cc());
  if (pcc == nullptr) return;
  check_finite(out, name, "utility", pcc->last_utility());
  const RateControlConfig& rc = pcc->config().rate_control;
  // Every planned rate is clamped; only float rounding gets slack.
  const double lo = rc.min_rate_mbps * (1.0 - 1e-9);
  const double hi = rc.max_rate_mbps * (1.0 + 1e-9);
  if (std::isfinite(pacing) && (pacing < lo || pacing > hi)) {
    std::ostringstream os;
    os << name << ": pacing rate " << pacing << " Mbps outside clamp ["
       << rc.min_rate_mbps << ", " << rc.max_rate_mbps << "]";
    out.push_back(os.str());
  }
  const MiMetrics& m = pcc->last_mi_metrics();
  check_finite(out, name, "mi target_rate_mbps", m.target_rate_mbps);
  check_finite(out, name, "mi send_rate_mbps", m.send_rate_mbps);
  check_finite(out, name, "mi throughput_mbps", m.throughput_mbps);
  check_finite(out, name, "mi loss_rate", m.loss_rate);
  check_finite(out, name, "mi avg_rtt_sec", m.avg_rtt_sec);
  check_finite(out, name, "mi rtt_gradient", m.rtt_gradient);
  check_finite(out, name, "mi rtt_dev_sec", m.rtt_dev_sec);
  check_finite(out, name, "mi regression_error", m.regression_error);
}

void check_link(std::vector<std::string>& out, const std::string& name,
                const Link& link) {
  const LinkStats& st = link.stats();
  // Conservation at every queued link: each offered packet (plus injected
  // duplicates) is delivered, dropped, or still queued.
  const int64_t in = st.offered_packets + st.duplicated;
  const int64_t accounted = st.delivered_packets + st.tail_drops +
                            st.random_drops + st.codel_drops +
                            st.blackout_drops + link.queue_packets();
  if (in != accounted) {
    std::ostringstream os;
    os << name << ": packet conservation broken: offered+dup=" << in
       << " != delivered+drops+queued=" << accounted << " (delivered="
       << st.delivered_packets << " tail=" << st.tail_drops << " random="
       << st.random_drops << " codel=" << st.codel_drops << " blackout="
       << st.blackout_drops << " queued=" << link.queue_packets() << ")";
    out.push_back(os.str());
  }
  if (st.max_queue_bytes > link.config().buffer_bytes) {
    std::ostringstream os;
    os << name << ": queue exceeded buffer: " << st.max_queue_bytes
       << " > " << link.config().buffer_bytes;
    out.push_back(os.str());
  }
}

}  // namespace

std::string InvariantReport::to_string() const {
  if (violations.empty()) return "all invariants hold";
  std::ostringstream os;
  for (size_t i = 0; i < violations.size(); ++i) {
    if (i > 0) os << '\n';
    os << violations[i];
  }
  return os.str();
}

InvariantReport check_invariants(const Scenario& scenario) {
  InvariantReport report;
  for (const auto& flow : scenario.flows()) {
    check_flow(report.violations, *flow);
  }
  const Topology& topo = scenario.topology();
  for (int i = 0; i < topo.link_count(); ++i) {
    // Keep the historical "bottleneck" label for the primary link; extra
    // hops report under their topology names.
    check_link(report.violations,
               i == 0 ? "bottleneck" : topo.link_name(i), topo.link(i));
  }
  return report;
}

}  // namespace proteus
