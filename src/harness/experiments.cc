#include "harness/experiments.h"

#include <algorithm>
#include <memory>

#include "harness/telemetry_export.h"
#include "stats/jain.h"

namespace proteus {

namespace {

// RTT percentile over samples recorded after `from` is not directly
// available (Samples are unordered in time), so measurement flows collect
// RTTs only after the warmup by re-registering the hook.
class WarmupRttCollector {
 public:
  WarmupRttCollector(Scenario& sc, Flow& flow, TimeNs from) {
    flow.sender().set_on_ack([this, from, &sc](const AckInfo& info) {
      if (sc.sim().now() >= from) samples_.add(to_ms(info.rtt));
    });
  }
  const Samples& samples() const { return samples_; }

 private:
  Samples samples_;
};

double inflation_ratio(const ScenarioConfig& cfg, double p95_rtt_ms) {
  const double buffer_delay_ms =
      static_cast<double>(cfg.buffer_bytes) * 8.0 /
      (cfg.bandwidth_mbps * 1e6) * 1e3;
  if (buffer_delay_ms <= 0.0) return 0.0;
  return (p95_rtt_ms - cfg.rtt_ms) / buffer_delay_ms;
}

}  // namespace

SingleFlowResult run_single_flow(const std::string& protocol,
                                 const ScenarioConfig& cfg, TimeNs duration,
                                 TimeNs warmup, RunContext* ctx) {
  Scenario sc(cfg);
  Flow& flow = sc.add_flow(protocol, 0);
  // Declared after the Flow: destroyed (exported) first, even when a
  // watchdog exception unwinds through the run below.
  FlowTelemetrySession telemetry(ctx, flow, "flow0-" + protocol);
  WarmupRttCollector rtts(sc, flow, warmup);
  supervised_run_until(sc, duration, ctx);
  if (ctx) check_invariants_or_throw(sc);

  SingleFlowResult r;
  r.throughput_mbps = flow.mean_throughput_mbps(warmup, duration);
  r.utilization = r.throughput_mbps / cfg.bandwidth_mbps;
  r.p95_rtt_ms = rtts.samples().percentile(95.0);
  r.inflation_ratio_95 = inflation_ratio(cfg, r.p95_rtt_ms);
  return r;
}

std::vector<double> to_doubles(const SingleFlowResult& r) {
  return {r.throughput_mbps, r.utilization, r.p95_rtt_ms,
          r.inflation_ratio_95};
}

SingleFlowResult single_flow_from_doubles(const std::vector<double>& v) {
  SingleFlowResult r;
  if (v.size() >= 4) {
    r.throughput_mbps = v[0];
    r.utilization = v[1];
    r.p95_rtt_ms = v[2];
    r.inflation_ratio_95 = v[3];
  }
  return r;
}

PairResult run_pair(const std::string& primary, const std::string& scavenger,
                    const ScenarioConfig& cfg, TimeNs duration, TimeNs warmup,
                    TimeNs scavenger_delay, RunContext* ctx) {
  PairResult r;
  {
    Scenario alone(cfg);
    Flow& p = alone.add_flow(primary, 0);
    FlowTelemetrySession telemetry(ctx, p, "alone-flow0-" + primary);
    WarmupRttCollector rtts(alone, p, warmup);
    supervised_run_until(alone, duration, ctx);
    if (ctx) check_invariants_or_throw(alone);
    r.primary_alone_mbps = p.mean_throughput_mbps(warmup, duration);
    r.primary_alone_p95_rtt_ms = rtts.samples().percentile(95.0);
  }
  {
    ScenarioConfig cfg2 = cfg;
    cfg2.seed = cfg.seed + 0x51;  // independent randomness, same path
    Scenario both(cfg2);
    Flow& p = both.add_flow(primary, 0);
    Flow& s = both.add_flow(scavenger, scavenger_delay);
    FlowTelemetrySession p_telemetry(ctx, p, "with-flow0-" + primary);
    FlowTelemetrySession s_telemetry(ctx, s, "with-flow1-" + scavenger);
    WarmupRttCollector rtts(both, p, warmup);
    supervised_run_until(both, duration, ctx);
    if (ctx) check_invariants_or_throw(both);
    r.primary_with_mbps = p.mean_throughput_mbps(warmup, duration);
    r.scavenger_mbps = s.mean_throughput_mbps(warmup, duration);
    r.primary_with_p95_rtt_ms = rtts.samples().percentile(95.0);
  }
  r.primary_ratio = r.primary_alone_mbps > 0.0
                        ? r.primary_with_mbps / r.primary_alone_mbps
                        : 0.0;
  r.utilization =
      (r.primary_with_mbps + r.scavenger_mbps) / cfg.bandwidth_mbps;
  r.rtt_ratio = r.primary_alone_p95_rtt_ms > 0.0
                    ? r.primary_with_p95_rtt_ms / r.primary_alone_p95_rtt_ms
                    : 0.0;
  return r;
}

std::vector<double> to_doubles(const PairResult& r) {
  return {r.primary_alone_mbps,        r.primary_with_mbps,
          r.scavenger_mbps,            r.primary_ratio,
          r.utilization,               r.primary_alone_p95_rtt_ms,
          r.primary_with_p95_rtt_ms,   r.rtt_ratio};
}

PairResult pair_from_doubles(const std::vector<double>& v) {
  PairResult r;
  if (v.size() >= 8) {
    r.primary_alone_mbps = v[0];
    r.primary_with_mbps = v[1];
    r.scavenger_mbps = v[2];
    r.primary_ratio = v[3];
    r.utilization = v[4];
    r.primary_alone_p95_rtt_ms = v[5];
    r.primary_with_p95_rtt_ms = v[6];
    r.rtt_ratio = v[7];
  }
  return r;
}

FairnessResult run_multiflow_fairness(const std::string& protocol, int n,
                                      uint64_t seed, RunContext* ctx) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 20.0 * n;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 300'000LL * n;
  cfg.seed = seed;

  Scenario sc(cfg);
  std::vector<Flow*> flows;
  std::vector<std::unique_ptr<FlowTelemetrySession>> telemetry;
  for (int i = 0; i < n; ++i) {
    flows.push_back(&sc.add_flow(protocol, from_sec(20.0 * i)));
    telemetry.push_back(std::make_unique<FlowTelemetrySession>(
        ctx, *flows.back(), "flow" + std::to_string(i) + "-" + protocol));
  }
  const TimeNs measure_start = from_sec(20.0 * n);
  const TimeNs measure_end = measure_start + from_sec(200);
  supervised_run_until(sc, measure_end, ctx);
  if (ctx) check_invariants_or_throw(sc);

  FairnessResult r;
  for (Flow* f : flows) {
    r.flow_mbps.push_back(f->mean_throughput_mbps(measure_start, measure_end));
  }
  r.jain = jain_index(r.flow_mbps);
  return r;
}

std::vector<double> to_doubles(const FairnessResult& r) {
  std::vector<double> v{r.jain};
  v.insert(v.end(), r.flow_mbps.begin(), r.flow_mbps.end());
  return v;
}

FairnessResult fairness_from_doubles(const std::vector<double>& v) {
  FairnessResult r;
  if (!v.empty()) {
    r.jain = v[0];
    r.flow_mbps.assign(v.begin() + 1, v.end());
  }
  return r;
}

std::vector<std::vector<double>> run_time_series(
    const std::vector<std::string>& protocols, const ScenarioConfig& cfg,
    TimeNs stagger, TimeNs duration) {
  const TimeNs bin = from_sec(1);
  Scenario sc(cfg);
  std::vector<Flow*> flows;
  for (size_t i = 0; i < protocols.size(); ++i) {
    flows.push_back(
        &sc.add_flow(protocols[i], stagger * static_cast<TimeNs>(i)));
  }
  sc.run_until(duration);

  std::vector<std::vector<double>> out;
  const auto bins = static_cast<size_t>(duration / bin);
  for (Flow* f : flows) {
    std::vector<double> series = f->receiver().meter().mbps_series();
    series.resize(bins, 0.0);
    out.push_back(std::move(series));
  }
  return out;
}

}  // namespace proteus
