// The 64-path wireless test set standing in for the paper's live-Internet
// WiFi experiments (4 locations x 16 AWS regions).
//
// Locations differ in wireless harshness (jitter, spike probability, MAC
// burstiness); regions differ in base RTT and available uplink bandwidth.
// Everything is deterministic from the path index.
#pragma once

#include <vector>

#include "harness/scenario.h"

namespace proteus {

struct WifiPath {
  int location = 0;  // 0..3
  int region = 0;    // 0..15
  ScenarioConfig scenario;
};

// All 64 paths in (location-major) order.
std::vector<WifiPath> wifi_path_set();

}  // namespace proteus
