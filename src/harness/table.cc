#include "harness/table.h"

#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <utility>

namespace proteus {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(widths[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print() const { print(std::cout); }

void Table::write_csv(const std::string& path) const {
  std::ofstream os(path);
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(precision);
  ss << v;
  return ss.str();
}

}  // namespace proteus
