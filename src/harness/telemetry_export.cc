#include "harness/telemetry_export.h"

#include <sys/stat.h>

#include <algorithm>
#include <utility>

namespace proteus {

FlowTelemetrySession::FlowTelemetrySession(RunContext* ctx, Flow& flow,
                                           std::string flow_label)
    : ctx_(ctx), flow_(&flow), flow_label_(std::move(flow_label)) {
  if (ctx_ == nullptr || ctx_->telemetry() == nullptr ||
      !ctx_->telemetry()->enabled()) {
    return;
  }
  const TelemetryConfig& cfg = *ctx_->telemetry();
  recorder_ = std::make_unique<TelemetryRecorder>(cfg.capacity, cfg.every);
  flow_->sender().cc().set_telemetry(recorder_.get());
}

FlowTelemetrySession::~FlowTelemetrySession() {
  if (recorder_ == nullptr) return;
  flow_->sender().cc().set_telemetry(nullptr);

  // Reference protocols (CUBIC, BBR, ...) accept the recorder but never
  // feed it; skip their empty exports.
  if (recorder_->seen() == 0) return;

  const TelemetryConfig& cfg = *ctx_->telemetry();
  ::mkdir(cfg.dir.c_str(), 0777);  // EEXIST is fine
  const std::string label =
      sanitize_path_component(ctx_->run_label().empty()
                                  ? flow_label_
                                  : ctx_->run_label() + "-" + flow_label_);
  const std::string base = cfg.dir + "/" + label;

  write_mi_records_jsonl(base + ".jsonl", label, *recorder_);
  write_mi_records_csv(base + ".csv", *recorder_);

  MetricsRegistry registry;
  flow_->sender().cc().snapshot_metrics(&registry);
  const SenderStats& st = flow_->sender().stats();
  registry.counter("sender_packets_sent", st.packets_sent);
  registry.counter("sender_packets_acked", st.packets_acked);
  registry.counter("sender_packets_lost", st.packets_lost);
  registry.counter("sender_bytes_sent", st.bytes_sent);
  registry.counter("sender_bytes_delivered", st.bytes_delivered);
  registry.counter("sender_bytes_lost", st.bytes_lost);
  registry.histogram("rtt_ms", flow_->rtt_samples());
  write_metrics_csv(base + ".metrics.csv", registry);

  // The newest handful of records feed the repro-bundle telemetry tail.
  constexpr size_t kTailPerFlow = 8;
  const size_t n = recorder_->size();
  for (size_t i = n > kTailPerFlow ? n - kTailPerFlow : 0; i < n; ++i) {
    ctx_->add_telemetry_tail(mi_record_to_json(label, recorder_->at(i)));
  }
}

}  // namespace proteus
