#include "harness/trace_export.h"

#include <algorithm>
#include <fstream>

namespace proteus {

namespace {

// ofstream buffering hides a full disk until flush/close, and the
// destructor discards the error; flush before the status check so
// ENOSPC comes back as `false` instead of a silently truncated file
// (pinned by tests/rt_io_test.cc against /dev/full).
bool flush_ok(std::ofstream& os) {
  os.flush();
  return static_cast<bool>(os);
}

}  // namespace

bool write_throughput_csv(const std::string& path,
                          const std::vector<const Flow*>& flows,
                          TimeNs duration) {
  std::ofstream os(path);
  if (!os) return false;
  os << "t_sec";
  for (const Flow* f : flows) os << ",flow_" << f->config().id << "_mbps";
  os << '\n';

  std::vector<std::vector<double>> series;
  // Ceil, not floor: a 5.4 s run has 6 bins, the last one partial. The
  // old integer division dropped the final partial-second bin — and with
  // it any meter that produced more bins than the nominal duration (the
  // meters bin by *delivery* time, which can trail the send window).
  size_t bins =
      static_cast<size_t>((duration + from_sec(1) - 1) / from_sec(1));
  for (const Flow* f : flows) {
    std::vector<double> s = f->receiver().meter().mbps_series();
    bins = std::max(bins, s.size());
    series.push_back(std::move(s));
  }
  for (auto& s : series) s.resize(bins, 0.0);
  for (size_t t = 0; t < bins; ++t) {
    os << t;
    for (const auto& s : series) os << ',' << s[t];
    os << '\n';
  }
  return flush_ok(os);
}

bool write_rtt_csv(const std::string& path, const Flow& flow) {
  std::ofstream os(path);
  if (!os) return false;
  os << "sample_idx,rtt_ms\n";
  const auto& samples = flow.rtt_samples().raw();
  for (size_t i = 0; i < samples.size(); ++i) {
    os << i << ',' << samples[i] << '\n';
  }
  return flush_ok(os);
}

namespace {

// Column order is pinned by the golden suites; append-only.
constexpr char kLinkStatsHeader[] =
    "offered_packets,delivered_packets,delivered_bytes,tail_drops,"
    "random_drops,codel_drops,max_queue_bytes,blackout_drops,reordered,"
    "duplicated,ack_drops";

void write_link_stats_row(std::ofstream& os, const LinkStats& stats) {
  os << stats.offered_packets << ',' << stats.delivered_packets << ','
     << stats.delivered_bytes << ',' << stats.tail_drops << ','
     << stats.random_drops << ',' << stats.codel_drops << ','
     << stats.max_queue_bytes << ',' << stats.blackout_drops << ','
     << stats.reordered << ',' << stats.duplicated << ','
     << stats.ack_drops << '\n';
}

}  // namespace

bool write_link_stats_csv(const std::string& path, const LinkStats& stats) {
  std::ofstream os(path);
  if (!os) return false;
  os << kLinkStatsHeader << '\n';
  write_link_stats_row(os, stats);
  return flush_ok(os);
}

bool write_link_stats_csv(
    const std::string& path,
    const std::vector<std::pair<std::string, LinkStats>>& rows) {
  std::ofstream os(path);
  if (!os) return false;
  os << "link," << kLinkStatsHeader << '\n';
  for (const auto& [name, stats] : rows) {
    os << name << ',';
    write_link_stats_row(os, stats);
  }
  return flush_ok(os);
}

}  // namespace proteus
