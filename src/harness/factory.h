// Protocol factory: congestion controllers by name, as the benches and
// examples select them ("cubic", "bbr", "bbr-s", "copa", "vivace",
// "proteus-p", "proteus-s", "proteus-h", "ledbat", "ledbat-25").
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/pcc_sender.h"
#include "transport/cc_interface.h"

namespace proteus {

// Tuning applied to the Proteus/PCC family (vivace keeps its fixed
// published configuration). Defaults reproduce the paper's settings.
struct ProtocolTuning {
  UtilityParams utility;
  NoiseControlConfig noise;
};

// `threshold` is only consulted for "proteus-h"; pass nullptr otherwise
// (a default always-primary threshold state is used if omitted).
std::unique_ptr<CongestionController> make_protocol(
    const std::string& name, uint64_t seed,
    std::shared_ptr<HybridThresholdState> threshold = nullptr,
    const ProtocolTuning* tuning = nullptr);

// All protocol names, in the paper's plotting order.
const std::vector<std::string>& all_protocol_names();
// The protocols evaluated as primaries in Fig 6 / Fig 10.
const std::vector<std::string>& primary_protocol_names();

bool is_scavenger_protocol(const std::string& name);

}  // namespace proteus
