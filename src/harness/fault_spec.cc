#include "harness/fault_spec.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace proteus {

namespace {

// Parses "2", "2s", "250ms" (optionally negative) into nanoseconds.
bool parse_time(const std::string& s, TimeNs& out) {
  if (s.empty()) return false;
  std::string num = s;
  double scale = 1e9;  // bare numbers are seconds
  if (s.size() > 2 && s.compare(s.size() - 2, 2, "ms") == 0) {
    num = s.substr(0, s.size() - 2);
    scale = 1e6;
  } else if (s.size() > 1 && s.back() == 's') {
    num = s.substr(0, s.size() - 1);
  }
  try {
    size_t pos = 0;
    const double v = std::stod(num, &pos);
    if (pos != num.size() || !std::isfinite(v)) return false;
    // Round, don't truncate: 0.3s is 299999999.99999994 in doubles, and
    // truncation would shave a nanosecond off and break the
    // format_faults round trip ("299.999999ms" drifting further on every
    // parse/format cycle).
    out = static_cast<TimeNs>(std::llround(v * scale));
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_number(const std::string& s, double& out) {
  try {
    size_t pos = 0;
    out = std::stod(s, &pos);
    return pos == s.size() && std::isfinite(out);
  } catch (const std::exception&) {
    return false;
  }
}

bool type_from_name(const std::string& name, FaultType& out) {
  if (name == "blackout") out = FaultType::kBlackout;
  else if (name == "capacity") out = FaultType::kCapacity;
  else if (name == "route") out = FaultType::kRouteChange;
  else if (name == "reorder") out = FaultType::kReorder;
  else if (name == "duplicate" || name == "dup") out = FaultType::kDuplicate;
  else if (name == "ackloss") out = FaultType::kAckLoss;
  else if (name == "ackburst") out = FaultType::kAckBurst;
  else return false;
  return true;
}

bool parse_one(const std::string& item, FaultSpec& spec, std::string& error) {
  // Optional `link<i>:` prefix targets the event at bottleneck link <i>
  // of a multi-hop topology; untargeted events keep applying to link 0.
  // The prefix is only recognized before the '@', so a (hypothetical)
  // type name starting with "link" could still be added later.
  std::string rest = item;
  spec.link = 0;
  const size_t at_probe = rest.find('@');
  const size_t colon_probe = rest.find(':');
  if (rest.compare(0, 4, "link") == 0 && colon_probe != std::string::npos &&
      (at_probe == std::string::npos || colon_probe < at_probe)) {
    const std::string idx = rest.substr(4, colon_probe - 4);
    int link = 0;
    bool ok = !idx.empty() && idx.size() <= 4;
    for (const char c : idx) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      link = link * 10 + (c - '0');
    }
    if (!ok || link > 1023) {
      error = "bad link target in fault: " + item;
      return false;
    }
    spec.link = link;
    rest = rest.substr(colon_probe + 1);
  }

  const size_t at = rest.find('@');
  if (at == std::string::npos) {
    error = "missing '@start' in fault: " + item;
    return false;
  }
  const std::string name = rest.substr(0, at);
  if (!type_from_name(name, spec.type)) {
    error = "unknown fault type: " + name;
    return false;
  }

  // Split the remainder on ':' — first token is the start time, the rest
  // are a positional duration and/or key=value arguments.
  std::vector<std::string> tokens;
  size_t pos = at + 1;
  while (pos <= rest.size()) {
    size_t colon = rest.find(':', pos);
    if (colon == std::string::npos) colon = rest.size();
    tokens.push_back(rest.substr(pos, colon - pos));
    pos = colon + 1;
  }
  if (!parse_time(tokens[0], spec.start) || spec.start < 0) {
    error = "bad start time in fault: " + item;
    return false;
  }

  bool have_p = false, have_x = false, have_delta = false, have_dur = false;
  for (size_t i = 1; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    const size_t eq = tok.find('=');
    if (eq == std::string::npos) {
      if (have_dur || !parse_time(tok, spec.duration) ||
          spec.duration <= 0) {
        error = "bad duration in fault: " + item;
        return false;
      }
      have_dur = true;
      continue;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "p" || key == "x") {
      if (!parse_number(value, spec.value)) {
        error = "bad " + key + "= in fault: " + item;
        return false;
      }
      (key == "p" ? have_p : have_x) = true;
    } else if (key == "delta") {
      if (!parse_time(value, spec.delay)) {
        error = "bad delta= in fault: " + item;
        return false;
      }
      have_delta = true;
    } else {
      error = "unknown key '" + key + "' in fault: " + item;
      return false;
    }
  }

  switch (spec.type) {
    case FaultType::kBlackout:
      if (have_p || have_x || have_delta) {
        error = "blackout takes only a duration: " + item;
        return false;
      }
      break;
    case FaultType::kCapacity:
      if (!have_x || spec.value <= 0.0) {
        error = "capacity needs x=<multiplier> > 0: " + item;
        return false;
      }
      break;
    case FaultType::kRouteChange:
      if (!have_delta) {
        error = "route needs delta=<time>: " + item;
        return false;
      }
      break;
    case FaultType::kReorder:
      if (!have_p || spec.value <= 0.0 || spec.value > 1.0) {
        error = "reorder needs p=<prob> in (0,1]: " + item;
        return false;
      }
      if (!have_delta) spec.delay = from_ms(10);  // default hold-back
      if (spec.delay <= 0) {
        error = "reorder delta must be positive: " + item;
        return false;
      }
      break;
    case FaultType::kDuplicate:
    case FaultType::kAckLoss:
      if (!have_p || spec.value <= 0.0 || spec.value > 1.0) {
        error = name + " needs p=<prob> in (0,1]: " + item;
        return false;
      }
      break;
    case FaultType::kAckBurst:
      if (have_p || have_x || have_delta) {
        error = "ackburst takes only a duration: " + item;
        return false;
      }
      if (!have_dur) {
        error = "ackburst needs a duration (a permanent hold would eat "
                "every ACK): " + item;
        return false;
      }
      break;
  }
  return true;
}

}  // namespace

FaultParseResult parse_faults(const std::string& spec) {
  FaultParseResult r;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    FaultSpec fault;
    if (!parse_one(item, fault, r.error)) return r;
    r.faults.push_back(fault);
  }
  r.ok = true;
  return r;
}

std::string format_double_shortest(double v) {
  char buf[48];
  // Integral values print as plain integers ("30", not "3e+01").
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) return buf;
  }
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

// Formats nanoseconds in the tersest grammar-accepted form: bare seconds,
// "<n>ms", or fractional ms for sub-millisecond values.
std::string format_time(TimeNs t) {
  char buf[48];
  if (t % kNsPerSec == 0) {
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(t / kNsPerSec));
  } else if (t % kNsPerMs == 0) {
    std::snprintf(buf, sizeof buf, "%lldms",
                  static_cast<long long>(t / kNsPerMs));
  } else {
    std::snprintf(buf, sizeof buf, "%.6fms",
                  static_cast<double>(t) / static_cast<double>(kNsPerMs));
  }
  return buf;
}

std::string format_one(const FaultSpec& f) {
  std::string out;
  if (f.link != 0) out = "link" + std::to_string(f.link) + ":";
  switch (f.type) {
    case FaultType::kBlackout: out += "blackout"; break;
    case FaultType::kCapacity: out += "capacity"; break;
    case FaultType::kRouteChange: out += "route"; break;
    case FaultType::kReorder: out += "reorder"; break;
    case FaultType::kDuplicate: out += "duplicate"; break;
    case FaultType::kAckLoss: out += "ackloss"; break;
    case FaultType::kAckBurst: out += "ackburst"; break;
  }
  out += "@" + format_time(f.start);
  switch (f.type) {
    case FaultType::kCapacity:
      out += ":x=" + format_double_shortest(f.value);
      break;
    case FaultType::kRouteChange:
      out += ":delta=" + format_time(f.delay);
      break;
    case FaultType::kReorder:
      out += ":p=" + format_double_shortest(f.value) +
             ":delta=" + format_time(f.delay);
      break;
    case FaultType::kDuplicate:
    case FaultType::kAckLoss:
      out += ":p=" + format_double_shortest(f.value);
      break;
    case FaultType::kBlackout:
    case FaultType::kAckBurst:
      break;
  }
  if (f.duration > 0) out += ":" + format_time(f.duration);
  return out;
}

}  // namespace

std::string format_faults(const std::vector<FaultSpec>& faults) {
  std::string out;
  for (size_t i = 0; i < faults.size(); ++i) {
    if (i) out += ",";
    out += format_one(faults[i]);
  }
  return out;
}

std::string fault_spec_usage() {
  return "--faults=[link<i>:]type@start[:duration][:key=value]... with types "
         "blackout, capacity (x=), route (delta=), reorder (p=, delta=), "
         "duplicate (p=), ackloss (p=), ackburst; times take s/ms suffixes; "
         "link<i>: targets bottleneck link i (default 0)";
}

}  // namespace proteus
