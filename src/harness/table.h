// Aligned console tables and CSV output for the benchmark binaries.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace proteus {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;
  void print() const;  // stdout
  void write_csv(const std::string& path) const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("12.34").
std::string fmt(double v, int precision = 2);

}  // namespace proteus
