// FlowTelemetrySession: RAII glue between a Flow's congestion controller
// and the telemetry subsystem (telemetry/telemetry.h).
//
// Construction attaches a per-flow TelemetryRecorder when the RunContext
// carries an enabled TelemetryConfig (no-op otherwise — the null-recorder
// hot path stays untouched). Destruction detaches the recorder, exports
//
//   <dir>/<run_label>-<flow_label>.jsonl        per-MI records (JSONL)
//   <dir>/<run_label>-<flow_label>.csv          same records as CSV
//   <dir>/<run_label>-<flow_label>.metrics.csv  counters/gauges snapshot
//
// and pushes the last few JSONL lines into the RunContext's telemetry
// tail so failed supervised runs carry them into .repro bundles. Export
// runs in the destructor deliberately: a watchdog/invariant exception
// unwinds through it, so the MIs leading into a failure are preserved.
//
// Declare the session after the Flow and after the Scenario so it is
// destroyed (exported) before either.
#pragma once

#include <memory>
#include <string>

#include "harness/supervisor.h"
#include "telemetry/telemetry.h"
#include "transport/flow.h"

namespace proteus {

class FlowTelemetrySession {
 public:
  // `flow_label` distinguishes flows within a run ("flow0-proteus-s").
  // A null ctx or a disabled/absent TelemetryConfig makes the session
  // inert.
  FlowTelemetrySession(RunContext* ctx, Flow& flow, std::string flow_label);
  ~FlowTelemetrySession();

  FlowTelemetrySession(const FlowTelemetrySession&) = delete;
  FlowTelemetrySession& operator=(const FlowTelemetrySession&) = delete;

  bool active() const { return recorder_ != nullptr; }
  const TelemetryRecorder* recorder() const { return recorder_.get(); }

 private:
  RunContext* ctx_;
  Flow* flow_;
  std::string flow_label_;
  std::unique_ptr<TelemetryRecorder> recorder_;
};

}  // namespace proteus
