// Thread-pool experiment runner for sweep-heavy benches and tests.
//
// A sweep is a vector of independent tasks (each one typically builds its
// own Scenario, runs it, and returns a result struct). run_parallel()
// executes them across a fixed number of worker threads and collects the
// results *by task index*, so the output is bit-identical to running the
// tasks serially in submission order, regardless of how the scheduler
// interleaves workers. Determinism therefore only requires what the
// simulator already guarantees: each task owns its Simulator/Rng state and
// shares nothing mutable with other tasks.
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace proteus {

// Worker count used when a caller passes jobs <= 0:
// std::thread::hardware_concurrency(), at least 1.
int default_job_count();

// Runs every task and returns their results in submission order.
//
//  * jobs <= 0 selects default_job_count(); a single worker degenerates to
//    a plain serial loop on the calling thread (no threads spawned).
//  * The calling thread participates as a worker, so `jobs` workers use
//    `jobs - 1` spawned threads.
//  * If a task throws, the first exception (in completion order) is
//    rethrown on the calling thread after all workers have drained; tasks
//    not yet started are abandoned. Results of other tasks are discarded.
template <typename T>
std::vector<T> run_parallel(std::vector<std::function<T()>> tasks, int jobs) {
  if (jobs <= 0) jobs = default_job_count();
  std::vector<T> results(tasks.size());
  if (tasks.empty()) return results;

  const size_t workers =
      std::min(static_cast<size_t>(jobs), tasks.size());
  if (workers <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) results[i] = tasks[i]();
    return results;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> abort{false};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto worker = [&] {
    while (!abort.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      try {
        results[i] = tasks[i]();
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) threads.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
  return results;
}

// Outcome of one task under run_parallel_settled: either a value or the
// exception the task threw.
template <typename T>
struct TaskOutcome {
  T value{};                 // default-constructed when the task threw
  std::exception_ptr error;  // non-null when the task threw
  bool ok() const { return !error; }
};

// Exception-safe variant of run_parallel: every task runs to completion
// (nothing is abandoned), a throwing task records its exception in its
// own slot instead of aborting the pool, and the call itself never
// throws task errors. This is the worker boundary the run supervisor
// (harness/supervisor.h) builds on: one crashing sweep point degrades to
// a per-point failure while every other point still completes.
template <typename T>
std::vector<TaskOutcome<T>> run_parallel_settled(
    std::vector<std::function<T()>> tasks, int jobs) {
  if (jobs <= 0) jobs = default_job_count();
  std::vector<TaskOutcome<T>> results(tasks.size());
  if (tasks.empty()) return results;

  auto run_one = [&](size_t i) {
    try {
      results[i].value = tasks[i]();
    } catch (...) {
      results[i].error = std::current_exception();
    }
  };

  const size_t workers = std::min(static_cast<size_t>(jobs), tasks.size());
  if (workers <= 1) {
    for (size_t i = 0; i < tasks.size(); ++i) run_one(i);
    return results;
  }

  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= tasks.size()) return;
      run_one(i);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t w = 1; w < workers; ++w) threads.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace proteus
