#include "harness/churn.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

#include "telemetry/profiler.h"

namespace proteus {

namespace {

// Class order is the draw order: one uniform in [0,1) against the
// cumulative mix picks web < video < bulk < scavenger.
constexpr const char* kClassProtocol[] = {"cubic", "bbr", "proteus-p",
                                          "proteus-s"};
constexpr double kClassSizeScale[] = {1.0, 8.0, 32.0, 16.0};

}  // namespace

ChurnDriver::ChurnDriver(Scenario& scenario, ChurnConfig cfg)
    : scenario_(&scenario), cfg_(cfg) {
  if (cfg_.arrivals_per_sec <= 0.0) {
    throw std::runtime_error("churn arrivals_per_sec must be > 0");
  }
  if (cfg_.mean_size_kb <= 0.0) {
    throw std::runtime_error("churn mean_size_kb must be > 0");
  }
  const double total =
      cfg_.mix_web + cfg_.mix_video + cfg_.mix_bulk + cfg_.mix_scavenger;
  if (total <= 0.0) {
    throw std::runtime_error("churn mix weights must sum to > 0");
  }
  norm_web_ = cfg_.mix_web / total;
  norm_video_ = norm_web_ + cfg_.mix_video / total;
  norm_bulk_ = norm_video_ + cfg_.mix_bulk / total;

  const int n = std::max(1, scenario.arm_count());
  const uint64_t seed_base = scenario.config().seed ^ 0xc4;
  for (int a = 0; a < n; ++a) {
    auto p = std::make_unique<ArmProc>(
        a, &scenario.arm_sim(a),
        seed_base + 0x9e3779b9ULL * static_cast<uint64_t>(a));
    p->mean_gap_ns = 1e9 * n / cfg_.arrivals_per_sec;
    p->cap = std::max<int64_t>(1, cfg_.max_concurrent / n);
    arms_.push_back(std::move(p));
  }
  if (cfg_.prewarm_per_class > 0) {
    // Fill the arenas up front so the recycle path never misses. Each
    // prewarm flow is constructed, retired on the spot, and parked; its
    // id is released immediately, so the ids (and with them the RNG
    // seed derivation and slot layout) that live flows see are exactly
    // the sequence an unwarmed run would produce.
    const double share[kClasses] = {norm_web_, norm_video_ - norm_web_,
                                    norm_bulk_ - norm_video_,
                                    1.0 - norm_bulk_};
    for (int a = 0; a < n; ++a) {
      ArmProc& p = *arms_[a];
      std::vector<FlowId> ids;
      for (int cls = 0; cls < kClasses; ++cls) {
        if (share[cls] <= 0.0) continue;
        for (int i = 0; i < cfg_.prewarm_per_class; ++i) {
          const FlowId id = scenario_->allocate_flow_id_on(a);
          ids.push_back(id);
          FlowConfig fc;
          fc.id = id;
          fc.start_time = p.sim->now();
          fc.unlimited = false;
          fc.total_bytes = kMtuBytes;
          fc.collect_rtt = false;
          fc.meter_throughput = false;
          fc.initial_window_slots = cfg_.window_slots;
          auto flow = scenario_->create_flow(a, kClassProtocol[cls], fc);
          flow->retire();
          p.pool[cls].push_back(std::move(flow));
        }
      }
      // Release as a batch, not per-flow: the allocator's free heap
      // ratchets to the whole prewarm population at once, above any
      // free-id high-water the run itself can reach, and the min-heap
      // keeps the id sequence arrivals see identical to an unwarmed
      // run's (smallest id first == mint order).
      for (const FlowId id : ids) scenario_->release_flow_id(id);
    }
  }
  for (int a = 0; a < n; ++a) {
    ArmProc& p = *arms_[a];
    const LifeTag::Ref alive = p.alive.ref();
    p.sim->schedule_at(std::max(cfg_.start, p.sim->now()),
                       [this, a, alive] {
                         if (alive.expired()) return;
                         schedule_next(a);
                       });
  }
}

ChurnDriver::~ChurnDriver() = default;

void ChurnDriver::schedule_next(int arm) {
  ArmProc& p = *arms_[arm];
  const TimeNs gap = std::max<TimeNs>(
      1, static_cast<TimeNs>(p.rng.exponential(p.mean_gap_ns)));
  const TimeNs when = p.sim->now() + gap;
  if (when >= cfg_.stop) return;  // process ends; live flows drain out
  const LifeTag::Ref alive = p.alive.ref();
  p.sim->schedule_at(when, [this, arm, alive] {
    if (alive.expired()) return;
    arrive(arm);
    schedule_next(arm);
  });
}

void ChurnDriver::arrive(int arm) {
  PROTEUS_PROFILE_SCOPE(ProfilePhase::kChurnArrival);
  ArmProc& p = *arms_[arm];
  // Draw class and size unconditionally (see header: the RNG stream must
  // not depend on how many arrivals the cap sheds).
  const double u = p.rng.uniform();
  int cls = 3;
  if (u < norm_web_) {
    cls = 0;
  } else if (u < norm_video_) {
    cls = 1;
  } else if (u < norm_bulk_) {
    cls = 2;
  }
  const double mean_bytes = cfg_.mean_size_kb * 1024.0 * kClassSizeScale[cls];
  const int64_t bytes = std::max<int64_t>(
      kMtuBytes, static_cast<int64_t>(p.rng.exponential(mean_bytes)));

  if (p.live_count >= p.cap) {
    ++p.stats.skipped;
    return;
  }

  const FlowId id = scenario_->allocate_flow_id_on(arm);
  FlowConfig fc;
  fc.id = id;
  fc.start_time = p.sim->now();
  fc.unlimited = false;
  fc.total_bytes = bytes;
  fc.collect_rtt = false;
  fc.meter_throughput = false;  // nobody queries churn flows' meters
  fc.initial_window_slots = cfg_.window_slots;

  const int slot = slot_of(id, arm);
  if (slot >= static_cast<int>(p.live.size())) {
    p.live.resize(static_cast<size_t>(slot) + 1);
    p.ctxs.resize(static_cast<size_t>(slot) + 1);
  }
  LiveEntry& entry = p.live[static_cast<size_t>(slot)];

  // Arena path: re-arm a retired flow of the same class in place.
  // recycle_flow reproduces create_flow byte-for-byte (same
  // flow_seed(id) CC derivation), so the simulation cannot tell a pooled
  // flow from a fresh one; at a steady cap this path allocates nothing.
  auto& pool = p.pool[cls];
  while (!pool.empty() && entry.flow == nullptr) {
    std::unique_ptr<Flow> candidate = std::move(pool.back());
    pool.pop_back();
    if (scenario_->recycle_flow(*candidate, fc)) {
      entry.flow = std::move(candidate);
      ++p.stats.recycled;
    }
    // else: the protocol can't reset in place; drop the candidate (the
    // pool never fills with them again) and construct below.
  }
  if (entry.flow == nullptr) {
    entry.flow = scenario_->create_flow(arm, kClassProtocol[cls], fc);
  }
  entry.cls = static_cast<int8_t>(cls);

  if (p.ctxs[static_cast<size_t>(slot)] == nullptr) {
    p.ctxs[static_cast<size_t>(slot)] = std::make_unique<SlotCtx>(
        SlotCtx{this, static_cast<int32_t>(arm), id});
  }
  // Completion fires inside the sender's own ACK processing; destroying
  // or retiring the flow there would pull the stack out from under it.
  // on_flow_complete defers the teardown to a fresh event at the same
  // timestamp. Capturing only the stable SlotCtx* keeps the callback in
  // std::function's small buffer (no allocation).
  SlotCtx* ctx = p.ctxs[static_cast<size_t>(slot)].get();
  entry.flow->sender().set_on_all_delivered(
      [ctx] { ctx->driver->on_flow_complete(*ctx); });

  ++p.live_count;
  ++p.stats.spawned;
  p.stats.peak_concurrent = std::max(p.stats.peak_concurrent, p.live_count);
}

void ChurnDriver::on_flow_complete(SlotCtx& ctx) {
  ArmProc& p = *arms_[ctx.arm];
  const LifeTag::Ref alive = p.alive.ref();
  SlotCtx* c = &ctx;
  p.sim->schedule_at(p.sim->now(), [c, alive] {
    if (alive.expired()) return;
    c->driver->remove(c->arm, c->id);
  });
}

void ChurnDriver::remove(int arm, FlowId id) {
  PROTEUS_PROFILE_SCOPE(ProfilePhase::kChurnTeardown);
  ArmProc& p = *arms_[arm];
  const int slot = slot_of(id, arm);
  if (slot >= static_cast<int>(p.live.size())) return;
  LiveEntry& entry = p.live[static_cast<size_t>(slot)];
  if (entry.cls < 0 || entry.flow == nullptr) return;
  // Retire into the arena instead of destroying: detach from the network
  // and expire the flow's scheduled events, then park it for the next
  // arrival of the same class.
  entry.flow->retire();
  p.pool[entry.cls].push_back(std::move(entry.flow));
  entry.cls = -1;
  --p.live_count;
  scenario_->release_flow_id(id);
  ++p.stats.completed;
}

ChurnStats ChurnDriver::stats() const {
  ChurnStats total;
  for (const auto& p : arms_) {
    total.spawned += p->stats.spawned;
    total.completed += p->stats.completed;
    total.skipped += p->stats.skipped;
    total.concurrent += p->live_count;
    total.peak_concurrent += p->stats.peak_concurrent;
    total.recycled += p->stats.recycled;
  }
  return total;
}

}  // namespace proteus
