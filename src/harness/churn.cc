#include "harness/churn.h"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace proteus {

namespace {

// Class order is the draw order: one uniform in [0,1) against the
// cumulative mix picks web < video < bulk < scavenger.
constexpr const char* kClassProtocol[] = {"cubic", "bbr", "proteus-p",
                                          "proteus-s"};
constexpr double kClassSizeScale[] = {1.0, 8.0, 32.0, 16.0};

}  // namespace

ChurnDriver::ChurnDriver(Scenario& scenario, ChurnConfig cfg)
    : scenario_(&scenario), cfg_(cfg) {
  if (cfg_.arrivals_per_sec <= 0.0) {
    throw std::runtime_error("churn arrivals_per_sec must be > 0");
  }
  if (cfg_.mean_size_kb <= 0.0) {
    throw std::runtime_error("churn mean_size_kb must be > 0");
  }
  const double total =
      cfg_.mix_web + cfg_.mix_video + cfg_.mix_bulk + cfg_.mix_scavenger;
  if (total <= 0.0) {
    throw std::runtime_error("churn mix weights must sum to > 0");
  }
  norm_web_ = cfg_.mix_web / total;
  norm_video_ = norm_web_ + cfg_.mix_video / total;
  norm_bulk_ = norm_video_ + cfg_.mix_bulk / total;

  const int n = std::max(1, scenario.arm_count());
  const uint64_t seed_base = scenario.config().seed ^ 0xc4;
  for (int a = 0; a < n; ++a) {
    auto p = std::make_unique<ArmProc>(
        a, &scenario.arm_sim(a),
        seed_base + 0x9e3779b9ULL * static_cast<uint64_t>(a));
    p->mean_gap_ns = 1e9 * n / cfg_.arrivals_per_sec;
    p->cap = std::max<int64_t>(1, cfg_.max_concurrent / n);
    arms_.push_back(std::move(p));
  }
  for (int a = 0; a < n; ++a) {
    ArmProc& p = *arms_[a];
    const LifeTag::Ref alive = p.alive.ref();
    p.sim->schedule_at(std::max(cfg_.start, p.sim->now()),
                       [this, a, alive] {
                         if (alive.expired()) return;
                         schedule_next(a);
                       });
  }
}

ChurnDriver::~ChurnDriver() = default;

void ChurnDriver::schedule_next(int arm) {
  ArmProc& p = *arms_[arm];
  const TimeNs gap = std::max<TimeNs>(
      1, static_cast<TimeNs>(p.rng.exponential(p.mean_gap_ns)));
  const TimeNs when = p.sim->now() + gap;
  if (when >= cfg_.stop) return;  // process ends; live flows drain out
  const LifeTag::Ref alive = p.alive.ref();
  p.sim->schedule_at(when, [this, arm, alive] {
    if (alive.expired()) return;
    arrive(arm);
    schedule_next(arm);
  });
}

void ChurnDriver::arrive(int arm) {
  ArmProc& p = *arms_[arm];
  // Draw class and size unconditionally (see header: the RNG stream must
  // not depend on how many arrivals the cap sheds).
  const double u = p.rng.uniform();
  int cls = 3;
  if (u < norm_web_) {
    cls = 0;
  } else if (u < norm_video_) {
    cls = 1;
  } else if (u < norm_bulk_) {
    cls = 2;
  }
  const double mean_bytes = cfg_.mean_size_kb * 1024.0 * kClassSizeScale[cls];
  const int64_t bytes = std::max<int64_t>(
      kMtuBytes, static_cast<int64_t>(p.rng.exponential(mean_bytes)));

  if (static_cast<int64_t>(p.live.size()) >= p.cap) {
    ++p.stats.skipped;
    return;
  }

  const FlowId id = scenario_->allocate_flow_id_on(arm);
  FlowConfig fc;
  fc.id = id;
  fc.start_time = p.sim->now();
  fc.unlimited = false;
  fc.total_bytes = bytes;
  fc.collect_rtt = false;
  fc.initial_window_slots = cfg_.window_slots;
  std::unique_ptr<Flow> flow =
      scenario_->create_flow(arm, kClassProtocol[cls], fc);

  // Completion fires inside the sender's own ACK processing; destroying
  // the flow there would pull the stack out from under it. Defer the
  // removal to a fresh event at the same timestamp.
  const LifeTag::Ref alive = p.alive.ref();
  flow->sender().set_on_all_delivered([this, arm, id, alive] {
    if (alive.expired()) return;
    ArmProc& q = *arms_[arm];
    const LifeTag::Ref alive2 = q.alive.ref();
    q.sim->schedule_at(q.sim->now(), [this, arm, id, alive2] {
      if (alive2.expired()) return;
      remove(arm, id);
    });
  });

  p.live.emplace(id, std::move(flow));
  ++p.stats.spawned;
  p.stats.peak_concurrent = std::max(
      p.stats.peak_concurrent, static_cast<int64_t>(p.live.size()));
}

void ChurnDriver::remove(int arm, FlowId id) {
  ArmProc& p = *arms_[arm];
  auto it = p.live.find(id);
  if (it == p.live.end()) return;
  p.live.erase(it);  // ~Flow detaches from the arm's network
  scenario_->release_flow_id(id);
  ++p.stats.completed;
}

ChurnStats ChurnDriver::stats() const {
  ChurnStats total;
  for (const auto& p : arms_) {
    total.spawned += p->stats.spawned;
    total.completed += p->stats.completed;
    total.skipped += p->stats.skipped;
    total.concurrent += static_cast<int64_t>(p->live.size());
    total.peak_concurrent += p->stats.peak_concurrent;
  }
  return total;
}

}  // namespace proteus
