#include "sim/topology.h"

#include <algorithm>
#include <utility>

namespace proteus {

AckAggregator::AckAggregator(Simulator* sim, AckAggregatorConfig cfg,
                             uint64_t seed)
    : sim_(sim), cfg_(cfg), rng_(seed) {
  if (cfg_.enabled) schedule_next_block();
}

void AckAggregator::schedule_next_block() {
  TimeNs gap = std::max<TimeNs>(
      kNsPerMs, static_cast<TimeNs>(rng_.exponential(
                    static_cast<double>(cfg_.mean_block_interval))));
  sim_->schedule_in(gap, [this] {
    TimeNs hold = std::max<TimeNs>(
        kNsPerMs, static_cast<TimeNs>(rng_.exponential(
                      static_cast<double>(cfg_.mean_block_duration))));
    blocked_until_ = std::max(blocked_until_, sim_->now() + hold);
    schedule_next_block();
  });
}

void AckAggregator::deliver(const Packet& pkt, PacketSink* sink) {
  TimeNs when = sim_->now();
  if (cfg_.enabled) {
    const bool held = when < blocked_until_;
    if (held) when = blocked_until_;
    // Keep FIFO: packets released after a block are spaced tightly, which
    // is what makes the post-block ACK-interval ratio spike. ACKs arriving
    // outside a block (and past any flush tail) pass through unspaced —
    // the channel is only rate-limited while it is draining a backlog.
    if (held || when < next_release_at_) {
      when = std::max(when, next_release_at_);
      next_release_at_ = when + cfg_.release_spacing;
    }
  }
  sim_->schedule_at(when, [pkt, sink] { sink->on_packet(pkt); });
}

const char* topology_kind_name(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::kDumbbell:
      return "dumbbell";
    case TopologyKind::kParkingLot:
      return "parkinglot";
    case TopologyKind::kFanIn:
      return "fanin";
    case TopologyKind::kStar:
      return "star";
    case TopologyKind::kCdnEdge:
      return "cdn";
  }
  return "unknown";
}

Topology::EdgeId Topology::add_link(NodeId from, NodeId to, LinkConfig cfg,
                                    uint64_t noise_seed, std::string name) {
  auto e = std::make_unique<Edge>(this, static_cast<EdgeId>(edges_.size()));
  e->from = from;
  e->to = to;
  e->name = name.empty() ? "link" + std::to_string(links_.size())
                         : std::move(name);
  e->link = std::make_unique<Link>(sim_, cfg, noise_seed);
  e->link->set_sink(e.get());
  if (auto ag = aggregators_.find(to); ag != aggregators_.end()) {
    e->aggregator_at_to = ag->second.get();
  }
  links_.push_back(e->id);
  edges_.push_back(std::move(e));
  return edges_.back()->id;
}

Topology::EdgeId Topology::add_delay_edge(NodeId from, NodeId to, TimeNs delay,
                                          std::string name) {
  auto e = std::make_unique<Edge>(this, static_cast<EdgeId>(edges_.size()));
  e->from = from;
  e->to = to;
  e->name = name.empty() ? "delay" + std::to_string(edges_.size())
                         : std::move(name);
  e->delay = delay;
  if (auto ag = aggregators_.find(to); ag != aggregators_.end()) {
    e->aggregator_at_to = ag->second.get();
  }
  edges_.push_back(std::move(e));
  return edges_.back()->id;
}

Topology::PathId Topology::add_path(Route route) {
  paths_.push_back(std::move(route));
  return static_cast<PathId>(paths_.size()) - 1;
}

void Topology::set_flow_path(FlowId id, PathId path) {
  ensure_flow(id).path = path;
}

FaultTimeline* Topology::add_fault_timeline(std::vector<FaultSpec> events,
                                            uint64_t seed) {
  fault_timelines_.push_back(
      std::make_unique<FaultTimeline>(std::move(events), seed));
  return fault_timelines_.back().get();
}

void Topology::set_link_faults(EdgeId edge, FaultTimeline* faults) {
  edges_[edge]->link->set_fault_timeline(faults);
}

void Topology::set_ack_faults(EdgeId edge, FaultTimeline* faults,
                              Link* stats_link) {
  edges_[edge]->ack_faults = faults;
  edges_[edge]->ack_stats_mirror = stats_link;
}

void Topology::set_burst_release_spacing(EdgeId edge, TimeNs spacing) {
  edges_[edge]->burst_release_spacing = spacing;
}

void Topology::set_ack_aggregator(NodeId node, AckAggregatorConfig cfg,
                                  uint64_t seed) {
  AckAggregator* ag =
      (aggregators_[node] = std::make_unique<AckAggregator>(sim_, cfg, seed))
          .get();
  for (auto& e : edges_) {
    if (e->to == node) e->aggregator_at_to = ag;
  }
}

PacketSink* Topology::forward_ingress(FlowId id) {
  PathId p = 0;
  if (const FlowState* fs = find_flow(id)) p = fs->path;
  if (p < 0 || p >= path_count() || paths_[p].forward.empty()) return nullptr;
  return edge_ingress(paths_[p].forward.front());
}

void Topology::send_reverse(const Packet& ack) {
  // Route lookup falls back to path 0 for flows already detached, so the
  // ACK still traverses (and is dropped at) the default reverse path —
  // fault RNG draws and event counts don't depend on detach timing.
  PathId p = 0;
  if (const FlowState* fs = find_flow(ack.flow_id)) p = fs->path;
  if (p < 0 || p >= path_count() || paths_[p].reverse.empty()) return;
  enter_edge(paths_[p].reverse.front(), ack);
}

void Topology::reserve_flows(FlowId planned) {
  if (planned == 0) return;
  const FlowId want = std::min(planned, dense_ceiling_);
  if (want <= dense_flows_.size()) return;
  FlowId cap = dense_flows_.empty() ? 16 : dense_flows_.size();
  while (cap < want) cap *= 2;
  dense_flows_.resize(std::min(cap, dense_ceiling_));
}

Topology::FlowState& Topology::ensure_flow(FlowId id) {
  if (id < dense_ceiling_) {
    // Grow geometrically so a churn run attaching ids one at a time pays
    // O(log n) relocations, not O(n) — and stays on the flat-array demux
    // all the way to the ceiling (the old hard 4096 cap silently dumped
    // later scenario ids into the hash map on the per-packet path).
    if (id >= dense_flows_.size()) reserve_flows(id + 1);
    FlowState& fs = dense_flows_[id];
    fs.present = true;
    return fs;
  }
  FlowState& fs = sparse_flows_[id];
  fs.present = true;
  return fs;
}

void Topology::attach_flow(FlowId id, PacketSink* receiver_side,
                           PacketSink* sender_ack_side) {
  FlowState& fs = ensure_flow(id);  // preserves a path set before attach
  fs.receiver_side = receiver_side;
  fs.sender_ack_side = sender_ack_side;
}

void Topology::detach_flow(FlowId id) {
  if (id < dense_flows_.size()) {
    // Reset the whole slot (not just `present`): re-assigning a path
    // after detach must start from a clean state, exactly as a map
    // erase + re-insert did.
    dense_flows_[id] = FlowState{};
  } else {
    sparse_flows_.erase(id);
  }
}

std::vector<std::pair<std::string, LinkStats>> Topology::link_stats() const {
  std::vector<std::pair<std::string, LinkStats>> rows;
  rows.reserve(links_.size());
  for (EdgeId id : links_) {
    rows.emplace_back(edges_[id]->name, edges_[id]->link->stats());
  }
  return rows;
}

PacketSink* Topology::edge_ingress(EdgeId id) {
  Edge& e = *edges_[id];
  return e.link != nullptr ? static_cast<PacketSink*>(e.link.get())
                           : static_cast<PacketSink*>(&e);
}

void Topology::enter_edge(EdgeId id, const Packet& pkt) {
  edge_ingress(id)->on_packet(pkt);
}

void Topology::Edge::on_packet(const Packet& pkt) {
  if (link != nullptr) {
    // Sink role of a Link edge: the link finished propagation — demux.
    topo->edge_egress(*this, pkt);
  } else {
    // Sink role of a delay edge: ingress — schedule the propagation.
    Edge* e = this;
    topo->sim_->schedule_in(delay,
                            [e, pkt] { e->topo->delay_edge_arrival(*e, pkt); });
  }
}

void Topology::delay_edge_arrival(Edge& e, const Packet& pkt) {
  if (e.ack_faults != nullptr) {
    const TimeNs now = sim_->now();
    if (e.ack_faults->sample_ack_drop(now)) {
      ++e.ack_drops;
      if (e.ack_stats_mirror != nullptr) e.ack_stats_mirror->note_ack_drop();
      return;
    }
    // An active ackburst window holds ACKs until it ends, then flushes
    // them back-to-back (compressed), spaced tightly to stay FIFO.
    if (const TimeNs release = e.ack_faults->ack_release_time(now);
        release > now) {
      const TimeNs when = std::max(release, e.burst_release_cursor);
      e.burst_release_cursor = when + e.burst_release_spacing;
      Edge* ep = &e;
      sim_->schedule_at(when,
                        [ep, pkt] { ep->topo->edge_egress(*ep, pkt); });
      return;
    }
  }
  edge_egress(e, pkt);
}

void Topology::edge_egress(const Edge& e, const Packet& pkt) {
  const FlowState* fsp = find_flow(pkt.flow_id);
  if (fsp == nullptr) return;  // flow already finished; drop silently
  const FlowState& fs = *fsp;
  if (fs.path < 0 || fs.path >= path_count()) return;
  const Route& route = paths_[fs.path];
  // Routes are a handful of hops; a linear scan for this edge's position
  // beats any per-flow index map on the allocation-free hot path.
  for (size_t i = 0; i < route.forward.size(); ++i) {
    if (route.forward[i] != e.id) continue;
    if (i + 1 < route.forward.size()) {
      enter_edge(route.forward[i + 1], pkt);
    } else if (fs.receiver_side != nullptr) {
      fs.receiver_side->on_packet(pkt);
    }
    return;
  }
  for (size_t i = 0; i < route.reverse.size(); ++i) {
    if (route.reverse[i] != e.id) continue;
    if (i + 1 < route.reverse.size()) {
      enter_edge(route.reverse[i + 1], pkt);
    } else if (fs.sender_ack_side != nullptr) {
      // ACKs terminating at a node with a bursty-MAC aggregator go
      // through it; otherwise deliver directly. The aggregator gets the
      // demux shim, not the sender's sink: an ACK held across a block is
      // re-demuxed at release time, so a flow detached mid-block drops
      // its held ACKs instead of delivering into a destroyed sender.
      if (e.aggregator_at_to != nullptr) {
        e.aggregator_at_to->deliver(pkt, &sender_demux_);
      } else {
        fs.sender_ack_side->on_packet(pkt);
      }
    }
    return;
  }
}

void Topology::SenderAckDemux::on_packet(const Packet& pkt) {
  const FlowState* fs = topo->find_flow(pkt.flow_id);
  if (fs == nullptr || fs->sender_ack_side == nullptr) return;
  fs->sender_ack_side->on_packet(pkt);
}

}  // namespace proteus
