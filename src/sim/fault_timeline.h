// FaultTimeline: a scriptable, seed-deterministic schedule of adversarial
// network events, composable with the stochastic noise models (noise.h).
//
// Where LatencyNoise/RateProcess model *benign* channel variability (WiFi
// jitter, MAC scheduling), the fault timeline models the qualitatively
// different events that break learning-based controllers in the wild:
// link blackouts and flaps, capacity collapse/restore steps, RTT route
// changes, packet reordering and duplication, and reverse-path ACK loss or
// compression bursts. Every event is declared up front (FaultSpec) and all
// per-packet randomness draws from a private seeded Rng, so a given spec +
// seed reproduces bit-identically — including across `--jobs=N` sweeps,
// where each scenario owns its whole simulator.
//
// The forward-path hooks are consulted by Link, the reverse-path hooks by
// Dumbbell. The harness-facing string grammar for building FaultSpec lists
// lives in harness/fault_spec.h (`--faults=...`).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/units.h"
#include "stats/rng.h"

namespace proteus {

enum class FaultType {
  kBlackout,     // service rate -> 0 for the window (queue holds, then drops)
  kCapacity,     // capacity multiplied by `value` during the window
  kRouteChange,  // one-way prop delay shifted by `delay` during the window
  kReorder,      // each data packet delayed past successors w.p. `value`
  kDuplicate,    // each data packet delivered twice w.p. `value`
  kAckLoss,      // each ACK dropped on the reverse path w.p. `value`
  kAckBurst,     // ACKs held for the window, released back-to-back at its end
};

struct FaultSpec {
  FaultType type = FaultType::kBlackout;
  TimeNs start = 0;
  // Window length; 0 means "until the end of the run". The harness parser
  // rejects 0 for kAckBurst (a hold with no release would eat every ACK).
  TimeNs duration = 0;
  double value = 0.0;  // probability (reorder/duplicate/ackloss) or
                       // capacity multiplier (capacity)
  TimeNs delay = 0;    // route-change delta (may be negative) or the max
                       // extra delay given to a reordered packet
  // Target link index (harness-level routing: scenario.cc groups events
  // by link and builds one timeline per targeted link; the timeline
  // itself never consults this). 0 = the primary link, the only valid
  // target on a dumbbell. Grammar prefix: `link<i>:`. Last field so the
  // historical 5-element aggregate initializers stay valid.
  int link = 0;

  TimeNs end() const {
    return duration == 0 ? kTimeInfinite : start + duration;
  }
  bool active(TimeNs now) const { return now >= start && now < end(); }
};

class FaultTimeline {
 public:
  FaultTimeline(std::vector<FaultSpec> events, uint64_t seed);

  // ---- Forward path (Link) -------------------------------------------
  bool blackout_active(TimeNs now) const;
  // Earliest time >= `now` at which no blackout window is active (handles
  // overlapping/back-to-back windows); kTimeInfinite for a permanent one.
  TimeNs blackout_clear_time(TimeNs now) const;
  // Product of all active capacity multipliers (1.0 when none).
  double capacity_multiplier(TimeNs now) const;
  // Sum of active route-change deltas added to the one-way prop delay.
  TimeNs prop_delay_delta(TimeNs now) const;
  // Extra delay for this packet when it should be reordered, else 0.
  // Consumes RNG state: call exactly once per serviced packet.
  TimeNs sample_reorder(TimeNs now);
  bool sample_duplicate(TimeNs now);

  // ---- Reverse path (Dumbbell) ---------------------------------------
  bool sample_ack_drop(TimeNs now);
  // End of the ACK-compression window covering `now`, or 0 when none.
  TimeNs ack_release_time(TimeNs now) const;

  const std::vector<FaultSpec>& events() const { return events_; }

 private:
  const FaultSpec* find_active(FaultType type, TimeNs now) const;

  std::vector<FaultSpec> events_;
  Rng rng_;
};

}  // namespace proteus
