// Strongly-suggestive unit helpers used throughout the simulator.
//
// Time is an integer nanosecond count (TimeNs); bandwidth is a small value
// type carrying bits-per-second. Keeping time integral makes event ordering
// exact and runs bit-reproducible.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace proteus {

using TimeNs = int64_t;

inline constexpr TimeNs kNsPerUs = 1'000;
inline constexpr TimeNs kNsPerMs = 1'000'000;
inline constexpr TimeNs kNsPerSec = 1'000'000'000;
inline constexpr TimeNs kTimeInfinite = std::numeric_limits<TimeNs>::max();
// Sentinel for "long before the simulation started" that stays safe in
// time arithmetic (now - kTimeLongAgo never overflows for sim-scale nows).
inline constexpr TimeNs kTimeLongAgo = -(int64_t{1} << 56);

constexpr TimeNs from_us(double us) {
  return static_cast<TimeNs>(us * static_cast<double>(kNsPerUs));
}
constexpr TimeNs from_ms(double ms) {
  return static_cast<TimeNs>(ms * static_cast<double>(kNsPerMs));
}
constexpr TimeNs from_sec(double sec) {
  return static_cast<TimeNs>(sec * static_cast<double>(kNsPerSec));
}
constexpr double to_us(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerUs);
}
constexpr double to_ms(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerMs);
}
constexpr double to_sec(TimeNs t) {
  return static_cast<double>(t) / static_cast<double>(kNsPerSec);
}

// Bits-per-second with convenience conversions.
struct Bandwidth {
  double bps = 0.0;

  static constexpr Bandwidth from_bps(double b) { return Bandwidth{b}; }
  static constexpr Bandwidth from_kbps(double k) { return Bandwidth{k * 1e3}; }
  static constexpr Bandwidth from_mbps(double m) { return Bandwidth{m * 1e6}; }

  constexpr double kbps() const { return bps / 1e3; }
  constexpr double mbps() const { return bps / 1e6; }
  constexpr bool positive() const { return bps > 0.0; }

  // Serialization time for `bytes` at this rate.
  TimeNs tx_time(int64_t bytes) const {
    return static_cast<TimeNs>(
        std::llround(static_cast<double>(bytes) * 8.0 * 1e9 / bps));
  }

  // Bytes in flight for one `rtt` at this rate (bandwidth-delay product).
  double bdp_bytes(TimeNs rtt) const { return bps / 8.0 * to_sec(rtt); }
};

constexpr bool operator==(Bandwidth a, Bandwidth b) { return a.bps == b.bps; }

// Ethernet-ish constants shared by the transport and workloads.
inline constexpr int64_t kMtuBytes = 1500;
inline constexpr int64_t kAckBytes = 40;

}  // namespace proteus
