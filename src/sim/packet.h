// Simulated packet: the unit moved through links and delivered to sinks.
#pragma once

#include <cstdint>

#include "sim/units.h"

namespace proteus {

using FlowId = uint64_t;

struct Packet {
  FlowId flow_id = 0;
  uint64_t seq = 0;        // per-flow data sequence number
  int64_t size_bytes = 0;  // wire size
  bool is_ack = false;

  TimeNs sent_time = 0;  // stamped by the sender when the packet leaves

  // ACK-only fields (per-packet acknowledgements, QUIC style).
  uint64_t acked_seq = 0;        // sequence number being acknowledged
  TimeNs data_sent_time = 0;     // echo of the data packet's sent_time
  TimeNs receiver_time = 0;      // receiver clock at data arrival (for OWD)
  int64_t acked_bytes = 0;       // payload size of the acked data packet
};

// Anything that accepts packets: links, receivers, sender ACK inputs.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void on_packet(const Packet& pkt) = 0;
};

}  // namespace proteus
