// Network: the interface between transport endpoints and whatever
// emulated fabric carries their packets.
//
// Sender/Receiver/Flow (and the application workloads built on them) only
// need four things from the network: an ingress sink for a flow's data
// packets, a way to send an ACK back, and attach/detach of the per-flow
// delivery ports. Dumbbell and the general Topology graph (topology.h)
// both implement this, so every experiment runs unchanged whether the
// fabric is one bottleneck or an arbitrary multi-hop graph.
#pragma once

#include "sim/packet.h"

namespace proteus {

class Network {
 public:
  virtual ~Network() = default;

  // Ingress sink for flow `id`'s data packets (the first hop of its
  // forward route). Stable for the lifetime of the flow's route.
  virtual PacketSink* forward_ingress(FlowId id) = 0;

  // Receivers push ACKs here; they arrive at the flow's sender-side sink
  // after traversing the flow's reverse route.
  virtual void send_reverse(const Packet& ack) = 0;

  // Binds the flow's delivery ports. `receiver_side` gets data packets
  // that survive the forward path, `sender_ack_side` gets ACKs off the
  // reverse path. Either may be null (packets are dropped silently).
  virtual void attach_flow(FlowId id, PacketSink* receiver_side,
                           PacketSink* sender_ack_side) = 0;
  virtual void detach_flow(FlowId id) = 0;
};

}  // namespace proteus
