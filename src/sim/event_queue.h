// Min-heap of timestamped callbacks with stable FIFO order for ties.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/units.h"

namespace proteus {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` at absolute time `when`. Events at equal times fire in
  // insertion order, which keeps runs deterministic.
  void push(TimeNs when, Callback cb);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  TimeNs next_time() const;

  // Pops and returns the earliest event. Precondition: !empty().
  std::pair<TimeNs, Callback> pop();

 private:
  struct Event {
    TimeNs when;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // A raw vector managed with std::push_heap/pop_heap rather than a
  // std::priority_queue: priority_queue::top() is const, which forces a
  // copy of the std::function (a heap allocation) on every pop — the
  // single hottest line of the simulator. pop_heap moves the earliest
  // event to the back, where the callback can be moved out. The (when,
  // seq) ordering is a strict total order (seq is unique), so pop order —
  // and hence simulation behavior — is independent of heap layout.
  std::vector<Event> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace proteus
