// Event queue: timestamped callbacks popped in strict (when, seq) order.
//
// Two interchangeable engines implement the same contract:
//
//  * kTimerWheel (default) — a two-level scheduler. Near-future events
//    (within ~268 ms of the wheel base) land in one of 2048 unsorted
//    buckets of ~131 us each; ordering work happens only when a bucket
//    becomes the "active" bucket and is heapified. Far-future events wait
//    in a small overflow heap and migrate into the wheel as it rotates.
//    Pushing into a future bucket is O(1); popping pays O(log b) on the
//    handful of events sharing one 131 us bucket instead of O(log n) on
//    the whole pending set. Buckets are intrusive singly-linked lists
//    over one pooled node arena rather than 2048 little vectors: the
//    arena's capacity ratchets to the peak TOTAL pending count (a
//    stationary quantity reached during warm-up), whereas per-bucket
//    vectors keep allocating every time one bucket sets a new personal
//    occupancy record — which would break the zero-allocation steady
//    state (tests/sim_alloc_test.cc).
//  * kBinaryHeap — the original single std::push_heap/pop_heap vector.
//    Kept as the reference engine: the cross-engine golden suite runs
//    every scenario under both and asserts byte-identical output.
//
// Both engines pop the exact minimum under the (when, seq) strict total
// order (seq is unique, assigned at push), so the event execution order —
// and therefore every simulation trace — is bit-identical between them.
// Callbacks are InlineCallback (inline capture storage, no heap fallback),
// so steady-state scheduling performs zero heap allocations once the node
// arena and heap vectors have reached their high-water capacities.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/units.h"

namespace proteus {

enum class EventEngine {
  kTimerWheel,  // two-level wheel + overflow (default)
  kBinaryHeap,  // reference single binary heap
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  explicit EventQueue(EventEngine engine = EventEngine::kTimerWheel)
      : engine_(engine) {
    if (engine_ == EventEngine::kTimerWheel) {
      bucket_head_.assign(kNumBuckets, kNil);
      pool_.reserve(1024);
      active_.reserve(512);
      overflow_.reserve(256);
    }
  }

  EventEngine engine() const { return engine_; }

  // Schedules `cb` at absolute time `when`. Events at equal times fire in
  // insertion order, which keeps runs deterministic.
  void push(TimeNs when, Callback&& cb);

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Earliest pending time, or kTimeInfinite when empty. Non-const: the
  // wheel engine may lazily advance its cursor to locate the minimum.
  TimeNs next_time();

  // Pops and returns the earliest event. Precondition: !empty().
  std::pair<TimeNs, Callback> pop();

 private:
  struct Event {
    TimeNs when = 0;
    uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Wheel geometry: 2048 buckets of 2^17 ns (~131 us) cover ~268 ms — wide
  // enough that packet service, propagation, CC timers and RTO sweeps all
  // stay on the wheel; only flow start/stop times and long fault windows
  // visit the overflow heap.
  static constexpr TimeNs kBucketNs = TimeNs{1} << 17;
  static constexpr size_t kNumBuckets = 2048;
  static constexpr TimeNs kWheelSpanNs =
      kBucketNs * static_cast<TimeNs>(kNumBuckets);

  TimeNs horizon() const { return wheel_base_ + kWheelSpanNs; }

  // Ensures the active heap holds the global minimum whenever !empty().
  // Invariant maintained by push/settle: every event outside the active
  // heap has `when >= active_end_`, and the active heap is ordered by
  // (when, seq) — so its top is the global minimum.
  void settle() {
    if (!active_.empty() || size_ == 0) return;
    settle_slow();
  }
  void settle_slow();
  void refill_from_overflow();
  void park_in_bucket(Event e);
  int32_t alloc_node();

  EventEngine engine_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;

  // kBinaryHeap state. A raw vector managed with std::push_heap/pop_heap
  // rather than a std::priority_queue: priority_queue::top() is const,
  // which would force a copy on every pop; pop_heap moves the earliest
  // event to the back, where the callback can be moved out.
  std::vector<Event> heap_;

  // kTimerWheel state. Every wheel-resident event lives in one pooled
  // node arena; buckets are intrusive lists through it and the active
  // heap holds 24-byte refs into it. Heap sift operations therefore move
  // {when, seq, node} triples, never the ~136-byte Event (whose inline
  // callback would pay a relocate per sift level) — profiling showed
  // fat-Event pop_heap plus those relocates were over half the total
  // event-loop cost.
  static constexpr int32_t kNil = -1;
  struct Node {
    Event e;
    int32_t next = kNil;
  };
  struct ActiveRef {
    TimeNs when;
    uint64_t seq;
    int32_t node;
  };
  struct LaterRef {
    bool operator()(const ActiveRef& a, const ActiveRef& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  std::vector<Node> pool_;            // node arena; capacity ratchets
  int32_t free_head_ = kNil;          // freelist through pool_[i].next
  std::vector<int32_t> bucket_head_;  // per-bucket list head, kNil = empty
  std::vector<ActiveRef> active_;  // heapified refs below active_end_
  std::vector<Event> overflow_;    // heap of events at/after horizon()
  TimeNs wheel_base_ = 0;        // start time of bucket 0, multiple of kBucketNs
  size_t cursor_ = 0;            // bucket currently feeding active_
  TimeNs active_end_ = kBucketNs;  // watermark: pushes below it go active
  size_t wheel_count_ = 0;         // events parked in wheel buckets
};

}  // namespace proteus
