// Event queue: timestamped callbacks popped in strict (when, seq) order.
//
// Two interchangeable engines implement the same contract:
//
//  * kTimerWheel (default) — a two-level scheduler. Near-future events
//    (within ~268 ms of the wheel base) land in one of 2048 unsorted
//    buckets of ~131 us each; ordering work happens only when a bucket
//    becomes the "active" bucket and is heapified. Far-future events wait
//    in a small overflow heap and migrate into the wheel as it rotates.
//    Pushing into a future bucket is O(1); popping pays O(log b) on the
//    handful of events sharing one 131 us bucket instead of O(log n) on
//    the whole pending set.
//  * kBinaryHeap — the original single std::push_heap/pop_heap vector.
//    Kept as the reference engine: the cross-engine golden suite runs
//    every scenario under both and asserts byte-identical output.
//
// Both engines pop the exact minimum under the (when, seq) strict total
// order (seq is unique, assigned at push), so the event execution order —
// and therefore every simulation trace — is bit-identical between them.
//
// Wheel storage is split struct-of-arrays: 24-byte meta nodes {when, seq,
// next} live in one contiguous arena that every ordering operation (bucket
// link, bitmap scan, heap sift) walks, while the ~112-byte callback
// captures live in parallel *chunked* slots that are touched exactly twice
// per event — constructed in place at push (the templated push forwards
// the caller's lambda straight into the slot, no InlineCallback relocation)
// and invoked in place at invoke_next(). Chunks never move, so a callback
// that schedules new events (growing the meta arena) cannot invalidate the
// capture currently executing. Profiling the 10k-flow churn gate showed
// capture relocations plus fat-node cache misses were ~30% of the event
// loop; this layout removes both. Capacities ratchet to the workload's
// high-water mark, preserving the zero-allocation steady state
// (tests/sim_alloc_test.cc).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/inline_callback.h"
#include "sim/units.h"

namespace proteus {

enum class EventEngine {
  kTimerWheel,  // two-level wheel + overflow (default)
  kBinaryHeap,  // reference single binary heap
};

class EventQueue {
 public:
  using Callback = InlineCallback;

  explicit EventQueue(EventEngine engine = EventEngine::kTimerWheel)
      : engine_(engine) {
    if (engine_ == EventEngine::kTimerWheel) {
      bucket_head_.assign(kNumBuckets, kNil);
      bucket_bits_.assign(kNumBuckets / 64, 0);
      pool_.reserve(kChunkSlots);
      chunks_.emplace_back(new Slot[kChunkSlots]);
      active_.reserve(512);
      young_.reserve(256);
      overflow_.reserve(256);
    }
  }

  ~EventQueue() { clear_wheel_slots(); }

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventEngine engine() const { return engine_; }

  // Schedules `f` (anything convertible to Callback) at absolute time
  // `when`. Events at equal times fire in insertion order, which keeps
  // runs deterministic. Templated so a lambda is constructed directly in
  // its resting slot — the wheel path performs zero capture relocations.
  template <typename F>
  void push(TimeNs when, F&& f) {
    const uint64_t seq = next_seq_++;
    ++size_;
    if (engine_ == EventEngine::kBinaryHeap) {
      heap_.push_back(Event{when, seq, Callback(std::forward<F>(f))});
      std::push_heap(heap_.begin(), heap_.end(), Later{});
      return;
    }
    const int32_t i = alloc_node();
    ::new (static_cast<void*>(slot(i))) Callback(std::forward<F>(f));
    Node& n = pool_[static_cast<size_t>(i)];
    n.when = when;
    n.seq = seq;
    if (when < active_end_) {
      // At or before the watermark: compete directly with the active run
      // via the small young heap (see its declaration). This also absorbs
      // pushes that land "behind" the wheel cursor (the clock trails the
      // cursor after idle gaps), keeping order exact.
      young_.push_back(ActiveRef{when, seq, i});
      std::push_heap(young_.begin(), young_.end(), LaterRef{});
    } else if (when < horizon()) {
      park_node(i);
    } else {
      overflow_.push_back(ActiveRef{when, seq, i});
      std::push_heap(overflow_.begin(), overflow_.end(), LaterRef{});
    }
  }

  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  // Earliest pending time, or kTimeInfinite when empty. Non-const: the
  // wheel engine may lazily advance its cursor to locate the minimum.
  TimeNs next_time();

  // Pops and returns the earliest event. Precondition: !empty().
  std::pair<TimeNs, Callback> pop();

  // Pops the earliest event and invokes its callback *in place* — the
  // simulation driver's fast path. On the wheel engine the capture never
  // moves: it is destroyed in its slot after running, and the node is
  // recycled only then, so a push from inside the callback can never
  // overwrite the running capture. Precondition: !empty().
  void invoke_next();

  // Fused driver loop: invokes events in (when, seq) order while the
  // earliest `when` is <= `until` (inclusive) or < `until` (exclusive),
  // writing each event's time to *now and bumping *events before its
  // callback runs (callbacks observe the clock through those locations).
  // Equivalent to a next_time()/invoke_next() loop, but one call per span
  // instead of three cross-TU calls per event.
  void run_span(TimeNs until, bool inclusive, TimeNs* now, uint64_t* events);

 private:
  struct Event {
    TimeNs when = 0;
    uint64_t seq = 0;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  // Wheel geometry: 2048 buckets of 2^17 ns (~131 us) cover ~268 ms — wide
  // enough that packet service, propagation, CC timers and RTO sweeps all
  // stay on the wheel; only flow start/stop times and long fault windows
  // visit the overflow heap.
  static constexpr TimeNs kBucketNs = TimeNs{1} << 17;
  static constexpr size_t kNumBuckets = 2048;
  static constexpr TimeNs kWheelSpanNs =
      kBucketNs * static_cast<TimeNs>(kNumBuckets);

  TimeNs horizon() const { return wheel_base_ + kWheelSpanNs; }

  // Ensures active_/young_ hold the global minimum whenever !empty().
  // Invariant maintained by push/settle: every event outside the two has
  // `when >= active_end_`, active_ is sorted descending by (when, seq)
  // and young_ is a min-heap — so the earlier of active_.back() and
  // young_.front() is the global minimum.
  void settle() {
    if (!active_.empty() || !young_.empty() || size_ == 0) return;
    settle_slow();
  }
  void settle_slow();
  void refill_from_overflow();
  // Links meta node `i` (when/seq already in place) into the bucket its
  // `when` selects. Precondition: when < horizon().
  void park_node(int32_t i);
  int32_t alloc_node();
  void clear_wheel_slots() noexcept;

  EventEngine engine_;
  size_t size_ = 0;
  uint64_t next_seq_ = 0;

  // kBinaryHeap state. A raw vector managed with std::push_heap/pop_heap
  // rather than a std::priority_queue: priority_queue::top() is const,
  // which would force a copy on every pop; pop_heap moves the earliest
  // event to the back, where the callback can be moved out.
  std::vector<Event> heap_;

  // kTimerWheel state, struct-of-arrays. pool_ holds the hot 24-byte meta
  // nodes (contiguous, may reallocate on growth); chunks_ holds the
  // parallel capture slots in fixed 256-slot chunks whose addresses are
  // stable for the queue's lifetime. Buckets are intrusive lists through
  // pool_[i].next, and the active/overflow heaps hold 24-byte refs — no
  // ordering operation ever touches a capture byte.
  static constexpr int32_t kNil = -1;
  static constexpr size_t kChunkSlots = 256;  // power of two, see slot()
  struct Node {
    TimeNs when;
    uint64_t seq;
    int32_t next;
  };
  struct Slot {
    alignas(std::max_align_t) unsigned char bytes[sizeof(Callback)];
  };
  Callback* slot(int32_t i) {
    return reinterpret_cast<Callback*>(
        chunks_[static_cast<size_t>(i) / kChunkSlots]
            .get()[static_cast<size_t>(i) % kChunkSlots]
            .bytes);
  }
  struct ActiveRef {
    TimeNs when;
    uint64_t seq;
    int32_t node;
  };
  struct LaterRef {
    bool operator()(const ActiveRef& a, const ActiveRef& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };
  // True when young_'s top precedes the sorted run's tail. Precondition:
  // at least one of the two is non-empty.
  bool young_first() const {
    if (young_.empty()) return false;
    if (active_.empty()) return true;
    const ActiveRef& y = young_.front();
    const ActiveRef& a = active_.back();
    if (y.when != a.when) return y.when < a.when;
    return y.seq < a.seq;
  }
  // Removes and returns the earliest pending ref. Precondition: settled
  // and !empty().
  ActiveRef take_earliest() {
    if (young_first()) {
      std::pop_heap(young_.begin(), young_.end(), LaterRef{});
      const ActiveRef r = young_.back();
      young_.pop_back();
      return r;
    }
    const ActiveRef r = active_.back();
    active_.pop_back();
    return r;
  }
  // Finds the first non-empty bucket at or after `from` via the occupancy
  // bitmap (one ctz per 64 buckets), or kNumBuckets when the rest of the
  // wheel is empty. The linear bucket_head_ scan this replaces was ~19%
  // of the event loop on sparse many-flow workloads, where consecutive
  // events are typically many empty buckets apart.
  size_t next_occupied_bucket(size_t from) const;
  void set_bucket_bit(size_t b) { bucket_bits_[b >> 6] |= 1ULL << (b & 63); }
  void clear_bucket_bit(size_t b) {
    bucket_bits_[b >> 6] &= ~(1ULL << (b & 63));
  }

  std::vector<Node> pool_;            // meta arena; capacity ratchets
  std::vector<std::unique_ptr<Slot[]>> chunks_;  // capture slots, stable
  int32_t free_head_ = kNil;          // freelist through pool_[i].next
  std::vector<int32_t> bucket_head_;  // per-bucket list head, kNil = empty
  std::vector<uint64_t> bucket_bits_;  // occupancy bitmap over bucket_head_
  // The activated bucket's refs, sorted descending by (when, seq) and
  // consumed from the back: one O(k log k) sort at activation, then O(1)
  // per pop — versus the former heap's O(log k) sift per pop. Pushes that
  // land below the watermark after activation go to young_ instead (a
  // small min-heap, usually near-empty), and every consumer takes the
  // earlier of active_.back() and young_.front().
  std::vector<ActiveRef> active_;
  std::vector<ActiveRef> young_;
  // Far-future events (at/after horizon()) wait in a min-heap of refs
  // into the same arena; migration into the wheel is a pure meta-node
  // relink with no capture motion at all.
  std::vector<ActiveRef> overflow_;
  TimeNs wheel_base_ = 0;        // start time of bucket 0, multiple of kBucketNs
  size_t cursor_ = 0;            // bucket currently feeding active_
  TimeNs active_end_ = kBucketNs;  // watermark: pushes below it go active
  size_t wheel_count_ = 0;         // events parked in wheel buckets
};

}  // namespace proteus
