// Topology: an arbitrary node/edge graph of Link objects with per-flow
// static routes, generalizing the historical single-bottleneck Dumbbell.
//
// Nodes are integer ids; edges are either queued Links (serialization +
// tail-drop buffer + propagation, link.h) or pure delay edges (an
// uncongested path segment — the classic "ACKs are small" reverse path).
// Every flow is assigned a path: a forward edge sequence for data and a
// reverse edge sequence for ACKs. Each edge delivers into the topology's
// per-edge egress, which demuxes by flow id and either forwards into the
// next edge of the route or delivers to the flow's endpoint sink.
//
// Fault timelines (fault_timeline.h) attach per edge: forward hooks
// (blackout/capacity/route/reorder/duplicate) on Link edges, reverse
// hooks (ackloss/ackburst) on delay edges. A single timeline object may
// be shared by several edges — the Dumbbell does exactly that so its
// forward and reverse faults draw from one RNG stream, as they always
// have. Nodes may carry an AckAggregator modeling bursty WiFi MAC
// scheduling for ACKs terminating there.
//
// Dumbbell (dumbbell.h) is a thin two-node instance of this class; the
// topology_golden_test suite pins that equivalence bit-for-bit against
// digests captured from the pre-topology tree.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace proteus {

struct AckAggregatorConfig {
  bool enabled = false;
  TimeNs mean_block_interval = from_ms(120.0);  // Poisson gap between blocks
  TimeNs mean_block_duration = from_ms(10.0);   // exponential hold time
  TimeNs release_spacing = from_us(30.0);       // back-to-back ACK spacing
};

// Holds ACKs during "blocked" periods and flushes them in bursts.
class AckAggregator {
 public:
  AckAggregator(Simulator* sim, AckAggregatorConfig cfg, uint64_t seed);

  // Delivers `pkt` to `sink`, possibly delayed by an ongoing block.
  void deliver(const Packet& pkt, PacketSink* sink);

 private:
  void schedule_next_block();

  Simulator* sim_;
  AckAggregatorConfig cfg_;
  Rng rng_;
  TimeNs blocked_until_ = 0;
  TimeNs next_release_at_ = 0;
};

// The registered multi-bottleneck shapes a Scenario can instantiate
// (harness/scenario.h maps these onto concrete graphs; the CLI grammar
// is --topology=, harness/cli.h).
enum class TopologyKind {
  kDumbbell,    // 1 bottleneck + shared reverse delay (the historical shape)
  kParkingLot,  // arms hops in a row; path 0 end-to-end, others cross 1 hop
  kFanIn,       // arms edge links converging on 1 shared core link
  kStar,        // shared core + arms leaf links with heterogeneous RTTs
  kCdnEdge,     // sharded CDN edge: shared core + per-arm leaf subgraphs,
                // partitioned for --shards=N execution (harness/scenario.h)
};

struct TopologyParams {
  TopologyKind kind = TopologyKind::kDumbbell;
  // Hop count (parking-lot), edge-link count (fan-in), leaf count (star).
  int arms = 3;
  // Access/edge/leaf link rate; 0 derives it from the core rate
  // (2x for fan-in edges and star core — edges feed, core fans out).
  double edge_bandwidth_mbps = 0.0;
  // Star: leaf i's one-way delay is scaled by 1 + rtt_spread * i /
  // (arms - 1), so leaves span [base, base * (1 + rtt_spread)].
  double rtt_spread = 1.0;
};

const char* topology_kind_name(TopologyKind kind);

class Topology final : public Network {
 public:
  using NodeId = int;
  using EdgeId = int;
  using PathId = int;

  // A flow's static route: data packets traverse `forward` in order,
  // ACKs traverse `reverse` in order. Several flows may share one path.
  struct Route {
    std::vector<EdgeId> forward;
    std::vector<EdgeId> reverse;
  };

  explicit Topology(Simulator* sim) : sim_(sim) {}

  // ---- Graph construction --------------------------------------------
  // Queued bottleneck edge from `from` to `to`. `name` labels the per-hop
  // stats row in exports.
  EdgeId add_link(NodeId from, NodeId to, LinkConfig cfg, uint64_t noise_seed,
                  std::string name = "");
  // Pure-delay edge (uncongested segment, typically an ACK path).
  EdgeId add_delay_edge(NodeId from, NodeId to, TimeNs delay,
                        std::string name = "");

  // Registers a route template; flows reference it by id. The first
  // registered path is the default for flows attached without one.
  PathId add_path(Route route);
  void set_flow_path(FlowId id, PathId path);

  // ---- Fault / impairment attachment ---------------------------------
  // Creates a timeline owned by the topology; attach it to any number of
  // edges (shared RNG stream across all of them).
  FaultTimeline* add_fault_timeline(std::vector<FaultSpec> events,
                                    uint64_t seed);
  // Forward-path hooks: blackout/capacity/route/reorder/duplicate.
  void set_link_faults(EdgeId edge, FaultTimeline* faults);
  // Reverse-path hooks on a delay edge: ackloss/ackburst. Dropped-ACK
  // counts mirror into `stats_link`'s LinkStats when non-null, so one
  // bottleneck row carries every fault counter (the Dumbbell contract).
  void set_ack_faults(EdgeId edge, FaultTimeline* faults,
                      Link* stats_link = nullptr);
  // Spacing between compressed ACKs released at the end of an ackburst
  // window (default mirrors AckAggregatorConfig::release_spacing).
  void set_burst_release_spacing(EdgeId edge, TimeNs spacing);
  // Bursty-MAC ACK aggregation for ACK routes terminating at `node`.
  void set_ack_aggregator(NodeId node, AckAggregatorConfig cfg,
                          uint64_t seed);

  // ---- Network interface (transport-facing) --------------------------
  PacketSink* forward_ingress(FlowId id) override;
  void send_reverse(const Packet& ack) override;
  void attach_flow(FlowId id, PacketSink* receiver_side,
                   PacketSink* sender_ack_side) override;
  void detach_flow(FlowId id) override;

  // ---- Introspection --------------------------------------------------
  // Queued links only (delay edges carry no queue/stats of their own
  // beyond ACK drops), in add_link order.
  int link_count() const { return static_cast<int>(links_.size()); }
  // The EdgeId of queued link i, for fault attachment by link index.
  EdgeId link_edge(int i) const { return links_[i]; }
  Link& link(int i) { return *edges_[links_[i]]->link; }
  const Link& link(int i) const { return *edges_[links_[i]]->link; }
  const std::string& link_name(int i) const { return edges_[links_[i]]->name; }
  // Per-hop stats rows for CSV export, in add_link order.
  std::vector<std::pair<std::string, LinkStats>> link_stats() const;
  int path_count() const { return static_cast<int>(paths_.size()); }
  const Route& path(PathId id) const { return paths_[id]; }
  // ACKs dropped by an ackloss fault on this delay edge.
  int64_t ack_drops(EdgeId edge) const { return edges_[edge]->ack_drops; }
  Simulator& sim() { return *sim_; }

  // ---- Flow-table scale controls --------------------------------------
  // Pre-sizes the dense demux for ids < `planned` (rounded up to a power
  // of two, capped at the ceiling), so a scale run never pays growth
  // relocations on the attach path.
  void reserve_flows(FlowId planned);
  // Ids at or above the ceiling spill into the sparse map; below it the
  // dense array grows geometrically on demand. Lowering the ceiling never
  // shrinks an already-grown table.
  void set_dense_ceiling(FlowId ceiling) { dense_ceiling_ = ceiling; }
  FlowId dense_ceiling() const { return dense_ceiling_; }
  size_t dense_capacity() const { return dense_flows_.size(); }
  // Regression hook: scenario-allocated ids must never land here.
  size_t sparse_flow_count() const { return sparse_flows_.size(); }

 private:
  // One directed edge. Doubles as a PacketSink: for Link edges the sink
  // role is the link's *egress* (delivery demux); for delay edges it is
  // the *ingress* (schedule the propagation delay).
  struct Edge final : PacketSink {
    Edge(Topology* t, EdgeId i) : topo(t), id(i) {}
    void on_packet(const Packet& pkt) override;

    Topology* topo;
    EdgeId id;
    NodeId from = 0;
    NodeId to = 0;
    std::string name;
    std::unique_ptr<Link> link;  // null for delay edges

    // Delay-edge state.
    TimeNs delay = 0;
    FaultTimeline* ack_faults = nullptr;  // ackloss/ackburst hooks
    Link* ack_stats_mirror = nullptr;     // note_ack_drop target
    int64_t ack_drops = 0;
    TimeNs burst_release_cursor = 0;  // spaces compressed-ACK releases
    TimeNs burst_release_spacing = from_us(30.0);

    // ACK routes ending at `to` drain through this aggregator (cached
    // from aggregators_ so the per-ACK hot path skips the hash lookup).
    AckAggregator* aggregator_at_to = nullptr;
  };

  struct FlowState {
    bool present = false;  // attached or path-assigned (and not detached)
    PathId path = 0;
    PacketSink* receiver_side = nullptr;
    PacketSink* sender_ack_side = nullptr;
  };

  // Hands `pkt` to edge `id`'s ingress (link queue or delay schedule).
  void enter_edge(EdgeId id, const Packet& pkt);
  // A delay edge's propagation elapsed: run reverse-path fault hooks,
  // then egress.
  void delay_edge_arrival(Edge& e, const Packet& pkt);
  // `pkt` exits edge `e`: demux by flow, forward or deliver.
  void edge_egress(const Edge& e, const Packet& pkt);
  PacketSink* edge_ingress(EdgeId id);

  // ACKs that were queued behind an aggregator block must re-demux at
  // release time: capturing the sender's sink pointer at enqueue time
  // dangled when a churned flow detached during the block.
  struct SenderAckDemux final : PacketSink {
    explicit SenderAckDemux(Topology* t) : topo(t) {}
    void on_packet(const Packet& pkt) override;
    Topology* topo;
  };

  // Flow ids are small dense integers (Scenario::allocate_flow_id counts
  // up from 1), so flow state lives in a flat array indexed by id and the
  // per-packet demux is a bounds check + load instead of a hash lookup —
  // the lookup runs twice per data packet and twice per ACK, and the hash
  // version cost the simulator ~19% of its event rate. The array grows
  // geometrically up to dense_ceiling_ (default 2M ids: million-flow
  // churn stays on the flat path; the historical cap was a hard 4096
  // after which scenario ids silently fell into the map). Hand-built
  // topologies may use arbitrary ids; ids past the ceiling spill into a
  // map off the common path.
  static constexpr FlowId kDefaultDenseCeiling = 1ULL << 21;
  FlowState* find_flow(FlowId id) {
    if (id < dense_flows_.size()) {
      FlowState& fs = dense_flows_[id];
      return fs.present ? &fs : nullptr;
    }
    if (sparse_flows_.empty()) return nullptr;
    auto it = sparse_flows_.find(id);
    return it != sparse_flows_.end() ? &it->second : nullptr;
  }
  // Creates (or revives) the state slot for `id` and marks it present.
  FlowState& ensure_flow(FlowId id);

  Simulator* sim_;
  SenderAckDemux sender_demux_{this};
  std::vector<std::unique_ptr<Edge>> edges_;
  std::vector<EdgeId> links_;  // subset of edges_ that are queued Links
  std::vector<Route> paths_;
  FlowId dense_ceiling_ = kDefaultDenseCeiling;
  std::vector<FlowState> dense_flows_;               // ids < dense_ceiling_
  std::unordered_map<FlowId, FlowState> sparse_flows_;
  std::unordered_map<NodeId, std::unique_ptr<AckAggregator>> aggregators_;
  std::vector<std::unique_ptr<FaultTimeline>> fault_timelines_;
};

}  // namespace proteus
