// Non-congestion network variability models (paper section 5 context).
//
// The paper's live-Internet WiFi paths exhibit (a) per-packet latency jitter
// of a few ms with occasional tens-of-ms spikes and (b) time-varying
// capacity from MAC scheduling. These models inject exactly those effects
// into a simulated link so the noise-tolerance machinery has something real
// to tolerate. ACK burstiness (the trigger for the per-ACK filter) is
// modeled separately by the reverse-path AckAggregator in dumbbell.h.
#pragma once

#include <memory>
#include <vector>

#include "sim/units.h"
#include "stats/rng.h"

namespace proteus {

// Per-packet extra one-way latency, independent of queueing.
class LatencyNoise {
 public:
  virtual ~LatencyNoise() = default;
  virtual TimeNs sample(Rng& rng, TimeNs now) = 0;
};

// Zero noise (wired Emulab-style link).
class NoLatencyNoise final : public LatencyNoise {
 public:
  TimeNs sample(Rng&, TimeNs) override { return 0; }
};

// Truncated-Gaussian jitter: N(mean, stddev) clipped at 0.
class GaussianNoise final : public LatencyNoise {
 public:
  GaussianNoise(TimeNs mean, TimeNs stddev) : mean_(mean), stddev_(stddev) {}
  TimeNs sample(Rng& rng, TimeNs now) override;

 private:
  TimeNs mean_;
  TimeNs stddev_;
};

// WiFi-like noise: small Gaussian jitter on every packet plus occasional
// heavy-tailed (Pareto) spikes, matching the paper's observation of ~5 ms
// typical deviation with tens-of-ms outliers.
class WifiNoise final : public LatencyNoise {
 public:
  struct Config {
    TimeNs jitter_stddev = from_ms(1.5);
    double spike_probability = 0.01;     // per packet
    TimeNs spike_scale = from_ms(8.0);   // Pareto x_m
    double spike_shape = 1.5;            // Pareto alpha (heavy tail)
    TimeNs spike_cap = from_ms(120.0);   // sanity cap
  };

  explicit WifiNoise(Config cfg) : cfg_(cfg) {}
  TimeNs sample(Rng& rng, TimeNs now) override;

 private:
  Config cfg_;
};

// Time-varying capacity multiplier applied to a link's nominal rate.
class RateProcess {
 public:
  virtual ~RateProcess() = default;
  // Multiplier in (0, ...] effective at virtual time `now`. Must be
  // piecewise-constant and advance monotonically with `now`.
  virtual double multiplier(Rng& rng, TimeNs now) = 0;
};

class ConstantRateProcess final : public RateProcess {
 public:
  explicit ConstantRateProcess(double m = 1.0) : m_(m) {}
  double multiplier(Rng&, TimeNs) override { return m_; }

 private:
  double m_;
};

// Continuous-time Markov modulation: a set of capacity states with
// exponentially distributed dwell times; uniform next-state choice.
class MarkovRateProcess final : public RateProcess {
 public:
  struct Config {
    std::vector<double> multipliers = {1.0, 0.8, 0.55};
    TimeNs mean_dwell = from_ms(250.0);
  };

  explicit MarkovRateProcess(Config cfg);
  double multiplier(Rng& rng, TimeNs now) override;

 private:
  Config cfg_;
  size_t state_ = 0;
  TimeNs next_transition_ = 0;
};

}  // namespace proteus
