// ShardSet: conservative time-window parallel execution of a partitioned
// simulation.
//
// A simulation is split into P *parts*, each owning a disjoint slice of
// the mutable state (links, flows, per-part RNG streams) and running its
// own Simulator (clock + zero-alloc wheel EventQueue). Parts exchange
// packets only through post(): a cross-part handoff carrying an absolute
// delivery time. Execution proceeds in lockstep windows of length W on
// the absolute grid 0, W, 2W, ...: within a window every part executes
// its local events with `when < window_end` (Simulator::run_before), and
// at each boundary the pending handoffs are drained into their
// destination queues before the next window starts.
//
// Correctness rests on the conservative-lookahead invariant: W is chosen
// as the minimum propagation delay of any cross-part edge, so a packet
// posted while executing window k arrives no earlier than the start of
// window k+1 — by the time a part executes a window, every event that
// can ever be injected into that window is already in its queue. post()
// enforces this at runtime and throws on a violation (a topology whose
// cut has zero lookahead must be merged into one part instead).
//
// Determinism rules (the "bit-identical for every --shards=N" contract):
//  * The partition into parts and the window W are derived from the
//    *topology only* — never from the worker-thread count. N merely maps
//    parts onto threads (part p runs on thread p mod N), so each part's
//    Simulator executes the identical event stream for every N.
//  * Handoffs posted on one (src, dst) pair carry a per-pair monotone
//    sequence number; at a boundary the destination drains all pending
//    handoffs sorted by (when, src, pair-seq) — a total order independent
//    of which threads produced them and when.
//  * Same-time ties between a locally scheduled event and a drained
//    handoff resolve local-first (the local push always has the smaller
//    queue sequence), identically for every N.
//  * Each part's Rng is seeded from (seed, part); no component may draw
//    from another part's stream.
//
// A 1-part ShardSet degenerates to a plain Simulator run (no windows, no
// drains), so shapes without a positive-lookahead cut — the dumbbell, the
// parking lot, anything with a shared reverse fault timeline — execute
// byte-identically to the historical serial engine under any --shards=N.
//
// Thread-safety: during a window's exec phase, thread t exclusively owns
// every part p with p % threads == t — both the part's Simulator and the
// pending vectors of pairs (p, *). During the drain phase (after a
// barrier) the same thread drains pairs (*, p). All cross-thread
// visibility is through the two std::barrier phases per window; no locks
// or atomics appear on the event path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace proteus {

class ShardSet {
 public:
  // `window` must be positive when parts > 1 (it is the cut lookahead).
  // Part 0 is seeded with `seed` exactly as a serial Simulator would be;
  // later parts derive their streams by the golden-ratio step.
  ShardSet(int parts, TimeNs window, uint64_t seed,
           EventEngine engine = EventEngine::kTimerWheel);

  int parts() const { return static_cast<int>(sims_.size()); }
  TimeNs window() const { return window_; }
  Simulator& part(int p) { return *sims_[p]; }
  const Simulator& part(int p) const { return *sims_[p]; }

  // Cross-part handoff: run `cb` on part `dst` at absolute time `when`.
  // Must be called from `src`'s execution context (an event callback or
  // construction before the first run). src == dst is the local fast
  // path — a plain schedule_at, no deferral, preserving the exact serial
  // code path for intra-part traffic. Throws on a lookahead violation
  // (`when` inside the currently executing window).
  void post(int src, int dst, TimeNs when, EventQueue::Callback cb);

  // Runs every part up to and including `t` (events at exactly `t`
  // execute, matching Simulator::run_until) on `threads` workers.
  // Callable repeatedly with increasing `t`; window alignment persists
  // across calls, so chunked driving (harness/supervisor.h) produces the
  // same streams as one big call.
  void run_until(TimeNs t, int threads);

  // Sum of events executed across all parts.
  uint64_t events_processed() const;
  // Part 0's clock: the canonical "scenario time" after run_until(t)
  // returns (== t, exactly as the serial engine guarantees).
  TimeNs now() const { return sims_[0]->now(); }

 private:
  struct Handoff {
    TimeNs when = 0;
    uint64_t seq = 0;  // per-(src,dst) monotone, assigned at post()
    EventQueue::Callback cb;
  };
  // One directed (src, dst) channel. Written only by src's owner thread
  // (exec phase), drained only by dst's owner thread (drain phase);
  // the window barrier orders the two.
  struct Pair {
    std::vector<Handoff> pending;
    uint64_t next_seq = 0;
  };

  Pair& pair(int src, int dst) { return pairs_[src * parts() + dst]; }
  // Schedules every pending handoff destined for `dst`, sorted by
  // (when, src, seq), then clears the channels (capacity retained).
  void drain_into(int dst);
  void run_windows_serial(TimeNs t);
  void run_windows_threaded(TimeNs t, int threads);

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Pair> pairs_;  // parts x parts, indexed src * P + dst
  TimeNs window_ = 0;
  TimeNs grid_ = 0;            // start of the currently executing window
  TimeNs window_end_ = 0;      // lookahead floor enforced by post()
};

}  // namespace proteus
