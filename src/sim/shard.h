// ShardSet: conservative time-window parallel execution of a partitioned
// simulation.
//
// A simulation is split into P *parts*, each owning a disjoint slice of
// the mutable state (links, flows, per-part RNG streams) and running its
// own Simulator (clock + zero-alloc wheel EventQueue). Parts exchange
// packets only through post(): a cross-part handoff carrying an absolute
// delivery time. Execution proceeds in lockstep windows of length W on
// the absolute grid 0, W, 2W, ...: within a window every part executes
// its local events with `when < window_end` (Simulator::run_before), and
// at each boundary the pending handoffs are drained into their
// destination queues before the next window starts.
//
// Correctness rests on the conservative-lookahead invariant: W is chosen
// as the minimum propagation delay of any cross-part edge, so a packet
// posted while executing window k arrives no earlier than the start of
// window k+1 — by the time a part executes a window, every event that
// can ever be injected into that window is already in its queue. post()
// enforces this at runtime and throws on a violation (a topology whose
// cut has zero lookahead must be merged into one part instead).
//
// Determinism rules (the "bit-identical for every --shards=N" contract):
//  * The partition into parts and the window W are derived from the
//    *topology only* — never from the worker-thread count. N merely maps
//    parts onto threads (part p runs on thread p mod N), so each part's
//    Simulator executes the identical event stream for every N.
//  * Handoffs posted on one (src, dst) pair carry a per-pair monotone
//    sequence number; at a boundary the destination drains all pending
//    handoffs sorted by (when, src, pair-seq) — a total order independent
//    of which threads produced them and when.
//  * Same-time ties between a locally scheduled event and a drained
//    handoff resolve local-first (the local push always has the smaller
//    queue sequence), identically for every N.
//  * Each part's Rng is seeded from (seed, part); no component may draw
//    from another part's stream.
//
// A 1-part ShardSet degenerates to a plain Simulator run (no windows, no
// drains), so shapes without a positive-lookahead cut — the dumbbell, the
// parking lot, anything with a shared reverse fault timeline — execute
// byte-identically to the historical serial engine under any --shards=N.
//
// Idle-window fast-forward: after a boundary drain, every event that can
// ever land in the skipped region is already in some part's queue (posts
// only happen while a window executes, and the drain just moved all of
// them). So when the earliest pending event across all parts lies beyond
// the next window, the grid jumps straight to that event's window —
// floor(min_next / W) * W — instead of grinding through empty windows.
// Skipped windows execute no events and consume no queue sequence
// numbers, so the event stream is byte-identical with and without the
// jump; only the number of barrier crossings changes (counted in
// WindowStats). See DESIGN.md §4g.
//
// Thread-safety: during a window's exec phase, thread t exclusively owns
// every part p with p % threads == t — both the part's Simulator and the
// pending vectors of pairs (p, *). During the drain phase (after a
// barrier) the same thread drains pairs (*, p). All cross-thread
// visibility is through the two std::barrier phases per window; no locks
// or atomics appear on the event path.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace proteus {

class ShardSet {
 public:
  // `window` must be positive when parts > 1 (it is the cut lookahead).
  // Part 0 is seeded with `seed` exactly as a serial Simulator would be;
  // later parts derive their streams by the golden-ratio step.
  ShardSet(int parts, TimeNs window, uint64_t seed,
           EventEngine engine = EventEngine::kTimerWheel);

  int parts() const { return static_cast<int>(sims_.size()); }
  TimeNs window() const { return window_; }
  Simulator& part(int p) { return *sims_[p]; }
  const Simulator& part(int p) const { return *sims_[p]; }

  // Cross-part handoff: run `f` on part `dst` at absolute time `when`.
  // Must be called from `src`'s execution context (an event callback or
  // construction before the first run). src == dst is the local fast
  // path — a plain schedule_at, no deferral, preserving the exact serial
  // code path for intra-part traffic. Throws on a lookahead violation
  // (`when` inside the currently executing window).
  //
  // Templated like Simulator::schedule_at: the caller's lambda is
  // constructed directly in the channel slot (or the local wheel slot),
  // never routed through a Callback temporary, so a handoff relocates its
  // capture exactly once — at the boundary drain into the destination
  // wheel — instead of twice.
  template <typename F>
  void post(int src, int dst, TimeNs when, F&& f) {
    if (src == dst) {
      sims_[static_cast<size_t>(src)]->schedule_at(when, std::forward<F>(f));
      return;
    }
    const TimeNs floor = window_end_.load(std::memory_order_relaxed);
    if (when < floor) throw_lookahead_violation(src, dst, when, floor);
    Pair& pr = pair(src, dst);
    if (!pr.pending.empty() && when < pr.pending.back().when) {
      pr.sorted = false;
    }
    pr.pending.emplace_back(when, pr.next_seq++, std::forward<F>(f));
  }

  // Runs every part up to and including `t` (events at exactly `t`
  // execute, matching Simulator::run_until) on `threads` workers.
  // Callable repeatedly with increasing `t`; window alignment persists
  // across calls, so chunked driving (harness/supervisor.h) produces the
  // same streams as one big call.
  void run_until(TimeNs t, int threads);

  // Sum of events executed across all parts.
  uint64_t events_processed() const;
  // Part 0's clock: the canonical "scenario time" after run_until(t)
  // returns (== t, exactly as the serial engine guarantees).
  TimeNs now() const { return sims_[0]->now(); }

  // Window-loop accounting. `barrier_windows` counts windows actually
  // executed (one exec + one drain each); `windows_fast_forwarded` counts
  // grid slots skipped by the idle fast-forward. Their sum is the number
  // of windows a non-fast-forwarding loop would have run. Single-part
  // sets report zeros (no window loop at all). Read after run_until
  // returns; not synchronized against a concurrent run.
  struct WindowStats {
    uint64_t barrier_windows = 0;
    uint64_t windows_fast_forwarded = 0;
  };
  WindowStats window_stats() const { return stats_; }

 private:
  struct Handoff {
    TimeNs when = 0;
    uint64_t seq = 0;  // per-(src,dst) monotone, assigned at post()
    EventQueue::Callback cb;
    Handoff() = default;
    template <typename F>
    Handoff(TimeNs w, uint64_t s, F&& f)
        : when(w), seq(s), cb(std::forward<F>(f)) {}
  };
  // One directed (src, dst) channel. Written only by src's owner thread
  // (exec phase), drained only by dst's owner thread (drain phase);
  // the window barrier orders the two. `sorted` tracks whether the
  // pending run is already in (when, seq) order — true for channels whose
  // posts carry a single fixed propagation delay (every channel in the
  // CDN topology), letting the drain merge runs head-to-head instead of
  // sorting.
  struct Pair {
    std::vector<Handoff> pending;
    uint64_t next_seq = 0;
    bool sorted = true;
  };

  Pair& pair(int src, int dst) {
    return pairs_[static_cast<size_t>(src * parts() + dst)];
  }
  // Cold path of post(): assembles the diagnostic and throws, kept out of
  // the inlined header body.
  [[noreturn]] static void throw_lookahead_violation(int src, int dst,
                                                     TimeNs when,
                                                     TimeNs floor);
  // Schedules every pending handoff destined for `dst`, sorted by
  // (when, src, seq), then clears the channels (capacity retained).
  void drain_into(int dst);
  // Given the just-finished window's end and the earliest pending event
  // across the parts involved, returns the start of the next window to
  // execute: w_end normally, or a later grid slot when everything up to
  // it is provably empty. Also bumps the fast-forward counter.
  TimeNs advance_grid(TimeNs w_end, TimeNs min_next, TimeNs t);
  void run_windows_serial(TimeNs t);
  void run_windows_threaded(TimeNs t, int threads);

  // Sort key for one boundary drain: everything the ordering rule needs,
  // copied out of the Handoff so the sort comparator never chases the
  // pairs_ indirection. 24 bytes, cheap to shuffle.
  struct DrainRef {
    TimeNs when;
    uint64_t seq;
    int32_t src;
    Handoff* h;  // stable during the drain: nothing posts at a boundary
  };

  // One source channel's remaining run during a boundary merge.
  struct MergeCursor {
    Handoff* it;
    Handoff* end;
  };

  std::vector<std::unique_ptr<Simulator>> sims_;
  std::vector<Pair> pairs_;  // parts x parts, indexed src * P + dst
  // Per-destination drain scratch, reused every boundary so steady-state
  // drains allocate nothing. Indexed by dst because in threaded mode
  // different destinations drain concurrently on different threads.
  std::vector<std::vector<DrainRef>> drain_scratch_;
  std::vector<std::vector<MergeCursor>> merge_scratch_;  // indexed by dst
  TimeNs window_ = 0;
  TimeNs grid_ = 0;  // start of the currently executing window
  // Lookahead floor enforced by post(). Atomic because in threaded mode
  // the fast-forward target is computed on every thread after the second
  // barrier, so the store can race with a peer that already started the
  // next window. Every thread stores the identical value (same inputs),
  // so relaxed ordering suffices; a momentarily stale read is the
  // previous, smaller floor, which can never make a legal handoff throw.
  // The check is a diagnostic — the invariant itself is guaranteed by W
  // being the minimum cut lookahead.
  std::atomic<TimeNs> window_end_{0};
  WindowStats stats_;  // written by the serial loop or threaded tid 0 only
};

}  // namespace proteus
