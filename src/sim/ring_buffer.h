// RingBuffer: a growable FIFO over a single contiguous power-of-two
// backing array.
//
// std::deque allocates and frees a block every few hundred elements as the
// FIFO cycles — a steady drip of heap traffic on the per-packet path.
// RingBuffer reaches its high-water capacity during warm-up and then
// cycles allocation-free forever. Used for the Link transmit queue and the
// Sender's in-flight window.
//
// front()/pop_front()/at() on an empty (or too-short) buffer used to be
// silent UB — head_ would read a default slot and pop_front would wrap
// count_ to SIZE_MAX. Debug builds now assert the preconditions; release
// builds keep the unchecked hot path. Call-site audit (all churn-exposed):
//  * Link::service_head (sim/link.cc): front()/pop_front() only run while
//    serving_ is set, which is only set when the queue is non-empty, and
//    the sole pop site is the service callback itself — a churned flow
//    can drain the queue but never below the packet being served.
//  * Link blackout resume (sim/link.cc): rechecks queue_.empty() before
//    re-entering service_head.
// The Sender in-flight window is a power-of-two Slot vector (not a
// RingBuffer); its bounds come from the [base_seq_, next_seq_) window
// invariant checked in Sender::find_slot.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace proteus {

template <typename T>
class RingBuffer {
 public:
  RingBuffer() = default;
  explicit RingBuffer(size_t initial_capacity) { reserve(initial_capacity); }

  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }
  size_t capacity() const { return slots_.size(); }

  T& front() {
    assert(count_ > 0 && "RingBuffer::front on empty buffer");
    return slots_[head_];
  }
  const T& front() const {
    assert(count_ > 0 && "RingBuffer::front on empty buffer");
    return slots_[head_];
  }
  T& back() {
    assert(count_ > 0 && "RingBuffer::back on empty buffer");
    return slots_[(head_ + count_ - 1) & mask_];
  }
  const T& back() const {
    assert(count_ > 0 && "RingBuffer::back on empty buffer");
    return slots_[(head_ + count_ - 1) & mask_];
  }
  // i-th element from the front (0 = front). Precondition: i < size().
  T& at(size_t i) {
    assert(i < count_ && "RingBuffer::at out of range");
    return slots_[(head_ + i) & mask_];
  }
  const T& at(size_t i) const {
    assert(i < count_ && "RingBuffer::at out of range");
    return slots_[(head_ + i) & mask_];
  }

  void push_back(T value) {
    if (count_ == slots_.size()) grow();
    slots_[(head_ + count_) & mask_] = std::move(value);
    ++count_;
  }

  void pop_front() {
    assert(count_ > 0 && "RingBuffer::pop_front on empty buffer");
    slots_[head_] = T{};  // release any resources held by the slot
    head_ = (head_ + 1) & mask_;
    --count_;
  }

  void pop_back() {
    assert(count_ > 0 && "RingBuffer::pop_back on empty buffer");
    slots_[(head_ + count_ - 1) & mask_] = T{};
    --count_;
  }

  void clear() {
    while (count_ > 0) pop_front();
    head_ = 0;
  }

  // Ensures capacity for at least `n` elements (rounded up to a power of
  // two) without changing contents.
  void reserve(size_t n) {
    if (n <= slots_.size()) return;
    size_t cap = slots_.empty() ? 16 : slots_.size();
    while (cap < n) cap *= 2;
    rebase(cap);
  }

 private:
  void grow() { rebase(slots_.empty() ? 16 : slots_.size() * 2); }

  void rebase(size_t new_cap) {
    std::vector<T> next(new_cap);
    for (size_t i = 0; i < count_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & mask_]);
    }
    slots_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t count_ = 0;
  size_t mask_ = 0;
};

}  // namespace proteus
