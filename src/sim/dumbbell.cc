#include "sim/dumbbell.h"

#include <algorithm>
#include <utility>

namespace proteus {

AckAggregator::AckAggregator(Simulator* sim, AckAggregatorConfig cfg,
                             uint64_t seed)
    : sim_(sim), cfg_(cfg), rng_(seed) {
  if (cfg_.enabled) schedule_next_block();
}

void AckAggregator::schedule_next_block() {
  TimeNs gap = std::max<TimeNs>(
      kNsPerMs, static_cast<TimeNs>(rng_.exponential(
                    static_cast<double>(cfg_.mean_block_interval))));
  sim_->schedule_in(gap, [this] {
    TimeNs hold = std::max<TimeNs>(
        kNsPerMs, static_cast<TimeNs>(rng_.exponential(
                      static_cast<double>(cfg_.mean_block_duration))));
    blocked_until_ = std::max(blocked_until_, sim_->now() + hold);
    schedule_next_block();
  });
}

void AckAggregator::deliver(const Packet& pkt, PacketSink* sink) {
  TimeNs when = sim_->now();
  if (cfg_.enabled) {
    if (when < blocked_until_) when = blocked_until_;
    // Keep FIFO: packets released after a block are spaced tightly, which
    // is what makes the post-block ACK-interval ratio spike.
    when = std::max(when, next_release_at_);
    next_release_at_ = when + cfg_.release_spacing;
  }
  sim_->schedule_at(when, [pkt, sink] { sink->on_packet(pkt); });
}

Dumbbell::Dumbbell(Simulator* sim, DumbbellConfig cfg)
    : sim_(sim), cfg_(cfg), demux_(this) {
  bottleneck_ = std::make_unique<Link>(sim, cfg_.bottleneck, cfg_.seed ^ 0x71);
  bottleneck_->set_sink(&demux_);
  aggregator_ = std::make_unique<AckAggregator>(sim, cfg_.ack_aggregation,
                                                cfg_.seed ^ 0xac);
  if (!cfg_.faults.empty()) {
    faults_ = std::make_unique<FaultTimeline>(cfg_.faults, cfg_.seed ^ 0xfa);
    bottleneck_->set_fault_timeline(faults_.get());
  }
}

PacketSink* Dumbbell::forward_ingress() { return bottleneck_.get(); }

void Dumbbell::Demux::on_packet(const Packet& pkt) {
  auto it = owner_->flows_.find(pkt.flow_id);
  if (it == owner_->flows_.end() || it->second.receiver_side == nullptr) {
    return;  // flow already finished; drop silently
  }
  it->second.receiver_side->on_packet(pkt);
}

void Dumbbell::deliver_ack(const Packet& ack) {
  auto it = flows_.find(ack.flow_id);
  if (it == flows_.end() || it->second.sender_ack_side == nullptr) return;
  aggregator_->deliver(ack, it->second.sender_ack_side);
}

void Dumbbell::send_reverse(const Packet& ack) {
  sim_->schedule_in(cfg_.reverse_delay, [this, ack] {
    if (faults_ != nullptr) {
      const TimeNs now = sim_->now();
      if (faults_->sample_ack_drop(now)) {
        bottleneck_->note_ack_drop();
        return;
      }
      // An active ackburst window holds ACKs until it ends, then flushes
      // them back-to-back (compressed), spaced tightly to stay FIFO.
      if (const TimeNs release = faults_->ack_release_time(now);
          release > now) {
        const TimeNs when = std::max(release, fault_release_cursor_);
        fault_release_cursor_ = when + from_us(30);
        sim_->schedule_at(when, [this, ack] { deliver_ack(ack); });
        return;
      }
    }
    deliver_ack(ack);
  });
}

void Dumbbell::attach_flow(FlowId id, PacketSink* receiver_side,
                           PacketSink* sender_ack_side) {
  flows_[id] = FlowPorts{receiver_side, sender_ack_side};
}

void Dumbbell::detach_flow(FlowId id) { flows_.erase(id); }

}  // namespace proteus
