#include "sim/dumbbell.h"

namespace proteus {

Dumbbell::Dumbbell(Simulator* sim, DumbbellConfig cfg)
    : cfg_(cfg), topo_(sim) {
  // Construction order is load-bearing for bit-identical event sequences:
  // the aggregator schedules its first block (when enabled) at the same
  // point it always has — after the link exists, before fault wiring.
  const Topology::EdgeId fwd =
      topo_.add_link(0, 1, cfg_.bottleneck, cfg_.seed ^ 0x71, "bottleneck");
  const Topology::EdgeId rev =
      topo_.add_delay_edge(1, 0, cfg_.reverse_delay, "ackpath");
  topo_.set_ack_aggregator(0, cfg_.ack_aggregation, cfg_.seed ^ 0xac);
  if (!cfg_.faults.empty()) {
    // One timeline (one RNG stream) serves both directions, and reverse
    // ACK drops mirror into the bottleneck's LinkStats so a single row
    // carries every fault counter.
    faults_ = topo_.add_fault_timeline(cfg_.faults, cfg_.seed ^ 0xfa);
    topo_.set_link_faults(fwd, faults_);
    topo_.set_ack_faults(rev, faults_, &topo_.link(0));
  }
  topo_.set_burst_release_spacing(rev, cfg_.ack_aggregation.release_spacing);
  topo_.add_path({{fwd}, {rev}});
}

}  // namespace proteus
