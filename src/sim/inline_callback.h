// InlineCallback: a move-only `void()` callable with fixed inline storage
// and no heap fallback.
//
// The event engine fires millions of callbacks per simulated second; the
// previous `std::function<void()>` representation heap-allocated once per
// scheduled event whose capture outgrew the implementation's small-buffer
// optimization (every `[this, pkt]` hop through Link and Dumbbell).
// InlineCallback instead embeds the capture directly in the event slot:
// construction is placement-new into an inline buffer, and a capture that
// does not fit is a compile error rather than a silent allocation. The
// static_assert below is the enforcement point for the whole tree — every
// schedule_at/schedule_in call site in src/sim, src/transport and src/app
// instantiates it, so the capture budget is checked at build time.
//
// kInlineCaptureBytes is sized for the largest hot-path capture, a
// `[this, Packet]` pair (Link/Dumbbell delivery, 80 bytes), with headroom
// for a captured Samples/std::function the tests use. Growing it enlarges
// every event slot; keep it tight.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace proteus {

inline constexpr std::size_t kInlineCaptureBytes = 104;

class InlineCallback {
 public:
  InlineCallback() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback>>>
  InlineCallback(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineCaptureBytes,
                  "callback capture exceeds the InlineCallback budget; "
                  "shrink the capture (capture pointers, not values) or "
                  "grow kInlineCaptureBytes deliberately");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callback capture");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "callback capture must be nothrow-move-constructible so "
                  "event slots can relocate without a throw path");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    ops_ = &OpsImpl<Fn>::kOps;
  }

  InlineCallback(InlineCallback&& other) noexcept { steal(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs *src into dst and destroys *src (relocation).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  struct OpsImpl {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* dst, void* src) noexcept {
      if constexpr (std::is_trivially_copyable_v<Fn>) {
        std::memcpy(dst, src, sizeof(Fn));
      } else {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      }
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
    static constexpr Ops kOps{&invoke, &relocate, &destroy};
  };

  void steal(InlineCallback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineCaptureBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace proteus
