#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "telemetry/profiler.h"

namespace proteus {

// The run loops delegate to EventQueue::run_span(), which fires each
// callback in its event slot: on the wheel engine the ~112-byte capture
// is written once at push and read once at invocation, never relocated
// in between. The fused loop keeps the clock/count writes and the
// per-event dispatch inside one translation unit instead of paying three
// cross-TU calls (empty / next_time / invoke_next) per event.

void Simulator::run_until(TimeNs until) {
  queue_.run_span(until, /*inclusive=*/true, &now_, &events_processed_);
  if (now_ < until) now_ = until;
}

void Simulator::run_before(TimeNs until) {
  queue_.run_span(until, /*inclusive=*/false, &now_, &events_processed_);
}

void Simulator::run() {
  queue_.run_span(kTimeInfinite, /*inclusive=*/true, &now_,
                  &events_processed_);
}

}  // namespace proteus
