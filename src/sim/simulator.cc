#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "telemetry/profiler.h"

namespace proteus {

void Simulator::run_until(TimeNs until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    ++events_processed_;
    // Event-dispatch timing is inclusive: it covers the handler and any
    // nested phases (on_ack, seal_mi, ...) the handler enters.
    PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
    cb();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_before(TimeNs until) {
  while (!queue_.empty() && queue_.next_time() < until) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    ++events_processed_;
    PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
    cb();
  }
}

void Simulator::run() {
  while (!queue_.empty()) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    ++events_processed_;
    PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
    cb();
  }
}

}  // namespace proteus
