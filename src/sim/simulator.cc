#include "sim/simulator.h"

#include <stdexcept>
#include <utility>

#include "telemetry/profiler.h"

namespace proteus {

void Simulator::schedule_at(TimeNs when, EventQueue::Callback cb) {
  if (when < now_) {
    throw std::logic_error("Simulator::schedule_at in the past");
  }
  queue_.push(when, std::move(cb));
}

void Simulator::schedule_in(TimeNs delay, EventQueue::Callback cb) {
  if (delay < 0) throw std::logic_error("Simulator::schedule_in negative");
  queue_.push(now_ + delay, std::move(cb));
}

void Simulator::run_until(TimeNs until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    ++events_processed_;
    // Event-dispatch timing is inclusive: it covers the handler and any
    // nested phases (on_ack, seal_mi, ...) the handler enters.
    PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
    cb();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run() {
  while (!queue_.empty()) {
    auto [when, cb] = queue_.pop();
    now_ = when;
    ++events_processed_;
    PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
    cb();
  }
}

}  // namespace proteus
