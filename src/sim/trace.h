// Lightweight time-series capture for throughput/rate traces
// (paper Figs 14 and 18 are throughput-versus-time plots).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.h"

namespace proteus {

struct TracePoint {
  TimeNs t;
  double value;
};

class TimeSeries {
 public:
  explicit TimeSeries(std::string name = "") : name_(std::move(name)) {}

  void record(TimeNs t, double value) { points_.push_back({t, value}); }
  const std::vector<TracePoint>& points() const { return points_; }
  const std::string& name() const { return name_; }
  bool empty() const { return points_.empty(); }

 private:
  std::string name_;
  std::vector<TracePoint> points_;
};

// Bins byte arrivals into fixed windows and reports Mbps per window.
class ThroughputMeter {
 public:
  explicit ThroughputMeter(TimeNs bin = from_sec(1.0)) : bin_(bin) {}

  void on_bytes(TimeNs t, int64_t bytes);
  // Pre-sizes the bin array through time `t` so steady-state recording
  // performs no allocation (see tests/sim_alloc_test.cc).
  void reserve_until(TimeNs t) {
    bins_.reserve(static_cast<size_t>(t / bin_) + 2);
  }
  // Forgets all recorded traffic, keeping the bin array's capacity (a
  // recycled flow's meter must not report its predecessor's bytes).
  void reset() {
    bins_.clear();
    total_ = 0;
  }
  // Mbps series, one value per bin from t = 0; trailing partial bin included.
  std::vector<double> mbps_series() const;
  // Mean Mbps over [from, to).
  double mean_mbps(TimeNs from, TimeNs to) const;
  int64_t total_bytes() const { return total_; }

 private:
  TimeNs bin_;
  std::vector<int64_t> bins_;
  int64_t total_ = 0;
};

}  // namespace proteus
