#include "sim/fault_timeline.h"

#include <algorithm>
#include <utility>

namespace proteus {

FaultTimeline::FaultTimeline(std::vector<FaultSpec> events, uint64_t seed)
    : events_(std::move(events)), rng_(seed) {
  std::stable_sort(events_.begin(), events_.end(),
                   [](const FaultSpec& a, const FaultSpec& b) {
                     return a.start < b.start;
                   });
}

const FaultSpec* FaultTimeline::find_active(FaultType type,
                                            TimeNs now) const {
  for (const FaultSpec& e : events_) {
    if (e.start > now) break;  // sorted by start
    if (e.type == type && e.active(now)) return &e;
  }
  return nullptr;
}

bool FaultTimeline::blackout_active(TimeNs now) const {
  return find_active(FaultType::kBlackout, now) != nullptr;
}

TimeNs FaultTimeline::blackout_clear_time(TimeNs now) const {
  // Chase overlapping/adjacent windows until a time with no active
  // blackout is found (the event list is small; this loop is rare).
  TimeNs t = now;
  bool advanced = true;
  while (advanced) {
    advanced = false;
    for (const FaultSpec& e : events_) {
      if (e.type != FaultType::kBlackout || !e.active(t)) continue;
      if (e.end() == kTimeInfinite) return kTimeInfinite;
      if (e.end() > t) {
        t = e.end();
        advanced = true;
      }
    }
  }
  return t;
}

double FaultTimeline::capacity_multiplier(TimeNs now) const {
  double m = 1.0;
  for (const FaultSpec& e : events_) {
    if (e.start > now) break;
    if (e.type == FaultType::kCapacity && e.active(now)) m *= e.value;
  }
  return m;
}

TimeNs FaultTimeline::prop_delay_delta(TimeNs now) const {
  TimeNs delta = 0;
  for (const FaultSpec& e : events_) {
    if (e.start > now) break;
    if (e.type == FaultType::kRouteChange && e.active(now)) delta += e.delay;
  }
  return delta;
}

TimeNs FaultTimeline::sample_reorder(TimeNs now) {
  const FaultSpec* e = find_active(FaultType::kReorder, now);
  if (e == nullptr || !rng_.bernoulli(e->value)) return 0;
  // Hold the packet back far enough that successors certainly overtake it;
  // the uniform draw spreads stragglers instead of batching them.
  const TimeNs max_extra = std::max<TimeNs>(e->delay, kNsPerMs);
  return static_cast<TimeNs>(
      rng_.uniform(0.25, 1.0) * static_cast<double>(max_extra));
}

bool FaultTimeline::sample_duplicate(TimeNs now) {
  const FaultSpec* e = find_active(FaultType::kDuplicate, now);
  return e != nullptr && rng_.bernoulli(e->value);
}

bool FaultTimeline::sample_ack_drop(TimeNs now) {
  const FaultSpec* e = find_active(FaultType::kAckLoss, now);
  return e != nullptr && rng_.bernoulli(e->value);
}

TimeNs FaultTimeline::ack_release_time(TimeNs now) const {
  TimeNs release = 0;
  for (const FaultSpec& e : events_) {
    if (e.start > now) break;
    if (e.type == FaultType::kAckBurst && e.active(now)) {
      release = std::max(release, e.end());
    }
  }
  return release;
}

}  // namespace proteus
