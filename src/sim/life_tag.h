// Non-atomic liveness guard for scheduled callbacks.
//
// Objects that schedule callbacks against a Simulator capture a
// LifeTag::Ref and bail out (`if (alive.expired()) return;`) when the
// owner was destroyed before the event fired. This used to be a
// std::weak_ptr<bool> snapshot of a shared_ptr<bool> member, but
// shared_ptr's thread-safe refcount costs two locked RMW operations per
// scheduled event — 12% of the event-loop profile. A Simulator is
// strictly single-threaded (the parallel runner gives every worker its
// own simulator), so a plain counter carries the same lifetime contract
// for the price of an increment.
//
// Semantics match the weak_ptr idiom exactly: Ref::expired() flips to
// true when the owning LifeTag is destroyed, not before. The control
// block frees itself when the owner and the last outstanding Ref are
// both gone, so callbacks left in the queue after the owner died stay
// safe to destroy in any order.
//
// Object pooling adds a third lifecycle event between "alive" and
// "destroyed": renew(). A pooled object (a churned Flow/Sender being
// recycled for a new logical flow) bumps the tag's generation; Refs taken
// before the renew read as expired from then on, exactly as if the owner
// had been destroyed, while Refs taken after it are live. The control
// block is reused in place — renewing allocates nothing, which is what
// lets a recycled flow's scheduled-callback guards stay inside the
// zero-steady-state-allocation envelope.
#pragma once

#include <cstdint>
#include <utility>

namespace proteus {

class LifeTag {
  struct Tag {
    uint32_t refs;
    uint32_t gen;
    bool owner_alive;
  };

  static void unref(Tag* tag) {
    if (tag != nullptr && --tag->refs == 0) delete tag;
  }

 public:
  class Ref {
   public:
    explicit Ref(Tag* tag) noexcept : tag_(tag), gen_(tag->gen) {
      ++tag_->refs;
    }
    Ref(const Ref& other) noexcept : tag_(other.tag_), gen_(other.gen_) {
      ++tag_->refs;
    }
    Ref(Ref&& other) noexcept
        : tag_(std::exchange(other.tag_, nullptr)), gen_(other.gen_) {}
    Ref& operator=(const Ref& other) noexcept {
      Tag* old = std::exchange(tag_, other.tag_);
      gen_ = other.gen_;
      ++tag_->refs;
      unref(old);
      return *this;
    }
    Ref& operator=(Ref&& other) noexcept {
      unref(std::exchange(tag_, std::exchange(other.tag_, nullptr)));
      gen_ = other.gen_;
      return *this;
    }
    ~Ref() { unref(tag_); }

    // True once the owning object has been destroyed or renewed since
    // this Ref was taken.
    bool expired() const noexcept {
      return !tag_->owner_alive || tag_->gen != gen_;
    }

   private:
    Tag* tag_;
    uint32_t gen_;
  };

  LifeTag() : tag_(new Tag{1, 0, true}) {}
  ~LifeTag() {
    tag_->owner_alive = false;
    unref(tag_);
  }
  LifeTag(const LifeTag&) = delete;
  LifeTag& operator=(const LifeTag&) = delete;

  Ref ref() const { return Ref(tag_); }

  // Expires every outstanding Ref without destroying the tag: the owner
  // is being recycled for a new logical lifetime. Allocation-free.
  void renew() { ++tag_->gen; }

 private:
  Tag* tag_;
};

}  // namespace proteus
