// Discrete-event simulation driver.
//
// Owns the virtual clock and event queue. All simulated components hold a
// Simulator* and schedule callbacks; nothing reads wall-clock time, so a
// run is fully determined by its configuration and RNG seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>

#include "sim/event_queue.h"
#include "sim/units.h"
#include "stats/rng.h"

namespace proteus {

class Simulator {
 public:
  explicit Simulator(uint64_t seed = 1,
                     EventEngine engine = EventEngine::kTimerWheel)
      : queue_(engine), rng_(seed) {}

  TimeNs now() const { return now_; }
  Rng& rng() { return rng_; }
  EventEngine engine() const { return queue_.engine(); }

  // Schedules a callback at absolute virtual time `when` (>= now).
  // Templated: the caller's lambda forwards all the way into
  // EventQueue::push, where it is constructed directly in its event slot —
  // scheduling performs zero capture relocations on the wheel engine.
  template <typename F>
  void schedule_at(TimeNs when, F&& f) {
    if (when < now_) {
      throw std::logic_error("Simulator::schedule_at in the past");
    }
    queue_.push(when, std::forward<F>(f));
  }
  // Schedules a callback `delay` after now.
  template <typename F>
  void schedule_in(TimeNs delay, F&& f) {
    if (delay < 0) throw std::logic_error("Simulator::schedule_in negative");
    queue_.push(now_ + delay, std::forward<F>(f));
  }

  // Runs events until the queue drains or the clock passes `until`.
  // Events scheduled exactly at `until` are executed.
  void run_until(TimeNs until);
  // Runs events strictly before `until`; events at exactly `until` stay
  // queued and `now()` is not advanced past the last executed event.
  // This is the window-execution primitive of the sharded engine
  // (sim/shard.h): events at a window boundary belong to the *next*
  // window, after cross-shard handoffs for that boundary have been
  // drained into the queue.
  void run_before(TimeNs until);
  // Runs until the queue drains.
  void run();

  uint64_t events_processed() const { return events_processed_; }

  // Earliest pending event time, or kTimeInfinite when the queue is
  // empty. Used by the sharded engine's idle-window fast-forward to skip
  // barrier rounds no part has work in (sim/shard.cc).
  TimeNs next_event_time() { return queue_.next_time(); }

 private:
  TimeNs now_ = 0;
  EventQueue queue_;
  Rng rng_;
  uint64_t events_processed_ = 0;
};

}  // namespace proteus
