#include "sim/shard.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "telemetry/profiler.h"

namespace proteus {

ShardSet::ShardSet(int parts, TimeNs window, uint64_t seed,
                   EventEngine engine)
    : window_(window) {
  if (parts < 1) throw std::invalid_argument("ShardSet: parts < 1");
  if (parts > 1 && window <= 0) {
    throw std::invalid_argument(
        "ShardSet: a multi-part set needs a positive lookahead window");
  }
  sims_.reserve(static_cast<size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    sims_.push_back(std::make_unique<Simulator>(
        seed + 0x9e3779b9ULL * static_cast<uint64_t>(p), engine));
  }
  pairs_.resize(static_cast<size_t>(parts) * static_cast<size_t>(parts));
  drain_scratch_.resize(static_cast<size_t>(parts));
  merge_scratch_.resize(static_cast<size_t>(parts));
  window_end_.store(window_, std::memory_order_relaxed);
}

void ShardSet::throw_lookahead_violation(int src, int dst, TimeNs when,
                                         TimeNs floor) {
  throw std::logic_error(
      "ShardSet::post lookahead violation: handoff " + std::to_string(src) +
      "->" + std::to_string(dst) + " at t=" + std::to_string(when) +
      " inside the executing window (end " + std::to_string(floor) +
      "); the partition's cut has less lookahead than its window");
}

void ShardSet::drain_into(int dst) {
  PROTEUS_PROFILE_SCOPE(ProfilePhase::kShardDrain);
  const int p = parts();
  Simulator& sim = *sims_[dst];

  // Gather the non-empty channels in ascending src order (the comparator's
  // tie-break), noting whether every run arrives presorted.
  std::vector<MergeCursor>& cur = merge_scratch_[dst];
  cur.clear();
  bool all_sorted = true;
  for (int src = 0; src < p; ++src) {
    if (src == dst) continue;
    Pair& pr = pair(src, dst);
    if (pr.pending.empty()) continue;
    all_sorted = all_sorted && pr.sorted;
    cur.push_back(
        MergeCursor{pr.pending.data(), pr.pending.data() + pr.pending.size()});
  }
  if (cur.empty()) return;

  // The drain order (when, src, seq) is a strict total order over distinct
  // handoffs, so any correct merge produces the identical schedule the
  // comparison sort would. When every channel is already in (when, seq)
  // order — the steady state for fixed-delay edges — merge the runs
  // head-to-head: cursors sit in ascending src order, and a strict `<` on
  // `when` keeps the earliest (smallest-src) head on ties.
  if (all_sorted) {
    if (cur.size() == 1) {
      for (Handoff* h = cur[0].it; h != cur[0].end; ++h) {
        sim.schedule_at(h->when, std::move(h->cb));
      }
    } else {
      while (!cur.empty()) {
        size_t best = 0;
        TimeNs best_when = cur[0].it->when;
        for (size_t i = 1; i < cur.size(); ++i) {
          if (cur[i].it->when < best_when) {
            best = i;
            best_when = cur[i].it->when;
          }
        }
        Handoff* h = cur[best].it++;
        sim.schedule_at(h->when, std::move(h->cb));
        if (cur[best].it == cur[best].end) {
          // Erase preserving order: src-ascending is the tie-break.
          cur.erase(cur.begin() + static_cast<ptrdiff_t>(best));
        }
      }
    }
  } else {
    std::vector<DrainRef>& refs = drain_scratch_[dst];
    refs.clear();
    for (int src = 0; src < p; ++src) {
      if (src == dst) continue;
      for (Handoff& h : pair(src, dst).pending) {
        refs.push_back(DrainRef{h.when, h.seq, src, &h});
      }
    }
    std::sort(refs.begin(), refs.end(),
              [](const DrainRef& a, const DrainRef& b) {
                if (a.when != b.when) return a.when < b.when;
                if (a.src != b.src) return a.src < b.src;
                return a.seq < b.seq;
              });
    for (const DrainRef& r : refs) sim.schedule_at(r.when, std::move(r.h->cb));
  }

  for (int src = 0; src < p; ++src) {
    if (src == dst) continue;
    Pair& pr = pair(src, dst);
    pr.pending.clear();
    pr.sorted = true;
  }
}

TimeNs ShardSet::advance_grid(TimeNs w_end, TimeNs min_next, TimeNs t) {
  // Nothing can appear before min_next (all handoffs are drained, and
  // posts from future windows land at or after their own floor), and the
  // caller stops executing full windows once t falls inside one — so the
  // jump target is capped by t's window as well. Times are non-negative,
  // so integer division is the floor.
  const TimeNs cap = std::min(min_next, t);
  if (cap <= w_end) return w_end;
  const TimeNs target = (cap / window_) * window_;
  if (target <= w_end) return w_end;
  stats_.windows_fast_forwarded +=
      static_cast<uint64_t>((target - w_end) / window_);
  return target;
}

void ShardSet::run_until(TimeNs t, int threads) {
  if (parts() == 1) {
    // Degenerate partition: the historical serial engine, bit for bit.
    sims_[0]->run_until(t);
    return;
  }
  threads = std::max(1, std::min(threads, parts()));
  if (threads == 1) {
    run_windows_serial(t);
  } else {
    run_windows_threaded(t, threads);
  }
}

void ShardSet::run_windows_serial(TimeNs t) {
  for (;;) {
    const TimeNs w_end = grid_ + window_;
    window_end_.store(w_end, std::memory_order_relaxed);
    if (t < w_end) {
      // Final sub-window: inclusive, matching run_until semantics. The
      // grid cursor stays put so a later call resumes inside this window.
      for (auto& sim : sims_) sim->run_until(t);
      return;
    }
    {
      PROTEUS_PROFILE_SCOPE(ProfilePhase::kShardExec);
      for (auto& sim : sims_) sim->run_before(w_end);
    }
    ++stats_.barrier_windows;
    for (int dst = 0; dst < parts(); ++dst) drain_into(dst);
    TimeNs min_next = kTimeInfinite;
    for (auto& sim : sims_) {
      min_next = std::min(min_next, sim->next_event_time());
    }
    grid_ = advance_grid(w_end, min_next, t);
  }
}

void ShardSet::run_windows_threaded(TimeNs t, int threads) {
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::barrier<> sync(threads);
  const int p = parts();
  // Per-thread earliest-pending-event slot, written in the drain phase
  // and read by everyone after the second barrier (which orders them).
  std::vector<TimeNs> mins(static_cast<size_t>(threads), kTimeInfinite);

  auto record_error = [&] {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!first_error) first_error = std::current_exception();
    failed.store(true, std::memory_order_release);
  };

  // Thread t exclusively owns parts {t, t+threads, ...}: it executes
  // them in the exec phase and drains their incoming channels in the
  // drain phase, so no Simulator is ever touched from two threads. The
  // two barriers per window provide all cross-thread ordering. Every
  // thread evaluates the identical loop condition — including the
  // fast-forward target, computed from the same post-barrier inputs — so
  // they pass the same barrier sequence even when a phase failed.
  auto worker = [&](int tid) {
    TimeNs g = grid_;
    for (;;) {
      const TimeNs w_end = g + window_;
      const bool last = t < w_end;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          PROTEUS_PROFILE_SCOPE(ProfilePhase::kShardExec);
          for (int i = tid; i < p; i += threads) {
            if (last) {
              sims_[i]->run_until(t);
            } else {
              sims_[i]->run_before(w_end);
            }
          }
        } catch (...) {
          record_error();
        }
      }
      {
        PROTEUS_PROFILE_SCOPE(ProfilePhase::kShardBarrier);
        sync.arrive_and_wait();
      }
      if (last || failed.load(std::memory_order_acquire)) return;
      TimeNs local_min = kTimeInfinite;
      try {
        for (int i = tid; i < p; i += threads) {
          drain_into(i);
          local_min = std::min(local_min, sims_[i]->next_event_time());
        }
      } catch (...) {
        record_error();
      }
      mins[static_cast<size_t>(tid)] = local_min;
      {
        PROTEUS_PROFILE_SCOPE(ProfilePhase::kShardBarrier);
        sync.arrive_and_wait();
      }
      // Post-B2: every thread sees every mins[] slot and computes the
      // identical next grid position; stats are tid 0's job so the
      // counters aren't data-raced.
      TimeNs min_next = kTimeInfinite;
      for (TimeNs m : mins) min_next = std::min(min_next, m);
      const TimeNs cap = std::min(min_next, t);
      TimeNs target = w_end;
      if (cap > w_end) {
        const TimeNs aligned = (cap / window_) * window_;
        if (aligned > w_end) target = aligned;
      }
      window_end_.store(target + window_, std::memory_order_relaxed);
      if (tid == 0) {
        grid_ = target;
        ++stats_.barrier_windows;
        if (target > w_end) {
          stats_.windows_fast_forwarded +=
              static_cast<uint64_t>((target - w_end) / window_);
        }
      }
      g = target;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int tid = 1; tid < threads; ++tid) pool.emplace_back(worker, tid);
  worker(0);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

uint64_t ShardSet::events_processed() const {
  uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_processed();
  return total;
}

}  // namespace proteus
