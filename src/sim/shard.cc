#include "sim/shard.h"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

namespace proteus {

ShardSet::ShardSet(int parts, TimeNs window, uint64_t seed,
                   EventEngine engine)
    : window_(window) {
  if (parts < 1) throw std::invalid_argument("ShardSet: parts < 1");
  if (parts > 1 && window <= 0) {
    throw std::invalid_argument(
        "ShardSet: a multi-part set needs a positive lookahead window");
  }
  sims_.reserve(static_cast<size_t>(parts));
  for (int p = 0; p < parts; ++p) {
    sims_.push_back(std::make_unique<Simulator>(
        seed + 0x9e3779b9ULL * static_cast<uint64_t>(p), engine));
  }
  pairs_.resize(static_cast<size_t>(parts) * static_cast<size_t>(parts));
  window_end_ = window_;
}

void ShardSet::post(int src, int dst, TimeNs when, EventQueue::Callback cb) {
  if (src == dst) {
    sims_[src]->schedule_at(when, std::move(cb));
    return;
  }
  if (when < window_end_) {
    throw std::logic_error(
        "ShardSet::post lookahead violation: handoff " + std::to_string(src) +
        "->" + std::to_string(dst) + " at t=" + std::to_string(when) +
        " inside the executing window (end " + std::to_string(window_end_) +
        "); the partition's cut has less lookahead than its window");
  }
  Pair& pr = pair(src, dst);
  pr.pending.push_back(Handoff{when, pr.next_seq++, std::move(cb)});
}

void ShardSet::drain_into(int dst) {
  const int p = parts();
  // Typical fan-in is small; gather + one sort keeps the ordering rule in
  // one obvious place. The scratch vector is per-call but boundary-rate,
  // not event-rate.
  std::vector<std::pair<int, size_t>> order;  // (src, index into pending)
  size_t total = 0;
  for (int src = 0; src < p; ++src) {
    if (src != dst) total += pair(src, dst).pending.size();
  }
  if (total == 0) return;
  order.reserve(total);
  for (int src = 0; src < p; ++src) {
    if (src == dst) continue;
    const size_t n = pair(src, dst).pending.size();
    for (size_t i = 0; i < n; ++i) order.emplace_back(src, i);
  }
  std::sort(order.begin(), order.end(),
            [&](const std::pair<int, size_t>& a,
                const std::pair<int, size_t>& b) {
              const Handoff& ha = pair(a.first, dst).pending[a.second];
              const Handoff& hb = pair(b.first, dst).pending[b.second];
              if (ha.when != hb.when) return ha.when < hb.when;
              if (a.first != b.first) return a.first < b.first;
              return ha.seq < hb.seq;
            });
  Simulator& sim = *sims_[dst];
  for (const auto& [src, i] : order) {
    Handoff& h = pair(src, dst).pending[i];
    sim.schedule_at(h.when, std::move(h.cb));
  }
  for (int src = 0; src < p; ++src) {
    if (src != dst) pair(src, dst).pending.clear();
  }
}

void ShardSet::run_until(TimeNs t, int threads) {
  if (parts() == 1) {
    // Degenerate partition: the historical serial engine, bit for bit.
    sims_[0]->run_until(t);
    return;
  }
  threads = std::max(1, std::min(threads, parts()));
  if (threads == 1) {
    run_windows_serial(t);
  } else {
    run_windows_threaded(t, threads);
  }
}

void ShardSet::run_windows_serial(TimeNs t) {
  for (;;) {
    const TimeNs w_end = grid_ + window_;
    window_end_ = w_end;
    if (t < w_end) {
      // Final sub-window: inclusive, matching run_until semantics. The
      // grid cursor stays put so a later call resumes inside this window.
      for (auto& sim : sims_) sim->run_until(t);
      return;
    }
    for (auto& sim : sims_) sim->run_before(w_end);
    grid_ = w_end;
    for (int dst = 0; dst < parts(); ++dst) drain_into(dst);
  }
}

void ShardSet::run_windows_threaded(TimeNs t, int threads) {
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::barrier<> sync(threads);
  const int p = parts();

  auto record_error = [&] {
    std::lock_guard<std::mutex> lock(error_mu);
    if (!first_error) first_error = std::current_exception();
    failed.store(true, std::memory_order_release);
  };

  // Thread t exclusively owns parts {t, t+threads, ...}: it executes
  // them in the exec phase and drains their incoming channels in the
  // drain phase, so no Simulator is ever touched from two threads. The
  // two barriers per window provide all cross-thread ordering. Every
  // thread evaluates the identical loop condition, so they pass the same
  // barrier sequence even when a phase failed.
  auto worker = [&](int tid) {
    TimeNs g = grid_;
    for (;;) {
      const TimeNs w_end = g + window_;
      const bool last = t < w_end;
      if (!failed.load(std::memory_order_acquire)) {
        try {
          for (int i = tid; i < p; i += threads) {
            if (last) {
              sims_[i]->run_until(t);
            } else {
              sims_[i]->run_before(w_end);
            }
          }
        } catch (...) {
          record_error();
        }
      }
      sync.arrive_and_wait();
      if (last || failed.load(std::memory_order_acquire)) return;
      if (tid == 0) {
        grid_ = w_end;
        window_end_ = w_end + window_;
      }
      try {
        for (int i = tid; i < p; i += threads) drain_into(i);
      } catch (...) {
        record_error();
      }
      sync.arrive_and_wait();
      g = w_end;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(threads) - 1);
  for (int tid = 1; tid < threads; ++tid) pool.emplace_back(worker, tid);
  worker(0);
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

uint64_t ShardSet::events_processed() const {
  uint64_t total = 0;
  for (const auto& sim : sims_) total += sim->events_processed();
  return total;
}

}  // namespace proteus
