#include "sim/noise.h"

#include <algorithm>
#include <stdexcept>

namespace proteus {

TimeNs GaussianNoise::sample(Rng& rng, TimeNs) {
  double v = rng.normal(static_cast<double>(mean_),
                        static_cast<double>(stddev_));
  return std::max<TimeNs>(0, static_cast<TimeNs>(v));
}

TimeNs WifiNoise::sample(Rng& rng, TimeNs) {
  double v = rng.normal(0.0, static_cast<double>(cfg_.jitter_stddev));
  TimeNs extra = std::max<TimeNs>(0, static_cast<TimeNs>(v));
  if (rng.bernoulli(cfg_.spike_probability)) {
    double spike = rng.pareto(static_cast<double>(cfg_.spike_scale),
                              cfg_.spike_shape);
    extra += std::min(cfg_.spike_cap, static_cast<TimeNs>(spike));
  }
  return extra;
}

MarkovRateProcess::MarkovRateProcess(Config cfg) : cfg_(std::move(cfg)) {
  if (cfg_.multipliers.empty()) {
    throw std::invalid_argument("MarkovRateProcess: no states");
  }
  for (double m : cfg_.multipliers) {
    if (m <= 0.0) throw std::invalid_argument("MarkovRateProcess: state <= 0");
  }
}

double MarkovRateProcess::multiplier(Rng& rng, TimeNs now) {
  while (now >= next_transition_) {
    if (cfg_.multipliers.size() > 1) {
      // Uniform choice among the other states.
      size_t next = static_cast<size_t>(rng.uniform_int(
          0, static_cast<int64_t>(cfg_.multipliers.size()) - 2));
      if (next >= state_) ++next;
      state_ = next;
    }
    next_transition_ +=
        std::max<TimeNs>(kNsPerUs, static_cast<TimeNs>(rng.exponential(
                                       static_cast<double>(cfg_.mean_dwell))));
  }
  return cfg_.multipliers[state_];
}

}  // namespace proteus
