#include "sim/trace.h"

#include <algorithm>

namespace proteus {

void ThroughputMeter::on_bytes(TimeNs t, int64_t bytes) {
  if (t < 0) return;
  auto idx = static_cast<size_t>(t / bin_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0);
  bins_[idx] += bytes;
  total_ += bytes;
}

std::vector<double> ThroughputMeter::mbps_series() const {
  std::vector<double> out;
  out.reserve(bins_.size());
  const double bin_sec = to_sec(bin_);
  for (int64_t b : bins_) {
    out.push_back(static_cast<double>(b) * 8.0 / 1e6 / bin_sec);
  }
  return out;
}

double ThroughputMeter::mean_mbps(TimeNs from, TimeNs to) const {
  if (to <= from) return 0.0;
  auto lo = static_cast<size_t>(std::max<TimeNs>(0, from) / bin_);
  auto hi = static_cast<size_t>((to + bin_ - 1) / bin_);
  hi = std::min(hi, bins_.size());
  int64_t bytes = 0;
  for (size_t i = lo; i < hi; ++i) bytes += bins_[i];
  // Use the requested wall span so partially-filled bins do not inflate.
  return static_cast<double>(bytes) * 8.0 / 1e6 / to_sec(to - from);
}

}  // namespace proteus
