// Bottleneck link: tail-drop FIFO queue + serialization + propagation.
//
// This is the emulated equivalent of the paper's Emulab bottleneck. It
// serializes packets at a (possibly time-varying) rate, holds at most
// `buffer_bytes` of queued data (tail drop), applies i.i.d. random loss,
// and delivers after a fixed propagation delay plus optional latency noise.
// Delivery order is FIFO by default even under noisy delays so the
// transport never sees spurious reordering; set `allow_reordering` to let
// noisy per-packet delays (and fault-injected stragglers) invert delivery
// order. An attached FaultTimeline (fault_timeline.h) adds scripted
// blackouts, capacity steps, route changes, reordering and duplication.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/fault_timeline.h"
#include "sim/noise.h"
#include "sim/packet.h"
#include "sim/ring_buffer.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace proteus {

// Active queue management (paper section 7.2 points at in-network
// support as future work; CoDel is the standard reference AQM). When
// enabled, packets whose sojourn time has stayed above `target` for at
// least `interval` are dropped at dequeue, with the control-law drop
// spacing decreasing as 1/sqrt(drop_count).
struct CodelConfig {
  bool enabled = false;
  TimeNs target = from_ms(5);
  TimeNs interval = from_ms(100);
};

struct LinkConfig {
  Bandwidth rate = Bandwidth::from_mbps(50);
  TimeNs prop_delay = from_ms(15);  // one-way
  int64_t buffer_bytes = 375'000;   // tail-drop cap on queued bytes
  double random_loss = 0.0;         // i.i.d. pre-queue drop probability
  CodelConfig codel;                // optional AQM on top of tail drop
  // Opt-in: deliver with raw noisy delays instead of clamping to FIFO, so
  // latency noise can invert packet order (off = historical behavior).
  bool allow_reordering = false;
};

struct LinkStats {
  int64_t offered_packets = 0;  // everything handed to on_packet()
  int64_t delivered_packets = 0;
  int64_t delivered_bytes = 0;
  int64_t tail_drops = 0;
  int64_t random_drops = 0;
  int64_t codel_drops = 0;
  int64_t max_queue_bytes = 0;
  // Fault-injection counters (see FaultTimeline).
  int64_t blackout_drops = 0;  // buffer overflow while the link was dark
  int64_t reordered = 0;       // deliveries that inverted arrival order
  int64_t duplicated = 0;      // extra copies injected by a duplicate fault
  int64_t ack_drops = 0;       // reverse-path ACKs dropped (Dumbbell)
};

class Link final : public PacketSink {
 public:
  Link(Simulator* sim, LinkConfig cfg, uint64_t noise_seed = 0x11ec);

  void set_sink(PacketSink* sink) { sink_ = sink; }
  // Cross-shard delivery reroute (sim/shard.h): when set, a serviced
  // packet's delivery at `arrival` is handed to this scheduler instead of
  // the local event queue, at *service* time — before the propagation
  // delay elapses — so the destination shard can be given the full
  // propagation as lookahead. Unset (the default) keeps the historical
  // local schedule_at path byte-for-byte.
  using DeliveryScheduler = std::function<void(TimeNs arrival, const Packet&)>;
  void set_delivery_scheduler(DeliveryScheduler f) { deliver_ = std::move(f); }
  // Optional non-congestion impairments; may be null.
  void set_latency_noise(std::unique_ptr<LatencyNoise> noise);
  void set_rate_process(std::unique_ptr<RateProcess> process);
  // Scripted fault schedule (not owned; outlives the link). Null = none.
  void set_fault_timeline(FaultTimeline* faults) { faults_ = faults; }

  // PacketSink: enqueue a packet for transmission.
  void on_packet(const Packet& pkt) override;

  // Reverse-path ACK drops happen in Dumbbell but are surfaced here so one
  // LinkStats record carries every fault counter of the bottleneck.
  void note_ack_drop() { ++stats_.ack_drops; }

  int64_t queue_bytes() const { return queue_bytes_; }
  int64_t queue_packets() const {
    return static_cast<int64_t>(queue_.size());
  }
  // Queueing delay a newly arrived packet would currently see.
  TimeNs current_queue_delay();
  const LinkConfig& config() const { return cfg_; }
  const LinkStats& stats() const { return stats_; }

  // Changes the nominal rate mid-run (used by capacity-step scenarios).
  void set_rate(Bandwidth rate) { cfg_.rate = rate; }

 private:
  // One FIFO slot: the packet plus its enqueue time (CoDel sojourn).
  // Packed together in a single ring buffer so the per-packet path keeps
  // one allocation-free structure instead of two parallel deques.
  struct QueuedPacket {
    Packet pkt;
    TimeNs enqueued = 0;
  };

  void maybe_start_service();
  void service_head();
  Bandwidth effective_rate();
  // CoDel dequeue decision for a packet that waited `sojourn`.
  bool codel_should_drop(TimeNs sojourn, TimeNs now);
  // Applies the FIFO/reordering bookkeeping shared by originals and
  // fault-injected duplicates; returns the (possibly clamped) delivery
  // time. `straggler` deliveries bypass the floor on purpose.
  TimeNs clamp_delivery(TimeNs arrival, bool straggler);
  // Schedules `pkt` into the sink at `arrival` — locally, or through the
  // cross-shard scheduler when one is set.
  void deliver(TimeNs arrival, const Packet& pkt);

  Simulator* sim_;
  LinkConfig cfg_;
  PacketSink* sink_ = nullptr;
  DeliveryScheduler deliver_;
  std::unique_ptr<LatencyNoise> noise_;
  std::unique_ptr<RateProcess> rate_process_;
  FaultTimeline* faults_ = nullptr;
  Rng rng_;

  RingBuffer<QueuedPacket> queue_;
  int64_t queue_bytes_ = 0;
  bool serving_ = false;
  TimeNs last_delivery_time_ = 0;  // FIFO floor for noisy deliveries
  LinkStats stats_;

  // CoDel state (Nichols & Jacobson, CACM 2012).
  bool codel_dropping_ = false;
  TimeNs codel_first_above_ = 0;
  TimeNs codel_next_drop_ = 0;
  int codel_drop_count_ = 0;
};

}  // namespace proteus
