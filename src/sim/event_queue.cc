#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace proteus {

void EventQueue::push(TimeNs when, Callback cb) {
  heap_.push(Event{when, next_seq_++, std::move(cb)});
}

TimeNs EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinite : heap_.top().when;
}

std::pair<TimeNs, EventQueue::Callback> EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  // priority_queue::top is const; the callback must be moved out via a copy
  // of the Event. Events are small, so copy the top then pop.
  Event e = heap_.top();
  heap_.pop();
  return {e.when, std::move(e.cb)};
}

}  // namespace proteus
