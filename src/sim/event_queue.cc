#include "sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <utility>

#include "telemetry/profiler.h"

namespace proteus {

int32_t EventQueue::alloc_node() {
  if (free_head_ != kNil) {
    const int32_t i = free_head_;
    free_head_ = pool_[static_cast<size_t>(i)].next;
    return i;
  }
  // Arena growth: only when total pending exceeds every previous peak,
  // so it stops for good once the workload's high-water mark is reached.
  const size_t i = pool_.size();
  if (i / kChunkSlots >= chunks_.size()) {
    chunks_.emplace_back(new Slot[kChunkSlots]);
  }
  pool_.emplace_back();
  return static_cast<int32_t>(i);
}

void EventQueue::park_node(int32_t i) {
  Node& n = pool_[static_cast<size_t>(i)];
  const size_t b = static_cast<size_t>((n.when - wheel_base_) / kBucketNs);
  n.next = bucket_head_[b];
  bucket_head_[b] = i;
  set_bucket_bit(b);
  ++wheel_count_;
}

void EventQueue::refill_from_overflow() {
  // Overflow events are always at/after the wheel base (the base only
  // moves forward, and events entered overflow because they were beyond
  // the horizon at push time), so the bucket index never underflows.
  // Migration relinks the meta node into its bucket; the capture never
  // moves.
  while (!overflow_.empty() && overflow_.front().when < horizon()) {
    std::pop_heap(overflow_.begin(), overflow_.end(), LaterRef{});
    park_node(overflow_.back().node);
    overflow_.pop_back();
  }
}

size_t EventQueue::next_occupied_bucket(size_t from) const {
  size_t w = from >> 6;
  const size_t words = bucket_bits_.size();
  if (w >= words) return kNumBuckets;
  uint64_t bits = bucket_bits_[w] & (~uint64_t{0} << (from & 63));
  while (bits == 0) {
    if (++w == words) return kNumBuckets;
    bits = bucket_bits_[w];
  }
  return (w << 6) + static_cast<size_t>(std::countr_zero(bits));
}

void EventQueue::settle_slow() {
  while (active_.empty() && young_.empty() && size_ > 0) {
    if (wheel_count_ == 0) {
      // Everything pending sits beyond the horizon: jump the wheel base
      // straight to the earliest overflow event instead of stepping
      // through empty rotations. The base stays a kBucketNs multiple so
      // bucket spans stay aligned.
      wheel_base_ = overflow_.front().when / kBucketNs * kBucketNs;
      cursor_ = 0;
      refill_from_overflow();
    }
    // Jump to the next non-empty bucket via the occupancy bitmap,
    // rotating at the wheel edge. wheel_count_ > 0 here (the refill above
    // moved at least the earliest overflow event inside the new horizon),
    // so the scan terminates.
    size_t b = next_occupied_bucket(cursor_);
    while (b == kNumBuckets) {
      wheel_base_ += kWheelSpanNs;
      cursor_ = 0;
      refill_from_overflow();
      if (wheel_count_ == 0) break;  // defensive; handled by outer loop
      b = next_occupied_bucket(0);
    }
    if (wheel_count_ == 0) continue;
    cursor_ = b;
    active_end_ = wheel_base_ + static_cast<TimeNs>(cursor_ + 1) * kBucketNs;
    // Activate the bucket: events stay in their slots; only 24-byte meta
    // refs enter the run. active_'s capacity ratchets to the largest
    // bucket ever seen, so steady state allocates nothing. LaterRef as a
    // sort comparator yields descending (when, seq) — the run's minimum
    // sits at the back, where consumption is a pop_back.
    for (int32_t i = bucket_head_[cursor_]; i != kNil;
         i = pool_[static_cast<size_t>(i)].next) {
      const Node& n = pool_[static_cast<size_t>(i)];
      // The bucket list hops through the arena in push order — a random
      // walk once the freelist has churned — so pull the next node's line
      // while this one is handled.
      if (n.next != kNil) __builtin_prefetch(&pool_[static_cast<size_t>(n.next)]);
      active_.push_back(ActiveRef{n.when, n.seq, i});
      --wheel_count_;
    }
    bucket_head_[cursor_] = kNil;
    clear_bucket_bit(cursor_);
    std::sort(active_.begin(), active_.end(), LaterRef{});
  }
}

TimeNs EventQueue::next_time() {
  if (size_ == 0) return kTimeInfinite;
  if (engine_ == EventEngine::kBinaryHeap) return heap_.front().when;
  settle();
  return young_first() ? young_.front().when : active_.back().when;
}

std::pair<TimeNs, EventQueue::Callback> EventQueue::pop() {
  if (size_ == 0) throw std::logic_error("EventQueue::pop on empty queue");
  if (engine_ == EventEngine::kBinaryHeap) {
    --size_;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event& e = heap_.back();
    std::pair<TimeNs, Callback> out{e.when, std::move(e.cb)};
    heap_.pop_back();
    return out;
  }
  settle();  // must run before --size_: it keys off size_ to find work
  --size_;
  const ActiveRef ref = take_earliest();
  Callback* c = slot(ref.node);
  std::pair<TimeNs, Callback> out{ref.when, std::move(*c)};
  c->~Callback();
  pool_[static_cast<size_t>(ref.node)].next = free_head_;
  free_head_ = ref.node;
  return out;
}

void EventQueue::invoke_next() {
  if (size_ == 0) {
    throw std::logic_error("EventQueue::invoke_next on empty queue");
  }
  if (engine_ == EventEngine::kBinaryHeap) {
    // The callback must leave the heap vector before running: it may push
    // new events, reallocating heap_ under an in-place invocation.
    --size_;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Callback cb = std::move(heap_.back().cb);
    heap_.pop_back();
    cb();
    return;
  }
  settle();
  --size_;
  const int32_t node = take_earliest().node;
  // Invoke in place: the chunk address is stable even if the callback
  // pushes (growing pool_/chunks_), and the node is recycled only after
  // the capture is destroyed, so a nested push can never claim the slot
  // the running capture occupies. The guard keeps node accounting correct
  // even if the callback throws.
  struct Reclaim {
    EventQueue* q;
    int32_t node;
    ~Reclaim() {
      q->slot(node)->~Callback();
      q->pool_[static_cast<size_t>(node)].next = q->free_head_;
      q->free_head_ = node;
    }
  } reclaim{this, node};
  (*slot(node))();
}

void EventQueue::run_span(TimeNs until, bool inclusive, TimeNs* now,
                          uint64_t* events) {
  // `last` folds the inclusive/exclusive bound into one comparison: times
  // are non-negative, so `until - 1` cannot underflow into a sentinel.
  const TimeNs last = inclusive ? until : until - 1;
  if (engine_ == EventEngine::kBinaryHeap) {
    while (size_ > 0) {
      const TimeNs t = heap_.front().when;
      if (t > last) return;
      *now = t;
      ++*events;
      PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
      --size_;
      std::pop_heap(heap_.begin(), heap_.end(), Later{});
      Callback cb = std::move(heap_.back().cb);
      heap_.pop_back();
      cb();
    }
    return;
  }
  for (;;) {
    settle();
    if (size_ == 0) return;
    const bool young = young_first();
    const TimeNs t = young ? young_.front().when : active_.back().when;
    if (t > last) return;
    *now = t;
    ++*events;
    PROTEUS_PROFILE_SCOPE(ProfilePhase::kEventQueue);
    --size_;
    int32_t node;
    if (young) {
      std::pop_heap(young_.begin(), young_.end(), LaterRef{});
      node = young_.back().node;
      young_.pop_back();
    } else {
      node = active_.back().node;
      active_.pop_back();
    }
    struct Reclaim {
      EventQueue* q;
      int32_t node;
      ~Reclaim() {
        q->slot(node)->~Callback();
        q->pool_[static_cast<size_t>(node)].next = q->free_head_;
        q->free_head_ = node;
      }
    } reclaim{this, node};
    // Overlap the next event's cold lines (its ~112-byte capture and its
    // meta node, untouched since push) with this callback's execution.
    // Pure latency hiding — no ordering effect.
    if (!active_.empty()) {
      const int32_t nx = active_.back().node;
      unsigned char* cap = reinterpret_cast<unsigned char*>(slot(nx));
      __builtin_prefetch(cap);
      __builtin_prefetch(cap + 64);
      __builtin_prefetch(&pool_[static_cast<size_t>(nx)], 1);
    }
    (*slot(node))();
  }
}

void EventQueue::clear_wheel_slots() noexcept {
  if (engine_ != EventEngine::kTimerWheel) return;
  // Captures are stored in raw chunk slots, so pending events must be
  // destroyed explicitly: walk everything still reachable from the active
  // heap, the overflow heap and the wheel buckets.
  for (const ActiveRef& r : active_) slot(r.node)->~Callback();
  for (const ActiveRef& r : young_) slot(r.node)->~Callback();
  for (const ActiveRef& r : overflow_) slot(r.node)->~Callback();
  for (size_t b = 0; b < bucket_head_.size(); ++b) {
    for (int32_t i = bucket_head_[b]; i != kNil;
         i = pool_[static_cast<size_t>(i)].next) {
      slot(i)->~Callback();
    }
  }
}

}  // namespace proteus
