#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace proteus {

int32_t EventQueue::alloc_node() {
  if (free_head_ != kNil) {
    const int32_t i = free_head_;
    free_head_ = pool_[i].next;
    return i;
  }
  // Arena growth: only when total pending exceeds every previous peak,
  // so it stops for good once the workload's high-water mark is reached.
  pool_.emplace_back();
  return static_cast<int32_t>(pool_.size() - 1);
}

void EventQueue::park_in_bucket(Event e) {
  const size_t b = static_cast<size_t>((e.when - wheel_base_) / kBucketNs);
  const int32_t i = alloc_node();
  pool_[i].e = std::move(e);
  pool_[i].next = bucket_head_[b];
  bucket_head_[b] = i;
  ++wheel_count_;
}

void EventQueue::push(TimeNs when, Callback&& cb) {
  // The callback is written straight into its resting place (arena node
  // or heap slot) instead of through an Event temporary: each extra move
  // is a ~100-byte inline-capture relocation, and the hot path used to
  // pay five of them per scheduled event.
  const uint64_t seq = next_seq_++;
  ++size_;
  if (engine_ == EventEngine::kBinaryHeap) {
    heap_.push_back(Event{when, seq, std::move(cb)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    return;
  }
  if (when < active_end_) {
    // At or before the watermark: compete directly in the active heap.
    // This also absorbs pushes that land "behind" the wheel cursor (the
    // clock trails the cursor after idle gaps), keeping order exact.
    const int32_t i = alloc_node();
    Node& n = pool_[i];
    n.e.when = when;
    n.e.seq = seq;
    n.e.cb = std::move(cb);
    active_.push_back(ActiveRef{when, seq, i});
    std::push_heap(active_.begin(), active_.end(), LaterRef{});
  } else if (when < horizon()) {
    const size_t b = static_cast<size_t>((when - wheel_base_) / kBucketNs);
    const int32_t i = alloc_node();
    Node& n = pool_[i];
    n.e.when = when;
    n.e.seq = seq;
    n.e.cb = std::move(cb);
    n.next = bucket_head_[b];
    bucket_head_[b] = i;
    ++wheel_count_;
  } else {
    overflow_.push_back(Event{when, seq, std::move(cb)});
    std::push_heap(overflow_.begin(), overflow_.end(), Later{});
  }
}

void EventQueue::refill_from_overflow() {
  // Overflow events are always at/after the wheel base (the base only
  // moves forward, and events entered overflow because they were beyond
  // the horizon at push time), so the bucket index never underflows.
  while (!overflow_.empty() && overflow_.front().when < horizon()) {
    std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
    park_in_bucket(std::move(overflow_.back()));
    overflow_.pop_back();
  }
}

void EventQueue::settle_slow() {
  while (active_.empty() && size_ > 0) {
    if (wheel_count_ == 0) {
      // Everything pending sits beyond the horizon: jump the wheel base
      // straight to the earliest overflow event instead of stepping
      // through empty rotations. The base stays a kBucketNs multiple so
      // bucket spans stay aligned.
      wheel_base_ = overflow_.front().when / kBucketNs * kBucketNs;
      cursor_ = 0;
      refill_from_overflow();
    }
    // Advance to the next non-empty bucket, rotating at the wheel edge.
    // wheel_count_ > 0 here (the refill above moved at least the earliest
    // overflow event inside the new horizon), so the scan terminates.
    while (bucket_head_[cursor_] == kNil) {
      ++cursor_;
      if (cursor_ == kNumBuckets) {
        wheel_base_ += kWheelSpanNs;
        cursor_ = 0;
        refill_from_overflow();
      }
      if (wheel_count_ == 0) break;  // defensive; handled by outer loop
    }
    active_end_ = wheel_base_ + static_cast<TimeNs>(cursor_ + 1) * kBucketNs;
    // Activate the bucket: its events stay in their arena nodes; only
    // refs enter the heap. Nodes are reclaimed at pop. active_'s capacity
    // ratchets to the largest bucket ever seen, so steady state allocates
    // nothing.
    for (int32_t i = bucket_head_[cursor_]; i != kNil; i = pool_[i].next) {
      active_.push_back(ActiveRef{pool_[i].e.when, pool_[i].e.seq, i});
      --wheel_count_;
    }
    bucket_head_[cursor_] = kNil;
    std::make_heap(active_.begin(), active_.end(), LaterRef{});
  }
}

TimeNs EventQueue::next_time() {
  if (size_ == 0) return kTimeInfinite;
  if (engine_ == EventEngine::kBinaryHeap) return heap_.front().when;
  settle();
  return active_.front().when;
}

std::pair<TimeNs, EventQueue::Callback> EventQueue::pop() {
  if (size_ == 0) throw std::logic_error("EventQueue::pop on empty queue");
  if (engine_ == EventEngine::kBinaryHeap) {
    --size_;
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event& e = heap_.back();
    std::pair<TimeNs, Callback> out{e.when, std::move(e.cb)};
    heap_.pop_back();
    return out;
  }
  settle();  // must run before --size_: it keys off size_ to find work
  --size_;
  std::pop_heap(active_.begin(), active_.end(), LaterRef{});
  const ActiveRef ref = active_.back();
  active_.pop_back();
  Node& n = pool_[ref.node];
  std::pair<TimeNs, Callback> out{ref.when, std::move(n.e.cb)};
  n.next = free_head_;
  free_head_ = ref.node;
  return out;
}

}  // namespace proteus
