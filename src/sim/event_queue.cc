#include "sim/event_queue.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace proteus {

void EventQueue::push(TimeNs when, Callback cb) {
  heap_.push_back(Event{when, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

TimeNs EventQueue::next_time() const {
  return heap_.empty() ? kTimeInfinite : heap_.front().when;
}

std::pair<TimeNs, EventQueue::Callback> EventQueue::pop() {
  if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event& e = heap_.back();
  std::pair<TimeNs, Callback> out{e.when, std::move(e.cb)};
  heap_.pop_back();
  return out;
}

}  // namespace proteus
