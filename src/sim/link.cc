#include "sim/link.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace proteus {

Link::Link(Simulator* sim, LinkConfig cfg, uint64_t noise_seed)
    : sim_(sim), cfg_(cfg), rng_(noise_seed) {}

void Link::set_latency_noise(std::unique_ptr<LatencyNoise> noise) {
  noise_ = std::move(noise);
}

void Link::set_rate_process(std::unique_ptr<RateProcess> process) {
  rate_process_ = std::move(process);
}

Bandwidth Link::effective_rate() {
  double m = rate_process_ ? rate_process_->multiplier(rng_, sim_->now()) : 1.0;
  return Bandwidth::from_bps(cfg_.rate.bps * m);
}

void Link::on_packet(const Packet& pkt) {
  if (cfg_.random_loss > 0.0 && rng_.bernoulli(cfg_.random_loss)) {
    ++stats_.random_drops;
    return;
  }
  if (queue_bytes_ + pkt.size_bytes > cfg_.buffer_bytes) {
    ++stats_.tail_drops;
    return;
  }
  queue_.push_back(pkt);
  enqueue_times_.push_back(sim_->now());
  queue_bytes_ += pkt.size_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queue_bytes_);
  maybe_start_service();
}

bool Link::codel_should_drop(TimeNs sojourn, TimeNs now) {
  const CodelConfig& c = cfg_.codel;
  if (!c.enabled) return false;

  if (sojourn < c.target) {
    // Below target: leave the dropping state.
    codel_first_above_ = 0;
    codel_dropping_ = false;
    return false;
  }
  if (!codel_dropping_) {
    if (codel_first_above_ == 0) {
      codel_first_above_ = now + c.interval;
      return false;
    }
    if (now < codel_first_above_) return false;
    // Sojourn stayed above target for a full interval: start dropping.
    codel_dropping_ = true;
    codel_drop_count_ = codel_drop_count_ > 2 ? codel_drop_count_ - 2 : 1;
    codel_next_drop_ =
        now + static_cast<TimeNs>(
                  static_cast<double>(c.interval) /
                  std::sqrt(static_cast<double>(codel_drop_count_)));
    return true;
  }
  if (now >= codel_next_drop_) {
    ++codel_drop_count_;
    codel_next_drop_ =
        now + static_cast<TimeNs>(
                  static_cast<double>(c.interval) /
                  std::sqrt(static_cast<double>(codel_drop_count_)));
    return true;
  }
  return false;
}

void Link::maybe_start_service() {
  if (serving_ || queue_.empty()) return;
  serving_ = true;
  service_head();
}

void Link::service_head() {
  const Packet pkt = queue_.front();
  const TimeNs tx = effective_rate().tx_time(pkt.size_bytes);
  sim_->schedule_in(tx, [this] {
    Packet pkt = queue_.front();
    queue_.pop_front();
    const TimeNs enqueued = enqueue_times_.front();
    enqueue_times_.pop_front();
    queue_bytes_ -= pkt.size_bytes;

    if (codel_should_drop(sim_->now() - enqueued, sim_->now())) {
      ++stats_.codel_drops;
      if (queue_.empty()) {
        serving_ = false;
      } else {
        service_head();
      }
      return;
    }

    TimeNs extra = noise_ ? noise_->sample(rng_, sim_->now()) : 0;
    TimeNs arrival = sim_->now() + cfg_.prop_delay + extra;
    // Force FIFO delivery despite per-packet noise.
    arrival = std::max(arrival, last_delivery_time_);
    last_delivery_time_ = arrival;

    ++stats_.delivered_packets;
    stats_.delivered_bytes += pkt.size_bytes;
    if (sink_ != nullptr) {
      sim_->schedule_at(arrival, [this, pkt] { sink_->on_packet(pkt); });
    }

    if (queue_.empty()) {
      serving_ = false;
    } else {
      service_head();
    }
  });
}

TimeNs Link::current_queue_delay() {
  const Bandwidth rate = effective_rate();
  return rate.positive() ? rate.tx_time(queue_bytes_) : kTimeInfinite;
}

}  // namespace proteus
