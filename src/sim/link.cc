#include "sim/link.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace proteus {

namespace {
// A duplicate is injected this long after its original's arrival, before
// the FIFO clamp (see clamp_delivery).
constexpr TimeNs kDuplicateLag = from_us(50);
}  // namespace

Link::Link(Simulator* sim, LinkConfig cfg, uint64_t noise_seed)
    : sim_(sim), cfg_(cfg), rng_(noise_seed) {
  // Typical high-water occupancy for a sim-scale buffer; the ring still
  // grows if a scenario configures a deeper queue.
  queue_.reserve(256);
}

void Link::set_latency_noise(std::unique_ptr<LatencyNoise> noise) {
  noise_ = std::move(noise);
}

void Link::set_rate_process(std::unique_ptr<RateProcess> process) {
  rate_process_ = std::move(process);
}

Bandwidth Link::effective_rate() {
  double m = rate_process_ ? rate_process_->multiplier(rng_, sim_->now()) : 1.0;
  if (faults_ != nullptr) m *= faults_->capacity_multiplier(sim_->now());
  return Bandwidth::from_bps(cfg_.rate.bps * m);
}

void Link::on_packet(const Packet& pkt) {
  ++stats_.offered_packets;
  if (cfg_.random_loss > 0.0 && rng_.bernoulli(cfg_.random_loss)) {
    ++stats_.random_drops;
    return;
  }
  if (queue_bytes_ + pkt.size_bytes > cfg_.buffer_bytes) {
    if (faults_ != nullptr && faults_->blackout_active(sim_->now())) {
      ++stats_.blackout_drops;
    } else {
      ++stats_.tail_drops;
    }
    return;
  }
  queue_.push_back(QueuedPacket{pkt, sim_->now()});
  queue_bytes_ += pkt.size_bytes;
  stats_.max_queue_bytes = std::max(stats_.max_queue_bytes, queue_bytes_);
  maybe_start_service();
}

bool Link::codel_should_drop(TimeNs sojourn, TimeNs now) {
  const CodelConfig& c = cfg_.codel;
  if (!c.enabled) return false;

  if (sojourn < c.target) {
    // Below target: leave the dropping state.
    codel_first_above_ = 0;
    codel_dropping_ = false;
    return false;
  }
  if (!codel_dropping_) {
    if (codel_first_above_ == 0) {
      codel_first_above_ = now + c.interval;
      return false;
    }
    if (now < codel_first_above_) return false;
    // Sojourn stayed above target for a full interval: start dropping.
    codel_dropping_ = true;
    codel_drop_count_ = codel_drop_count_ > 2 ? codel_drop_count_ - 2 : 1;
    codel_next_drop_ =
        now + static_cast<TimeNs>(
                  static_cast<double>(c.interval) /
                  std::sqrt(static_cast<double>(codel_drop_count_)));
    return true;
  }
  if (now >= codel_next_drop_) {
    ++codel_drop_count_;
    codel_next_drop_ =
        now + static_cast<TimeNs>(
                  static_cast<double>(c.interval) /
                  std::sqrt(static_cast<double>(codel_drop_count_)));
    return true;
  }
  return false;
}

void Link::maybe_start_service() {
  if (serving_ || queue_.empty()) return;
  serving_ = true;
  service_head();
}

void Link::service_head() {
  // Blackout: service pauses (rate -> 0) until the window clears. Packets
  // already on the wire finish their flight; the queue holds and, once
  // full, overflows into blackout_drops.
  if (faults_ != nullptr && faults_->blackout_active(sim_->now())) {
    const TimeNs resume = faults_->blackout_clear_time(sim_->now());
    sim_->schedule_at(resume, [this] {
      if (queue_.empty()) {
        serving_ = false;
      } else {
        service_head();
      }
    });
    return;
  }
  const TimeNs tx = effective_rate().tx_time(queue_.front().pkt.size_bytes);
  sim_->schedule_in(tx, [this] {
    const Packet pkt = queue_.front().pkt;
    const TimeNs enqueued = queue_.front().enqueued;
    queue_.pop_front();
    queue_bytes_ -= pkt.size_bytes;

    if (codel_should_drop(sim_->now() - enqueued, sim_->now())) {
      ++stats_.codel_drops;
      if (queue_.empty()) {
        serving_ = false;
      } else {
        service_head();
      }
      return;
    }

    const TimeNs now = sim_->now();
    TimeNs extra = noise_ ? noise_->sample(rng_, now) : 0;
    TimeNs prop = cfg_.prop_delay;
    bool straggler = false;
    if (faults_ != nullptr) {
      // Route change steps the propagation delay (never below zero).
      prop = std::max<TimeNs>(0, prop + faults_->prop_delay_delta(now));
      if (const TimeNs held = faults_->sample_reorder(now); held > 0) {
        extra += held;
        straggler = true;
      }
    }
    const TimeNs arrival = clamp_delivery(now + prop + extra, straggler);

    ++stats_.delivered_packets;
    stats_.delivered_bytes += pkt.size_bytes;
    deliver(arrival, pkt);
    if (faults_ != nullptr && faults_->sample_duplicate(now)) {
      // The duplicate is a delivery like any other: it runs through the
      // same FIFO/reorder bookkeeping as its original, so with
      // allow_reordering=false a duplicate can never leapfrog behind a
      // successor (it used to bypass the floor and silently reorder).
      const TimeNs dup_arrival =
          clamp_delivery(arrival + kDuplicateLag, straggler);
      ++stats_.duplicated;
      ++stats_.delivered_packets;
      stats_.delivered_bytes += pkt.size_bytes;
      deliver(dup_arrival, pkt);
    }

    if (queue_.empty()) {
      serving_ = false;
    } else {
      service_head();
    }
  });
}

void Link::deliver(TimeNs arrival, const Packet& pkt) {
  if (deliver_) {
    deliver_(arrival, pkt);
    return;
  }
  if (sink_ != nullptr) {
    sim_->schedule_at(arrival, [this, pkt] { sink_->on_packet(pkt); });
  }
}

TimeNs Link::clamp_delivery(TimeNs arrival, bool straggler) {
  if (straggler) {
    // A fault-injected straggler is deliberately overtaken: deliver late
    // and leave the FIFO floor alone so successors pass it.
    ++stats_.reordered;
    return std::max(arrival, last_delivery_time_ + 1);
  }
  if (cfg_.allow_reordering) {
    if (arrival < last_delivery_time_) ++stats_.reordered;
    last_delivery_time_ = std::max(last_delivery_time_, arrival);
    return arrival;
  }
  // Force FIFO delivery despite per-packet noise.
  arrival = std::max(arrival, last_delivery_time_);
  last_delivery_time_ = arrival;
  return arrival;
}

TimeNs Link::current_queue_delay() {
  const Bandwidth rate = effective_rate();
  return rate.positive() ? rate.tx_time(queue_bytes_) : kTimeInfinite;
}

}  // namespace proteus
