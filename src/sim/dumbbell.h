// Dumbbell topology: N senders -> shared bottleneck link -> N receivers,
// with a per-flow reverse (ACK) path of fixed delay.
//
// The reverse path is uncongested (ACKs are small) but can optionally pass
// through an AckAggregator that models bursty WiFi MAC scheduling: the
// channel occasionally blocks for a random period, ACKs pile up, and are
// then released back-to-back. This produces exactly the ACK-interval-ratio
// spikes the paper's per-ACK RTT filter (section 5) is designed to absorb.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/link.h"
#include "sim/packet.h"
#include "sim/simulator.h"

namespace proteus {

struct AckAggregatorConfig {
  bool enabled = false;
  TimeNs mean_block_interval = from_ms(120.0);  // Poisson gap between blocks
  TimeNs mean_block_duration = from_ms(10.0);   // exponential hold time
  TimeNs release_spacing = from_us(30.0);       // back-to-back ACK spacing
};

// Holds ACKs during "blocked" periods and flushes them in bursts.
class AckAggregator {
 public:
  AckAggregator(Simulator* sim, AckAggregatorConfig cfg, uint64_t seed);

  // Delivers `pkt` to `sink`, possibly delayed by an ongoing block.
  void deliver(const Packet& pkt, PacketSink* sink);

 private:
  void schedule_next_block();

  Simulator* sim_;
  AckAggregatorConfig cfg_;
  Rng rng_;
  TimeNs blocked_until_ = 0;
  TimeNs next_release_at_ = 0;
};

struct DumbbellConfig {
  LinkConfig bottleneck;
  TimeNs reverse_delay = from_ms(15);  // one-way ACK path delay
  AckAggregatorConfig ack_aggregation;
  // Scripted adversarial events (fault_timeline.h); empty = none. Forward
  // events act on the bottleneck, ackloss/ackburst on the reverse path.
  std::vector<FaultSpec> faults;
  uint64_t seed = 0xd0b;
};

// Wiring helper used by every experiment. Flows register a receiver-side
// sink (gets data packets that survive the bottleneck) and a sender-side
// sink (gets ACKs after the reverse path).
class Dumbbell {
 public:
  Dumbbell(Simulator* sim, DumbbellConfig cfg);

  // Data packets from senders enter here.
  PacketSink* forward_ingress();
  // Receivers push ACKs here; they arrive at the flow's sender sink after
  // reverse_delay (plus any aggregation).
  void send_reverse(const Packet& ack);

  void attach_flow(FlowId id, PacketSink* receiver_side,
                   PacketSink* sender_ack_side);
  void detach_flow(FlowId id);

  Link& bottleneck() { return *bottleneck_; }
  const Link& bottleneck() const { return *bottleneck_; }
  // The active fault schedule, or null when the config declared none.
  FaultTimeline* faults() { return faults_.get(); }
  Simulator& sim() { return *sim_; }
  TimeNs base_rtt() const {
    return cfg_.bottleneck.prop_delay + cfg_.reverse_delay;
  }

 private:
  class Demux final : public PacketSink {
   public:
    explicit Demux(Dumbbell* owner) : owner_(owner) {}
    void on_packet(const Packet& pkt) override;

   private:
    Dumbbell* owner_;
  };

  struct FlowPorts {
    PacketSink* receiver_side = nullptr;
    PacketSink* sender_ack_side = nullptr;
  };

  // Hands `ack` to its flow's sender sink (if still attached) through the
  // aggregator. Shared by the direct path and deferred fault releases.
  void deliver_ack(const Packet& ack);

  Simulator* sim_;
  DumbbellConfig cfg_;
  std::unique_ptr<Link> bottleneck_;
  Demux demux_;
  std::unique_ptr<AckAggregator> aggregator_;
  std::unique_ptr<FaultTimeline> faults_;
  TimeNs fault_release_cursor_ = 0;  // spaces compressed-ACK releases
  std::unordered_map<FlowId, FlowPorts> flows_;
};

}  // namespace proteus
