// Dumbbell topology: N senders -> shared bottleneck link -> N receivers,
// with a per-flow reverse (ACK) path of fixed delay.
//
// The reverse path is uncongested (ACKs are small) but can optionally pass
// through an AckAggregator that models bursty WiFi MAC scheduling: the
// channel occasionally blocks for a random period, ACKs pile up, and are
// then released back-to-back. This produces exactly the ACK-interval-ratio
// spikes the paper's per-ACK RTT filter (section 5) is designed to absorb.
//
// Internally this is a thin two-node instance of the general Topology
// graph (topology.h): one bottleneck Link edge forward, one delay edge
// back, a single shared path, an always-present sender-side aggregator,
// and one fault timeline attached to both edges. The topology_golden_test
// suite pins it bit-identical to the historical standalone implementation.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/topology.h"

namespace proteus {

struct DumbbellConfig {
  LinkConfig bottleneck;
  TimeNs reverse_delay = from_ms(15);  // one-way ACK path delay
  AckAggregatorConfig ack_aggregation;
  // Scripted adversarial events (fault_timeline.h); empty = none. Forward
  // events act on the bottleneck, ackloss/ackburst on the reverse path.
  std::vector<FaultSpec> faults;
  uint64_t seed = 0xd0b;
};

// Wiring helper used by every experiment. Flows register a receiver-side
// sink (gets data packets that survive the bottleneck) and a sender-side
// sink (gets ACKs after the reverse path).
class Dumbbell final : public Network {
 public:
  Dumbbell(Simulator* sim, DumbbellConfig cfg);

  // Data packets from senders enter here. Every dumbbell flow shares the
  // one path, so the flow-less overload answers without a route lookup.
  PacketSink* forward_ingress() { return &topo_.link(0); }
  PacketSink* forward_ingress(FlowId id) override {
    return topo_.forward_ingress(id);
  }
  // Receivers push ACKs here; they arrive at the flow's sender sink after
  // reverse_delay (plus any aggregation).
  void send_reverse(const Packet& ack) override { topo_.send_reverse(ack); }

  void attach_flow(FlowId id, PacketSink* receiver_side,
                   PacketSink* sender_ack_side) override {
    topo_.attach_flow(id, receiver_side, sender_ack_side);
  }
  void detach_flow(FlowId id) override { topo_.detach_flow(id); }

  Link& bottleneck() { return topo_.link(0); }
  const Link& bottleneck() const { return topo_.link(0); }
  // The active fault schedule, or null when the config declared none.
  FaultTimeline* faults() { return faults_; }
  Simulator& sim() { return topo_.sim(); }
  TimeNs base_rtt() const {
    return cfg_.bottleneck.prop_delay + cfg_.reverse_delay;
  }
  // The underlying graph (one Link edge, one delay edge, one path).
  Topology& topology() { return topo_; }
  const Topology& topology() const { return topo_; }

 private:
  DumbbellConfig cfg_;
  Topology topo_;
  FaultTimeline* faults_ = nullptr;  // owned by topo_
};

}  // namespace proteus
