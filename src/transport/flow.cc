#include "transport/flow.h"

#include <algorithm>
#include <utility>

namespace proteus {

Flow::Flow(Simulator* sim, Network* network, FlowConfig cfg,
           std::unique_ptr<CongestionController> cc)
    : sim_(sim),
      network_(network),
      cfg_(cfg) {
  sender_ = std::make_unique<Sender>(sim, network, cfg_.id, std::move(cc),
                                     kMtuBytes, cfg_.initial_window_slots);
  receiver_ = std::make_unique<Receiver>(sim, network, cfg_.id);
  arm();
}

void Flow::arm() {
  network_->attach_flow(cfg_.id, receiver_.get(), sender_.get());
  attached_ = true;
  receiver_->set_metering(cfg_.meter_throughput);

  if (cfg_.collect_rtt) {
    sender_->set_on_ack(
        [this](const AckInfo& info) { rtt_samples_.add(to_ms(info.rtt)); });
  }
  if (!cfg_.unlimited) {
    sender_->set_on_all_delivered([this] {
      if (completion_time_ == kTimeInfinite) {
        completion_time_ = sim_->now();
      }
    });
  }

  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_at(std::max(cfg_.start_time, sim_->now()), [this, alive] {
    if (alive.expired()) return;
    if (cfg_.unlimited) {
      sender_->set_unlimited(true);
    } else {
      sender_->offer_bytes(cfg_.total_bytes);
    }
    sender_->start();
  });
  if (cfg_.stop_time != kTimeInfinite) {
    sim_->schedule_at(cfg_.stop_time, [this, alive] {
      if (alive.expired()) return;
      sender_->set_unlimited(false);
      sender_->stop();
    });
  }
}

void Flow::retire() {
  sender_->retire();
  alive_.renew();  // expire the flow's own start/stop events
  if (attached_) {
    network_->detach_flow(cfg_.id);
    attached_ = false;
  }
}

bool Flow::recycle(FlowConfig cfg, uint64_t cc_seed) {
  if (!sender_->reset_for_reuse(cfg.id, cc_seed)) return false;
  cfg_ = cfg;
  receiver_->reset_for_reuse(cfg_.id);
  rtt_samples_.clear();
  completion_time_ = kTimeInfinite;
  arm();
  return true;
}

Flow::~Flow() {
  if (attached_) network_->detach_flow(cfg_.id);
}

}  // namespace proteus
