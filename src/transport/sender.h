// Transport sender endpoint: pacing, windowing, RTT estimation, and
// QUIC-style loss detection (packet threshold + timeout sweep).
//
// Applications grant byte credits with offer_bytes() (or set_unlimited()).
// Lost packets return their credit, so total delivered bytes eventually
// equals the credit granted — retransmission without modeling payloads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/life_tag.h"
#include "sim/packet.h"
#include "sim/simulator.h"
#include "transport/cc_interface.h"

namespace proteus {

class Network;

struct SenderStats {
  int64_t packets_sent = 0;
  int64_t bytes_sent = 0;
  int64_t packets_acked = 0;
  int64_t bytes_delivered = 0;
  int64_t packets_lost = 0;
  int64_t bytes_lost = 0;
};

class Sender final : public PacketSink {
 public:
  // `network` routes data out and delivers ACKs back; the sender attaches
  // itself as flow `id`'s ACK sink. `receiver_ack_path` is wired by Flow.
  // `initial_slots` sizes the in-flight slot ring (rounded up to a power
  // of two; grows on demand). The default suits a full-rate bulk flow;
  // churn scenarios holding 100k+ mostly-idle flows shrink it — slot
  // capacity is pure storage and never affects packet timing.
  Sender(Simulator* sim, Network* network, FlowId id,
         std::unique_ptr<CongestionController> cc,
         int64_t packet_bytes = kMtuBytes, int initial_slots = 256);

  // Pacing granularity: packets within one quantum leave back-to-back,
  // like a real user-space stack waking up and writing a sendmsg batch.
  // This burstiness is load-bearing — transient queue occupancy from
  // colliding bursts is what makes RTT deviation a usable competition
  // signal (paper section 4.2). Zero restores idealized per-packet pacing.
  void set_pacing_quantum(TimeNs quantum) { pacing_quantum_ = quantum; }
  void set_max_burst_packets(int n) { max_burst_packets_ = n; }
  // Fractional pacing jitter j: packet spacing is uniform in
  // [1-j, 1+j] * interval (mean-preserving).
  void set_pacing_jitter(double j) { pacing_jitter_ = j; }
  ~Sender() override;

  Sender(const Sender&) = delete;
  Sender& operator=(const Sender&) = delete;

  // --- Pooled-flow lifecycle -------------------------------------------
  // retire(): park the sender in a pool. Stops transmission and expires
  // every scheduled callback (pacer, CC timer, loss sweep) so nothing
  // touches the sender while it waits for reuse.
  void retire();
  // reset_for_reuse(): restore the exact state of a freshly constructed
  // Sender for flow `id` — indistinguishable to the simulation, including
  // the CC's RNG streams. Storage (slot ring, CC rings) keeps its
  // ratcheted capacity, which is invisible to behavior. Returns false
  // (sender untouched) when the CC does not support in-place reset; the
  // caller then falls back to destroy + construct. The externally
  // configured pacing knobs (quantum/burst/jitter) are preserved; callers
  // re-apply them as they would after construction.
  bool reset_for_reuse(FlowId id, uint64_t cc_seed);

  // --- Application interface ------------------------------------------
  void start();
  void stop();  // stop sending new data (in-flight packets still resolve)
  void offer_bytes(int64_t bytes);
  void set_unlimited(bool unlimited);
  // Fires every time all offered credit has been delivered (not in
  // unlimited mode). Re-arms automatically when more credit arrives.
  void set_on_all_delivered(std::function<void()> cb);
  // Optional per-ack notification (app-level progress, throughput meters).
  void set_on_delivered(std::function<void(int64_t bytes, TimeNs now)> cb);
  // Optional observer of every AckInfo (RTT sampling, probes).
  void set_on_ack(std::function<void(const AckInfo&)> cb);

  // --- Introspection ---------------------------------------------------
  const SenderStats& stats() const { return stats_; }
  int64_t bytes_in_flight() const { return bytes_in_flight_; }
  int64_t packets_in_flight() const { return in_flight_count_; }
  int64_t pending_credit() const { return credit_; }
  TimeNs smoothed_rtt() const { return srtt_; }
  TimeNs min_rtt() const { return min_rtt_; }
  CongestionController& cc() { return *cc_; }
  const CongestionController& cc() const { return *cc_; }
  FlowId flow_id() const { return id_; }
  bool running() const { return running_; }

  // PacketSink: ACKs delivered from the reverse path.
  void on_packet(const Packet& ack) override;

 private:
  struct InFlight {
    int64_t bytes;
    TimeNs sent_time;
  };
  // One pooled in-flight slot. Sequence numbers are contiguous per flow,
  // so the window [base_seq_, next_seq_) maps onto a power-of-two slot
  // ring at `seq & slot_mask_`: O(1) lookup/insert/erase with zero
  // steady-state allocation (the old std::map cost one node allocation
  // per packet sent — the hottest allocation in the simulator after the
  // event queue itself).
  struct Slot {
    int64_t bytes = 0;
    TimeNs sent_time = 0;
    bool active = false;
  };

  void try_send(bool from_pacer);
  void send_one();
  void schedule_pacer(TimeNs when);
  void arm_cc_timer();
  void arm_loss_sweep();
  void detect_losses_by_threshold();
  void declare_lost(uint64_t seq, const InFlight& pkt);
  void update_rtt(TimeNs rtt);
  TimeNs rto() const;
  void maybe_fire_all_delivered();

  // Slot-ring helpers. base_seq_ always points at the oldest active slot
  // (or next_seq_ when nothing is in flight); since packets are sent in
  // seq order, base_seq_'s slot also carries the oldest sent_time, which
  // the loss sweep uses as its O(1) "anything timed out?" check.
  Slot* find_slot(uint64_t seq);
  void release_slot(uint64_t seq);
  void advance_base();
  void grow_slots();

  // Member order is deliberate: with 10k+ concurrent flows every Sender
  // is cold in cache when its pacer/sweep tick fires, so the fields those
  // two paths touch are packed up front — the tick pulls one or two lines
  // instead of scattering loads across the whole object. Cold state
  // (callbacks, stats, introspection-only times) sits at the back.
  Simulator* sim_;
  Network* network_;
  std::unique_ptr<CongestionController> cc_;
  FlowId id_;

  // --- Hot: read by every pacer tick (try_send fast path) --------------
  bool running_ = false;
  bool unlimited_ = false;
  bool loss_sweep_armed_ = false;
  bool any_acked_ = false;
  bool all_delivered_fired_ = false;
  int max_burst_packets_ = 1;
  int64_t credit_ = 0;
  int64_t packet_bytes_;
  int64_t bytes_in_flight_ = 0;
  int64_t in_flight_count_ = 0;
  TimeNs next_send_time_ = 0;
  TimeNs pacer_scheduled_for_ = kTimeInfinite;
  TimeNs cc_timer_armed_for_ = kTimeInfinite;
  TimeNs pacing_quantum_ = from_us(1500);
  double pacing_jitter_ = 0.4;

  // --- Hot: loss sweep / ACK bookkeeping -------------------------------
  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  uint64_t base_seq_ = 0;
  uint64_t next_seq_ = 0;
  size_t slot_mask_ = 0;
  std::vector<Slot> slots_;
  uint64_t largest_acked_ = 0;
  TimeNs min_rtt_ = kTimeInfinite;
  TimeNs last_ack_time_ = 0;

  // --- Cold -------------------------------------------------------------
  std::function<void()> on_all_delivered_;
  std::function<void(int64_t, TimeNs)> on_delivered_;
  std::function<void(const AckInfo&)> on_ack_;

  SenderStats stats_;
  LifeTag alive_;  // guards scheduled callbacks after dtor
};

}  // namespace proteus
