// Flow: one sender/receiver pair bound to a network, with start/stop
// scheduling and the measurement hooks every experiment needs.
#pragma once

#include <cstdint>
#include <memory>

#include "sim/life_tag.h"
#include "sim/network.h"
#include "stats/percentile.h"
#include "transport/receiver.h"
#include "transport/sender.h"

namespace proteus {

struct FlowConfig {
  FlowId id = 0;
  TimeNs start_time = 0;
  TimeNs stop_time = kTimeInfinite;  // stop offering new data at this time
  bool unlimited = true;             // bulk flow
  int64_t total_bytes = 0;           // for finite flows (unlimited == false)
  bool collect_rtt = true;           // record per-ack RTT samples
  // Receiver throughput metering (see Receiver::set_metering). Off for
  // massive-churn flows nobody queries: the bin array is indexed by
  // absolute sim time, so pooled flows would otherwise grow it forever.
  bool meter_throughput = true;
  // In-flight slot-ring size hint (see Sender). Storage only — never
  // affects timing; shrink for massive-churn scenarios.
  int initial_window_slots = 256;
};

class Flow {
 public:
  Flow(Simulator* sim, Network* network, FlowConfig cfg,
       std::unique_ptr<CongestionController> cc);
  ~Flow();

  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  // --- Pooled-flow lifecycle -------------------------------------------
  // retire(): detach from the network and expire every scheduled event so
  // the flow can sit in an arena untouched by the simulation. A retired
  // flow holds only storage; recycle() brings it back to life.
  void retire();
  // recycle(): rebuild this retired flow as a brand-new flow `cfg.id`,
  // byte-identical to Flow(sim, network, cfg, fresh-cc-with-cc_seed) —
  // same hooks, same start/stop events, same CC RNG streams. Returns
  // false (flow left retired) when the CC cannot reset in place; the
  // caller then destroys the flow and constructs a new one.
  bool recycle(FlowConfig cfg, uint64_t cc_seed);

  Sender& sender() { return *sender_; }
  const Sender& sender() const { return *sender_; }
  Receiver& receiver() { return *receiver_; }
  const Receiver& receiver() const { return *receiver_; }
  const FlowConfig& config() const { return cfg_; }

  // Per-ack RTT samples collected at the sender.
  const Samples& rtt_samples() const { return rtt_samples_; }

  // Receiver goodput over [from, to) in Mbps.
  double mean_throughput_mbps(TimeNs from, TimeNs to) const {
    return receiver_->meter().mean_mbps(from, to);
  }

  // Finite flows: completion time, or kTimeInfinite if not finished.
  TimeNs completion_time() const { return completion_time_; }
  bool completed() const { return completion_time_ != kTimeInfinite; }

 private:
  // Shared tail of construction and recycle(): attach to the network,
  // install the measurement hooks, schedule start/stop.
  void arm();

  Simulator* sim_;
  Network* network_;
  FlowConfig cfg_;
  std::unique_ptr<Sender> sender_;
  std::unique_ptr<Receiver> receiver_;
  Samples rtt_samples_;
  TimeNs completion_time_ = kTimeInfinite;
  bool attached_ = false;
  LifeTag alive_;
};

}  // namespace proteus
