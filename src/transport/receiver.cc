#include "transport/receiver.h"

#include "sim/network.h"

namespace proteus {

Receiver::Receiver(Simulator* sim, Network* network, FlowId id)
    : sim_(sim), network_(network), id_(id) {}

void Receiver::on_packet(const Packet& pkt) {
  bytes_received_ += pkt.size_bytes;
  ++packets_received_;
  if (meter_enabled_) meter_.on_bytes(sim_->now(), pkt.size_bytes);

  Packet ack;
  ack.flow_id = id_;
  ack.is_ack = true;
  ack.size_bytes = kAckBytes;
  ack.acked_seq = pkt.seq;
  ack.data_sent_time = pkt.sent_time;
  ack.receiver_time = sim_->now();
  ack.acked_bytes = pkt.size_bytes;
  network_->send_reverse(ack);

  if (on_data_) on_data_(pkt, sim_->now());
}

}  // namespace proteus
