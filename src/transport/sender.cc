#include "transport/sender.h"

#include <algorithm>
#include <utility>

#include "sim/network.h"
#include "telemetry/profiler.h"

namespace proteus {

namespace {
constexpr int kLossReorderThreshold = 3;  // QUIC-style packet threshold
constexpr TimeNs kMinRto = from_ms(25);
constexpr TimeNs kInitialRttGuess = from_ms(100);
}  // namespace

Sender::Sender(Simulator* sim, Network* network, FlowId id,
               std::unique_ptr<CongestionController> cc, int64_t packet_bytes,
               int initial_slots)
    : sim_(sim),
      network_(network),
      cc_(std::move(cc)),
      id_(id),
      packet_bytes_(packet_bytes) {
  // Power of two (grows if the window ever spans more); floor of 8 keeps
  // the ring useful even when a scale scenario asks for the minimum.
  size_t cap = 8;
  while (cap < static_cast<size_t>(std::max(initial_slots, 1))) cap *= 2;
  slots_.resize(cap);
  slot_mask_ = slots_.size() - 1;
  // Let the controller size its own per-packet rings (BBR snapshots) from
  // the same hint instead of a worst-case constant.
  cc_->set_window_slots_hint(initial_slots);
}

Sender::~Sender() = default;

void Sender::retire() {
  running_ = false;
  // Expire outstanding pacer/timer/sweep events: they captured a Ref of
  // the previous generation and now no-op when they fire.
  alive_.renew();
}

bool Sender::reset_for_reuse(FlowId id, uint64_t cc_seed) {
  if (!cc_->reset_for_reuse(cc_seed)) return false;
  id_ = id;
  running_ = false;
  unlimited_ = false;
  credit_ = 0;
  next_seq_ = 0;
  largest_acked_ = 0;
  any_acked_ = false;
  std::fill(slots_.begin(), slots_.end(), Slot{});
  base_seq_ = 0;
  in_flight_count_ = 0;
  bytes_in_flight_ = 0;
  srtt_ = 0;
  rttvar_ = 0;
  min_rtt_ = kTimeInfinite;
  last_ack_time_ = 0;
  pacer_scheduled_for_ = kTimeInfinite;
  next_send_time_ = 0;
  cc_timer_armed_for_ = kTimeInfinite;
  loss_sweep_armed_ = false;
  on_all_delivered_ = nullptr;
  on_delivered_ = nullptr;
  on_ack_ = nullptr;
  all_delivered_fired_ = false;
  stats_ = SenderStats{};
  alive_.renew();
  return true;
}

void Sender::start() {
  if (running_) return;
  running_ = true;
  next_send_time_ = sim_->now();
  cc_->on_start(sim_->now());
  arm_cc_timer();
  try_send(/*from_pacer=*/false);
}

void Sender::stop() { running_ = false; }

void Sender::offer_bytes(int64_t bytes) {
  credit_ += bytes;
  all_delivered_fired_ = false;
  if (running_) try_send(false);
}

void Sender::set_unlimited(bool unlimited) {
  unlimited_ = unlimited;
  if (running_) try_send(false);
}

void Sender::set_on_all_delivered(std::function<void()> cb) {
  on_all_delivered_ = std::move(cb);
}

void Sender::set_on_delivered(std::function<void(int64_t, TimeNs)> cb) {
  on_delivered_ = std::move(cb);
}

void Sender::set_on_ack(std::function<void(const AckInfo&)> cb) {
  on_ack_ = std::move(cb);
}

void Sender::try_send(bool from_pacer) {
  if (from_pacer) pacer_scheduled_for_ = kTimeInfinite;
  const TimeNs now = sim_->now();
  if (running_) {
    // cwnd is loop-invariant across one try_send: every controller
    // adjusts its window on ack/loss/timer, never on on_packet_sent, so
    // one virtual call covers the whole burst. The pacing rate is NOT
    // invariant — a send can rotate the controller into a new monitor
    // interval at a different rate — so it stays inside the loop.
    const int64_t cwnd = cc_->cwnd_bytes();
    const auto can_send = [&] {
      if (!unlimited_ && credit_ <= 0) return false;
      const int64_t next_bytes =
          unlimited_ ? packet_bytes_ : std::min(packet_bytes_, credit_);
      return cwnd == kNoCwndLimit || bytes_in_flight_ + next_bytes <= cwnd;
    };
    while (can_send()) {
      const Bandwidth pace = cc_->pacing_rate();
      if (pace.positive()) {
        if (next_send_time_ > now) {
          schedule_pacer(next_send_time_);
          break;
        }
        // Burst pacing: emit up to one quantum's worth of packets
        // back-to-back, then sleep until the quantum's budget elapses.
        const TimeNs interval = pace.tx_time(packet_bytes_);
        int burst = 1;
        if (interval > 0 && pacing_quantum_ > interval) {
          burst = static_cast<int>(pacing_quantum_ / interval);
        }
        burst = std::min(burst, max_burst_packets_);
        // A long idle gap must not bank "catch-up" sends.
        next_send_time_ = std::max(next_send_time_, now);
        for (int i = 0; i < burst && can_send(); ++i) {
          send_one();
          // Real stacks never pace exactly: timer slack and scheduler
          // jitter smear packet spacing. Uniform +/-30% keeps the mean
          // rate while making queueing (and hence RTT deviation) grow
          // continuously with utilization instead of cliff-jumping at
          // burst boundaries.
          next_send_time_ += static_cast<TimeNs>(
              static_cast<double>(interval) *
              sim_->rng().uniform(1.0 - pacing_jitter_, 1.0 + pacing_jitter_));
        }
      } else {
        send_one();  // window-only: ACK clocking provides the spacing
      }
    }
  }
  arm_cc_timer();
}

void Sender::send_one() {
  const int64_t bytes =
      unlimited_ ? packet_bytes_ : std::min(packet_bytes_, credit_);
  if (!unlimited_) credit_ -= bytes;

  if (next_seq_ + 1 - base_seq_ > slots_.size()) grow_slots();

  Packet pkt;
  pkt.flow_id = id_;
  pkt.seq = next_seq_++;
  pkt.size_bytes = bytes;
  pkt.sent_time = sim_->now();

  Slot& slot = slots_[pkt.seq & slot_mask_];
  slot.bytes = bytes;
  slot.sent_time = pkt.sent_time;
  slot.active = true;
  ++in_flight_count_;
  bytes_in_flight_ += bytes;
  ++stats_.packets_sent;
  stats_.bytes_sent += bytes;

  SentPacketInfo info;
  info.seq = pkt.seq;
  info.bytes = bytes;
  info.sent_time = pkt.sent_time;
  info.bytes_in_flight = bytes_in_flight_;
  cc_->on_packet_sent(info);

  network_->forward_ingress(id_)->on_packet(pkt);
  arm_loss_sweep();
}

void Sender::schedule_pacer(TimeNs when) {
  if (pacer_scheduled_for_ <= when) return;  // an earlier pacer is armed
  pacer_scheduled_for_ = when;
  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_at(when, [this, alive, when] {
    if (alive.expired()) return;
    if (pacer_scheduled_for_ != when) return;  // superseded
    try_send(/*from_pacer=*/true);
  });
}

void Sender::arm_cc_timer() {
  const TimeNs want = cc_->next_timer();
  if (want == kTimeInfinite) return;
  if (cc_timer_armed_for_ <= want && cc_timer_armed_for_ > sim_->now()) {
    return;  // already armed at or before the requested time
  }
  cc_timer_armed_for_ = std::max(want, sim_->now());
  const LifeTag::Ref alive = alive_.ref();
  const TimeNs armed = cc_timer_armed_for_;
  sim_->schedule_at(armed, [this, alive, armed] {
    if (alive.expired()) return;
    if (cc_timer_armed_for_ != armed) return;  // stale
    cc_timer_armed_for_ = kTimeInfinite;
    cc_->on_timer(sim_->now());
    try_send(false);
  });
}

TimeNs Sender::rto() const {
  const TimeNs base = any_acked_ ? srtt_ : kInitialRttGuess;
  const TimeNs var = any_acked_ ? rttvar_ : kInitialRttGuess / 2;
  return std::max({kMinRto, 2 * base, base + 4 * var});
}

void Sender::arm_loss_sweep() {
  if (loss_sweep_armed_ || in_flight_count_ == 0) return;
  loss_sweep_armed_ = true;
  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_in(std::max<TimeNs>(rto() / 2, from_ms(5)), [this, alive] {
    if (alive.expired()) return;
    loss_sweep_armed_ = false;
    const TimeNs now = sim_->now();
    const TimeNs deadline = rto();
    // Packets are sent in seq order, so sent times are monotone and the
    // timed-out set is always a prefix of the in-flight window. One look
    // at the oldest unacked deadline (base_seq_'s slot) decides whether
    // this tick has any work; expired packets are declared in place, in
    // seq order, without materializing a scratch vector.
    while (in_flight_count_ > 0) {
      const Slot& slot = slots_[base_seq_ & slot_mask_];
      if (now - slot.sent_time <= deadline) break;
      const uint64_t seq = base_seq_;
      const InFlight pkt{slot.bytes, slot.sent_time};
      release_slot(seq);
      declare_lost(seq, pkt);
    }
    if (in_flight_count_ > 0) arm_loss_sweep();
    maybe_fire_all_delivered();
    try_send(false);
  });
}

void Sender::detect_losses_by_threshold() {
  // Packets at least kLossReorderThreshold below the largest ack are lost.
  // base_seq_ is the smallest in-flight seq, so the qualifying packets are
  // exactly the window prefix below the threshold.
  while (in_flight_count_ > 0 &&
         base_seq_ + kLossReorderThreshold <= largest_acked_) {
    const Slot& slot = slots_[base_seq_ & slot_mask_];
    const uint64_t seq = base_seq_;
    const InFlight pkt{slot.bytes, slot.sent_time};
    release_slot(seq);
    declare_lost(seq, pkt);
  }
}

Sender::Slot* Sender::find_slot(uint64_t seq) {
  if (seq < base_seq_ || seq >= next_seq_) return nullptr;
  Slot& slot = slots_[seq & slot_mask_];
  return slot.active ? &slot : nullptr;
}

void Sender::release_slot(uint64_t seq) {
  slots_[seq & slot_mask_].active = false;
  --in_flight_count_;
  advance_base();
}

void Sender::advance_base() {
  while (base_seq_ < next_seq_ && !slots_[base_seq_ & slot_mask_].active) {
    ++base_seq_;
  }
}

void Sender::grow_slots() {
  // Re-layout: the window span outgrew the ring (deep blackout or a huge
  // cwnd), so double capacity and re-place every live seq under the new
  // mask. Called before the next seq is assigned, so [base_seq_,
  // next_seq_) enumerates exactly the slots worth keeping.
  const size_t new_cap = slots_.size() * 2;
  std::vector<Slot> next(new_cap);
  for (uint64_t s = base_seq_; s < next_seq_; ++s) {
    next[s & (new_cap - 1)] = slots_[s & slot_mask_];
  }
  slots_ = std::move(next);
  slot_mask_ = new_cap - 1;
}

void Sender::declare_lost(uint64_t seq, const InFlight& pkt) {
  bytes_in_flight_ -= pkt.bytes;
  ++stats_.packets_lost;
  stats_.bytes_lost += pkt.bytes;
  if (!unlimited_) credit_ += pkt.bytes;  // retransmit-equivalent

  LossInfo info;
  info.seq = seq;
  info.bytes = pkt.bytes;
  info.sent_time = pkt.sent_time;
  info.detected_time = sim_->now();
  info.bytes_in_flight = bytes_in_flight_;
  cc_->on_loss(info);
}

void Sender::update_rtt(TimeNs rtt) {
  min_rtt_ = std::min(min_rtt_, rtt);
  if (!any_acked_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    any_acked_ = true;
  } else {
    const TimeNs err = rtt - srtt_;
    srtt_ += err / 8;
    rttvar_ += (std::abs(err) - rttvar_) / 4;
  }
}

void Sender::on_packet(const Packet& ack) {
  PROTEUS_PROFILE_SCOPE(ProfilePhase::kOnAck);
  Slot* slot = find_slot(ack.acked_seq);
  if (slot == nullptr) return;  // already declared lost (or dup ACK); ignore

  const InFlight pkt{slot->bytes, slot->sent_time};
  release_slot(ack.acked_seq);
  bytes_in_flight_ -= pkt.bytes;
  largest_acked_ = std::max(largest_acked_, ack.acked_seq);

  const TimeNs now = sim_->now();
  const TimeNs rtt = now - pkt.sent_time;
  update_rtt(rtt);

  ++stats_.packets_acked;
  stats_.bytes_delivered += pkt.bytes;

  AckInfo info;
  info.seq = ack.acked_seq;
  info.bytes = pkt.bytes;
  info.sent_time = pkt.sent_time;
  info.ack_time = now;
  info.rtt = rtt;
  info.one_way_delay = ack.receiver_time - pkt.sent_time;
  info.prev_ack_time = last_ack_time_;
  info.bytes_in_flight = bytes_in_flight_;
  last_ack_time_ = now;
  cc_->on_ack(info);
  if (on_ack_) on_ack_(info);

  detect_losses_by_threshold();
  if (on_delivered_) on_delivered_(pkt.bytes, now);
  maybe_fire_all_delivered();
  try_send(false);
}

void Sender::maybe_fire_all_delivered() {
  if (unlimited_ || all_delivered_fired_) return;
  if (credit_ == 0 && in_flight_count_ == 0 && stats_.bytes_delivered > 0) {
    all_delivered_fired_ = true;
    if (on_all_delivered_) on_all_delivered_();
  }
}

}  // namespace proteus
