// Transport receiver endpoint: acknowledges every data packet and stamps
// the receiver clock (one-way-delay support for LEDBAT).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace proteus {

class Network;

class Receiver final : public PacketSink {
 public:
  Receiver(Simulator* sim, Network* network, FlowId id);

  // PacketSink: data packets surviving the bottleneck.
  void on_packet(const Packet& pkt) override;

  int64_t bytes_received() const { return bytes_received_; }
  int64_t packets_received() const { return packets_received_; }
  ThroughputMeter& meter() { return meter_; }
  const ThroughputMeter& meter() const { return meter_; }

  // Optional hook fired per data packet (application streaming).
  void set_on_data(std::function<void(const Packet&, TimeNs)> cb) {
    on_data_ = std::move(cb);
  }

 private:
  Simulator* sim_;
  Network* network_;
  FlowId id_;
  int64_t bytes_received_ = 0;
  int64_t packets_received_ = 0;
  ThroughputMeter meter_;
  std::function<void(const Packet&, TimeNs)> on_data_;
};

}  // namespace proteus
