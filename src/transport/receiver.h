// Transport receiver endpoint: acknowledges every data packet and stamps
// the receiver clock (one-way-delay support for LEDBAT).
#pragma once

#include <cstdint>
#include <functional>

#include "sim/packet.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace proteus {

class Network;

class Receiver final : public PacketSink {
 public:
  Receiver(Simulator* sim, Network* network, FlowId id);

  // PacketSink: data packets surviving the bottleneck.
  void on_packet(const Packet& pkt) override;

  int64_t bytes_received() const { return bytes_received_; }
  int64_t packets_received() const { return packets_received_; }
  ThroughputMeter& meter() { return meter_; }
  const ThroughputMeter& meter() const { return meter_; }

  // Optional hook fired per data packet (application streaming).
  void set_on_data(std::function<void(const Packet&, TimeNs)> cb) {
    on_data_ = std::move(cb);
  }

  // Throughput metering switch. The meter's bin array is indexed by
  // absolute sim time, so a long-lived churn scenario would grow every
  // pooled flow's bins forever; flows nobody queries (churn workload
  // generators) turn it off. Pure observation — never affects packets.
  void set_metering(bool enabled) { meter_enabled_ = enabled; }

  // Pooled-flow support: restore freshly-constructed state for flow `id`
  // (the receiver schedules nothing, so no event expiry is needed).
  void reset_for_reuse(FlowId id) {
    id_ = id;
    bytes_received_ = 0;
    packets_received_ = 0;
    meter_.reset();
    meter_enabled_ = true;
    on_data_ = nullptr;
  }

 private:
  Simulator* sim_;
  Network* network_;
  FlowId id_;
  int64_t bytes_received_ = 0;
  int64_t packets_received_ = 0;
  bool meter_enabled_ = true;
  ThroughputMeter meter_;
  std::function<void(const Packet&, TimeNs)> on_data_;
};

}  // namespace proteus
