// Congestion-controller interface shared by every protocol in the repo
// (Proteus/PCC, CUBIC, BBR, BBR-S, COPA, LEDBAT).
//
// A controller is a passive policy object: the Sender feeds it packet-level
// events and queries a pacing rate and/or congestion window. Rate-based
// protocols (PCC family) return a pacing rate and an unlimited window;
// window-based protocols (CUBIC, LEDBAT) return kNoCwndLimit-free windows
// and zero pacing (ACK-clocked); BBR uses both.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "sim/units.h"

namespace proteus {

class TelemetryRecorder;
class MetricsRegistry;

inline constexpr int64_t kNoCwndLimit = std::numeric_limits<int64_t>::max();

struct SentPacketInfo {
  uint64_t seq = 0;
  int64_t bytes = 0;
  TimeNs sent_time = 0;
  int64_t bytes_in_flight = 0;  // after this send
};

struct AckInfo {
  uint64_t seq = 0;            // sequence of the acked data packet
  int64_t bytes = 0;           // payload bytes acknowledged
  TimeNs sent_time = 0;        // when the data packet left the sender
  TimeNs ack_time = 0;         // now
  TimeNs rtt = 0;              // ack_time - sent_time
  TimeNs one_way_delay = 0;    // receiver_time - sent_time (synced clocks)
  TimeNs prev_ack_time = 0;    // arrival of the previous ACK (0 if first)
  int64_t bytes_in_flight = 0; // after this ack
};

struct LossInfo {
  uint64_t seq = 0;
  int64_t bytes = 0;
  TimeNs sent_time = 0;
  TimeNs detected_time = 0;
  int64_t bytes_in_flight = 0;  // after removing this packet
};

class CongestionController {
 public:
  virtual ~CongestionController() = default;

  // Called once when the flow starts sending.
  virtual void on_start(TimeNs /*now*/) {}
  virtual void on_packet_sent(const SentPacketInfo& /*info*/) {}
  virtual void on_ack(const AckInfo& info) = 0;
  virtual void on_loss(const LossInfo& /*info*/) {}

  // Invoked by the sender when the time returned from next_timer() arrives.
  virtual void on_timer(TimeNs /*now*/) {}
  // Absolute time of the next on_timer() the controller wants, or
  // kTimeInfinite for none. Re-queried after every event.
  virtual TimeNs next_timer() const { return kTimeInfinite; }

  // Pacing rate; a non-positive value means "not paced" (window-only).
  virtual Bandwidth pacing_rate() const = 0;
  // Congestion window in bytes; kNoCwndLimit for rate-only protocols.
  virtual int64_t cwnd_bytes() const = 0;

  virtual std::string name() const = 0;

  // Pooled-flow support: restore the controller to the state a freshly
  // constructed instance (same protocol, same tuning) seeded with `seed`
  // would have, reusing existing storage where possible. Returns false
  // when the controller does not support reuse — the pool then destroys
  // it and constructs a fresh one. Implementations must reproduce the
  // fresh-instance state *exactly* (including RNG streams): flow
  // recycling is required to be byte-identical to fresh construction,
  // which the churn golden-digest suite pins.
  virtual bool reset_for_reuse(uint64_t /*seed*/) { return false; }

  // Storage-sizing hint from FlowConfig::initial_window_slots, forwarded
  // by the Sender before on_start(). Purely a capacity hint: controllers
  // that keep per-in-flight-packet state (BBR's delivery snapshots) size
  // their rings from it instead of a worst-case constant, and grow on
  // demand exactly as before — control decisions are unaffected. At CDN
  // churn scale the difference is ~10 KB/flow of resident set.
  virtual void set_window_slots_hint(int /*slots*/) {}

  // Telemetry attach point. Controllers that expose per-MI decision
  // records (the PCC family) override this; the default ignores it so
  // reference protocols (CUBIC, BBR, ...) need no changes. Passing null
  // detaches. The recorder must outlive the controller or be detached
  // before destruction.
  virtual void set_telemetry(TelemetryRecorder* /*recorder*/) {}
  // Controllers may also dump lifetime counters into a registry at
  // export time (ACK-filter verdicts, watchdog abandons, ...).
  virtual void snapshot_metrics(MetricsRegistry* /*registry*/) const {}
};

}  // namespace proteus
