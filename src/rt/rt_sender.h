// RtSender: the live-UDP counterpart of transport/Sender. Drives an
// unmodified CongestionController (the same object the simulator runs)
// over a real socket: wall-clock pacing, per-packet ACK accounting,
// QUIC-style loss detection, and the robustness layer the live path
// needs — a retried handshake with exponential backoff, heartbeats, and
// a no-ACK watchdog.
//
// Watchdog policy: controllers with built-in ACK-starvation survival
// (the PCC family, PccSender::Config::survival_mode) own the response —
// the driver keeps their on_timer() clock running and merely counts the
// episode. For window/rate controllers with no such machinery (CUBIC,
// BBR, ...) the driver itself parks: normal sending stops and a single
// probe packet goes out per exponentially-backed-off interval until an
// ACK arrives, mirroring the park-at-floor/re-probe shape of the
// controller-level survival mode.
//
// Lifetime: the sender must outlive the loop's run() — scheduled timers
// capture `this`. Single-threaded with its loop.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "rt/chaos.h"
#include "rt/rt_loop.h"
#include "rt/udp_socket.h"
#include "rt/wire.h"
#include "transport/cc_interface.h"

namespace proteus {

struct RtSenderConfig {
  uint64_t seed = 1;
  // Bytes to deliver before finishing; 0 = unlimited (run until
  // `duration` after connect).
  int64_t transfer_bytes = 0;
  TimeNs duration = from_sec(10);
  int64_t packet_bytes = kMtuBytes;

  // Handshake: first retry after handshake_rto, doubling per attempt
  // (capped at handshake_rto_max), giving up after handshake_retries
  // unanswered HELLOs.
  int handshake_retries = 8;
  TimeNs handshake_rto = from_ms(100);
  TimeNs handshake_rto_max = from_sec(2);

  TimeNs heartbeat_period = from_ms(250);

  // No-ACK watchdog: starved when data is in flight and no ACK has
  // arrived for max(starvation_timeout, 4 * srtt).
  TimeNs starvation_timeout = from_ms(250);
  TimeNs probe_backoff_max = from_sec(2);

  // Pacing quantum, as in the simulated Sender: packets within one
  // quantum leave back-to-back.
  TimeNs pacing_quantum = from_us(1500);
};

struct RtSenderStats {
  int64_t packets_sent = 0;
  int64_t bytes_sent = 0;
  int64_t packets_acked = 0;
  int64_t bytes_delivered = 0;
  int64_t packets_lost = 0;
  int64_t bytes_lost = 0;
  int64_t handshake_attempts = 0;
  int64_t heartbeats_sent = 0;
  int64_t starvation_episodes = 0;  // watchdog trips (driver or cc-owned)
  int64_t probe_packets = 0;        // driver-park re-probe sends
  int64_t duplicate_acks = 0;       // ACKs for unknown/already-resolved seqs
  int64_t parse_rejects = 0;        // malformed inbound datagrams
  TimeNs connect_time = 0;          // loop time the handshake completed
  TimeNs finish_time = 0;           // loop time the transfer ended
};

enum class RtSenderState { kIdle, kHandshaking, kRunning, kDone, kFailed };

class RtSender {
 public:
  // `shim` may be null (no impairment). All pointers must outlive the
  // sender; the sender must outlive loop->run().
  RtSender(RtLoop* loop, UdpSocket* socket, ChaosShim* shim,
           std::unique_ptr<CongestionController> cc, RtSenderConfig cfg);
  ~RtSender();

  RtSender(const RtSender&) = delete;
  RtSender& operator=(const RtSender&) = delete;

  // Watches the socket and begins the handshake.
  void start();

  RtSenderState state() const { return state_; }
  bool finished() const {
    return state_ == RtSenderState::kDone || state_ == RtSenderState::kFailed;
  }
  const std::string& error() const { return error_; }
  const RtSenderStats& stats() const { return stats_; }
  CongestionController& cc() { return *cc_; }
  const CongestionController& cc() const { return *cc_; }
  TimeNs smoothed_rtt() const { return srtt_; }
  TimeNs min_rtt() const { return min_rtt_; }
  bool parked() const { return parked_; }

  // Mean delivery rate over the connected window (Mbps); 0 before any
  // delivery.
  double achieved_mbps() const;

 private:
  struct Slot {
    int64_t bytes = 0;
    TimeNs sent_time = 0;
    bool active = false;
  };

  // --- wire I/O ---------------------------------------------------------
  void on_readable();
  void handle_frame(const Frame& f);
  // Runs an egress frame through the chaos shim and the socket; delayed
  // verdicts are re-scheduled on the loop with a private copy.
  void emit(const uint8_t* data, size_t len, bool is_ack);

  // --- handshake --------------------------------------------------------
  void send_hello();
  void on_hello_ack(const HelloFrame& f);

  // --- data path --------------------------------------------------------
  bool can_send_now() const;
  void pump();  // pacing loop, mirrors Sender::try_send
  void send_one(bool probe);
  void on_ack_frame(const AckFrame& f);
  void arm_cc_timer();
  void arm_loss_sweep();
  void loss_sweep();
  void detect_losses_by_threshold();
  void declare_lost(uint64_t seq, const Slot& slot);
  void update_rtt(TimeNs rtt);
  TimeNs rto() const;

  // --- robustness -------------------------------------------------------
  void heartbeat_tick();
  void watchdog_tick();
  TimeNs starvation_deadline() const;
  void finish(RtSenderState end_state, const std::string& why);

  // --- slot ring --------------------------------------------------------
  Slot* find_slot(uint64_t seq);
  void release_slot(uint64_t seq);
  void advance_base();
  void grow_slots();

  RtLoop* loop_;
  UdpSocket* socket_;
  ChaosShim* shim_;
  std::unique_ptr<CongestionController> cc_;
  RtSenderConfig cfg_;
  bool cc_owns_survival_ = false;  // PccSender with survival_mode on

  RtSenderState state_ = RtSenderState::kIdle;
  std::string error_;
  RtSenderStats stats_;

  uint64_t hello_token_ = 0;
  int hello_attempt_ = 0;

  int64_t credit_ = 0;   // remaining bytes to send (transfer mode)
  bool unlimited_ = false;

  uint64_t next_seq_ = 0;
  uint64_t largest_acked_ = 0;
  bool any_acked_ = false;
  std::vector<Slot> slots_;
  size_t slot_mask_ = 0;
  uint64_t base_seq_ = 0;
  int64_t in_flight_count_ = 0;
  int64_t bytes_in_flight_ = 0;

  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  TimeNs min_rtt_ = kTimeInfinite;
  TimeNs last_ack_time_ = 0;
  TimeNs prev_ack_time_ = 0;

  TimeNs next_send_time_ = 0;
  bool pump_armed_ = false;
  TimeNs cc_timer_armed_for_ = kTimeInfinite;
  bool loss_sweep_armed_ = false;

  // Watchdog state.
  bool parked_ = false;
  TimeNs wait_started_ = 0;  // start of the current unacked stretch
  TimeNs probe_backoff_ = 0;
  TimeNs next_probe_at_ = kTimeInfinite;

  TimeNs last_egress_time_ = 0;  // heartbeat suppression

  uint8_t out_buf_[kMaxFrameBytes];
};

}  // namespace proteus
