#include "rt/rt_loop.h"

#include <algorithm>
#include <cerrno>
#include <ctime>
#include <utility>

#include <poll.h>

namespace proteus {

namespace {
// Poll at least this often even with a far-future next timer, so the
// cooperative stopper (SIGINT flag) is honored promptly.
constexpr TimeNs kMaxPollSlice = from_ms(50);
}  // namespace

RtLoop::RtLoop(RtClock clock) : clock_(clock) {}

void RtLoop::schedule_at(TimeNs when, EventQueue::Callback&& cb) {
  // Clamp: the wheel engine requires pushes at/after the latest pop.
  queue_.push(std::max(when, last_fired_), std::move(cb));
}

void RtLoop::schedule_in(TimeNs delay, EventQueue::Callback&& cb) {
  schedule_at(now() + std::max<TimeNs>(delay, 0), std::move(cb));
}

void RtLoop::watch_fd(int fd, std::function<void()> on_readable) {
  for (Watch& w : watches_) {
    if (w.fd == fd) {
      w.on_readable = std::move(on_readable);
      return;
    }
  }
  watches_.push_back({fd, std::move(on_readable)});
}

void RtLoop::set_stopper(std::function<bool()> stopper) {
  stopper_ = std::move(stopper);
}

TimeNs RtLoop::run_due_timers() {
  for (;;) {
    if (queue_.empty()) return kTimeInfinite;
    const TimeNs next = queue_.next_time();
    if (next > now()) return next;
    auto [when, cb] = queue_.pop();
    last_fired_ = std::max(last_fired_, when);
    cb();
    if (stop_) return kTimeInfinite;
  }
}

void RtLoop::run(TimeNs idle_limit) {
  stop_ = false;
  TimeNs last_activity = now();
  std::vector<pollfd> pfds;
  while (!stop_) {
    if (stopper_ && stopper_()) break;

    const TimeNs next_timer = run_due_timers();
    if (stop_) break;
    // Idle = no fd activity (timers don't count: periodic heartbeats are
    // always pending, and a crashed peer must still trip the cutoff).
    if (idle_limit > 0 && now() - last_activity > idle_limit) break;

    // Sleep until the next deadline, the idle cutoff, or the slice cap,
    // whichever is earliest.
    TimeNs wait = kMaxPollSlice;
    if (next_timer != kTimeInfinite) {
      wait = std::min(wait, std::max<TimeNs>(next_timer - now(), 0));
    }
    if (idle_limit > 0) {
      const TimeNs until_idle = last_activity + idle_limit - now();
      wait = std::min(wait, std::max<TimeNs>(until_idle, 0));
    }

    pfds.clear();
    for (const Watch& w : watches_) {
      pfds.push_back({w.fd, POLLIN, 0});
    }
    timespec ts;
    ts.tv_sec = static_cast<time_t>(wait / kNsPerSec);
    ts.tv_nsec = static_cast<long>(wait % kNsPerSec);
    const int n =
        ::ppoll(pfds.empty() ? nullptr : pfds.data(), pfds.size(), &ts,
                nullptr);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal: re-check stopper/timers
      break;                         // unrecoverable poll failure
    }
    if (n > 0) {
      last_activity = now();
      for (size_t i = 0; i < pfds.size() && !stop_; ++i) {
        if ((pfds[i].revents & (POLLIN | POLLERR | POLLHUP)) != 0) {
          // Re-look up by fd: a callback may re-watch and reallocate.
          const int fd = pfds[i].fd;
          for (Watch& w : watches_) {
            if (w.fd == fd && w.on_readable) {
              w.on_readable();
              break;
            }
          }
        }
      }
    }
  }
}

}  // namespace proteus
