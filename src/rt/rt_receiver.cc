#include "rt/rt_receiver.h"

#include <algorithm>

namespace proteus {

namespace {
constexpr size_t kSeenRing = 1024;  // dup-detection window, packets
constexpr TimeNs kIdleTick = from_ms(100);
constexpr uint64_t kNoSeq = ~uint64_t{0};
}  // namespace

RtReceiver::RtReceiver(RtLoop* loop, UdpSocket* socket, ChaosShim* shim,
                       RtReceiverConfig cfg)
    : loop_(loop), socket_(socket), shim_(shim), cfg_(cfg) {
  seen_.assign(kSeenRing, kNoSeq);
}

void RtReceiver::start() {
  last_rx_time_ = loop_->now();
  loop_->watch_fd(socket_->fd(), [this] { on_readable(); });
  if (cfg_.idle_timeout > 0) {
    loop_->schedule_in(kIdleTick, [this] { idle_tick(); });
  }
}

void RtReceiver::emit(const uint8_t* data, size_t len) {
  if (shim_ == nullptr) {
    socket_->send(data, len);
    return;
  }
  const ChaosShim::Verdict v =
      shim_->admit(loop_->now(), static_cast<int64_t>(len), /*is_ack=*/true);
  if (v.drop) return;
  if (v.depart_delay <= 0 && !v.duplicate) {
    socket_->send(data, len);
    return;
  }
  std::vector<uint8_t> copy(data, data + len);
  if (v.duplicate) {
    std::vector<uint8_t> dup = copy;
    loop_->schedule_in(v.depart_delay + v.duplicate_gap,
                       [this, frame = std::move(dup)] {
                         socket_->send(frame.data(), frame.size());
                       });
  }
  if (v.depart_delay <= 0) {
    socket_->send(copy.data(), copy.size());
  } else {
    loop_->schedule_in(v.depart_delay, [this, frame = std::move(copy)] {
      socket_->send(frame.data(), frame.size());
    });
  }
}

void RtReceiver::on_readable() {
  uint8_t buf[kMaxFrameBytes + 64];
  for (;;) {
    const int n = socket_->recv(buf, sizeof buf);
    if (n < 0) break;
    last_rx_time_ = loop_->now();
    Frame f;
    const ParseError err = parse_frame(buf, static_cast<size_t>(n), f);
    if (err != ParseError::kNone) {
      ++stats_.parse_rejects;
      continue;
    }
    handle_frame(f);
  }
}

void RtReceiver::handle_frame(const Frame& f) {
  switch (f.type) {
    case FrameType::kHello: {
      ++stats_.hellos_seen;
      const size_t len = encode_hello_ack(out_buf_, f.hello.token);
      emit(out_buf_, len);
      break;
    }
    case FrameType::kData: {
      const uint64_t seq = expand_seq32(f.data.seq, next_expected_);
      if (recently_seen(seq)) {
        ++stats_.duplicates;
      } else {
        remember(seq);
        ++stats_.data_received;
        stats_.bytes_received += f.data.wire_bytes;
        next_expected_ = std::max(next_expected_, seq + 1);
      }
      AckFrame ack;
      ack.acked_seq = f.data.seq;
      ack.send_ts_echo_ns = f.data.send_ts_ns;
      ack.receiver_ts_ns = static_cast<uint64_t>(loop_->now());
      ack.acked_bytes = static_cast<uint32_t>(f.data.wire_bytes);
      const size_t len = encode_ack(out_buf_, ack);
      emit(out_buf_, len);
      ++stats_.acks_sent;
      break;
    }
    case FrameType::kHeartbeat: {
      ++stats_.heartbeats_seen;
      const size_t len =
          encode_heartbeat(out_buf_, static_cast<uint64_t>(loop_->now()));
      emit(out_buf_, len);
      break;
    }
    case FrameType::kBye: {
      stats_.saw_bye = true;
      if (!done_) {
        done_ = true;
        loop_->schedule_in(cfg_.bye_linger, [this] { loop_->stop(); });
      }
      break;
    }
    case FrameType::kHelloAck:
    case FrameType::kAck:
      ++stats_.parse_rejects;  // role violation: sender-bound frames
      break;
  }
}

void RtReceiver::idle_tick() {
  if (done_) return;
  const TimeNs now = loop_->now();
  if (now - last_rx_time_ >= cfg_.idle_timeout) {
    done_ = true;
    loop_->stop();
    return;
  }
  loop_->schedule_in(kIdleTick, [this] { idle_tick(); });
}

bool RtReceiver::recently_seen(uint64_t seq) const {
  return seen_[seq % kSeenRing] == seq;
}

void RtReceiver::remember(uint64_t seq) { seen_[seq % kSeenRing] = seq; }

}  // namespace proteus
