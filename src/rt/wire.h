// Wire protocol for the live UDP backend: versioned, length-prefixed
// frames carrying the same signals the simulator's Packet struct moves
// (seq, send timestamp, one-way-delay echo).
//
// Layout (all integers little-endian, encoded byte-by-byte — frames are
// never reinterpret_cast so the parser is safe on arbitrary input):
//
//   header (8 bytes, every frame)
//     u16 magic    0x50C5
//     u8  version  kWireVersion
//     u8  type     FrameType
//     u16 length   payload bytes after the header
//     u16 reserved must be zero (room for flags; rejected when set so a
//                  future version can use them without ambiguity)
//
//   HELLO / HELLO_ACK payload (8 bytes): u64 token — connection cookie,
//     echoed verbatim so a sender can match the reply to its attempt.
//   DATA payload (12 + pad bytes): u32 seq, u64 send_ts_ns, then `pad`
//     opaque bytes so the datagram's wire size equals the emulated packet
//     size (rate emulation charges real bytes).
//   ACK payload (24 bytes): u32 acked_seq, u64 send_ts_echo_ns,
//     u64 receiver_ts_ns, u32 acked_bytes.
//   HEARTBEAT payload (8 bytes): u64 ts_ns.
//   BYE payload (0 bytes).
//
// Sequence numbers travel as 32 bits and are expanded to 64 bits against
// the receiver's window (expand_seq32), QUIC-packet-number style, so a
// long transfer survives the 2^32 wrap without trusting the peer.
//
// The parser is strict: anything that is not an exactly-sized, current-
// version frame of a known type is rejected with a reason — truncated
// input, trailing bytes, bad magic, foreign version, nonzero reserved
// bits. Rejection is the *only* failure mode; no input may reach
// undefined behavior (pinned by the fuzz tests under ASan/UBSan).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/units.h"

namespace proteus {

inline constexpr uint16_t kWireMagic = 0x50C5;
inline constexpr uint8_t kWireVersion = 1;
inline constexpr size_t kWireHeaderBytes = 8;
// Largest frame we will emit or accept: one MTU of emulated packet plus
// the header. Anything longer is rejected before parsing.
inline constexpr size_t kMaxFrameBytes = kWireHeaderBytes + 12 + kMtuBytes;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kData = 3,
  kAck = 4,
  kHeartbeat = 5,
  kBye = 6,
};

struct HelloFrame {
  uint64_t token = 0;
};

struct DataFrame {
  uint32_t seq = 0;
  uint64_t send_ts_ns = 0;
  // Wire size of the whole datagram (header + payload); the emulated
  // packet size. Filled by the parser from the actual frame length.
  int64_t wire_bytes = 0;
};

struct AckFrame {
  uint32_t acked_seq = 0;
  uint64_t send_ts_echo_ns = 0;
  uint64_t receiver_ts_ns = 0;
  uint32_t acked_bytes = 0;
};

struct HeartbeatFrame {
  uint64_t ts_ns = 0;
};

// One parsed frame. `type` selects the active member; the others are
// value-initialized.
struct Frame {
  FrameType type = FrameType::kHello;
  HelloFrame hello;
  DataFrame data;
  AckFrame ack;
  HeartbeatFrame heartbeat;
};

enum class ParseError {
  kNone = 0,
  kTooShort,        // shorter than the fixed header
  kTooLong,         // longer than kMaxFrameBytes
  kBadMagic,
  kBadVersion,      // foreign protocol version
  kBadType,         // unknown FrameType
  kReservedBits,    // nonzero reserved header field
  kLengthMismatch,  // declared length != datagram bytes after the header
  kBadPayload,      // payload shorter/longer than the type requires
};

const char* parse_error_name(ParseError e);

// Strict parse of one datagram. Returns kNone and fills `out` on success.
ParseError parse_frame(const uint8_t* data, size_t len, Frame& out);

// Encoders: write one frame into `buf` (capacity >= kMaxFrameBytes) and
// return its wire length. encode_data pads the payload so the datagram
// totals `wire_bytes` (clamped to [header+12, kMaxFrameBytes]).
size_t encode_hello(uint8_t* buf, uint64_t token);
size_t encode_hello_ack(uint8_t* buf, uint64_t token);
size_t encode_data(uint8_t* buf, uint32_t seq, uint64_t send_ts_ns,
                   int64_t wire_bytes);
size_t encode_ack(uint8_t* buf, const AckFrame& ack);
size_t encode_heartbeat(uint8_t* buf, uint64_t ts_ns);
size_t encode_bye(uint8_t* buf);

// Expands a 32-bit wire sequence number to 64 bits, choosing the value
// closest to `next_expected` (typically largest seen + 1) among the
// candidates equal to `wire` mod 2^32. Never returns a negative-epoch
// value: candidates below zero epoch clamp to the low epoch.
uint64_t expand_seq32(uint32_t wire, uint64_t next_expected);

}  // namespace proteus
