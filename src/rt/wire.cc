#include "rt/wire.h"

#include <algorithm>

namespace proteus {

namespace {

// Byte-level little-endian accessors. memcpy-free on purpose: the loads
// build the value from individual bytes so alignment and aliasing are
// non-issues on any input buffer.
void put_u16(uint8_t* p, uint16_t v) {
  p[0] = static_cast<uint8_t>(v);
  p[1] = static_cast<uint8_t>(v >> 8);
}
void put_u32(uint8_t* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
void put_u64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<uint8_t>(v >> (8 * i));
}
uint16_t get_u16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}
uint32_t get_u32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}
uint64_t get_u64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

size_t encode_header(uint8_t* buf, FrameType type, size_t payload_len) {
  put_u16(buf, kWireMagic);
  buf[2] = kWireVersion;
  buf[3] = static_cast<uint8_t>(type);
  put_u16(buf + 4, static_cast<uint16_t>(payload_len));
  put_u16(buf + 6, 0);  // reserved
  return kWireHeaderBytes;
}

}  // namespace

const char* parse_error_name(ParseError e) {
  switch (e) {
    case ParseError::kNone: return "none";
    case ParseError::kTooShort: return "too-short";
    case ParseError::kTooLong: return "too-long";
    case ParseError::kBadMagic: return "bad-magic";
    case ParseError::kBadVersion: return "bad-version";
    case ParseError::kBadType: return "bad-type";
    case ParseError::kReservedBits: return "reserved-bits";
    case ParseError::kLengthMismatch: return "length-mismatch";
    case ParseError::kBadPayload: return "bad-payload";
  }
  return "unknown";
}

ParseError parse_frame(const uint8_t* data, size_t len, Frame& out) {
  if (len < kWireHeaderBytes) return ParseError::kTooShort;
  if (len > kMaxFrameBytes) return ParseError::kTooLong;
  if (get_u16(data) != kWireMagic) return ParseError::kBadMagic;
  if (data[2] != kWireVersion) return ParseError::kBadVersion;
  const uint8_t raw_type = data[3];
  if (raw_type < static_cast<uint8_t>(FrameType::kHello) ||
      raw_type > static_cast<uint8_t>(FrameType::kBye)) {
    return ParseError::kBadType;
  }
  const size_t declared = get_u16(data + 4);
  if (get_u16(data + 6) != 0) return ParseError::kReservedBits;
  // The length prefix must agree exactly with the datagram: shorter means
  // truncation in flight, longer means trailing garbage. Both rejected.
  if (declared != len - kWireHeaderBytes) return ParseError::kLengthMismatch;

  const FrameType type = static_cast<FrameType>(raw_type);
  const uint8_t* payload = data + kWireHeaderBytes;

  out = Frame{};
  out.type = type;
  switch (type) {
    case FrameType::kHello:
    case FrameType::kHelloAck:
      if (declared != 8) return ParseError::kBadPayload;
      out.hello.token = get_u64(payload);
      return ParseError::kNone;
    case FrameType::kData:
      if (declared < 12) return ParseError::kBadPayload;
      out.data.seq = get_u32(payload);
      out.data.send_ts_ns = get_u64(payload + 4);
      out.data.wire_bytes = static_cast<int64_t>(len);
      return ParseError::kNone;
    case FrameType::kAck:
      if (declared != 24) return ParseError::kBadPayload;
      out.ack.acked_seq = get_u32(payload);
      out.ack.send_ts_echo_ns = get_u64(payload + 4);
      out.ack.receiver_ts_ns = get_u64(payload + 12);
      out.ack.acked_bytes = get_u32(payload + 20);
      return ParseError::kNone;
    case FrameType::kHeartbeat:
      if (declared != 8) return ParseError::kBadPayload;
      out.heartbeat.ts_ns = get_u64(payload);
      return ParseError::kNone;
    case FrameType::kBye:
      if (declared != 0) return ParseError::kBadPayload;
      return ParseError::kNone;
  }
  return ParseError::kBadType;
}

size_t encode_hello(uint8_t* buf, uint64_t token) {
  size_t n = encode_header(buf, FrameType::kHello, 8);
  put_u64(buf + n, token);
  return n + 8;
}

size_t encode_hello_ack(uint8_t* buf, uint64_t token) {
  size_t n = encode_header(buf, FrameType::kHelloAck, 8);
  put_u64(buf + n, token);
  return n + 8;
}

size_t encode_data(uint8_t* buf, uint32_t seq, uint64_t send_ts_ns,
                   int64_t wire_bytes) {
  const size_t min_total = kWireHeaderBytes + 12;
  size_t total = static_cast<size_t>(
      std::clamp<int64_t>(wire_bytes, static_cast<int64_t>(min_total),
                          static_cast<int64_t>(kMaxFrameBytes)));
  const size_t payload = total - kWireHeaderBytes;
  size_t n = encode_header(buf, FrameType::kData, payload);
  put_u32(buf + n, seq);
  put_u64(buf + n + 4, send_ts_ns);
  // Padding bytes up to the emulated packet size. Zeroed: deterministic
  // frames make captures diffable.
  std::fill(buf + n + 12, buf + total, uint8_t{0});
  return total;
}

size_t encode_ack(uint8_t* buf, const AckFrame& ack) {
  size_t n = encode_header(buf, FrameType::kAck, 24);
  put_u32(buf + n, ack.acked_seq);
  put_u64(buf + n + 4, ack.send_ts_echo_ns);
  put_u64(buf + n + 12, ack.receiver_ts_ns);
  put_u32(buf + n + 20, ack.acked_bytes);
  return n + 24;
}

size_t encode_heartbeat(uint8_t* buf, uint64_t ts_ns) {
  size_t n = encode_header(buf, FrameType::kHeartbeat, 8);
  put_u64(buf + n, ts_ns);
  return n + 8;
}

size_t encode_bye(uint8_t* buf) { return encode_header(buf, FrameType::kBye, 0); }

uint64_t expand_seq32(uint32_t wire, uint64_t next_expected) {
  constexpr uint64_t kEpoch = uint64_t{1} << 32;
  const uint64_t base = next_expected & ~(kEpoch - 1);
  const uint64_t candidate = base | wire;
  // Pick the representative of `wire`'s residue class nearest to
  // next_expected: candidate, one epoch down, or one epoch up.
  uint64_t best = candidate;
  auto dist = [&](uint64_t v) {
    return v > next_expected ? v - next_expected : next_expected - v;
  };
  if (candidate >= kEpoch && dist(candidate - kEpoch) < dist(best)) {
    best = candidate - kEpoch;
  }
  if (candidate <= ~kEpoch && dist(candidate + kEpoch) < dist(best)) {
    best = candidate + kEpoch;
  }
  return best;
}

}  // namespace proteus
