// Live-run harnesses for the UDP backend.
//
// run_live_loopback() is the CI workhorse: sender and receiver as two
// RtLoop threads in one process, sockets bound to 127.0.0.1 ephemeral
// ports, sharing one RtClock epoch (so one-way-delay echoes are directly
// comparable). The chaos shim sits on each endpoint's egress: the full
// config (rate emulation included) impairs the data path; the ACK path
// gets the same drops/delay/fault windows but no bottleneck emulation —
// matching the simulator's dumbbell, whose reverse path is unbottlenecked.
//
// run_live_sender()/run_live_receiver() are the two-process equivalents
// behind `tools/proteus_live --role=send|recv`; each drives one endpoint
// on the caller's thread until the transfer (or peer) finishes, the idle
// timeout fires, or the process-wide interrupt flag is raised.
//
// Telemetry: when `telemetry_dir` is set, a TelemetryRecorder is attached
// to the controller for the duration of the run and exported afterwards
// (JSONL only when the controller produced MI records — reference
// protocols like CUBIC/BBR have none — plus a metrics CSV that always
// carries the driver/socket/chaos counters). Exports flush on interrupt
// too: SIGINT mid-transfer still lands the telemetry on disk.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rt/chaos.h"
#include "rt/rt_receiver.h"
#include "rt/rt_sender.h"
#include "sim/units.h"

namespace proteus {

struct LiveRunConfig {
  std::string cc = "proteus-s";
  uint64_t seed = 1;
  // 0 = run for `duration` instead of a byte target.
  int64_t transfer_bytes = 4 * 1024 * 1024;
  TimeNs duration = from_sec(10);
  ChaosConfig chaos;           // egress impairment (inactive by default)
  std::string telemetry_dir;   // empty = no telemetry export
  std::string run_label = "live";
  RtSenderConfig sender;       // seed/transfer/duration fields overridden
  TimeNs recv_idle_timeout = from_sec(5);
  // Cooperative stop predicate polled by both loops; defaults to the
  // process-wide interrupt flag (harness/supervisor.h).
  std::function<bool()> stopper;
};

struct LiveRunResult {
  bool ok = false;
  std::string error;
  bool interrupted = false;     // a stopper ended the run early

  RtSenderState sender_state = RtSenderState::kIdle;
  RtSenderStats sender;
  RtReceiverStats receiver;     // loopback + receiver-role runs only
  ChaosStats data_chaos;        // sender-egress shim
  ChaosStats ack_chaos;         // receiver-egress shim
  UdpSocketStats sender_socket;
  UdpSocketStats receiver_socket;

  double achieved_mbps = 0.0;
  TimeNs smoothed_rtt = 0;
  TimeNs min_rtt = 0;

  // Survival introspection: controller-owned entries for the PCC family,
  // driver watchdog episodes/probes for the rest.
  bool cc_owns_survival = false;
  uint64_t survival_entries = 0;
  int64_t starvation_episodes = 0;
  int64_t probe_packets = 0;

  std::string telemetry_jsonl;   // written paths ("" = not written)
  std::string telemetry_metrics;
};

// The ACK-path variant of a chaos config: same drops/delay/fault windows,
// no bottleneck emulation (rate_mbps = 0).
ChaosConfig ack_path_chaos(const ChaosConfig& cfg);

// Two threads, one process, shared clock epoch.
LiveRunResult run_live_loopback(const LiveRunConfig& cfg);

// Sender endpoint for two-process mode: binds an ephemeral local port,
// connects to peer_host:peer_port, runs on the calling thread.
LiveRunResult run_live_sender(const LiveRunConfig& cfg,
                              const std::string& peer_host,
                              uint16_t peer_port);

// Receiver endpoint for two-process mode: binds bind_host:bind_port and
// serves one transfer (finishes on BYE or idle timeout).
LiveRunResult run_live_receiver(const LiveRunConfig& cfg,
                                const std::string& bind_host,
                                uint16_t bind_port);

// One-paragraph human summary of a result (for the CLI).
std::string summarize_live_run(const LiveRunResult& r);

}  // namespace proteus
