#include "rt/rt_sender.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "core/pcc_sender.h"

namespace proteus {

namespace {
constexpr int kLossReorderThreshold = 3;  // QUIC-style packet threshold
constexpr TimeNs kMinRto = from_ms(25);
constexpr TimeNs kInitialRttGuess = from_ms(100);
constexpr TimeNs kWatchdogPeriod = from_ms(50);
constexpr int kByeRepeat = 3;
constexpr TimeNs kByeSpacing = from_ms(20);
}  // namespace

RtSender::RtSender(RtLoop* loop, UdpSocket* socket, ChaosShim* shim,
                   std::unique_ptr<CongestionController> cc,
                   RtSenderConfig cfg)
    : loop_(loop),
      socket_(socket),
      shim_(shim),
      cc_(std::move(cc)),
      cfg_(cfg) {
  slots_.resize(256);
  slot_mask_ = slots_.size() - 1;
  // Token mixes the seed so two concurrent transfers don't confuse each
  // other's handshakes on a reused port.
  hello_token_ = cfg_.seed * 0x9e3779b97f4a7c15ULL + 0x5eed;
  if (const auto* pcc = dynamic_cast<const PccSender*>(cc_.get())) {
    cc_owns_survival_ = pcc->config().survival_mode;
  }
  unlimited_ = cfg_.transfer_bytes <= 0;
  credit_ = cfg_.transfer_bytes;
}

RtSender::~RtSender() = default;

void RtSender::start() {
  if (state_ != RtSenderState::kIdle) return;
  state_ = RtSenderState::kHandshaking;
  loop_->watch_fd(socket_->fd(), [this] { on_readable(); });
  send_hello();
}

double RtSender::achieved_mbps() const {
  if (stats_.bytes_delivered <= 0) return 0.0;
  const TimeNs end =
      stats_.finish_time > 0 ? stats_.finish_time : last_ack_time_;
  const TimeNs window = end - stats_.connect_time;
  if (window <= 0) return 0.0;
  return static_cast<double>(stats_.bytes_delivered) * 8.0 / to_sec(window) /
         1e6;
}

// --- wire I/O -----------------------------------------------------------

void RtSender::emit(const uint8_t* data, size_t len, bool is_ack) {
  last_egress_time_ = loop_->now();
  if (shim_ == nullptr) {
    socket_->send(data, len);
    return;
  }
  const ChaosShim::Verdict v =
      shim_->admit(loop_->now(), static_cast<int64_t>(len), is_ack);
  if (v.drop) return;
  if (v.depart_delay <= 0 && !v.duplicate) {
    socket_->send(data, len);
    return;
  }
  std::vector<uint8_t> copy(data, data + len);
  if (v.duplicate) {
    std::vector<uint8_t> dup = copy;
    loop_->schedule_in(v.depart_delay + v.duplicate_gap,
                       [this, frame = std::move(dup)] {
                         socket_->send(frame.data(), frame.size());
                       });
  }
  if (v.depart_delay <= 0) {
    socket_->send(copy.data(), copy.size());
  } else {
    loop_->schedule_in(v.depart_delay, [this, frame = std::move(copy)] {
      socket_->send(frame.data(), frame.size());
    });
  }
}

void RtSender::on_readable() {
  uint8_t buf[kMaxFrameBytes + 64];
  for (;;) {
    const int n = socket_->recv(buf, sizeof buf);
    if (n < 0) break;
    Frame f;
    const ParseError err = parse_frame(buf, static_cast<size_t>(n), f);
    if (err != ParseError::kNone) {
      ++stats_.parse_rejects;
      continue;
    }
    handle_frame(f);
    if (finished()) break;
  }
}

void RtSender::handle_frame(const Frame& f) {
  switch (f.type) {
    case FrameType::kHelloAck:
      on_hello_ack(f.hello);
      break;
    case FrameType::kAck:
      if (state_ == RtSenderState::kRunning) on_ack_frame(f.ack);
      break;
    case FrameType::kHeartbeat:
      break;  // peer liveness; nothing to update beyond poll activity
    case FrameType::kBye:
      if (state_ == RtSenderState::kRunning) {
        finish(RtSenderState::kDone, "peer closed");
      }
      break;
    case FrameType::kHello:
    case FrameType::kData:
      ++stats_.parse_rejects;  // role violation: we never expect these
      break;
  }
}

// --- handshake ----------------------------------------------------------

void RtSender::send_hello() {
  if (state_ != RtSenderState::kHandshaking) return;
  if (hello_attempt_ > cfg_.handshake_retries) {
    finish(RtSenderState::kFailed, "handshake: no HELLO_ACK after " +
                                       std::to_string(hello_attempt_) +
                                       " attempts");
    return;
  }
  ++stats_.handshake_attempts;
  const size_t len = encode_hello(out_buf_, hello_token_);
  emit(out_buf_, len, /*is_ack=*/false);
  // Exponential backoff: 1x, 2x, 4x ... capped.
  TimeNs delay = cfg_.handshake_rto;
  for (int i = 0; i < hello_attempt_ && delay < cfg_.handshake_rto_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, cfg_.handshake_rto_max);
  ++hello_attempt_;
  const int attempt = hello_attempt_;
  loop_->schedule_in(delay, [this, attempt] {
    // Stale once a newer HELLO went out or the handshake resolved.
    if (state_ == RtSenderState::kHandshaking && hello_attempt_ == attempt) {
      send_hello();
    }
  });
}

void RtSender::on_hello_ack(const HelloFrame& f) {
  if (state_ != RtSenderState::kHandshaking) return;
  if (f.token != hello_token_) return;  // someone else's handshake
  state_ = RtSenderState::kRunning;
  const TimeNs now = loop_->now();
  stats_.connect_time = now;
  next_send_time_ = now;
  wait_started_ = now;
  cc_->on_start(now);
  arm_cc_timer();
  loop_->schedule_in(cfg_.heartbeat_period, [this] { heartbeat_tick(); });
  loop_->schedule_in(kWatchdogPeriod, [this] { watchdog_tick(); });
  loop_->schedule_at(now + cfg_.duration, [this] {
    if (state_ == RtSenderState::kRunning) {
      finish(RtSenderState::kDone, "duration reached");
    }
  });
  pump();
}

// --- data path ----------------------------------------------------------

bool RtSender::can_send_now() const {
  if (state_ != RtSenderState::kRunning || parked_) return false;
  if (!unlimited_ && credit_ <= 0) return false;
  const int64_t next_bytes =
      unlimited_ ? cfg_.packet_bytes : std::min(cfg_.packet_bytes, credit_);
  const int64_t cwnd = cc_->cwnd_bytes();
  if (cwnd != kNoCwndLimit && bytes_in_flight_ + next_bytes > cwnd) {
    return false;
  }
  return true;
}

void RtSender::pump() {
  pump_armed_ = false;
  TimeNs now = loop_->now();
  while (can_send_now()) {
    const Bandwidth pace = cc_->pacing_rate();
    if (pace.positive()) {
      if (next_send_time_ > now) {
        if (!pump_armed_) {
          pump_armed_ = true;
          loop_->schedule_at(next_send_time_, [this] { pump(); });
        }
        break;
      }
      const TimeNs interval = pace.tx_time(cfg_.packet_bytes);
      int burst = 1;
      if (interval > 0 && cfg_.pacing_quantum > interval) {
        burst = static_cast<int>(cfg_.pacing_quantum / interval);
      }
      next_send_time_ = std::max(next_send_time_, now);
      for (int i = 0; i < burst && can_send_now(); ++i) {
        send_one(/*probe=*/false);
        next_send_time_ += interval;
      }
      now = loop_->now();
    } else {
      send_one(/*probe=*/false);  // window-only: ACK clocking paces
    }
  }
  arm_cc_timer();
}

void RtSender::send_one(bool probe) {
  const int64_t bytes =
      unlimited_ ? cfg_.packet_bytes : std::min(cfg_.packet_bytes, credit_);
  if (!unlimited_) credit_ -= bytes;

  if (next_seq_ + 1 - base_seq_ > slots_.size()) grow_slots();

  const TimeNs now = loop_->now();
  const uint64_t seq = next_seq_++;
  Slot& slot = slots_[seq & slot_mask_];
  slot.bytes = bytes;
  slot.sent_time = now;
  slot.active = true;
  // Deliberately NOT resetting wait_started_ here: during a blackout the
  // RTO sweep drains in-flight and pump() refills it immediately, so a
  // "restart the drought clock when in-flight leaves zero" rule would cap
  // the observable drought at one RTO and the watchdog would never fire.
  // This sender is never app-limited (backlogged until done), so a
  // waiting window only legitimately ends with an ACK — which is where
  // wait_started_ advances.
  ++in_flight_count_;
  bytes_in_flight_ += bytes;
  ++stats_.packets_sent;
  stats_.bytes_sent += bytes;
  if (probe) ++stats_.probe_packets;

  SentPacketInfo info;
  info.seq = seq;
  info.bytes = bytes;
  info.sent_time = now;
  info.bytes_in_flight = bytes_in_flight_;
  cc_->on_packet_sent(info);

  const size_t len =
      encode_data(out_buf_, static_cast<uint32_t>(seq),
                  static_cast<uint64_t>(now), bytes);
  emit(out_buf_, len, /*is_ack=*/false);
  arm_loss_sweep();
}

void RtSender::on_ack_frame(const AckFrame& f) {
  const uint64_t seq = expand_seq32(f.acked_seq, next_seq_);
  Slot* slot = find_slot(seq);
  if (slot == nullptr) {
    ++stats_.duplicate_acks;  // dup, stale, or already declared lost
    return;
  }
  const Slot pkt = *slot;
  release_slot(seq);
  bytes_in_flight_ -= pkt.bytes;
  largest_acked_ = std::max(largest_acked_, seq);

  const TimeNs now = loop_->now();
  const TimeNs rtt = std::max<TimeNs>(now - pkt.sent_time, 1);
  update_rtt(rtt);

  ++stats_.packets_acked;
  stats_.bytes_delivered += pkt.bytes;

  AckInfo info;
  info.seq = seq;
  info.bytes = pkt.bytes;
  info.sent_time = pkt.sent_time;
  info.ack_time = now;
  info.rtt = rtt;
  // One-way delay from the receiver's clock echo. Only meaningful when
  // both endpoints share a clock epoch (the in-process loopback); a
  // cross-host run has an unknown offset, so implausible values fall
  // back to rtt/2.
  const int64_t owd =
      static_cast<int64_t>(f.receiver_ts_ns) - pkt.sent_time;
  info.one_way_delay = (owd > 0 && owd <= rtt) ? owd : rtt / 2;
  info.prev_ack_time = prev_ack_time_;
  info.bytes_in_flight = bytes_in_flight_;
  prev_ack_time_ = now;
  last_ack_time_ = now;
  wait_started_ = now;
  if (parked_) {
    parked_ = false;  // path is back; resume normal sending
    probe_backoff_ = 0;
    next_probe_at_ = kTimeInfinite;
  }
  cc_->on_ack(info);

  detect_losses_by_threshold();
  if (!unlimited_ && credit_ == 0 && in_flight_count_ == 0 &&
      state_ == RtSenderState::kRunning) {
    finish(RtSenderState::kDone, "all bytes delivered");
    return;
  }
  pump();
}

void RtSender::arm_cc_timer() {
  const TimeNs want = cc_->next_timer();
  if (want == kTimeInfinite) return;
  const TimeNs now = loop_->now();
  if (cc_timer_armed_for_ <= want && cc_timer_armed_for_ > now) return;
  cc_timer_armed_for_ = std::max(want, now);
  const TimeNs armed = cc_timer_armed_for_;
  loop_->schedule_at(armed, [this, armed] {
    if (cc_timer_armed_for_ != armed) return;  // superseded
    cc_timer_armed_for_ = kTimeInfinite;
    if (finished()) return;
    cc_->on_timer(loop_->now());
    pump();
  });
}

TimeNs RtSender::rto() const {
  const TimeNs base = any_acked_ ? srtt_ : kInitialRttGuess;
  const TimeNs var = any_acked_ ? rttvar_ : kInitialRttGuess / 2;
  return std::max({kMinRto, 2 * base, base + 4 * var});
}

void RtSender::arm_loss_sweep() {
  if (loss_sweep_armed_ || in_flight_count_ == 0 || finished()) return;
  loss_sweep_armed_ = true;
  loop_->schedule_in(std::max<TimeNs>(rto() / 2, from_ms(5)),
                     [this] { loss_sweep(); });
}

void RtSender::loss_sweep() {
  loss_sweep_armed_ = false;
  if (finished()) return;
  const TimeNs now = loop_->now();
  const TimeNs deadline = rto();
  while (in_flight_count_ > 0) {
    const Slot& slot = slots_[base_seq_ & slot_mask_];
    if (now - slot.sent_time <= deadline) break;
    const uint64_t seq = base_seq_;
    const Slot pkt = slot;
    release_slot(seq);
    declare_lost(seq, pkt);
  }
  if (in_flight_count_ > 0) arm_loss_sweep();
  if (!unlimited_ && credit_ == 0 && in_flight_count_ == 0 &&
      stats_.bytes_delivered > 0 && state_ == RtSenderState::kRunning) {
    finish(RtSenderState::kDone, "all bytes delivered");
    return;
  }
  pump();
}

void RtSender::detect_losses_by_threshold() {
  while (in_flight_count_ > 0 &&
         base_seq_ + kLossReorderThreshold <= largest_acked_) {
    const Slot pkt = slots_[base_seq_ & slot_mask_];
    const uint64_t seq = base_seq_;
    release_slot(seq);
    declare_lost(seq, pkt);
  }
}

void RtSender::declare_lost(uint64_t seq, const Slot& slot) {
  bytes_in_flight_ -= slot.bytes;
  ++stats_.packets_lost;
  stats_.bytes_lost += slot.bytes;
  if (!unlimited_) credit_ += slot.bytes;  // retransmit-equivalent

  LossInfo info;
  info.seq = seq;
  info.bytes = slot.bytes;
  info.sent_time = slot.sent_time;
  info.detected_time = loop_->now();
  info.bytes_in_flight = bytes_in_flight_;
  cc_->on_loss(info);
}

void RtSender::update_rtt(TimeNs rtt) {
  min_rtt_ = std::min(min_rtt_, rtt);
  if (!any_acked_) {
    srtt_ = rtt;
    rttvar_ = rtt / 2;
    any_acked_ = true;
  } else {
    const TimeNs err = rtt - srtt_;
    srtt_ += err / 8;
    rttvar_ += (std::abs(err) - rttvar_) / 4;
  }
}

// --- robustness ---------------------------------------------------------

void RtSender::heartbeat_tick() {
  if (finished()) return;
  const TimeNs now = loop_->now();
  if (now - last_egress_time_ >= cfg_.heartbeat_period / 2) {
    const size_t len =
        encode_heartbeat(out_buf_, static_cast<uint64_t>(now));
    emit(out_buf_, len, /*is_ack=*/false);
    ++stats_.heartbeats_sent;
  }
  loop_->schedule_in(cfg_.heartbeat_period, [this] { heartbeat_tick(); });
}

TimeNs RtSender::starvation_deadline() const {
  const TimeNs scaled = any_acked_ ? 4 * srtt_ : 0;
  return std::max(cfg_.starvation_timeout, scaled);
}

void RtSender::watchdog_tick() {
  if (finished()) return;
  const TimeNs now = loop_->now();
  const bool waiting = in_flight_count_ > 0;
  const TimeNs drought = now - std::max(last_ack_time_, wait_started_);
  if (waiting && !parked_ && drought > starvation_deadline()) {
    ++stats_.starvation_episodes;
    if (!cc_owns_survival_) {
      // Driver-level survival: park and re-probe with backoff. PCC-family
      // controllers run their own version of exactly this; parking on top
      // of it would fight their floor-rate pacing.
      parked_ = true;
      probe_backoff_ = starvation_deadline();
      next_probe_at_ = now;  // first probe immediately
    } else {
      // The controller owns the response; re-arm so we count distinct
      // episodes rather than every tick of one long drought.
      wait_started_ = now;
    }
  }
  if (parked_ && now >= next_probe_at_) {
    if (unlimited_ || credit_ > 0) send_one(/*probe=*/true);
    probe_backoff_ = std::min(probe_backoff_ * 2, cfg_.probe_backoff_max);
    next_probe_at_ = now + probe_backoff_;
  }
  loop_->schedule_in(kWatchdogPeriod, [this] { watchdog_tick(); });
}

void RtSender::finish(RtSenderState end_state, const std::string& why) {
  if (finished()) return;
  state_ = end_state;
  error_ = end_state == RtSenderState::kFailed ? why : "";
  stats_.finish_time = loop_->now();
  if (end_state == RtSenderState::kDone) {
    // Tell the peer we're done; repeated because BYE rides the same lossy
    // shim as everything else. The receiver also has an idle timeout, so
    // losing all three is slow, not fatal.
    for (int i = 0; i < kByeRepeat; ++i) {
      loop_->schedule_in(i * kByeSpacing, [this] {
        const size_t len = encode_bye(out_buf_);
        emit(out_buf_, len, /*is_ack=*/false);
      });
    }
  }
  // Leave time for the BYEs (and any shim-delayed frames) to drain.
  loop_->schedule_in(kByeRepeat * kByeSpacing + from_ms(50),
                     [this] { loop_->stop(); });
}

// --- slot ring ----------------------------------------------------------

RtSender::Slot* RtSender::find_slot(uint64_t seq) {
  if (seq < base_seq_ || seq >= next_seq_) return nullptr;
  Slot& slot = slots_[seq & slot_mask_];
  return slot.active ? &slot : nullptr;
}

void RtSender::release_slot(uint64_t seq) {
  slots_[seq & slot_mask_].active = false;
  --in_flight_count_;
  advance_base();
}

void RtSender::advance_base() {
  while (base_seq_ < next_seq_ && !slots_[base_seq_ & slot_mask_].active) {
    ++base_seq_;
  }
}

void RtSender::grow_slots() {
  const size_t new_cap = slots_.size() * 2;
  std::vector<Slot> next(new_cap);
  for (uint64_t s = base_seq_; s < next_seq_; ++s) {
    next[s & (new_cap - 1)] = slots_[s & slot_mask_];
  }
  slots_ = std::move(next);
  slot_mask_ = new_cap - 1;
}

}  // namespace proteus
