#include "rt/udp_socket.h"

#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace proteus {

namespace {

bool make_addr(const std::string& host, uint16_t port, sockaddr_in& out,
               std::string& error) {
  std::memset(&out, 0, sizeof out);
  out.sin_family = AF_INET;
  out.sin_port = htons(port);
  if (host.empty() || host == "*") {
    out.sin_addr.s_addr = htonl(INADDR_ANY);
    return true;
  }
  if (::inet_pton(AF_INET, host.c_str(), &out.sin_addr) != 1) {
    error = "bad IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

UdpSocket::~UdpSocket() { close(); }

bool UdpSocket::fail(const std::string& what) {
  error_ = what + ": " + std::strerror(errno);
  close();
  return false;
}

bool UdpSocket::open(const std::string& host, uint16_t port) {
  close();
  error_.clear();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) return fail("socket");
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK) < 0) {
    return fail("fcntl O_NONBLOCK");
  }
  sockaddr_in addr;
  if (!make_addr(host, port, addr, error_)) {
    close();
    return false;
  }
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    return fail("bind");
  }
  sockaddr_in bound;
  socklen_t len = sizeof bound;
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    return fail("getsockname");
  }
  local_port_ = ntohs(bound.sin_port);
  return true;
}

bool UdpSocket::connect_peer(const std::string& host, uint16_t port) {
  if (fd_ < 0) {
    error_ = "connect_peer on a closed socket";
    return false;
  }
  sockaddr_in addr;
  if (!make_addr(host, port, addr, error_)) return false;
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
      0) {
    return fail("connect");
  }
  return true;
}

void UdpSocket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  local_port_ = 0;
}

bool UdpSocket::send(const uint8_t* data, size_t len) {
  const IoResult r = retry_send(fd_, data, len);
  if (r.status == IoStatus::kWouldBlock) {
    ++stats_.send_buffer_overflows;
    return false;
  }
  if (r.status == IoStatus::kError) {
    // Async errors (ICMP port unreachable surfacing as ECONNREFUSED) are
    // expected while the peer is still starting; count, don't die.
    ++stats_.send_errors;
    return false;
  }
  if (static_cast<size_t>(r.bytes) != len) {
    ++stats_.send_buffer_overflows;  // torn datagram: treat as dropped
    return false;
  }
  ++stats_.datagrams_sent;
  stats_.bytes_sent += static_cast<int64_t>(len);
  return true;
}

int UdpSocket::recv(uint8_t* buf, size_t cap) {
  const IoResult r = retry_recv(fd_, buf, cap);
  if (r.status != IoStatus::kOk) return -1;
  ++stats_.datagrams_received;
  stats_.bytes_received += r.bytes;
  return static_cast<int>(r.bytes);
}

}  // namespace proteus
