// RtReceiver: the passive endpoint of a live transfer. Answers HELLO
// with HELLO_ACK (echoing the token), acknowledges every DATA frame with
// an ACK carrying the receiver-clock timestamp (the sender's one-way-
// delay signal), echoes heartbeats, and finishes on BYE or after an idle
// timeout. ACK-path egress goes through the chaos shim with is_ack=true
// so ackloss windows hit only the reverse path.
//
// The receiver keeps a small recent-seq ring purely for duplicate
// accounting; duplicates are still ACKed (the sender treats a dup ACK
// as noise), matching the simulator receiver's behavior.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/chaos.h"
#include "rt/rt_loop.h"
#include "rt/udp_socket.h"
#include "rt/wire.h"

namespace proteus {

struct RtReceiverConfig {
  // Finish (and stop the loop) after this long without any inbound
  // frame. 0 disables the idle stop.
  TimeNs idle_timeout = from_sec(5);
  // Linger after BYE so retransmitted BYEs don't restart anything.
  TimeNs bye_linger = from_ms(100);
};

struct RtReceiverStats {
  int64_t hellos_seen = 0;
  int64_t data_received = 0;
  int64_t bytes_received = 0;   // wire bytes of DATA frames
  int64_t duplicates = 0;       // recently-seen seqs received again
  int64_t acks_sent = 0;
  int64_t heartbeats_seen = 0;
  int64_t parse_rejects = 0;
  bool saw_bye = false;
};

class RtReceiver {
 public:
  // `shim` may be null. All pointers must outlive the receiver; the
  // receiver must outlive loop->run().
  RtReceiver(RtLoop* loop, UdpSocket* socket, ChaosShim* shim,
             RtReceiverConfig cfg = {});

  // Watches the socket and arms the idle timer.
  void start();

  const RtReceiverStats& stats() const { return stats_; }
  bool done() const { return done_; }

 private:
  void on_readable();
  void handle_frame(const Frame& f);
  void emit(const uint8_t* data, size_t len);
  void idle_tick();

  bool recently_seen(uint64_t seq) const;
  void remember(uint64_t seq);

  RtLoop* loop_;
  UdpSocket* socket_;
  ChaosShim* shim_;
  RtReceiverConfig cfg_;
  RtReceiverStats stats_;

  bool done_ = false;
  uint64_t next_expected_ = 0;     // largest expanded seq + 1
  std::vector<uint64_t> seen_;     // direct-mapped recent seqs (dup accounting)
  TimeNs last_rx_time_ = 0;

  uint8_t out_buf_[kMaxFrameBytes];
};

}  // namespace proteus
