// EINTR/EAGAIN-safe POSIX I/O helpers shared by the real-time driver and
// the harness exporters.
//
// Every raw syscall in the rt path goes through one of these wrappers so
// the retry policy lives in exactly one place:
//  * EINTR is always retried — a SIGINT mid-recv must reach the loop's
//    cooperative interrupt check, not surface as a bogus I/O error.
//  * EAGAIN/EWOULDBLOCK is surfaced as kWouldBlock, never an error: the
//    event loop owns blocking (poll with a timeout), the sockets do not.
//  * Short writes are looped to completion for stream fds (write_all) and
//    surfaced distinctly for datagrams, where a short sendto would tear a
//    frame (the UDP wrapper treats it as a send-buffer overflow).
#pragma once

#include <cerrno>
#include <cstddef>
#include <cstdio>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace proteus {

enum class IoStatus {
  kOk,
  kWouldBlock,  // EAGAIN/EWOULDBLOCK on a non-blocking fd
  kError,       // any other errno (left in errno for the caller)
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  ssize_t bytes = 0;  // transferred bytes when status == kOk
};

// recv() retrying EINTR. kOk with bytes==0 is a zero-length datagram.
inline IoResult retry_recv(int fd, void* buf, size_t cap) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, cap, 0);
    if (n >= 0) return {IoStatus::kOk, n};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

// send() retrying EINTR. A short datagram send (kernel accepted fewer
// bytes than requested) is reported as kOk with the true count; the UDP
// wrapper checks bytes == len and accounts a drop otherwise.
inline IoResult retry_send(int fd, const void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, 0);
    if (n >= 0) return {IoStatus::kOk, n};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ENOBUFS) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

// write() looped until every byte is out (stream fds: pipes, files).
// Returns kOk only when all `len` bytes were written.
inline IoResult write_all(int fd, const void* buf, size_t len) {
  const char* p = static_cast<const char*>(buf);
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::write(fd, p + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return {IoStatus::kWouldBlock, static_cast<ssize_t>(done)};
    }
    return {IoStatus::kError, static_cast<ssize_t>(done)};
  }
  return {IoStatus::kOk, static_cast<ssize_t>(done)};
}

// fwrite + fflush with the short-write check stdio buffering hides: a
// buffered fprintf "succeeds" even when the disk is full, and the loss
// only surfaces (if anyone looks) at fclose. The harness writers
// (checkpoint journal, CSV/JSONL exporters) call this to make ENOSPC a
// detectable per-write failure instead of silent truncation.
inline bool checked_fwrite(std::FILE* f, const void* buf, size_t len) {
  if (std::fwrite(buf, 1, len, f) != len) return false;
  return std::fflush(f) == 0;
}

}  // namespace proteus
