// Non-blocking UDP socket wrapper with EINTR/EAGAIN-safe send/recv and
// send-buffer-overflow accounting.
//
// The rt driver treats the kernel send buffer like one more lossy hop: a
// send that would block (EAGAIN/ENOBUFS) or that the kernel truncates is
// *dropped and counted*, never retried inline — retrying would stall the
// event loop and distort pacing, and the congestion controller will see
// the loss through its normal ACK accounting anyway.
#pragma once

#include <cstdint>
#include <string>

#include "rt/io_retry.h"

namespace proteus {

struct UdpSocketStats {
  int64_t datagrams_sent = 0;
  int64_t bytes_sent = 0;
  int64_t datagrams_received = 0;
  int64_t bytes_received = 0;
  int64_t send_buffer_overflows = 0;  // EAGAIN/ENOBUFS/short-send drops
  int64_t send_errors = 0;            // hard errno failures
};

class UdpSocket {
 public:
  UdpSocket() = default;
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  // Opens an IPv4 UDP socket bound to `host`:`port` (port 0 = ephemeral)
  // in non-blocking mode. Returns false with error() set on failure.
  bool open(const std::string& host, uint16_t port);
  // Connects the socket to the peer so plain send()/recv() apply and
  // stray datagrams from other sources are filtered by the kernel.
  bool connect_peer(const std::string& host, uint16_t port);
  void close();

  bool is_open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t local_port() const { return local_port_; }
  const std::string& error() const { return error_; }

  // Sends one datagram. Returns true when the kernel accepted every byte;
  // false (with the overflow/error counter bumped) otherwise.
  bool send(const uint8_t* data, size_t len);

  // Receives one datagram into `buf`. Returns the length, 0 for a
  // zero-length datagram, or -1 when no datagram is waiting (or on a
  // transient error, e.g. an async ICMP ECONNREFUSED, which over UDP is
  // not fatal — the handshake retry path owns giving up).
  int recv(uint8_t* buf, size_t cap);

  const UdpSocketStats& stats() const { return stats_; }

 private:
  bool fail(const std::string& what);

  int fd_ = -1;
  uint16_t local_port_ = 0;
  std::string error_;
  UdpSocketStats stats_;
};

}  // namespace proteus
