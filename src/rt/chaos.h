// Deterministic chaos shim: seeded impairment of live loopback traffic,
// inserted between the rt driver and its UDP socket.
//
// A live run over loopback sees an essentially perfect link — useless for
// exercising survival mode or for CI. The shim turns each endpoint's
// egress into an emulated hop: a fluid bottleneck (serialization at
// `rate_mbps` into a `queue_bytes` tail-drop buffer), a fixed one-way
// `delay`, an unconditional seeded `drop` probability, and scripted
// fault windows reusing the simulator's FaultSpec/`--faults=` grammar
// (blackout, reorder, duplicate, ackloss; capacity scales the emulated
// rate). No root or netem required.
//
// Determinism: the n-th verdict drawn from a shim is a pure function of
// (seed, n) — a splitmix64 hash per verdict, not a shared sequential RNG
// stream — so a given endpoint's egress decision sequence replays
// identically for the same packet sequence regardless of wall-clock
// timing (pinned under TSan by tests/rt_chaos_test.cc). Time-windowed
// faults gate on the caller-supplied `now` (ns since the connection
// epoch), which is what makes `blackout@1:0.5` mean the same thing in a
// live run as in a simulated one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/fault_timeline.h"
#include "sim/units.h"

namespace proteus {

struct ChaosConfig {
  double rate_mbps = 0.0;      // emulated bottleneck; 0 = no rate limit
  TimeNs one_way_delay = 0;    // added to every egress datagram
  int64_t queue_bytes = 262144;  // bottleneck buffer (used when rate > 0)
  double drop = 0.0;           // unconditional drop probability
  uint64_t seed = 1;
  std::vector<FaultSpec> faults;  // windowed events (--faults= grammar)

  bool active() const {
    return rate_mbps > 0.0 || one_way_delay > 0 || drop > 0.0 ||
           !faults.empty();
  }
};

struct ChaosParseResult {
  bool ok = false;
  std::string error;
  ChaosConfig config;
};

// Parses a --chaos= value: comma-separated key=value pairs
//   rate=<Mbps>  delay=<time>  queue=<bytes>  drop=<p>  seed=<n>
// (times take the fault-grammar s/ms suffixes). Empty input is ok and
// yields an inactive config. Fault windows arrive separately via
// --faults= and are merged into ChaosConfig::faults by the caller.
ChaosParseResult parse_chaos(const std::string& spec);
std::string chaos_usage();

struct ChaosStats {
  int64_t admitted = 0;
  int64_t dropped_random = 0;    // the unconditional `drop` probability
  int64_t dropped_blackout = 0;  // blackout window
  int64_t dropped_ackloss = 0;   // ackloss window (ACK frames only)
  int64_t dropped_queue = 0;     // emulated bottleneck buffer overflow
  int64_t duplicated = 0;
  int64_t reordered = 0;
};

class ChaosShim {
 public:
  explicit ChaosShim(ChaosConfig cfg);

  // Verdict for one egress datagram. `depart_delay` is when the datagram
  // should actually hit the socket (queueing + serialization + one-way
  // delay + any reorder hold-back), relative to `now`. A duplicate, when
  // requested, should be sent `duplicate_gap` after the original.
  struct Verdict {
    bool drop = false;
    bool duplicate = false;
    TimeNs depart_delay = 0;
    TimeNs duplicate_gap = 0;
  };

  // `now` is ns since the connection epoch; `is_ack` marks reverse-path
  // frames (ACK/heartbeat-reply) so ackloss windows hit only them.
  Verdict admit(TimeNs now, int64_t bytes, bool is_ack);

  const ChaosStats& stats() const { return stats_; }
  const ChaosConfig& config() const { return cfg_; }

 private:
  // Product of active capacity-fault multipliers at `now` (1.0 if none).
  double capacity_multiplier(TimeNs now) const;
  const FaultSpec* find_active(FaultType type, TimeNs now) const;

  ChaosConfig cfg_;
  uint64_t ordinal_ = 0;  // verdicts drawn so far; the determinism anchor
  TimeNs busy_until_ = 0;  // emulated bottleneck departure horizon
  ChaosStats stats_;
};

}  // namespace proteus
