#include "rt/live_run.h"

#include <sys/stat.h>

#include <memory>
#include <sstream>
#include <thread>
#include <utility>

#include "core/pcc_sender.h"
#include "harness/factory.h"
#include "harness/supervisor.h"
#include "rt/rt_loop.h"
#include "rt/udp_socket.h"
#include "telemetry/telemetry.h"

namespace proteus {

namespace {

constexpr char kLoopbackHost[] = "127.0.0.1";

std::unique_ptr<CongestionController> try_make_protocol(
    const std::string& name, uint64_t seed, std::string& error) {
  try {
    return make_protocol(name, seed);
  } catch (const std::exception& e) {
    error = e.what();
    return nullptr;
  }
}

RtSenderConfig sender_config(const LiveRunConfig& cfg) {
  RtSenderConfig sc = cfg.sender;
  sc.seed = cfg.seed;
  sc.transfer_bytes = cfg.transfer_bytes;
  sc.duration = cfg.duration;
  return sc;
}

std::function<bool()> effective_stopper(const LiveRunConfig& cfg) {
  if (cfg.stopper) return cfg.stopper;
  return [] { return interrupt_requested(); };
}

void fill_sender_result(const RtSender& sender, LiveRunResult& out) {
  out.sender_state = sender.state();
  out.sender = sender.stats();
  out.achieved_mbps = sender.achieved_mbps();
  out.smoothed_rtt = sender.smoothed_rtt();
  out.min_rtt = sender.min_rtt() == kTimeInfinite ? 0 : sender.min_rtt();
  out.starvation_episodes = sender.stats().starvation_episodes;
  out.probe_packets = sender.stats().probe_packets;
  if (const auto* pcc = dynamic_cast<const PccSender*>(&sender.cc())) {
    out.cc_owns_survival = pcc->config().survival_mode;
    out.survival_entries = pcc->survival_entries();
  }
}

// Export after the run (including interrupted runs — the caller flushes
// whatever the recorder holds). JSONL only when the controller produced
// MI records; tools/telemetry_validate treats an empty JSONL as an error.
void export_telemetry(const LiveRunConfig& cfg, const RtSender& sender,
                      const TelemetryRecorder* recorder, LiveRunResult& out) {
  if (cfg.telemetry_dir.empty()) return;
  ::mkdir(cfg.telemetry_dir.c_str(), 0777);  // EEXIST is fine
  const std::string label =
      sanitize_path_component(cfg.run_label + "-" + cfg.cc);
  const std::string base = cfg.telemetry_dir + "/" + label;

  if (recorder != nullptr && recorder->size() > 0) {
    const std::string jsonl = base + ".jsonl";
    if (write_mi_records_jsonl(jsonl, label, *recorder)) {
      out.telemetry_jsonl = jsonl;
    }
  }

  MetricsRegistry reg;
  sender.cc().snapshot_metrics(&reg);
  reg.counter("rt.packets_sent", out.sender.packets_sent);
  reg.counter("rt.packets_acked", out.sender.packets_acked);
  reg.counter("rt.packets_lost", out.sender.packets_lost);
  reg.counter("rt.bytes_delivered", out.sender.bytes_delivered);
  reg.counter("rt.handshake_attempts", out.sender.handshake_attempts);
  reg.counter("rt.heartbeats_sent", out.sender.heartbeats_sent);
  reg.counter("rt.starvation_episodes", out.sender.starvation_episodes);
  reg.counter("rt.probe_packets", out.sender.probe_packets);
  reg.counter("rt.parse_rejects", out.sender.parse_rejects);
  reg.counter("rt.socket.send_buffer_overflows",
              out.sender_socket.send_buffer_overflows);
  reg.counter("rt.socket.send_errors", out.sender_socket.send_errors);
  reg.counter("rt.chaos.admitted", out.data_chaos.admitted);
  reg.counter("rt.chaos.dropped_random", out.data_chaos.dropped_random);
  reg.counter("rt.chaos.dropped_blackout", out.data_chaos.dropped_blackout);
  reg.counter("rt.chaos.dropped_queue", out.data_chaos.dropped_queue);
  reg.gauge("rt.achieved_mbps", out.achieved_mbps);
  reg.gauge("rt.smoothed_rtt_ms", to_ms(out.smoothed_rtt));
  const std::string metrics = base + ".metrics.csv";
  if (write_metrics_csv(metrics, reg)) out.telemetry_metrics = metrics;
}

}  // namespace

ChaosConfig ack_path_chaos(const ChaosConfig& cfg) {
  ChaosConfig ack = cfg;
  ack.rate_mbps = 0.0;  // reverse path is unbottlenecked, as in the sim
  ack.seed = cfg.seed ^ 0xac4ac4ac4ULL;  // independent verdict stream
  return ack;
}

LiveRunResult run_live_loopback(const LiveRunConfig& cfg) {
  LiveRunResult out;

  UdpSocket send_sock;
  UdpSocket recv_sock;
  if (!send_sock.open(kLoopbackHost, 0)) {
    out.error = "sender socket: " + send_sock.error();
    return out;
  }
  if (!recv_sock.open(kLoopbackHost, 0)) {
    out.error = "receiver socket: " + recv_sock.error();
    return out;
  }
  if (!send_sock.connect_peer(kLoopbackHost, recv_sock.local_port()) ||
      !recv_sock.connect_peer(kLoopbackHost, send_sock.local_port())) {
    out.error = "connect: " + send_sock.error() + recv_sock.error();
    return out;
  }

  std::unique_ptr<CongestionController> cc =
      try_make_protocol(cfg.cc, cfg.seed, out.error);
  if (cc == nullptr) return out;
  std::unique_ptr<TelemetryRecorder> recorder;
  if (!cfg.telemetry_dir.empty()) {
    recorder = std::make_unique<TelemetryRecorder>();
    cc->set_telemetry(recorder.get());
  }

  // Shared epoch: both loops measure ns since the same instant, so the
  // receiver-timestamp echo in ACKs is a true one-way delay.
  const RtClock::Epoch epoch = std::chrono::steady_clock::now();
  RtLoop send_loop{RtClock{epoch}};
  RtLoop recv_loop{RtClock{epoch}};
  const std::function<bool()> stopper = effective_stopper(cfg);
  send_loop.set_stopper(stopper);
  recv_loop.set_stopper(stopper);

  ChaosShim data_shim{cfg.chaos};
  ChaosShim ack_shim{ack_path_chaos(cfg.chaos)};
  ChaosShim* data = cfg.chaos.active() ? &data_shim : nullptr;
  ChaosShim* ack = cfg.chaos.active() ? &ack_shim : nullptr;

  RtReceiverConfig rcfg;
  rcfg.idle_timeout = cfg.recv_idle_timeout;
  RtReceiver receiver{&recv_loop, &recv_sock, ack, rcfg};
  RtSender sender{&send_loop, &send_sock, data, std::move(cc),
                  sender_config(cfg)};

  std::thread recv_thread{[&] {
    receiver.start();
    recv_loop.run();
  }};
  sender.start();
  // Belt and braces: even if the loop wedges on a logic bug, the fd idle
  // limit ends the run not long after the transfer should have.
  send_loop.run(/*idle_limit=*/cfg.duration + from_sec(10));
  recv_thread.join();

  fill_sender_result(sender, out);
  out.receiver = receiver.stats();
  out.data_chaos = data_shim.stats();
  out.ack_chaos = ack_shim.stats();
  out.sender_socket = send_sock.stats();
  out.receiver_socket = recv_sock.stats();
  out.interrupted = stopper();
  out.ok = out.sender_state == RtSenderState::kDone && !out.interrupted;
  if (out.sender_state == RtSenderState::kFailed) out.error = sender.error();

  if (recorder) sender.cc().set_telemetry(nullptr);
  export_telemetry(cfg, sender, recorder.get(), out);
  return out;
}

LiveRunResult run_live_sender(const LiveRunConfig& cfg,
                              const std::string& peer_host,
                              uint16_t peer_port) {
  LiveRunResult out;
  UdpSocket sock;
  if (!sock.open("", 0) || !sock.connect_peer(peer_host, peer_port)) {
    out.error = "sender socket: " + sock.error();
    return out;
  }
  std::unique_ptr<CongestionController> cc =
      try_make_protocol(cfg.cc, cfg.seed, out.error);
  if (cc == nullptr) return out;
  std::unique_ptr<TelemetryRecorder> recorder;
  if (!cfg.telemetry_dir.empty()) {
    recorder = std::make_unique<TelemetryRecorder>();
    cc->set_telemetry(recorder.get());
  }

  RtLoop loop;
  const std::function<bool()> stopper = effective_stopper(cfg);
  loop.set_stopper(stopper);
  ChaosShim shim{cfg.chaos};
  ChaosShim* data = cfg.chaos.active() ? &shim : nullptr;
  RtSender sender{&loop, &sock, data, std::move(cc), sender_config(cfg)};
  sender.start();
  loop.run(/*idle_limit=*/cfg.duration + from_sec(10));

  fill_sender_result(sender, out);
  out.data_chaos = shim.stats();
  out.sender_socket = sock.stats();
  out.interrupted = stopper();
  out.ok = out.sender_state == RtSenderState::kDone && !out.interrupted;
  if (out.sender_state == RtSenderState::kFailed) out.error = sender.error();

  if (recorder) sender.cc().set_telemetry(nullptr);
  export_telemetry(cfg, sender, recorder.get(), out);
  return out;
}

LiveRunResult run_live_receiver(const LiveRunConfig& cfg,
                                const std::string& bind_host,
                                uint16_t bind_port) {
  LiveRunResult out;
  UdpSocket sock;
  if (!sock.open(bind_host, bind_port)) {
    out.error = "receiver socket: " + sock.error();
    return out;
  }
  RtLoop loop;
  const std::function<bool()> stopper = effective_stopper(cfg);
  loop.set_stopper(stopper);
  ChaosShim shim{ack_path_chaos(cfg.chaos)};
  ChaosShim* ack = cfg.chaos.active() ? &shim : nullptr;
  RtReceiverConfig rcfg;
  rcfg.idle_timeout = cfg.recv_idle_timeout;
  RtReceiver receiver{&loop, &sock, ack, rcfg};
  receiver.start();
  loop.run();

  out.receiver = receiver.stats();
  out.ack_chaos = shim.stats();
  out.receiver_socket = sock.stats();
  out.interrupted = stopper();
  out.ok = !out.interrupted;
  return out;
}

std::string summarize_live_run(const LiveRunResult& r) {
  std::ostringstream os;
  os << (r.ok ? "ok" : (r.interrupted ? "interrupted" : "failed"));
  if (!r.error.empty()) os << " (" << r.error << ")";
  os << ": sent=" << r.sender.packets_sent
     << " acked=" << r.sender.packets_acked
     << " lost=" << r.sender.packets_lost
     << " delivered=" << r.sender.bytes_delivered << "B"
     << " rate=" << r.achieved_mbps << "Mbps"
     << " srtt=" << to_ms(r.smoothed_rtt) << "ms"
     << " handshakes=" << r.sender.handshake_attempts;
  if (r.cc_owns_survival) {
    os << " survival_entries=" << r.survival_entries;
  } else if (r.starvation_episodes > 0) {
    os << " starvation_episodes=" << r.starvation_episodes
       << " probes=" << r.probe_packets;
  }
  if (r.data_chaos.admitted > 0 || r.data_chaos.dropped_random > 0) {
    os << " chaos_drops=" << r.data_chaos.dropped_random << "/"
       << (r.data_chaos.admitted + r.data_chaos.dropped_random +
           r.data_chaos.dropped_blackout + r.data_chaos.dropped_queue +
           r.data_chaos.dropped_ackloss);
  }
  if (r.receiver.data_received > 0) {
    os << " recv_data=" << r.receiver.data_received
       << " dups=" << r.receiver.duplicates;
  }
  return os.str();
}

}  // namespace proteus
