// Real-time event loop: the simulator's EventQueue engine driven by the
// monotonic wall clock instead of a virtual one.
//
// The loop owns an EventQueue (timer-wheel engine — the same zero-
// allocation scheduler the simulator uses) whose timestamps are RtClock
// nanoseconds, plus a set of watched file descriptors. Each iteration it
//   1. runs every timer whose deadline has passed,
//   2. ppoll()s the watched fds until the next timer deadline (EINTR
//      tolerated: an interrupt wakes the loop, which re-checks stop
//      conditions), and
//   3. dispatches readable-fd callbacks.
//
// Single-threaded by design: one loop drives one endpoint, and the
// in-process loopback harness runs two loops on two threads that share
// nothing but the kernel socket pair. stop() may be called from within a
// callback; the cooperative `stopper` predicate (typically the
// process-wide interrupt flag) is polled every iteration so SIGINT lands
// within one poll timeout.
#pragma once

#include <functional>
#include <vector>

#include "sim/event_queue.h"
#include "rt/rt_clock.h"

namespace proteus {

class RtLoop {
 public:
  explicit RtLoop(RtClock clock = RtClock{});

  TimeNs now() const { return clock_.now(); }
  const RtClock& clock() const { return clock_; }

  // Timers. Deadlines in the past are clamped to "immediately" (the queue
  // requires monotone push times, same contract as Simulator).
  void schedule_at(TimeNs when, EventQueue::Callback&& cb);
  void schedule_in(TimeNs delay, EventQueue::Callback&& cb);

  // Registers a readable-fd callback. One callback per fd; re-watching an
  // fd replaces its callback. The callback should drain the fd (the loop
  // is level-triggered via poll, so leftover data re-fires it).
  void watch_fd(int fd, std::function<void()> on_readable);

  // Optional cooperative stop predicate checked once per iteration (e.g.
  // proteus::interrupt_requested).
  void set_stopper(std::function<bool()> stopper);

  // Runs until stop() is called or the stopper fires. `idle_limit` > 0
  // stops the loop after that long without fd activity — pending timers
  // don't count, so a crashed peer can't hang the process behind its own
  // heartbeat schedule.
  void run(TimeNs idle_limit = 0);

  void stop() { stop_ = true; }
  bool stopped() const { return stop_; }

 private:
  // Runs timers due at or before now; returns the next pending deadline
  // (kTimeInfinite when none).
  TimeNs run_due_timers();

  RtClock clock_;
  EventQueue queue_;
  // The queue's push contract requires non-decreasing "now"; track the
  // latest popped deadline so late schedule_at calls clamp onto it.
  TimeNs last_fired_ = 0;
  struct Watch {
    int fd;
    std::function<void()> on_readable;
  };
  std::vector<Watch> watches_;
  std::function<bool()> stopper_;
  bool stop_ = false;
};

}  // namespace proteus
