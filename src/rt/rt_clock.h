// Monotonic wall-clock for the real-time driver.
//
// Every rt deadline (handshake backoff, pacing, heartbeats, the no-ACK
// watchdog) is a TimeNs measured on CLOCK_MONOTONIC via steady_clock —
// never system_clock, which an NTP step can yank backwards mid-transfer
// (verify.sh pins this with a tree-wide grep). Timestamps are nanoseconds
// since an explicit epoch so two endpoints constructed with a shared
// epoch (the in-process loopback harness) produce directly comparable
// one-way-delay measurements.
#pragma once

#include <chrono>

#include "sim/units.h"

namespace proteus {

class RtClock {
 public:
  using Epoch = std::chrono::steady_clock::time_point;

  RtClock() : epoch_(std::chrono::steady_clock::now()) {}
  explicit RtClock(Epoch epoch) : epoch_(epoch) {}

  Epoch epoch() const { return epoch_; }

  TimeNs now() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

 private:
  Epoch epoch_;
};

}  // namespace proteus
