#include "rt/chaos.h"

#include <cmath>
#include <cstdlib>

namespace proteus {

namespace {

// splitmix64 finalizer — the same mixing the supervisor uses for retry
// seeds. Hashing (seed, ordinal, lane) gives each verdict an independent
// draw without any shared-stream ordering dependence.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double unit_double(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool parse_time_value(const std::string& s, TimeNs& out) {
  if (s.empty()) return false;
  std::string num = s;
  double scale = 1e9;
  if (s.size() > 2 && s.compare(s.size() - 2, 2, "ms") == 0) {
    num = s.substr(0, s.size() - 2);
    scale = 1e6;
  } else if (s.size() > 1 && s.back() == 's') {
    num = s.substr(0, s.size() - 1);
  }
  char* end = nullptr;
  const double v = std::strtod(num.c_str(), &end);
  if (end != num.c_str() + num.size() || !std::isfinite(v)) return false;
  out = static_cast<TimeNs>(std::llround(v * scale));
  return true;
}

}  // namespace

ChaosParseResult parse_chaos(const std::string& spec) {
  ChaosParseResult r;
  r.ok = true;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      r.ok = false;
      r.error = "chaos item needs key=value: " + item;
      return r;
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    char* end = nullptr;
    if (key == "rate") {
      r.config.rate_mbps = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || r.config.rate_mbps < 0 ||
          !std::isfinite(r.config.rate_mbps)) {
        r.ok = false;
        r.error = "bad chaos rate: " + value;
        return r;
      }
    } else if (key == "delay") {
      if (!parse_time_value(value, r.config.one_way_delay) ||
          r.config.one_way_delay < 0) {
        r.ok = false;
        r.error = "bad chaos delay: " + value;
        return r;
      }
    } else if (key == "queue") {
      r.config.queue_bytes = std::strtoll(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size() || r.config.queue_bytes <= 0) {
        r.ok = false;
        r.error = "bad chaos queue: " + value;
        return r;
      }
    } else if (key == "drop") {
      r.config.drop = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || r.config.drop < 0 ||
          r.config.drop >= 1.0) {
        r.ok = false;
        r.error = "bad chaos drop probability (need [0,1)): " + value;
        return r;
      }
    } else if (key == "seed") {
      r.config.seed = std::strtoull(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size()) {
        r.ok = false;
        r.error = "bad chaos seed: " + value;
        return r;
      }
    } else {
      r.ok = false;
      r.error = "unknown chaos key: " + key;
      return r;
    }
  }
  return r;
}

std::string chaos_usage() {
  return "--chaos=rate=<Mbps>,delay=<time>,queue=<bytes>,drop=<p>,seed=<n> "
         "(all optional; windowed events via --faults=)";
}

ChaosShim::ChaosShim(ChaosConfig cfg) : cfg_(std::move(cfg)) {}

const FaultSpec* ChaosShim::find_active(FaultType type, TimeNs now) const {
  for (const FaultSpec& f : cfg_.faults) {
    if (f.type == type && f.active(now)) return &f;
  }
  return nullptr;
}

double ChaosShim::capacity_multiplier(TimeNs now) const {
  double m = 1.0;
  for (const FaultSpec& f : cfg_.faults) {
    if (f.type == FaultType::kCapacity && f.active(now)) m *= f.value;
  }
  return m;
}

ChaosShim::Verdict ChaosShim::admit(TimeNs now, int64_t bytes, bool is_ack) {
  Verdict v;
  // One hash base per admitted datagram; independent lanes per decision.
  const uint64_t base = mix64(cfg_.seed ^ mix64(ordinal_));
  ++ordinal_;
  auto draw = [&](uint64_t lane) { return unit_double(mix64(base + lane)); };

  if (find_active(FaultType::kBlackout, now) != nullptr) {
    v.drop = true;
    ++stats_.dropped_blackout;
    return v;
  }
  if (cfg_.drop > 0.0 && draw(1) < cfg_.drop) {
    v.drop = true;
    ++stats_.dropped_random;
    return v;
  }
  if (is_ack) {
    if (const FaultSpec* f = find_active(FaultType::kAckLoss, now)) {
      if (draw(2) < f->value) {
        v.drop = true;
        ++stats_.dropped_ackloss;
        return v;
      }
    }
  }

  // Emulated bottleneck: fluid queue at rate * capacity_multiplier. The
  // backlog is the departure horizon; a datagram whose serialization
  // would push the backlog past queue_bytes is tail-dropped, exactly
  // like Link's byte-bounded buffer.
  TimeNs depart = now;
  const double mult = capacity_multiplier(now);
  if (cfg_.rate_mbps > 0.0 && mult > 0.0) {
    const Bandwidth bw = Bandwidth::from_mbps(cfg_.rate_mbps * mult);
    const TimeNs backlog = busy_until_ > now ? busy_until_ - now : 0;
    const double backlog_bytes = bw.bps / 8.0 * to_sec(backlog);
    if (backlog_bytes + static_cast<double>(bytes) >
        static_cast<double>(cfg_.queue_bytes)) {
      v.drop = true;
      ++stats_.dropped_queue;
      return v;
    }
    depart = (busy_until_ > now ? busy_until_ : now) + bw.tx_time(bytes);
    busy_until_ = depart;
  }
  v.depart_delay = depart - now + cfg_.one_way_delay;

  if (!is_ack) {
    if (const FaultSpec* f = find_active(FaultType::kReorder, now)) {
      if (draw(3) < f->value) {
        v.depart_delay +=
            static_cast<TimeNs>(draw(4) * static_cast<double>(f->delay));
        ++stats_.reordered;
      }
    }
  }
  if (const FaultSpec* f = find_active(FaultType::kDuplicate, now)) {
    if (draw(5) < f->value) {
      v.duplicate = true;
      v.duplicate_gap = from_us(200);
      ++stats_.duplicated;
    }
  }
  ++stats_.admitted;
  return v;
}

}  // namespace proteus
