// Emulated DASH video client (paper section 6, Figs 11-13).
//
// Mirrors the paper's setup: the receiver-side agent consumes delivered
// bytes to maintain an emulated playback buffer, requests chunks through a
// side channel (here: direct calls into the sender), and optionally feeds
// the Proteus-H switching-threshold policy with (1) the requested bitrate,
// (2) stop/resume on buffer limits, and (3) rebuffer emergencies.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/life_tag.h"
#include "app/bola.h"
#include "core/hybrid_threshold.h"
#include "sim/network.h"
#include "transport/receiver.h"
#include "transport/sender.h"

namespace proteus {

struct VideoDefinition {
  std::vector<double> bitrates_mbps;  // ascending ladder
  double chunk_duration_sec = 3.0;
  int total_chunks = 60;  // 3 minutes at 3 s/chunk
};

// Ladders matching the paper's corpus: 4K tops out above 40 Mbps, 1080P
// above 10 Mbps, 3-second chunks, >= 3 minutes long.
VideoDefinition make_4k_video(int total_chunks = 60);
VideoDefinition make_1080p_video(int total_chunks = 60);

struct VideoClientConfig {
  VideoDefinition video;
  double buffer_capacity_sec = 30.0;
  double startup_buffer_sec = 3.0;  // begin playback at one chunk
  double resume_buffer_sec = 3.0;   // leave a stall at one chunk
  FlowId id = 1;
  TimeNs start_time = 0;
};

struct VideoMetrics {
  double average_chunk_bitrate_mbps = 0.0;
  double rebuffer_ratio = 0.0;  // stall / (stall + play)
  double play_time_sec = 0.0;
  double stall_time_sec = 0.0;
  int chunks_downloaded = 0;
  int rebuffer_events = 0;
  bool finished_download = false;
};

class VideoClient {
 public:
  VideoClient(Simulator* sim, Network* network, VideoClientConfig cfg,
              std::unique_ptr<CongestionController> cc,
              std::unique_ptr<BitrateAdaptation> abr,
              HybridThresholdPolicy* threshold_policy = nullptr);
  ~VideoClient();

  VideoClient(const VideoClient&) = delete;
  VideoClient& operator=(const VideoClient&) = delete;

  VideoMetrics metrics() const;
  double buffer_level_sec() const { return buffer_sec_; }
  bool rebuffering() const { return rebuffering_; }
  Sender& sender() { return *sender_; }

 private:
  void tick();
  void advance_playback();
  void maybe_request_chunk();
  void on_chunk_complete();
  double free_chunks() const;

  Simulator* sim_;
  Network* network_;
  VideoClientConfig cfg_;
  std::unique_ptr<Sender> sender_;
  std::unique_ptr<Receiver> receiver_;
  std::unique_ptr<BitrateAdaptation> abr_;
  HybridThresholdPolicy* threshold_policy_;

  int next_chunk_ = 0;
  bool chunk_in_flight_ = false;
  int current_bitrate_index_ = 0;
  std::vector<double> downloaded_bitrates_;

  bool started_playing_ = false;
  bool rebuffering_ = false;
  double buffer_sec_ = 0.0;
  double play_time_sec_ = 0.0;
  double stall_time_sec_ = 0.0;
  int rebuffer_events_ = 0;
  TimeNs last_advance_ = 0;

  LifeTag alive_;
};

}  // namespace proteus
