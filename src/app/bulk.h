// Bulk/probe traffic helpers.
//
// FixedRateController is the 20 Mbps constant-rate UDP probe from the
// paper's Fig 2 methodology; RttWindowAnalyzer reproduces that figure's
// measurement: RTT deviation and RTT-gradient magnitude computed over
// consecutive fixed-length windows (1.5 RTT in the paper).
#pragma once

#include <string>
#include <vector>

#include "stats/percentile.h"
#include "transport/cc_interface.h"

namespace proteus {

// Constant-pacing-rate "controller": no congestion reaction at all.
class FixedRateController final : public CongestionController {
 public:
  explicit FixedRateController(Bandwidth rate) : rate_(rate) {}

  void on_ack(const AckInfo&) override {}
  Bandwidth pacing_rate() const override { return rate_; }
  int64_t cwnd_bytes() const override { return kNoCwndLimit; }
  std::string name() const override { return "fixed-rate"; }

  void set_rate(Bandwidth rate) { rate_ = rate; }

 private:
  Bandwidth rate_;
};

// Splits an RTT sample stream into consecutive windows and emits each
// window's RTT deviation (ms) and |RTT gradient| (s/s).
class RttWindowAnalyzer {
 public:
  explicit RttWindowAnalyzer(TimeNs window) : window_(window) {}

  void add_sample(TimeNs when, TimeNs rtt);

  const Samples& deviations_ms() const { return deviations_ms_; }
  const Samples& gradient_magnitudes() const { return gradients_; }

 private:
  void flush_window();

  TimeNs window_;
  TimeNs window_start_ = -1;
  std::vector<double> times_sec_;
  std::vector<double> rtts_sec_;
  Samples deviations_ms_;
  Samples gradients_;
};

}  // namespace proteus
