#include "app/web.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace proteus {

WebWorkload::WebWorkload(Simulator* sim, Network* network, Config cfg,
                         CcFactory factory)
    : sim_(sim),
      network_(network),
      cfg_(cfg),
      factory_(std::move(factory)),
      rng_(cfg.seed),
      next_id_(cfg.first_flow_id) {
  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_at(cfg_.start_time, [this, alive] {
    if (alive.expired()) return;
    schedule_next_page();
  });
}

WebWorkload::~WebWorkload() = default;

void WebWorkload::schedule_next_page() {
  const double gap_sec =
      rng_.exponential(1.0 / cfg_.page_arrival_rate_per_sec);
  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_in(from_sec(gap_sec), [this, alive] {
    if (alive.expired()) return;
    if (sim_->now() >= cfg_.stop_time) return;
    start_page();
    schedule_next_page();
  });
}

void WebWorkload::start_page() {
  Page page;
  page.start = sim_->now();

  // Log-uniform page weight: heavy pages exist but are not the norm.
  const double lo = std::log(static_cast<double>(cfg_.min_page_bytes));
  const double hi = std::log(static_cast<double>(cfg_.max_page_bytes));
  const auto total_bytes =
      static_cast<int64_t>(std::exp(rng_.uniform(lo, hi)));
  const int n_flows = static_cast<int>(rng_.uniform_int(
      cfg_.min_flows_per_page, cfg_.max_flows_per_page));

  for (int i = 0; i < n_flows; ++i) {
    FlowConfig fc;
    fc.id = next_id_++;
    fc.start_time = sim_->now();
    fc.unlimited = false;
    fc.total_bytes = std::max<int64_t>(total_bytes / n_flows, 10'000);
    fc.collect_rtt = false;
    page.flows.push_back(std::make_unique<Flow>(
        sim_, network_, fc,
        factory_(cfg_.seed + static_cast<uint64_t>(fc.id))));
  }
  pages_.push_back(std::move(page));
  ++pages_started_;
}

int64_t WebWorkload::pages_completed() const {
  return static_cast<int64_t>(std::count_if(
      pages_.begin(), pages_.end(), [](const Page& p) {
        return std::all_of(p.flows.begin(), p.flows.end(),
                           [](const auto& f) { return f->completed(); });
      }));
}

Samples WebWorkload::page_load_times_sec() const {
  Samples s;
  for (const Page& p : pages_) {
    TimeNs latest = 0;
    bool complete = true;
    for (const auto& f : p.flows) {
      if (!f->completed()) {
        complete = false;
        break;
      }
      latest = std::max(latest, f->completion_time());
    }
    if (complete && !p.flows.empty()) {
      s.add(to_sec(latest - p.start));
    }
  }
  return s;
}

}  // namespace proteus
