#include "app/bola.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace proteus {

BolaAdaptation::BolaAdaptation(std::vector<double> bitrates_mbps,
                               double buffer_capacity_chunks, double gamma_p)
    : gamma_p_(gamma_p) {
  if (bitrates_mbps.empty()) {
    throw std::invalid_argument("BolaAdaptation: empty ladder");
  }
  if (!std::is_sorted(bitrates_mbps.begin(), bitrates_mbps.end())) {
    throw std::invalid_argument("BolaAdaptation: ladder must ascend");
  }
  const double s1 = bitrates_mbps.front();
  for (double b : bitrates_mbps) {
    sizes_.push_back(b / s1);
    utilities_.push_back(std::log(b / s1));
  }
  // Choose V so that the top rung becomes optimal before the buffer is
  // full: V*(v_M + gamma_p) == Q_max - 1 (BOLA's standard calibration).
  v_ = (buffer_capacity_chunks - 1.0) / (utilities_.back() + gamma_p_);
}

int BolaAdaptation::choose(double buffer_chunks) {
  int best = 0;
  double best_score = -1e300;
  bool any_positive = false;
  for (size_t m = 0; m < sizes_.size(); ++m) {
    const double score =
        (v_ * (utilities_[m] + gamma_p_) - buffer_chunks) / sizes_[m];
    if (score >= 0.0 && score > best_score) {
      best = static_cast<int>(m);
      best_score = score;
      any_positive = true;
    }
  }
  if (!any_positive) {
    // Buffer beyond the pause point: keep the highest quality.
    return static_cast<int>(sizes_.size()) - 1;
  }
  return best;
}

}  // namespace proteus
