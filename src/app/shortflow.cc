#include "app/shortflow.h"

#include <algorithm>
#include <utility>

namespace proteus {

ShortFlowGenerator::ShortFlowGenerator(Simulator* sim, Network* network,
                                       Config cfg, CcFactory factory)
    : sim_(sim),
      network_(network),
      cfg_(cfg),
      factory_(std::move(factory)),
      rng_(cfg.seed),
      next_id_(cfg.first_flow_id) {
  if (cfg_.arrival_rate_per_sec > 0.0) {
    const LifeTag::Ref alive = alive_.ref();
    sim_->schedule_at(cfg_.start_time, [this, alive] {
      if (alive.expired()) return;
      schedule_next_arrival();
    });
  }
}

ShortFlowGenerator::~ShortFlowGenerator() = default;

void ShortFlowGenerator::schedule_next_arrival() {
  const double mean_gap_sec = 1.0 / cfg_.arrival_rate_per_sec;
  const TimeNs gap = from_sec(rng_.exponential(mean_gap_sec));
  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_in(gap, [this, alive] {
    if (alive.expired()) return;
    if (sim_->now() >= cfg_.stop_time) return;
    start_flow();
    schedule_next_arrival();
  });
}

void ShortFlowGenerator::start_flow() {
  FlowConfig fc;
  fc.id = next_id_++;
  fc.start_time = sim_->now();
  fc.unlimited = false;
  fc.total_bytes = rng_.uniform_int(cfg_.min_bytes, cfg_.max_bytes);
  fc.collect_rtt = false;
  flows_.push_back(std::make_unique<Flow>(
      sim_, network_, fc, factory_(cfg_.seed + static_cast<uint64_t>(fc.id))));
  ++flows_started_;
}

int64_t ShortFlowGenerator::flows_completed() const {
  return static_cast<int64_t>(
      std::count_if(flows_.begin(), flows_.end(),
                    [](const auto& f) { return f->completed(); }));
}

Samples ShortFlowGenerator::completion_times_sec() const {
  Samples s;
  for (const auto& f : flows_) {
    if (f->completed()) {
      s.add(to_sec(f->completion_time() - f->config().start_time));
    }
  }
  return s;
}

}  // namespace proteus
