// Bitrate adaptation for the emulated DASH client.
//
// BolaAdaptation implements BOLA (Spiteri, Urgaonkar, Sitaraman 2016), the
// buffer-based algorithm the paper's Proteus-H experiments run: pick the
// bitrate maximizing (V*(v_m + gamma_p) - Q) / s_m, where Q is the buffer
// level in chunks, s_m the relative chunk size, and v_m = ln(s_m/s_1) the
// utility. V is derived from the buffer capacity so the top bitrate is
// reachable when the buffer is comfortably full.
//
// FixedBitrateAdaptation pins the highest (or any) ladder rung — the
// "force the agent at the highest bitrates" experiment (paper Fig 13).
#pragma once

#include <vector>

namespace proteus {

class BitrateAdaptation {
 public:
  virtual ~BitrateAdaptation() = default;
  // `buffer_chunks`: current playback buffer in chunk durations.
  // Returns an index into the bitrate ladder.
  virtual int choose(double buffer_chunks) = 0;
};

class BolaAdaptation final : public BitrateAdaptation {
 public:
  // `bitrates_mbps` ascending; `buffer_capacity_chunks` = Q_max.
  BolaAdaptation(std::vector<double> bitrates_mbps,
                 double buffer_capacity_chunks, double gamma_p = 5.0);

  int choose(double buffer_chunks) override;

  double v_parameter() const { return v_; }

 private:
  std::vector<double> sizes_;      // relative chunk sizes s_m
  std::vector<double> utilities_;  // v_m = ln(s_m / s_1)
  double gamma_p_;
  double v_ = 0.0;
};

class FixedBitrateAdaptation final : public BitrateAdaptation {
 public:
  explicit FixedBitrateAdaptation(int index) : index_(index) {}
  int choose(double) override { return index_; }

 private:
  int index_;
};

}  // namespace proteus
