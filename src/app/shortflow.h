// Poisson cross-traffic generator: short flows with random sizes, each on
// its own congestion controller. Used as the "impending congestion" load
// in Fig 2 (CUBIC flows, 20-100 KB, Poisson arrivals) and reusable for any
// workload of arriving-and-departing flows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/life_tag.h"
#include "stats/percentile.h"
#include "transport/flow.h"

namespace proteus {

class ShortFlowGenerator {
 public:
  using CcFactory =
      std::function<std::unique_ptr<CongestionController>(uint64_t seed)>;

  struct Config {
    double arrival_rate_per_sec = 3.0;  // Poisson rate; 0 = no flows
    int64_t min_bytes = 20'000;
    int64_t max_bytes = 100'000;
    TimeNs start_time = 0;
    TimeNs stop_time = kTimeInfinite;  // no new arrivals after this
    FlowId first_flow_id = 1000;       // ids are allocated upward
    uint64_t seed = 0x5f;
  };

  ShortFlowGenerator(Simulator* sim, Network* network, Config cfg,
                     CcFactory factory);
  ~ShortFlowGenerator();

  int64_t flows_started() const { return flows_started_; }
  int64_t flows_completed() const;
  // Flow completion times (seconds) for completed flows.
  Samples completion_times_sec() const;

 private:
  void schedule_next_arrival();
  void start_flow();

  Simulator* sim_;
  Network* network_;
  Config cfg_;
  CcFactory factory_;
  Rng rng_;
  FlowId next_id_;
  int64_t flows_started_ = 0;
  std::vector<std::unique_ptr<Flow>> flows_;
  LifeTag alive_;
};

}  // namespace proteus
