#include "app/bulk.h"

#include "stats/regression.h"
#include "stats/welford.h"

namespace proteus {

void RttWindowAnalyzer::add_sample(TimeNs when, TimeNs rtt) {
  if (window_start_ < 0) window_start_ = when;
  while (when >= window_start_ + window_) {
    flush_window();
    window_start_ += window_;
  }
  times_sec_.push_back(to_sec(when - window_start_));
  rtts_sec_.push_back(to_sec(rtt));
}

void RttWindowAnalyzer::flush_window() {
  // The paper's windows need a handful of samples to be meaningful.
  if (times_sec_.size() >= 4) {
    Welford w;
    for (double r : rtts_sec_) w.add(r);
    deviations_ms_.add(w.stddev() * 1e3);
    const RegressionResult reg = linear_regression(times_sec_, rtts_sec_);
    if (reg.valid) gradients_.add(std::abs(reg.slope));
  }
  times_sec_.clear();
  rtts_sec_.clear();
}

}  // namespace proteus
