// Web page-load workload (paper Fig 11(b)).
//
// Pages arrive as a Poisson process; each page is a handful of parallel
// flows whose total size is sampled log-uniformly (matching the weight
// spread of popular landing pages). Page load time (PLT) is the latest
// completion among the page's flows.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/life_tag.h"
#include "stats/percentile.h"
#include "transport/flow.h"

namespace proteus {

class WebWorkload {
 public:
  using CcFactory =
      std::function<std::unique_ptr<CongestionController>(uint64_t seed)>;

  struct Config {
    double page_arrival_rate_per_sec = 0.1;  // 1 request / 10 s
    TimeNs start_time = 0;
    TimeNs stop_time = kTimeInfinite;
    int min_flows_per_page = 1;
    int max_flows_per_page = 4;
    int64_t min_page_bytes = 200'000;   // light landing page
    int64_t max_page_bytes = 4'000'000; // heavy landing page
    FlowId first_flow_id = 50'000;
    uint64_t seed = 0x3e8;
  };

  WebWorkload(Simulator* sim, Network* network, Config cfg,
              CcFactory factory);
  ~WebWorkload();

  int64_t pages_started() const { return pages_started_; }
  int64_t pages_completed() const;
  Samples page_load_times_sec() const;

 private:
  struct Page {
    TimeNs start;
    std::vector<std::unique_ptr<Flow>> flows;
  };

  void schedule_next_page();
  void start_page();

  Simulator* sim_;
  Network* network_;
  Config cfg_;
  CcFactory factory_;
  Rng rng_;
  FlowId next_id_;
  int64_t pages_started_ = 0;
  std::vector<Page> pages_;
  LifeTag alive_;
};

}  // namespace proteus
