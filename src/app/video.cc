#include "app/video.h"

#include <algorithm>
#include <cmath>

namespace proteus {

namespace {
constexpr TimeNs kTick = from_ms(100);
}

VideoDefinition make_4k_video(int total_chunks) {
  VideoDefinition v;
  v.bitrates_mbps = {1.0, 2.5, 5.0, 8.0, 16.0, 25.0, 45.0};
  v.chunk_duration_sec = 3.0;
  v.total_chunks = total_chunks;
  return v;
}

VideoDefinition make_1080p_video(int total_chunks) {
  VideoDefinition v;
  v.bitrates_mbps = {0.5, 1.0, 2.0, 3.0, 4.5, 7.0, 10.5};
  v.chunk_duration_sec = 3.0;
  v.total_chunks = total_chunks;
  return v;
}

VideoClient::VideoClient(Simulator* sim, Network* network,
                         VideoClientConfig cfg,
                         std::unique_ptr<CongestionController> cc,
                         std::unique_ptr<BitrateAdaptation> abr,
                         HybridThresholdPolicy* threshold_policy)
    : sim_(sim),
      network_(network),
      cfg_(cfg),
      abr_(std::move(abr)),
      threshold_policy_(threshold_policy) {
  sender_ = std::make_unique<Sender>(sim, network, cfg_.id, std::move(cc));
  receiver_ = std::make_unique<Receiver>(sim, network, cfg_.id);
  network_->attach_flow(cfg_.id, receiver_.get(), sender_.get());
  sender_->set_on_all_delivered([this] { on_chunk_complete(); });

  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_at(std::max(cfg_.start_time, sim_->now()), [this, alive] {
    if (alive.expired()) return;
    last_advance_ = sim_->now();
    sender_->start();
    maybe_request_chunk();
    tick();
  });
}

VideoClient::~VideoClient() {
  network_->detach_flow(cfg_.id);
}

void VideoClient::tick() {
  advance_playback();
  maybe_request_chunk();
  const LifeTag::Ref alive = alive_.ref();
  sim_->schedule_in(kTick, [this, alive] {
    if (alive.expired()) return;
    tick();
  });
}

void VideoClient::advance_playback() {
  const TimeNs now = sim_->now();
  const double elapsed = to_sec(now - last_advance_);
  last_advance_ = now;
  if (elapsed <= 0.0) return;

  if (!started_playing_) {
    if (buffer_sec_ >= cfg_.startup_buffer_sec) {
      started_playing_ = true;
    } else {
      return;  // startup delay is not counted as rebuffering
    }
  }

  if (rebuffering_) {
    stall_time_sec_ += elapsed;
    return;
  }

  const double consumed = std::min(buffer_sec_, elapsed);
  buffer_sec_ -= consumed;
  play_time_sec_ += consumed;
  const double starved = elapsed - consumed;
  const bool video_done =
      next_chunk_ >= cfg_.video.total_chunks && !chunk_in_flight_;
  if (starved > 0.0 && !video_done) {
    rebuffering_ = true;
    ++rebuffer_events_;
    stall_time_sec_ += starved;
    if (threshold_policy_ != nullptr) threshold_policy_->on_rebuffer_start();
  }
}

double VideoClient::free_chunks() const {
  return (cfg_.buffer_capacity_sec - buffer_sec_) /
         cfg_.video.chunk_duration_sec;
}

void VideoClient::maybe_request_chunk() {
  if (chunk_in_flight_ || next_chunk_ >= cfg_.video.total_chunks) return;
  // Client-side flow control: only request when there is room for the
  // next chunk in the playback buffer.
  if (buffer_sec_ + cfg_.video.chunk_duration_sec >
      cfg_.buffer_capacity_sec) {
    return;
  }

  const double buffer_chunks = buffer_sec_ / cfg_.video.chunk_duration_sec;
  current_bitrate_index_ = std::clamp(
      abr_->choose(buffer_chunks), 0,
      static_cast<int>(cfg_.video.bitrates_mbps.size()) - 1);
  const double bitrate =
      cfg_.video.bitrates_mbps[static_cast<size_t>(current_bitrate_index_)];

  if (threshold_policy_ != nullptr) {
    threshold_policy_->on_chunk_request(cfg_.video.bitrates_mbps.back(),
                                        bitrate, free_chunks());
  }

  const auto bytes = static_cast<int64_t>(
      bitrate * 1e6 / 8.0 * cfg_.video.chunk_duration_sec);
  chunk_in_flight_ = true;
  sender_->offer_bytes(bytes);
}

void VideoClient::on_chunk_complete() {
  advance_playback();
  chunk_in_flight_ = false;
  downloaded_bitrates_.push_back(
      cfg_.video.bitrates_mbps[static_cast<size_t>(current_bitrate_index_)]);
  ++next_chunk_;
  buffer_sec_ += cfg_.video.chunk_duration_sec;

  if (rebuffering_ && buffer_sec_ >= cfg_.resume_buffer_sec) {
    rebuffering_ = false;
    if (threshold_policy_ != nullptr) threshold_policy_->on_rebuffer_end();
  }
  maybe_request_chunk();
}

VideoMetrics VideoClient::metrics() const {
  VideoMetrics m;
  m.chunks_downloaded = static_cast<int>(downloaded_bitrates_.size());
  for (double b : downloaded_bitrates_) m.average_chunk_bitrate_mbps += b;
  if (m.chunks_downloaded > 0) {
    m.average_chunk_bitrate_mbps /= m.chunks_downloaded;
  }
  m.play_time_sec = play_time_sec_;
  m.stall_time_sec = stall_time_sec_;
  const double denom = play_time_sec_ + stall_time_sec_;
  m.rebuffer_ratio = denom > 0.0 ? stall_time_sec_ / denom : 0.0;
  m.rebuffer_events = rebuffer_events_;
  m.finished_download = next_chunk_ >= cfg_.video.total_chunks;
  return m;
}

}  // namespace proteus
