// Fig 13: same video matrix with the agent forced to the highest
// bitrate, bandwidth 90-140 Mbps.
//
// Paper result: Proteus-H keeps rebuffering consistently lower (e.g.
// -34% for 4K at 110 Mbps).
#include "bench/hybrid_video.h"

int main() {
  proteus::bench::print_header(
      "Figure 13", "Hybrid mode, bitrate forced to the top rung");
  run_figure(true, {90, 100, 110, 120, 130, 140});
  std::printf("\nPaper shape check: Proteus-H rebuffer ratios stay below "
              "Proteus-P across the sweep.\n");
  return 0;
}
