// Fig 8: CDF of primary throughput ratio across 180 bottleneck
// configurations — bandwidth {20,50,100,200,300,500} Mbps x RTT
// {5,10,30,60,100,200} ms x buffer {0.2,0.5,1,2,5} BDP — for primaries
// {BBR, CUBIC, Proteus-P} against scavengers {Proteus-S, LEDBAT}.
//
// Paper result (medians): BBR/CUBIC/Proteus-P achieve 7.8% / 28% / 2.8x
// higher throughput against Proteus-S than against LEDBAT.
#include <array>
#include <map>

#include "bench/bench_util.h"
#include "stats/percentile.h"

using namespace proteus;

int main(int argc, char** argv) {
  const bench::SweepOptions opt = bench::parse_sweep_flags(argc, argv, "fig08");
  bench::print_header("Figure 8",
                      "Primary throughput ratio CDF over 180 configurations");

  const double bws[] = {20, 50, 100, 200, 300, 500};
  const double rtts[] = {5, 10, 30, 60, 100, 200};
  const double bdps[] = {0.2, 0.5, 1.0, 2.0, 5.0};
  const std::vector<std::string> primaries = {"bbr", "cubic", "proteus-p"};
  const std::vector<std::string> scavengers = {"proteus-s", "ledbat"};
  const TimeNs duration = from_sec(20);
  const TimeNs warmup = from_sec(8);

  // One task per (configuration, primary): the "alone" baseline is shared
  // by both scavenger runs, so all three simulations stay in one task.
  std::vector<SupervisedTask<std::array<double, 2>>> tasks;
  int config_idx = 0;
  for (double bw : bws) {
    for (double rtt : rtts) {
      for (double bdp : bdps) {
        ++config_idx;
        ScenarioConfig cfg;
        cfg.bandwidth_mbps = bw;
        cfg.rtt_ms = rtt;
        cfg.buffer_bytes =
            std::max<int64_t>(static_cast<int64_t>(cfg.bdp_bytes() * bdp),
                              2 * kMtuBytes);
        cfg.seed = 100 + static_cast<uint64_t>(config_idx);
        for (const std::string& prim : primaries) {
          tasks.push_back(bench::sweep_point<std::array<double, 2>>(
              "bw=" + fmt(bw, 0) + " rtt=" + fmt(rtt, 0) + " bdp=" +
                  fmt(bdp, 1) + " primary=" + prim,
              cfg,
              [cfg, prim, scavengers, duration,
               warmup](RunContext& ctx) {
                ScenarioConfig base = cfg;
                base.seed = ctx.attempt_seed(cfg.seed);
                double alone;
                {
                  Scenario sc(base);
                  Flow& p = sc.add_flow(prim, 0);
                  supervised_run_until(sc, duration, &ctx);
                  check_invariants_or_throw(sc);
                  alone = p.mean_throughput_mbps(warmup, duration);
                }
                std::array<double, 2> ratios{};
                for (size_t s = 0; s < scavengers.size(); ++s) {
                  ScenarioConfig cfg2 = base;
                  cfg2.seed = base.seed + 0x51;
                  Scenario sc(cfg2);
                  Flow& p = sc.add_flow(prim, 0);
                  sc.add_flow(scavengers[s], from_sec(3));
                  supervised_run_until(sc, duration, &ctx);
                  check_invariants_or_throw(sc);
                  const double with_scav =
                      p.mean_throughput_mbps(warmup, duration);
                  ratios[s] = alone > 0 ? with_scav / alone : 0.0;
                }
                return ratios;
              }));
        }
      }
    }
  }
  const std::vector<std::array<double, 2>> results = bench::run_sweep(
      opt, std::move(tasks),
      codec_from<std::array<double, 2>>(
          [](const std::array<double, 2>& r) {
            return std::vector<double>{r[0], r[1]};
          },
          [](const std::vector<double>& v) {
            std::array<double, 2> r{};
            if (v.size() >= 2) { r[0] = v[0]; r[1] = v[1]; }
            return r;
          }));

  // ratios[primary][scavenger], filled in serial task order.
  std::map<std::string, std::map<std::string, Samples>> ratios;
  size_t k = 0;
  for (int c = 0; c < config_idx; ++c) {
    for (const std::string& prim : primaries) {
      const std::array<double, 2>& r = results[k++];
      for (size_t s = 0; s < scavengers.size(); ++s) {
        ratios[prim][scavengers[s]].add(r[s]);
      }
    }
  }

  Table t({"primary", "scavenger", "p10", "p25", "median", "p75", "p90"});
  for (const std::string& prim : primaries) {
    for (const std::string& scav : scavengers) {
      const Samples& s = ratios[prim][scav];
      t.add_row({prim, scav, fmt(s.percentile(10), 2),
                 fmt(s.percentile(25), 2), fmt(s.median(), 2),
                 fmt(s.percentile(75), 2), fmt(s.percentile(90), 2)});
    }
  }
  t.print();

  std::printf("\nMedian gain of Proteus-S over LEDBAT per primary:\n");
  for (const std::string& prim : primaries) {
    const double vs_proteus = ratios[prim]["proteus-s"].median();
    const double vs_ledbat = ratios[prim]["ledbat"].median();
    std::printf("  %-10s %.2f vs %.2f  (%.1f%% higher; paper: %s)\n",
                prim.c_str(), vs_proteus, vs_ledbat,
                (vs_proteus / std::max(vs_ledbat, 1e-9) - 1.0) * 100.0,
                prim == "bbr"     ? "+7.8%"
                : prim == "cubic" ? "+28%"
                                  : "+180%");
  }
  return bench::exit_code();
}
