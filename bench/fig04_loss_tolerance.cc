// Fig 4 (and Fig 16 with LEDBAT-25): throughput under random
// (non-congestion) loss.
//
// Paper setup: 50 Mbps, 30 ms, 375 KB buffer, loss 0..6%.
// Paper result: Proteus/Vivace tolerate up to ~5% (the c coefficient's
// design point); LEDBAT collapses even at 0.001%; COPA/BBR are insensitive
// because they do not react to individual losses.
#include "bench/bench_util.h"

using namespace proteus;

int main(int argc, char** argv) {
  const bench::SweepOptions opt = bench::parse_sweep_flags(argc, argv, "fig04");
  bench::print_header("Figure 4 / Figure 16",
                      "Random-loss tolerance (throughput, Mbps)");

  const std::vector<double> losses = {0.0,   1e-5, 1e-4, 1e-3, 0.01,
                                      0.02,  0.03, 0.04, 0.05, 0.06};
  const std::vector<std::string> protocols = {
      "proteus-s", "ledbat", "ledbat-25", "cubic",
      "bbr",       "proteus-p", "copa",   "vivace"};

  std::vector<SupervisedTask<double>> tasks;
  for (double loss : losses) {
    for (const std::string& proto : protocols) {
      ScenarioConfig cfg = bench::emulab_link(23);
      cfg.random_loss = loss;
      tasks.push_back(bench::sweep_point<double>(
          "loss=" + fmt(loss * 100.0, 3) + "% proto=" + proto, cfg,
          [cfg, proto](RunContext& ctx) {
            ScenarioConfig run_cfg = cfg;
            run_cfg.seed = ctx.attempt_seed(cfg.seed);
            return run_single_flow(proto, run_cfg, from_sec(60), from_sec(20),
                                   &ctx)
                .throughput_mbps;
          }));
    }
  }
  const std::vector<double> tputs =
      bench::run_sweep(opt, std::move(tasks), scalar_codec());

  Table t({"loss_rate", "proteus-s", "ledbat", "ledbat-25", "cubic", "bbr",
           "proteus-p", "copa", "vivace"});
  size_t k = 0;
  for (double loss : losses) {
    std::vector<std::string> row{fmt(loss * 100.0, 3) + "%"};
    for (size_t p = 0; p < protocols.size(); ++p) {
      row.push_back(fmt(tputs[k++], 1));
    }
    t.add_row(row);
  }
  t.print();
  std::printf(
      "\nPaper shape check: LEDBAT degrades by ~50%% at 0.001%% loss; "
      "Proteus-P holds high throughput through 5%%.\n");
  return bench::exit_code();
}
