// Fig 11: application performance with a background scavenger sharing a
// ~100 Mbps access link.
//  (a) DASH video (BOLA over CUBIC transport): mean chunk bitrate for
//      1/2/4/8 concurrent videos with background in
//      {none, proteus-s, ledbat, cubic}.
//  (b) Web page loads (Poisson 1 page / 10 s over CUBIC): PLT CDF.
//
// Paper result: with 8 videos, Proteus-S in the background gives 2.5x the
// bitrate LEDBAT allows; pages load 33% faster (mean) than with LEDBAT.
#include <memory>

#include "app/bola.h"
#include "app/video.h"
#include "app/web.h"
#include "bench/bench_util.h"

using namespace proteus;

namespace {

ScenarioConfig access_link(uint64_t seed) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 750'000;
  cfg.seed = seed;
  return cfg;
}

double run_videos(int n_videos, const std::string& background,
                  uint64_t seed) {
  Scenario sc(access_link(seed));
  if (background != "none") sc.add_flow(background, 0);

  std::vector<std::unique_ptr<VideoClient>> clients;
  for (int i = 0; i < n_videos; ++i) {
    VideoClientConfig vc;
    vc.video = make_1080p_video(60);
    vc.id = sc.allocate_flow_id();
    vc.start_time = from_sec(5);
    clients.push_back(std::make_unique<VideoClient>(
        &sc.sim(), &sc.dumbbell(), vc,
        make_protocol("cubic", sc.flow_seed(vc.id)),
        std::make_unique<BolaAdaptation>(
            vc.video.bitrates_mbps,
            vc.buffer_capacity_sec / vc.video.chunk_duration_sec)));
  }
  sc.run_until(from_sec(125));
  double sum = 0.0;
  for (const auto& c : clients) sum += c->metrics().average_chunk_bitrate_mbps;
  return sum / n_videos;
}

Samples run_web(const std::string& background, uint64_t seed) {
  Scenario sc(access_link(seed));
  if (background != "none") sc.add_flow(background, 0);
  WebWorkload::Config wc;
  wc.page_arrival_rate_per_sec = 0.1;
  wc.stop_time = from_sec(280);
  wc.seed = seed ^ 0x17;
  WebWorkload web(&sc.sim(), &sc.dumbbell(), wc, [](uint64_t s) {
    return make_protocol("cubic", s);
  });
  sc.run_until(from_sec(320));
  return web.page_load_times_sec();
}

}  // namespace

int main(int argc, char** argv) {
  const int jobs = bench::parse_jobs(argc, argv);
  bench::print_header("Figure 11",
                      "Applications with a background scavenger");

  const std::vector<std::string> backgrounds = {"none", "proteus-s",
                                                "ledbat", "cubic"};
  const std::vector<int> video_counts = {1, 2, 4, 8};

  std::vector<std::function<double()>> video_tasks;
  for (int n : video_counts) {
    for (const std::string& bg : backgrounds) {
      video_tasks.push_back([n, bg] { return run_videos(n, bg, 61); });
    }
  }
  std::vector<std::function<Samples()>> web_tasks;
  for (const std::string& bg : backgrounds) {
    web_tasks.push_back([bg] { return run_web(bg, 67); });
  }
  const std::vector<double> bitrates =
      run_parallel(std::move(video_tasks), jobs);
  const std::vector<Samples> plts = run_parallel(std::move(web_tasks), jobs);

  std::printf("(a) DASH mean chunk bitrate (Mbps)\n");
  Table video({"videos", "none", "+proteus-s", "+ledbat", "+cubic"});
  size_t k = 0;
  for (int n : video_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for (size_t b = 0; b < backgrounds.size(); ++b) {
      row.push_back(fmt(bitrates[k++], 2));
    }
    video.add_row(row);
  }
  video.print();

  std::printf("\n(b) Page load time (seconds)\n");
  Table web({"background", "median_plt", "mean_plt", "p90_plt", "pages"});
  for (size_t b = 0; b < backgrounds.size(); ++b) {
    const Samples& plt = plts[b];
    web.add_row({backgrounds[b], fmt(plt.median(), 2), fmt(plt.mean(), 2),
                 fmt(plt.percentile(90), 2),
                 std::to_string(plt.count())});
  }
  web.print();
  std::printf(
      "\nPaper shape check: proteus-s background ~= no background for both "
      "apps; ledbat hurts both (2.5x lower video bitrate at 8 videos, "
      "~33%% slower pages); cubic background worst.\n");
  return 0;
}
