// Fig 11: application performance with a background scavenger sharing a
// ~100 Mbps access link.
//  (a) DASH video (BOLA over CUBIC transport): mean chunk bitrate for
//      1/2/4/8 concurrent videos with background in
//      {none, proteus-s, ledbat, cubic}.
//  (b) Web page loads (Poisson 1 page / 10 s over CUBIC): PLT CDF.
//
// Paper result: with 8 videos, Proteus-S in the background gives 2.5x the
// bitrate LEDBAT allows; pages load 33% faster (mean) than with LEDBAT.
#include <memory>

#include "app/bola.h"
#include "app/video.h"
#include "app/web.h"
#include "bench/bench_util.h"

using namespace proteus;

namespace {

ScenarioConfig access_link(uint64_t seed) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 750'000;
  cfg.seed = seed;
  return cfg;
}

double run_videos(int n_videos, const std::string& background, uint64_t seed,
                  RunContext* ctx) {
  Scenario sc(access_link(seed));
  if (background != "none") sc.add_flow(background, 0);

  std::vector<std::unique_ptr<VideoClient>> clients;
  for (int i = 0; i < n_videos; ++i) {
    VideoClientConfig vc;
    vc.video = make_1080p_video(60);
    vc.id = sc.allocate_flow_id();
    vc.start_time = from_sec(5);
    clients.push_back(std::make_unique<VideoClient>(
        &sc.sim(), &sc.dumbbell(), vc,
        make_protocol("cubic", sc.flow_seed(vc.id)),
        std::make_unique<BolaAdaptation>(
            vc.video.bitrates_mbps,
            vc.buffer_capacity_sec / vc.video.chunk_duration_sec)));
  }
  supervised_run_until(sc, from_sec(125), ctx);
  if (ctx) check_invariants_or_throw(sc);
  double sum = 0.0;
  for (const auto& c : clients) sum += c->metrics().average_chunk_bitrate_mbps;
  return sum / n_videos;
}

Samples run_web(const std::string& background, uint64_t seed,
                RunContext* ctx) {
  Scenario sc(access_link(seed));
  if (background != "none") sc.add_flow(background, 0);
  WebWorkload::Config wc;
  wc.page_arrival_rate_per_sec = 0.1;
  wc.stop_time = from_sec(280);
  wc.seed = seed ^ 0x17;
  WebWorkload web(&sc.sim(), &sc.dumbbell(), wc, [](uint64_t s) {
    return make_protocol("cubic", s);
  });
  supervised_run_until(sc, from_sec(320), ctx);
  if (ctx) check_invariants_or_throw(sc);
  return web.page_load_times_sec();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::SweepOptions base =
      bench::parse_sweep_flags(argc, argv, "fig11");
  bench::print_header("Figure 11",
                      "Applications with a background scavenger");

  const std::vector<std::string> backgrounds = {"none", "proteus-s",
                                                "ledbat", "cubic"};
  const std::vector<int> video_counts = {1, 2, 4, 8};

  // This bench runs two sweeps; each gets its own sweep name / journal.
  // --only uses a single global index: video points first, then web.
  std::vector<SupervisedTask<double>> video_tasks;
  for (int n : video_counts) {
    for (const std::string& bg : backgrounds) {
      RunInfo info = run_info(
          "videos=" + std::to_string(n) + " background=" + bg,
          access_link(61));
      video_tasks.push_back({[n, bg](RunContext& ctx) {
                               return run_videos(n, bg, ctx.attempt_seed(61),
                                                 &ctx);
                             },
                             std::move(info)});
    }
  }
  std::vector<SupervisedTask<Samples>> web_tasks;
  for (const std::string& bg : backgrounds) {
    RunInfo info = run_info("web background=" + bg, access_link(67));
    web_tasks.push_back({[bg](RunContext& ctx) {
                           return run_web(bg, ctx.attempt_seed(67), &ctx);
                         },
                         std::move(info)});
  }
  const size_t n_video = video_tasks.size();
  for (size_t i = 0; i < video_tasks.size(); ++i) {
    video_tasks[i].info.cli =
        base.argv0 + " --only=" + std::to_string(i) + " --jobs=1";
  }
  for (size_t i = 0; i < web_tasks.size(); ++i) {
    web_tasks[i].info.cli =
        base.argv0 + " --only=" + std::to_string(n_video + i) + " --jobs=1";
  }

  const ResultCodec<Samples> samples_codec = codec_from<Samples>(
      [](const Samples& s) { return s.raw(); },
      [](const std::vector<double>& v) {
        Samples s;
        s.add_all(v);
        return s;
      });
  bench::SweepOptions vopt = bench::sub_sweep(base, "video");
  bench::SweepOptions wopt = bench::sub_sweep(base, "web");
  if (base.only >= 0) {
    // run_sweep exits after a single-point rerun; route the global index
    // to the sweep that owns it.
    if (base.only < static_cast<int64_t>(n_video)) {
      bench::run_sweep(vopt, std::move(video_tasks), scalar_codec());
    } else {
      wopt.only = base.only - static_cast<int64_t>(n_video);
      bench::run_sweep(wopt, std::move(web_tasks), samples_codec);
    }
  }
  const std::vector<double> bitrates =
      bench::run_sweep(vopt, std::move(video_tasks), scalar_codec());
  const std::vector<Samples> plts =
      bench::run_sweep(wopt, std::move(web_tasks), samples_codec);

  std::printf("(a) DASH mean chunk bitrate (Mbps)\n");
  Table video({"videos", "none", "+proteus-s", "+ledbat", "+cubic"});
  size_t k = 0;
  for (int n : video_counts) {
    std::vector<std::string> row{std::to_string(n)};
    for (size_t b = 0; b < backgrounds.size(); ++b) {
      row.push_back(fmt(bitrates[k++], 2));
    }
    video.add_row(row);
  }
  video.print();

  std::printf("\n(b) Page load time (seconds)\n");
  Table web({"background", "median_plt", "mean_plt", "p90_plt", "pages"});
  for (size_t b = 0; b < backgrounds.size(); ++b) {
    const Samples& plt = plts[b];
    web.add_row({backgrounds[b], fmt(plt.median(), 2), fmt(plt.mean(), 2),
                 fmt(plt.percentile(90), 2),
                 std::to_string(plt.count())});
  }
  web.print();
  std::printf(
      "\nPaper shape check: proteus-s background ~= no background for both "
      "apps; ledbat hurts both (2.5x lower video bitrate at 8 videos, "
      "~33%% slower pages); cubic background worst.\n");
  return bench::exit_code();
}
