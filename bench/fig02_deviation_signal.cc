// Fig 2: PDF of RTT deviation / |RTT gradient| observed by a 20 Mbps
// fixed-rate UDP probe under Poisson-arriving short CUBIC flows, plus the
// confusion probability between the congested and idle conditions.
//
// Paper setup: 100 Mbps, 60 ms RTT, 1500 KB (2 BDP) buffer; flow sizes
// uniform in [20, 100] KB; arrival rates 0/3/6/9 flows/s; 1.5 RTT windows.
// Paper result: RTT deviation separates cleanly (confusion 0.6%) while
// RTT gradient does not (8.0%).
#include <memory>

#include "app/bulk.h"
#include "app/shortflow.h"
#include "bench/bench_util.h"
#include "harness/scenario.h"
#include "stats/histogram.h"

using namespace proteus;

namespace {

struct ProbeResult {
  Samples deviations_ms;
  Samples gradients;
};

ProbeResult run_probe(double arrival_rate, uint64_t seed) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.rtt_ms = 60.0;
  cfg.buffer_bytes = 1'500'000;
  cfg.seed = seed;
  // Light ambient channel noise, as on the paper's real Emulab testbed:
  // without it the idle condition's deviation is exactly zero and the
  // confusion metric degenerates.
  cfg.wifi_noise = true;
  cfg.wifi.jitter_stddev = from_us(60);
  cfg.wifi.spike_probability = 0.0;
  Scenario sc(cfg);

  ShortFlowGenerator::Config sfc;
  sfc.arrival_rate_per_sec = arrival_rate;
  sfc.min_bytes = 20'000;
  sfc.max_bytes = 100'000;
  sfc.seed = seed ^ 0x5f5f;
  ShortFlowGenerator cross(&sc.sim(), &sc.dumbbell(), sfc, [](uint64_t s) {
    return make_protocol("cubic", s);
  });

  Flow& probe = sc.add_flow_with_cc(
      std::make_unique<FixedRateController>(Bandwidth::from_mbps(20)), 0);
  RttWindowAnalyzer analyzer(from_ms(90));  // 1.5 * RTT
  probe.sender().set_on_ack([&](const AckInfo& info) {
    if (info.ack_time > from_sec(5)) {
      analyzer.add_sample(info.ack_time, info.rtt);
    }
  });

  sc.run_until(from_sec(120));
  ProbeResult r;
  r.deviations_ms = analyzer.deviations_ms();
  r.gradients = analyzer.gradient_magnitudes();
  return r;
}

void print_pdf(const char* title, const Samples& samples, double lo,
               double hi, int bins) {
  Histogram h(lo, hi, bins);
  for (double v : samples.raw()) h.add(v);
  std::printf("  %s (n=%lld): ", title,
              static_cast<long long>(samples.count()));
  for (double p : h.pdf()) std::printf("%5.1f%% ", p * 100.0);
  std::printf("\n");
}

}  // namespace

int main() {
  bench::print_header("Figure 2",
                      "RTT deviation vs gradient as competition signal");

  ProbeResult idle;
  ProbeResult loaded[3];
  const double rates[] = {3.0, 6.0, 9.0};
  idle = run_probe(0.0, 42);
  for (int i = 0; i < 3; ++i) loaded[i] = run_probe(rates[i], 42);

  std::printf("(a) RTT deviation PDF, bins over [0, 1.4] ms\n");
  print_pdf("0 flows/s", idle.deviations_ms, 0.0, 1.4, 7);
  for (int i = 0; i < 3; ++i) {
    char label[32];
    std::snprintf(label, sizeof label, "%.0f flows/s", rates[i]);
    print_pdf(label, loaded[i].deviations_ms, 0.0, 1.4, 7);
  }

  std::printf("(b) |RTT gradient| PDF, bins over [0, 0.02]\n");
  print_pdf("0 flows/s", idle.gradients, 0.0, 0.02, 7);
  for (int i = 0; i < 3; ++i) {
    char label[32];
    std::snprintf(label, sizeof label, "%.0f flows/s", rates[i]);
    print_pdf(label, loaded[i].gradients, 0.0, 0.02, 7);
  }

  const double conf_dev =
      confusion_probability(loaded[2].deviations_ms, idle.deviations_ms);
  const double conf_grad =
      confusion_probability(loaded[2].gradients, idle.gradients);
  std::printf("\nConfusion probability (9 flows/s vs 0 flows/s):\n");
  std::printf("  RTT deviation : %5.2f%%   (paper: 0.6%%)\n",
              conf_dev * 100.0);
  std::printf("  RTT gradient  : %5.2f%%   (paper: 8.0%%)\n",
              conf_grad * 100.0);
  std::printf("  deviation is the earlier/cleaner signal: %s\n",
              conf_dev < conf_grad ? "YES" : "NO");
  return 0;
}
