// Parking-lot topology bench (multi-bottleneck contention; PCC's
// multi-link fairness setup rather than a figure from the Proteus paper).
//
// One long flow of the protocol under test crosses `arms` bottleneck hops
// end to end while a CUBIC crossing flow loads each hop. The classic
// question: how much does the long flow keep against per-hop contention,
// and does a scavenger yield on every hop at once? Each sweep point also
// writes the per-hop LinkStats table (fig_parkinglot_<proto>_arms<N>.csv,
// leading `link` column) for offline inspection.
//
// Accepts the standard sweep flags (--jobs, --retries, --checkpoint,
// --telemetry, ... — see bench_util.h).
#include "bench/bench_util.h"

#include "harness/invariants.h"
#include "harness/telemetry_export.h"
#include "harness/trace_export.h"

using namespace proteus;

namespace {

constexpr double kDurationSec = 60.0;
constexpr double kWarmupSec = 20.0;

// Flat point result: [long_mbps, cross_mean_mbps, util_hop0...], sized by
// the point's hop count (vector_codec handles the variable length).
std::vector<double> run_point(const std::string& protocol, int arms,
                              RunContext& ctx) {
  ScenarioConfig cfg = bench::emulab_link(29);
  cfg.seed = ctx.attempt_seed(cfg.seed);
  cfg.topology.kind = TopologyKind::kParkingLot;
  cfg.topology.arms = arms;
  Scenario sc(cfg);

  // Flow 0 takes path 0 (end to end); the next `arms` flows land on the
  // crossing paths round-robin, one per hop, staggered by a second.
  Flow& long_flow = sc.add_flow(protocol, 0);
  std::vector<Flow*> cross;
  for (int i = 0; i < arms; ++i) {
    cross.push_back(&sc.add_flow("cubic", from_sec(1 + i)));
  }

  FlowTelemetrySession telemetry(&ctx, long_flow,
                                 protocol + "-arms" + std::to_string(arms));
  supervised_run_until(sc, from_sec(kDurationSec), &ctx);
  check_invariants_or_throw(sc);

  write_link_stats_csv(
      "fig_parkinglot_" + protocol + "_arms" + std::to_string(arms) + ".csv",
      sc.topology().link_stats());

  std::vector<double> out;
  out.push_back(long_flow.mean_throughput_mbps(from_sec(kWarmupSec),
                                               from_sec(kDurationSec)));
  double cross_sum = 0.0;
  for (Flow* f : cross) {
    cross_sum += f->mean_throughput_mbps(from_sec(kWarmupSec),
                                         from_sec(kDurationSec));
  }
  out.push_back(cross_sum / arms);
  for (int i = 0; i < sc.topology().link_count(); ++i) {
    const LinkStats& st = sc.topology().link(i).stats();
    out.push_back(static_cast<double>(st.delivered_bytes) * 8.0 /
                  (kDurationSec * 1e6) / cfg.bandwidth_mbps);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::SweepOptions opt =
      bench::parse_sweep_flags(argc, argv, "fig_parkinglot");
  bench::print_header("Parking lot",
                      "Long flow vs per-hop crossing CUBIC over N "
                      "bottlenecks (50 Mbps hops, 30 ms end-to-end RTT)");

  const std::vector<int> arm_counts = {3, 5};
  const std::vector<std::string> protocols = {"proteus-s", "ledbat", "cubic",
                                              "bbr"};

  std::vector<SupervisedTask<std::vector<double>>> tasks;
  for (int arms : arm_counts) {
    for (const std::string& proto : protocols) {
      ScenarioConfig cfg = bench::emulab_link(29);
      cfg.topology.kind = TopologyKind::kParkingLot;
      cfg.topology.arms = arms;
      tasks.push_back(bench::sweep_point<std::vector<double>>(
          "arms=" + std::to_string(arms) + " proto=" + proto, cfg,
          [proto, arms](RunContext& ctx) { return run_point(proto, arms, ctx); }));
    }
  }
  const std::vector<std::vector<double>> results =
      bench::run_sweep(opt, std::move(tasks), vector_codec());

  Table t({"arms", "protocol", "long_mbps", "cross_mean_mbps", "util_hop0",
           "util_min", "util_max"});
  size_t k = 0;
  for (int arms : arm_counts) {
    for (const std::string& proto : protocols) {
      const std::vector<double>& r = results[k++];
      if (r.size() < static_cast<size_t>(2 + arms)) {
        t.add_row({std::to_string(arms), proto, "-", "-", "-", "-", "-"});
        continue;
      }
      double lo = r[2], hi = r[2];
      for (int i = 0; i < arms; ++i) {
        lo = std::min(lo, r[2 + i]);
        hi = std::max(hi, r[2 + i]);
      }
      t.add_row({std::to_string(arms), proto, fmt(r[0], 2), fmt(r[1], 2),
                 fmt(r[2], 2), fmt(lo, 2), fmt(hi, 2)});
    }
  }
  t.print();
  std::printf(
      "\nShape check: the long flow shares every hop, so it ends below any "
      "single crossing flow (RTT-proportional for loss-based protocols); a "
      "scavenger long flow yields on all hops at once. Per-hop counters in "
      "fig_parkinglot_<proto>_arms<N>.csv.\n");
  return bench::exit_code();
}
