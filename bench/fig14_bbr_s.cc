// Fig 14: extending RTT deviation beyond PCC — BBR-S (kernel BBR forced
// into min-RTT probing when smoothed RTT deviation spikes) competing with
// BBR, CUBIC, and itself. Throughput-vs-time on the 50 Mbps Emulab link.
//
// Paper result: BBR-S yields to BBR and CUBIC but shares fairly with
// another BBR-S.
#include "bench/bench_util.h"

using namespace proteus;

namespace {

void run_scene(const char* title, const std::string& first,
               const std::string& second) {
  ScenarioConfig cfg = bench::emulab_link(83);
  const auto series = run_time_series({first, second}, cfg, from_sec(10),
                                      from_sec(200));
  std::printf("\n%s (10 s bins, Mbps)\n", title);
  Table t({"t_sec", first + "(0s)", second + "(10s)"});
  for (size_t bin = 0; bin + 10 <= series[0].size(); bin += 10) {
    double a = 0, b = 0;
    for (size_t i = bin; i < bin + 10; ++i) {
      a += series[0][i] / 10.0;
      b += series[1][i] / 10.0;
    }
    t.add_row({std::to_string(bin), fmt(a, 1), fmt(b, 1)});
  }
  t.print();
  double a_mean = 0, b_mean = 0;
  for (size_t i = 50; i < series[0].size(); ++i) {
    a_mean += series[0][i];
    b_mean += series[1][i];
  }
  a_mean /= (series[0].size() - 50);
  b_mean /= (series[1].size() - 50);
  std::printf("steady-state means: %s %.1f Mbps, %s %.1f Mbps\n",
              first.c_str(), a_mean, second.c_str(), b_mean);
}

}  // namespace

int main() {
  bench::print_header("Figure 14", "BBR-S: RTT deviation beyond PCC");
  run_scene("BBR vs BBR-S (BBR-S should yield)", "bbr", "bbr-s");
  run_scene("CUBIC vs BBR-S (BBR-S should yield)", "cubic", "bbr-s");
  run_scene("BBR-S vs BBR-S (fair share)", "bbr-s", "bbr-s");
  return 0;
}
