// Fig 5 (and Fig 17 with LEDBAT-25): Jain's fairness index of n
// same-protocol flows, n = 2..10.
//
// Paper setup: 20n Mbps, 30 ms RTT, 300n KB buffer; flows start 20 s
// apart; measured for 200 s after the last start (shortened to 120 s
// here).
// Paper result: everything except LEDBAT holds ~0.99; Proteus-S >= 0.90;
// LEDBAT dips (latecomer advantage) then recovers at large n; LEDBAT-25
// is worse still.
#include "bench/bench_util.h"
#include "stats/jain.h"

using namespace proteus;

namespace {

FairnessResult run_short(const std::string& protocol, int n, uint64_t seed,
                         RunContext* ctx) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 20.0 * n;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 300'000LL * n;
  cfg.seed = seed;
  Scenario sc(cfg);
  std::vector<Flow*> flows;
  for (int i = 0; i < n; ++i) {
    flows.push_back(&sc.add_flow(protocol, from_sec(20.0 * i)));
  }
  const TimeNs start = from_sec(20.0 * n);
  const TimeNs end = start + from_sec(120);
  supervised_run_until(sc, end, ctx);
  if (ctx) check_invariants_or_throw(sc);
  FairnessResult r;
  for (Flow* f : flows) r.flow_mbps.push_back(f->mean_throughput_mbps(start, end));
  r.jain = jain_index(r.flow_mbps);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::SweepOptions opt = bench::parse_sweep_flags(argc, argv, "fig05");
  bench::print_header("Figure 5 / Figure 17",
                      "Jain's fairness index vs number of flows");

  const std::vector<std::string> protocols = {
      "proteus-s", "ledbat", "ledbat-25", "cubic",
      "bbr",       "proteus-p", "copa",   "vivace"};

  std::vector<SupervisedTask<double>> tasks;
  for (int n = 2; n <= 10; ++n) {
    for (const std::string& proto : protocols) {
      RunInfo info;
      info.name = "n=" + std::to_string(n) + " proto=" + proto;
      info.seed = 31;
      info.scenario = "fairness grid: 20n Mbps, 30 ms, 300n KB";
      tasks.push_back({[proto, n](RunContext& ctx) {
                         return run_short(proto, n, ctx.attempt_seed(31), &ctx)
                             .jain;
                       },
                       std::move(info)});
    }
  }
  const std::vector<double> jains =
      bench::run_sweep(opt, std::move(tasks), scalar_codec());

  Table t({"n", "proteus-s", "ledbat", "ledbat-25", "cubic", "bbr",
           "proteus-p", "copa", "vivace"});
  size_t k = 0;
  for (int n = 2; n <= 10; ++n) {
    std::vector<std::string> row{std::to_string(n)};
    for (size_t p = 0; p < protocols.size(); ++p) {
      row.push_back(fmt(jains[k++], 3));
    }
    t.add_row(row);
  }
  t.print();
  std::printf(
      "\nPaper shape check: primaries ~0.99; Proteus-S >= 0.90; LEDBAT "
      "dips in the middle n range (latecomer advantage), LEDBAT-25 lower "
      "still.\n");
  return bench::exit_code();
}
