// Fig 18 (Appendix B): 4-flow same-protocol competition over time —
// LEDBAT-25's latecomer domination, LEDBAT-100's milder version, and the
// stability of Proteus-P / Proteus-S.
//
// Paper setup: 80 Mbps (20n) link, staggered starts, 500 s.
// Paper result: each new LEDBAT-25 flow dominates all previous ones; the
// first LEDBAT-100 flow ends with the smallest share; both Proteus modes
// stay near the fair share.
#include "bench/bench_util.h"

using namespace proteus;

namespace {

void run_scene(const std::string& protocol) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 80.0;
  cfg.rtt_ms = 30.0;
  // Deep enough to absorb several LEDBAT targets — the regime where the
  // latecomer pathology is visible.
  cfg.buffer_bytes = 3'000'000;
  cfg.seed = 97;
  const auto series = run_time_series(
      {protocol, protocol, protocol, protocol}, cfg, from_sec(60),
      from_sec(400));
  std::printf("\n--- 4x %s (40 s bins, Mbps) ---\n", protocol.c_str());
  Table t({"t_sec", "flow1(0s)", "flow2(60s)", "flow3(120s)", "flow4(180s)"});
  for (size_t bin = 0; bin + 40 <= series[0].size(); bin += 40) {
    std::vector<std::string> row{std::to_string(bin)};
    for (const auto& s : series) {
      double mean = 0;
      for (size_t i = bin; i < bin + 40; ++i) mean += s[i] / 40.0;
      row.push_back(fmt(mean, 1));
    }
    t.add_row(row);
  }
  t.print();
}

}  // namespace

int main() {
  bench::print_header("Figure 18", "Latecomer dynamics, 4 staggered flows");
  for (const char* proto : {"ledbat-25", "ledbat", "proteus-p", "proteus-s"}) {
    run_scene(proto);
  }
  std::printf(
      "\nPaper shape check: each later ledbat-25 flow dominates its "
      "predecessors; ledbat-100 leaves the first flow smallest; the two "
      "Proteus variants stay near the fair share.\n");
  return 0;
}
