// Macro benchmark of sharded execution: the "CDN edge under load"
// scenario (kCdnEdge star, Poisson churn ramping to a live-flow cap)
// run serially and with --shards worker threads, emitted as JSON
// (BENCH_shards.json schema).
//
// Two things are measured, one is checked:
//  * aggregate events/sec at shards = 1, 2, 4 over the same scenario,
//    plus the derived speedups;
//  * peak RSS after the shards=1 run, divided by the peak concurrent
//    flow count — the marginal memory cost of a live churn flow;
//  * determinism: the three runs must execute EXACTLY the same number
//    of events and spawn/complete the same number of flows. Sharding
//    only changes which thread executes a part, never the event
//    stream, so any drift is a bug and the bench exits nonzero.
//
// Speedup on a box with fewer hardware threads than shards is
// physically impossible; the JSON records hardware_threads and the
// >= 1.5x shards=4 gate only arms when at least 4 are available.
// verify.sh runs a reduced configuration and hands the result to
// tools/bench_compare with --keys=events_per_sec_shards1 against the
// committed BENCH_shards.json.
//
// Usage: bench_shards [--flows=n] [--arms=n] [--rate=per-sec]
//                     [--size=kb] [--duration=simsec] [--ramp=simsec]
//                     [--seed=n] [--out=path.json]
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "harness/churn.h"
#include "harness/scenario.h"

namespace proteus {
namespace {

struct BenchParams {
  int64_t flows = 100'000;  // live-flow cap (aggregate)
  int arms = 8;
  double rate = 0;          // arrivals/sec; 0 = 2x the cap per second
  double size_kb = 64;      // mean web-class flow size
  double duration_sec = 2;  // measured window after the ramp
  double ramp_sec = 0;      // 0 = cap/rate + 0.5
  uint64_t seed = 7;
};

struct ShardResult {
  int shards = 0;
  int threads_used = 0;  // min(shards, parts): actual worker concurrency
  uint64_t events_measured = 0;
  uint64_t events_total = 0;
  double wall_sec = 0;
  double events_per_sec = 0;
  long rss_kb = 0;
  int parts = 0;
  TimeNs window = 0;
  ChurnStats churn;
  ShardSet::WindowStats windows;
};

long peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return ru.ru_maxrss;  // KiB on Linux
}

ShardResult run_config(int shards, const BenchParams& p, double rate,
                       double ramp_sec) {
  ScenarioConfig cfg;
  cfg.topology.kind = TopologyKind::kCdnEdge;
  cfg.topology.arms = p.arms;
  cfg.seed = p.seed;
  cfg.shards = shards;
  cfg.planned_flows = static_cast<FlowId>(p.flows) * 2;
  Scenario sc(cfg);

  ChurnConfig ch;
  ch.arrivals_per_sec = rate;
  ch.mean_size_kb = p.size_kb;
  ch.max_concurrent = p.flows;
  ch.window_slots = 8;
  ChurnDriver churn(sc, ch);

  sc.run_until(from_sec(ramp_sec));
  const uint64_t warm = sc.events_processed();
  const auto t0 = std::chrono::steady_clock::now();
  sc.run_until(from_sec(ramp_sec + p.duration_sec));
  const auto t1 = std::chrono::steady_clock::now();

  ShardResult r;
  r.shards = shards;
  r.wall_sec = std::chrono::duration<double>(t1 - t0).count();
  r.events_measured = sc.events_processed() - warm;
  r.events_total = sc.events_processed();
  r.events_per_sec = static_cast<double>(r.events_measured) / r.wall_sec;
  r.rss_kb = peak_rss_kb();
  const PartitionPlan plan = sc.partition_plan();
  r.parts = plan.parts;
  r.window = plan.window;
  r.threads_used = std::min(shards, plan.parts);
  r.churn = churn.stats();
  r.windows = sc.shard_window_stats();
  return r;
}

int run(int argc, char** argv) {
  BenchParams p;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--flows=", 0) == 0) {
      p.flows = std::atoll(arg.c_str() + 8);
    } else if (arg.rfind("--arms=", 0) == 0) {
      p.arms = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--rate=", 0) == 0) {
      p.rate = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--size=", 0) == 0) {
      p.size_kb = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--duration=", 0) == 0) {
      p.duration_sec = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--ramp=", 0) == 0) {
      p.ramp_sec = std::atof(arg.c_str() + 7);
    } else if (arg.rfind("--seed=", 0) == 0) {
      p.seed = static_cast<uint64_t>(std::atoll(arg.c_str() + 7));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_shards [--flows=n] [--arms=n] "
                   "[--rate=per-sec] [--size=kb] [--duration=simsec] "
                   "[--ramp=simsec] [--seed=n] [--out=path.json]\n";
      return 2;
    }
  }
  if (p.flows < 1 || p.arms < 2 || p.duration_sec <= 0) {
    std::cerr << "bench_shards: bad --flows/--arms/--duration\n";
    return 2;
  }
  const double rate =
      p.rate > 0 ? p.rate : 2.0 * static_cast<double>(p.flows);
  const double ramp =
      p.ramp_sec > 0 ? p.ramp_sec
                     : static_cast<double>(p.flows) / rate + 0.5;

  const unsigned hw = std::thread::hardware_concurrency();
  std::vector<ShardResult> results;
  for (int shards : {1, 2, 4}) {
    std::fprintf(stderr, "bench_shards: shards=%d ...\n", shards);
    results.push_back(run_config(shards, p, rate, ramp));
  }

  // Determinism gate: identical event streams regardless of threads.
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].events_total != results[0].events_total ||
        results[i].churn.spawned != results[0].churn.spawned ||
        results[i].churn.completed != results[0].churn.completed) {
      std::cerr << "bench_shards: DETERMINISM VIOLATION: shards="
                << results[i].shards << " executed "
                << results[i].events_total << " events / "
                << results[i].churn.spawned << " spawned vs "
                << results[0].events_total << " / "
                << results[0].churn.spawned << " at shards=1\n";
      return 1;
    }
  }

  const ShardResult& s1 = results[0];
  const double speedup2 = results[1].events_per_sec / s1.events_per_sec;
  const double speedup4 = results[2].events_per_sec / s1.events_per_sec;
  const double rss_per_flow =
      s1.churn.peak_concurrent > 0
          ? static_cast<double>(s1.rss_kb) * 1024.0 /
                static_cast<double>(s1.churn.peak_concurrent)
          : 0.0;

  std::ostringstream json;
  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"bench\": \"shards\",\n"
      "  \"workload\": \"cdn-edge churn: %d arms, cap %lld flows, "
      "%.0f arrivals/sec, mean %.0f KB\",\n"
      "  \"flows_cap\": %lld,\n"
      "  \"arms\": %d,\n"
      "  \"parts\": %d,\n"
      "  \"window_ns\": %lld,\n"
      "  \"ramp_sim_sec\": %.3f,\n"
      "  \"duration_sim_sec\": %.3f,\n"
      "  \"hardware_threads\": %u,\n",
      p.arms, static_cast<long long>(p.flows), rate, p.size_kb,
      static_cast<long long>(p.flows), p.arms, s1.parts,
      static_cast<long long>(s1.window), ramp, p.duration_sec, hw);
  json << buf;
  for (const ShardResult& r : results) {
    std::snprintf(buf, sizeof(buf),
                  "  \"shards%d\": {\n"
                  "    \"events\": %llu,\n"
                  "    \"wall_sec\": %.6f,\n"
                  "    \"events_per_sec\": %.1f,\n"
                  "    \"rss_kb\": %ld,\n"
                  "    \"threads_used\": %d,\n"
                  "    \"barrier_windows\": %llu,\n"
                  "    \"windows_fast_forwarded\": %llu\n"
                  "  },\n",
                  r.shards,
                  static_cast<unsigned long long>(r.events_measured),
                  r.wall_sec, r.events_per_sec, r.rss_kb, r.threads_used,
                  static_cast<unsigned long long>(r.windows.barrier_windows),
                  static_cast<unsigned long long>(
                      r.windows.windows_fast_forwarded));
    json << buf;
  }
  std::snprintf(
      buf, sizeof(buf),
      "  \"events_per_sec_shards1\": %.1f,\n"
      "  \"events_per_sec_shards2\": %.1f,\n"
      "  \"events_per_sec_shards4\": %.1f,\n"
      "  \"speedup_shards2\": %.3f,\n"
      "  \"speedup_shards4\": %.3f,\n"
      "  \"events_total\": %llu,\n"
      "  \"flows_spawned\": %lld,\n"
      "  \"flows_completed\": %lld,\n"
      "  \"flows_skipped\": %lld,\n"
      "  \"concurrent_peak\": %lld,\n"
      "  \"flows_recycled\": %lld,\n"
      "  \"barrier_windows_total\": %llu,\n"
      "  \"windows_fast_forwarded\": %llu,\n"
      "  \"peak_rss_kb\": %ld,\n"
      "  \"peak_rss_per_flow_bytes\": %.1f\n"
      "}\n",
      s1.events_per_sec, results[1].events_per_sec,
      results[2].events_per_sec, speedup2, speedup4,
      static_cast<unsigned long long>(s1.events_total),
      static_cast<long long>(s1.churn.spawned),
      static_cast<long long>(s1.churn.completed),
      static_cast<long long>(s1.churn.skipped),
      static_cast<long long>(s1.churn.peak_concurrent),
      static_cast<long long>(s1.churn.recycled),
      static_cast<unsigned long long>(s1.windows.barrier_windows),
      static_cast<unsigned long long>(s1.windows.windows_fast_forwarded),
      s1.rss_kb, rss_per_flow);
  json << buf;

  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f.good()) {
      std::cerr << "bench_shards: cannot write " << out_path << "\n";
      return 2;
    }
    f << json.str();
    std::cout << "wrote " << out_path << "\n";
  }

  // The parallel-speedup gate only means something when the hardware
  // can run 4 workers at once AND the shards=4 run actually used 4
  // workers (a small-arm topology clamps threads to its part count, and
  // then no speedup is physically possible).
  const int threads4 = results[2].threads_used;
  if (hw >= 4 && threads4 >= 4 && speedup4 < 1.5) {
    std::cerr << "bench_shards: speedup_shards4 = " << speedup4
              << " < 1.5 with " << hw << " hardware threads and "
              << threads4 << " concurrent workers\n";
    return 1;
  }
  if (hw < 4 || threads4 < 4) {
    std::cerr << "bench_shards: note: " << hw << " hardware thread(s), "
              << threads4
              << " concurrent worker(s) at shards=4; speedup gate "
                 "skipped (determinism gate still enforced)\n";
  }
  return 0;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) { return proteus::run(argc, argv); }
