// Ablations over the design choices DESIGN.md calls out:
//  (1) scavenger signal: RTT deviation (Proteus-S) vs "same metric,
//      greater penalty" (a Proteus-P variant with 4x gradient penalty);
//  (2) deviation coefficient d sweep: yielding vs scavenger-only
//      utilization trade-off;
//  (3) majority rule: 3-pair vs Vivace's 2-pair probing on a noisy path;
//  (4) noise filters on/off on clean and wireless paths.
#include "bench/bench_util.h"
#include "harness/wifi_paths.h"

using namespace proteus;

namespace {

double scavenger_yield(const ScenarioConfig& cfg, const std::string& prim) {
  const PairResult r = run_pair(prim, "proteus-s", cfg, from_sec(70),
                                from_sec(25));
  return r.primary_ratio;
}

}  // namespace

int main() {
  bench::print_header("Ablations", "Design-choice ablations");

  // ---- (1) deviation penalty vs inflated-gradient penalty -------------
  std::printf("(1) Scavenger signal: deviation vs 4x gradient penalty\n");
  {
    Table t({"primary", "proteus-s(dev)", "4x-gradient-penalty"});
    for (const char* prim : {"bbr", "copa", "proteus-p"}) {
      ScenarioConfig cfg = bench::emulab_link(201);
      const double dev = scavenger_yield(cfg, prim);

      ScenarioConfig cfg2 = cfg;
      cfg2.tuning.utility.d = 0.0;      // no deviation term...
      cfg2.tuning.utility.b = 3600.0;   // ...same-metric, greater penalty
      const PairResult r = run_pair(prim, "proteus-s", cfg2, from_sec(70),
                                    from_sec(25));
      t.add_row({prim, fmt(dev, 2), fmt(r.primary_ratio, 2)});
    }
    t.print();
    std::printf("  -> the deviation signal yields where an inflated "
                "gradient penalty does not (section 2.2 argument).\n\n");
  }

  // ---- (2) d sweep ------------------------------------------------------
  std::printf("(2) Deviation coefficient d: yielding vs solo utilization\n");
  {
    Table t({"d", "yield_vs_bbr", "yield_vs_proteus-p", "solo_utilization"});
    for (double d : {0.0, 500.0, 1000.0, 2000.0, 4000.0}) {
      ScenarioConfig cfg = bench::emulab_link(211);
      cfg.tuning.utility.d = d;
      const double y_bbr = scavenger_yield(cfg, "bbr");
      const double y_pp = scavenger_yield(cfg, "proteus-p");
      const SingleFlowResult solo =
          run_single_flow("proteus-s", cfg, from_sec(60), from_sec(20));
      t.add_row({fmt(d, 0), fmt(y_bbr, 2), fmt(y_pp, 2),
                 fmt(solo.utilization, 2)});
    }
    t.print();
    std::printf("  -> larger d yields harder but costs solo utilization; "
                "d = 2000 is the calibrated balance.\n\n");
  }

  // ---- (3) majority rule on a noisy path ---------------------------------
  std::printf("(3) Probing: 3-pair majority vs 2-pair unanimous (wireless)\n");
  {
    const ScenarioConfig wifi = wifi_path_set()[40].scenario;  // harsh-ish
    Table t({"probe_pairs", "wifi_throughput_mbps", "clean_throughput_mbps"});
    for (int pairs : {2, 3}) {
      ScenarioConfig cfg = wifi;
      // probe_pairs rides on the rate-control config; route via tuning by
      // building a custom sender.
      Scenario sc(cfg);
      PccSender::Config pc = default_proteus_config(7);
      pc.rate_control.probe_pairs = pairs;
      Flow& f = sc.add_flow_with_cc(
          std::make_unique<PccSender>(
              std::make_shared<ProteusPrimaryUtility>(), pc, "p"),
          0);
      sc.run_until(from_sec(50));
      const double wifi_tput =
          f.mean_throughput_mbps(from_sec(20), from_sec(50));

      ScenarioConfig clean = bench::emulab_link(221);
      Scenario sc2(clean);
      PccSender::Config pc2 = default_proteus_config(7);
      pc2.rate_control.probe_pairs = pairs;
      Flow& f2 = sc2.add_flow_with_cc(
          std::make_unique<PccSender>(
              std::make_shared<ProteusPrimaryUtility>(), pc2, "p"),
          0);
      sc2.run_until(from_sec(50));
      const double clean_tput =
          f2.mean_throughput_mbps(from_sec(20), from_sec(50));
      t.add_row({std::to_string(pairs), fmt(wifi_tput, 1),
                 fmt(clean_tput, 1)});
    }
    t.print();
    std::printf("  -> the paper motivates the majority rule as a faster "
                "ramp under noise; on this simulator's harsh wireless "
                "model the 2-pair unanimity requirement acts as an extra "
                "noise filter instead. An honest divergence, recorded in "
                "EXPERIMENTS.md.\n\n");
  }

  // ---- (4) noise filters on/off -----------------------------------------
  std::printf("(4) Noise-tolerance mechanisms on/off\n");
  {
    Table t({"filters", "clean_solo_util", "wifi_solo_mbps",
             "yield_vs_proteus-p"});
    for (bool enabled : {true, false}) {
      ScenarioConfig clean = bench::emulab_link(231);
      ScenarioConfig wifi = wifi_path_set()[40].scenario;
      for (ScenarioConfig* c : {&clean, &wifi}) {
        if (!enabled) {
          c->tuning.noise.ack_filter = false;
          c->tuning.noise.mi_regression_tolerance = false;
          c->tuning.noise.trending = false;
          c->tuning.noise.deviation_filter = DeviationFilterMode::kOff;
        }
      }
      const SingleFlowResult solo =
          run_single_flow("proteus-s", clean, from_sec(60), from_sec(20));
      const SingleFlowResult wifi_solo =
          run_single_flow("proteus-s", wifi, from_sec(50), from_sec(20));
      const double yield_pp = scavenger_yield(clean, "proteus-p");
      t.add_row({enabled ? "on" : "off", fmt(solo.utilization, 2),
                 fmt(wifi_solo.throughput_mbps, 1), fmt(yield_pp, 2)});
    }
    t.print();
    std::printf("  -> compare columns: the filters trade a little clean-"
                "path utilization for competition sensitivity; on the "
                "harshest wireless path every variant struggles (the "
                "per-path numbers in fig09 tell the fuller story).\n");
  }
  return 0;
}
