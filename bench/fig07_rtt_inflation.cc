// Fig 7 (and Fig 20 with LEDBAT-25): ratio of the primary flow's
// 95th-percentile RTT with a scavenger present vs running alone
// (375 KB buffer).
//
// Paper result: LEDBAT roughly doubles latency-aware primaries' p95 RTT
// (COPA sees 2.3x); Proteus-S leaves RTT essentially untouched.
#include "bench/bench_util.h"

using namespace proteus;

int main() {
  bench::print_header("Figure 7 / Figure 20",
                      "95th-percentile RTT ratio under competition");

  const std::vector<std::string> scavengers = {"proteus-s", "ledbat",
                                               "ledbat-25", "proteus-p",
                                               "copa"};
  const std::vector<std::string>& primaries = primary_protocol_names();

  Table t({"primary", "proteus-s", "ledbat", "ledbat-25", "proteus-p",
           "copa"});
  for (const std::string& prim : primaries) {
    std::vector<std::string> row{prim};
    for (const std::string& scav : scavengers) {
      const PairResult r = run_pair(prim, scav, bench::emulab_link(47),
                                    from_sec(90), from_sec(30));
      row.push_back(fmt(r.rtt_ratio, 2));
    }
    t.add_row(row);
  }
  t.print();
  std::printf(
      "\nPaper shape check: ledbat columns ~2x for latency-aware "
      "primaries; proteus-s column ~1.0.\n");
  return 0;
}
