// Fig 3 (and Fig 15 with LEDBAT-25): single-flow bottleneck saturation
// with varying buffer size — throughput and 95th-percentile inflation
// ratio per protocol.
//
// Paper setup: 50 Mbps, 30 ms RTT, 100 s runs, buffer 1 KB..1 MB.
// Paper result: Proteus-P/S (like BBR/Vivace) need only a few KB of
// buffer for >=90% utilization; CUBIC/COPA need several times more;
// LEDBAT needs ~BDP (32x more than Proteus) and pins the buffer full
// until it can hold its delay target.
#include "bench/bench_util.h"

using namespace proteus;

int main(int argc, char** argv) {
  const bench::SweepOptions opt = bench::parse_sweep_flags(argc, argv, "fig03");
  bench::print_header("Figure 3 / Figure 15",
                      "Bottleneck saturation vs buffer size");

  const std::vector<int64_t> buffers = {1'500,   4'500,   9'000,  15'000,
                                        37'500,  75'000,  150'000, 375'000,
                                        625'000, 900'000};
  const std::vector<std::string> protocols = {
      "proteus-s", "ledbat", "ledbat-25", "cubic",
      "bbr",       "proteus-p", "copa",   "vivace"};

  Table tput({"buffer_kb", "proteus-s", "ledbat", "ledbat-25", "cubic",
              "bbr", "proteus-p", "copa", "vivace"});
  Table infl({"buffer_kb", "proteus-s", "ledbat", "ledbat-25", "cubic",
              "bbr", "proteus-p", "copa", "vivace"});

  std::vector<SupervisedTask<SingleFlowResult>> tasks;
  for (int64_t buffer : buffers) {
    for (const std::string& proto : protocols) {
      ScenarioConfig cfg = bench::emulab_link(17);
      cfg.buffer_bytes = buffer;
      tasks.push_back(bench::sweep_point<SingleFlowResult>(
          "buffer=" + std::to_string(buffer) + " proto=" + proto, cfg,
          [cfg, proto](RunContext& ctx) {
            ScenarioConfig run_cfg = cfg;
            run_cfg.seed = ctx.attempt_seed(cfg.seed);
            return run_single_flow(proto, run_cfg, from_sec(60), from_sec(20),
                                   &ctx);
          }));
    }
  }
  const std::vector<SingleFlowResult> results = bench::run_sweep(
      opt, std::move(tasks),
      codec_from<SingleFlowResult>(
          [](const SingleFlowResult& r) { return to_doubles(r); },
          single_flow_from_doubles));

  size_t k = 0;
  for (int64_t buffer : buffers) {
    std::vector<std::string> trow{fmt(buffer / 1000.0, 1)};
    std::vector<std::string> irow{fmt(buffer / 1000.0, 1)};
    for (size_t p = 0; p < protocols.size(); ++p) {
      const SingleFlowResult& r = results[k++];
      trow.push_back(fmt(r.throughput_mbps, 1));
      irow.push_back(fmt(r.inflation_ratio_95, 2));
    }
    tput.add_row(trow);
    infl.add_row(irow);
  }

  std::printf("(a) Throughput (Mbps)\n");
  tput.print();
  std::printf("\n(b) 95th-percentile inflation ratio\n");
  infl.print();
  std::printf(
      "\nPaper shape check: Proteus saturates with tiny buffers; LEDBAT "
      "needs ~BDP and pins small buffers full (inflation ~1).\n");
  return bench::exit_code();
}
