// Appendix A: numeric equilibria of the fluid utility model — fairness of
// homogeneous populations (Theorems 4.1/4.2) and the mixed-population
// equilibrium structure.
#include "bench/bench_util.h"
#include "core/equilibrium.h"
#include "stats/jain.h"

using namespace proteus;

int main() {
  bench::print_header("Appendix A", "Equilibria of the utility model");

  EquilibriumModel m;
  m.capacity_mbps = 50.0;

  std::printf("(a) Homogeneous populations (Theorems 4.1 / 4.2)\n");
  Table t({"senders", "mode", "per_flow_mbps", "total_mbps", "jain",
           "iterations"});
  for (int n : {1, 2, 4, 8}) {
    for (bool scavenger : {false, true}) {
      const auto r = scavenger ? solve_equilibrium(m, 0, n)
                               : solve_equilibrium(m, n, 0);
      const auto& rates = scavenger ? r.scavenger_rates : r.primary_rates;
      t.add_row({std::to_string(n), scavenger ? "proteus-s" : "proteus-p",
                 fmt(rates[0], 2), fmt(r.total_rate, 2),
                 fmt(jain_index(rates), 4), std::to_string(r.iterations)});
    }
  }
  t.print();

  std::printf(
      "\n(b) Mixed populations. With the paper's b = 900 the equilibrium "
      "sits at the S = C kink where the deviation term is inactive (the "
      "paper leaves formal yielding analysis to future work); with a "
      "small b the interior equilibrium shows the scavenger yielding.\n");
  Table t2({"b", "dev_factor", "primary_mbps", "scavenger_mbps", "total"});
  for (double b : {900.0, 0.5}) {
    for (double a : {0.0, 2.5e-4, 2.5e-3}) {
      EquilibriumModel mm = m;
      mm.params.b = b;
      mm.deviation_factor = a;
      const auto r = solve_equilibrium(mm, 1, 1);
      t2.add_row({fmt(b, 1), fmt(a * 1e4, 1) + "e-4",
                  fmt(r.primary_rates[0], 2), fmt(r.scavenger_rates[0], 2),
                  fmt(r.total_rate, 2)});
    }
  }
  t2.print();
  return 0;
}
