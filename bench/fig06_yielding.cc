// Fig 6 (and Fig 19 with LEDBAT-25): scavenger vs primary on the Emulab
// link — primary throughput ratio and joint capacity utilization, for
// scavenger in {LEDBAT, LEDBAT-25, Proteus-S, Proteus-P, COPA} x primary
// in {BBR, CUBIC, COPA, Proteus-P, Vivace} x buffer in {75, 375} KB.
//
// Paper result: Proteus-S keeps primaries >= ~87-98% and utilization
// >= ~90%; LEDBAT fails to yield (BBR down to 26%, latency-aware < 43%);
// Proteus-P and COPA yield only sometimes.
#include "bench/bench_util.h"

using namespace proteus;

int main() {
  bench::print_header("Figure 6 / Figure 19",
                      "Scavenger vs primary: throughput ratio & utilization");

  const std::vector<std::string> scavengers = {"ledbat", "ledbat-25",
                                               "proteus-s", "proteus-p",
                                               "copa"};
  const std::vector<std::string>& primaries = primary_protocol_names();
  const std::vector<int64_t> buffers = {75'000, 375'000};

  for (const std::string& scav : scavengers) {
    std::printf("\n--- %s as scavenger ---\n", scav.c_str());
    Table t({"primary", "buffer_kb", "primary_ratio", "utilization",
             "scavenger_mbps"});
    for (const std::string& prim : primaries) {
      for (int64_t buffer : buffers) {
        ScenarioConfig cfg = bench::emulab_link(41);
        cfg.buffer_bytes = buffer;
        const PairResult r = run_pair(prim, scav, cfg, from_sec(90),
                                      from_sec(30));
        t.add_row({prim, fmt(buffer / 1000.0, 0), fmt(r.primary_ratio, 2),
                   fmt(r.utilization, 2), fmt(r.scavenger_mbps, 1)});
      }
    }
    t.print();
  }
  std::printf(
      "\nPaper shape check: proteus-s ratios ~0.85-0.99 with high joint "
      "utilization; ledbat crushes BBR/COPA/Proteus-P/Vivace; ledbat-25 "
      "is gentler but still fails vs latency-aware primaries.\n");
  return 0;
}
