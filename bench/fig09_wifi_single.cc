// Fig 9 (and Fig 21 with LEDBAT-25): single-flow throughput over the
// 64-path wireless set, normalized per path by the best protocol on that
// path; reported as a CDF.
//
// Paper result: CUBIC and BBR sit near 1.0 (aggressive), COPA and Vivace
// at the bottom (noise-sensitive), Proteus-P and Proteus-S near the top
// of their classes thanks to the noise-tolerance machinery; LEDBAT-25 is
// worse than LEDBAT-100.
#include <map>

#include "bench/bench_util.h"
#include "harness/wifi_paths.h"
#include "stats/percentile.h"

using namespace proteus;

int main() {
  bench::print_header("Figure 9 / Figure 21",
                      "Single-flow normalized throughput on 64 WiFi paths");

  const std::vector<std::string> protocols = {
      "proteus-s", "ledbat", "ledbat-25", "cubic",
      "bbr",       "proteus-p", "copa",   "vivace"};
  const auto paths = wifi_path_set();

  std::map<std::string, Samples> normalized;
  for (const WifiPath& path : paths) {
    std::map<std::string, double> tput;
    double best = 0.0;
    for (const std::string& proto : protocols) {
      const SingleFlowResult r =
          run_single_flow(proto, path.scenario, from_sec(40), from_sec(15));
      tput[proto] = r.throughput_mbps;
      best = std::max(best, r.throughput_mbps);
    }
    for (const auto& [proto, v] : tput) {
      normalized[proto].add(best > 0 ? v / best : 0.0);
    }
  }

  Table t({"protocol", "p10", "p25", "median", "p75", "p90", "mean"});
  for (const std::string& proto : protocols) {
    const Samples& s = normalized[proto];
    t.add_row({proto, fmt(s.percentile(10), 2), fmt(s.percentile(25), 2),
               fmt(s.median(), 2), fmt(s.percentile(75), 2),
               fmt(s.percentile(90), 2), fmt(s.mean(), 2)});
  }
  t.print();
  std::printf(
      "\nPaper shape check: cubic/bbr near the top; copa/vivace at the "
      "bottom; proteus-p/-s competitive within their classes; ledbat-25 "
      "below ledbat.\n");
  return 0;
}
