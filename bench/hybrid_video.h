// Shared implementation for the Proteus-H video figures (12 and 13).
#pragma once

#include <memory>

#include "app/bola.h"
#include "app/video.h"
#include "bench/bench_util.h"

using namespace proteus;

namespace {

struct ClassMetrics {
  double bitrate_4k = 0.0;
  double rebuffer_4k = 0.0;
  double bitrate_1080 = 0.0;
  double rebuffer_1080 = 0.0;
};

ClassMetrics run_videos(const std::string& protocol, double bw_mbps,
                        bool force_highest, uint64_t seed) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = bw_mbps;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 900'000;
  cfg.seed = seed;
  Scenario sc(cfg);

  struct Client {
    std::unique_ptr<VideoClient> client;
    std::unique_ptr<HybridThresholdPolicy> policy;
    bool is_4k;
  };
  std::vector<Client> clients;

  for (int i = 0; i < 4; ++i) {
    const bool is_4k = i == 0;
    VideoClientConfig vc;
    vc.video = is_4k ? make_4k_video(60) : make_1080p_video(60);
    vc.id = sc.allocate_flow_id();
    vc.start_time = 0;

    std::unique_ptr<BitrateAdaptation> abr;
    if (force_highest) {
      abr = std::make_unique<FixedBitrateAdaptation>(
          static_cast<int>(vc.video.bitrates_mbps.size()) - 1);
    } else {
      abr = std::make_unique<BolaAdaptation>(
          vc.video.bitrates_mbps,
          vc.buffer_capacity_sec / vc.video.chunk_duration_sec);
    }

    Client c;
    c.is_4k = is_4k;
    if (protocol == "proteus-h") {
      auto state = std::make_shared<HybridThresholdState>();
      c.policy = std::make_unique<HybridThresholdPolicy>(state);
      c.client = std::make_unique<VideoClient>(
          &sc.sim(), &sc.dumbbell(), vc,
          make_protocol("proteus-h", sc.flow_seed(vc.id), state,
                        &sc.config().tuning),
          std::move(abr), c.policy.get());
    } else {
      c.client = std::make_unique<VideoClient>(
          &sc.sim(), &sc.dumbbell(), vc,
          make_protocol(protocol, sc.flow_seed(vc.id), nullptr,
                        &sc.config().tuning),
          std::move(abr));
    }
    clients.push_back(std::move(c));
  }

  sc.run_until(from_sec(185));

  ClassMetrics m;
  int n1080 = 0;
  for (const Client& c : clients) {
    const VideoMetrics vm = c.client->metrics();
    if (c.is_4k) {
      m.bitrate_4k = vm.average_chunk_bitrate_mbps;
      m.rebuffer_4k = vm.rebuffer_ratio;
    } else {
      m.bitrate_1080 += vm.average_chunk_bitrate_mbps;
      m.rebuffer_1080 += vm.rebuffer_ratio;
      ++n1080;
    }
  }
  m.bitrate_1080 /= n1080;
  m.rebuffer_1080 /= n1080;
  return m;
}

void run_figure(bool force_highest, const std::vector<double>& bandwidths) {
  Table t({"bw_mbps", "4k_bitrate_H", "4k_bitrate_P", "4k_rebuf_H%",
           "4k_rebuf_P%", "1080_bitrate_H", "1080_bitrate_P",
           "1080_rebuf_H%", "1080_rebuf_P%"});
  for (double bw : bandwidths) {
    const ClassMetrics h = run_videos("proteus-h", bw, force_highest, 71);
    const ClassMetrics p = run_videos("proteus-p", bw, force_highest, 71);
    t.add_row({fmt(bw, 0), fmt(h.bitrate_4k, 1), fmt(p.bitrate_4k, 1),
               fmt(h.rebuffer_4k * 100, 1), fmt(p.rebuffer_4k * 100, 1),
               fmt(h.bitrate_1080, 1), fmt(p.bitrate_1080, 1),
               fmt(h.rebuffer_1080 * 100, 1),
               fmt(p.rebuffer_1080 * 100, 1)});
  }
  t.print();
}

}  // namespace

