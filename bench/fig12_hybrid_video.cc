// Fig 12: Proteus-H vs Proteus-P for adaptive (BOLA) video streaming —
// one 4K + three 1080P videos, bandwidth 70-120 Mbps, 900 KB buffer.
//
// Paper result: Proteus-H raises 4K bitrate by up to ~11% without hurting
// the 1080P videos, and cuts rebuffering for both classes.
#include "bench/hybrid_video.h"

int main() {
  proteus::bench::print_header(
      "Figure 12", "Hybrid mode in adaptive (BOLA) video streaming");
  run_figure(false, {70, 80, 90, 100, 110, 120});
  std::printf("\nPaper shape check: in the constrained 90-120 Mbps band "
              "Proteus-H lifts 4K bitrate (up to ~11%%) and cuts "
              "rebuffering for both classes.\n");
  return 0;
}
