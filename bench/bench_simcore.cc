// Macro benchmark of the simulator core: events/sec, simulated-seconds
// per wall-second, peak RSS, and per-event heap allocations, for both
// event engines, emitted as JSON (BENCH_simcore.json schema).
//
// This is the perf-regression baseline for the zero-allocation event
// engine: verify.sh's perf tier runs it and hands the result to
// tools/bench_compare together with the committed BENCH_simcore.json,
// failing the build on a >10% events/sec regression. The workload is a
// fig03-style dumbbell with four mixed-protocol flows — heavy enough to
// exercise the pacing/ACK/loss-sweep timer population the wheel was
// designed for, small enough to finish in seconds.
//
// Allocation counting replaces global operator new in this binary only
// (same technique as tests/sim_alloc_test.cc). Two numbers are reported:
//  * steady_allocs — heap allocations during one simulated second of a
//    4-flow cubic dumbbell after warm-up. Cubic's per-ack path is
//    allocation-free, so this isolates the event engine + transport +
//    link core; the committed baseline documents it as zero. It is also
//    duration-independent, which is what lets tools/bench_compare gate
//    on it exactly.
//  * workload_allocs_per_event — allocation rate of the mixed-protocol
//    perf workload (informational: the PCC/BBR monitor-interval
//    machinery allocates on its own schedule).
//
// Usage: bench_simcore [--duration=simsec] [--reps=n] [--out=path.json]
// Without --out the JSON goes to stdout only.
#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "harness/factory.h"
#include "harness/scenario.h"
#include "sim/dumbbell.h"
#include "transport/flow.h"

namespace {
std::atomic<std::uint64_t> g_alloc_calls{0};

void* counted_alloc(std::size_t n) {
  g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n == 0 ? 1 : n)) return p;
  throw std::bad_alloc();
}
}  // namespace

#if !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif

namespace proteus {
namespace {

struct EngineResult {
  double wall_sec = 0;
  std::uint64_t events = 0;
  double events_per_sec = 0;
  double sim_sec_per_wall_sec = 0;
  std::uint64_t steady_allocs = 0;  // engine-only rig, one sim-second
  std::uint64_t workload_allocs = 0;
  double workload_allocs_per_event = 0;
};

std::unique_ptr<Scenario> make_workload(EventEngine engine) {
  ScenarioConfig cfg;
  cfg.engine = engine;
  cfg.bandwidth_mbps = 50;
  cfg.rtt_ms = 30;
  cfg.seed = 7;
  auto sc = std::make_unique<Scenario>(cfg);
  sc->add_flow("proteus-s", 0);
  sc->add_flow("cubic", 0);
  sc->add_flow("bbr", from_sec(1));
  sc->add_flow("proteus-p", from_sec(1));
  return sc;
}

// One simulated second of an all-cubic dumbbell after 3 s of warm-up:
// the engine-core zero-allocation measurement (tests/sim_alloc_test.cc
// pins the same number to exactly zero in ctest; same rig as there).
std::uint64_t measure_engine_allocs(EventEngine engine) {
  Simulator sim(5, engine);
  DumbbellConfig dc;
  dc.bottleneck.rate = Bandwidth::from_mbps(50);
  dc.bottleneck.prop_delay = from_ms(15);
  dc.reverse_delay = from_ms(15);
  Dumbbell dumbbell(&sim, dc);
  std::vector<std::unique_ptr<Flow>> flows;
  for (FlowId id = 1; id <= 4; ++id) {
    FlowConfig fc;
    fc.id = id;
    fc.start_time = 0;
    fc.unlimited = true;
    fc.collect_rtt = false;  // per-ack RTT probes grow a vector forever
    flows.push_back(std::make_unique<Flow>(&sim, &dumbbell, fc,
                                           make_protocol("cubic", id)));
    flows.back()->receiver().meter().reserve_until(from_sec(16));
  }
  sim.run_until(from_sec(3));
  const std::uint64_t before = g_alloc_calls.load(std::memory_order_relaxed);
  sim.run_until(from_sec(4));
  return g_alloc_calls.load(std::memory_order_relaxed) - before;
}

EngineResult run_engine(EventEngine engine, double duration_sec, int reps) {
  constexpr double kWarmupSec = 2.0;
  EngineResult best;
  for (int rep = 0; rep < reps; ++rep) {
    auto sc = make_workload(engine);
    sc->run_until(from_sec(kWarmupSec));
    const std::uint64_t warm_events = sc->sim().events_processed();
    const std::uint64_t allocs_before =
        g_alloc_calls.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    sc->run_until(from_sec(kWarmupSec + duration_sec));
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t allocs_after =
        g_alloc_calls.load(std::memory_order_relaxed);

    EngineResult r;
    r.wall_sec = std::chrono::duration<double>(t1 - t0).count();
    r.events = sc->sim().events_processed() - warm_events;
    r.events_per_sec = static_cast<double>(r.events) / r.wall_sec;
    r.sim_sec_per_wall_sec = duration_sec / r.wall_sec;
    r.workload_allocs = allocs_after - allocs_before;
    r.workload_allocs_per_event =
        static_cast<double>(r.workload_allocs) /
        static_cast<double>(r.events);
    // Best-of-N: the container shares its core; the fastest rep is the
    // least-disturbed measurement. Allocation counts are deterministic,
    // but keep the pair from the same rep for coherence.
    if (r.events_per_sec > best.events_per_sec) best = r;
  }
  best.steady_allocs = measure_engine_allocs(engine);
  return best;
}

long peak_rss_kb() {
  struct rusage ru;
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return ru.ru_maxrss;  // KiB on Linux
}

void emit_engine(std::ostream& out, const char* name, const EngineResult& r) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"%s\": {\n"
                "    \"events\": %llu,\n"
                "    \"wall_sec\": %.6f,\n"
                "    \"events_per_sec\": %.1f,\n"
                "    \"sim_sec_per_wall_sec\": %.2f,\n"
                "    \"steady_allocs\": %llu,\n"
                "    \"workload_allocs_per_event\": %.6f\n"
                "  }",
                name, static_cast<unsigned long long>(r.events), r.wall_sec,
                r.events_per_sec, r.sim_sec_per_wall_sec,
                static_cast<unsigned long long>(r.steady_allocs),
                r.workload_allocs_per_event);
  out << buf;
}

int run(int argc, char** argv) {
  double duration_sec = 100.0;
  int reps = 3;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--duration=", 0) == 0) {
      duration_sec = std::atof(arg.c_str() + 11);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::atoi(arg.c_str() + 7);
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else {
      std::cerr << "usage: bench_simcore [--duration=simsec] [--reps=n] "
                   "[--out=path.json]\n";
      return 2;
    }
  }
  if (duration_sec <= 0 || reps <= 0) {
    std::cerr << "bench_simcore: bad --duration/--reps\n";
    return 2;
  }

  const EngineResult wheel =
      run_engine(EventEngine::kTimerWheel, duration_sec, reps);
  const EngineResult heap =
      run_engine(EventEngine::kBinaryHeap, duration_sec, reps);

  std::ostringstream json;
  json << "{\n"
       << "  \"bench\": \"simcore\",\n"
       << "  \"workload\": \"4-flow mixed dumbbell, 50 Mbps / 30 ms\",\n"
       << "  \"duration_sim_sec\": " << duration_sec << ",\n"
       << "  \"reps\": " << reps << ",\n";
  emit_engine(json, "wheel", wheel);
  json << ",\n";
  emit_engine(json, "heap", heap);
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                ",\n"
                "  \"events_per_sec_wheel\": %.1f,\n"
                "  \"events_per_sec_heap\": %.1f,\n"
                "  \"wheel_vs_heap_ratio\": %.3f,\n"
                "  \"peak_rss_kb\": %ld\n"
                "}\n",
                wheel.events_per_sec, heap.events_per_sec,
                wheel.events_per_sec / heap.events_per_sec, peak_rss_kb());
  json << tail;

  std::cout << json.str();
  if (!out_path.empty()) {
    std::ofstream f(out_path);
    if (!f.good()) {
      std::cerr << "bench_simcore: cannot write " << out_path << "\n";
      return 2;
    }
    f << json.str();
    std::cout << "wrote " << out_path << "\n";
  }
  return 0;
}

}  // namespace
}  // namespace proteus

int main(int argc, char** argv) { return proteus::run(argc, argv); }
