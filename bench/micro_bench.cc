// Google-benchmark micro-benchmarks for the hot paths: utility
// evaluation, MI metric computation, the noise filters, regression, and
// raw simulator throughput. These guard the "400x real time" simulation
// speed the macro benches depend on.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/monitor_interval.h"
#include "core/noise_filter.h"
#include "core/utility.h"
#include "harness/scenario.h"
#include "sim/shard.h"
#include "sim/topology.h"
#include "stats/regression.h"
#include "telemetry/telemetry.h"

namespace proteus {
namespace {

MiMetrics sample_metrics() {
  MiMetrics m;
  m.send_rate_mbps = 42.0;
  m.rtt_gradient = 0.003;
  m.loss_rate = 0.01;
  m.rtt_dev_sec = 3e-4;
  return m;
}

void BM_UtilityEvalScavenger(benchmark::State& state) {
  ProteusScavengerUtility u;
  const MiMetrics m = sample_metrics();
  for (auto _ : state) {
    benchmark::DoNotOptimize(u.eval(m));
  }
}
BENCHMARK(BM_UtilityEvalScavenger);

void BM_MonitorIntervalCompute(benchmark::State& state) {
  const auto n = static_cast<uint64_t>(state.range(0));
  MonitorInterval mi(1, 40.0, 0, from_ms(30));
  for (uint64_t i = 0; i < n; ++i) {
    const TimeNs sent = static_cast<TimeNs>(i) * from_us(300);
    mi.on_packet_sent(i, kMtuBytes, sent);
    mi.on_ack(i, kMtuBytes, sent, from_ms(30) + from_us(i % 7 * 100), true);
  }
  mi.seal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(mi.compute());
  }
}
BENCHMARK(BM_MonitorIntervalCompute)->Arg(32)->Arg(128)->Arg(512);

void BM_LinearRegression(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  std::vector<double> x(n), y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<double>(i);
    y[i] = 0.03 + 1e-4 * static_cast<double>(i % 11);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_regression(x, y));
  }
}
BENCHMARK(BM_LinearRegression)->Arg(64)->Arg(512);

void BM_NoiseControlPipeline(benchmark::State& state) {
  NoiseControlConfig cfg;
  TrendingTolerance trend(cfg);
  DeviationFloor floor(cfg);
  MiMetrics m = sample_metrics();
  m.rtt_gradient_raw = 0.002;
  m.rtt_dev_raw_sec = 2e-4;
  m.regression_error = 0.003;
  m.avg_rtt_sec = 0.031;
  m.rtt_samples = 40;
  for (auto _ : state) {
    MiMetrics copy = m;
    apply_noise_control(cfg, copy, &trend, &floor);
    benchmark::DoNotOptimize(copy);
  }
}
BENCHMARK(BM_NoiseControlPipeline);

// Raw event-engine hot loop: steady-state hold of 4096 pending events,
// one pop + one push per iteration, delays drawn from a fixed xorshift so
// both engines see the identical schedule. Arg 0 = timer wheel, 1 =
// reference binary heap.
void BM_EventQueuePushPop(benchmark::State& state) {
  const EventEngine engine = state.range(0) == 0 ? EventEngine::kTimerWheel
                                                 : EventEngine::kBinaryHeap;
  EventQueue q(engine);
  TimeNs now = 0;
  uint64_t x = 88172645463325252ull;
  auto next_delay = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    // Mostly sub-RTT timers with an occasional long (overflow-range) one.
    return static_cast<TimeNs>(x % ((x & 15u) == 0 ? from_ms(400)
                                                   : from_ms(10)));
  };
  for (int i = 0; i < 4096; ++i) q.push(now + next_delay(), [] {});
  for (auto _ : state) {
    auto [when, cb] = q.pop();
    now = when;
    q.push(now + next_delay(), [] {});
    benchmark::DoNotOptimize(now);
  }
}
BENCHMARK(BM_EventQueuePushPop)->Arg(0)->Arg(1);

// End-to-end simulation speed: one saturated 50 Mbps flow, cost per
// simulated second. Arg 0 = timer wheel, 1 = binary heap.
void BM_SimulatedSecond(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    ScenarioConfig cfg;
    cfg.seed = 5;
    cfg.engine = state.range(0) == 0 ? EventEngine::kTimerWheel
                                     : EventEngine::kBinaryHeap;
    auto sc = std::make_unique<Scenario>(cfg);
    sc->add_flow("proteus-p", 0);
    sc->run_until(from_sec(2));  // warm
    state.ResumeTiming();
    sc->run_until(from_sec(3));  // measured simulated second
    benchmark::DoNotOptimize(sc->flows().front()->sender().stats());
  }
}
BENCHMARK(BM_SimulatedSecond)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// Telemetry overhead check: the same simulated second with the per-MI
// recorder detached (Arg(0)) vs attached (Arg(1)). The two variants must
// be within run-to-run noise of each other — the off path is a single
// null-pointer test per completed MI, and the on path only copies a
// record into a preallocated ring.
void BM_SimulatedSecondTelemetry(benchmark::State& state) {
  const bool on = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    ScenarioConfig cfg;
    cfg.seed = 5;
    auto sc = std::make_unique<Scenario>(cfg);
    Flow& flow = sc->add_flow("proteus-p", 0);
    TelemetryRecorder recorder(4096, 1);
    if (on) flow.sender().cc().set_telemetry(&recorder);
    sc->run_until(from_sec(2));  // warm
    state.ResumeTiming();
    sc->run_until(from_sec(3));  // measured simulated second
    benchmark::DoNotOptimize(recorder.size());
    benchmark::DoNotOptimize(sc->flows().front()->sender().stats());
  }
}
BENCHMARK(BM_SimulatedSecondTelemetry)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

// Cross-part SPSC handoff: one window's worth of posts from part 0
// followed by the boundary drain (sort + re-schedule) and execution on
// part 1. Steady state reuses the channel and drain-scratch capacity,
// so this measures the per-handoff post/drain cost, not allocation.
void BM_ShardHandoffPostDrain(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  ShardSet ss(2, from_ms(1), 7);
  TimeNs t = 0;
  uint64_t sink = 0;
  for (auto _ : state) {
    const TimeNs due = t + from_ms(1);
    ss.part(0).schedule_at(t, [&ss, &sink, batch, due] {
      for (int i = 0; i < batch; ++i) {
        ss.post(0, 1, due + i, [&sink] { ++sink; });
      }
    });
    t = due;
    ss.run_until(t, 1);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ShardHandoffPostDrain)->Arg(64)->Arg(1024);

// Per-packet flow demux: dense flat-array path (Arg 0) vs the sparse
// hash fallback (Arg 1, forced by a tiny dense ceiling). The demux runs
// twice per data packet and twice per ACK, so the gap between these two
// is the per-packet cost the dense table buys back.
struct DemuxNullSink : PacketSink {
  void on_packet(const Packet&) override {}
};

void BM_FlowDemuxLookup(benchmark::State& state) {
  const bool sparse = state.range(0) != 0;
  Simulator sim(1);
  Topology topo(&sim);
  topo.add_path({{topo.add_link(0, 1, LinkConfig{}, 1)},
                 {topo.add_delay_edge(1, 0, from_ms(1))}});
  if (sparse) topo.set_dense_ceiling(1);
  DemuxNullSink sink;
  constexpr FlowId kFlows = 4096;
  for (FlowId id = 1; id <= kFlows; ++id) topo.attach_flow(id, &sink, &sink);
  uint64_t x = 88172645463325252ull;
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    benchmark::DoNotOptimize(topo.forward_ingress(1 + (x % kFlows)));
  }
}
BENCHMARK(BM_FlowDemuxLookup)->Arg(0)->Arg(1);

}  // namespace
}  // namespace proteus

BENCHMARK_MAIN();
