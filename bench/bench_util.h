// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure from the paper and prints
// the same rows/series the paper reports. Runs are shorter than the
// paper's (simulated single-core budget); EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these outputs.
//
// Sweep execution goes through the run supervisor (harness/supervisor.h):
// every sweep bench accepts, besides --jobs=N,
//
//   --retries=N --run-timeout=SEC --sim-timeout=SEC
//   --checkpoint=J.jsonl --resume=J.jsonl --bundle-dir=DIR
//   --telemetry=DIR --telemetry-every=N
//   --only=POINT
//
// A failing point degrades to a per-point status (the table shows its
// default value, the manifest goes to stderr, the process exits nonzero)
// instead of killing the whole bench; --only=POINT re-runs one sweep
// point by itself, which is the CLI line repro bundles reference.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/experiments.h"
#include "harness/table.h"

namespace proteus::bench {

// Process exit code accumulated across run_sweep calls (a bench may run
// several sweeps); main() should `return bench::exit_code();`.
inline int g_exit_code = 0;
inline int exit_code() { return g_exit_code; }

struct SweepOptions {
  int jobs = default_job_count();
  SupervisorConfig sup;
  int64_t only = -1;  // >= 0: run exactly one sweep point, then exit
  std::string argv0;
};

// Parses the sweep flags shared by the bench binaries and installs the
// SIGINT/SIGTERM handler (so Ctrl-C flushes the checkpoint journal and
// exits cleanly instead of losing completed points). Unknown arguments
// abort with the offending flag so a typo does not silently run with
// defaults.
inline SweepOptions parse_sweep_flags(int argc, char** argv,
                                      const char* sweep_name) {
  SweepOptions opt;
  opt.argv0 = argv[0];
  opt.sup.sweep_name = sweep_name;
  opt.sup.bundle_dir = "repro";  // failed points drop bundles here
  install_interrupt_handler();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string error;
    if (parse_jobs_flag(arg, opt.jobs, error)) continue;
    if (error.empty() && parse_supervisor_flag(arg, opt.sup, error)) continue;
    if (error.empty() &&
        parse_telemetry_flag(arg, opt.sup.telemetry, error)) {
      continue;
    }
    if (error.empty() && arg.rfind("--only=", 0) == 0) {
      opt.only = std::atoll(arg.c_str() + 7);
      if (opt.only >= 0) continue;
      error = "bad --only: " + arg;
    }
    std::fprintf(stderr, "%s: %s\n", argv[0],
                 error.empty() ? (arg + " (see bench/bench_util.h for the "
                                        "accepted sweep flags)")
                                     .c_str()
                               : error.c_str());
    std::exit(2);
  }
  opt.sup.jobs = opt.jobs;
  return opt;
}

// Legacy entry point used by non-sweep benches that only take --jobs=N.
inline int parse_jobs(int argc, char** argv) {
  int jobs = default_job_count();
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!parse_jobs_flag(argv[i], jobs, error)) {
      std::fprintf(stderr, "%s: %s (only --jobs=N is accepted)\n", argv[0],
                   error.empty() ? argv[i] : error.c_str());
      std::exit(2);
    }
  }
  return jobs;
}

// Derives per-sweep options for a bench that runs several sweeps in one
// process: the sweep name and checkpoint journal get a distinguishing
// suffix so each sweep journals (and resumes) independently.
inline SweepOptions sub_sweep(const SweepOptions& base,
                              const std::string& suffix) {
  SweepOptions opt = base;
  opt.sup.sweep_name += "-" + suffix;
  if (!opt.sup.checkpoint_path.empty()) {
    std::string& path = opt.sup.checkpoint_path;
    const size_t dot = path.rfind('.');
    const size_t slash = path.rfind('/');
    if (dot != std::string::npos &&
        (slash == std::string::npos || dot > slash)) {
      path.insert(dot, "-" + suffix);
    } else {
      path += "-" + suffix;
    }
  }
  return opt;
}

// Runs a sweep under the supervisor and returns the per-point results in
// submission order (default-constructed for failed points). Fills in the
// repro CLI line for every point, honors --only, prints the failure
// manifest, and exits immediately on interruption (the journal holds
// every completed point for --resume).
template <typename T>
std::vector<T> run_sweep(const SweepOptions& opt,
                         std::vector<SupervisedTask<T>> tasks,
                         const ResultCodec<T>& codec) {
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (tasks[i].info.cli.empty()) {
      tasks[i].info.cli =
          opt.argv0 + " --only=" + std::to_string(i) + " --jobs=1";
    }
  }
  SupervisorConfig cfg = opt.sup;
  cfg.jobs = opt.jobs;

  if (opt.only >= 0) {
    if (opt.only >= static_cast<int64_t>(tasks.size())) {
      std::fprintf(stderr, "--only=%lld out of range (sweep has %zu points)\n",
                   static_cast<long long>(opt.only), tasks.size());
      std::exit(2);
    }
    std::vector<SupervisedTask<T>> one;
    one.push_back(std::move(tasks[static_cast<size_t>(opt.only)]));
    cfg.jobs = 1;
    cfg.checkpoint_path.clear();  // a one-point rerun never journals
    const SupervisedSweep<T> sweep =
        run_supervised(std::move(one), cfg, codec);
    std::printf("point %lld (%s): %s after %d attempt(s)\n",
                static_cast<long long>(opt.only),
                sweep.statuses[0].name.c_str(),
                run_status_name(sweep.statuses[0].status),
                sweep.statuses[0].attempts);
    if (sweep.statuses[0].status == RunStatus::kOk) {
      std::printf("result: %s\n", codec.encode(sweep.results[0]).c_str());
    } else {
      std::fprintf(stderr, "%s", sweep.manifest().c_str());
    }
    std::exit(sweep.exit_code());
  }

  SupervisedSweep<T> sweep = run_supervised(std::move(tasks), cfg, codec);
  const std::string manifest = sweep.manifest();
  if (!manifest.empty()) std::fprintf(stderr, "%s", manifest.c_str());
  if (sweep.interrupted) {
    std::fprintf(stderr,
                 "interrupted; completed points are journaled%s\n",
                 cfg.checkpoint_path.empty()
                     ? " only if --checkpoint/--resume was given"
                     : (" in " + cfg.checkpoint_path + " (resume with "
                        "--resume=" + cfg.checkpoint_path + ")")
                           .c_str());
    std::exit(sweep.exit_code());
  }
  if (!sweep.ok()) g_exit_code = sweep.exit_code();
  return std::move(sweep.results);
}

// Convenience builder for a sweep point whose scenario config is known up
// front (seed, scenario description, and fault spec land in the repro
// bundle automatically).
template <typename T>
SupervisedTask<T> sweep_point(std::string name, const ScenarioConfig& cfg,
                              std::function<T(RunContext&)> fn) {
  return {std::move(fn), run_info(std::move(name), cfg)};
}

// Mean of `trials` runs of `fn(seed)`.
template <typename Fn>
double mean_over_trials(int trials, uint64_t base_seed, Fn fn) {
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    sum += fn(base_seed + static_cast<uint64_t>(t) * 1000);
  }
  return sum / trials;
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline ScenarioConfig emulab_link(uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;
  cfg.seed = seed;
  return cfg;
}

}  // namespace proteus::bench
