// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure from the paper and prints
// the same rows/series the paper reports. Runs are shorter than the
// paper's (simulated single-core budget); EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these outputs.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/cli.h"
#include "harness/experiments.h"
#include "harness/table.h"

namespace proteus::bench {

// Worker-thread count for the sweep benches: `--jobs=N` if given,
// otherwise every hardware thread. Unknown arguments abort with the
// offending flag so a typo does not silently run single-threaded.
inline int parse_jobs(int argc, char** argv) {
  int jobs = default_job_count();
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (!parse_jobs_flag(argv[i], jobs, error)) {
      std::fprintf(stderr, "%s: %s (only --jobs=N is accepted)\n", argv[0],
                   error.empty() ? argv[i] : error.c_str());
      std::exit(2);
    }
  }
  return jobs;
}

// Mean of `trials` runs of `fn(seed)`.
template <typename Fn>
double mean_over_trials(int trials, uint64_t base_seed, Fn fn) {
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    sum += fn(base_seed + static_cast<uint64_t>(t) * 1000);
  }
  return sum / trials;
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline ScenarioConfig emulab_link(uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;
  cfg.seed = seed;
  return cfg;
}

}  // namespace proteus::bench
