// Shared helpers for the figure-reproduction benches.
//
// Each bench binary regenerates one table/figure from the paper and prints
// the same rows/series the paper reports. Runs are shorter than the
// paper's (simulated single-core budget); EXPERIMENTS.md records the
// paper-vs-measured comparison produced from these outputs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiments.h"
#include "harness/table.h"

namespace proteus::bench {

// Mean of `trials` runs of `fn(seed)`.
template <typename Fn>
double mean_over_trials(int trials, uint64_t base_seed, Fn fn) {
  double sum = 0.0;
  for (int t = 0; t < trials; ++t) {
    sum += fn(base_seed + static_cast<uint64_t>(t) * 1000);
  }
  return sum / trials;
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline ScenarioConfig emulab_link(uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;
  cfg.seed = seed;
  return cfg;
}

}  // namespace proteus::bench
