// Fig 10 (and Fig 22 with LEDBAT-25): primary throughput ratio CDFs on
// the 64 wireless paths, five primaries x scavengers {Proteus-S, LEDBAT,
// LEDBAT-25}.
//
// Paper result (medians): with Proteus-S, BBR and CUBIC gain 17.6% and
// 19.2% over LEDBAT; the latency-aware primaries gain 39-44%.
#include <array>
#include <map>

#include "bench/bench_util.h"
#include "harness/wifi_paths.h"
#include "stats/percentile.h"

using namespace proteus;

namespace {

struct PathResult {
  bool valid = false;  // false when the alone baseline starved
  std::array<double, 3> ratios{};
};

}  // namespace

int main(int argc, char** argv) {
  const bench::SweepOptions opt = bench::parse_sweep_flags(argc, argv, "fig10");
  bench::print_header(
      "Figure 10 / Figure 22",
      "Primary throughput ratio on 64 WiFi paths (per scavenger)");

  const std::vector<std::string>& primaries = primary_protocol_names();
  const std::vector<std::string> scavengers = {"proteus-s", "ledbat",
                                               "ledbat-25"};
  const auto paths = wifi_path_set();
  const TimeNs duration = from_sec(40);
  const TimeNs warmup = from_sec(15);

  // One task per (path, primary): the alone baseline plus one run per
  // scavenger, 4 simulations each.
  std::vector<SupervisedTask<PathResult>> tasks;
  for (size_t pi = 0; pi < paths.size(); ++pi) {
    const WifiPath& path = paths[pi];
    for (const std::string& prim : primaries) {
      const ScenarioConfig scenario = path.scenario;
      tasks.push_back(bench::sweep_point<PathResult>(
          "path=" + std::to_string(pi) + " primary=" + prim, scenario,
          [scenario, prim, scavengers, duration, warmup](RunContext& ctx) {
            ScenarioConfig base = scenario;
            base.seed = ctx.attempt_seed(scenario.seed);
            PathResult r;
            double alone;
            {
              Scenario sc(base);
              Flow& p = sc.add_flow(prim, 0);
              supervised_run_until(sc, duration, &ctx);
              check_invariants_or_throw(sc);
              alone = p.mean_throughput_mbps(warmup, duration);
            }
            if (alone <= 0.0) return r;
            r.valid = true;
            for (size_t s = 0; s < scavengers.size(); ++s) {
              ScenarioConfig cfg = base;
              cfg.seed += 0x51;
              Scenario sc(cfg);
              Flow& p = sc.add_flow(prim, 0);
              sc.add_flow(scavengers[s], from_sec(3));
              supervised_run_until(sc, duration, &ctx);
              check_invariants_or_throw(sc);
              r.ratios[s] = p.mean_throughput_mbps(warmup, duration) / alone;
            }
            return r;
          }));
    }
  }
  const std::vector<PathResult> results = bench::run_sweep(
      opt, std::move(tasks),
      codec_from<PathResult>(
          [](const PathResult& r) {
            return std::vector<double>{r.valid ? 1.0 : 0.0, r.ratios[0],
                                       r.ratios[1], r.ratios[2]};
          },
          [](const std::vector<double>& v) {
            PathResult r;
            if (v.size() >= 4) {
              r.valid = v[0] != 0.0;
              r.ratios = {v[1], v[2], v[3]};
            }
            return r;
          }));

  std::map<std::string, std::map<std::string, Samples>> ratios;
  size_t k = 0;
  for (size_t pi = 0; pi < paths.size(); ++pi) {
    for (const std::string& prim : primaries) {
      const PathResult& r = results[k++];
      if (!r.valid) continue;
      for (size_t s = 0; s < scavengers.size(); ++s) {
        ratios[prim][scavengers[s]].add(r.ratios[s]);
      }
    }
  }

  Table t({"primary", "scavenger", "p25", "median", "p75",
           "frac_ratio>=0.9"});
  for (const std::string& prim : primaries) {
    for (const std::string& scav : scavengers) {
      const Samples& s = ratios[prim][scav];
      t.add_row({prim, scav, fmt(s.percentile(25), 2), fmt(s.median(), 2),
                 fmt(s.percentile(75), 2),
                 fmt(1.0 - s.cdf_at(0.9 - 1e-12), 2)});
    }
  }
  t.print();

  std::printf("\nMedian gain of Proteus-S over LEDBAT-100 per primary:\n");
  for (const std::string& prim : primaries) {
    const double a = ratios[prim]["proteus-s"].median();
    const double b = ratios[prim]["ledbat"].median();
    std::printf("  %-10s %+5.1f%%  (paper: bbr +17.6%%, cubic +19.2%%, "
                "copa +39.3%%, proteus-p +41.0%%, vivace +44.1%%)\n",
                prim.c_str(), (a / std::max(b, 1e-9) - 1.0) * 100.0);
  }
  return bench::exit_code();
}
