// Telemetry subsystem tests: recorder ring/subsampling semantics, the
// golden "recorder matches the sender's own decisions" pin, the
// bit-identical-with-telemetry-off guarantee, exporter round trips, the
// metrics registry, and the phase profiler.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "core/pcc_sender.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"
#include "harness/telemetry_export.h"
#include "telemetry/profiler.h"
#include "telemetry/telemetry.h"

namespace proteus {
namespace {

MiRecord record_with_id(uint64_t id) {
  MiRecord r;
  r.mi_id = id;
  r.utility = static_cast<double>(id) * 0.5;
  r.rc_state = "probing";
  r.mode = "proteus-scavenger";
  return r;
}

// ---- Recorder ring + subsampling ---------------------------------------

TEST(TelemetryRecorder, EveryNSubsamples) {
  TelemetryRecorder rec(/*capacity=*/16, /*every=*/3);
  std::vector<bool> hits;
  for (int i = 0; i < 9; ++i) hits.push_back(rec.should_record());
  // First MI always records, then every third.
  const std::vector<bool> expected = {true, false, false, true, false,
                                      false, true, false, false};
  EXPECT_EQ(hits, expected);
  EXPECT_EQ(rec.seen(), 9u);
}

TEST(TelemetryRecorder, RingEvictsOldestFirst) {
  TelemetryRecorder rec(/*capacity=*/8, /*every=*/1);
  for (uint64_t id = 1; id <= 20; ++id) rec.push(record_with_id(id));
  EXPECT_EQ(rec.size(), 8u);
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.evicted(), 12u);
  // Oldest retained is 13, newest 20, in chronological order.
  for (size_t i = 0; i < rec.size(); ++i) {
    EXPECT_EQ(rec.at(i).mi_id, 13u + i) << "slot " << i;
  }
  const std::vector<MiRecord> snap = rec.snapshot();
  ASSERT_EQ(snap.size(), 8u);
  EXPECT_EQ(snap.front().mi_id, 13u);
  EXPECT_EQ(snap.back().mi_id, 20u);
}

TEST(TelemetryRecorder, BelowCapacityKeepsEverything) {
  TelemetryRecorder rec(/*capacity=*/8, /*every=*/1);
  for (uint64_t id = 1; id <= 5; ++id) rec.push(record_with_id(id));
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.evicted(), 0u);
  EXPECT_EQ(rec.at(0).mi_id, 1u);
  EXPECT_EQ(rec.at(4).mi_id, 5u);
}

// ---- Golden: the recorded series matches the sender's decisions --------

class TelemetryGolden : public ::testing::Test {
 protected:
  // One 50 Mbps proteus-s flow, fixed seed, recorder attached from t=0.
  void run(TelemetryRecorder* rec) {
    ScenarioConfig cfg;
    cfg.seed = 7;
    sc_ = std::make_unique<Scenario>(cfg);
    flow_ = &sc_->add_flow("proteus-s", 0);
    if (rec != nullptr) flow_->sender().cc().set_telemetry(rec);
    sc_->run_until(from_sec(30));
    sender_ = dynamic_cast<const PccSender*>(&flow_->sender().cc());
    ASSERT_NE(sender_, nullptr);
  }

  std::unique_ptr<Scenario> sc_;
  Flow* flow_ = nullptr;
  const PccSender* sender_ = nullptr;
};

TEST_F(TelemetryGolden, RecorderMatchesSenderDecisions) {
  TelemetryRecorder rec(/*capacity=*/100000, /*every=*/1);
  run(&rec);
  ASSERT_GT(sender_->mis_completed(), 50u);

  // Every completed (useful) MI consulted the subsampler exactly once and,
  // with every=1, produced exactly one record; nothing was evicted.
  EXPECT_EQ(rec.seen(), sender_->mis_completed());
  EXPECT_EQ(rec.recorded(), sender_->mis_completed());
  EXPECT_EQ(rec.evicted(), 0u);

  // The last record is the last MI the sender scored: its utility and
  // filtered metrics must equal the sender's own introspection, exactly.
  const MiRecord& last = rec.at(rec.size() - 1);
  const MiMetrics& m = sender_->last_mi_metrics();
  EXPECT_EQ(last.utility, sender_->last_utility());
  EXPECT_EQ(last.send_rate_mbps, m.send_rate_mbps);
  EXPECT_EQ(last.rtt_gradient, m.rtt_gradient);
  EXPECT_EQ(last.rtt_gradient_raw, m.rtt_gradient_raw);
  EXPECT_EQ(last.rtt_dev_sec, m.rtt_dev_sec);
  EXPECT_EQ(last.loss_rate, m.loss_rate);

  uint64_t prev_id = 0;
  for (size_t i = 0; i < rec.size(); ++i) {
    const MiRecord& r = rec.at(i);
    // MI ids climb strictly (abandoned MIs may leave gaps).
    EXPECT_GT(r.mi_id, prev_id);
    prev_id = r.mi_id;
    // The decomposition reassembles the utility:
    // u = throughput_term - gradient - loss - deviation penalties.
    EXPECT_NEAR(r.utility,
                r.utility_throughput_term - r.utility_gradient_penalty -
                    r.utility_loss_penalty - r.utility_deviation_penalty,
                1e-9 + 1e-9 * std::abs(r.utility));
    // An insignificant trending verdict means the gradient was gated.
    if (r.trending_evaluated && !r.gradient_significant) {
      EXPECT_EQ(r.rtt_gradient, 0.0);
    }
    EXPECT_TRUE(r.rc_state == "starting" || r.rc_state == "probing" ||
                r.rc_state == "moving")
        << r.rc_state;
    EXPECT_EQ(r.mode, sender_->utility().name());
    EXPECT_EQ(r.hybrid_threshold_mbps, 0.0);  // not a hybrid flow
    EXPECT_GT(r.send_rate_mbps, 0.0);
    EXPECT_GE(r.rtt_samples, 2);
    EXPECT_GE(r.packets_sent, r.packets_acked);
  }
}

TEST_F(TelemetryGolden, TelemetryOnIsBitIdentical) {
  // Same seed, recorder detached vs. attached: recording is pure
  // observation, so every stat of the two runs must match exactly.
  run(nullptr);
  const SenderStats off = flow_->sender().stats();
  const double off_utility = sender_->last_utility();
  const uint64_t off_mis = sender_->mis_completed();
  const double off_mbps =
      flow_->mean_throughput_mbps(from_sec(5), from_sec(30));

  TelemetryRecorder rec(/*capacity=*/100000, /*every=*/1);
  run(&rec);
  const SenderStats on = flow_->sender().stats();
  EXPECT_EQ(on.packets_sent, off.packets_sent);
  EXPECT_EQ(on.packets_acked, off.packets_acked);
  EXPECT_EQ(on.packets_lost, off.packets_lost);
  EXPECT_EQ(on.bytes_delivered, off.bytes_delivered);
  EXPECT_EQ(sender_->mis_completed(), off_mis);
  EXPECT_EQ(sender_->last_utility(), off_utility);
  EXPECT_EQ(flow_->mean_throughput_mbps(from_sec(5), from_sec(30)),
            off_mbps);
  EXPECT_GT(rec.recorded(), 0u);  // the recorder did observe the run
}

TEST_F(TelemetryGolden, SubsamplingRecordsEveryNthMi) {
  TelemetryRecorder rec(/*capacity=*/100000, /*every=*/4);
  run(&rec);
  EXPECT_EQ(rec.seen(), sender_->mis_completed());
  // ceil(seen / 4) records: the first MI hits, then every fourth.
  EXPECT_EQ(rec.recorded(), (rec.seen() + 3) / 4);
}

// ---- Exporters ---------------------------------------------------------

TEST(TelemetryExport, JsonlCarriesEveryRequiredKey) {
  TelemetryRecorder rec(8, 1);
  rec.push(record_with_id(1));
  rec.push(record_with_id(2));
  const std::string path = ::testing::TempDir() + "/telemetry_test.jsonl";
  ASSERT_TRUE(write_mi_records_jsonl(path, "flow0-proteus-s", rec));
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    for (const std::string& key : mi_record_required_keys()) {
      EXPECT_NE(line.find("\"" + key + "\":"), std::string::npos)
          << "line " << lines << " missing " << key;
    }
    EXPECT_NE(line.find("\"flow\":\"flow0-proteus-s\""), std::string::npos);
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TelemetryExport, CsvHeaderMatchesRowWidth) {
  TelemetryRecorder rec(8, 1);
  rec.push(record_with_id(1));
  const std::string path = ::testing::TempDir() + "/telemetry_test.csv";
  ASSERT_TRUE(write_mi_records_csv(path, rec));
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, row));
  const auto commas = [](const std::string& s) {
    return std::count(s.begin(), s.end(), ',');
  };
  EXPECT_EQ(commas(header), commas(row));
  std::remove(path.c_str());
}

TEST(TelemetryExport, SanitizePathComponent) {
  EXPECT_EQ(sanitize_path_component("flow0-proteus.s_1"),
            "flow0-proteus.s_1");
  EXPECT_EQ(sanitize_path_component("a/b c:d"), "a_b_c_d");
  EXPECT_EQ(sanitize_path_component(""), "flow");
}

TEST(TelemetryExport, SessionExportsOnDestruction) {
  const std::string dir = ::testing::TempDir() + "/telemetry_session";
  TelemetryConfig cfg;
  cfg.dir = dir;
  cfg.every = 1;
  RunContext ctx(/*attempt=*/0, /*wall_timeout_sec=*/0,
                 /*sim_timeout_sec=*/0, /*trace_capacity=*/50);
  ctx.set_telemetry(&cfg, "unit");

  ScenarioConfig scfg;
  scfg.seed = 11;
  Scenario sc(scfg);
  Flow& flow = sc.add_flow("proteus-s", 0);
  {
    FlowTelemetrySession session(&ctx, flow, "flow0-proteus-s");
    ASSERT_TRUE(session.active());
    sc.run_until(from_sec(10));
    EXPECT_GT(session.recorder()->recorded(), 0u);
  }  // destructor exports

  const std::string base = dir + "/unit-flow0-proteus-s";
  for (const char* suffix : {".jsonl", ".csv", ".metrics.csv"}) {
    std::ifstream in(base + suffix);
    EXPECT_TRUE(in.good()) << base << suffix;
    std::string first;
    EXPECT_TRUE(std::getline(in, first)) << base << suffix;
  }
  // The metrics snapshot names the counters the registry promises.
  std::ifstream metrics(base + ".metrics.csv");
  std::string all((std::istreambuf_iterator<char>(metrics)),
                  std::istreambuf_iterator<char>());
  for (const char* name :
       {"mis_completed", "ack_filter_accepted", "sender_packets_sent",
        "rtt_ms.p95", "base_rate_mbps"}) {
    EXPECT_NE(all.find(name), std::string::npos) << name;
  }
  // The context received the JSONL tail for repro bundles.
  EXPECT_FALSE(ctx.telemetry_tail().empty());
  for (const std::string& line : ctx.telemetry_tail()) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_NE(line.find("\"flow\":"), std::string::npos);
  }
}

TEST(TelemetryExport, SessionInertWithoutConfig) {
  ScenarioConfig scfg;
  scfg.seed = 11;
  Scenario sc(scfg);
  Flow& flow = sc.add_flow("proteus-s", 0);
  FlowTelemetrySession no_ctx(nullptr, flow, "flow0");
  EXPECT_FALSE(no_ctx.active());
  RunContext ctx(0, 0, 0, 50);  // context without telemetry config
  FlowTelemetrySession no_cfg(&ctx, flow, "flow0");
  EXPECT_FALSE(no_cfg.active());
}

// ---- Metrics registry ---------------------------------------------------

TEST(MetricsRegistry, KindsAndHistogramExpansion) {
  MetricsRegistry reg;
  reg.counter("retransmits", 3);
  reg.gauge("rate_mbps", 12.5);
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  reg.histogram("rtt_ms", s);
  const auto& e = reg.entries();
  ASSERT_EQ(e.size(), 8u);  // 1 counter + 1 gauge + 6 histogram rows
  EXPECT_EQ(e[0].name, "retransmits");
  EXPECT_EQ(e[0].kind, 'c');
  EXPECT_DOUBLE_EQ(e[0].value, 3.0);
  EXPECT_EQ(e[1].kind, 'g');
  EXPECT_DOUBLE_EQ(e[1].value, 12.5);
  EXPECT_EQ(e[2].name, "rtt_ms.count");
  EXPECT_DOUBLE_EQ(e[2].value, 4.0);
  EXPECT_EQ(e[7].name, "rtt_ms.max");
  EXPECT_DOUBLE_EQ(e[7].value, 4.0);
}

// ---- Profiler -----------------------------------------------------------

TEST(Profiler, ScopesRecordOnlyWhenInstalled) {
  Profiler p;
  { PROTEUS_PROFILE_SCOPE(ProfilePhase::kOnAck); }  // disarmed: no-op
  EXPECT_EQ(p.stats(ProfilePhase::kOnAck).calls, 0u);

  Profiler* prev = Profiler::install(&p);
  { PROTEUS_PROFILE_SCOPE(ProfilePhase::kOnAck); }
  { PROTEUS_PROFILE_SCOPE(ProfilePhase::kSealMi); }
  { PROTEUS_PROFILE_SCOPE(ProfilePhase::kSealMi); }
  Profiler::install(prev);
  { PROTEUS_PROFILE_SCOPE(ProfilePhase::kOnAck); }  // disarmed again

  EXPECT_EQ(p.stats(ProfilePhase::kOnAck).calls, 1u);
  EXPECT_EQ(p.stats(ProfilePhase::kSealMi).calls, 2u);
  EXPECT_EQ(p.stats(ProfilePhase::kRateControl).calls, 0u);

  const std::string table = p.summary_table();
  EXPECT_NE(table.find("on_ack"), std::string::npos);
  EXPECT_NE(table.find("seal_mi"), std::string::npos);

  p.reset();
  EXPECT_EQ(p.stats(ProfilePhase::kSealMi).calls, 0u);
}

TEST(Profiler, ProfiledSimRecordsAllPhases) {
  Profiler p;
  Profiler* prev = Profiler::install(&p);
  ScenarioConfig cfg;
  cfg.seed = 3;
  {
    Scenario sc(cfg);
    sc.add_flow("proteus-p", 0);
    sc.run_until(from_sec(5));
  }
  Profiler::install(prev);
  for (ProfilePhase phase :
       {ProfilePhase::kOnAck, ProfilePhase::kSealMi,
        ProfilePhase::kRateControl, ProfilePhase::kEventQueue}) {
    EXPECT_GT(p.stats(phase).calls, 0u) << profile_phase_name(phase);
  }
  // Event dispatch is inclusive, so it dominates every other phase.
  EXPECT_GE(p.stats(ProfilePhase::kEventQueue).total_ns,
            p.stats(ProfilePhase::kSealMi).total_ns);
}

}  // namespace
}  // namespace proteus
