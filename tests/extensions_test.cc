// Tests for the extension features beyond the paper's core: CoDel AQM
// (section 7.2's in-network direction) and the deadline-driven hybrid
// threshold policy (section 2.3's dynamic-priority software update).
#include <gtest/gtest.h>

#include <memory>

#include "core/hybrid_threshold.h"
#include "app/bulk.h"
#include "harness/scenario.h"

namespace proteus {
namespace {

// ---- CoDel -----------------------------------------------------------------

TEST(Codel, BoundsQueueDelayForBufferFiller) {
  // CUBIC on a deep tail-drop buffer bloats it; under CoDel the standing
  // queue stays near the 5 ms target.
  auto run = [](bool codel_on) {
    Simulator sim(31);
    LinkConfig lc;
    lc.rate = Bandwidth::from_mbps(50);
    lc.prop_delay = from_ms(15);
    lc.buffer_bytes = 1'500'000;
    lc.codel.enabled = codel_on;
    DumbbellConfig dc;
    dc.bottleneck = lc;
    dc.reverse_delay = from_ms(15);
    Dumbbell db(&sim, dc);
    FlowConfig fc;
    fc.id = 1;
    Flow flow(&sim, &db, fc, make_protocol("cubic", 7));
    sim.run_until(from_sec(30));
    return std::make_pair(flow.rtt_samples().percentile(95),
                          db.bottleneck().stats().codel_drops);
  };

  const auto [p95_tail, drops_tail] = run(false);
  const auto [p95_codel, drops_codel] = run(true);
  EXPECT_EQ(drops_tail, 0);
  EXPECT_GT(drops_codel, 10);
  // Tail drop: full 1.5 MB buffer = 240 ms of queue on top of 30 ms base.
  EXPECT_GT(p95_tail, 150.0);
  // CoDel: standing queue held near target.
  EXPECT_LT(p95_codel, 70.0);
}

TEST(Codel, BelowTargetNeverDrops) {
  Simulator sim(32);
  LinkConfig lc;
  lc.rate = Bandwidth::from_mbps(50);
  lc.codel.enabled = true;
  DumbbellConfig dc;
  dc.bottleneck = lc;
  Dumbbell db(&sim, dc);
  FlowConfig fc;
  fc.id = 1;
  // A fixed 10 Mbps flow on a 50 Mbps link never builds 5 ms of queue.
  Flow flow(&sim, &db, fc,
            std::make_unique<FixedRateController>(Bandwidth::from_mbps(10)));
  sim.run_until(from_sec(20));
  EXPECT_EQ(db.bottleneck().stats().codel_drops, 0);
  EXPECT_GT(flow.sender().stats().bytes_delivered, 0);
}

TEST(Codel, LatencyAwareProtocolsCoexistWithIt) {
  Simulator sim(33);
  LinkConfig lc;
  lc.rate = Bandwidth::from_mbps(50);
  lc.prop_delay = from_ms(15);
  lc.codel.enabled = true;
  DumbbellConfig dc;
  dc.bottleneck = lc;
  dc.reverse_delay = from_ms(15);
  Dumbbell db(&sim, dc);
  FlowConfig fc;
  fc.id = 1;
  Flow flow(&sim, &db, fc, make_protocol("proteus-p", 9));
  sim.run_until(from_sec(30));
  // Slow-start overshoot legitimately trips CoDel, but at steady state
  // Proteus-P keeps the queue below the target: rate stays high and the
  // p95 RTT stays close to the base (no standing 5 ms+ queue).
  EXPECT_GT(flow.mean_throughput_mbps(from_sec(10), from_sec(30)), 35.0);
  EXPECT_LT(flow.rtt_samples().percentile(95), 60.0);
}

// ---- Deadline threshold policy ----------------------------------------------

TEST(DeadlinePolicy, RequiredRateMath) {
  auto state = std::make_shared<HybridThresholdState>();
  // 100 Mb (12.5 MB) due in 10 s -> 10 Mbps required.
  DeadlineThresholdPolicy p(state, 12'500'000, from_sec(10));
  EXPECT_NEAR(p.required_rate_mbps(0, 0), 10.0, 1e-9);
  EXPECT_NEAR(p.required_rate_mbps(6'250'000, from_sec(5)), 10.0, 1e-9);
  EXPECT_NEAR(p.required_rate_mbps(12'500'000, from_sec(5)), 0.0, 1e-9);
  EXPECT_GE(p.required_rate_mbps(0, from_sec(10)), 1e9);
}

TEST(DeadlinePolicy, ThresholdRisesWhenBehindFallsWhenAhead) {
  auto state = std::make_shared<HybridThresholdState>();
  DeadlineThresholdPolicy p(state, 12'500'000, from_sec(10));
  p.on_progress(0, 0);
  const double at_start = state->threshold_mbps();
  EXPECT_NEAR(at_start, 15.0, 1e-9);  // 1.5 margin * 10 Mbps

  // Way ahead of schedule: threshold drops (flow mostly scavenges).
  p.on_progress(11'000'000, from_sec(5));
  EXPECT_LT(state->threshold_mbps(), 4.0);

  // Behind schedule: threshold rises above the start.
  p.on_progress(2'000'000, from_sec(8));
  EXPECT_GT(state->threshold_mbps(), at_start);
}

TEST(DeadlinePolicy, DrivesHybridFlowToFinishOnTime) {
  // A 30 MB update due at t=40s competes with a COPA call on 50 Mbps.
  // Required rate ~6.3 Mbps: the hybrid flow claims about that much and
  // scavenges the rest of the time.
  ScenarioConfig cfg;
  cfg.seed = 34;
  Scenario sc(cfg);
  sc.add_flow("copa", 0);

  auto state = std::make_shared<HybridThresholdState>();
  DeadlineThresholdPolicy policy(state, 30'000'000, from_sec(40));

  FlowConfig fc;
  fc.id = sc.allocate_flow_id();
  fc.unlimited = false;
  fc.total_bytes = 30'000'000;
  Flow flow(&sc.sim(), &sc.dumbbell(), fc,
            make_protocol("proteus-h", sc.flow_seed(fc.id), state,
                          &sc.config().tuning));
  flow.sender().set_on_delivered([&](int64_t, TimeNs now) {
    policy.on_progress(flow.sender().stats().bytes_delivered, now);
  });

  sc.run_until(from_sec(46));
  ASSERT_TRUE(flow.completed());
  // Allow a small overshoot: the threshold is a target the controller
  // tracks, not a guarantee.
  EXPECT_LE(flow.completion_time(), from_sec(44));
}

}  // namespace
}  // namespace proteus
