// System-level integration tests: the paper's headline behaviors on the
// emulated bottleneck. These are the claims EXPERIMENTS.md tracks; each
// test uses shorter runs than the benches but asserts the same shape.
#include <gtest/gtest.h>

#include "harness/experiments.h"
#include "harness/wifi_paths.h"
#include "stats/jain.h"

namespace proteus {
namespace {

ScenarioConfig paper_link(uint64_t seed = 5) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;  // 2 BDP
  cfg.seed = seed;
  return cfg;
}

// Yielding goal: Proteus-S leaves primaries nearly untouched...
struct YieldCase {
  const char* primary;
  double min_ratio_proteus;  // conservative bound vs the paper's numbers
  double max_ratio_ledbat;   // LEDBAT must do clearly worse
};

class Yielding : public ::testing::TestWithParam<YieldCase> {};

TEST_P(Yielding, ProteusYieldsWhereLedbatFails) {
  const YieldCase& c = GetParam();
  const auto proteus =
      run_pair(c.primary, "proteus-s", paper_link(), from_sec(90),
               from_sec(30));
  const auto ledbat = run_pair(c.primary, "ledbat", paper_link(),
                               from_sec(90), from_sec(30));
  EXPECT_GT(proteus.primary_ratio, c.min_ratio_proteus) << c.primary;
  EXPECT_LT(ledbat.primary_ratio, c.max_ratio_ledbat) << c.primary;
  EXPECT_GT(proteus.primary_ratio, ledbat.primary_ratio) << c.primary;
}

INSTANTIATE_TEST_SUITE_P(
    Primaries, Yielding,
    ::testing::Values(YieldCase{"cubic", 0.90, 0.85},
                      YieldCase{"bbr", 0.85, 0.50},
                      YieldCase{"copa", 0.70, 0.60},
                      YieldCase{"proteus-p", 0.70, 0.45},
                      YieldCase{"vivace", 0.55, 0.45}));

TEST(Yielding, JointUtilizationStaysHigh) {
  const auto r = run_pair("bbr", "proteus-s", paper_link(), from_sec(90),
                          from_sec(30));
  EXPECT_GT(r.utilization, 0.90);
}

TEST(Yielding, ProteusScavengerBarelyInflatesRtt) {
  const auto proteus = run_pair("bbr", "proteus-s", paper_link(),
                                from_sec(90), from_sec(30));
  const auto ledbat = run_pair("bbr", "ledbat", paper_link(), from_sec(90),
                               from_sec(30));
  EXPECT_LT(proteus.rtt_ratio, 1.4);
  EXPECT_GT(ledbat.rtt_ratio, 1.7);  // LEDBAT adds ~its 100 ms target
}

// Performance goal: scavengers alone behave like a normal CC.
TEST(ScavengerPerformance, TwoProteusScavengersShareFairly) {
  Scenario sc(paper_link(6));
  Flow& f1 = sc.add_flow("proteus-s", 0);
  Flow& f2 = sc.add_flow("proteus-s", from_sec(20));
  sc.run_until(from_sec(120));
  const double a = f1.mean_throughput_mbps(from_sec(40), from_sec(120));
  const double b = f2.mean_throughput_mbps(from_sec(40), from_sec(120));
  EXPECT_GT(jain_index({a, b}), 0.90);
  // Mutual deviation penalties (and the emergency brake) make competing
  // scavengers conservative; the paper's own Fig 18 shows Proteus-S
  // "fluctuating more" among itself. See EXPERIMENTS.md known deltas.
  EXPECT_GT((a + b) / 50.0, 0.55);
}

TEST(ScavengerPerformance, LedbatLatecomerAdvantage) {
  // The latecomer effect needs a buffer that can absorb more than one
  // flow's 100 ms target (at 50 Mbps, 100 ms = 625 KB).
  ScenarioConfig cfg = paper_link(7);
  cfg.buffer_bytes = 1'500'000;
  Scenario sc(cfg);
  Flow& f1 = sc.add_flow("ledbat", 0);
  Flow& f2 = sc.add_flow("ledbat", from_sec(30));
  // LEDBAT's linear controller (GAIN = 1) takes minutes to hand the link
  // over; measure the late window where the takeover is visible.
  sc.run_until(from_sec(200));
  const double first = f1.mean_throughput_mbps(from_sec(150), from_sec(200));
  const double second = f2.mean_throughput_mbps(from_sec(150), from_sec(200));
  // The latecomer measures an inflated base delay and wins.
  EXPECT_GT(second, first * 1.3);
}

TEST(ScavengerPerformance, ProteusToleratesRandomLossLedbatDoesNot) {
  ScenarioConfig cfg = paper_link(8);
  cfg.random_loss = 0.01;  // 1%
  const auto proteus = run_single_flow("proteus-p", cfg, from_sec(60),
                                       from_sec(20));
  const auto ledbat = run_single_flow("ledbat", cfg, from_sec(60),
                                      from_sec(20));
  EXPECT_GT(proteus.utilization, 0.70);
  EXPECT_LT(ledbat.utilization, 0.35);
}

TEST(ScavengerPerformance, LedbatNeedsBigBufferProteusDoesNot) {
  ScenarioConfig small = paper_link(9);
  small.buffer_bytes = 15'000;  // ~0.08 BDP
  const auto proteus = run_single_flow("proteus-s", small, from_sec(60),
                                       from_sec(20));
  const auto ledbat = run_single_flow("ledbat", small, from_sec(60),
                                      from_sec(20));
  EXPECT_GT(proteus.utilization, 0.70);
  EXPECT_LT(ledbat.utilization, proteus.utilization);
  // LEDBAT keeps a small buffer pinned full (high inflation ratio).
  EXPECT_GT(ledbat.inflation_ratio_95, 0.8);
}

// BBR-S (section 7.1): RTT deviation generalizes beyond PCC.
TEST(BbrScavenger, YieldsToBbrAndCubic) {
  for (const char* primary : {"bbr", "cubic"}) {
    const auto r = run_pair(primary, "bbr-s", paper_link(10), from_sec(90),
                            from_sec(30));
    EXPECT_GT(r.primary_ratio, 0.75) << primary;
  }
}

TEST(BbrScavenger, FairWithItself) {
  Scenario sc(paper_link(11));
  Flow& f1 = sc.add_flow("bbr-s", 0);
  Flow& f2 = sc.add_flow("bbr-s", from_sec(10));
  sc.run_until(from_sec(90));
  const double a = f1.mean_throughput_mbps(from_sec(30), from_sec(90));
  const double b = f2.mean_throughput_mbps(from_sec(30), from_sec(90));
  EXPECT_GT(jain_index({a, b}), 0.80);
}

// Fairness (paper Fig 5 methodology, small n).
class MultiflowFairness : public ::testing::TestWithParam<const char*> {};

TEST_P(MultiflowFairness, JainAboveNinety) {
  const auto r = run_multiflow_fairness(GetParam(), 3, 12);
  EXPECT_GT(r.jain, 0.90) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Protocols, MultiflowFairness,
                         ::testing::Values("proteus-p", "cubic", "bbr",
                                           "copa", "vivace"));

// The wireless path set must be usable by every protocol.
TEST(WifiPaths, SixtyFourDistinctPaths) {
  const auto paths = wifi_path_set();
  ASSERT_EQ(paths.size(), 64u);
  for (size_t i = 1; i < paths.size(); ++i) {
    EXPECT_NE(paths[i].scenario.seed, paths[i - 1].scenario.seed);
  }
}

TEST(WifiPaths, ProtocolsSurviveHarshestPath) {
  const auto paths = wifi_path_set();
  const ScenarioConfig cfg = paths.back().scenario;  // harshest location
  for (const char* proto : {"proteus-s", "proteus-p", "ledbat", "bbr"}) {
    const auto r = run_single_flow(proto, cfg, from_sec(40), from_sec(15));
    EXPECT_GT(r.throughput_mbps, 0.3) << proto;
    EXPECT_LT(r.throughput_mbps, cfg.bandwidth_mbps * 1.05) << proto;
  }
}

TEST(TimeSeries, StaggeredStartsProduceRamps) {
  const auto series = run_time_series({"proteus-p", "proteus-p"},
                                      paper_link(13), from_sec(20),
                                      from_sec(60));
  ASSERT_EQ(series.size(), 2u);
  ASSERT_EQ(series[0].size(), 60u);
  // Flow 0 owns the link during the first 20 s.
  EXPECT_GT(series[0][15], 30.0);
  EXPECT_LT(series[1][15], 1.0);
  // After convergence the pair shares.
  EXPECT_GT(series[1][50], 10.0);
}

}  // namespace
}  // namespace proteus
