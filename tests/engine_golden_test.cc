// Cross-engine determinism golden suite.
//
// The timer-wheel engine claims bit-identical execution with the
// reference binary heap: both pop the exact global minimum under the
// strict (when, seq) total order, so every RNG draw happens in the same
// order and every simulation artifact — traces, telemetry, final CSVs —
// must match byte for byte. These tests are the enforcement point for
// that claim across all eight protocols, fault timelines, and the
// parallel runner at different worker counts.
#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "harness/factory.h"
#include "harness/fault_spec.h"
#include "harness/parallel_runner.h"
#include "harness/scenario.h"
#include "harness/supervisor.h"
#include "harness/telemetry_export.h"
#include "harness/trace_export.h"

namespace proteus {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<FaultSpec> faults_or_die(const std::string& spec) {
  FaultParseResult r = parse_faults(spec);
  EXPECT_TRUE(r.ok) << r.error;
  return r.faults;
}

// Everything observable about a run, cheap enough to compare directly.
struct RunDigest {
  std::vector<int64_t> counters;
  std::string throughput_csv;
  std::string rtt_csv;
  std::string link_csv;

  bool operator==(const RunDigest&) const = default;
};

// Runs `protocol` flows on a fig03-style dumbbell and digests the run.
RunDigest run_protocol(EventEngine engine, const std::string& protocol,
                       const std::string& tag) {
  ScenarioConfig cfg;
  cfg.engine = engine;
  cfg.bandwidth_mbps = 50;
  cfg.rtt_ms = 30;
  cfg.seed = 7;
  Scenario sc(cfg);
  Flow& a = sc.add_flow(protocol, 0);
  Flow& b = sc.add_flow(protocol, from_sec(1));
  sc.run_until(from_sec(6));

  const std::string base = ::testing::TempDir() + "/engine_golden_" + tag;
  EXPECT_TRUE(write_throughput_csv(base + ".csv", {&a, &b}, from_sec(6)));
  EXPECT_TRUE(write_rtt_csv(base + "_rtt.csv", a));
  EXPECT_TRUE(
      write_link_stats_csv(base + "_link.csv",
                           sc.dumbbell().bottleneck().stats()));

  RunDigest d;
  const LinkStats& st = sc.dumbbell().bottleneck().stats();
  for (const Flow* f : {&a, &b}) {
    const SenderStats& ss = f->sender().stats();
    d.counters.insert(d.counters.end(),
                      {ss.packets_sent, ss.bytes_sent, ss.packets_acked,
                       ss.bytes_delivered, ss.packets_lost,
                       static_cast<int64_t>(f->receiver().bytes_received())});
  }
  d.counters.insert(d.counters.end(),
                    {st.offered_packets, st.delivered_packets, st.tail_drops,
                     st.max_queue_bytes,
                     static_cast<int64_t>(sc.sim().events_processed())});
  d.throughput_csv = slurp(base + ".csv");
  d.rtt_csv = slurp(base + "_rtt.csv");
  d.link_csv = slurp(base + "_link.csv");
  return d;
}

// Every protocol (the seven named ones plus the hybrid) must replay
// bit-identically on the wheel: same counters, same event count, and
// byte-identical exported CSVs.
TEST(EngineGolden, AllProtocolsBitIdenticalAcrossEngines) {
  std::vector<std::string> protocols = all_protocol_names();
  protocols.push_back("proteus-h");
  ASSERT_EQ(protocols.size(), 8u);
  for (const std::string& p : protocols) {
    const RunDigest wheel =
        run_protocol(EventEngine::kTimerWheel, p, p + "_wheel");
    const RunDigest heap =
        run_protocol(EventEngine::kBinaryHeap, p, p + "_heap");
    EXPECT_EQ(wheel.counters, heap.counters) << p;
    EXPECT_EQ(wheel.throughput_csv, heap.throughput_csv) << p;
    EXPECT_EQ(wheel.rtt_csv, heap.rtt_csv) << p;
    EXPECT_EQ(wheel.link_csv, heap.link_csv) << p;
    EXPECT_FALSE(wheel.throughput_csv.empty()) << p;
  }
}

// A blackout/reorder/duplicate/ackloss fault timeline exercises every
// engine path the plain runs do not: long overflow waits (blackout
// resume events), duplicate deliveries, and pushes behind the wheel
// cursor after idle gaps. Telemetry JSONL included in the comparison.
TEST(EngineGolden, FaultTimelineRunsBitIdenticalWithTelemetry) {
  auto run = [](EventEngine engine, const std::string& tag) {
    // Distinct directory per engine, identical run label inside: the
    // label is embedded in every JSONL line, so it must not differ.
    const std::string dir =
        ::testing::TempDir() + "/engine_golden_fault_" + tag;
    TelemetryConfig tcfg;
    tcfg.dir = dir;
    tcfg.every = 1;
    RunContext ctx(/*attempt=*/0, /*wall_timeout_sec=*/0,
                   /*sim_timeout_sec=*/0, /*trace_capacity=*/64);
    ctx.set_telemetry(&tcfg, "golden");

    ScenarioConfig cfg;
    cfg.engine = engine;
    cfg.seed = 42;
    cfg.faults = faults_or_die(
        "blackout@3:1,reorder@5:p=0.1:delta=20ms:2,duplicate@7:p=0.05:2,"
        "ackloss@9:p=0.2:1");
    Scenario sc(cfg);
    Flow& f = sc.add_flow("proteus-p", 0);
    Flow& g = sc.add_flow("cubic", from_sec(1));
    std::string jsonl;
    {
      FlowTelemetrySession session(&ctx, f, "flow0");
      sc.run_until(from_sec(12));
    }  // exports on destruction
    jsonl = slurp(dir + "/golden-flow0.jsonl");

    const std::string base = dir + "/" + tag;
    EXPECT_TRUE(write_throughput_csv(base + ".csv", {&f, &g}, from_sec(12)));
    EXPECT_TRUE(write_rtt_csv(base + "_rtt.csv", f));
    EXPECT_TRUE(write_link_stats_csv(base + "_link.csv",
                                     sc.dumbbell().bottleneck().stats()));
    return std::make_tuple(jsonl, slurp(base + ".csv"),
                           slurp(base + "_rtt.csv"),
                           slurp(base + "_link.csv"),
                           sc.sim().events_processed());
  };

  const auto wheel = run(EventEngine::kTimerWheel, "wheel");
  const auto heap = run(EventEngine::kBinaryHeap, "heap");
  EXPECT_EQ(std::get<0>(wheel), std::get<0>(heap));  // telemetry JSONL
  EXPECT_EQ(std::get<1>(wheel), std::get<1>(heap));  // throughput CSV
  EXPECT_EQ(std::get<2>(wheel), std::get<2>(heap));  // RTT CSV
  EXPECT_EQ(std::get<3>(wheel), std::get<3>(heap));  // link-stats CSV
  EXPECT_EQ(std::get<4>(wheel), std::get<4>(heap));  // event count
  EXPECT_FALSE(std::get<0>(wheel).empty());
}

// The engines also agree under the parallel runner regardless of --jobs,
// and parallel results match the serial run (each task owns its whole
// simulator, so worker count must never leak into results).
TEST(EngineGolden, SerialAndParallelJobsAgreeOnBothEngines) {
  auto fingerprint = [](EventEngine engine) {
    ScenarioConfig cfg;
    cfg.engine = engine;
    cfg.seed = 99;
    cfg.faults = faults_or_die("blackout@2:500ms,duplicate@4:p=0.1:1");
    Scenario sc(cfg);
    Flow& f = sc.add_flow("proteus-s", 0);
    sc.run_until(from_sec(8));
    const LinkStats& st = sc.dumbbell().bottleneck().stats();
    return std::make_tuple(f.sender().stats().packets_sent,
                           f.sender().stats().packets_acked,
                           f.sender().stats().packets_lost,
                           static_cast<int64_t>(f.receiver().bytes_received()),
                           st.duplicated, st.blackout_drops,
                           sc.sim().events_processed());
  };

  const auto wheel_serial = fingerprint(EventEngine::kTimerWheel);
  const auto heap_serial = fingerprint(EventEngine::kBinaryHeap);
  EXPECT_EQ(wheel_serial, heap_serial);

  using Fp = decltype(fingerprint(EventEngine::kTimerWheel));
  for (EventEngine engine :
       {EventEngine::kTimerWheel, EventEngine::kBinaryHeap}) {
    std::vector<std::function<Fp()>> tasks;
    for (int i = 0; i < 4; ++i) {
      tasks.push_back([&fingerprint, engine] { return fingerprint(engine); });
    }
    for (const auto& fp : run_parallel(tasks, 1)) {
      EXPECT_EQ(fp, wheel_serial);
    }
    for (const auto& fp : run_parallel(std::move(tasks), 4)) {
      EXPECT_EQ(fp, wheel_serial);
    }
  }
}

}  // namespace
}  // namespace proteus
