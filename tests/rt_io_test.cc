// Short-write and disk-full pins for the I/O retry helpers and the
// harness writers that were audited to use them. /dev/full is the test
// vehicle: writes to it fail with ENOSPC, which buffered stdio/ofstream
// would otherwise hide until the (error-discarding) destructor. Every
// writer here must surface the loss as a return value or a health flag,
// never as a silently truncated file.
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "harness/checkpoint.h"
#include "harness/trace_export.h"
#include "rt/io_retry.h"
#include "sim/link.h"
#include "telemetry/telemetry.h"

namespace proteus {
namespace {

bool dev_full_available() { return ::access("/dev/full", W_OK) == 0; }

TEST(IoRetry, WriteAllCompletesAcrossShortWrites) {
  // A pipe forces short writes once the kernel buffer fills; write_all on
  // a blocking fd must still push every byte through while a reader
  // drains the other end.
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const size_t kTotal = 1 << 20;  // well past any default pipe buffer
  std::string payload(kTotal, 'x');

  ssize_t drained = 0;
  std::thread reader([&] {
    char buf[65536];
    ssize_t n;
    while ((n = ::read(fds[0], buf, sizeof buf)) > 0) drained += n;
  });
  const IoResult r = write_all(fds[1], payload.data(), payload.size());
  ::close(fds[1]);
  reader.join();
  ::close(fds[0]);

  EXPECT_EQ(r.status, IoStatus::kOk);
  EXPECT_EQ(r.bytes, static_cast<ssize_t>(kTotal));
  EXPECT_EQ(drained, static_cast<ssize_t>(kTotal));
}

TEST(IoRetry, WriteAllReportsWouldBlockOnNonblockingPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::fcntl(fds[1], F_SETFL, O_NONBLOCK), 0);
  std::string payload(1 << 20, 'x');
  const IoResult r = write_all(fds[1], payload.data(), payload.size());
  EXPECT_EQ(r.status, IoStatus::kWouldBlock);
  EXPECT_GT(r.bytes, 0);  // partial progress reported, not lost
  EXPECT_LT(r.bytes, static_cast<ssize_t>(payload.size()));
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(IoRetry, CheckedFwriteDetectsEnospc) {
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  std::FILE* f = std::fopen("/dev/full", "w");
  ASSERT_NE(f, nullptr);
  const char msg[] = "doomed";
  EXPECT_FALSE(checked_fwrite(f, msg, sizeof msg));
  std::fclose(f);

  std::FILE* ok = std::fopen("/dev/null", "w");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(checked_fwrite(ok, msg, sizeof msg));
  std::fclose(ok);
}

TEST(IoShortWrite, CheckpointJournalSurfacesFullDisk) {
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  // open() writes the header line through checked_fwrite: on a full disk
  // it must fail closed rather than hand back a journal that loses every
  // entry.
  CheckpointJournal j;
  CheckpointHeader header;
  header.sweep = "rt-io-pin";
  header.points = 4;
  EXPECT_FALSE(j.open("/dev/full", header, /*keep_existing=*/true));
  EXPECT_FALSE(j.is_open());

  // And a healthy open stays healthy through appends.
  const std::string path = ::testing::TempDir() + "rt_io_journal.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(j.open(path, header, /*keep_existing=*/false));
  CheckpointEntry e;
  e.point = 0;
  e.status = "ok";
  e.attempts = 1;
  j.append(e);
  EXPECT_TRUE(j.healthy());
  j.close();
  std::remove(path.c_str());
}

TEST(IoShortWrite, TelemetryWritersSurfaceFullDisk) {
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  MetricsRegistry reg;
  reg.counter("pin.counter", 1);
  reg.gauge("pin.gauge", 2.5);
  EXPECT_FALSE(write_metrics_csv("/dev/full", reg));

  TelemetryRecorder recorder;
  MiRecord rec;
  recorder.push(rec);
  EXPECT_FALSE(write_mi_records_jsonl("/dev/full", "pin", recorder));
  EXPECT_FALSE(write_mi_records_csv("/dev/full", recorder));

  const std::string path = ::testing::TempDir() + "rt_io_metrics.csv";
  EXPECT_TRUE(write_metrics_csv(path, reg));
  std::remove(path.c_str());
}

TEST(IoShortWrite, TraceExportersSurfaceFullDisk) {
  if (!dev_full_available()) GTEST_SKIP() << "/dev/full not available";
  LinkStats stats;
  stats.offered_packets = 10;
  stats.delivered_packets = 9;
  EXPECT_FALSE(write_link_stats_csv("/dev/full", stats));

  const std::string path = ::testing::TempDir() + "rt_io_link.csv";
  EXPECT_TRUE(write_link_stats_csv(path, stats));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace proteus
