// Numeric verification of the Appendix A equilibrium theory:
// Theorems 4.1/4.2 (homogeneous populations split fairly, link fully
// utilized) and uniqueness/yielding in mixed populations.
#include <gtest/gtest.h>

#include "core/equilibrium.h"

namespace proteus {
namespace {

EquilibriumModel model(double capacity = 50.0) {
  EquilibriumModel m;
  m.capacity_mbps = capacity;
  // Large enough that the scavenger's extra penalty is visible next to
  // b = 900 (see DESIGN.md on simulator deviation scales).
  m.deviation_factor = 0.05;
  return m;
}

// Theorem 4.1: n Proteus-P senders converge to equal rates, full link.
class PrimaryFairness : public ::testing::TestWithParam<int> {};

TEST_P(PrimaryFairness, EqualSplitAndFullUtilization) {
  const int n = GetParam();
  const auto r = solve_equilibrium(model(), n, 0);
  ASSERT_TRUE(r.converged);
  ASSERT_EQ(static_cast<int>(r.primary_rates.size()), n);
  for (double x : r.primary_rates) {
    EXPECT_NEAR(x, r.primary_rates[0], 1e-2);
  }
  EXPECT_GE(r.total_rate, 50.0 * 0.995);
  EXPECT_LE(r.total_rate, 50.0 * 1.05);  // fully utilized
}

INSTANTIATE_TEST_SUITE_P(N, PrimaryFairness,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

// Theorem 4.2: the same for Proteus-S-only populations.
class ScavengerFairness : public ::testing::TestWithParam<int> {};

TEST_P(ScavengerFairness, EqualSplitAndFullUtilization) {
  const int n = GetParam();
  const auto r = solve_equilibrium(model(), 0, n);
  ASSERT_TRUE(r.converged);
  for (double x : r.scavenger_rates) {
    EXPECT_NEAR(x, r.scavenger_rates[0], 1e-2);
  }
  EXPECT_GE(r.total_rate, 50.0 * 0.995);
  EXPECT_LE(r.total_rate, 50.0 * 1.05);
}

INSTANTIATE_TEST_SUITE_P(N, ScavengerFairness,
                         ::testing::Values(1, 2, 3, 5, 8, 10));

TEST(MixedEquilibrium, ScavengerYieldsToPrimary) {
  // With the paper's b = 900 the fluid equilibrium parks exactly at the
  // S = C kink where the congestion term is inactive, so both senders get
  // the fair share (the paper leaves the formal yielding analysis to
  // future work). A small b gives an interior equilibrium with standing
  // congestion, where the scavenger's extra penalty is visible.
  EquilibriumModel m = model();
  m.params.b = 0.5;           // below the kink-pinning threshold
  m.deviation_factor = 2.5e-4;  // d*A = 0.5: scavenger penalty doubled
  const auto r = solve_equilibrium(m, 1, 1);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.scavenger_rates[0], r.primary_rates[0]);
  // The deviation penalty makes the scavenger strictly more conservative,
  // but the pair still saturates the link.
  EXPECT_GE(r.total_rate, 50.0 * 0.995);
}

TEST(MixedEquilibrium, MoreDeviationPenaltyYieldsMore) {
  EquilibriumModel weak = model();
  weak.params.b = 0.5;
  weak.deviation_factor = 1.25e-4;
  EquilibriumModel strong = weak;
  strong.deviation_factor = 1.25e-3;
  const auto rw = solve_equilibrium(weak, 1, 1);
  const auto rs = solve_equilibrium(strong, 1, 1);
  ASSERT_TRUE(rw.converged);
  ASSERT_TRUE(rs.converged);
  EXPECT_LT(rs.scavenger_rates[0], rw.scavenger_rates[0]);
  EXPECT_GT(rs.primary_rates[0], rw.primary_rates[0]);
}

TEST(MixedEquilibrium, UniqueAcrossStartingPoints) {
  // Uniqueness (Appendix A): the damped best-response dynamics land on the
  // same point regardless of iteration order/count granularity; approximate
  // by comparing different sender counts' permutations via symmetry.
  const auto r1 = solve_equilibrium(model(), 2, 3);
  const auto r2 = solve_equilibrium(model(), 2, 3, 1e-6, 40'000);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  for (size_t i = 0; i < r1.primary_rates.size(); ++i) {
    EXPECT_NEAR(r1.primary_rates[i], r2.primary_rates[i], 1e-2);
  }
  for (size_t i = 0; i < r1.scavenger_rates.size(); ++i) {
    EXPECT_NEAR(r1.scavenger_rates[i], r2.scavenger_rates[i], 1e-2);
  }
}

TEST(MixedEquilibrium, SymmetricSendersGetSymmetricRates) {
  const auto r = solve_equilibrium(model(), 3, 2);
  ASSERT_TRUE(r.converged);
  for (double x : r.primary_rates) {
    EXPECT_NEAR(x, r.primary_rates[0], 1e-2);
  }
  for (double x : r.scavenger_rates) {
    EXPECT_NEAR(x, r.scavenger_rates[0], 1e-2);
  }
}

TEST(ModelUtility, CongestionTermOnlyAboveCapacity) {
  const EquilibriumModel m = model();
  EXPECT_GT(model_primary_utility(m, 10.0, 49.0),
            model_primary_utility(m, 10.0, 60.0));
  EXPECT_DOUBLE_EQ(model_primary_utility(m, 10.0, 30.0),
                   model_primary_utility(m, 10.0, 49.0));
}

TEST(ModelUtility, ScavengerPenalizedMoreWhenCongested) {
  const EquilibriumModel m = model();
  const double total = 60.0;
  EXPECT_LT(model_scavenger_utility(m, 10.0, total),
            model_primary_utility(m, 10.0, total));
}

TEST(Equilibrium, EmptyGameConverges) {
  const auto r = solve_equilibrium(model(), 0, 0);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.total_rate, 0.0);
}

// Capacity sweep: equilibrium scales linearly with capacity.
class CapacityScaling : public ::testing::TestWithParam<double> {};

TEST_P(CapacityScaling, TotalTracksCapacity) {
  const double c = GetParam();
  const auto r = solve_equilibrium(model(c), 2, 2);
  ASSERT_TRUE(r.converged);
  EXPECT_GE(r.total_rate, c * 0.995);
  EXPECT_LE(r.total_rate, c * 1.10);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacityScaling,
                         ::testing::Values(10.0, 20.0, 50.0, 100.0, 300.0));

}  // namespace
}  // namespace proteus
