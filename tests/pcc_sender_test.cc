// Tests for the assembled PccSender: MI lifecycle, utility switching,
// and end-to-end behavior on a simulated bottleneck.
#include <gtest/gtest.h>

#include <memory>

#include "core/pcc_sender.h"
#include "harness/scenario.h"

namespace proteus {
namespace {

TEST(PccSender, CompletesMisOnCleanLink) {
  ScenarioConfig cfg;
  cfg.seed = 3;
  Scenario sc(cfg);
  auto cc = make_proteus_p(1);
  PccSender* pcc = cc.get();
  sc.add_flow_with_cc(std::move(cc), 0);
  sc.run_until(from_sec(10));
  EXPECT_GT(pcc->mis_completed(), 50u);
  EXPECT_GT(pcc->last_mi_metrics().send_rate_mbps, 1.0);
}

TEST(PccSender, PacingRateTracksController) {
  auto cc = make_proteus_p(1);
  EXPECT_NEAR(cc->pacing_rate().mbps(), 2.0, 0.5);  // initial rate
  EXPECT_EQ(cc->cwnd_bytes(), kNoCwndLimit);
}

TEST(PccSender, NamesReflectMode) {
  EXPECT_EQ(make_proteus_p(1)->name(), "proteus-p");
  EXPECT_EQ(make_proteus_s(1)->name(), "proteus-s");
  EXPECT_EQ(make_vivace(1)->name(), "vivace");
  auto thr = std::make_shared<HybridThresholdState>();
  EXPECT_EQ(make_proteus_h(thr, 1)->name(), "proteus-h");
}

TEST(PccSender, UtilitySwitchingMidFlowChangesBehavior) {
  // Start as scavenger against BBR, switch to primary mid-flow: the
  // throughput share must grow substantially after the switch.
  ScenarioConfig cfg;
  cfg.seed = 9;
  Scenario sc(cfg);
  sc.add_flow("bbr", 0);
  auto cc = make_proteus_s(2);
  PccSender* pcc = cc.get();
  Flow& flow = sc.add_flow_with_cc(std::move(cc), from_sec(5));

  sc.run_until(from_sec(60));
  const double scavenger_share =
      flow.mean_throughput_mbps(from_sec(30), from_sec(60));

  pcc->set_utility(std::make_shared<ProteusPrimaryUtility>());
  sc.run_until(from_sec(120));
  const double primary_share =
      flow.mean_throughput_mbps(from_sec(90), from_sec(120));

  EXPECT_LT(scavenger_share, 6.0);
  EXPECT_GT(primary_share, scavenger_share * 2.0);
}

TEST(PccSender, HybridThresholdGovernsAggressiveness) {
  // Proteus-H with a low threshold behaves as a scavenger vs BBR; with a
  // high threshold it competes.
  auto run_with_threshold = [](double thr_mbps) {
    ScenarioConfig cfg;
    cfg.seed = 10;
    Scenario sc(cfg);
    sc.add_flow("bbr", 0);
    auto thr = std::make_shared<HybridThresholdState>();
    thr->set_threshold_mbps(thr_mbps);
    Flow& flow = sc.add_flow_with_cc(
        make_protocol("proteus-h", 2, thr, &sc.config().tuning), from_sec(5));
    sc.run_until(from_sec(60));
    return flow.mean_throughput_mbps(from_sec(30), from_sec(60));
  };
  const double low = run_with_threshold(1.0);
  const double high = run_with_threshold(1000.0);
  EXPECT_GT(high, low * 2.0);
  EXPECT_GT(high, 5.0);
}

TEST(PccSender, SurvivesAppLimitedIdle) {
  // Chunked transfers with idle gaps: abandoned MIs must not wedge the
  // controller (probing rounds restart).
  ScenarioConfig cfg;
  cfg.seed = 11;
  Scenario sc(cfg);
  auto cc = make_proteus_p(3);
  PccSender* pcc = cc.get();
  FlowConfig fc;
  fc.id = sc.allocate_flow_id();
  fc.unlimited = false;
  fc.total_bytes = 200 * kMtuBytes;
  Flow flow(&sc.sim(), &sc.dumbbell(), fc, std::move(cc));
  sc.run_until(from_sec(5));
  // Idle for a while, then a second chunk.
  sc.run_until(from_sec(8));
  flow.sender().offer_bytes(2000 * kMtuBytes);
  sc.run_until(from_sec(20));
  EXPECT_EQ(flow.sender().stats().bytes_delivered, 2200 * kMtuBytes);
  EXPECT_GT(pcc->mis_completed(), 20u);
}

TEST(PccSender, LossCollapsesUtility) {
  // On a severely lossy link the scavenger still makes progress but the
  // measured loss rate appears in its metrics.
  ScenarioConfig cfg;
  cfg.seed = 12;
  cfg.random_loss = 0.3;
  Scenario sc(cfg);
  auto cc = make_proteus_p(4);
  PccSender* pcc = cc.get();
  sc.add_flow_with_cc(std::move(cc), 0);
  sc.run_until(from_sec(20));
  EXPECT_GT(pcc->last_mi_metrics().loss_rate, 0.05);
}

TEST(PccSender, MiDurationStretchesAtLowRate) {
  PccSender::Config cfg = default_proteus_config(1);
  cfg.rate_control.initial_rate_mbps = 0.2;
  cfg.rate_control.min_rate_mbps = 0.2;
  auto pcc = std::make_unique<PccSender>(
      std::make_shared<ProteusPrimaryUtility>(), cfg, "slow");
  pcc->on_start(0);
  // At 0.2 Mbps, 10 packets take 600 ms; the MI must cover them.
  const TimeNs end = pcc->next_timer();
  EXPECT_GT(end, from_ms(500));
  EXPECT_LE(end, from_ms(1700));
}

}  // namespace
}  // namespace proteus
