// Tests for the assembled PccSender: MI lifecycle, utility switching,
// and end-to-end behavior on a simulated bottleneck.
#include <gtest/gtest.h>

#include <memory>

#include "core/pcc_sender.h"
#include "harness/scenario.h"

namespace proteus {
namespace {

TEST(PccSender, CompletesMisOnCleanLink) {
  ScenarioConfig cfg;
  cfg.seed = 3;
  Scenario sc(cfg);
  auto cc = make_proteus_p(1);
  PccSender* pcc = cc.get();
  sc.add_flow_with_cc(std::move(cc), 0);
  sc.run_until(from_sec(10));
  EXPECT_GT(pcc->mis_completed(), 50u);
  EXPECT_GT(pcc->last_mi_metrics().send_rate_mbps, 1.0);
}

TEST(PccSender, PacingRateTracksController) {
  auto cc = make_proteus_p(1);
  EXPECT_NEAR(cc->pacing_rate().mbps(), 2.0, 0.5);  // initial rate
  EXPECT_EQ(cc->cwnd_bytes(), kNoCwndLimit);
}

TEST(PccSender, NamesReflectMode) {
  EXPECT_EQ(make_proteus_p(1)->name(), "proteus-p");
  EXPECT_EQ(make_proteus_s(1)->name(), "proteus-s");
  EXPECT_EQ(make_vivace(1)->name(), "vivace");
  auto thr = std::make_shared<HybridThresholdState>();
  EXPECT_EQ(make_proteus_h(thr, 1)->name(), "proteus-h");
}

TEST(PccSender, UtilitySwitchingMidFlowChangesBehavior) {
  // Start as scavenger against BBR, switch to primary mid-flow: the
  // throughput share must grow substantially after the switch. A single
  // trajectory is chaotic (the post-switch STARTING ramp can abort on one
  // BBR queue spike and crawl for a while), so assert on the mean across
  // scenario seeds rather than one roll of the dice.
  double scavenger_sum = 0.0;
  double primary_sum = 0.0;
  for (uint64_t seed : {3u, 5u, 9u}) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    Scenario sc(cfg);
    sc.add_flow("bbr", 0);
    auto cc = make_proteus_s(2);
    PccSender* pcc = cc.get();
    Flow& flow = sc.add_flow_with_cc(std::move(cc), from_sec(5));

    sc.run_until(from_sec(60));
    const double scavenger_share =
        flow.mean_throughput_mbps(from_sec(30), from_sec(60));
    EXPECT_LT(scavenger_share, 6.0) << "seed " << seed;
    scavenger_sum += scavenger_share;

    pcc->set_utility(std::make_shared<ProteusPrimaryUtility>());
    sc.run_until(from_sec(120));
    primary_sum += flow.mean_throughput_mbps(from_sec(90), from_sec(120));
  }
  EXPECT_GT(primary_sum, scavenger_sum * 2.0);
}

TEST(PccSender, HybridThresholdGovernsAggressiveness) {
  // Proteus-H with a low threshold behaves as a scavenger vs BBR; with a
  // high threshold it competes.
  auto run_with_threshold = [](double thr_mbps) {
    ScenarioConfig cfg;
    cfg.seed = 10;
    Scenario sc(cfg);
    sc.add_flow("bbr", 0);
    auto thr = std::make_shared<HybridThresholdState>();
    thr->set_threshold_mbps(thr_mbps);
    Flow& flow = sc.add_flow_with_cc(
        make_protocol("proteus-h", 2, thr, &sc.config().tuning), from_sec(5));
    sc.run_until(from_sec(60));
    return flow.mean_throughput_mbps(from_sec(30), from_sec(60));
  };
  const double low = run_with_threshold(1.0);
  const double high = run_with_threshold(1000.0);
  EXPECT_GT(high, low * 2.0);
  EXPECT_GT(high, 5.0);
}

TEST(PccSender, SurvivesAppLimitedIdle) {
  // Chunked transfers with idle gaps: abandoned MIs must not wedge the
  // controller (probing rounds restart).
  ScenarioConfig cfg;
  cfg.seed = 11;
  Scenario sc(cfg);
  auto cc = make_proteus_p(3);
  PccSender* pcc = cc.get();
  FlowConfig fc;
  fc.id = sc.allocate_flow_id();
  fc.unlimited = false;
  fc.total_bytes = 200 * kMtuBytes;
  Flow flow(&sc.sim(), &sc.dumbbell(), fc, std::move(cc));
  sc.run_until(from_sec(5));
  // Idle for a while, then a second chunk.
  sc.run_until(from_sec(8));
  flow.sender().offer_bytes(2000 * kMtuBytes);
  sc.run_until(from_sec(20));
  EXPECT_EQ(flow.sender().stats().bytes_delivered, 2200 * kMtuBytes);
  EXPECT_GT(pcc->mis_completed(), 20u);
}

TEST(PccSender, LossCollapsesUtility) {
  // On a severely lossy link the scavenger still makes progress but the
  // measured loss rate appears in its metrics.
  ScenarioConfig cfg;
  cfg.seed = 12;
  cfg.random_loss = 0.3;
  Scenario sc(cfg);
  auto cc = make_proteus_p(4);
  PccSender* pcc = cc.get();
  sc.add_flow_with_cc(std::move(cc), 0);
  sc.run_until(from_sec(20));
  EXPECT_GT(pcc->last_mi_metrics().loss_rate, 0.05);
}

// Drives a PccSender directly (no simulator): one MTU packet every 2 ms,
// each acked immediately with a caller-chosen RTT. Lets tests control the
// exact RTT sample sequence the filters and srtt see.
class DirectDrive {
 public:
  explicit DirectDrive(PccSender* pcc) : pcc_(pcc) { pcc_->on_start(0); }

  void step(TimeNs rtt) {
    now_ += from_ms(2);
    SentPacketInfo s;
    s.seq = seq_;
    s.bytes = kMtuBytes;
    s.sent_time = now_;
    pcc_->on_packet_sent(s);  // rotates MIs internally when due
    AckInfo a;
    a.seq = seq_;
    a.bytes = kMtuBytes;
    a.sent_time = now_;
    a.ack_time = now_ + rtt;
    a.rtt = rtt;
    a.prev_ack_time = prev_ack_;
    pcc_->on_ack(a);
    prev_ack_ = a.ack_time;
    ++seq_;
  }

  // Steps until `count` more MIs have completed.
  void run_mis(uint64_t count, TimeNs rtt_a, TimeNs rtt_b) {
    const uint64_t until = pcc_->mis_completed() + count;
    bool flip = false;
    while (pcc_->mis_completed() < until) {
      step(flip ? rtt_b : rtt_a);
      flip = !flip;
    }
  }

  TimeNs now() const { return now_; }

 private:
  PccSender* pcc_;
  TimeNs now_ = 0;
  uint64_t seq_ = 0;
  TimeNs prev_ack_ = 0;
};

TEST(PccSender, SrttIgnoresFilterRejectedSpikes) {
  // Regression: srtt used to absorb every raw RTT sample *before* the ack
  // filter ruled on it, so rejected spikes still stretched mi_duration().
  // With spike rejection on, isolated 800 ms spikes over a 30 ms baseline
  // must leave the MI duration at the baseline RTT.
  PccSender::Config cfg = default_proteus_config(5);
  cfg.noise.ack_spike_rejection = true;
  PccSender pcc(std::make_shared<ProteusPrimaryUtility>(), cfg, "t");
  DirectDrive drive(&pcc);
  // Warm the spike tracker on the clean baseline, then inject an isolated
  // spike every 7th ack (streaks < 4 stay classified as spikes).
  for (int i = 0; i < 100; ++i) drive.step(from_ms(30));
  for (int i = 0; i < 400; ++i) {
    drive.step(i % 7 == 0 ? from_ms(800) : from_ms(30));
  }
  // Force a rotation and inspect the fresh MI's duration: ~srtt. The old
  // behavior plateaued srtt near 100+ ms; the filtered srtt stays at the
  // 30 ms baseline (plus the 0-10% MI jitter).
  const TimeNs rotate_at = pcc.next_timer();
  pcc.on_timer(rotate_at);
  const TimeNs duration = pcc.next_timer() - rotate_at;
  EXPECT_GE(duration, from_ms(25));
  EXPECT_LT(duration, from_ms(60));
}

TEST(PccSender, BrakeCooldownBoundsRateCollapse) {
  // Pins the emergency-brake behavior (the dead `brake_pending_` latch was
  // deleted; the live path is the once-per-2-MIs cooldown): under sudden
  // RTT-deviation onset the scavenger vacates fast (brake fires), but the
  // cooldown prevents a qualifying-MI burst from cascading the rate to the
  // floor. Compare against the identical drive with the brake disabled —
  // probing/moving dynamics alone need ~6 MIs (a full probe round) per
  // decision, so the brake is the only fast path down.
  auto run = [](bool brake) {
    PccSender::Config cfg = default_proteus_config(7);
    cfg.emergency_brake = brake;
    cfg.noise.ack_filter = false;  // raw deviation reaches the utility
    cfg.noise.trending = false;
    cfg.rate_control.initial_rate_mbps = 50.0;
    cfg.rate_control.probe_step = 0.01;
    PccSender pcc(std::make_shared<ProteusScavengerUtility>(), cfg, "t");
    DirectDrive drive(&pcc);
    // Quiet phase: flat 30 ms RTT, zero deviation; the rate ramps high and
    // the deviation floor learns "quiet" as ambient.
    drive.run_mis(30, from_ms(30), from_ms(30));
    const double before = pcc.pacing_rate().mbps();
    // Competition onset: alternating 30/230 ms RTTs give every MI a ~100 ms
    // deviation, so every MI at a steady rate qualifies for the brake.
    drive.run_mis(8, from_ms(30), from_ms(230));
    return std::pair<double, double>{before, pcc.pacing_rate().mbps()};
  };
  const auto [base_braked, after_braked] = run(true);
  const auto [base_plain, after_plain] = run(false);
  // Identical quiet phases (deterministic drive, same seeds).
  EXPECT_DOUBLE_EQ(base_braked, base_plain);
  // The brake fired: far below what gradient dynamics managed.
  EXPECT_LT(after_braked, 0.7 * after_plain);
  // The cooldown held: 8 qualifying MIs allow at most 4 halvings. Without
  // the cooldown every qualifying MI would halve (2^8 = 256x).
  EXPECT_GT(after_braked, after_plain / 32.0);
}

TEST(PccSender, AcksResolveAcrossPendingMis) {
  // Two sealed MIs pending, all acks withheld, then delivered newest-MI
  // first: the seq->MI index must route every ack to its own MI and both
  // must complete (the front MI blocks the drain until its acks land).
  PccSender::Config cfg = default_proteus_config(3);
  PccSender pcc(std::make_shared<ProteusPrimaryUtility>(), cfg, "t");
  pcc.on_start(0);
  std::vector<AckInfo> pending;
  TimeNs now = 0;
  for (int mi = 0; mi < 2; ++mi) {
    for (int p = 0; p < 5; ++p) {
      now += from_ms(2);
      SentPacketInfo s;
      s.seq = static_cast<uint64_t>(mi * 5 + p);
      s.bytes = kMtuBytes;
      s.sent_time = now;
      pcc.on_packet_sent(s);
      AckInfo a;
      a.seq = s.seq;
      a.bytes = kMtuBytes;
      a.sent_time = now;
      a.rtt = from_ms(30);
      pending.push_back(a);
    }
    now = pcc.next_timer();
    pcc.on_timer(now);  // seal the MI, start the next
  }
  EXPECT_EQ(pcc.mis_completed(), 0u);
  TimeNs ack_time = now;
  for (auto it = pending.rbegin(); it != pending.rend(); ++it) {
    it->ack_time = (ack_time += from_ms(1));
    pcc.on_ack(*it);
  }
  EXPECT_EQ(pcc.mis_completed(), 2u);
}

TEST(PccSender, MiDurationStretchesAtLowRate) {
  PccSender::Config cfg = default_proteus_config(1);
  cfg.rate_control.initial_rate_mbps = 0.2;
  cfg.rate_control.min_rate_mbps = 0.2;
  auto pcc = std::make_unique<PccSender>(
      std::make_shared<ProteusPrimaryUtility>(), cfg, "slow");
  pcc->on_start(0);
  // At 0.2 Mbps, 10 packets take 600 ms; the MI must cover them.
  const TimeNs end = pcc->next_timer();
  EXPECT_GT(end, from_ms(500));
  EXPECT_LE(end, from_ms(1700));
}

}  // namespace
}  // namespace proteus
