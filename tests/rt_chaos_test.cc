// Chaos-shim determinism and parsing. The determinism tests run in the
// TSan tier of verify.sh: two shims with the same seed must produce the
// identical verdict sequence even when one of them is driven from a
// different thread at different wall times — the n-th verdict is a pure
// function of (seed, n), not of any shared RNG stream or clock.
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "harness/fault_spec.h"
#include "rt/chaos.h"

namespace proteus {
namespace {

struct VerdictRecord {
  bool drop;
  bool duplicate;
  TimeNs depart_delay;

  bool operator==(const VerdictRecord& o) const {
    return drop == o.drop && duplicate == o.duplicate &&
           depart_delay == o.depart_delay;
  }
};

std::vector<VerdictRecord> drive(ChaosShim& shim, int n) {
  std::vector<VerdictRecord> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Fixed per-ordinal timestamps so the fluid-queue arithmetic sees
    // the same `now` sequence in every replay.
    const TimeNs now = from_ms(1) * i;
    const ChaosShim::Verdict v = shim.admit(now, 1500, (i % 5) == 0);
    out.push_back({v.drop, v.duplicate, v.depart_delay});
  }
  return out;
}

ChaosConfig test_config() {
  ChaosConfig cfg;
  cfg.rate_mbps = 20.0;
  cfg.one_way_delay = from_ms(5);
  cfg.drop = 0.2;
  cfg.seed = 42;
  const FaultParseResult faults =
      parse_faults("reorder@0:p=0.1:delta=10ms,duplicate@0:p=0.05");
  EXPECT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  return cfg;
}

TEST(Chaos, SameSeedSameVerdicts) {
  ChaosShim a{test_config()};
  ChaosShim b{test_config()};
  EXPECT_EQ(drive(a, 5000), drive(b, 5000));
  EXPECT_GT(a.stats().dropped_random, 0);
  EXPECT_GT(a.stats().admitted, 0);
}

TEST(Chaos, DifferentSeedDifferentVerdicts) {
  ChaosConfig cfg = test_config();
  ChaosShim a{cfg};
  cfg.seed = 43;
  ChaosShim b{cfg};
  EXPECT_NE(drive(a, 5000), drive(b, 5000));
}

TEST(Chaos, VerdictsIndependentOfThreadAndTiming) {
  // One shim driven inline, one on a separate thread (with scheduling
  // noise between draws): identical sequences. This is the TSan-tier
  // pin that determinism does not lean on wall-clock or a shared RNG.
  ChaosShim inline_shim{test_config()};
  const std::vector<VerdictRecord> expected = drive(inline_shim, 2000);

  std::vector<VerdictRecord> threaded;
  std::thread t([&] {
    ChaosShim shim{test_config()};
    for (int i = 0; i < 2000; ++i) {
      if (i % 512 == 0) std::this_thread::yield();
      const ChaosShim::Verdict v =
          shim.admit(from_ms(1) * i, 1500, (i % 5) == 0);
      threaded.push_back({v.drop, v.duplicate, v.depart_delay});
    }
  });
  t.join();
  EXPECT_EQ(expected, threaded);
}

TEST(Chaos, DropRateMatchesConfiguredProbability) {
  ChaosConfig cfg;
  cfg.drop = 0.2;
  cfg.seed = 7;
  ChaosShim shim{cfg};
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) shim.admit(0, 1500, false);
  const double observed =
      static_cast<double>(shim.stats().dropped_random) / kN;
  EXPECT_NEAR(observed, 0.2, 0.02);
}

TEST(Chaos, BlackoutWindowDropsEverything) {
  ChaosConfig cfg;
  const FaultParseResult faults = parse_faults("blackout@1:1");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  ChaosShim shim{cfg};
  EXPECT_FALSE(shim.admit(from_sec(0.5), 1500, false).drop);
  EXPECT_TRUE(shim.admit(from_sec(1.5), 1500, false).drop);
  EXPECT_FALSE(shim.admit(from_sec(2.5), 1500, false).drop);
  EXPECT_EQ(shim.stats().dropped_blackout, 1);
}

TEST(Chaos, AckLossHitsOnlyAcks) {
  ChaosConfig cfg;
  const FaultParseResult faults = parse_faults("ackloss@0:p=1");
  ASSERT_TRUE(faults.ok) << faults.error;
  cfg.faults = faults.faults;
  ChaosShim shim{cfg};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(shim.admit(0, 1500, false).drop);
    EXPECT_TRUE(shim.admit(0, 40, true).drop);
  }
  EXPECT_EQ(shim.stats().dropped_ackloss, 50);
}

TEST(Chaos, FluidQueueSerializesAndTailDrops) {
  ChaosConfig cfg;
  cfg.rate_mbps = 12.0;  // 1500B = 1ms serialization
  cfg.queue_bytes = 15000;  // 10 packets
  ChaosShim shim{cfg};
  // Burst at t=0: departures space out at the serialization time, and
  // the backlog beyond queue_bytes tail-drops.
  TimeNs prev = -1;
  int drops = 0;
  for (int i = 0; i < 20; ++i) {
    const ChaosShim::Verdict v = shim.admit(0, 1500, false);
    if (v.drop) {
      ++drops;
      continue;
    }
    EXPECT_GT(v.depart_delay, prev);
    prev = v.depart_delay;
  }
  EXPECT_GT(drops, 5);
  EXPECT_EQ(shim.stats().dropped_queue, drops);
}

TEST(Chaos, ParseChaosGrammar) {
  const ChaosParseResult r =
      parse_chaos("rate=25,delay=10ms,queue=65536,drop=0.2,seed=9");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_DOUBLE_EQ(r.config.rate_mbps, 25.0);
  EXPECT_EQ(r.config.one_way_delay, from_ms(10));
  EXPECT_EQ(r.config.queue_bytes, 65536);
  EXPECT_DOUBLE_EQ(r.config.drop, 0.2);
  EXPECT_EQ(r.config.seed, 9u);
  EXPECT_TRUE(r.config.active());

  EXPECT_TRUE(parse_chaos("").ok);
  EXPECT_FALSE(parse_chaos("").config.active());
  EXPECT_FALSE(parse_chaos("drop=1.5").ok);
  EXPECT_FALSE(parse_chaos("bogus=1").ok);
  EXPECT_FALSE(parse_chaos("rate").ok);
}

}  // namespace
}  // namespace proteus
