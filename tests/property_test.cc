// Property-based and fuzz-style tests: randomized event orders and wide
// numeric ranges against the invariants each component must keep.
#include <gtest/gtest.h>

#include <cmath>

#include "core/monitor_interval.h"
#include "core/rate_control.h"
#include "core/utility.h"
#include "stats/percentile.h"
#include "stats/rng.h"

namespace proteus {
namespace {

// ---- MonitorInterval under random resolution orders -----------------------

class MiFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MiFuzz, ConservationUnderRandomResolutionOrder) {
  Rng rng(GetParam());
  const int n = static_cast<int>(rng.uniform_int(1, 200));
  MonitorInterval mi(1, 20.0, 0, from_ms(50));

  std::vector<uint64_t> seqs;
  for (int i = 0; i < n; ++i) {
    const auto seq = static_cast<uint64_t>(i);
    mi.on_packet_sent(seq, kMtuBytes, from_us(250.0 * i));
    seqs.push_back(seq);
  }
  mi.seal();
  std::shuffle(seqs.begin(), seqs.end(), rng.engine());

  int acked = 0, lost = 0;
  for (uint64_t seq : seqs) {
    EXPECT_FALSE(mi.complete());
    if (rng.bernoulli(0.8)) {
      mi.on_ack(seq, kMtuBytes, from_us(250.0 * static_cast<double>(seq)),
                from_ms(rng.uniform(20.0, 40.0)), rng.bernoulli(0.9));
      ++acked;
    } else {
      mi.on_loss(seq);
      ++lost;
    }
  }
  ASSERT_TRUE(mi.complete());
  const MiMetrics m = mi.compute();
  EXPECT_EQ(m.packets_sent, n);
  EXPECT_EQ(m.packets_acked, acked);
  EXPECT_EQ(m.packets_lost, lost);
  EXPECT_NEAR(m.loss_rate, static_cast<double>(lost) / n, 1e-12);
  EXPECT_TRUE(std::isfinite(m.rtt_gradient_raw));
  EXPECT_TRUE(std::isfinite(m.rtt_dev_raw_sec));
  EXPECT_GE(m.rtt_dev_raw_sec, 0.0);
  EXPECT_GE(m.throughput_mbps, 0.0);
  EXPECT_LE(m.throughput_mbps, m.send_rate_mbps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MiFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---- Rate controller never wedges or escapes its bounds -------------------

class ControllerFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ControllerFuzz, RandomUtilitiesKeepControllerSane) {
  Rng rng(GetParam());
  RateControlConfig cfg;
  cfg.min_rate_mbps = 0.5;
  cfg.max_rate_mbps = 200.0;
  GradientRateController c(cfg, GetParam() ^ 0xfe);

  std::vector<uint64_t> pending;
  for (int step = 0; step < 3000; ++step) {
    // Random interleaving of planning, completion, and abandonment, as a
    // pipelined sender would produce under churn.
    const double roll = rng.uniform();
    if (roll < 0.45 || pending.empty()) {
      const auto plan = c.plan_next_mi();
      EXPECT_GE(plan.rate_mbps, cfg.min_rate_mbps * 0.94);
      EXPECT_LE(plan.rate_mbps, cfg.max_rate_mbps * 1.06);
      pending.push_back(plan.tag);
    } else if (roll < 0.9) {
      const uint64_t tag = pending.front();
      pending.erase(pending.begin());
      c.on_mi_complete(tag, rng.uniform(-100.0, 100.0));
    } else {
      const uint64_t tag = pending.front();
      pending.erase(pending.begin());
      c.on_mi_abandoned(tag);
    }
    EXPECT_GE(c.base_rate_mbps(), cfg.min_rate_mbps);
    EXPECT_LE(c.base_rate_mbps(), cfg.max_rate_mbps);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

TEST(ControllerProperty, MonotoneUtilityDrivesRateToMax) {
  RateControlConfig cfg;
  cfg.max_rate_mbps = 64.0;
  GradientRateController c(cfg, 21);
  // Utility strictly increasing in rate: the controller must end at max.
  for (int i = 0; i < 400; ++i) {
    const auto plan = c.plan_next_mi();
    c.on_mi_complete(plan.tag, plan.rate_mbps);
  }
  EXPECT_GT(c.base_rate_mbps(), 0.9 * cfg.max_rate_mbps);
}

TEST(ControllerProperty, MonotoneDecreasingUtilityDrivesRateToMin) {
  RateControlConfig cfg;
  cfg.min_rate_mbps = 0.5;
  GradientRateController c(cfg, 22);
  for (int i = 0; i < 400; ++i) {
    const auto plan = c.plan_next_mi();
    c.on_mi_complete(plan.tag, -plan.rate_mbps);
  }
  EXPECT_LT(c.base_rate_mbps(), 2.0 * cfg.min_rate_mbps);
}

// ---- Utility functions at numeric extremes ---------------------------------

class UtilityExtremes : public ::testing::TestWithParam<double> {};

TEST_P(UtilityExtremes, FiniteEverywhere) {
  const double rate = GetParam();
  ProteusScavengerUtility us;
  ProteusPrimaryUtility up;
  VivaceUtility uv;
  AllegroUtility ua;
  for (double loss : {0.0, 0.5, 1.0}) {
    for (double grad : {-10.0, 0.0, 10.0}) {
      for (double dev : {0.0, 1.0}) {
        MiMetrics m;
        m.send_rate_mbps = rate;
        m.loss_rate = loss;
        m.rtt_gradient = grad;
        m.rtt_dev_sec = dev;
        for (const UtilityFunction* u :
             {static_cast<const UtilityFunction*>(&us),
              static_cast<const UtilityFunction*>(&up),
              static_cast<const UtilityFunction*>(&uv),
              static_cast<const UtilityFunction*>(&ua)}) {
          EXPECT_TRUE(std::isfinite(u->eval(m)))
              << u->name() << " rate=" << rate << " loss=" << loss;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, UtilityExtremes,
                         ::testing::Values(0.0, 1e-6, 1.0, 1e3, 1e6));

TEST(UtilityProperty, ScavengerNeverExceedsPrimary) {
  // u_S = u_P - d*x*sigma with d, x, sigma >= 0: always <= u_P.
  Rng rng(23);
  ProteusScavengerUtility us;
  ProteusPrimaryUtility up;
  for (int i = 0; i < 2000; ++i) {
    MiMetrics m;
    m.send_rate_mbps = rng.uniform(0.0, 500.0);
    m.loss_rate = rng.uniform();
    m.rtt_gradient = rng.uniform(-0.5, 0.5);
    m.rtt_dev_sec = rng.uniform(0.0, 0.01);
    EXPECT_LE(us.eval(m), up.eval(m) + 1e-9);
  }
}

// ---- Samples percentile properties ------------------------------------------

class PercentileProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PercentileProperty, MonotoneInPAndBounded) {
  Rng rng(GetParam());
  Samples s;
  const int n = static_cast<int>(rng.uniform_int(1, 500));
  for (int i = 0; i < n; ++i) s.add(rng.normal(0, 10));
  double prev = s.percentile(0);
  EXPECT_DOUBLE_EQ(prev, s.min());
  for (double p = 5; p <= 100; p += 5) {
    const double v = s.percentile(p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(s.percentile(100), s.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace proteus
