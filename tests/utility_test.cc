// Unit tests for the utility library (paper equations (1)-(3)).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/utility.h"

namespace proteus {
namespace {

MiMetrics metrics(double rate_mbps, double gradient = 0.0, double loss = 0.0,
                  double dev_sec = 0.0) {
  MiMetrics m;
  m.send_rate_mbps = rate_mbps;
  m.rtt_gradient = gradient;
  m.rtt_gradient_raw = gradient;
  m.loss_rate = loss;
  m.rtt_dev_sec = dev_sec;
  m.rtt_dev_raw_sec = dev_sec;
  m.useful = true;
  return m;
}

UtilityParams paper_params() {
  UtilityParams p;
  p.t = 0.9;
  p.b = 900.0;
  p.c = 11.35;
  p.d = 1500.0;
  return p;
}

TEST(VivaceUtility, ThroughputOnly) {
  VivaceUtility u(paper_params());
  EXPECT_NEAR(u.eval(metrics(10.0)), std::pow(10.0, 0.9), 1e-9);
}

TEST(VivaceUtility, PenalizesGradientAndLoss) {
  VivaceUtility u(paper_params());
  const double expected =
      std::pow(20.0, 0.9) - 900.0 * 20.0 * 0.01 - 11.35 * 20.0 * 0.02;
  EXPECT_NEAR(u.eval(metrics(20.0, 0.01, 0.02)), expected, 1e-9);
}

TEST(VivaceUtility, RewardsNegativeGradient) {
  VivaceUtility u(paper_params());
  EXPECT_GT(u.eval(metrics(20.0, -0.01)), u.eval(metrics(20.0, 0.0)));
}

TEST(ProteusPrimary, IgnoresNegativeGradient) {
  ProteusPrimaryUtility u(paper_params());
  EXPECT_DOUBLE_EQ(u.eval(metrics(20.0, -0.05)), u.eval(metrics(20.0, 0.0)));
  EXPECT_LT(u.eval(metrics(20.0, 0.05)), u.eval(metrics(20.0, 0.0)));
}

TEST(ProteusScavenger, DeviationPenalty) {
  const UtilityParams p = paper_params();
  ProteusPrimaryUtility up(p);
  ProteusScavengerUtility us(p);
  const MiMetrics clean = metrics(20.0);
  EXPECT_DOUBLE_EQ(us.eval(clean), up.eval(clean));
  const MiMetrics noisy = metrics(20.0, 0.0, 0.0, 0.001);
  EXPECT_NEAR(us.eval(noisy), up.eval(noisy) - 1500.0 * 20.0 * 0.001, 1e-9);
}

TEST(ProteusHybrid, SwitchesAtThreshold) {
  const UtilityParams p = paper_params();
  auto thr = std::make_shared<HybridThresholdState>();
  thr->set_threshold_mbps(15.0);
  ProteusHybridUtility uh(thr, p);
  ProteusPrimaryUtility up(p);
  ProteusScavengerUtility us(p);

  const MiMetrics below = metrics(10.0, 0.0, 0.0, 0.001);
  const MiMetrics above = metrics(20.0, 0.0, 0.0, 0.001);
  EXPECT_DOUBLE_EQ(uh.eval(below), up.eval(below));
  EXPECT_DOUBLE_EQ(uh.eval(above), us.eval(above));
}

TEST(ProteusHybrid, ThresholdUpdatesLive) {
  auto thr = std::make_shared<HybridThresholdState>();
  thr->set_threshold_mbps(5.0);
  ProteusHybridUtility uh(thr, paper_params());
  const MiMetrics m = metrics(10.0, 0.0, 0.0, 0.002);
  const double as_scavenger = uh.eval(m);
  thr->set_threshold_mbps(50.0);
  const double as_primary = uh.eval(m);
  EXPECT_GT(as_primary, as_scavenger);
}

TEST(Utility, ZeroRateIsZeroUtility) {
  ProteusScavengerUtility u(paper_params());
  EXPECT_DOUBLE_EQ(u.eval(metrics(0.0, 0.5, 1.0, 1.0)), 0.0);
}

// Property: all utilities are strictly concave in rate (discrete second
// difference negative) for fixed congestion conditions — the condition
// Appendix A's equilibrium uniqueness rests on.
class UtilityConcavity : public ::testing::TestWithParam<double> {};

TEST_P(UtilityConcavity, SecondDifferenceNegative) {
  const double gradient = GetParam();
  ProteusScavengerUtility us(paper_params());
  ProteusPrimaryUtility up(paper_params());
  for (double x = 1.0; x < 500.0; x *= 1.7) {
    const double h = 0.01 * x;
    for (const UtilityFunction* u :
         {static_cast<const UtilityFunction*>(&us),
          static_cast<const UtilityFunction*>(&up)}) {
      const double f0 = u->eval(metrics(x - h, gradient, 0.01, 0.0005));
      const double f1 = u->eval(metrics(x, gradient, 0.01, 0.0005));
      const double f2 = u->eval(metrics(x + h, gradient, 0.01, 0.0005));
      EXPECT_LT(f2 - 2 * f1 + f0, 0.0) << u->name() << " at x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Gradients, UtilityConcavity,
                         ::testing::Values(0.0, 0.001, 0.01, 0.1));

// Property: higher deviation never increases scavenger utility.
class ScavengerMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(ScavengerMonotonicity, UtilityNonIncreasingInDeviation) {
  ProteusScavengerUtility u(paper_params());
  const double rate = GetParam();
  double prev = u.eval(metrics(rate, 0.0, 0.0, 0.0));
  for (double dev = 1e-5; dev < 1e-2; dev *= 2) {
    const double cur = u.eval(metrics(rate, 0.0, 0.0, dev));
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, ScavengerMonotonicity,
                         ::testing::Values(0.5, 2.0, 10.0, 50.0, 300.0));

}  // namespace
}  // namespace proteus
