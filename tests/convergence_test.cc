// Single-flow convergence smoke tests: every protocol should roughly
// saturate a clean 50 Mbps / 30 ms / 2 BDP bottleneck on its own.
#include <gtest/gtest.h>

#include "harness/experiments.h"

namespace proteus {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 50.0;
  cfg.rtt_ms = 30.0;
  cfg.buffer_bytes = 375'000;  // 2 BDP
  cfg.seed = 7;
  return cfg;
}

class SingleFlowSaturation : public ::testing::TestWithParam<const char*> {};

TEST_P(SingleFlowSaturation, ReachesHighUtilization) {
  const SingleFlowResult r =
      run_single_flow(GetParam(), base_config(), from_sec(60), from_sec(20));
  EXPECT_GT(r.utilization, 0.80) << GetParam();
  EXPECT_LE(r.utilization, 1.02) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SingleFlowSaturation,
                         ::testing::Values("proteus-p", "proteus-s", "vivace",
                                           "cubic", "bbr", "copa", "ledbat"));

}  // namespace
}  // namespace proteus
