// Tests for the application layer: BOLA, the DASH video client, the web
// page-load workload, and the short-flow generator.
#include <gtest/gtest.h>

#include <memory>

#include "app/bola.h"
#include "app/bulk.h"
#include "app/shortflow.h"
#include "app/video.h"
#include "app/web.h"
#include "harness/scenario.h"

namespace proteus {
namespace {

// ---- BOLA ---------------------------------------------------------------

TEST(Bola, MonotoneNonDecreasingInBuffer) {
  BolaAdaptation bola(make_4k_video().bitrates_mbps, 10.0);
  int prev = 0;
  for (double q = 0.0; q <= 10.0; q += 0.5) {
    const int idx = bola.choose(q);
    EXPECT_GE(idx, prev) << "buffer " << q;
    prev = idx;
  }
}

TEST(Bola, LowBufferPicksLowestBitrate) {
  BolaAdaptation bola(make_4k_video().bitrates_mbps, 10.0);
  EXPECT_EQ(bola.choose(0.0), 0);
}

TEST(Bola, HighBufferPicksHighestBitrate) {
  const auto ladder = make_4k_video().bitrates_mbps;
  BolaAdaptation bola(ladder, 10.0);
  EXPECT_EQ(bola.choose(9.5), static_cast<int>(ladder.size()) - 1);
}

TEST(Bola, RejectsBadLadders) {
  EXPECT_THROW(BolaAdaptation({}, 10.0), std::invalid_argument);
  EXPECT_THROW(BolaAdaptation({5.0, 1.0}, 10.0), std::invalid_argument);
}

TEST(FixedBitrate, AlwaysSameIndex) {
  FixedBitrateAdaptation abr(3);
  EXPECT_EQ(abr.choose(0.0), 3);
  EXPECT_EQ(abr.choose(100.0), 3);
}

// ---- Video client ---------------------------------------------------------

TEST(VideoClient, DownloadsAndPlaysSmoothlyWithHeadroom) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.seed = 21;
  Scenario sc(cfg);
  VideoClientConfig vc;
  vc.video = make_1080p_video(20);  // 60 s of video
  vc.id = sc.allocate_flow_id();
  VideoClient client(&sc.sim(), &sc.dumbbell(), vc, make_proteus_p(1),
                     std::make_unique<BolaAdaptation>(
                         vc.video.bitrates_mbps,
                         vc.buffer_capacity_sec / vc.video.chunk_duration_sec));
  sc.run_until(from_sec(90));
  const VideoMetrics m = client.metrics();
  EXPECT_TRUE(m.finished_download);
  EXPECT_EQ(m.chunks_downloaded, 20);
  EXPECT_LT(m.rebuffer_ratio, 0.02);
  EXPECT_GT(m.average_chunk_bitrate_mbps, 3.0);  // climbs the ladder
  EXPECT_GT(m.play_time_sec, 55.0);
}

TEST(VideoClient, RebuffersWhenLinkTooSlow) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 3.0;  // below even mid-ladder 1080p rates
  cfg.seed = 22;
  Scenario sc(cfg);
  VideoClientConfig vc;
  vc.video = make_1080p_video(20);
  vc.id = sc.allocate_flow_id();
  // Force the top bitrate (10.5 Mbps > 3 Mbps link): must stall.
  VideoClient client(
      &sc.sim(), &sc.dumbbell(), vc, make_proteus_p(1),
      std::make_unique<FixedBitrateAdaptation>(
          static_cast<int>(vc.video.bitrates_mbps.size()) - 1));
  sc.run_until(from_sec(120));
  EXPECT_GT(client.metrics().rebuffer_events, 0);
  EXPECT_GT(client.metrics().rebuffer_ratio, 0.3);
}

TEST(VideoClient, BufferNeverExceedsCapacity) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 200.0;
  cfg.seed = 23;
  Scenario sc(cfg);
  VideoClientConfig vc;
  vc.video = make_1080p_video(40);
  vc.buffer_capacity_sec = 12.0;
  vc.id = sc.allocate_flow_id();
  VideoClient client(&sc.sim(), &sc.dumbbell(), vc, make_proteus_p(1),
                     std::make_unique<FixedBitrateAdaptation>(0));
  for (int t = 1; t <= 60; ++t) {
    sc.run_until(from_sec(t));
    EXPECT_LE(client.buffer_level_sec(), 12.0 + 1e-9);
  }
}

TEST(VideoClient, FeedsHybridThresholdPolicy) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.seed = 24;
  Scenario sc(cfg);
  auto state = std::make_shared<HybridThresholdState>();
  HybridThresholdPolicy policy(state);
  VideoClientConfig vc;
  vc.video = make_4k_video(20);
  vc.id = sc.allocate_flow_id();
  VideoClient client(&sc.sim(), &sc.dumbbell(), vc,
                     make_proteus_h(state, 1),
                     std::make_unique<BolaAdaptation>(
                         vc.video.bitrates_mbps,
                         vc.buffer_capacity_sec / vc.video.chunk_duration_sec),
                     &policy);
  sc.run_until(from_sec(60));
  // The policy must have been driven to a finite, rule-derived threshold.
  const double thr = state->threshold_mbps();
  EXPECT_GT(thr, 0.0);
  EXPECT_LE(thr, 1.5 * vc.video.bitrates_mbps.back() + 1e-9);
  EXPECT_GT(client.metrics().chunks_downloaded, 5);
}

// ---- Web workload ----------------------------------------------------------

TEST(WebWorkload, PagesCompleteAndPltMeasured) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.seed = 25;
  Scenario sc(cfg);
  WebWorkload::Config wc;
  wc.page_arrival_rate_per_sec = 0.5;
  wc.stop_time = from_sec(60);
  WebWorkload web(&sc.sim(), &sc.dumbbell(), wc, [](uint64_t seed) {
    return make_protocol("cubic", seed);
  });
  sc.run_until(from_sec(120));
  EXPECT_GT(web.pages_started(), 10);
  EXPECT_EQ(web.pages_completed(), web.pages_started());
  const Samples plt = web.page_load_times_sec();
  EXPECT_GT(plt.count(), 10);
  EXPECT_GT(plt.median(), 0.01);
  EXPECT_LT(plt.median(), 10.0);
}

TEST(WebWorkload, SlowerUnderContention) {
  auto run_plt = [](bool with_background) {
    ScenarioConfig cfg;
    cfg.bandwidth_mbps = 20.0;
    cfg.seed = 26;
    Scenario sc(cfg);
    if (with_background) sc.add_flow("cubic", 0);
    WebWorkload::Config wc;
    wc.page_arrival_rate_per_sec = 0.3;
    wc.stop_time = from_sec(80);
    WebWorkload web(&sc.sim(), &sc.dumbbell(), wc, [](uint64_t seed) {
      return make_protocol("cubic", seed);
    });
    sc.run_until(from_sec(120));
    return web.page_load_times_sec().median();
  };
  EXPECT_GT(run_plt(true), run_plt(false) * 1.3);
}

// ---- Short flows -------------------------------------------------------------

TEST(ShortFlowGenerator, PoissonArrivalsRoughlyMatchRate) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 100.0;
  cfg.seed = 27;
  Scenario sc(cfg);
  ShortFlowGenerator::Config sfc;
  sfc.arrival_rate_per_sec = 6.0;
  sfc.stop_time = from_sec(60);
  ShortFlowGenerator gen(&sc.sim(), &sc.dumbbell(), sfc, [](uint64_t seed) {
    return make_protocol("cubic", seed);
  });
  sc.run_until(from_sec(70));
  EXPECT_NEAR(static_cast<double>(gen.flows_started()), 360.0, 60.0);
  EXPECT_EQ(gen.flows_completed(), gen.flows_started());
  EXPECT_LT(gen.completion_times_sec().median(), 1.0);
}

TEST(ShortFlowGenerator, ZeroRateProducesNothing) {
  ScenarioConfig cfg;
  cfg.seed = 28;
  Scenario sc(cfg);
  ShortFlowGenerator::Config sfc;
  sfc.arrival_rate_per_sec = 0.0;
  ShortFlowGenerator gen(&sc.sim(), &sc.dumbbell(), sfc, [](uint64_t seed) {
    return make_protocol("cubic", seed);
  });
  sc.run_until(from_sec(10));
  EXPECT_EQ(gen.flows_started(), 0);
}

// ---- Fixed-rate probe + window analyzer ---------------------------------------

TEST(RttWindowAnalyzer, SplitsIntoWindows) {
  RttWindowAnalyzer an(from_ms(100));
  // Two full windows of samples with distinct deviations.
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 10; ++i) {
      const TimeNs t = w * from_ms(100) + i * from_ms(10);
      const TimeNs rtt = from_ms(30) + (w == 1 ? from_ms(i % 2) : 0);
      an.add_sample(t, rtt);
    }
  }
  // Windows 0 and 1 flushed (window 2 still open).
  EXPECT_EQ(an.deviations_ms().count(), 2);
  EXPECT_LT(an.deviations_ms().min(), 0.01);
  EXPECT_NEAR(an.deviations_ms().max(), 0.5, 0.01);
}

TEST(FixedRateController, HoldsConfiguredRate) {
  ScenarioConfig cfg;
  cfg.seed = 29;
  Scenario sc(cfg);
  Flow& f = sc.add_flow_with_cc(std::make_unique<FixedRateController>(
                                    Bandwidth::from_mbps(20)),
                                0);
  sc.run_until(from_sec(20));
  EXPECT_NEAR(f.mean_throughput_mbps(from_sec(5), from_sec(20)), 20.0, 1.5);
}

}  // namespace
}  // namespace proteus
