// Wire-format hardening: round-trips, strict-parser rejection pins
// (version mismatch, truncation, trailing bytes, reserved bits), 32-bit
// sequence wrap-around, and fuzz-style random/truncated/bit-flipped
// input. The fuzz tests run under the ASan/UBSan tier of verify.sh: the
// parser's contract is that rejection is the only failure mode — no
// input reaches undefined behavior.
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "rt/wire.h"
#include "stats/rng.h"

namespace proteus {
namespace {

TEST(Wire, HelloRoundTrip) {
  uint8_t buf[kMaxFrameBytes];
  const size_t n = encode_hello(buf, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(n, kWireHeaderBytes + 8);
  Frame f;
  ASSERT_EQ(parse_frame(buf, n, f), ParseError::kNone);
  EXPECT_EQ(f.type, FrameType::kHello);
  EXPECT_EQ(f.hello.token, 0xdeadbeefcafef00dULL);

  const size_t m = encode_hello_ack(buf, 42);
  ASSERT_EQ(parse_frame(buf, m, f), ParseError::kNone);
  EXPECT_EQ(f.type, FrameType::kHelloAck);
  EXPECT_EQ(f.hello.token, 42u);
}

TEST(Wire, DataRoundTripPadsToWireBytes) {
  uint8_t buf[kMaxFrameBytes];
  const size_t n = encode_data(buf, 7, 123456789, 1500);
  EXPECT_EQ(n, 1500u);  // emulated packet size = actual datagram size
  Frame f;
  ASSERT_EQ(parse_frame(buf, n, f), ParseError::kNone);
  EXPECT_EQ(f.type, FrameType::kData);
  EXPECT_EQ(f.data.seq, 7u);
  EXPECT_EQ(f.data.send_ts_ns, 123456789u);
  EXPECT_EQ(f.data.wire_bytes, 1500);
}

TEST(Wire, DataWireBytesClamped) {
  uint8_t buf[kMaxFrameBytes];
  // Below the minimum (header + 12): clamped up.
  EXPECT_EQ(encode_data(buf, 1, 0, 4), kWireHeaderBytes + 12);
  // Above the MTU frame: clamped down.
  EXPECT_EQ(encode_data(buf, 1, 0, 1 << 20), kMaxFrameBytes);
}

TEST(Wire, AckRoundTrip) {
  uint8_t buf[kMaxFrameBytes];
  AckFrame in;
  in.acked_seq = 0xfffffffe;
  in.send_ts_echo_ns = 111;
  in.receiver_ts_ns = 222;
  in.acked_bytes = 1500;
  const size_t n = encode_ack(buf, in);
  Frame f;
  ASSERT_EQ(parse_frame(buf, n, f), ParseError::kNone);
  EXPECT_EQ(f.type, FrameType::kAck);
  EXPECT_EQ(f.ack.acked_seq, 0xfffffffeu);
  EXPECT_EQ(f.ack.send_ts_echo_ns, 111u);
  EXPECT_EQ(f.ack.receiver_ts_ns, 222u);
  EXPECT_EQ(f.ack.acked_bytes, 1500u);
}

TEST(Wire, HeartbeatAndByeRoundTrip) {
  uint8_t buf[kMaxFrameBytes];
  Frame f;
  const size_t h = encode_heartbeat(buf, 999);
  ASSERT_EQ(parse_frame(buf, h, f), ParseError::kNone);
  EXPECT_EQ(f.heartbeat.ts_ns, 999u);
  const size_t b = encode_bye(buf);
  EXPECT_EQ(b, kWireHeaderBytes);
  ASSERT_EQ(parse_frame(buf, b, f), ParseError::kNone);
  EXPECT_EQ(f.type, FrameType::kBye);
}

TEST(Wire, RejectsEveryTruncation) {
  uint8_t buf[kMaxFrameBytes];
  const size_t n = encode_ack(buf, AckFrame{});
  Frame f;
  for (size_t len = 0; len < n; ++len) {
    EXPECT_NE(parse_frame(buf, len, f), ParseError::kNone) << "len=" << len;
  }
}

TEST(Wire, RejectsVersionMismatch) {
  // A frame from a future protocol version must be rejected as
  // kBadVersion before any payload interpretation.
  uint8_t buf[kMaxFrameBytes];
  const size_t n = encode_hello(buf, 1);
  buf[2] = kWireVersion + 1;
  Frame f;
  EXPECT_EQ(parse_frame(buf, n, f), ParseError::kBadVersion);
  buf[2] = 0;
  EXPECT_EQ(parse_frame(buf, n, f), ParseError::kBadVersion);
}

TEST(Wire, RejectsBadMagicTypeReservedAndTrailing) {
  uint8_t buf[kMaxFrameBytes + 8];
  const size_t n = encode_heartbeat(buf, 5);
  Frame f;

  uint8_t bad[kMaxFrameBytes + 8];
  std::memcpy(bad, buf, n);
  bad[0] ^= 0xff;
  EXPECT_EQ(parse_frame(bad, n, f), ParseError::kBadMagic);

  std::memcpy(bad, buf, n);
  bad[3] = 0;  // type below kHello
  EXPECT_EQ(parse_frame(bad, n, f), ParseError::kBadType);
  bad[3] = 200;  // type above kBye
  EXPECT_EQ(parse_frame(bad, n, f), ParseError::kBadType);

  std::memcpy(bad, buf, n);
  bad[6] = 1;  // reserved must be zero
  EXPECT_EQ(parse_frame(bad, n, f), ParseError::kReservedBits);

  // Trailing garbage: length prefix disagrees with the datagram size.
  std::memcpy(bad, buf, n);
  bad[n] = 0;
  EXPECT_EQ(parse_frame(bad, n + 1, f), ParseError::kLengthMismatch);

  // Oversized datagram rejected outright.
  std::vector<uint8_t> big(kMaxFrameBytes + 1, 0);
  EXPECT_EQ(parse_frame(big.data(), big.size(), f), ParseError::kTooLong);
}

TEST(Wire, RejectsWrongPayloadSizeForType) {
  // Valid header, declared length consistent with the datagram, but not
  // the size the type requires: HELLO with a 4-byte payload.
  uint8_t buf[kWireHeaderBytes + 4] = {};
  buf[0] = static_cast<uint8_t>(kWireMagic & 0xff);
  buf[1] = static_cast<uint8_t>(kWireMagic >> 8);
  buf[2] = kWireVersion;
  buf[3] = static_cast<uint8_t>(FrameType::kHello);
  buf[4] = 4;  // length = 4
  Frame f;
  EXPECT_EQ(parse_frame(buf, sizeof buf, f), ParseError::kBadPayload);

  // DATA must carry at least seq + timestamp (12 bytes).
  buf[3] = static_cast<uint8_t>(FrameType::kData);
  EXPECT_EQ(parse_frame(buf, sizeof buf, f), ParseError::kBadPayload);
}

// --- fuzz-style: no input may reach UB (ASan/UBSan tier) ---------------

TEST(WireFuzz, RandomBuffersNeverCrash) {
  Rng rng(20260808);
  uint8_t buf[kMaxFrameBytes + 32];
  Frame f;
  int accepted = 0;
  for (int iter = 0; iter < 20000; ++iter) {
    const size_t len =
        static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(sizeof buf)));
    for (size_t i = 0; i < len; ++i) {
      buf[i] = static_cast<uint8_t>(rng.uniform_int(0, 255));
    }
    if (parse_frame(buf, len, f) == ParseError::kNone) ++accepted;
  }
  // Random magic+version+type+exact-length agreement is astronomically
  // unlikely; the strictness is the point.
  EXPECT_EQ(accepted, 0);
}

TEST(WireFuzz, BitFlippedValidFramesNeverCrash) {
  Rng rng(77);
  uint8_t pristine[kMaxFrameBytes];
  uint8_t buf[kMaxFrameBytes];
  Frame f;
  const size_t n = encode_data(pristine, 12345, 67890, 600);
  // Every single-bit flip of a valid frame parses or rejects — no UB,
  // and flips in the header's guarded fields are always rejected.
  for (size_t bit = 0; bit < n * 8; ++bit) {
    std::memcpy(buf, pristine, n);
    buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    (void)parse_frame(buf, n, f);
  }
  // Random multi-bit corruption + truncation.
  for (int iter = 0; iter < 5000; ++iter) {
    std::memcpy(buf, pristine, n);
    const int flips = static_cast<int>(rng.uniform_int(1, 32));
    for (int k = 0; k < flips; ++k) {
      const size_t bit = static_cast<size_t>(
          rng.uniform_int(0, static_cast<int64_t>(n * 8 - 1)));
      buf[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
    }
    const size_t len =
        static_cast<size_t>(rng.uniform_int(0, static_cast<int64_t>(n)));
    (void)parse_frame(buf, len, f);
  }
}

// --- 32-bit sequence expansion ------------------------------------------

TEST(Wire, ExpandSeq32BasicAndWrap) {
  constexpr uint64_t kEpoch = uint64_t{1} << 32;
  // Plain cases within the first epoch.
  EXPECT_EQ(expand_seq32(0, 0), 0u);
  EXPECT_EQ(expand_seq32(100, 101), 100u);
  // Wrap-around: next_expected just past the epoch, small wire values
  // belong to the new epoch, large ones to the old.
  EXPECT_EQ(expand_seq32(3, kEpoch + 1), kEpoch + 3);
  EXPECT_EQ(expand_seq32(0xfffffffe, kEpoch + 1), 0xfffffffeu);
  // Deep into epoch 1.
  EXPECT_EQ(expand_seq32(7, kEpoch + kEpoch / 2), kEpoch + 7);
  // Underflow guard: tiny next_expected with a huge wire seq must not
  // produce a negative epoch.
  EXPECT_EQ(expand_seq32(0xffffffff, 0), 0xffffffffu);
  EXPECT_EQ(expand_seq32(0xffffffff, 5), 0xffffffffu);
}

TEST(Wire, ExpandSeq32TracksLongTransfer) {
  // Simulate a transfer crossing the 2^32 boundary: the expansion must
  // follow next_expected monotonically through the wrap.
  constexpr uint64_t kEpoch = uint64_t{1} << 32;
  for (uint64_t seq = kEpoch - 1000; seq < kEpoch + 1000; ++seq) {
    const uint32_t wire = static_cast<uint32_t>(seq);
    EXPECT_EQ(expand_seq32(wire, seq), seq) << "seq=" << seq;
    // Mild reordering around the boundary still resolves correctly.
    EXPECT_EQ(expand_seq32(wire, seq + 3), seq);
  }
}

}  // namespace
}  // namespace proteus
