// Unit tests for the section-5 noise-tolerance mechanisms.
#include <gtest/gtest.h>

#include "core/noise_filter.h"
#include "stats/rng.h"

namespace proteus {
namespace {

NoiseControlConfig proteus_noise() {
  NoiseControlConfig cfg;  // defaults are the Proteus configuration
  return cfg;
}

MiMetrics raw_metrics(double gradient, double dev, double reg_err,
                      double avg_rtt = 0.03) {
  MiMetrics m;
  m.rtt_gradient_raw = gradient;
  m.rtt_dev_raw_sec = dev;
  m.regression_error = reg_err;
  m.avg_rtt_sec = avg_rtt;
  m.rtt_samples = 20;
  m.useful = true;
  return m;
}

// ---- Per-ACK filter ---------------------------------------------------

TEST(AckIntervalFilter, AcceptsSteadyStream) {
  AckIntervalFilter f(proteus_noise());
  TimeNs t = 0;
  for (int i = 0; i < 100; ++i) {
    const TimeNs prev = t;
    t += from_ms(1);
    EXPECT_TRUE(f.accept(from_ms(30), t, i == 0 ? 0 : prev));
  }
}

TEST(AckIntervalFilter, SuppressesAfterBurstGapRatio) {
  AckIntervalFilter f(proteus_noise());
  TimeNs t = 0;
  for (int i = 0; i < 10; ++i) {
    const TimeNs prev = t;
    t += from_ms(1);
    f.accept(from_ms(30), t, i == 0 ? 0 : prev);
  }
  // A 100 ms stall then a back-to-back burst: ratio 100 -> suppression.
  TimeNs prev = t;
  t += from_ms(100);
  EXPECT_FALSE(f.accept(from_ms(130), t, prev));  // the spike itself
  prev = t;
  t += from_us(10);
  EXPECT_FALSE(f.accept(from_ms(95), t, prev));  // burst, still high RTT
  EXPECT_TRUE(f.suppressing());
  // Recovery: an RTT below the moving average ends suppression.
  prev = t;
  t += from_ms(1);
  EXPECT_TRUE(f.accept(from_ms(25), t, prev));
  EXPECT_FALSE(f.suppressing());
}

TEST(AckIntervalFilter, SpikeRejectionStillRecordsInterval) {
  // Regression: the spike-rejection branch used to return before the
  // interval bookkeeping ran, so a spike-rejected ACK neither updated
  // last_interval_ nor fed the burst-gap ratio check. A 100 ms stall
  // whose first ACK was also an RTT spike therefore never triggered
  // suppression at all — the following normal-cadence ACK compared
  // 1 ms against the stale pre-gap 1 ms and sailed through.
  NoiseControlConfig cfg = proteus_noise();
  cfg.ack_spike_rejection = true;
  AckIntervalFilter f(cfg);
  TimeNs t = 0;
  for (int i = 0; i < 10; ++i) {
    const TimeNs prev = t;
    t += from_ms(1);
    EXPECT_TRUE(f.accept(from_ms(30), t, i == 0 ? 0 : prev));
  }
  // 100 ms stall; the delayed ACK's RTT is also a spike (way over the
  // 30 ms average + 3 ms gate floor). It must be rejected AND must still
  // arm burst suppression from the interval ratio (100 ms / 1 ms).
  TimeNs prev = t;
  t += from_ms(100);
  EXPECT_FALSE(f.accept(from_ms(130), t, prev));
  EXPECT_TRUE(f.suppressing());  // false before the fix
  EXPECT_EQ(f.rejected_spike(), 1u);
  // Next ACK at normal cadence: RTT 32 ms clears the spike gate (33 ms)
  // but sits above the 30 ms moving average, so suppression must hold it
  // back. Before the fix this sample was accepted.
  prev = t;
  t += from_ms(1);
  EXPECT_FALSE(f.accept(from_ms(32), t, prev));
  EXPECT_EQ(f.rejected_burst(), 1u);
  // Recovery: an RTT below the moving average drains the suppression.
  prev = t;
  t += from_ms(1);
  EXPECT_TRUE(f.accept(from_ms(25), t, prev));
  EXPECT_FALSE(f.suppressing());
  EXPECT_EQ(f.accepted(), 11u);
}

TEST(AckIntervalFilter, SpikeRejectionCountsLifetimeTallies) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.ack_spike_rejection = true;
  AckIntervalFilter f(cfg);
  TimeNs t = 0;
  for (int i = 0; i < 20; ++i) {
    const TimeNs prev = t;
    t += from_ms(1);
    f.accept(from_ms(30), t, i == 0 ? 0 : prev);
  }
  const TimeNs prev = t;
  t += from_ms(1);
  f.accept(from_ms(90), t, prev);  // lone spike at steady cadence
  EXPECT_EQ(f.rejected_spike(), 1u);
  EXPECT_EQ(f.rejected_burst(), 0u);  // no gap ratio, no suppression
  EXPECT_FALSE(f.suppressing());
  EXPECT_EQ(f.accepted(), 20u);
}

TEST(AckIntervalFilter, DisabledPassesEverything) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.ack_filter = false;
  AckIntervalFilter f(cfg);
  EXPECT_TRUE(f.accept(from_ms(500), from_ms(200), from_ms(1)));
}

// ---- Per-MI regression tolerance ---------------------------------------

TEST(ApplyNoiseControl, SmallGradientZeroedByRegressionError) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.trending = false;
  cfg.deviation_filter = DeviationFilterMode::kOff;
  MiMetrics m = raw_metrics(/*gradient=*/0.002, /*dev=*/0.001,
                            /*reg_err=*/0.01);
  apply_noise_control(cfg, m, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(m.rtt_gradient, 0.0);
  EXPECT_DOUBLE_EQ(m.rtt_dev_sec, 0.001);  // kOff leaves deviation raw
}

TEST(ApplyNoiseControl, LargeGradientSurvivesRegressionError) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.trending = false;
  cfg.deviation_filter = DeviationFilterMode::kOff;
  MiMetrics m = raw_metrics(0.05, 0.001, 0.01);
  apply_noise_control(cfg, m, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(m.rtt_gradient, 0.05);
}

TEST(ApplyNoiseControl, TrendingGateModeZeroesDeviationWithGradient) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.trending = false;
  cfg.deviation_filter = DeviationFilterMode::kTrendingGate;
  MiMetrics m = raw_metrics(0.002, 0.001, 0.01);
  apply_noise_control(cfg, m, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(m.rtt_gradient, 0.0);
  EXPECT_DOUBLE_EQ(m.rtt_dev_sec, 0.0);  // paper-literal: both zeroed
}

TEST(ApplyNoiseControl, VivaceFixedTolerance) {
  NoiseControlConfig cfg;
  cfg.ack_filter = false;
  cfg.mi_regression_tolerance = false;
  cfg.trending = false;
  cfg.deviation_filter = DeviationFilterMode::kOff;
  cfg.fixed_gradient_tolerance = 0.01;
  MiMetrics small = raw_metrics(0.005, 0, 0);
  apply_noise_control(cfg, small, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(small.rtt_gradient, 0.0);
  MiMetrics big = raw_metrics(-0.05, 0, 0);
  apply_noise_control(cfg, big, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(big.rtt_gradient, -0.05);  // signed gradient preserved
}

// ---- Trending tolerance -------------------------------------------------

TEST(TrendingTolerance, WarmupDefaultsSignificant) {
  TrendingTolerance t(proteus_noise());
  const auto d = t.update(0.030, 0.0001);
  EXPECT_TRUE(d.gradient_significant);
  EXPECT_TRUE(d.deviation_significant);
}

TEST(TrendingTolerance, StationaryNoiseBecomesInsignificant) {
  TrendingTolerance t(proteus_noise());
  Rng rng(5);
  TrendingTolerance::Decision d;
  for (int i = 0; i < 60; ++i) {
    d = t.update(0.030 + rng.normal(0, 1e-5), 1e-4 + rng.normal(0, 1e-6));
  }
  EXPECT_FALSE(d.gradient_significant);
  EXPECT_FALSE(d.deviation_significant);
}

TEST(TrendingTolerance, PersistentSlowInflationDetected) {
  TrendingTolerance t(proteus_noise());
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    t.update(0.030 + rng.normal(0, 1e-6), 1e-4);
  }
  // Now a slow but persistent climb of 0.5 ms per MI.
  TrendingTolerance::Decision d;
  double rtt = 0.030;
  for (int i = 0; i < 8; ++i) {
    rtt += 5e-4;
    d = t.update(rtt, 1e-4);
  }
  EXPECT_TRUE(d.gradient_significant);
}

TEST(TrendingTolerance, DeviationSurgeDetected) {
  TrendingTolerance t(proteus_noise());
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    t.update(0.030, 1e-4 + rng.normal(0, 2e-6));
  }
  TrendingTolerance::Decision d;
  for (int i = 0; i < 8; ++i) {
    // Competition: per-MI deviation starts swinging wildly.
    d = t.update(0.030, i % 2 == 0 ? 1e-3 : 1e-4);
  }
  EXPECT_TRUE(d.deviation_significant);
}

// ---- Deviation floor ----------------------------------------------------

TEST(DeviationFloor, StationarySelfNoiseCancels) {
  NoiseControlConfig cfg = proteus_noise();
  DeviationFloor f(cfg);
  double out = 1.0;
  for (int i = 0; i < 50; ++i) {
    out = f.filter(2e-4);
  }
  EXPECT_DOUBLE_EQ(out, 0.0);
  EXPECT_DOUBLE_EQ(f.current_floor(), 2e-4);
}

TEST(DeviationFloor, CompetitionExcessPassesThrough) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.deviation_floor_margin = 1.0;
  DeviationFloor f(cfg);
  for (int i = 0; i < 30; ++i) f.filter(1e-4);
  const double out = f.filter(8e-4);
  EXPECT_NEAR(out, 7e-4, 1e-9);
}

TEST(DeviationFloor, FloorExpiresWithWindow) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.deviation_floor_window = 8;
  cfg.deviation_floor_margin = 1.0;
  DeviationFloor f(cfg);
  f.filter(1e-5);  // one very quiet MI
  for (int i = 0; i < 8; ++i) f.filter(5e-4);
  // The quiet MI has rolled out; the floor is the newer ambient level.
  EXPECT_NEAR(f.current_floor(), 5e-4, 1e-9);
}

TEST(DeviationFloor, WindowBoundaryExcludesExpiredMinimum) {
  // Regression: eviction used to happen *after* the floor was read, so a
  // uniquely-quiet MI kept subsidizing the floor for one call past its
  // configured window. Walk a known sequence across the boundary: with
  // window=4, the quiet sample at call 0 may influence the floors of
  // calls 1..3 only.
  NoiseControlConfig cfg = proteus_noise();
  cfg.deviation_floor_window = 4;
  cfg.deviation_floor_margin = 1.0;
  DeviationFloor f(cfg);
  EXPECT_DOUBLE_EQ(f.filter(1e-3), 0.0);  // call 0: quiet, no history yet
  // Calls 1..3: the quiet MI is the in-window minimum, floor = 1e-3.
  for (int call = 1; call <= 3; ++call) {
    EXPECT_NEAR(f.filter(5e-3), 4e-3, 1e-12) << "call " << call;
  }
  // Call 4: the quiet MI is 4 calls old — outside the window — so the
  // floor is now the ambient 5e-3 level. The buggy ordering returned
  // 4e-3 here (quiet sample alive for a 4th read).
  EXPECT_DOUBLE_EQ(f.filter(5e-3), 0.0);
  EXPECT_DOUBLE_EQ(f.current_floor(), 5e-3);
}

TEST(DeviationFloor, FirstSampleNeverCounts) {
  DeviationFloor f(proteus_noise());
  EXPECT_DOUBLE_EQ(f.filter(1e-3), 0.0);
}

TEST(ApplyNoiseControl, FloorModeEndToEnd) {
  NoiseControlConfig cfg = proteus_noise();
  cfg.trending = false;
  cfg.deviation_floor_margin = 1.0;
  DeviationFloor floor(cfg);
  for (int i = 0; i < 20; ++i) {
    MiMetrics m = raw_metrics(0.0, 2e-4, 1e-3);
    apply_noise_control(cfg, m, nullptr, &floor);
    if (i > 0) {
      EXPECT_DOUBLE_EQ(m.rtt_dev_sec, 0.0);
    }
  }
  MiMetrics m = raw_metrics(0.0, 9e-4, 1e-3);
  apply_noise_control(cfg, m, nullptr, &floor);
  EXPECT_NEAR(m.rtt_dev_sec, 7e-4, 1e-9);
}

}  // namespace
}  // namespace proteus
