// Unit tests for the statistics substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "stats/ewma.h"
#include "stats/histogram.h"
#include "stats/jain.h"
#include "stats/percentile.h"
#include "stats/regression.h"
#include "stats/rng.h"
#include "stats/welford.h"

namespace proteus {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(1);  // same salt, parent advanced -> still distinct
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (c1.uniform() == c2.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng r(4);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    saw_lo |= v == 1;
    saw_hi |= v == 6;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMean) {
  Rng r(5);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(10.0);
  EXPECT_NEAR(sum / n, 10.0, 0.5);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(6);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(Rng, BernoulliClampsOutOfRange) {
  Rng r(6);
  EXPECT_FALSE(r.bernoulli(-1.0));
  EXPECT_TRUE(r.bernoulli(2.0));
}

TEST(Rng, ParetoBoundedBelowByScale) {
  Rng r(8);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.pareto(5.0, 1.5), 5.0);
  }
}

TEST(Rng, PoissonMean) {
  Rng r(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += static_cast<double>(r.poisson(4.0));
  EXPECT_NEAR(sum / 10000.0, 4.0, 0.2);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.add(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.25);
  e.add(0.0);
  for (int i = 0; i < 100; ++i) e.add(8.0);
  EXPECT_NEAR(e.value(), 8.0, 1e-6);
}

TEST(MeanDeviationTracker, TracksMeanAndAbsDeviation) {
  MeanDeviationTracker t(0.5, 0.5);
  t.add(10.0);
  for (int i = 0; i < 200; ++i) t.add(i % 2 == 0 ? 9.0 : 11.0);
  EXPECT_NEAR(t.average(), 10.0, 0.8);
  EXPECT_NEAR(t.deviation(), 1.0, 0.4);
}

TEST(Welford, MeanAndVariance) {
  Welford w;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) w.add(v);
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(w.stddev(), 2.0);
}

TEST(Welford, EmptyIsZero) {
  Welford w;
  EXPECT_EQ(w.count(), 0);
  EXPECT_DOUBLE_EQ(w.mean(), 0.0);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(Samples, PercentileInterpolation) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 3.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(25), 2.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 4.8);
}

TEST(Samples, AddAfterQueryStaysSorted) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Samples, RawPreservesInsertionOrder) {
  Samples s;
  s.add(5.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);  // a query must not reorder raw()
  s.add(3.0);
  const std::vector<double> expected = {5.0, 1.0, 3.0};
  EXPECT_EQ(s.raw(), expected);
}

TEST(Samples, ConcurrentConstReadersAreRaceFree) {
  // Regression (pinned under TSan by verify.sh tier 2): the lazy sort
  // used to mutate values_/sorted_ under const, so two threads calling
  // percentile() on the same const Samples raced on the sort. The sorted
  // view now lives in a mutex-guarded cache; concurrent const readers
  // must be safe and agree on every answer.
  Samples s;
  Rng rng(9);
  for (int i = 0; i < 2000; ++i) s.add(rng.uniform() * 100.0);
  const Samples& cs = s;
  const double want_p50 = cs.percentile(50.0);

  // Fresh copy so the cache starts cold and every thread may race to
  // build it (copying drops the cache, keeping copies independent).
  const Samples cold = s;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&cold, &mismatches, want_p50] {
      for (int i = 0; i < 50; ++i) {
        if (cold.percentile(50.0) != want_p50) mismatches.fetch_add(1);
        if (cold.min() > cold.max()) mismatches.fetch_add(1);
        if (cold.cdf_at(50.0) < 0.0 || cold.cdf_at(50.0) > 1.0) {
          mismatches.fetch_add(1);
        }
        if (cold.mean() <= 0.0) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Samples, CopyAndMoveKeepValues) {
  Samples s;
  for (double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.percentile(50.0), 2.0);  // warm the cache
  Samples copy = s;
  EXPECT_EQ(copy.count(), 3);
  EXPECT_DOUBLE_EQ(copy.percentile(50.0), 2.0);
  copy.add(10.0);  // cache invalidation carries over to the copy
  EXPECT_DOUBLE_EQ(copy.max(), 10.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);  // original untouched
  Samples moved = std::move(copy);
  EXPECT_EQ(moved.count(), 4);
  EXPECT_DOUBLE_EQ(moved.max(), 10.0);
}

TEST(Samples, CdfAt) {
  Samples s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(ConfusionProbability, SeparatedDistributionsNearZero) {
  Samples congested, idle;
  for (int i = 0; i < 100; ++i) {
    congested.add(10.0 + i * 0.01);
    idle.add(1.0 + i * 0.01);
  }
  EXPECT_DOUBLE_EQ(confusion_probability(congested, idle), 0.0);
}

TEST(ConfusionProbability, IdenticalDistributionsNearHalf) {
  Samples a, b;
  Rng r(11);
  for (int i = 0; i < 500; ++i) {
    a.add(r.normal(5, 1));
    b.add(r.normal(5, 1));
  }
  EXPECT_NEAR(confusion_probability(a, b), 0.5, 0.05);
}

TEST(ConfusionProbability, TiesCountHalf) {
  Samples a, b;
  a.add(1.0);
  b.add(1.0);
  EXPECT_DOUBLE_EQ(confusion_probability(a, b), 0.5);
}

TEST(Histogram, BinningAndPdf) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  auto pdf = h.pdf();
  for (double p : pdf) EXPECT_DOUBLE_EQ(p, 0.1);
  EXPECT_EQ(h.total(), 10);
}

TEST(Histogram, ClampsOutOfRange) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.count(0), 1);
  EXPECT_EQ(h.count(9), 1);
}

TEST(Histogram, CdfMonotoneToOne) {
  Histogram h(0.0, 1.0, 4);
  Rng r(12);
  for (int i = 0; i < 1000; ++i) h.add(r.uniform());
  auto cdf = h.cdf();
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-9);
}

TEST(Histogram, RejectsBadArguments) {
  EXPECT_THROW(Histogram(0.0, 0.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Regression, ExactLine) {
  std::vector<double> x{0, 1, 2, 3, 4};
  std::vector<double> y{1, 3, 5, 7, 9};
  auto r = linear_regression(x, y);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.slope, 2.0, 1e-12);
  EXPECT_NEAR(r.intercept, 1.0, 1e-12);
  EXPECT_NEAR(r.residual_rms, 0.0, 1e-12);
}

TEST(Regression, ResidualsOfNoisyLine) {
  std::vector<double> x{0, 1, 2, 3};
  std::vector<double> y{0, 1.5, 1.5, 3};  // symmetric noise around y=x
  auto r = linear_regression(x, y);
  ASSERT_TRUE(r.valid);
  EXPECT_NEAR(r.slope, 0.9, 1e-9);
  EXPECT_GT(r.residual_rms, 0.0);
}

TEST(Regression, DegenerateInputsInvalid) {
  EXPECT_FALSE(linear_regression({}, {}).valid);
  EXPECT_FALSE(linear_regression({1.0}, {2.0}).valid);
  EXPECT_FALSE(linear_regression({2.0, 2.0}, {1.0, 5.0}).valid);  // no x spread
  EXPECT_FALSE(linear_regression({1.0, 2.0}, {1.0}).valid);  // size mismatch
}

TEST(Jain, PerfectlyFairIsOne) {
  EXPECT_DOUBLE_EQ(jain_index({5, 5, 5, 5}), 1.0);
}

TEST(Jain, SingleHogIsOneOverN) {
  EXPECT_DOUBLE_EQ(jain_index({10, 0, 0, 0}), 0.25);
}

TEST(Jain, EmptyAndZeroSafe) {
  EXPECT_DOUBLE_EQ(jain_index({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_index({0, 0}), 0.0);
}

// Property: Jain's index is scale-invariant and within (0, 1].
class JainProperty : public ::testing::TestWithParam<int> {};

TEST_P(JainProperty, ScaleInvariantAndBounded) {
  Rng r(static_cast<uint64_t>(GetParam()));
  std::vector<double> x, x2;
  for (int i = 0; i < GetParam(); ++i) {
    double v = r.uniform(0.1, 10.0);
    x.push_back(v);
    x2.push_back(v * 7.5);
  }
  const double j = jain_index(x);
  EXPECT_GT(j, 0.0);
  EXPECT_LE(j, 1.0 + 1e-12);
  EXPECT_NEAR(j, jain_index(x2), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, JainProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 50));

}  // namespace
}  // namespace proteus
