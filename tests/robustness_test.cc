// Property-based robustness sweeps: invariants that must hold for every
// protocol across a grid of link configurations, plus failure injection
// (extreme buffers, heavy loss, capacity collapse, mid-flow churn) and the
// scripted adversarial fault timeline (blackouts, reordering, duplication,
// ACK loss/compression).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/pcc_sender.h"
#include "core/utility.h"
#include "harness/experiments.h"
#include "harness/fault_spec.h"
#include "harness/invariants.h"
#include "harness/parallel_runner.h"

namespace proteus {
namespace {

// ---- Invariants across a configuration grid ------------------------------

using GridParam = std::tuple<const char*, double /*bw*/, double /*rtt*/,
                             double /*buffer_bdp*/>;

class LinkGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(LinkGrid, ConservationAndSanity) {
  const auto& [proto, bw, rtt, bdp] = GetParam();
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = bw;
  cfg.rtt_ms = rtt;
  cfg.buffer_bytes = std::max<int64_t>(
      static_cast<int64_t>(cfg.bdp_bytes() * bdp), 2 * kMtuBytes);
  cfg.seed = 17;

  Scenario sc(cfg);
  Flow& f = sc.add_flow(proto, 0);
  sc.run_until(from_sec(30));

  const auto& st = f.sender().stats();
  // Conservation: every sent packet is acked, lost, or still in flight.
  EXPECT_EQ(st.packets_sent,
            st.packets_acked + st.packets_lost +
                f.sender().bytes_in_flight() / kMtuBytes);
  // No throughput beyond capacity.
  EXPECT_LE(f.mean_throughput_mbps(from_sec(10), from_sec(30)), bw * 1.02);
  // RTT never below the propagation floor.
  if (f.rtt_samples().count() > 0) {
    EXPECT_GE(f.rtt_samples().min(), rtt * 0.999);
  }
  // Some forward progress on every sane configuration.
  EXPECT_GT(st.bytes_delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinkGrid,
    ::testing::Combine(
        ::testing::Values("proteus-p", "proteus-s", "cubic", "bbr", "copa",
                          "ledbat", "vivace", "allegro"),
        ::testing::Values(10.0, 100.0),
        ::testing::Values(10.0, 100.0),
        ::testing::Values(0.5, 2.0)));

// ---- Determinism ---------------------------------------------------------

class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, IdenticalSeedsIdenticalRuns) {
  auto run = [&] {
    ScenarioConfig cfg;
    cfg.seed = 99;
    Scenario sc(cfg);
    Flow& f = sc.add_flow(GetParam(), 0);
    sc.run_until(from_sec(10));
    return std::make_tuple(f.sender().stats().packets_sent,
                           f.sender().stats().packets_acked,
                           f.receiver().bytes_received());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Protocols, Determinism,
                         ::testing::Values("proteus-p", "proteus-s", "bbr",
                                           "cubic", "copa", "ledbat"));

TEST(Determinism, DifferentSeedsDiverge) {
  auto run = [&](uint64_t seed) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    Scenario sc(cfg);
    Flow& f = sc.add_flow("proteus-p", 0);
    sc.run_until(from_sec(10));
    return f.sender().stats().packets_sent;
  };
  EXPECT_NE(run(1), run(2));
}

// ---- Failure injection ----------------------------------------------------

TEST(FailureInjection, OnePacketBuffer) {
  ScenarioConfig cfg;
  cfg.buffer_bytes = kMtuBytes;
  cfg.seed = 5;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  // Progress despite a degenerate buffer; no runaway loss accounting.
  EXPECT_GT(f.mean_throughput_mbps(from_sec(10), from_sec(20)), 1.0);
}

TEST(FailureInjection, HalfTrafficLost) {
  ScenarioConfig cfg;
  cfg.random_loss = 0.5;
  cfg.seed = 6;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  const auto& st = f.sender().stats();
  EXPECT_GT(st.packets_acked, 100);  // still makes progress
  EXPECT_NEAR(static_cast<double>(st.packets_lost) /
                  static_cast<double>(st.packets_sent),
              0.5, 0.1);
}

TEST(FailureInjection, CapacityCollapseMidRun) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  // The link drops from 50 to 5 Mbps.
  sc.dumbbell().bottleneck().set_rate(Bandwidth::from_mbps(5));
  sc.run_until(from_sec(60));
  const double after = f.mean_throughput_mbps(from_sec(45), from_sec(60));
  EXPECT_LE(after, 5.2);
  EXPECT_GT(after, 2.5);  // re-converges to the new capacity
}

TEST(FailureInjection, CapacityRecoveryMidRun) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 5.0;
  cfg.buffer_bytes = 100'000;
  cfg.seed = 8;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  sc.dumbbell().bottleneck().set_rate(Bandwidth::from_mbps(50));
  sc.run_until(from_sec(60));
  EXPECT_GT(f.mean_throughput_mbps(from_sec(45), from_sec(60)), 25.0);
}

TEST(FailureInjection, FlowChurn) {
  // Flows joining and leaving do not wedge the survivors.
  ScenarioConfig cfg;
  cfg.seed = 9;
  Scenario sc(cfg);
  Flow& stayer = sc.add_flow("proteus-p", 0);
  sc.add_flow("cubic", from_sec(5), /*stop=*/from_sec(15));
  sc.add_flow("bbr", from_sec(10), /*stop=*/from_sec(25));
  sc.add_flow("proteus-s", from_sec(12), /*stop=*/from_sec(30));
  sc.run_until(from_sec(60));
  // After everyone leaves, the stayer reclaims the link.
  EXPECT_GT(stayer.mean_throughput_mbps(from_sec(45), from_sec(60)), 38.0);
}

TEST(FailureInjection, ExtremeRttAsymmetryStillWorks) {
  ScenarioConfig cfg;
  cfg.rtt_ms = 400.0;  // satellite-ish
  cfg.buffer_bytes = static_cast<int64_t>(cfg.bdp_bytes());
  cfg.seed = 10;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(60));
  EXPECT_GT(f.mean_throughput_mbps(from_sec(30), from_sec(60)), 20.0);
}

// ---- Allegro sanity --------------------------------------------------------

TEST(Allegro, SaturatesButBloatsBuffers) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  const SingleFlowResult allegro =
      run_single_flow("allegro", cfg, from_sec(60), from_sec(20));
  const SingleFlowResult vivace =
      run_single_flow("vivace", cfg, from_sec(60), from_sec(20));
  EXPECT_GT(allegro.utilization, 0.85);
  // Loss-based probing fills the 2 BDP buffer that Vivace leaves empty.
  EXPECT_GT(allegro.inflation_ratio_95, vivace.inflation_ratio_95 + 0.2);
}

// ---- Scripted fault timeline ----------------------------------------------

std::vector<FaultSpec> faults_or_die(const std::string& spec) {
  const FaultParseResult r = parse_faults(spec);
  EXPECT_TRUE(r.ok) << r.error;
  return r.faults;
}

void expect_invariants(const Scenario& sc) {
  const InvariantReport report = check_invariants(sc);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Every factory protocol must survive a 2-second mid-flow blackout with
// conservation intact, make progress afterwards, and (for PCC senders)
// keep a finite utility and an in-clamp pacing rate throughout.
class BlackoutEveryProtocol : public ::testing::TestWithParam<const char*> {};

TEST_P(BlackoutEveryProtocol, SurvivesWithInvariantsIntact) {
  ScenarioConfig cfg;
  cfg.seed = 21;
  cfg.faults = faults_or_die("blackout@8:2");
  Scenario sc(cfg);
  Flow& f = sc.add_flow(GetParam(), 0);
  sc.run_until(from_sec(25));

  expect_invariants(sc);
  // The link came back: the flow must resume moving data afterwards.
  EXPECT_GT(f.mean_throughput_mbps(from_sec(12), from_sec(25)), 1.0);
  if (const auto* pcc = dynamic_cast<const PccSender*>(&f.sender().cc())) {
    EXPECT_TRUE(std::isfinite(pcc->last_utility()));
    const double pacing = pcc->pacing_rate().mbps();
    EXPECT_GE(pacing, pcc->config().rate_control.min_rate_mbps * 0.999);
    EXPECT_LE(pacing, pcc->config().rate_control.max_rate_mbps * 1.001);
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, BlackoutEveryProtocol,
                         ::testing::Values("proteus-p", "proteus-s",
                                           "proteus-h", "bbr", "cubic",
                                           "copa", "ledbat", "vivace"));

// Acceptance criterion: Proteus-P regains >= 80% of its pre-fault
// throughput within 5 s of a 2 s blackout clearing (50 Mbps / 30 ms).
TEST(FaultTimeline, ProteusRecoversWithin5sOfBlackout) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.faults = faults_or_die("blackout@10:2");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));

  expect_invariants(sc);
  const double pre = f.mean_throughput_mbps(from_sec(5), from_sec(10));
  // The blackout clears at 12 s; measure inside the 5 s recovery budget.
  const double post = f.mean_throughput_mbps(from_sec(13), from_sec(17));
  EXPECT_GT(pre, 10.0);  // the fault hit a genuinely busy flow
  EXPECT_GE(post, 0.8 * pre);

  const auto* pcc = dynamic_cast<const PccSender*>(&f.sender().cc());
  ASSERT_NE(pcc, nullptr);
  EXPECT_GE(pcc->survival_entries(), 1u);
  ASSERT_NE(pcc->last_recovery_time(), kTimeInfinite);
  EXPECT_LE(pcc->last_recovery_time(), from_sec(5));
}

// During the dark window the sender must not blast packets into the void:
// the watchdog parks it at the controller's floor rate.
TEST(FaultTimeline, SurvivalParksAtFloorDuringBlackout) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  cfg.faults = faults_or_die("blackout@10:3");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(11) + from_ms(500));

  const auto* pcc = dynamic_cast<const PccSender*>(&f.sender().cc());
  ASSERT_NE(pcc, nullptr);
  EXPECT_TRUE(pcc->in_survival());
  // Probes wiggle +/- probe_step around the floor; allow that margin.
  const RateControlConfig& rc = pcc->config().rate_control;
  EXPECT_LE(pcc->pacing_rate().mbps(),
            rc.min_rate_mbps * (1.0 + rc.probe_step) + 1e-9);
  EXPECT_GT(pcc->pre_fault_rate_mbps(), 10.0);

  sc.run_until(from_sec(20));
  expect_invariants(sc);
  EXPECT_FALSE(pcc->in_survival());
}

// The emergency brake engages when a primary bursts into a cruising
// scavenger (satellite: brake-engagement coverage at scenario level).
TEST(FaultTimeline, ScavengerBrakesWhenPrimaryArrives) {
  ScenarioConfig cfg;
  cfg.seed = 3;
  Scenario sc(cfg);
  Flow& scav = sc.add_flow("proteus-s", 0);
  sc.add_flow("cubic", from_sec(10));
  sc.run_until(from_sec(25));

  expect_invariants(sc);
  const auto* pcc = dynamic_cast<const PccSender*>(&scav.sender().cc());
  ASSERT_NE(pcc, nullptr);
  EXPECT_GE(pcc->brakes_engaged(), 1u);
}

// A composite schedule exercising every fault type at once: the run must
// finish, hit every counter, and keep all invariants.
TEST(FaultTimeline, CompositeScheduleAllTypes) {
  ScenarioConfig cfg;
  cfg.seed = 13;
  cfg.buffer_bytes = 80'000;  // small enough that a blackout overflows it
  cfg.faults = faults_or_die(
      "blackout@6:1,capacity@9:x=0.25:3,route@13:delta=20ms:3,"
      "reorder@17:p=0.1:delta=20ms:3,duplicate@21:p=0.05:3,"
      "ackloss@25:p=0.3:3,ackburst@29:500ms");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.add_flow("cubic", 0);
  sc.run_until(from_sec(35));

  expect_invariants(sc);
  const LinkStats& st = sc.dumbbell().bottleneck().stats();
  EXPECT_GT(st.blackout_drops, 0);
  EXPECT_GT(st.reordered, 0);
  EXPECT_GT(st.duplicated, 0);
  EXPECT_GT(st.ack_drops, 0);
  EXPECT_GT(f.mean_throughput_mbps(from_sec(31), from_sec(35)), 1.0);
}

// Identical fault spec + seed => bit-identical runs, both serially and
// under the parallel runner at different worker counts.
TEST(FaultTimeline, DeterministicAcrossJobs) {
  using Fingerprint = std::tuple<int64_t, int64_t, int64_t, int64_t,
                                 int64_t, int64_t, int64_t>;
  auto run = [](uint64_t seed) -> Fingerprint {
    ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.faults = faults_or_die(
        "blackout@4:1,reorder@7:p=0.05:2,duplicate@10:p=0.02:2,"
        "ackloss@13:p=0.2:2,ackburst@16:300ms");
    Scenario sc(cfg);
    Flow& f = sc.add_flow("proteus-p", 0);
    sc.run_until(from_sec(20));
    const LinkStats& st = sc.dumbbell().bottleneck().stats();
    return {f.sender().stats().packets_sent,
            f.sender().stats().packets_acked,
            static_cast<int64_t>(f.receiver().bytes_received()),
            st.reordered,
            st.duplicated,
            st.ack_drops,
            st.blackout_drops};
  };

  const Fingerprint serial = run(42);
  EXPECT_EQ(serial, run(42));

  std::vector<std::function<Fingerprint()>> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back([&run] { return run(42); });
  for (const Fingerprint& fp : run_parallel(tasks, 1)) {
    EXPECT_EQ(fp, serial);
  }
  for (const Fingerprint& fp : run_parallel(std::move(tasks), 4)) {
    EXPECT_EQ(fp, serial);
  }
}

// FIFO-by-default pin: latency noise alone must never reorder deliveries;
// flipping allow_reordering lets the same noise invert order.
TEST(FaultTimeline, LinkIsFifoByDefaultAndReordersWhenAllowed) {
  auto reordered_count = [](bool allow) {
    Simulator sim(77);
    LinkConfig lc;
    lc.allow_reordering = allow;
    Link link(&sim, lc, 0x5ee);
    link.set_latency_noise(
        std::make_unique<GaussianNoise>(from_ms(2), from_ms(2)));

    struct Collector final : public PacketSink {
      std::vector<uint64_t> seqs;
      void on_packet(const Packet& pkt) override {
        seqs.push_back(pkt.seq);
      }
    } sink;
    link.set_sink(&sink);

    for (uint64_t i = 0; i < 2000; ++i) {
      sim.schedule_at(from_us(200) * static_cast<TimeNs>(i), [&link, i] {
        Packet pkt;
        pkt.seq = i;
        pkt.size_bytes = kMtuBytes;
        link.on_packet(pkt);
      });
    }
    sim.run_until(from_sec(5));

    int64_t inversions = 0;
    for (size_t i = 1; i < sink.seqs.size(); ++i) {
      if (sink.seqs[i] < sink.seqs[i - 1]) ++inversions;
    }
    EXPECT_EQ(inversions > 0, link.stats().reordered > 0);
    return inversions;
  };

  EXPECT_EQ(reordered_count(false), 0);
  EXPECT_GT(reordered_count(true), 0);
}

// A reorder fault must invert delivery order even on the default FIFO
// link (stragglers bypass the FIFO floor), and the transport must absorb
// the resulting spurious-loss churn without breaking conservation.
TEST(FaultTimeline, ReorderFaultWorksOnFifoLink) {
  ScenarioConfig cfg;
  cfg.seed = 31;
  cfg.faults = faults_or_die("reorder@5:p=0.05:delta=15ms:10");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));

  expect_invariants(sc);
  EXPECT_GT(sc.dumbbell().bottleneck().stats().reordered, 0);
  EXPECT_GT(f.mean_throughput_mbps(from_sec(16), from_sec(20)), 5.0);
}

// A route change stretches the RTT for its window; the flow must keep
// running and the RTT tail must reflect the added delay.
TEST(FaultTimeline, RouteChangeShiftsRtt) {
  ScenarioConfig cfg;
  cfg.seed = 19;
  cfg.faults = faults_or_die("route@10:delta=50ms");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));

  expect_invariants(sc);
  // Base RTT is 30 ms; after the permanent +50 ms step the p95 must sit
  // above the old path's ceiling.
  EXPECT_GT(f.rtt_samples().percentile(95), 75.0);
  EXPECT_GT(f.mean_throughput_mbps(from_sec(15), from_sec(20)), 5.0);
}

// ACK loss and ACK compression bursts on the reverse path: progress and
// conservation hold, and the drop counter surfaces on the link stats.
TEST(FaultTimeline, ReversePathFaultsSurvive) {
  ScenarioConfig cfg;
  cfg.seed = 23;
  cfg.faults = faults_or_die("ackloss@5:p=0.3:5,ackburst@12:400ms");
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));

  expect_invariants(sc);
  EXPECT_GT(sc.dumbbell().bottleneck().stats().ack_drops, 0);
  EXPECT_GT(f.mean_throughput_mbps(from_sec(15), from_sec(20)), 5.0);
}

// Satellite: a zero-sample MI (every packet lost) must still compute
// defined metrics and a finite utility for every utility function.
TEST(FaultTimeline, ZeroSampleMiYieldsDefinedMetrics) {
  MonitorInterval mi(1, 10.0, 0, from_ms(50));
  for (uint64_t seq = 0; seq < 8; ++seq) {
    mi.on_packet_sent(seq, kMtuBytes, from_ms(static_cast<double>(seq)));
  }
  for (uint64_t seq = 0; seq < 8; ++seq) mi.on_loss(seq);
  mi.seal();
  ASSERT_TRUE(mi.complete());

  const MiMetrics m = mi.compute();
  EXPECT_FALSE(m.useful);  // no ACK: the controller must not act on it
  for (double v : {m.send_rate_mbps, m.throughput_mbps, m.loss_rate,
                   m.avg_rtt_sec, m.rtt_gradient, m.rtt_dev_sec,
                   m.regression_error}) {
    EXPECT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(m.avg_rtt_sec, 0.0);
  EXPECT_EQ(m.rtt_gradient, 0.0);

  const UtilityParams params;
  EXPECT_TRUE(std::isfinite(ProteusPrimaryUtility(params).eval(m)));
  EXPECT_TRUE(std::isfinite(ProteusScavengerUtility(params).eval(m)));
  EXPECT_TRUE(std::isfinite(VivaceUtility(params).eval(m)));
  EXPECT_TRUE(std::isfinite(AllegroUtility().eval(m)));
}

// ---- FaultTimeline edge cases -------------------------------------------

TEST(FaultTimeline, OverlappingBlackoutsClearAtLatestEnd) {
  // Two overlapping windows [1,4) and [3,6): the link is dark across the
  // union, and clear_time from inside either window is the union's end.
  std::vector<FaultSpec> faults(2);
  faults[0] = {FaultType::kBlackout, from_sec(1), from_sec(3), 0.0, 0};
  faults[1] = {FaultType::kBlackout, from_sec(3), from_sec(3), 0.0, 0};
  FaultTimeline tl(faults, 1);
  EXPECT_FALSE(tl.blackout_active(from_sec(0.5)));
  EXPECT_TRUE(tl.blackout_active(from_sec(2)));
  EXPECT_TRUE(tl.blackout_active(from_sec(4.5)));  // inside only the second
  EXPECT_FALSE(tl.blackout_active(from_sec(6)));
  EXPECT_EQ(tl.blackout_clear_time(from_sec(2)), from_sec(6));
  EXPECT_EQ(tl.blackout_clear_time(from_sec(5)), from_sec(6));
  EXPECT_EQ(tl.blackout_clear_time(from_sec(7)), from_sec(7));  // already clear
}

TEST(FaultTimeline, BackToBackBlackoutsActAsOne) {
  // [1,3) then [3,5): no gap at the boundary; clear_time jumps past both.
  std::vector<FaultSpec> faults(2);
  faults[0] = {FaultType::kBlackout, from_sec(1), from_sec(2), 0.0, 0};
  faults[1] = {FaultType::kBlackout, from_sec(3), from_sec(2), 0.0, 0};
  FaultTimeline tl(faults, 1);
  EXPECT_TRUE(tl.blackout_active(from_sec(3)));  // boundary instant is dark
  EXPECT_EQ(tl.blackout_clear_time(from_sec(1.5)), from_sec(5));
}

TEST(FaultTimeline, ZeroDurationMeansPermanent) {
  FaultSpec spec{FaultType::kBlackout, from_sec(2), 0, 0.0, 0};
  EXPECT_EQ(spec.end(), kTimeInfinite);
  EXPECT_FALSE(spec.active(from_sec(1)));
  EXPECT_TRUE(spec.active(from_sec(2)));
  EXPECT_TRUE(spec.active(from_sec(1e6)));

  FaultTimeline tl({spec}, 1);
  EXPECT_TRUE(tl.blackout_active(from_sec(100)));
  EXPECT_EQ(tl.blackout_clear_time(from_sec(3)), kTimeInfinite);
}

TEST(FaultTimeline, FaultStartingAtTimeZeroIsActiveImmediately) {
  std::vector<FaultSpec> faults(2);
  faults[0] = {FaultType::kCapacity, 0, from_sec(5), 0.5, 0};
  faults[1] = {FaultType::kRouteChange, 0, 0, 0.0, from_ms(10)};
  FaultTimeline tl(faults, 1);
  EXPECT_EQ(tl.capacity_multiplier(0), 0.5);
  EXPECT_EQ(tl.prop_delay_delta(0), from_ms(10));
  EXPECT_EQ(tl.capacity_multiplier(from_sec(5)), 1.0);  // window closed
  EXPECT_EQ(tl.prop_delay_delta(from_sec(5)), from_ms(10));  // permanent
}

TEST(FaultTimeline, OverlappingCapacityAndRouteFaultsCompose) {
  // Capacity multipliers multiply; route deltas sum (including negative).
  std::vector<FaultSpec> faults(4);
  faults[0] = {FaultType::kCapacity, from_sec(1), from_sec(4), 0.5, 0};
  faults[1] = {FaultType::kCapacity, from_sec(2), from_sec(4), 0.2, 0};
  faults[2] = {FaultType::kRouteChange, from_sec(1), from_sec(4), 0.0,
               from_ms(20)};
  faults[3] = {FaultType::kRouteChange, from_sec(2), from_sec(4), 0.0,
               -from_ms(5)};
  FaultTimeline tl(faults, 1);
  EXPECT_EQ(tl.capacity_multiplier(from_sec(1.5)), 0.5);  // only the first
  EXPECT_DOUBLE_EQ(tl.capacity_multiplier(from_sec(3)), 0.5 * 0.2);  // both
  EXPECT_DOUBLE_EQ(tl.capacity_multiplier(from_sec(5.5)), 0.2);  // only 2nd
  EXPECT_EQ(tl.capacity_multiplier(from_sec(6)), 1.0);  // all closed
  EXPECT_EQ(tl.prop_delay_delta(from_sec(3)), from_ms(20) - from_ms(5));
  EXPECT_EQ(tl.prop_delay_delta(from_sec(5.5)), -from_ms(5));
}

TEST(FaultTimeline, ZeroDurationBlackoutAtZeroNeverClears) {
  // The degenerate corner: permanent blackout from t=0. A scenario under
  // it must still terminate (senders starve, nothing is delivered).
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 10.0;
  cfg.seed = 5;
  cfg.faults = {{FaultType::kBlackout, 0, 0, 0.0, 0}};
  Scenario sc(cfg);
  Flow& f = sc.add_flow("cubic", 0);
  sc.run_until(from_sec(10));
  EXPECT_EQ(f.sender().stats().bytes_delivered, 0);
  const InvariantReport report = check_invariants(sc);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Allegro, UtilityShape) {
  AllegroUtility u;
  MiMetrics m;
  m.send_rate_mbps = 20.0;
  m.loss_rate = 0.0;
  const double clean = u.eval(m);
  EXPECT_NEAR(clean, 20.0 / (1.0 + std::exp(-5.0)), 0.2);
  m.loss_rate = 0.10;  // past the 5% knee: utility collapses
  EXPECT_LT(u.eval(m), 0.0);
}

}  // namespace
}  // namespace proteus
