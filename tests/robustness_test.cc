// Property-based robustness sweeps: invariants that must hold for every
// protocol across a grid of link configurations, plus failure injection
// (extreme buffers, heavy loss, capacity collapse, mid-flow churn).
#include <gtest/gtest.h>

#include <tuple>

#include "core/utility.h"
#include "harness/experiments.h"

namespace proteus {
namespace {

// ---- Invariants across a configuration grid ------------------------------

using GridParam = std::tuple<const char*, double /*bw*/, double /*rtt*/,
                             double /*buffer_bdp*/>;

class LinkGrid : public ::testing::TestWithParam<GridParam> {};

TEST_P(LinkGrid, ConservationAndSanity) {
  const auto& [proto, bw, rtt, bdp] = GetParam();
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = bw;
  cfg.rtt_ms = rtt;
  cfg.buffer_bytes = std::max<int64_t>(
      static_cast<int64_t>(cfg.bdp_bytes() * bdp), 2 * kMtuBytes);
  cfg.seed = 17;

  Scenario sc(cfg);
  Flow& f = sc.add_flow(proto, 0);
  sc.run_until(from_sec(30));

  const auto& st = f.sender().stats();
  // Conservation: every sent packet is acked, lost, or still in flight.
  EXPECT_EQ(st.packets_sent,
            st.packets_acked + st.packets_lost +
                f.sender().bytes_in_flight() / kMtuBytes);
  // No throughput beyond capacity.
  EXPECT_LE(f.mean_throughput_mbps(from_sec(10), from_sec(30)), bw * 1.02);
  // RTT never below the propagation floor.
  if (f.rtt_samples().count() > 0) {
    EXPECT_GE(f.rtt_samples().min(), rtt * 0.999);
  }
  // Some forward progress on every sane configuration.
  EXPECT_GT(st.bytes_delivered, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LinkGrid,
    ::testing::Combine(
        ::testing::Values("proteus-p", "proteus-s", "cubic", "bbr", "copa",
                          "ledbat", "vivace", "allegro"),
        ::testing::Values(10.0, 100.0),
        ::testing::Values(10.0, 100.0),
        ::testing::Values(0.5, 2.0)));

// ---- Determinism ---------------------------------------------------------

class Determinism : public ::testing::TestWithParam<const char*> {};

TEST_P(Determinism, IdenticalSeedsIdenticalRuns) {
  auto run = [&] {
    ScenarioConfig cfg;
    cfg.seed = 99;
    Scenario sc(cfg);
    Flow& f = sc.add_flow(GetParam(), 0);
    sc.run_until(from_sec(10));
    return std::make_tuple(f.sender().stats().packets_sent,
                           f.sender().stats().packets_acked,
                           f.receiver().bytes_received());
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Protocols, Determinism,
                         ::testing::Values("proteus-p", "proteus-s", "bbr",
                                           "cubic", "copa", "ledbat"));

TEST(Determinism, DifferentSeedsDiverge) {
  auto run = [&](uint64_t seed) {
    ScenarioConfig cfg;
    cfg.seed = seed;
    Scenario sc(cfg);
    Flow& f = sc.add_flow("proteus-p", 0);
    sc.run_until(from_sec(10));
    return f.sender().stats().packets_sent;
  };
  EXPECT_NE(run(1), run(2));
}

// ---- Failure injection ----------------------------------------------------

TEST(FailureInjection, OnePacketBuffer) {
  ScenarioConfig cfg;
  cfg.buffer_bytes = kMtuBytes;
  cfg.seed = 5;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  // Progress despite a degenerate buffer; no runaway loss accounting.
  EXPECT_GT(f.mean_throughput_mbps(from_sec(10), from_sec(20)), 1.0);
}

TEST(FailureInjection, HalfTrafficLost) {
  ScenarioConfig cfg;
  cfg.random_loss = 0.5;
  cfg.seed = 6;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  const auto& st = f.sender().stats();
  EXPECT_GT(st.packets_acked, 100);  // still makes progress
  EXPECT_NEAR(static_cast<double>(st.packets_lost) /
                  static_cast<double>(st.packets_sent),
              0.5, 0.1);
}

TEST(FailureInjection, CapacityCollapseMidRun) {
  ScenarioConfig cfg;
  cfg.seed = 7;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  // The link drops from 50 to 5 Mbps.
  sc.dumbbell().bottleneck().set_rate(Bandwidth::from_mbps(5));
  sc.run_until(from_sec(60));
  const double after = f.mean_throughput_mbps(from_sec(45), from_sec(60));
  EXPECT_LE(after, 5.2);
  EXPECT_GT(after, 2.5);  // re-converges to the new capacity
}

TEST(FailureInjection, CapacityRecoveryMidRun) {
  ScenarioConfig cfg;
  cfg.bandwidth_mbps = 5.0;
  cfg.buffer_bytes = 100'000;
  cfg.seed = 8;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(20));
  sc.dumbbell().bottleneck().set_rate(Bandwidth::from_mbps(50));
  sc.run_until(from_sec(60));
  EXPECT_GT(f.mean_throughput_mbps(from_sec(45), from_sec(60)), 25.0);
}

TEST(FailureInjection, FlowChurn) {
  // Flows joining and leaving do not wedge the survivors.
  ScenarioConfig cfg;
  cfg.seed = 9;
  Scenario sc(cfg);
  Flow& stayer = sc.add_flow("proteus-p", 0);
  sc.add_flow("cubic", from_sec(5), /*stop=*/from_sec(15));
  sc.add_flow("bbr", from_sec(10), /*stop=*/from_sec(25));
  sc.add_flow("proteus-s", from_sec(12), /*stop=*/from_sec(30));
  sc.run_until(from_sec(60));
  // After everyone leaves, the stayer reclaims the link.
  EXPECT_GT(stayer.mean_throughput_mbps(from_sec(45), from_sec(60)), 38.0);
}

TEST(FailureInjection, ExtremeRttAsymmetryStillWorks) {
  ScenarioConfig cfg;
  cfg.rtt_ms = 400.0;  // satellite-ish
  cfg.buffer_bytes = static_cast<int64_t>(cfg.bdp_bytes());
  cfg.seed = 10;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(60));
  EXPECT_GT(f.mean_throughput_mbps(from_sec(30), from_sec(60)), 20.0);
}

// ---- Allegro sanity --------------------------------------------------------

TEST(Allegro, SaturatesButBloatsBuffers) {
  ScenarioConfig cfg;
  cfg.seed = 11;
  const SingleFlowResult allegro =
      run_single_flow("allegro", cfg, from_sec(60), from_sec(20));
  const SingleFlowResult vivace =
      run_single_flow("vivace", cfg, from_sec(60), from_sec(20));
  EXPECT_GT(allegro.utilization, 0.85);
  // Loss-based probing fills the 2 BDP buffer that Vivace leaves empty.
  EXPECT_GT(allegro.inflation_ratio_95, vivace.inflation_ratio_95 + 0.2);
}

TEST(Allegro, UtilityShape) {
  AllegroUtility u;
  MiMetrics m;
  m.send_rate_mbps = 20.0;
  m.loss_rate = 0.0;
  const double clean = u.eval(m);
  EXPECT_NEAR(clean, 20.0 / (1.0 + std::exp(-5.0)), 0.2);
  m.loss_rate = 0.10;  // past the 5% knee: utility collapses
  EXPECT_LT(u.eval(m), 0.0);
}

}  // namespace
}  // namespace proteus
