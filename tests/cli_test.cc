// Tests for the proteus_sim command-line parser, the --faults= fault-spec
// grammar, and the CSV trace export.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "harness/cli.h"
#include "harness/fault_spec.h"
#include "harness/trace_export.h"

namespace proteus {
namespace {

CliParseResult parse(std::initializer_list<std::string> args) {
  return parse_cli(std::vector<std::string>(args));
}

TEST(Cli, MinimalFlowsOnly) {
  const auto r = parse({"--flows=cubic"});
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.options.flows.size(), 1u);
  EXPECT_EQ(r.options.flows[0].protocol, "cubic");
  EXPECT_DOUBLE_EQ(r.options.flows[0].start_sec, 0.0);
  // Defaults intact.
  EXPECT_DOUBLE_EQ(r.options.scenario.bandwidth_mbps, 50.0);
}

TEST(Cli, FullFlagSet) {
  const auto r = parse({"--bw=100", "--rtt=60", "--buffer=1500000",
                        "--loss=0.01", "--duration=90", "--warmup=30",
                        "--seed=42", "--wifi",
                        "--flows=bbr@0,proteus-s@10.5", "--trace=t.csv"});
  ASSERT_TRUE(r.ok) << r.error;
  const CliOptions& o = r.options;
  EXPECT_DOUBLE_EQ(o.scenario.bandwidth_mbps, 100.0);
  EXPECT_DOUBLE_EQ(o.scenario.rtt_ms, 60.0);
  EXPECT_EQ(o.scenario.buffer_bytes, 1'500'000);
  EXPECT_DOUBLE_EQ(o.scenario.random_loss, 0.01);
  EXPECT_DOUBLE_EQ(o.duration_sec, 90.0);
  EXPECT_EQ(o.scenario.seed, 42u);
  EXPECT_TRUE(o.wifi);
  EXPECT_TRUE(o.scenario.wifi_noise);
  EXPECT_TRUE(o.scenario.ack_aggregation);
  ASSERT_EQ(o.flows.size(), 2u);
  EXPECT_EQ(o.flows[1].protocol, "proteus-s");
  EXPECT_DOUBLE_EQ(o.flows[1].start_sec, 10.5);
  EXPECT_EQ(o.trace_path, "t.csv");
}

TEST(Cli, EngineFlag) {
  EXPECT_EQ(parse({"--flows=cubic"}).options.scenario.engine,
            EventEngine::kTimerWheel);  // wheel is the default
  EXPECT_EQ(parse({"--flows=cubic", "--engine=heap"})
                .options.scenario.engine,
            EventEngine::kBinaryHeap);
  EXPECT_EQ(parse({"--flows=cubic", "--engine=wheel"})
                .options.scenario.engine,
            EventEngine::kTimerWheel);
  EXPECT_FALSE(parse({"--flows=cubic", "--engine=quantum"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--engine="}).ok);
}

TEST(Cli, RejectsUnknownProtocol) {
  const auto r = parse({"--flows=warp-drive"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("warp-drive"), std::string::npos);
}

TEST(Cli, RejectsUnknownFlag) {
  const auto r = parse({"--flows=cubic", "--frobnicate=1"});
  EXPECT_FALSE(r.ok);
}

TEST(Cli, RejectsMissingFlows) {
  const auto r = parse({"--bw=10"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("--flows"), std::string::npos);
}

TEST(Cli, RejectsBadNumbers) {
  EXPECT_FALSE(parse({"--flows=cubic", "--bw=abc"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--bw=-5"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--loss=1.5"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--buffer=0"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic@-3"}).ok);
}

TEST(Cli, RejectsWarmupBeyondDuration) {
  const auto r =
      parse({"--flows=cubic", "--duration=30", "--warmup=30"});
  EXPECT_FALSE(r.ok);
}

TEST(Cli, JobsFlag) {
  const auto r = parse({"--flows=cubic", "--jobs=4"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.jobs, 4);
  // Default: 0 means "let the runner pick" (default_job_count()).
  EXPECT_EQ(parse({"--flows=cubic"}).options.jobs, 0);
}

TEST(Cli, RejectsBadJobs) {
  EXPECT_FALSE(parse({"--flows=cubic", "--jobs=0"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--jobs=-2"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--jobs=abc"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--jobs"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--jobs=99999"}).ok);
}

TEST(Cli, ParseJobsFlagHelper) {
  // The bench binaries share this helper; pin its three outcomes.
  int jobs = 0;
  std::string error;
  EXPECT_TRUE(parse_jobs_flag("--jobs=8", jobs, error));
  EXPECT_EQ(jobs, 8);
  EXPECT_TRUE(error.empty());

  jobs = 0;
  EXPECT_FALSE(parse_jobs_flag("--jobs=nope", jobs, error));
  EXPECT_FALSE(error.empty());  // malformed: error set

  error.clear();
  EXPECT_FALSE(parse_jobs_flag("--seed=3", jobs, error));
  EXPECT_TRUE(error.empty());  // not a --jobs flag at all: no error

  error.clear();
  EXPECT_FALSE(parse_jobs_flag("--jobsfoo=3", jobs, error));
  EXPECT_TRUE(error.empty());
}

TEST(Cli, ParseSupervisorFlagHelper) {
  // Shared by the sweep benches and parse_cli; same three-outcome contract
  // as parse_jobs_flag.
  SupervisorConfig cfg;
  std::string error;
  EXPECT_TRUE(parse_supervisor_flag("--retries=3", cfg, error));
  EXPECT_EQ(cfg.retries, 3);
  EXPECT_TRUE(parse_supervisor_flag("--run-timeout=2.5", cfg, error));
  EXPECT_DOUBLE_EQ(cfg.run_timeout_sec, 2.5);
  EXPECT_TRUE(parse_supervisor_flag("--sim-timeout=120", cfg, error));
  EXPECT_DOUBLE_EQ(cfg.sim_timeout_sec, 120.0);
  EXPECT_TRUE(parse_supervisor_flag("--checkpoint=j.jsonl", cfg, error));
  EXPECT_EQ(cfg.checkpoint_path, "j.jsonl");
  EXPECT_FALSE(cfg.resume);
  EXPECT_TRUE(parse_supervisor_flag("--resume=k.jsonl", cfg, error));
  EXPECT_EQ(cfg.checkpoint_path, "k.jsonl");
  EXPECT_TRUE(cfg.resume);
  EXPECT_TRUE(parse_supervisor_flag("--bundle-dir=out", cfg, error));
  EXPECT_EQ(cfg.bundle_dir, "out");
  EXPECT_TRUE(error.empty());

  // Malformed supervisor flags: false with the error set.
  for (const char* bad :
       {"--retries=", "--retries=no", "--retries=-1", "--retries=101",
        "--run-timeout=abc", "--sim-timeout=-5", "--checkpoint=",
        "--resume=", "--bundle-dir="}) {
    SupervisorConfig fresh;
    error.clear();
    EXPECT_FALSE(parse_supervisor_flag(bad, fresh, error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }

  // Unrelated flags: false with no error.
  error.clear();
  EXPECT_FALSE(parse_supervisor_flag("--jobs=4", cfg, error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(parse_supervisor_flag("--bw=50", cfg, error));
  EXPECT_TRUE(error.empty());
}

TEST(Cli, SupervisorFlagsParseIntoOptions) {
  const auto r = parse({"--flows=cubic", "--jobs=2", "--retries=2",
                        "--run-timeout=30", "--sim-timeout=500",
                        "--resume=cp.jsonl", "--bundle-dir=bundles"});
  ASSERT_TRUE(r.ok) << r.error;
  const SupervisorConfig& sup = r.options.supervisor;
  EXPECT_EQ(sup.retries, 2);
  EXPECT_DOUBLE_EQ(sup.run_timeout_sec, 30.0);
  EXPECT_DOUBLE_EQ(sup.sim_timeout_sec, 500.0);
  EXPECT_EQ(sup.checkpoint_path, "cp.jsonl");
  EXPECT_TRUE(sup.resume);
  EXPECT_EQ(sup.bundle_dir, "bundles");
  EXPECT_EQ(sup.jobs, 2);  // mirrored from --jobs

  EXPECT_FALSE(parse({"--flows=cubic", "--retries=oops"}).ok);
  EXPECT_FALSE(parse({"--flows=cubic", "--run-timeout=-1"}).ok);
}

TEST(Cli, AcceptsEveryRegistryProtocol) {
  for (const char* proto :
       {"cubic", "bbr", "bbr-s", "copa", "vivace", "allegro", "ledbat",
        "ledbat-25", "proteus-p", "proteus-s", "proteus-h"}) {
    const auto r = parse({std::string("--flows=") + proto});
    EXPECT_TRUE(r.ok) << proto << ": " << r.error;
  }
}

// ---- --faults= grammar -----------------------------------------------------

TEST(FaultSpecGrammar, ParsesEveryType) {
  const auto r = parse_faults(
      "blackout@5:2,capacity@10:x=0.25:20,route@10:delta=40ms,"
      "reorder@10:p=0.05:delta=25ms:5,duplicate@12:p=0.01,"
      "ackloss@14:p=0.3:5,ackburst@16:500ms");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.faults.size(), 7u);

  EXPECT_EQ(r.faults[0].type, FaultType::kBlackout);
  EXPECT_EQ(r.faults[0].start, from_sec(5));
  EXPECT_EQ(r.faults[0].duration, from_sec(2));

  EXPECT_EQ(r.faults[1].type, FaultType::kCapacity);
  EXPECT_DOUBLE_EQ(r.faults[1].value, 0.25);
  EXPECT_EQ(r.faults[1].duration, from_sec(20));

  EXPECT_EQ(r.faults[2].type, FaultType::kRouteChange);
  EXPECT_EQ(r.faults[2].delay, from_ms(40));
  EXPECT_EQ(r.faults[2].duration, 0);  // permanent

  EXPECT_EQ(r.faults[3].type, FaultType::kReorder);
  EXPECT_DOUBLE_EQ(r.faults[3].value, 0.05);
  EXPECT_EQ(r.faults[3].delay, from_ms(25));

  EXPECT_EQ(r.faults[4].type, FaultType::kDuplicate);
  EXPECT_EQ(r.faults[5].type, FaultType::kAckLoss);

  EXPECT_EQ(r.faults[6].type, FaultType::kAckBurst);
  EXPECT_EQ(r.faults[6].duration, from_ms(500));
}

TEST(FaultSpecGrammar, TimeSuffixesAndDefaults) {
  const auto r = parse_faults("blackout@2500ms:750ms,reorder@3s:p=1");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.faults[0].start, from_ms(2500));
  EXPECT_EQ(r.faults[0].duration, from_ms(750));
  EXPECT_EQ(r.faults[1].start, from_sec(3));
  EXPECT_EQ(r.faults[1].delay, from_ms(10));  // default hold-back
  // A bare blackout is permanent.
  const auto p = parse_faults("blackout@5");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.faults[0].duration, 0);
  EXPECT_EQ(p.faults[0].end(), kTimeInfinite);
}

TEST(FaultSpecGrammar, FormatRoundTrips) {
  // format_faults() output (used in repro bundles and serialized search
  // genomes) must re-parse to the exact same schedule, so a bundle's or
  // corpus entry's fault line is directly runnable. Every documented
  // event type appears here, with and without a link target, plus
  // fractional times whose double representation is inexact (0.3s) —
  // the cases where a truncating formatter/parser pair drifts.
  const std::string specs[] = {
      "blackout@5:2",
      "blackout@5",
      "blackout@0.3:0.25",
      "capacity@10:x=0.25:20",
      "capacity@1:x=0.3333333333333333:2",
      "route@10:delta=40ms",
      "route@2500ms:delta=-5ms:750ms",
      "reorder@10:p=0.05:delta=25ms:5",
      "reorder@3s:p=1",  // default delta fills in
      "duplicate@12:p=0.01",
      "ackloss@14:p=0.3:5",
      "ackburst@16:500ms",
      "link2:blackout@5:2",
      "link1:capacity@3500ms:x=0.25:2",
      "link3:route@1:delta=-7ms:2",
      "link1:reorder@2:p=0.125:delta=3ms:1",
      "link2:duplicate@2500ms:p=0.2",
      "link1:ackloss@4:p=0.5:1",
      "link1:ackburst@6:250ms",
      "blackout@5:2,capacity@10:x=0.5:20,ackburst@16:500ms",
      "blackout@1:1,link1:blackout@1:1,link2:ackloss@3:p=0.3:2",
  };
  for (const std::string& spec : specs) {
    const FaultParseResult first = parse_faults(spec);
    ASSERT_TRUE(first.ok) << spec << ": " << first.error;
    const std::string formatted = format_faults(first.faults);
    const FaultParseResult second = parse_faults(formatted);
    ASSERT_TRUE(second.ok) << spec << " -> " << formatted << ": "
                           << second.error;
    ASSERT_EQ(second.faults.size(), first.faults.size()) << formatted;
    for (size_t i = 0; i < first.faults.size(); ++i) {
      EXPECT_EQ(second.faults[i].type, first.faults[i].type) << formatted;
      EXPECT_EQ(second.faults[i].start, first.faults[i].start) << formatted;
      EXPECT_EQ(second.faults[i].duration, first.faults[i].duration)
          << formatted;
      EXPECT_DOUBLE_EQ(second.faults[i].value, first.faults[i].value)
          << formatted;
      EXPECT_EQ(second.faults[i].delay, first.faults[i].delay) << formatted;
      EXPECT_EQ(second.faults[i].link, first.faults[i].link) << formatted;
    }
    // Byte stability: a second format pass is a fixed point, so repeated
    // parse/format cycles (search -> corpus -> replay) can never drift.
    EXPECT_EQ(format_faults(second.faults), formatted) << spec;
  }
  EXPECT_EQ(format_faults({}), "");
}

TEST(FaultSpecGrammar, ParsesLinkTargets) {
  const auto r = parse_faults("link2:blackout@5:2,blackout@1:1,"
                              "link0:ackloss@3:p=0.5:1");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.faults.size(), 3u);
  EXPECT_EQ(r.faults[0].link, 2);
  EXPECT_EQ(r.faults[0].type, FaultType::kBlackout);
  EXPECT_EQ(r.faults[0].start, from_sec(5));
  EXPECT_EQ(r.faults[1].link, 0);  // untargeted events keep applying to 0
  EXPECT_EQ(r.faults[2].link, 0);  // explicit link0 is the same thing
  // link0: and bare specs format identically (canonical form drops it).
  EXPECT_EQ(format_faults({r.faults[2]}), "ackloss@3:p=0.5:1");
}

TEST(FaultSpecGrammar, RejectsMalformedLinkTargets) {
  EXPECT_FALSE(parse_faults("link:blackout@5:2").ok);      // no index
  EXPECT_FALSE(parse_faults("linkx:blackout@5:2").ok);     // non-digit
  EXPECT_FALSE(parse_faults("link-1:blackout@5:2").ok);    // negative
  EXPECT_FALSE(parse_faults("link2048:blackout@5:2").ok);  // out of range
  EXPECT_FALSE(parse_faults("link12345:blackout@5:2").ok); // too long
  // A colon after the '@' is a duration separator, not a link prefix.
  EXPECT_TRUE(parse_faults("blackout@5:2").ok);
}

TEST(FaultSpecGrammar, EmptySpecIsOkAndEmpty) {
  const auto r = parse_faults("");
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.faults.empty());
}

TEST(FaultSpecGrammar, RejectsMalformedSpecs) {
  EXPECT_FALSE(parse_faults("meteor@5:2").ok);        // unknown type
  EXPECT_FALSE(parse_faults("blackout").ok);          // missing @start
  EXPECT_FALSE(parse_faults("blackout@-1:2").ok);     // negative start
  EXPECT_FALSE(parse_faults("blackout@abc:2").ok);    // bad start
  EXPECT_FALSE(parse_faults("blackout@5:0").ok);      // zero duration
  EXPECT_FALSE(parse_faults("blackout@5:p=0.5").ok);  // stray key
  EXPECT_FALSE(parse_faults("capacity@5:3").ok);      // missing x=
  EXPECT_FALSE(parse_faults("capacity@5:x=0").ok);    // non-positive x
  EXPECT_FALSE(parse_faults("route@5:3").ok);         // missing delta=
  EXPECT_FALSE(parse_faults("reorder@5:3").ok);       // missing p=
  EXPECT_FALSE(parse_faults("reorder@5:p=1.5").ok);   // p out of range
  EXPECT_FALSE(parse_faults("reorder@5:p=0").ok);     // p out of range
  EXPECT_FALSE(parse_faults("ackloss@5:q=0.5").ok);   // unknown key
  EXPECT_FALSE(parse_faults("ackburst@5").ok);        // permanent hold
  EXPECT_FALSE(parse_faults("dup@5:p=0.1:2:3").ok);   // duplicate duration
}

TEST(Cli, TelemetryFlagsParseIntoOptions) {
  const auto r = parse({"--flows=proteus-s", "--telemetry=telout",
                        "--telemetry-every=5", "--profile"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.options.supervisor.telemetry.dir, "telout");
  EXPECT_EQ(r.options.supervisor.telemetry.every, 5);
  EXPECT_TRUE(r.options.supervisor.telemetry.enabled());
  EXPECT_TRUE(r.options.profile);
}

TEST(Cli, TelemetryOffByDefault) {
  const auto r = parse({"--flows=proteus-s"});
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.options.supervisor.telemetry.enabled());
  EXPECT_EQ(r.options.supervisor.telemetry.every, 1);
  EXPECT_FALSE(r.options.profile);
}

TEST(Cli, ParseTelemetryFlagHelper) {
  TelemetryConfig cfg;
  std::string error;
  EXPECT_TRUE(parse_telemetry_flag("--telemetry=out", cfg, error));
  EXPECT_EQ(cfg.dir, "out");
  EXPECT_TRUE(error.empty());
  EXPECT_TRUE(parse_telemetry_flag("--telemetry-every=10", cfg, error));
  EXPECT_EQ(cfg.every, 10);
  // Malformed telemetry flags: false with an error message.
  error.clear();
  EXPECT_FALSE(parse_telemetry_flag("--telemetry=", cfg, error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_telemetry_flag("--telemetry-every=0", cfg, error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_telemetry_flag("--telemetry-every=x", cfg, error));
  EXPECT_FALSE(error.empty());
  // Some other flag entirely: false with error left empty.
  error.clear();
  EXPECT_FALSE(parse_telemetry_flag("--jobs=4", cfg, error));
  EXPECT_TRUE(error.empty());
}

TEST(Cli, RejectsBadTelemetryEvery) {
  const auto r = parse({"--flows=proteus-s", "--telemetry-every=-3"});
  EXPECT_FALSE(r.ok);
}

TEST(Cli, FaultsFlagWiresIntoScenario) {
  const auto r =
      parse({"--flows=proteus-p", "--faults=blackout@5:2,reorder@10:p=0.05",
             "--link-stats=ls.csv"});
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.options.scenario.faults.size(), 2u);
  EXPECT_EQ(r.options.scenario.faults[0].type, FaultType::kBlackout);
  EXPECT_EQ(r.options.scenario.faults[1].type, FaultType::kReorder);
  EXPECT_EQ(r.options.link_stats_path, "ls.csv");
}

TEST(Cli, RejectsBadFaultsFlag) {
  const auto r = parse({"--flows=cubic", "--faults=blackout"});
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.error.find("blackout"), std::string::npos);
}

TEST(TraceExport, ThroughputCsvRoundTrip) {
  ScenarioConfig cfg;
  cfg.seed = 3;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  sc.run_until(from_sec(5));

  const std::string path = ::testing::TempDir() + "/tput.csv";
  ASSERT_TRUE(write_throughput_csv(path, {&f}, from_sec(5)));

  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "t_sec,flow_1_mbps");
  int rows = 0;
  double sum = 0.0;
  std::string line;
  while (std::getline(in, line)) {
    ++rows;
    const size_t comma = line.find(',');
    ASSERT_NE(comma, std::string::npos);
    sum += std::stod(line.substr(comma + 1));
  }
  EXPECT_EQ(rows, 5);
  EXPECT_GT(sum, 10.0);  // the flow moved real traffic
  std::remove(path.c_str());
}

TEST(TraceExport, ThroughputCsvEmitsPartialFinalBin) {
  // Regression: bins were computed with integer division, so a 5.4 s run
  // lost its final partial-second bin — and a meter series longer than
  // the nominal duration (meters bin by delivery time) was truncated.
  ScenarioConfig cfg;
  cfg.seed = 3;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("proteus-p", 0);
  const TimeNs duration = from_sec(5.4);
  sc.run_until(duration);

  const std::string path = ::testing::TempDir() + "/tput_partial.csv";
  ASSERT_TRUE(write_throughput_csv(path, {&f}, duration));

  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));  // header
  size_t rows = 0;
  double last_bin = 0.0;
  while (std::getline(in, line)) {
    ++rows;
    last_bin = std::stod(line.substr(line.find(',') + 1));
  }
  // ceil(5.4) = 6 bins, never fewer than the meter actually produced.
  const size_t meter_bins = f.receiver().meter().mbps_series().size();
  EXPECT_EQ(rows, std::max<size_t>(6, meter_bins));
  EXPECT_GE(rows, meter_bins);  // no truncation of the delivered series
  // The partial 6th bin covers [5.0, 5.4): traffic was flowing, so the
  // pre-fix output (which ended at row 5) lost real delivered bytes.
  if (rows == 6) EXPECT_GT(last_bin, 0.0);
  std::remove(path.c_str());
}

TEST(TraceExport, RttCsv) {
  ScenarioConfig cfg;
  cfg.seed = 4;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("cubic", 0);
  sc.run_until(from_sec(3));

  const std::string path = ::testing::TempDir() + "/rtt.csv";
  ASSERT_TRUE(write_rtt_csv(path, f));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "sample_idx,rtt_ms");
  int rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, f.rtt_samples().count());
  EXPECT_GT(rows, 100);
  std::remove(path.c_str());
}

TEST(TraceExport, LinkStatsCsvCarriesFaultCounters) {
  LinkStats stats;
  stats.offered_packets = 100;
  stats.delivered_packets = 90;
  stats.blackout_drops = 4;
  stats.reordered = 3;
  stats.duplicated = 2;
  stats.ack_drops = 1;

  const std::string path = ::testing::TempDir() + "/link.csv";
  ASSERT_TRUE(write_link_stats_csv(path, stats));
  std::ifstream in(path);
  std::string header, row;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_NE(header.find("blackout_drops"), std::string::npos);
  EXPECT_NE(header.find("ack_drops"), std::string::npos);
  ASSERT_TRUE(std::getline(in, row));
  EXPECT_EQ(row, "100,90,0,0,0,0,0,4,3,2,1");
  std::remove(path.c_str());
}

TEST(TraceExport, UnwritablePathFails) {
  ScenarioConfig cfg;
  Scenario sc(cfg);
  Flow& f = sc.add_flow("cubic", 0);
  EXPECT_FALSE(write_throughput_csv("/nonexistent-dir/x.csv", {&f},
                                    from_sec(1)));
  EXPECT_FALSE(write_rtt_csv("/nonexistent-dir/x.csv", f));
}

}  // namespace
}  // namespace proteus
