// Unit tests for the transport layer (sender, receiver, flow) using a
// scriptable stub congestion controller.
#include <gtest/gtest.h>

#include <memory>

#include "sim/dumbbell.h"
#include "transport/flow.h"
#include "transport/receiver.h"
#include "transport/sender.h"

namespace proteus {
namespace {

class StubCc final : public CongestionController {
 public:
  void on_ack(const AckInfo& info) override {
    ++acks;
    last_ack = info;
  }
  void on_loss(const LossInfo& info) override {
    ++losses;
    last_loss = info;
    loss_log.push_back(info);
  }
  void on_packet_sent(const SentPacketInfo&) override { ++sent; }
  Bandwidth pacing_rate() const override { return rate; }
  int64_t cwnd_bytes() const override { return cwnd; }
  std::string name() const override { return "stub"; }

  Bandwidth rate = Bandwidth::from_mbps(10);
  int64_t cwnd = kNoCwndLimit;
  int acks = 0;
  int losses = 0;
  int sent = 0;
  AckInfo last_ack;
  LossInfo last_loss;
  std::vector<LossInfo> loss_log;
};

struct Rig {
  Rig(double bw_mbps = 100, double rtt_ms = 20,
      int64_t buffer = 1'000'000, double loss = 0.0) {
    DumbbellConfig dc;
    dc.bottleneck.rate = Bandwidth::from_mbps(bw_mbps);
    dc.bottleneck.prop_delay = from_ms(rtt_ms / 2);
    dc.bottleneck.buffer_bytes = buffer;
    dc.bottleneck.random_loss = loss;
    dc.reverse_delay = from_ms(rtt_ms / 2);
    dumbbell = std::make_unique<Dumbbell>(&sim, dc);
    auto cc_owned = std::make_unique<StubCc>();
    cc = cc_owned.get();
    sender = std::make_unique<Sender>(&sim, dumbbell.get(), 1,
                                      std::move(cc_owned));
    receiver = std::make_unique<Receiver>(&sim, dumbbell.get(), 1);
    dumbbell->attach_flow(1, receiver.get(), sender.get());
  }

  Simulator sim;
  std::unique_ptr<Dumbbell> dumbbell;
  StubCc* cc;
  std::unique_ptr<Sender> sender;
  std::unique_ptr<Receiver> receiver;
};

TEST(Sender, PacesAtConfiguredRate) {
  Rig rig;
  rig.cc->rate = Bandwidth::from_mbps(10);
  rig.sender->set_unlimited(true);
  rig.sender->start();
  rig.sim.run_until(from_sec(2));
  // 10 Mbps for 2 s = 2.5 MB; jittered pacing is mean-preserving.
  EXPECT_NEAR(static_cast<double>(rig.sender->stats().bytes_sent),
              2.5e6, 2.5e5);
}

TEST(Sender, WindowLimitsInflight) {
  Rig rig;
  rig.cc->rate = Bandwidth{0};  // unpaced
  rig.cc->cwnd = 10 * kMtuBytes;
  rig.sender->set_unlimited(true);
  rig.sender->start();
  EXPECT_EQ(rig.sender->bytes_in_flight(), 10 * kMtuBytes);
  rig.sim.run_until(from_sec(1));
  // ACK clocking sustains exactly cwnd of inflight.
  EXPECT_LE(rig.sender->bytes_in_flight(), 10 * kMtuBytes);
  EXPECT_GT(rig.sender->stats().packets_acked, 100);
}

TEST(Sender, CreditAccountingExact) {
  Rig rig;
  rig.sender->offer_bytes(10 * kMtuBytes);
  bool done = false;
  rig.sender->set_on_all_delivered([&] { done = true; });
  rig.sender->start();
  rig.sim.run_until(from_sec(5));
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.sender->stats().bytes_delivered, 10 * kMtuBytes);
  EXPECT_EQ(rig.receiver->bytes_received(), 10 * kMtuBytes);
  EXPECT_EQ(rig.sender->pending_credit(), 0);
}

TEST(Sender, PartialLastPacket) {
  Rig rig;
  rig.sender->offer_bytes(kMtuBytes + 100);
  rig.sender->start();
  rig.sim.run_until(from_sec(2));
  EXPECT_EQ(rig.sender->stats().packets_sent, 2);
  EXPECT_EQ(rig.sender->stats().bytes_delivered, kMtuBytes + 100);
}

TEST(Sender, LostBytesAreRecredited) {
  Rig rig(100, 20, /*buffer=*/1'000'000, /*loss=*/0.2);
  rig.sender->offer_bytes(300 * kMtuBytes);
  bool done = false;
  rig.sender->set_on_all_delivered([&] { done = true; });
  rig.sender->start();
  rig.sim.run_until(from_sec(20));
  // Despite 20% random loss, the retransmit-equivalent credit return means
  // everything is eventually delivered.
  EXPECT_TRUE(done);
  EXPECT_EQ(rig.sender->stats().bytes_delivered, 300 * kMtuBytes);
  EXPECT_GT(rig.sender->stats().packets_lost, 20);
}

// Pin for the loss-sweep rewrite: replacing the per-tick scratch-vector
// scan with the O(1) oldest-unacked-deadline check must not move a single
// loss declaration. With a black-hole link (no ACK ever), rto() stays at
// max(25ms, 2*100ms, 100ms + 4*50ms) = 300ms and the sweep ticks every
// 150ms; the t=150ms and t=300ms ticks find nothing strictly past the
// deadline, so every first-generation packet is declared at exactly
// t=450ms — the same instant the old implementation produced.
TEST(Sender, RtoSweepTicksPinLossDeclarationTimes) {
  Rig rig(100, 20, /*buffer=*/1'000'000, /*loss=*/1.0);
  rig.sender->offer_bytes(50 * kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_ms(500));

  ASSERT_EQ(rig.cc->loss_log.size(), 50u);
  uint64_t expect_seq = 0;
  for (const LossInfo& l : rig.cc->loss_log) {
    EXPECT_EQ(l.detected_time, from_ms(450));
    EXPECT_LT(l.sent_time, from_ms(150));
    EXPECT_EQ(l.seq, expect_seq++);  // declared in seq order
  }
  // The recredited bytes go straight back out (retransmit-equivalent).
  EXPECT_GT(rig.sender->stats().packets_sent, 60);
}

TEST(Sender, ThresholdLossDetectionIsFast) {
  // Random loss amid a steady delivered stream: gaps are detected by the
  // packet threshold about one RTT after the send, far below the RTO.
  Rig rig(100, 20, /*buffer=*/1'000'000, /*loss=*/0.05);
  rig.sender->set_unlimited(true);
  rig.sender->start();
  rig.sim.run_until(from_sec(2));
  ASSERT_GT(rig.cc->losses, 10);
  const TimeNs detection_delay =
      rig.cc->last_loss.detected_time - rig.cc->last_loss.sent_time;
  EXPECT_LT(detection_delay, from_ms(30));  // ~RTT, not the 40+ ms RTO
}

TEST(Sender, BurstDropsRecoveredByRto) {
  Rig rig(100, 20, /*buffer=*/3 * kMtuBytes);  // tiny buffer forces drops
  rig.cc->rate = Bandwidth{0};
  rig.cc->cwnd = 50 * kMtuBytes;  // burst of 50 into a 3-packet buffer
  rig.sender->set_unlimited(true);
  rig.sender->start();
  rig.sim.run_until(from_ms(500));
  // The tail of the burst has no later acks to trigger the threshold;
  // the timeout sweep must still resolve every packet.
  EXPECT_GT(rig.cc->losses, 20);
  EXPECT_LE(rig.sender->bytes_in_flight(), 50 * kMtuBytes);
}

TEST(Sender, RtoRecoversFromTotalBlackout) {
  // Buffer of 1 byte drops every packet after the first burst: only
  // timeouts can resolve them.
  Rig rig(100, 20, /*buffer=*/1);
  rig.sender->offer_bytes(5 * kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_sec(1));
  EXPECT_GT(rig.cc->losses, 0);
  EXPECT_EQ(rig.sender->bytes_in_flight() % kMtuBytes, 0);
}

TEST(Sender, RttEstimation) {
  Rig rig(1000, 40);  // fast link: RTT ~ base
  rig.sender->offer_bytes(20 * kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_sec(2));
  EXPECT_NEAR(to_ms(rig.sender->smoothed_rtt()), 40.0, 2.0);
  EXPECT_NEAR(to_ms(rig.sender->min_rtt()), 40.0, 1.0);
}

TEST(Sender, AckInfoFieldsPopulated) {
  Rig rig(1000, 40);
  AckInfo seen;
  rig.sender->set_on_ack([&](const AckInfo& i) { seen = i; });
  rig.sender->offer_bytes(2 * kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_sec(1));
  EXPECT_EQ(seen.seq, 1u);
  EXPECT_EQ(seen.bytes, kMtuBytes);
  EXPECT_NEAR(to_ms(seen.rtt), 40.0, 1.0);
  EXPECT_NEAR(to_ms(seen.one_way_delay), 20.0, 1.0);
  EXPECT_GT(seen.prev_ack_time, 0);
}

TEST(Sender, StopHaltsNewData) {
  Rig rig;
  rig.sender->set_unlimited(true);
  rig.sender->start();
  rig.sim.run_until(from_ms(100));
  rig.sender->stop();
  const int64_t sent_at_stop = rig.sender->stats().packets_sent;
  rig.sim.run_until(from_ms(500));
  EXPECT_EQ(rig.sender->stats().packets_sent, sent_at_stop);
}

TEST(Sender, AllDeliveredReArmsOnNewCredit) {
  Rig rig;
  int completions = 0;
  rig.sender->set_on_all_delivered([&] { ++completions; });
  rig.sender->offer_bytes(kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_sec(1));
  EXPECT_EQ(completions, 1);
  rig.sender->offer_bytes(kMtuBytes);
  rig.sim.run_until(from_sec(2));
  EXPECT_EQ(completions, 2);
}

TEST(Receiver, StampsReceiverTimeForOwd) {
  Rig rig(1000, 60);
  AckInfo seen;
  rig.sender->set_on_ack([&](const AckInfo& i) { seen = i; });
  rig.sender->offer_bytes(kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_sec(1));
  // One-way delay is half the 60 ms RTT (plus serialization).
  EXPECT_NEAR(to_ms(seen.one_way_delay), 30.0, 1.0);
}

TEST(Receiver, MeterCountsBytes) {
  Rig rig;
  rig.sender->offer_bytes(100 * kMtuBytes);
  rig.sender->start();
  rig.sim.run_until(from_sec(3));
  EXPECT_EQ(rig.receiver->meter().total_bytes(), 100 * kMtuBytes);
  EXPECT_EQ(rig.receiver->packets_received(), 100);
}

TEST(Flow, StartStopScheduling) {
  Simulator sim;
  DumbbellConfig dc;
  dc.bottleneck.rate = Bandwidth::from_mbps(50);
  dc.bottleneck.prop_delay = from_ms(10);
  dc.reverse_delay = from_ms(10);
  Dumbbell db(&sim, dc);

  FlowConfig fc;
  fc.id = 1;
  fc.start_time = from_sec(1);
  fc.stop_time = from_sec(2);
  Flow flow(&sim, &db, fc, std::make_unique<StubCc>());

  sim.run_until(from_ms(900));
  EXPECT_EQ(flow.sender().stats().packets_sent, 0);
  sim.run_until(from_sec(4));
  EXPECT_GT(flow.sender().stats().packets_sent, 0);
  EXPECT_GT(flow.mean_throughput_mbps(from_sec(1), from_sec(2)), 1.0);
  // Nothing new after stop; use a window past the in-flight drain.
  EXPECT_LT(flow.mean_throughput_mbps(from_sec(3), from_sec(4)), 0.01);
}

TEST(Flow, FiniteFlowCompletionTime) {
  Simulator sim;
  DumbbellConfig dc;
  dc.bottleneck.rate = Bandwidth::from_mbps(50);
  dc.bottleneck.prop_delay = from_ms(10);
  dc.reverse_delay = from_ms(10);
  Dumbbell db(&sim, dc);

  FlowConfig fc;
  fc.id = 1;
  fc.unlimited = false;
  fc.total_bytes = 50 * kMtuBytes;
  Flow flow(&sim, &db, fc, std::make_unique<StubCc>());
  sim.run_until(from_sec(5));
  ASSERT_TRUE(flow.completed());
  EXPECT_GT(flow.completion_time(), from_ms(20));
  EXPECT_LT(flow.completion_time(), from_sec(2));
  EXPECT_GT(flow.rtt_samples().count(), 10);
}

}  // namespace
}  // namespace proteus
